/**
 * @file
 * Figure 14 reproduction: impact of the memory subsystem's share of
 * server power (30%, 40%, 50%) on MID-average savings.
 *
 * Paper reference: raising the share from 30% to 50% more than doubles
 * system savings (11% -> 24%), with CPI still inside the bound.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 14",
                "sensitivity to memory power fraction (MID)", cfg);

    const std::vector<double> fracs = {0.30, 0.40, 0.50};
    std::vector<SystemConfig> cfgs;
    for (double frac : fracs) {
        cfgs.push_back(cfg);
        cfgs.back().memPowerFraction = frac;
    }
    std::vector<MidSweepPoint> pts = runMidSweeps(eng, cfgs);

    Table t({"memory share", "sys energy saved", "mem energy saved",
             "worst CPI increase"});
    for (std::size_t i = 0; i < fracs.size(); ++i) {
        const MidSweepPoint &pt = pts[i];
        t.addRow({pct(fracs[i], 0), pct(pt.sysSavings),
                  pct(pt.memSavings), pct(pt.worstCpiIncrease)});
    }
    t.print("Fig. 14: memory-power-fraction sensitivity (paper: "
            "30%->50% roughly doubles savings)");
    return 0;
}
