/**
 * @file
 * Figure 14 reproduction: impact of the memory subsystem's share of
 * server power (30%, 40%, 50%) on MID-average savings.
 *
 * Paper reference: raising the share from 30% to 50% more than doubles
 * system savings (11% -> 24%), with CPI still inside the bound.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Figure 14",
                "sensitivity to memory power fraction (MID)", cfg);

    Table t({"memory share", "sys energy saved", "mem energy saved",
             "worst CPI increase"});
    for (double frac : {0.30, 0.40, 0.50}) {
        SystemConfig c = cfg;
        c.memPowerFraction = frac;
        MidSweepPoint pt = runMidSweep(c);
        t.addRow({pct(frac, 0), pct(pt.sysSavings),
                  pct(pt.memSavings), pct(pt.worstCpiIncrease)});
    }
    t.print("Fig. 14: memory-power-fraction sensitivity (paper: "
            "30%->50% roughly doubles savings)");
    return 0;
}
