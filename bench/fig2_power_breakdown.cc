/**
 * @file
 * Figure 2 reproduction: conventional (baseline) memory-subsystem
 * power breakdown — Background, Act/Pre, W/R, TERM, PLL/REG, MC —
 * averaged over the MEM, MID, and ILP classes, normalized to the MEM
 * average as in the paper.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 2", "baseline memory power breakdown by class",
                cfg);

    struct ClassAgg
    {
        EnergyBreakdown e;
        double sec = 0.0;
        int n = 0;
    };
    std::map<std::string, ClassAgg> agg;

    std::vector<SystemConfig> cfgs;
    for (const MixSpec &mix : allMixes()) {
        cfgs.push_back(cfg);
        cfgs.back().mixName = mix.name;
    }
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);
    std::size_t i = 0;
    for (const MixSpec &mix : allMixes()) {
        const RunResult &base = bases[i++].base;
        ClassAgg &a = agg[mix.klass];
        a.e += base.energy;
        a.sec += tickToSec(base.runtime);
        a.n += 1;
    }

    // Normalize to the MEM-class average memory power.
    double mem_avg_power =
        agg["MEM"].e.memorySubsystem() / agg["MEM"].sec;

    Table t({"class", "Background", "Act/Pre", "W/R", "TERM",
             "Refresh", "PLL/REG", "MC", "total (norm. to MEM)"});
    for (const char *klass : {"MEM", "MID", "ILP"}) {
        const ClassAgg &a = agg[klass];
        auto watts = [&](double joules_v) {
            return joules_v / a.sec / mem_avg_power;
        };
        t.addRow({std::string("AVG_") + klass,
                  pct(watts(a.e.background)), pct(watts(a.e.actPre)),
                  pct(watts(a.e.readWrite)),
                  pct(watts(a.e.termination)), pct(watts(a.e.refresh)),
                  pct(watts(a.e.pllReg)), pct(watts(a.e.mc)),
                  pct(watts(a.e.memorySubsystem()))});
    }
    t.print("Fig. 2: memory power breakdown (share of MEM-class avg "
            "memory power)");
    std::printf("\npaper shape: background largest for ILP/MID; "
                "act/pre + W/R significant only for MEM;\n"
                "PLL/REG and MC are significant everywhere.\n");
    return 0;
}
