/**
 * @file
 * Figure 8 reproduction: MEM4 on an 8-core system.  The ideal
 * frequency sits between two grid points, so MemScale oscillates
 * between neighbours, synthesizing a "virtual frequency".
 */

#include <map>
#include <set>

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    cfg.mixName = "MEM4";
    cfg.numCores = 8;   // the paper uses an 8-core system here
    benchHeader("Figure 8",
                "MEM4 (8 cores): virtual-frequency oscillation", cfg);

    CalibratedBaseline cal = runBaselines(eng, {cfg})[0];
    ComparisonResult r =
        compareWithBase(cfg, cal.base, cal.rest, "memscale");
    maybeExportObs(conf, r.policy);

    std::map<std::string, std::vector<std::size_t>> by_app;
    for (std::size_t i = 0; i < r.policy.coreApp.size(); ++i)
        by_app[r.policy.coreApp[i]].push_back(i);

    std::vector<std::string> headers = {"t(ms)", "bus MHz", "util"};
    for (const auto &[app, _] : by_app)
        headers.push_back("CPI " + app);
    Table t(headers);

    std::set<std::uint32_t> used;
    std::uint64_t transitions = 0;
    std::uint32_t prev = 0;
    for (const EpochRecord &er : r.policy.timeline) {
        std::vector<std::string> row = {fmt(tickToMs(er.start)),
                                        std::to_string(er.busMHz),
                                        pct(er.channelUtil)};
        for (const auto &[app, cores] : by_app) {
            double cpi = 0.0;
            for (std::size_t c : cores)
                cpi += er.coreCpi[c];
            row.push_back(fmt(cpi / cores.size()));
        }
        t.addRow(row);
        used.insert(er.busMHz);
        if (prev != 0 && er.busMHz != prev)
            ++transitions;
        prev = er.busMHz;
    }
    t.print("Fig. 8: MEM4 per-epoch timeline (8 cores)");

    std::string freqs;
    for (std::uint32_t f : used)
        freqs += std::to_string(f) + " ";
    std::printf("\nfrequencies visited: %s(paper: oscillation between "
                "two neighbours)\n", freqs.c_str());
    std::printf("epoch-to-epoch frequency changes: %llu of %zu epochs\n",
                static_cast<unsigned long long>(transitions),
                r.policy.timeline.size());
    return 0;
}
