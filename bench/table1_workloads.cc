/**
 * @file
 * Table 1 reproduction: measured RPKI/WPKI of the synthetic workload
 * mixes next to the paper's reference values, plus the application
 * composition of each mix.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Table 1", "workload mixes: measured vs paper RPKI/WPKI",
                cfg);

    std::vector<SystemConfig> cfgs;
    for (const MixSpec &mix : allMixes()) {
        cfgs.push_back(cfg);
        cfgs.back().mixName = mix.name;
    }
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);

    Table t({"mix", "class", "RPKI paper", "RPKI meas", "WPKI paper",
             "WPKI meas", "applications (x4 each)"});
    std::size_t i = 0;
    for (const MixSpec &mix : allMixes()) {
        const RunResult &base = bases[i++].base;
        std::string apps;
        for (const auto &a : mix.apps)
            apps += a + " ";
        t.addRow({mix.name, mix.klass, fmt(mix.paperRpki),
                  fmt(base.measuredRpki), fmt(mix.paperWpki),
                  fmt(base.measuredWpki), apps});
    }
    t.print("Table 1: workload characteristics");
    return 0;
}
