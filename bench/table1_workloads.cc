/**
 * @file
 * Table 1 reproduction: measured RPKI/WPKI of the synthetic workload
 * mixes next to the paper's reference values, plus the application
 * composition of each mix.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Table 1", "workload mixes: measured vs paper RPKI/WPKI",
                cfg);

    Table t({"mix", "class", "RPKI paper", "RPKI meas", "WPKI paper",
             "WPKI meas", "applications (x4 each)"});
    Watts rest = 0.0;
    for (const MixSpec &mix : allMixes()) {
        SystemConfig c = cfg;
        c.mixName = mix.name;
        RunResult base = runBaseline(c, rest);
        std::string apps;
        for (const auto &a : mix.apps)
            apps += a + " ";
        t.addRow({mix.name, mix.klass, fmt(mix.paperRpki),
                  fmt(base.measuredRpki), fmt(mix.paperWpki),
                  fmt(base.measuredWpki), apps});
    }
    t.print("Table 1: workload characteristics");
    return 0;
}
