/**
 * @file
 * Fleet power-capping sweep: cap levels x fleet sizes, coordinated
 * FastCap vs. uncoordinated per-server MemScale.
 *
 * The datacenter form of the paper's question: a rack shares one PDU
 * budget, so per-server energy policies are not enough — someone has
 * to divide the budget.  For each fleet size the driver first probes
 * the uncoordinated fleet's natural draw, then sweeps rack caps
 * (fractions of that draw) and reports, per cap level:
 *
 *   - fleet energy and the peak coordination-epoch power,
 *   - epochs whose measured power violated the cap,
 *   - aggregate p99 SLO attainment (fraction of servers meeting the
 *     target), and Jain's fairness index over per-server slowdown.
 *
 * The acceptance shape: `fastcap` meets the budget every epoch, while
 * the cap-oblivious `memscale` fleet either violates the cap or (when
 * its own throttling happens to fit) gives up more tail latency.
 *
 * Fleet-specific flags on top of the usual bench keys:
 *   --fleets 2,4              fleet sizes to sweep
 *   --caps 0.99,0.97,0.95     cap levels, x the uncoordinated draw
 *   --rate 0.5                arrival intensity per server, M req/s
 *   --rate-scale 0.5,1.0,2.0  per-server rate multipliers (cycled)
 *   --arrival poisson|bursty|diurnal
 *   --horizon-ms N            per-epoch-chain horizon (default 1)
 *   --coord-epoch-ms N        coordination epoch (default 0.2)
 *   --slo-p99-us N            p99 target (default 5)
 *   --scratch DIR             checkpoint-chain scratch directory
 */

#include <sys/stat.h>

#include "bench_common.hh"

#include "harness/cluster.hh"
#include "workload/openloop.hh"

using namespace memscale;

namespace
{

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

Watts
meanFleetW(const FleetResult &r)
{
    double s = 0.0;
    for (const FleetEpochRow &row : r.epochs)
        s += row.fleetW;
    return r.epochs.empty() ? 0.0
                            : s / static_cast<double>(r.epochs.size());
}

} // namespace

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);

    // A coordination epoch must contain a few policy epochs or the
    // per-server controller cannot settle onto its budget before the
    // next telemetry cut; re-read the epoch keys with serving-scale
    // defaults (user overrides still win).
    cfg.epochLen = msToTick(conf.getDouble("epoch_ms", 0.1));
    cfg.profileLen = usToTick(conf.getDouble("profile_us", 10.0));

    cfg.mixName = "OPENLOOP";
    cfg.numCores = static_cast<std::uint32_t>(conf.getInt("cores", 8));
    cfg.modelCpuPower = true;
    cfg.serving.enabled = true;
    cfg.serving.arrival.kind =
        parseArrivalKind(conf.getString("arrival", "poisson"));
    cfg.serving.arrival.ratePerSec =
        conf.getDouble("rate", 0.5) * 1e6;
    cfg.serving.horizon = msToTick(conf.getDouble("horizon-ms", 1.0));
    cfg.serving.missesPerRequest = conf.getDouble("misses", 8.0);
    cfg.serving.sloP99Us = conf.getDouble("slo-p99-us", 5.0);

    ClusterConfig base;
    base.policy = "fastcap";
    base.coordEpoch =
        msToTick(conf.getDouble("coord-epoch-ms", 0.2));
    base.scratchDir =
        conf.getString("scratch", "/tmp/memscale_fleet_energy");
    ::mkdir(base.scratchDir.c_str(), 0755);
    base.jobs = checkedJobs(conf.getInt("jobs", 0));
    for (const std::string &v :
         splitList(conf.getString("rate-scale", "")))
        base.rateScale.push_back(std::stod(v));
    for (const std::string &v :
         splitList(conf.getString("weights", "")))
        base.weights.push_back(std::stod(v));

    std::vector<std::uint32_t> fleets;
    for (const std::string &f :
         splitList(conf.getString("fleets", "2,4")))
        fleets.push_back(
            static_cast<std::uint32_t>(std::stoul(f)));
    std::vector<double> caps;
    for (const std::string &c :
         splitList(conf.getString("caps", "0.99,0.97,0.95")))
        caps.push_back(std::stod(c));

    benchHeader("fleet_energy",
                "rack power capping: coordinated FastCap vs "
                "uncoordinated MemScale",
                cfg);
    std::printf("(arrival=%s, %.2f Mreq/s/server, horizon=%.2f ms, "
                "coord-epoch=%.2f ms, slo-p99=%.0f us)\n",
                arrivalKindName(cfg.serving.arrival.kind),
                cfg.serving.arrival.ratePerSec / 1e6,
                tickToMs(cfg.serving.horizon),
                tickToMs(base.coordEpoch), cfg.serving.sloP99Us);

    // One rest-of-system calibration for the per-server template;
    // every fleet instantiates derived copies of it.
    Watts rest = 0.0;
    runBaseline(cfg, rest);
    cfg.restWatts = rest;
    base.server = cfg;

    Table t({"fleet", "cap W", "policy", "fleet J", "peak W", "viol",
             "slo", "jain"});
    for (std::uint32_t n : fleets) {
        ClusterConfig probe = base;
        probe.numServers = n;
        probe.capW = 0.0;
        probe.policy = "memscale";
        FleetResult uncoord = ClusterHarness(probe).run();
        const Watts draw = meanFleetW(uncoord);

        t.addRow({std::to_string(n), "-", "memscale",
                  fmt(uncoord.fleetEnergyJ, 3),
                  fmt(uncoord.peakEpochW, 1), "-",
                  pct(uncoord.sloAttainment), "-"});

        for (double frac : caps) {
            const Watts cap = frac * draw;
            for (const char *policy : {"fastcap", "memscale"}) {
                ClusterConfig cc = base;
                cc.numServers = n;
                cc.capW = cap;
                cc.policy = policy;
                FleetResult r = ClusterHarness(cc).run();
                t.addRow({std::to_string(n), fmt(cap, 1), policy,
                          fmt(r.fleetEnergyJ, 3),
                          fmt(r.peakEpochW, 1),
                          std::to_string(r.capViolations) + "/" +
                              std::to_string(r.epochs.size()),
                          pct(r.sloAttainment),
                          fmt(r.jainSlowdown, 3)});
            }
        }
    }
    t.print("Fleet energy vs. aggregate p99 attainment by cap level "
            "(viol = coordination epochs over the cap)");
    return 0;
}
