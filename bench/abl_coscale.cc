/**
 * @file
 * Extension (paper Section 6 future work, later CoScale MICRO'12):
 * coordinated CPU + memory DVFS.  With CPU power modelled explicitly,
 * compares memory-only MemScale against the coordinated policy that
 * also re-clocks the cores, under the same per-core slack bound.
 *
 * Expectation: on memory-bound phases the CPU mostly waits, so
 * scaling it alongside the memory harvests additional energy within
 * the same performance budget; compute-bound mixes keep the CPU fast.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    cfg.modelCpuPower = true;
    benchHeader("Extension", "coordinated CPU+memory DVFS (CoScale)",
                cfg);

    const std::vector<const char *> mixnames = {"ILP2", "MID1", "MID2",
                                                "MID3", "MEM2"};
    const std::vector<std::string> policies = {"memscale", "coscale"};

    std::vector<SystemConfig> cfgs;
    for (const char *mixname : mixnames) {
        cfgs.push_back(cfg);
        cfgs.back().mixName = mixname;
    }
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);
    std::vector<ComparisonResult> results =
        comparePolicyGrid(eng, cfgs, bases, policies);

    Table t({"mix", "class", "policy", "sys saved", "mem saved",
             "CPU energy (vs base)", "worst CPI incr"});
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const ComparisonResult &r = results[p * cfgs.size() + i];
            const RunResult &base = bases[i].base;
            double cpu_ratio =
                base.energy.cpu > 0.0
                    ? r.policy.energy.cpu / base.energy.cpu
                    : 1.0;
            t.addRow({mixnames[i], mixByName(mixnames[i]).klass,
                      policies[p], pct(r.sysEnergySavings),
                      pct(r.memEnergySavings), pct(cpu_ratio),
                      pct(r.worstCpiIncrease)});
        }
    }
    t.print("coordinated scaling vs memory-only MemScale "
            "(CPU power modelled explicitly)");
    std::printf("\nexpectation: coscale matches or beats memscale on "
                "system energy by also shrinking\nCPU energy on "
                "memory-heavy mixes, within the same CPI bound.\n");
    return 0;
}
