/**
 * @file
 * Extension (paper Section 6 future work, later CoScale MICRO'12):
 * coordinated CPU + memory DVFS.  With CPU power modelled explicitly,
 * compares memory-only MemScale against the coordinated policy that
 * also re-clocks the cores, under the same per-core slack bound.
 *
 * Expectation: on memory-bound phases the CPU mostly waits, so
 * scaling it alongside the memory harvests additional energy within
 * the same performance budget; compute-bound mixes keep the CPU fast.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    cfg.modelCpuPower = true;
    benchHeader("Extension", "coordinated CPU+memory DVFS (CoScale)",
                cfg);

    Table t({"mix", "class", "policy", "sys saved", "mem saved",
             "CPU energy (vs base)", "worst CPI incr"});
    for (const char *mixname :
         {"ILP2", "MID1", "MID2", "MID3", "MEM2"}) {
        SystemConfig c = cfg;
        c.mixName = mixname;
        Watts rest = 0.0;
        RunResult base = runBaseline(c, rest);
        for (const char *p : {"memscale", "coscale"}) {
            ComparisonResult r = compareWithBase(c, base, rest, p);
            double cpu_ratio =
                base.energy.cpu > 0.0
                    ? r.policy.energy.cpu / base.energy.cpu
                    : 1.0;
            t.addRow({mixname, mixByName(mixname).klass, p,
                      pct(r.sysEnergySavings),
                      pct(r.memEnergySavings), pct(cpu_ratio),
                      pct(r.worstCpiIncrease)});
        }
    }
    t.print("coordinated scaling vs memory-only MemScale "
            "(CPU power modelled explicitly)");
    std::printf("\nexpectation: coscale matches or beats memscale on "
                "system energy by also shrinking\nCPU energy on "
                "memory-heavy mixes, within the same CPI bound.\n");
    return 0;
}
