/**
 * @file
 * Figure 13 reproduction: impact of the number of memory channels
 * (2, 3, 4) on MID-average savings.  Fewer channels ~ more traffic per
 * channel, approximating prefetching/out-of-order pressure.
 *
 * Paper reference: more channels -> more headroom -> larger savings;
 * even at 2 channels system savings stay around 14%.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 13", "sensitivity to channel count (MID)", cfg);

    const std::vector<std::uint32_t> channels = {4u, 3u, 2u};
    std::vector<SystemConfig> cfgs;
    for (std::uint32_t ch : channels) {
        cfgs.push_back(cfg);
        cfgs.back().mem.numChannels = ch;
    }
    std::vector<MidSweepPoint> pts = runMidSweeps(eng, cfgs);

    Table t({"channels", "sys energy saved", "mem energy saved",
             "worst CPI increase"});
    for (std::size_t i = 0; i < channels.size(); ++i) {
        const MidSweepPoint &pt = pts[i];
        t.addRow({std::to_string(channels[i]), pct(pt.sysSavings),
                  pct(pt.memSavings), pct(pt.worstCpiIncrease)});
    }
    t.print("Fig. 13: channel-count sensitivity (paper: savings grow "
            "with channels; ~14% even at 2)");
    return 0;
}
