/**
 * @file
 * Figure 13 reproduction: impact of the number of memory channels
 * (2, 3, 4) on MID-average savings.  Fewer channels ~ more traffic per
 * channel, approximating prefetching/out-of-order pressure.
 *
 * Paper reference: more channels -> more headroom -> larger savings;
 * even at 2 channels system savings stay around 14%.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Figure 13", "sensitivity to channel count (MID)", cfg);

    Table t({"channels", "sys energy saved", "mem energy saved",
             "worst CPI increase"});
    for (std::uint32_t ch : {4u, 3u, 2u}) {
        SystemConfig c = cfg;
        c.mem.numChannels = ch;
        MidSweepPoint pt = runMidSweep(c);
        t.addRow({std::to_string(ch), pct(pt.sysSavings),
                  pct(pt.memSavings), pct(pt.worstCpiIncrease)});
    }
    t.print("Fig. 13: channel-count sensitivity (paper: savings grow "
            "with channels; ~14% even at 2)");
    return 0;
}
