/**
 * @file
 * Idle-ladder study: energy vs. exit-latency-induced tail latency.
 *
 * Deep idle states trade standby power for wake-up cost — every rung
 * down the ladder (fast-exit PD, slow-exit PD, self-refresh, SR with
 * slow clock, deep powerdown) cuts IDD but stretches the exit latency
 * a demand access must absorb.  This driver runs the open-loop
 * serving workload (so the tail is a real end-to-end request
 * percentile, not a CPI proxy) at a modest arrival rate where rank
 * idleness actually exists, and walks the ladder:
 *
 *   fastpd / srpd / deeppd    whole-rank static modes (every idle
 *                             rank drops straight to that rung)
 *   ladder                    adaptive demotion: idle-time thresholds
 *                             walk each rank down rung by rung
 *   ladder+consol             same, plus migration-based rank
 *                             consolidation: hot frames are remapped
 *                             onto `hot-ranks` ranks so the cold
 *                             remainder can sink into deep states
 *
 * Each row reports system energy, the request-latency tail
 * (p50/p99/p99.9), deep-state residency shares, demotion counts, and
 * frame swaps.  The acceptance check for consolidation is visible in
 * the last rows: deep residency (SR and below) must be > 0 for
 * ladder+consol, and higher than plain ladder.
 *
 * Flags on top of the usual bench keys:
 *   --rate M          arrival intensity, M req/s (default 0.25)
 *   --misses N        mean LLC misses per request (default 8)
 *   --horizon-ms N    simulated horizon (default 2)
 *   --hot-ranks N     consolidation target set size (default 1)
 *   --migrate-us N    consolidation pass period (default 50)
 */

#include "bench_common.hh"

#include "workload/openloop.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);

    cfg.mixName = "OPENLOOP";
    cfg.serving.enabled = true;
    cfg.serving.arrival.kind =
        parseArrivalKind(conf.getString("arrival", "poisson"));
    cfg.serving.arrival.seed = cfg.seed;
    cfg.serving.arrival.ratePerSec =
        conf.getDouble("rate", 0.25) * 1e6;
    cfg.serving.horizon = msToTick(conf.getDouble("horizon-ms", 2.0));
    cfg.serving.missesPerRequest = conf.getDouble("misses", 8.0);

    const std::uint32_t hot_ranks = static_cast<std::uint32_t>(
        conf.getInt("hot-ranks", 1));
    const double migrate_us = conf.getDouble("migrate-us", 50.0);

    benchHeader("idle_ladder_tail",
                "idle-state ladder: energy vs wake-up tail", cfg);
    std::printf("(rate=%.2f Mreq/s, %.1f misses/req, horizon=%.2f ms, "
                "hot-ranks=%u, migrate-every=%.0f us)\n",
                cfg.serving.arrival.ratePerSec / 1e6,
                cfg.serving.missesPerRequest,
                tickToMs(cfg.serving.horizon), hot_ranks, migrate_us);

    // One calibrated max-frequency baseline shared by every ladder
    // variant; the baseline config never enables migration, so its
    // energy/tail reflect the untouched machine.
    CalibratedBaseline cb = runBaselines(eng, {cfg})[0];

    struct LadderCase
    {
        const char *label;
        const char *policy;
        bool migrate;
    };
    const std::vector<LadderCase> cases = {
        {"fastpd", "fastpd", false},
        {"srpd", "srpd", false},
        {"deeppd", "deeppd", false},
        {"ladder", "ladder", false},
        {"ladder+consol", "ladder", true},
    };

    std::vector<ComparisonResult> results =
        eng.map<ComparisonResult>(cases.size(), [&](std::size_t i) {
            SystemConfig c = cfg;
            if (cases[i].migrate) {
                c.mem.ladder.migrate = true;
                c.mem.ladder.hotRanks = hot_ranks;
                c.mem.ladder.migrateInterval = usToTick(migrate_us);
            }
            return compareWithBase(c, cb.base, cb.rest,
                                   cases[i].policy);
        });

    Table t({"mode", "sys J", "saved", "p50 us", "p99 us", "p99.9 us",
             "PD", "SR", "SRslow", "deepPD", "demotions", "swaps"});
    auto share = [](Tick part, Tick whole) {
        return pct(whole ? static_cast<double>(part) /
                               static_cast<double>(whole)
                         : 0.0);
    };
    {
        const ServingStats &s = cb.base.serving;
        t.addRow({"baseline", fmt(cb.base.energy.total(), 3), pct(0.0),
                  fmt(s.p50Us), fmt(s.p99Us), fmt(s.p999Us),
                  share(0, 1), share(0, 1), share(0, 1), share(0, 1),
                  "0", "0"});
    }
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const ComparisonResult &r = results[i];
        const McCounters &mc = r.policy.counters;
        const ServingStats &s = r.policy.serving;
        // rankSrTime already excludes the slow-clock share; the three
        // deep columns partition "CKE low below plain powerdown".
        Tick shallow_pd = mc.rankPrePdTime + mc.rankActPdTime -
                          mc.rankSrTime - mc.rankSrSlowTime -
                          mc.rankDeepPdTime;
        t.addRow({cases[i].label, fmt(r.policy.energy.total(), 3),
                  pct(r.sysEnergySavings), fmt(s.p50Us), fmt(s.p99Us),
                  fmt(s.p999Us), share(shallow_pd, mc.rankTime),
                  share(mc.rankSrTime, mc.rankTime),
                  share(mc.rankSrSlowTime, mc.rankTime),
                  share(mc.rankDeepPdTime, mc.rankTime),
                  std::to_string(mc.pdDemotions),
                  std::to_string(mc.migrations)});
    }
    t.print("Idle-ladder energy vs tail "
            "(residency shares of total rank-time)");

    const McCounters &consol =
        results.back().policy.counters;
    Tick deep = consol.rankSrTime + consol.rankSrSlowTime +
                consol.rankDeepPdTime;
    std::printf("\nconsolidation check: deep-state residency %s with "
                "%llu frame swaps — %s\n",
                pct(consol.rankTime
                        ? static_cast<double>(deep) /
                              static_cast<double>(consol.rankTime)
                        : 0.0)
                    .c_str(),
                static_cast<unsigned long long>(consol.migrations),
                deep > 0 ? "cold ranks reached the deep rungs"
                         : "NO deep residency (unexpected)");
    std::printf("expectation: each rung down saves standby energy but "
                "fattens the tail\n(p99.9 absorbs tXP -> tXS -> "
                "tXDP exits); consolidation recovers deep\nresidency "
                "at load by parking the cold ranks, at a bounded "
                "migration cost.\n");
    return 0;
}
