/**
 * @file
 * Ablation (DESIGN.md): row-buffer management and bank scheduling.
 * The paper adopts closed-page + FCFS, citing Sudan et al. that
 * closed-page suits multiprogrammed multi-cores, and argues scheduling
 * sophistication is orthogonal for 1-outstanding-miss cores.  This
 * bench quantifies both claims on our substrate: row-hit rates,
 * baseline performance, and MemScale savings under all four
 * combinations.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Ablation", "page policy x scheduler", cfg);

    struct Combo
    {
        const char *label;
        PagePolicy page;
        SchedulerPolicy sched;
    };
    const Combo combos[] = {
        {"closed+FCFS (paper)", PagePolicy::ClosedPage,
         SchedulerPolicy::Fcfs},
        {"closed+FR-FCFS", PagePolicy::ClosedPage,
         SchedulerPolicy::FrFcfs},
        {"open+FCFS", PagePolicy::OpenPage, SchedulerPolicy::Fcfs},
        {"open+FR-FCFS", PagePolicy::OpenPage,
         SchedulerPolicy::FrFcfs},
    };

    const std::vector<const char *> mixnames = {"MID2", "MEM1"};
    std::vector<SweepCase> cases;
    for (const char *mixname : mixnames) {
        for (const Combo &combo : combos) {
            SystemConfig c = cfg;
            c.mixName = mixname;
            c.mem.pagePolicy = combo.page;
            c.mem.scheduler = combo.sched;
            cases.push_back(SweepCase{std::move(c), "memscale"});
        }
    }
    std::vector<ComparisonResult> results = compareCases(eng, cases);

    std::size_t idx = 0;
    for (const char *mixname : mixnames) {
        Table t({"configuration", "row-hit rate", "base CPI (avg)",
                 "sys energy saved", "worst CPI incr"});
        for (const Combo &combo : combos) {
            const ComparisonResult &r = results[idx++];
            double hits = r.base.counters.rowHitFraction();
            t.addRow({combo.label, pct(hits), fmt(r.base.avgCpi()),
                      pct(r.sysEnergySavings),
                      pct(r.worstCpiIncrease)});
        }
        t.print(std::string("page-policy/scheduler ablation, ") +
                mixname);
    }
    // Second placement axis (beyond the paper): rank-aware page
    // migration.  Keep the paper's closed+FCFS combo and compare
    // MemScale-with-ladder against the same policy plus hot/cold
    // consolidation, which remaps hot frames onto one rank per
    // channel so the cold ranks can sink into the deep idle states.
    std::vector<SweepCase> consol;
    for (const char *mixname : mixnames) {
        for (int migrate = 0; migrate < 2; ++migrate) {
            SystemConfig c = cfg;
            c.mixName = mixname;
            c.mem.ladder.migrate = migrate != 0;
            consol.push_back(
                SweepCase{std::move(c), "memscale-ladder"});
        }
    }
    std::vector<ComparisonResult> cres = compareCases(eng, consol);

    Table ct({"placement", "mix", "deep idle time", "swaps",
              "sys energy saved", "worst CPI incr"});
    idx = 0;
    for (const char *mixname : mixnames) {
        for (int migrate = 0; migrate < 2; ++migrate) {
            const ComparisonResult &r = cres[idx++];
            const McCounters &mc = r.policy.counters;
            double deep_frac =
                mc.rankTime
                    ? static_cast<double>(mc.rankSrTime +
                                          mc.rankSrSlowTime +
                                          mc.rankDeepPdTime) /
                          static_cast<double>(mc.rankTime)
                    : 0.0;
            ct.addRow({migrate ? "consolidated" : "static", mixname,
                       pct(deep_frac),
                       std::to_string(mc.migrations),
                       pct(r.sysEnergySavings),
                       pct(r.worstCpiIncrease)});
        }
    }
    ct.print("page placement: rank consolidation under the idle "
             "ladder");
    std::printf("\nexpectation: closed-page competitive or better for "
                "these multiprogrammed mixes;\nFR-FCFS changes little "
                "with one outstanding miss per core (paper Section "
                "4.1);\nconsolidation trades bounded copy traffic for "
                "deep-state residency on cold ranks.\n");
    return 0;
}
