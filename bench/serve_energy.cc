/**
 * @file
 * Open-loop serving sweep: energy vs. tail latency across arrival
 * intensities.
 *
 * Not a figure from the paper — MemScale evaluates closed-loop
 * SimPoint traces — but the datacenter question the paper motivates:
 * how much energy can memory DVFS save under real request traffic,
 * and what does it cost at the tail?  For each arrival rate the
 * driver calibrates a max-frequency baseline, then runs each policy
 * against it and reports energy next to p50/p99/p99.9 end-to-end
 * request latency.
 *
 * Serving-specific flags on top of the usual bench keys:
 *   --arrival poisson|bursty|diurnal   traffic shape (default poisson)
 *   --rates 1.0,2.0,4.0                arrival intensities, M req/s
 *   --slo-p99-us N                     p99 target handed to `slo`
 *   --horizon-ms N                     simulated horizon (default 2)
 *   --misses N                         mean LLC misses per request
 *   --policies a,b,c                   policies to compare
 */

#include "bench_common.hh"

#include "workload/openloop.hh"

using namespace memscale;

namespace
{

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);

    cfg.mixName = "OPENLOOP";
    cfg.serving.enabled = true;
    cfg.serving.arrival.kind =
        parseArrivalKind(conf.getString("arrival", "poisson"));
    cfg.serving.arrival.seed = cfg.seed;
    cfg.serving.horizon =
        msToTick(conf.getDouble("horizon-ms", 2.0));
    cfg.serving.missesPerRequest = conf.getDouble("misses", 8.0);
    cfg.serving.sloP99Us = conf.getDouble("slo-p99-us", 0.0);

    std::vector<double> rates;
    for (const std::string &r :
         splitList(conf.getString("rates", "0.5,1.0,2.0,4.0")))
        rates.push_back(std::stod(r) * 1e6);

    std::vector<std::string> policies =
        splitList(conf.getString("policies", "baseline,memscale,slo"));

    benchHeader("serve_energy", "open-loop serving: energy vs tail",
                cfg);
    std::printf("(arrival=%s, horizon=%.2f ms, %.1f misses/req, "
                "slo-p99=%.0f us)\n",
                arrivalKindName(cfg.serving.arrival.kind),
                tickToMs(cfg.serving.horizon),
                cfg.serving.missesPerRequest, cfg.serving.sloP99Us);

    // One config per arrival intensity; each is calibrated against
    // its own max-frequency baseline run.
    std::vector<SystemConfig> cfgs;
    for (double rate : rates) {
        cfgs.push_back(cfg);
        cfgs.back().serving.arrival.ratePerSec = rate;
    }
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);

    // Baseline is in `bases`; run only the non-baseline policies.
    std::vector<std::string> extra;
    for (const std::string &p : policies)
        if (p != "baseline")
            extra.push_back(p);
    std::vector<ComparisonResult> results =
        comparePolicyGrid(eng, cfgs, bases, extra);

    Table t({"Mreq/s", "policy", "sys J", "saved", "p50 us", "p99 us",
             "p99.9 us", "done", "drop"});
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const std::string mrate = fmt(rates[i] / 1e6, 2);
        auto row = [&](const std::string &name, const RunResult &r,
                       double saved) {
            const ServingStats &s = r.serving;
            t.addRow({mrate, name, fmt(r.energy.total(), 3),
                      pct(saved), fmt(s.p50Us), fmt(s.p99Us),
                      fmt(s.p999Us), std::to_string(s.completed),
                      std::to_string(s.dropped)});
        };
        row("baseline", bases[i].base, 0.0);
        for (std::size_t p = 0; p < extra.size(); ++p) {
            const ComparisonResult &r = results[p * cfgs.size() + i];
            row(extra[p], r.policy, r.sysEnergySavings);
        }
        maybeExportObs(conf, bases[i].base, "rate" + mrate);
    }
    t.print("Energy vs. tail latency by arrival intensity "
            "(p99.9 needs enough completions to be meaningful)");
    return 0;
}
