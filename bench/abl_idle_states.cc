/**
 * @file
 * The paper's motivating argument (Sections 1 and 5) quantified: idle
 * low-power states and throttling cannot match active low-power modes
 * on servers because rank-level idleness is scarce.  Compares the
 * whole DDR3 idle ladder — fast-exit powerdown, slow-exit powerdown,
 * self-refresh, self-refresh with slow clock, deep powerdown, and the
 * adaptive demotion policy that walks ranks down those rungs — plus
 * bandwidth throttling, MemScale, and MemScale composed with the
 * ladder, across the three workload classes.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Ablation",
                "idle states + throttling vs active low-power modes",
                cfg);

    const std::vector<std::string> policies = {
        "fastpd", "slowpd",  "srpd",     "srslowpd", "deeppd",
        "ladder", "throttle", "memscale", "memscale-ladder"};
    const std::vector<const char *> mixnames = {"ILP2", "MID2", "MEM2"};

    std::vector<SystemConfig> cfgs;
    for (const char *mixname : mixnames) {
        cfgs.push_back(cfg);
        cfgs.back().mixName = mixname;
    }
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);
    std::vector<ComparisonResult> results =
        comparePolicyGrid(eng, cfgs, bases, policies);

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        Table t({"policy", "rank idle (pre-PD) time", "deep idle time",
                 "demotions", "sys saved", "mem saved",
                 "worst CPI incr"});
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const ComparisonResult &r = results[p * cfgs.size() + i];
            const McCounters &mc = r.policy.counters;
            double pd_frac =
                mc.rankTime
                    ? static_cast<double>(mc.rankPrePdTime) /
                          static_cast<double>(mc.rankTime)
                    : 0.0;
            // Self-refresh and below: the rungs this PR added.
            double deep_frac =
                mc.rankTime
                    ? static_cast<double>(mc.rankSrTime +
                                          mc.rankSrSlowTime +
                                          mc.rankDeepPdTime) /
                          static_cast<double>(mc.rankTime)
                    : 0.0;
            t.addRow({policies[p], pct(pd_frac), pct(deep_frac),
                      std::to_string(mc.pdDemotions),
                      pct(r.sysEnergySavings),
                      pct(r.memEnergySavings),
                      pct(r.worstCpiIncrease)});
        }
        t.print(std::string("idle-state comparison, ") + mixnames[i]);
    }
    std::printf("\nexpectation (paper Sections 1/5): even immediate "
                "powerdown finds limited rank idleness\nonce traffic "
                "exists; deep states pay exit latency; throttling "
                "only delays accesses;\nactive modes (MemScale) win "
                "across all classes.\n");
    return 0;
}
