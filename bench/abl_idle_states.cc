/**
 * @file
 * The paper's motivating argument (Sections 1 and 5) quantified: idle
 * low-power states and throttling cannot match active low-power modes
 * on servers because rank-level idleness is scarce.  Compares fast-
 * exit powerdown, slow-exit powerdown, self-refresh powerdown (deepest
 * idle state), bandwidth throttling, and MemScale across the three
 * workload classes.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Ablation",
                "idle states + throttling vs active low-power modes",
                cfg);

    const std::vector<std::string> policies = {
        "fastpd", "slowpd", "srpd", "throttle", "memscale"};

    for (const char *mixname : {"ILP2", "MID2", "MEM2"}) {
        SystemConfig c = cfg;
        c.mixName = mixname;
        Watts rest = 0.0;
        RunResult base = runBaseline(c, rest);
        Table t({"policy", "rank idle (pre-PD) time", "sys saved",
                 "mem saved", "worst CPI incr"});
        for (const std::string &p : policies) {
            ComparisonResult r = compareWithBase(c, base, rest, p);
            const McCounters &mc = r.policy.counters;
            double pd_frac =
                mc.rankTime
                    ? static_cast<double>(mc.rankPrePdTime) /
                          static_cast<double>(mc.rankTime)
                    : 0.0;
            t.addRow({p, pct(pd_frac), pct(r.sysEnergySavings),
                      pct(r.memEnergySavings),
                      pct(r.worstCpiIncrease)});
        }
        t.print(std::string("idle-state comparison, ") + mixname);
    }
    std::printf("\nexpectation (paper Sections 1/5): even immediate "
                "powerdown finds limited rank idleness\nonce traffic "
                "exists; deep states pay exit latency; throttling "
                "only delays accesses;\nactive modes (MemScale) win "
                "across all classes.\n");
    return 0;
}
