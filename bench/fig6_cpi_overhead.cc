/**
 * @file
 * Figure 6 reproduction: average and worst-program CPI increase of
 * MemScale per mix against the 10% degradation bound.
 *
 * Paper reference: no application slowed more than 9.2%; workload
 * averages never above 7.2%; ILP < MID < MEM ordering.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 6", "MemScale CPI overhead per mix", cfg);

    std::vector<SweepCase> cases;
    for (const MixSpec &mix : allMixes()) {
        SystemConfig c = cfg;
        c.mixName = mix.name;
        cases.push_back(SweepCase{std::move(c), "memscale"});
    }
    std::vector<ComparisonResult> results = compareCases(eng, cases);

    Table t({"mix", "class", "avg CPI increase", "worst CPI increase",
             "bound", "worst app"});
    double global_worst = 0.0;
    double worst_avg = 0.0;
    std::size_t idx = 0;
    for (const MixSpec &mix : allMixes()) {
        const ComparisonResult &r = results[idx++];
        std::size_t worst_i = 0;
        for (std::size_t i = 1; i < r.cpiIncrease.size(); ++i)
            if (r.cpiIncrease[i] > r.cpiIncrease[worst_i])
                worst_i = i;
        t.addRow({mix.name, mix.klass, pct(r.avgCpiIncrease),
                  pct(r.worstCpiIncrease), pct(cfg.gamma),
                  r.base.coreApp[worst_i]});
        global_worst = std::max(global_worst, r.worstCpiIncrease);
        worst_avg = std::max(worst_avg, r.avgCpiIncrease);
    }
    t.print("Fig. 6: CPI overhead (paper: worst program <= 9.2%, "
            "worst average <= 7.2%)");
    std::printf("\nmeasured: worst program %s, worst average %s, "
                "bound %s\n",
                pct(global_worst).c_str(), pct(worst_avg).c_str(),
                pct(cfg.gamma).c_str());
    return 0;
}
