/**
 * @file
 * Section 4.2.4 (text) reproduction: sensitivity to the OS quantum
 * (epoch) length and to the profiling-window length.
 *
 * Paper reference: MemScale is essentially insensitive to reasonable
 * values of both (epochs 1-10 ms, profiling 0.1-0.5 ms).  At the
 * benches' scaled time base, the equivalent sweep spans the same
 * epoch:runtime ratios.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Sens. epoch/profile",
                "sensitivity to epoch and profiling lengths (MID)",
                cfg);

    // Epoch sweep at fixed profile:epoch ratio (paper: 1/5/10 ms).
    Table t1({"epoch", "sys energy saved", "worst CPI increase"});
    const double base_epoch_ms = tickToMs(cfg.epochLen);
    for (double scale : {0.5, 1.0, 2.0}) {
        SystemConfig c = cfg;
        double epoch_ms = base_epoch_ms * scale;
        c.epochLen = msToTick(epoch_ms);
        c.profileLen = msToTick(epoch_ms * 0.06);
        MidSweepPoint pt = runMidSweep(c);
        t1.addRow({fmt(epoch_ms, 3) + " ms", pct(pt.sysSavings),
                   pct(pt.worstCpiIncrease)});
    }
    t1.print("epoch-length sweep (paper analog: 1/5/10 ms)");

    // Profiling-window sweep at fixed epoch (paper: 0.1/0.3/0.5 ms).
    Table t2({"profile window", "sys energy saved",
              "worst CPI increase"});
    const double base_profile_us = tickToUs(cfg.profileLen);
    for (double scale : {1.0 / 3.0, 1.0, 5.0 / 3.0}) {
        SystemConfig c = cfg;
        c.profileLen = usToTick(base_profile_us * scale);
        MidSweepPoint pt = runMidSweep(c);
        t2.addRow({fmt(base_profile_us * scale, 1) + " us",
                   pct(pt.sysSavings), pct(pt.worstCpiIncrease)});
    }
    t2.print("profiling-window sweep (paper analog: 0.1/0.3/0.5 ms)");

    std::printf("\npaper: essentially insensitive to both "
                "parameters.\n");
    return 0;
}
