/**
 * @file
 * Section 4.2.4 (text) reproduction: sensitivity to the OS quantum
 * (epoch) length and to the profiling-window length.
 *
 * Paper reference: MemScale is essentially insensitive to reasonable
 * values of both (epochs 1-10 ms, profiling 0.1-0.5 ms).  At the
 * benches' scaled time base, the equivalent sweep spans the same
 * epoch:runtime ratios.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Sens. epoch/profile",
                "sensitivity to epoch and profiling lengths (MID)",
                cfg);

    // Both sweeps (epoch at fixed profile:epoch ratio, profiling
    // window at fixed epoch) fan out as one batch.
    const std::vector<double> epochScales = {0.5, 1.0, 2.0};
    const std::vector<double> profScales = {1.0 / 3.0, 1.0, 5.0 / 3.0};
    const double base_epoch_ms = tickToMs(cfg.epochLen);
    const double base_profile_us = tickToUs(cfg.profileLen);

    std::vector<SystemConfig> cfgs;
    for (double scale : epochScales) {
        SystemConfig c = cfg;
        double epoch_ms = base_epoch_ms * scale;
        c.epochLen = msToTick(epoch_ms);
        c.profileLen = msToTick(epoch_ms * 0.06);
        cfgs.push_back(c);
    }
    for (double scale : profScales) {
        SystemConfig c = cfg;
        c.profileLen = usToTick(base_profile_us * scale);
        cfgs.push_back(c);
    }
    std::vector<MidSweepPoint> pts = runMidSweeps(eng, cfgs);

    Table t1({"epoch", "sys energy saved", "worst CPI increase"});
    for (std::size_t i = 0; i < epochScales.size(); ++i) {
        t1.addRow({fmt(base_epoch_ms * epochScales[i], 3) + " ms",
                   pct(pts[i].sysSavings),
                   pct(pts[i].worstCpiIncrease)});
    }
    t1.print("epoch-length sweep (paper analog: 1/5/10 ms)");

    Table t2({"profile window", "sys energy saved",
              "worst CPI increase"});
    for (std::size_t i = 0; i < profScales.size(); ++i) {
        const MidSweepPoint &pt = pts[epochScales.size() + i];
        t2.addRow({fmt(base_profile_us * profScales[i], 1) + " us",
                   pct(pt.sysSavings), pct(pt.worstCpiIncrease)});
    }
    t2.print("profiling-window sweep (paper analog: 0.1/0.3/0.5 ms)");

    std::printf("\npaper: essentially insensitive to both "
                "parameters.\n");
    return 0;
}
