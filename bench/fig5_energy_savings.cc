/**
 * @file
 * Figure 5 reproduction: memory-subsystem and full-system energy
 * savings of MemScale vs. the max-frequency baseline for all 12
 * workload mixes at the default 10% CPI degradation bound.
 *
 * Paper reference: memory savings 17-71%, system savings 6-31%;
 * ILP > MID > MEM ordering.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    if (int rc = maybeSelfCheck(argc, argv, conf, cfg); rc >= 0)
        return rc;
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 5", "MemScale energy savings per mix", cfg);

    std::vector<SweepCase> cases;
    for (const MixSpec &mix : allMixes()) {
        SystemConfig c = cfg;
        c.mixName = mix.name;
        cases.push_back(SweepCase{std::move(c), "memscale"});
    }
    std::vector<ComparisonResult> results = compareCases(eng, cases);

    Table t({"mix", "class", "mem energy saved", "sys energy saved",
             "runtime base(ms)", "runtime ms(ms)"});
    double mem_min = 1.0, mem_max = 0.0, sys_min = 1.0, sys_max = 0.0;
    std::size_t i = 0;
    for (const MixSpec &mix : allMixes()) {
        const ComparisonResult &r = results[i++];
        maybeExportObs(conf, r.policy, mix.name);
        t.addRow({mix.name, mix.klass, pct(r.memEnergySavings),
                  pct(r.sysEnergySavings),
                  fmt(tickToMs(r.base.runtime)),
                  fmt(tickToMs(r.policy.runtime))});
        mem_min = std::min(mem_min, r.memEnergySavings);
        mem_max = std::max(mem_max, r.memEnergySavings);
        sys_min = std::min(sys_min, r.sysEnergySavings);
        sys_max = std::max(sys_max, r.sysEnergySavings);
    }
    t.print("Fig. 5: energy savings vs baseline (paper: mem 17-71%, "
            "sys 6-31%)");
    std::printf("\nmeasured ranges: memory %s..%s, system %s..%s\n",
                pct(mem_min).c_str(), pct(mem_max).c_str(),
                pct(sys_min).c_str(), pct(sys_max).c_str());
    return 0;
}
