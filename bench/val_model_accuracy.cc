/**
 * @file
 * Validation: the policy's counter-driven performance model (Eqs. 2-9)
 * against ground truth.  Calibrate the model once from a nominal-
 * frequency run, predict the average CPI at every grid frequency, and
 * compare against actually running the whole memory subsystem
 * statically at that frequency.
 *
 * Paper claim (Section 3.3): the counter approximation "works well in
 * practice"; errors are small and the slack mechanism absorbs them.
 */

#include "bench_common.hh"
#include "memscale/perf_model.hh"
#include "memscale/policies/static_policy.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    cfg.mixName = "MID2";
    benchHeader("Validation", "perf-model predicted vs measured CPI",
                cfg);

    CalibratedBaseline cal = runBaselines(eng, {cfg})[0];
    const RunResult &base = cal.base;
    Watts rest = cal.rest;

    // Calibrate the model from whole-run counters of the baseline.
    // Cores finish at different times; scale each core's counts so
    // window/tic reproduces its true per-instruction time (the live
    // policy profiles all cores over one common window, where this is
    // automatic).
    ProfileData profile;
    profile.mc = base.counters;
    profile.windowLen = base.runtime;
    profile.freqDuring = nominalFreqIndex;
    const double cpu_hz = cfg.cpuGHz * 1e9;
    for (std::size_t i = 0; i < base.coreCpi.size(); ++i) {
        double done_sec = static_cast<double>(cfg.instrBudget) *
                          base.coreCpi[i] / cpu_hz;
        double scale = tickToSec(base.runtime) / done_sec;
        profile.cores.push_back(CoreSample{
            static_cast<std::uint64_t>(
                static_cast<double>(cfg.instrBudget) * scale),
            static_cast<std::uint64_t>(
                static_cast<double>(base.coreTlm[i]) * scale)});
    }
    PerfModel model(cfg.cpuGHz);
    model.calibrate(profile);

    // Ground truth: run the whole memory subsystem statically at each
    // grid frequency, all frequencies in parallel.
    std::vector<RunResult> truth = eng.map<RunResult>(
        numFreqPoints, [&](std::size_t f) {
            SystemConfig c = cfg;
            c.restWatts = rest;
            StaticPolicy policy(busFreqGridMHz[f]);
            System sys(c, policy);
            return sys.run();
        });

    Table t({"bus MHz", "predicted CPI", "measured CPI", "error"});
    double worst_err = 0.0;
    for (FreqIndex f = 0; f < numFreqPoints; ++f) {
        double predicted = 0.0;
        for (std::uint32_t c = 0; c < cfg.numCores; ++c)
            predicted += model.cpi(c, f);
        predicted /= cfg.numCores;

        double measured = truth[f].avgCpi();
        double err = predicted / measured - 1.0;
        worst_err = std::max(worst_err, std::abs(err));
        t.addRow({std::to_string(busFreqGridMHz[f]), fmt(predicted, 3),
                  fmt(measured, 3), pct(err)});
    }
    t.print("Eq. 2-9 model vs static-frequency ground truth (MID2 "
            "average CPI)");
    std::printf("\nworst absolute error: %s (paper: counter model "
                "errors are small; slack absorbs them)\n",
                pct(worst_err).c_str());
    return 0;
}
