/**
 * @file
 * Figure 10 reproduction: MID-average system energy breakdown (DRAM,
 * PLL/Reg, MC, rest-of-system) per policy, normalized to the baseline.
 *
 * Paper reference: MemScale cuts DRAM, PLL/Reg *and* MC energy;
 * Decoupled only cuts DRAM energy; Slow-PD inflates rest-of-system
 * energy through its slowdown.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 10", "system energy breakdown by policy (MID)",
                cfg);

    const std::vector<std::string> policies = {
        "baseline", "fastpd", "slowpd", "decoupled", "static",
        "memscale-memenergy", "memscale", "memscale-fastpd"};
    const std::vector<std::string> realPolicies(policies.begin() + 1,
                                                policies.end());

    std::vector<SystemConfig> cfgs = midConfigs(cfg);
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);
    double base_total = 0.0;
    for (const CalibratedBaseline &b : bases)
        base_total += b.base.energy.total();
    std::vector<ComparisonResult> results =
        comparePolicyGrid(eng, cfgs, bases, realPolicies);

    Table t({"policy", "DRAM", "PLL/Reg", "MC", "rest of system",
             "total (vs base)"});
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        const std::string &p = policies[pi];
        EnergyBreakdown sum;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            if (pi == 0) {  // "baseline"
                sum += bases[i].base.energy;
            } else {
                sum += results[(pi - 1) * cfgs.size() + i]
                           .policy.energy;
            }
        }
        t.addRow({p, pct(sum.dram() / base_total),
                  pct(sum.pllReg / base_total),
                  pct(sum.mc / base_total),
                  pct(sum.rest / base_total),
                  pct(sum.total() / base_total)});
    }
    t.print("Fig. 10: energy split, normalized to baseline total");
    return 0;
}
