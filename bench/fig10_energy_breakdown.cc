/**
 * @file
 * Figure 10 reproduction: MID-average system energy breakdown (DRAM,
 * PLL/Reg, MC, rest-of-system) per policy, normalized to the baseline.
 *
 * Paper reference: MemScale cuts DRAM, PLL/Reg *and* MC energy;
 * Decoupled only cuts DRAM energy; Slow-PD inflates rest-of-system
 * energy through its slowdown.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Figure 10", "system energy breakdown by policy (MID)",
                cfg);

    const std::vector<std::string> policies = {
        "baseline", "fastpd", "slowpd", "decoupled", "static",
        "memscale-memenergy", "memscale", "memscale-fastpd"};

    std::vector<std::pair<RunResult, Watts>> bases;
    std::vector<SystemConfig> cfgs;
    double base_total = 0.0;
    for (const MixSpec &mix : allMixes()) {
        if (mix.klass != "MID")
            continue;
        SystemConfig c = cfg;
        c.mixName = mix.name;
        Watts rest = 0.0;
        RunResult base = runBaseline(c, rest);
        base_total += base.energy.total();
        bases.emplace_back(std::move(base), rest);
        cfgs.push_back(c);
    }

    Table t({"policy", "DRAM", "PLL/Reg", "MC", "rest of system",
             "total (vs base)"});
    for (const std::string &p : policies) {
        EnergyBreakdown sum;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            if (p == "baseline") {
                sum += bases[i].first.energy;
            } else {
                ComparisonResult r = compareWithBase(
                    cfgs[i], bases[i].first, bases[i].second, p);
                sum += r.policy.energy;
            }
        }
        t.addRow({p, pct(sum.dram() / base_total),
                  pct(sum.pllReg / base_total),
                  pct(sum.mc / base_total),
                  pct(sum.rest / base_total),
                  pct(sum.total() / base_total)});
    }
    t.print("Fig. 10: energy split, normalized to baseline total");
    return 0;
}
