/**
 * @file
 * Figure 7 reproduction: MID3 timeline under MemScale — selected bus
 * frequency, per-application CPI, and scaled channel utilization per
 * epoch.  The apsi phase change mid-run must pull the frequency up
 * within one epoch of being observed.
 */

#include <map>

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    cfg.mixName = "MID3";
    benchHeader("Figure 7",
                "MID3 timeline: frequency tracks the apsi phase change",
                cfg);

    CalibratedBaseline cal = runBaselines(eng, {cfg})[0];
    ComparisonResult r =
        compareWithBase(cfg, cal.base, cal.rest, "memscale");
    maybeExportObs(conf, r.policy);

    // Group cores by application (x4 instances each).
    std::map<std::string, std::vector<std::size_t>> by_app;
    for (std::size_t i = 0; i < r.policy.coreApp.size(); ++i)
        by_app[r.policy.coreApp[i]].push_back(i);

    std::vector<std::string> headers = {"t(ms)", "bus MHz", "util"};
    for (const auto &[app, _] : by_app)
        headers.push_back("CPI " + app);
    Table t(headers);

    std::uint32_t min_mhz = 800, max_mhz = 0;
    for (const EpochRecord &er : r.policy.timeline) {
        std::vector<std::string> row = {fmt(tickToMs(er.start)),
                                        std::to_string(er.busMHz),
                                        pct(er.channelUtil)};
        for (const auto &[app, cores] : by_app) {
            double cpi = 0.0;
            for (std::size_t c : cores)
                cpi += er.coreCpi[c];
            row.push_back(fmt(cpi / cores.size()));
        }
        t.addRow(row);
        min_mhz = std::min(min_mhz, er.busMHz);
        max_mhz = std::max(max_mhz, er.busMHz);
    }
    t.print("Fig. 7: MID3 per-epoch timeline");
    std::printf("\nfrequency range used: %u..%u MHz "
                "(paper: min early, raised at the apsi phase change)\n",
                min_mhz, max_mhz);
    std::printf("apsi worst CPI increase: %s (bound %s)\n",
                pct(r.worstCpiIncrease).c_str(), pct(cfg.gamma).c_str());
    return 0;
}
