/**
 * @file
 * Figure 12 reproduction: impact of the maximum allowed CPI
 * degradation (1%, 5%, 10%, 15%) on MID-average system energy savings
 * and worst-case CPI increase.
 *
 * Paper reference: savings grow from 1% to 10% bounds, then saturate —
 * beyond a point, running longer costs more system energy than the
 * memory saves, so the policy stops scaling down.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 12", "sensitivity to the CPI bound (MID)", cfg);

    const std::vector<double> bounds = {0.01, 0.05, 0.10, 0.15};
    std::vector<SystemConfig> cfgs;
    for (double bound : bounds) {
        cfgs.push_back(cfg);
        cfgs.back().gamma = bound;
    }
    std::vector<MidSweepPoint> pts = runMidSweeps(eng, cfgs);

    Table t({"bound", "sys energy saved", "mem energy saved",
             "worst CPI increase"});
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        const MidSweepPoint &pt = pts[i];
        t.addRow({pct(bounds[i], 0), pct(pt.sysSavings),
                  pct(pt.memSavings), pct(pt.worstCpiIncrease)});
    }
    t.print("Fig. 12: CPI-bound sensitivity (paper: savings saturate "
            "beyond 10%)");
    return 0;
}
