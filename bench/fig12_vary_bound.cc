/**
 * @file
 * Figure 12 reproduction: impact of the maximum allowed CPI
 * degradation (1%, 5%, 10%, 15%) on MID-average system energy savings
 * and worst-case CPI increase.
 *
 * Paper reference: savings grow from 1% to 10% bounds, then saturate —
 * beyond a point, running longer costs more system energy than the
 * memory saves, so the policy stops scaling down.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Figure 12", "sensitivity to the CPI bound (MID)", cfg);

    Table t({"bound", "sys energy saved", "mem energy saved",
             "worst CPI increase"});
    for (double bound : {0.01, 0.05, 0.10, 0.15}) {
        SystemConfig c = cfg;
        c.gamma = bound;
        MidSweepPoint pt = runMidSweep(c);
        t.addRow({pct(bound, 0), pct(pt.sysSavings),
                  pct(pt.memSavings), pct(pt.worstCpiIncrease)});
    }
    t.print("Fig. 12: CPI-bound sensitivity (paper: savings saturate "
            "beyond 10%)");
    return 0;
}
