/**
 * @file
 * Extension (paper Section 6 future work): per-channel frequency
 * selection.  Compares lockstep MemScale against the per-channel
 * variant on the MID mixes and on a deliberately skewed workload
 * (memory-hot and compute-only applications whose footprints load the
 * channels unevenly through capacity placement).
 */

#include "bench_common.hh"

using namespace memscale;

namespace
{

/** A skewed two-app workload: half swim-like, half eon-like. */
std::vector<AppProfile>
skewedApps()
{
    AppProfile hot = appByName("swim");
    AppProfile cold = appByName("eon");
    return {hot, cold};
}

} // namespace

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Extension", "per-channel DVFS vs lockstep MemScale",
                cfg);

    const std::vector<std::string> policies = {"memscale",
                                               "memscale-perchannel"};

    std::vector<SystemConfig> cfgs = midConfigs(cfg);
    cfgs.push_back(cfg);
    cfgs.back().mixName = "skewed";
    cfgs.back().customApps = skewedApps();

    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);
    std::vector<ComparisonResult> results =
        comparePolicyGrid(eng, cfgs, bases, policies);

    Table t({"workload", "policy", "sys energy saved",
             "mem energy saved", "worst CPI incr"});
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const ComparisonResult &r = results[p * cfgs.size() + i];
            t.addRow({cfgs[i].mixName, policies[p],
                      pct(r.sysEnergySavings),
                      pct(r.memEnergySavings),
                      pct(r.worstCpiIncrease)});
        }
    }
    t.print("per-channel DVFS extension");
    std::printf("\nwith line-interleaved channels the loads are nearly "
                "symmetric, so parity with\nlockstep MemScale is the "
                "expected result; gains require skewed channel "
                "traffic.\n");
    return 0;
}
