/**
 * @file
 * Extension (paper Section 6 future work): per-channel frequency
 * selection.  Compares lockstep MemScale against the per-channel
 * variant on the MID mixes and on a deliberately skewed workload
 * (memory-hot and compute-only applications whose footprints load the
 * channels unevenly through capacity placement).
 */

#include "bench_common.hh"

using namespace memscale;

namespace
{

/** A skewed two-app workload: half swim-like, half eon-like. */
std::vector<AppProfile>
skewedApps()
{
    AppProfile hot = appByName("swim");
    AppProfile cold = appByName("eon");
    return {hot, cold};
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Extension", "per-channel DVFS vs lockstep MemScale",
                cfg);

    Table t({"workload", "policy", "sys energy saved",
             "mem energy saved", "worst CPI incr"});
    for (const MixSpec &mix : allMixes()) {
        if (mix.klass != "MID")
            continue;
        SystemConfig c = cfg;
        c.mixName = mix.name;
        Watts rest = 0.0;
        RunResult base = runBaseline(c, rest);
        for (const char *p : {"memscale", "memscale-perchannel"}) {
            ComparisonResult r = compareWithBase(c, base, rest, p);
            t.addRow({mix.name, p, pct(r.sysEnergySavings),
                      pct(r.memEnergySavings),
                      pct(r.worstCpiIncrease)});
        }
    }

    SystemConfig c = cfg;
    c.mixName = "skewed";
    c.customApps = skewedApps();
    Watts rest = 0.0;
    RunResult base = runBaseline(c, rest);
    for (const char *p : {"memscale", "memscale-perchannel"}) {
        ComparisonResult r = compareWithBase(c, base, rest, p);
        t.addRow({"skewed", p, pct(r.sysEnergySavings),
                  pct(r.memEnergySavings), pct(r.worstCpiIncrease)});
    }
    t.print("per-channel DVFS extension");
    std::printf("\nwith line-interleaved channels the loads are nearly "
                "symmetric, so parity with\nlockstep MemScale is the "
                "expected result; gains require skewed channel "
                "traffic.\n");
    return 0;
}
