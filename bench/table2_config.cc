/**
 * @file
 * Table 2 reproduction: prints the simulated system settings (timing,
 * currents, organization) as instantiated by the models, so any drift
 * between the paper's parameters and the code is immediately visible.
 */

#include "bench_common.hh"
#include "dram/timing.hh"
#include "power/params.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Table 2", "main system settings as instantiated", cfg);

    const TimingParams &tp = TimingParams::at(nominalFreqIndex);
    Table t({"parameter", "value", "paper"});
    t.addRow({"CPU cores", std::to_string(cfg.numCores) +
              " in-order, 4 GHz", "16 in-order, 4 GHz"});
    t.addRow({"channels", std::to_string(cfg.mem.numChannels),
              "4 DDR3"});
    t.addRow({"DIMMs", std::to_string(cfg.mem.totalDimms()) +
              " x 2GB ECC", "8 x 2GB with ECC"});
    t.addRow({"ranks/channel",
              std::to_string(cfg.mem.ranksPerChannel()), "4"});
    t.addRow({"banks/rank", std::to_string(cfg.mem.banksPerRank),
              "8"});
    t.addRow({"tRCD/tRP/tCL",
              fmt(tickToNs(tp.tRCD), 0) + "/" +
              fmt(tickToNs(tp.tRP), 0) + "/" +
              fmt(tickToNs(tp.tCL), 0) + " ns", "15/15/15 ns"});
    t.addRow({"tFAW", fmt(tickToNs(tp.tFAW), 2) + " ns",
              "20 cycles @800"});
    t.addRow({"tRTP", fmt(tickToNs(tp.tRTP), 2) + " ns",
              "5 cycles @800"});
    t.addRow({"tRAS", fmt(tickToNs(tp.tRAS), 0) + " ns",
              "28 cycles @800"});
    t.addRow({"tRRD", fmt(tickToNs(tp.tRRD), 0) + " ns",
              "4 cycles @800"});
    t.addRow({"exit fast pd (tXP)", fmt(tickToNs(tp.tXP), 0) + " ns",
              "6 ns"});
    t.addRow({"exit slow pd (tXPDLL)",
              fmt(tickToNs(tp.tXPDLL), 0) + " ns", "24 ns"});
    t.addRow({"refresh period", "64 ms (tREFI " +
              fmt(tickToUs(tp.tREFI), 2) + " us)", "64 ms"});

    const PowerParams &pp = cfg.power;
    t.addRow({"row buffer r/w current",
              fmt(pp.iReadWrite * 1000, 0) + " mA", "250 mA"});
    t.addRow({"act-pre current", fmt(pp.iActPre * 1000, 0) + " mA",
              "120 mA"});
    t.addRow({"active standby", fmt(pp.iActStandby * 1000, 0) + " mA",
              "67 mA"});
    t.addRow({"active powerdown",
              fmt(pp.iActPowerdown * 1000, 0) + " mA", "45 mA"});
    t.addRow({"precharge standby",
              fmt(pp.iPreStandby * 1000, 0) + " mA", "70 mA"});
    t.addRow({"precharge powerdown",
              fmt(pp.iPrePdFast * 1000, 0) + " mA", "45 mA"});
    t.addRow({"refresh current", fmt(pp.iRefresh * 1000, 0) + " mA",
              "240 mA"});
    t.addRow({"VDD", fmt(pp.vdd, 3) + " V", "1.575 V"});
    t.addRow({"MC power", fmt(pp.proportionality * pp.mcPeakW, 1) +
              "-" + fmt(pp.mcPeakW, 1) + " W", "7.5-15 W"});
    t.addRow({"MC voltage range", fmt(pp.mcVMin, 2) + "-" +
              fmt(pp.mcVMax, 2) + " V", "0.65-1.2 V"});
    t.addRow({"bus frequencies", "800..200 MHz, 10 points",
              "800..200 MHz, 10 points"});
    t.addRow({"relock penalty",
              fmt(tickToNs(tp.tRELOCK), 0) + " ns @800",
              "512 cycles + 28 ns"});
    t.print("Table 2: main system settings");
    return 0;
}
