/**
 * @file
 * Section 4.2.4 (text) reproduction: traffic scaling via core count —
 * 32 cores on the same 4 channels (2-4x the per-channel traffic).
 *
 * Paper reference: MID system savings drop to 7.6-10.4% but the
 * performance bound still holds.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Sens. 32 cores",
                "traffic scaling: 32 cores on 4 channels (MID)", cfg);

    std::vector<SweepCase> cases;
    for (std::uint32_t cores : {16u, 32u}) {
        for (const MixSpec &mix : allMixes()) {
            if (mix.klass != "MID")
                continue;
            SystemConfig c = cfg;
            c.numCores = cores;
            c.mixName = mix.name;
            cases.push_back(SweepCase{std::move(c), "memscale"});
        }
    }
    std::vector<ComparisonResult> results = compareCases(eng, cases);

    Table t({"cores", "mix", "sys energy saved", "worst CPI increase"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const ComparisonResult &r = results[i];
        t.addRow({std::to_string(cases[i].cfg.numCores),
                  cases[i].cfg.mixName, pct(r.sysEnergySavings),
                  pct(r.worstCpiIncrease)});
    }
    t.print("32-core traffic scaling (paper: 7.6-10.4% savings at 32 "
            "cores, bound respected)");
    return 0;
}
