/**
 * @file
 * Figure 15 reproduction: impact of the power proportionality of the
 * MC and DIMM registers — idle power at 0%, 50%, 100% of peak — on
 * MID-average savings.
 *
 * Paper reference: *less* proportional components mean *more* scope
 * for MemScale (idle power scales with V/f too), rising to ~23%
 * system savings at 100% idle power.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Figure 15",
                "sensitivity to MC/register power proportionality (MID)",
                cfg);

    Table t({"idle power (of peak)", "sys energy saved",
             "mem energy saved", "worst CPI increase"});
    for (double prop : {0.0, 0.5, 1.0}) {
        SystemConfig c = cfg;
        c.power.proportionality = prop;
        MidSweepPoint pt = runMidSweep(c);
        t.addRow({pct(prop, 0), pct(pt.sysSavings),
                  pct(pt.memSavings), pct(pt.worstCpiIncrease)});
    }
    t.print("Fig. 15: proportionality sensitivity (paper: lower "
            "proportionality -> higher savings, ~23% at 100%)");
    return 0;
}
