/**
 * @file
 * Figure 15 reproduction: impact of the power proportionality of the
 * MC and DIMM registers — idle power at 0%, 50%, 100% of peak — on
 * MID-average savings.
 *
 * Paper reference: *less* proportional components mean *more* scope
 * for MemScale (idle power scales with V/f too), rising to ~23%
 * system savings at 100% idle power.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 15",
                "sensitivity to MC/register power proportionality (MID)",
                cfg);

    const std::vector<double> props = {0.0, 0.5, 1.0};
    std::vector<SystemConfig> cfgs;
    for (double prop : props) {
        cfgs.push_back(cfg);
        cfgs.back().power.proportionality = prop;
    }
    std::vector<MidSweepPoint> pts = runMidSweeps(eng, cfgs);

    Table t({"idle power (of peak)", "sys energy saved",
             "mem energy saved", "worst CPI increase"});
    for (std::size_t i = 0; i < props.size(); ++i) {
        const MidSweepPoint &pt = pts[i];
        t.addRow({pct(props[i], 0), pct(pt.sysSavings),
                  pct(pt.memSavings), pct(pt.worstCpiIncrease)});
    }
    t.print("Fig. 15: proportionality sensitivity (paper: lower "
            "proportionality -> higher savings, ~23% at 100%)");
    return 0;
}
