/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: event
 * kernel throughput, DRAM channel request throughput, and end-to-end
 * simulated-instructions-per-second, so regressions in simulation
 * speed are caught alongside the figure reproductions.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "cpu/core.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "mem/controller.hh"
#include "memscale/policies/policy.hh"
#include "sim/event_queue.hh"
#include "workload/mixes.hh"
#include "workload/trace_source.hh"

using namespace memscale;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        for (int i = 0; i < 10000; ++i)
            eq.schedule(static_cast<Tick>(i * 7 % 9973),
                        [&fired] { ++fired; });
        eq.runUntil();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void
BM_EventQueueCancel(benchmark::State &state)
{
    // Heavy cancel churn: half of all scheduled events are cancelled
    // before they fire, exercising lazy purge + slab recycling.
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::vector<EventId> ids;
        ids.reserve(10000);
        for (int i = 0; i < 10000; ++i)
            ids.push_back(
                eq.schedule(static_cast<Tick>(i * 7 % 9973),
                            [&fired] { ++fired; }));
        for (int i = 0; i < 10000; i += 2)
            eq.cancel(ids[i]);
        eq.runUntil();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueCancel);

void
BM_SweepEngine(benchmark::State &state)
{
    // Fan 24 tiny systems out on the pool; items/sec tracks sweep
    // scheduling overhead plus parallel scaling.
    SweepEngine eng;
    for (auto _ : state) {
        std::vector<SweepCase> cases(24);
        for (std::size_t i = 0; i < cases.size(); ++i) {
            cases[i].cfg.mixName = allMixes()[i % 12].name;
            cases[i].cfg.instrBudget = 20000;
            cases[i].cfg.epochLen = msToTick(0.25);
            cases[i].cfg.profileLen = usToTick(25.0);
            cases[i].policy = "memscale";
        }
        auto results = compareCases(eng, cases);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_SweepEngine);

void
BM_ChannelRequests(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        MemConfig cfg;
        MemoryController mc(eq, cfg);
        std::uint64_t done = 0;
        for (int i = 0; i < 5000; ++i) {
            mc.read(static_cast<Addr>(i) * 64 * 97, 0,
                    [&done](Tick) { ++done; });
        }
        eq.runUntil();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_ChannelRequests);

void
BM_FullSystem(benchmark::State &state)
{
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.mixName = "MID1";
        cfg.instrBudget = 100000;
        cfg.epochLen = msToTick(0.25);
        cfg.profileLen = usToTick(25.0);
        auto policy = makePolicy("memscale");
        System sys(cfg, *policy);
        RunResult r = sys.run();
        benchmark::DoNotOptimize(r.runtime);
    }
    state.SetItemsProcessed(state.iterations() * 100000 * 16);
}
BENCHMARK(BM_FullSystem);

} // namespace

BENCHMARK_MAIN();
