/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: event
 * kernel throughput, DRAM channel request throughput, and end-to-end
 * simulated-instructions-per-second, so regressions in simulation
 * speed are caught alongside the figure reproductions.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "check/protocol_checker.hh"
#include "cpu/core.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "memscale/policies/policy.hh"
#include "sim/event_queue.hh"
#include "sim/weave.hh"
#include "workload/mixes.hh"
#include "workload/openloop.hh"
#include "workload/trace_source.hh"

using namespace memscale;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        for (int i = 0; i < 10000; ++i)
            eq.schedule(static_cast<Tick>(i * 7 % 9973),
                        [&fired] { ++fired; });
        eq.runUntil();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue);

void
BM_EventQueueCancel(benchmark::State &state)
{
    // Heavy cancel churn: half of all scheduled events are cancelled
    // before they fire, exercising lazy purge + slab recycling.
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::vector<EventId> ids;
        ids.reserve(10000);
        for (int i = 0; i < 10000; ++i)
            ids.push_back(
                eq.schedule(static_cast<Tick>(i * 7 % 9973),
                            [&fired] { ++fired; }));
        for (int i = 0; i < 10000; i += 2)
            eq.cancel(ids[i]);
        eq.runUntil();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueCancel);

void
BM_SweepEngine(benchmark::State &state)
{
    // Fan 24 tiny systems out on the pool; items/sec tracks sweep
    // scheduling overhead plus parallel scaling.
    SweepEngine eng;
    for (auto _ : state) {
        std::vector<SweepCase> cases(24);
        for (std::size_t i = 0; i < cases.size(); ++i) {
            cases[i].cfg.mixName = allMixes()[i % 12].name;
            cases[i].cfg.instrBudget = 20000;
            cases[i].cfg.epochLen = msToTick(0.25);
            cases[i].cfg.profileLen = usToTick(25.0);
            cases[i].policy = "memscale";
        }
        auto results = compareCases(eng, cases);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_SweepEngine);

void
BM_ChannelRequests(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        MemConfig cfg;
        MemoryController mc(eq, cfg);
        std::uint64_t done = 0;
        FnClient client([&done](Tick) { ++done; });
        for (int i = 0; i < 5000; ++i)
            mc.read(static_cast<Addr>(i) * 64 * 97, 0, &client);
        eq.runUntil();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_ChannelRequests);

/**
 * Targeted channel schedules: all traffic to one bank of one channel
 * so the named row-buffer behavior dominates.  Requests are issued in
 * batches of 16 as predecessors complete, keeping the bank queue (and
 * the FR-FCFS scan / keep-open scan) populated without unbounded
 * queue growth.
 */
void
channelPattern(benchmark::State &state, bool same_row, bool writes,
               SchedulerPolicy sched)
{
    constexpr int kRequests = 5000;
    constexpr int kWindow = 16;
    for (auto _ : state) {
        EventQueue eq;
        MemConfig cfg;
        cfg.numChannels = 1;
        cfg.scheduler = sched;
        MemoryController mc(eq, cfg);
        int issued = 0;
        std::uint64_t done = 0;
        DecodedAddr d;
        auto addr_of = [&](int i) {
            d.row = same_row ? 7 : static_cast<std::uint64_t>(i % 64);
            d.column = static_cast<std::uint64_t>(i % 32);
            return mc.addressMap().encode(d);
        };
        // Writebacks complete silently, so every issue step posts
        // pending writes until it lands a read that can continue the
        // chain on its completion.
        auto issue_chain = [&](MemClient *cl) {
            while (issued < kRequests) {
                int i = issued++;
                if (writes && i % 2 != 0) {
                    mc.writeback(addr_of(i), 0);
                } else {
                    mc.read(addr_of(i), 0, cl);
                    break;
                }
            }
        };
        // Explicit instantiation: the lambda names `client`, so CTAD
        // can't deduce through the self-reference.  One std::function
        // per iteration, none per request.
        FnClient<std::function<void(Tick)>> client(
            [&](Tick) {
                ++done;
                issue_chain(&client);
            });
        for (int w = 0; w < kWindow; ++w)
            issue_chain(&client);
        eq.runUntil();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * kRequests);
}

void
BM_ChannelRowHit(benchmark::State &state)
{
    channelPattern(state, true, false, SchedulerPolicy::FrFcfs);
}
BENCHMARK(BM_ChannelRowHit);

void
BM_ChannelRowConflict(benchmark::State &state)
{
    channelPattern(state, false, false, SchedulerPolicy::Fcfs);
}
BENCHMARK(BM_ChannelRowConflict);

void
BM_ChannelWriteDrain(benchmark::State &state)
{
    channelPattern(state, false, true, SchedulerPolicy::FrFcfs);
}
BENCHMARK(BM_ChannelWriteDrain);

/**
 * Arrival-generator throughput over the three processes (arrivals per
 * second of wall clock).  The open-loop front end draws one of these
 * per request, so the generator must stay far off the serving hot
 * path; thinning makes diurnal the slowest of the three.
 */
void
BM_OpenLoopArrivals(benchmark::State &state)
{
    constexpr int kArrivals = 10000;
    for (auto _ : state) {
        for (ArrivalKind kind :
             {ArrivalKind::Poisson, ArrivalKind::Bursty,
              ArrivalKind::Diurnal}) {
            ArrivalConfig cfg;
            cfg.kind = kind;
            cfg.ratePerSec = 2.0e6;
            cfg.seed = 99;
            ArrivalGenerator gen(cfg);
            Tick last = 0;
            for (int i = 0; i < kArrivals; ++i)
                last = gen.next();
            benchmark::DoNotOptimize(last);
        }
    }
    state.SetItemsProcessed(state.iterations() * kArrivals * 3);
}
BENCHMARK(BM_OpenLoopArrivals);

void
BM_FullSystem(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.mixName = "MID1";
    cfg.instrBudget = 100000;
    cfg.epochLen = msToTick(0.25);
    cfg.profileLen = usToTick(25.0);
    std::uint64_t cores = 0;
    for (auto _ : state) {
        auto policy = makePolicy("memscale");
        System sys(cfg, *policy);
        RunResult r = sys.run();
        cores = r.coreCpi.size();
        benchmark::DoNotOptimize(r.runtime);
    }
    // Simulated instructions per second: the configured budget times
    // the actual core count of the run (not a hardcoded guess).
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cfg.instrBudget * cores));
}
BENCHMARK(BM_FullSystem);

/**
 * End-to-end run under the bound/weave kernel on an 8-channel system;
 * the thread-count argument is the ISSUE's speedup gate (serial vs 4
 * workers).  Results are bit-identical at every arg by construction
 * (test_parallel_kernel pins it); only wall-clock should move.
 */
void
BM_FullSystemThreads(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.mixName = "MID1";
    cfg.instrBudget = 100000;
    cfg.epochLen = msToTick(0.25);
    cfg.profileLen = usToTick(25.0);
    cfg.mem.numChannels = 8;
    cfg.threads = static_cast<unsigned>(state.range(0));
    std::uint64_t cores = 0;
    for (auto _ : state) {
        auto policy = makePolicy("memscale");
        System sys(cfg, *policy);
        RunResult r = sys.run();
        cores = r.coreCpi.size();
        benchmark::DoNotOptimize(r.runtime);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cfg.instrBudget * cores));
}
BENCHMARK(BM_FullSystemThreads)->Arg(1)->Arg(4);

/**
 * The two phases of the weave kernel in isolation, on one channel's
 * worth of traffic with the protocol checker attached (the dominant
 * deferred consumer).  BoundPhase times request service with command
 * validation deferred into the weave shards (draining them untimed);
 * WeavePhase times only the shard drain (replay into the checker +
 * rank-residency integration), i.e. the work a barrier hands to each
 * worker.  Together they bound the per-channel parallel speedup the
 * full-system numbers can reach.
 */
constexpr int kWeaveBenchRequests = 5000;

void
weavePhases(benchmark::State &state, bool time_bound)
{
    for (auto _ : state) {
        state.PauseTiming();
        EventQueue eq;
        MemConfig cfg;
        MemoryController mc(eq, cfg);
        ProtocolChecker checker(false);
        mc.setCommandObserver(&checker);
        WeaveHub hub;
        mc.attachWeave(&hub);
        std::uint64_t done = 0;
        FnClient client([&done](Tick) { ++done; });
        auto bound = [&] {
            for (int i = 0; i < kWeaveBenchRequests; ++i)
                mc.read(static_cast<Addr>(i) * 64 * 97, 0, &client);
            eq.runUntil();
        };
        if (time_bound) {
            state.ResumeTiming();
            bound();
            state.PauseTiming();
            hub.barrier();
            state.ResumeTiming();
        } else {
            bound();
            state.ResumeTiming();
            hub.barrier();
            benchmark::DoNotOptimize(checker.commandsChecked());
        }
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * kWeaveBenchRequests);
}

void
BM_BoundPhase(benchmark::State &state)
{
    weavePhases(state, true);
}
BENCHMARK(BM_BoundPhase);

void
BM_WeavePhase(benchmark::State &state)
{
    weavePhases(state, false);
}
BENCHMARK(BM_WeavePhase);

} // namespace

/**
 * Standard google-benchmark main plus one convenience flag: --reps N
 * expands to --benchmark_repetitions=N with aggregates-only reporting,
 * so scripts/perf_compare.py (and the CI perf smoke step) can ask for
 * median-of-N without spelling out the benchmark library's flags.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string reps_flag, aggr_flag;
    for (std::size_t i = 1; i < args.size(); ++i) {
        std::string a = args[i];
        std::string n;
        if (a.rfind("--reps=", 0) == 0) {
            n = a.substr(7);
            args.erase(args.begin() + i);
        } else if (a == "--reps" && i + 1 < args.size()) {
            n = args[i + 1];
            args.erase(args.begin() + i, args.begin() + i + 2);
        } else {
            continue;
        }
        reps_flag = "--benchmark_repetitions=" + n;
        aggr_flag = "--benchmark_report_aggregates_only=true";
        args.push_back(reps_flag.data());
        args.push_back(aggr_flag.data());
        break;
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
