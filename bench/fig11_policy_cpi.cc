/**
 * @file
 * Figure 11 reproduction: MID-average and worst-program CPI overhead
 * per policy.
 *
 * Paper reference: MemScale variants stay under the 10% bound (the
 * MemEnergy variant may exceed it slightly); Slow-PD reaches ~15%.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Figure 11", "CPI overhead by policy (MID)", cfg);

    const std::vector<std::string> policies = {
        "fastpd", "slowpd", "decoupled", "static",
        "memscale-memenergy", "memscale", "memscale-fastpd"};

    std::vector<std::pair<RunResult, Watts>> bases;
    std::vector<SystemConfig> cfgs;
    for (const MixSpec &mix : allMixes()) {
        if (mix.klass != "MID")
            continue;
        SystemConfig c = cfg;
        c.mixName = mix.name;
        Watts rest = 0.0;
        RunResult base = runBaseline(c, rest);
        bases.emplace_back(std::move(base), rest);
        cfgs.push_back(c);
    }

    Table t({"policy", "avg CPI increase", "worst CPI increase",
             "bound"});
    for (const std::string &p : policies) {
        double avg = 0.0, worst = 0.0;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            ComparisonResult r = compareWithBase(
                cfgs[i], bases[i].first, bases[i].second, p);
            avg += r.avgCpiIncrease;
            worst = std::max(worst, r.worstCpiIncrease);
        }
        t.addRow({p, pct(avg / cfgs.size()), pct(worst),
                  pct(cfg.gamma)});
    }
    t.print("Fig. 11: CPI overhead by policy");
    return 0;
}
