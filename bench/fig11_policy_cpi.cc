/**
 * @file
 * Figure 11 reproduction: MID-average and worst-program CPI overhead
 * per policy.
 *
 * Paper reference: MemScale variants stay under the 10% bound (the
 * MemEnergy variant may exceed it slightly); Slow-PD reaches ~15%.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 11", "CPI overhead by policy (MID)", cfg);

    const std::vector<std::string> policies = {
        "fastpd", "slowpd", "decoupled", "static",
        "memscale-memenergy", "memscale", "memscale-fastpd"};

    std::vector<SystemConfig> cfgs = midConfigs(cfg);
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);
    std::vector<ComparisonResult> results =
        comparePolicyGrid(eng, cfgs, bases, policies);

    Table t({"policy", "avg CPI increase", "worst CPI increase",
             "bound"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
        double avg = 0.0, worst = 0.0;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            const ComparisonResult &r = results[p * cfgs.size() + i];
            avg += r.avgCpiIncrease;
            worst = std::max(worst, r.worstCpiIncrease);
        }
        t.addRow({policies[p], pct(avg / cfgs.size()), pct(worst),
                  pct(cfg.gamma)});
    }
    t.print("Fig. 11: CPI overhead by policy");
    return 0;
}
