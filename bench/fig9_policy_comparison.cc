/**
 * @file
 * Figure 9 reproduction: full-system and memory energy savings of all
 * policies — Fast-PD, Slow-PD, Decoupled DIMMs, Static, MemScale,
 * MemScale(MemEnergy), MemScale+Fast-PD — averaged over the MID mixes.
 *
 * Paper reference: MemScale ~3x the system savings of Decoupled;
 * Slow-PD loses energy; Static between Decoupled and MemScale.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    if (int rc = maybeSelfCheck(argc, argv, conf, cfg); rc >= 0)
        return rc;
    SweepEngine eng = benchEngine(conf);
    benchHeader("Figure 9", "policy comparison, MID average", cfg);

    const std::vector<std::string> policies = {
        "fastpd", "slowpd", "decoupled", "static",
        "memscale-memenergy", "memscale", "memscale-fastpd"};

    // Calibrated baselines per MID mix, shared across policies.
    std::vector<SystemConfig> cfgs = midConfigs(cfg);
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);
    std::vector<ComparisonResult> results =
        comparePolicyGrid(eng, cfgs, bases, policies);

    Table t({"policy", "sys energy saved", "mem energy saved",
             "avg CPI incr", "worst CPI incr"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
        double sys = 0.0, mem = 0.0, avg = 0.0, worst = 0.0;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            const ComparisonResult &r = results[p * cfgs.size() + i];
            sys += r.sysEnergySavings;
            mem += r.memEnergySavings;
            avg += r.avgCpiIncrease;
            worst = std::max(worst, r.worstCpiIncrease);
        }
        double n = static_cast<double>(cfgs.size());
        t.addRow({policies[p], pct(sys / n), pct(mem / n), pct(avg / n),
                  pct(worst)});
    }
    t.print("Fig. 9: MID-average energy savings by policy "
            "(paper: MemScale ~3x Decoupled; Slow-PD negative)");
    return 0;
}
