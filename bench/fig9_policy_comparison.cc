/**
 * @file
 * Figure 9 reproduction: full-system and memory energy savings of all
 * policies — Fast-PD, Slow-PD, Decoupled DIMMs, Static, MemScale,
 * MemScale(MemEnergy), MemScale+Fast-PD — averaged over the MID mixes.
 *
 * Paper reference: MemScale ~3x the system savings of Decoupled;
 * Slow-PD loses energy; Static between Decoupled and MemScale.
 */

#include "bench_common.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    SystemConfig cfg = benchConfig(argc, argv);
    benchHeader("Figure 9", "policy comparison, MID average", cfg);

    const std::vector<std::string> policies = {
        "fastpd", "slowpd", "decoupled", "static",
        "memscale-memenergy", "memscale", "memscale-fastpd"};

    // Calibrated baselines per MID mix, shared across policies.
    std::vector<std::pair<RunResult, Watts>> bases;
    std::vector<SystemConfig> cfgs;
    for (const MixSpec &mix : allMixes()) {
        if (mix.klass != "MID")
            continue;
        SystemConfig c = cfg;
        c.mixName = mix.name;
        Watts rest = 0.0;
        RunResult base = runBaseline(c, rest);
        bases.emplace_back(std::move(base), rest);
        cfgs.push_back(c);
    }

    Table t({"policy", "sys energy saved", "mem energy saved",
             "avg CPI incr", "worst CPI incr"});
    for (const std::string &p : policies) {
        double sys = 0.0, mem = 0.0, avg = 0.0, worst = 0.0;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            ComparisonResult r = compareWithBase(
                cfgs[i], bases[i].first, bases[i].second, p);
            sys += r.sysEnergySavings;
            mem += r.memEnergySavings;
            avg += r.avgCpiIncrease;
            worst = std::max(worst, r.worstCpiIncrease);
        }
        double n = static_cast<double>(cfgs.size());
        t.addRow({p, pct(sys / n), pct(mem / n), pct(avg / n),
                  pct(worst)});
    }
    t.print("Fig. 9: MID-average energy savings by policy "
            "(paper: MemScale ~3x Decoupled; Slow-PD negative)");
    return 0;
}
