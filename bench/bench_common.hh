/**
 * @file
 * Shared setup for the bench binaries that regenerate the paper's
 * tables and figures.
 *
 * The paper simulates 100M-instruction SimPoints per application with
 * 5 ms epochs.  The benches default to a proportionally scaled run
 * (5M instructions, 0.25 ms epochs, 25 us profiling) so the whole
 * evaluation regenerates in minutes on a laptop; pass budget=…,
 * epoch_ms=… etc. (or MEMSCALE_* env vars) for full-scale runs.
 *
 * Every driver fans its independent runs out on a SweepEngine sized
 * by `jobs=N` / `--jobs N` / MEMSCALE_JOBS (default: all hardware
 * threads).  Results are aggregated by task index, so the printed
 * tables are byte-identical for any job count.
 */

#ifndef MEMSCALE_BENCH_BENCH_COMMON_HH
#define MEMSCALE_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>

#include "common/config.hh"
#include "harness/differential.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "obs/trace_writer.hh"
#include "workload/mixes.hh"

namespace memscale
{

inline SystemConfig
benchConfig(int argc, char **argv, Config *out_conf = nullptr)
{
    Config conf;
    conf.parseArgs(argc, argv);
    SystemConfig cfg;
    cfg.instrBudget = static_cast<std::uint64_t>(
        conf.getInt("budget", 5'000'000));
    cfg.epochLen = msToTick(conf.getDouble("epoch_ms", 0.25));
    cfg.profileLen = usToTick(conf.getDouble("profile_us", 25.0));
    cfg.gamma = conf.getDouble("gamma", 0.10);
    cfg.numCores =
        static_cast<std::uint32_t>(conf.getInt("cores", 16));
    cfg.mem.numChannels =
        static_cast<std::uint32_t>(conf.getInt("channels", 4));
    cfg.memPowerFraction = conf.getDouble("memfrac", 0.40);
    cfg.power.proportionality = conf.getDouble("proportionality", 0.5);
    cfg.seed = static_cast<std::uint64_t>(conf.getInt("seed", 12345));
    // Bound/weave kernel: `threads=N` / `--threads N` runs each
    // simulation's per-channel weave work on N workers (distinct from
    // jobs=, which parallelizes *across* independent runs).  Results
    // are bit-identical at any thread count.
    cfg.threads = checkedJobs(conf.getInt("threads", 1));
    // Observability rides along whenever an export was requested
    // (`--trace-out f.json`, `--stats-out f.csv`, or observe=1); the
    // recording path never changes simulation results.
    cfg.observe = conf.has("trace-out") || conf.has("stats-out") ||
                  conf.getBool("observe", false);
    // Checkpoint/restore (src/snapshot): `--checkpoint-every ms` /
    // `--checkpoint-at ms` write snapshots to `--checkpoint-out path`
    // (suffixed `.<tick>` for periodic ones); `--checkpoint-stop`
    // ends the run right after the `at` snapshot, and `--resume path`
    // continues a run from a snapshot file.  Writers are pure readers
    // of simulation state, so results are unchanged by checkpointing.
    cfg.snapshot.every =
        msToTick(conf.getDouble("checkpoint-every", 0.0));
    cfg.snapshot.at = msToTick(conf.getDouble("checkpoint-at", 0.0));
    cfg.snapshot.stopAfter = conf.getBool("checkpoint-stop", false);
    cfg.snapshot.out = conf.getString("checkpoint-out", "");
    cfg.snapshot.resumePath = conf.getString("resume", "");
    if (out_conf)
        *out_conf = conf;
    return cfg;
}

/** Insert `-label` before the extension: ("t.json", "MID3") -> "t-MID3.json". */
inline std::string
obsOutPath(std::string path, const std::string &label)
{
    if (label.empty())
        return path;
    auto slash = path.find_last_of('/');
    auto dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        dot = path.size();
    return path.substr(0, dot) + "-" + label + path.substr(dot);
}

/**
 * Export the run's recorded timeline per the `--stats-out` (CSV, or
 * JSON when the path ends in .json) and `--trace-out` (Chrome-trace /
 * Perfetto JSON) flags.  `label` distinguishes runs when a driver
 * produces several (one file per run).  No-op without the flags.
 */
inline void
maybeExportObs(const Config &conf, const RunResult &r,
               const std::string &label = "")
{
    const std::string stats = conf.getString("stats-out", "");
    const std::string trace = conf.getString("trace-out", "");
    if (stats.empty() && trace.empty())
        return;
    if (!r.obs || r.obs->epochs() == 0) {
        warn("%s/%s: no epoch timeline to export (static policy or "
             "observability off)",
             r.mixName.c_str(), r.policyName.c_str());
        return;
    }
    if (!stats.empty()) {
        std::string path = obsOutPath(stats, label);
        bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
        if (json ? r.obs->writeJson(path) : r.obs->writeCsv(path)) {
            std::fprintf(stderr, "stats: wrote %zu epochs x %zu "
                         "columns to %s\n",
                         r.obs->epochs(), r.obs->columns(),
                         path.c_str());
        }
    }
    if (!trace.empty()) {
        std::string path = obsOutPath(trace, label);
        if (writeChromeTrace(*r.obs, path)) {
            std::fprintf(stderr,
                         "trace: wrote %s (load in Perfetto / "
                         "chrome://tracing)\n",
                         path.c_str());
        }
    }
}

/** Sweep engine honouring jobs=N / --jobs N / MEMSCALE_JOBS. */
inline SweepEngine
benchEngine(const Config &conf)
{
    return SweepEngine(checkedJobs(conf.getInt("jobs", 0)));
}

/** The configurations of all MID mixes under a base setting. */
inline std::vector<SystemConfig>
midConfigs(const SystemConfig &cfg)
{
    std::vector<SystemConfig> out;
    for (const MixSpec &mix : allMixes()) {
        if (mix.klass != "MID")
            continue;
        out.push_back(cfg);
        out.back().mixName = mix.name;
    }
    return out;
}

/** MID-average MemScale outcome for one sensitivity setting. */
struct MidSweepPoint
{
    double sysSavings = 0.0;
    double memSavings = 0.0;
    double avgCpiIncrease = 0.0;
    double worstCpiIncrease = 0.0;
};

/**
 * One MID sweep per base configuration, all flattened into a single
 * parallel batch (settings x MID mixes tasks); out[i] aggregates the
 * MID mixes of cfgs[i] in mix order.
 */
inline std::vector<MidSweepPoint>
runMidSweeps(const SweepEngine &eng,
             const std::vector<SystemConfig> &cfgs,
             const std::string &policy = "memscale")
{
    std::vector<SweepCase> cases;
    std::vector<std::size_t> setting;  // case index -> cfgs index
    for (std::size_t s = 0; s < cfgs.size(); ++s) {
        for (SystemConfig &c : midConfigs(cfgs[s])) {
            cases.push_back(SweepCase{std::move(c), policy});
            setting.push_back(s);
        }
    }
    std::vector<ComparisonResult> results = compareCases(eng, cases);

    std::vector<MidSweepPoint> out(cfgs.size());
    std::vector<int> n(cfgs.size(), 0);
    for (std::size_t i = 0; i < results.size(); ++i) {
        MidSweepPoint &pt = out[setting[i]];
        const ComparisonResult &r = results[i];
        pt.sysSavings += r.sysEnergySavings;
        pt.memSavings += r.memEnergySavings;
        pt.avgCpiIncrease += r.avgCpiIncrease;
        pt.worstCpiIncrease =
            std::max(pt.worstCpiIncrease, r.worstCpiIncrease);
        ++n[setting[i]];
    }
    for (std::size_t s = 0; s < out.size(); ++s) {
        out[s].sysSavings /= n[s];
        out[s].memSavings /= n[s];
        out[s].avgCpiIncrease /= n[s];
    }
    return out;
}

inline MidSweepPoint
runMidSweep(const SweepEngine &eng, const SystemConfig &cfg,
            const std::string &policy = "memscale")
{
    return runMidSweeps(eng, {cfg}, policy)[0];
}

/**
 * Differential self-check mode (`--check`, `check=1`, or
 * MEMSCALE_CHECK=1): instead of regenerating the figure, run the
 * driver's configuration through the DifferentialHarness — reference
 * event kernel vs. the production fast path, and sweep jobs=1 vs.
 * jobs=N — with the DDR3 protocol checker attached to every run.
 *
 * Returns the process exit code (0 = all identical) when the check
 * ran, or -1 when --check was not requested and the figure should be
 * produced as usual.
 */
inline int
maybeSelfCheck(int argc, char **argv, const Config &conf,
               const SystemConfig &cfg)
{
    bool want = conf.getBool("check", false);
    // A bare trailing `--check` has no value for the key=value parser
    // to pick up; accept it directly.
    for (int i = 1; i < argc && !want; ++i)
        want = std::strcmp(argv[i], "--check") == 0;
    if (!want)
        return -1;

    SystemConfig c = cfg;
    c.protocolCheck = true;
    unsigned jobs = checkedJobs(conf.getInt("jobs", 0));
    std::fprintf(stderr,
                 "self-check: kernel + sweep differentials on %s "
                 "(jobs=%u)\n",
                 c.mixName.c_str(), resolveJobs(jobs));
    std::size_t failures = runSelfCheck(c, jobs);
    std::fprintf(stderr, "self-check %s\n",
                 failures == 0 ? "PASSED" : "FAILED");
    return failures == 0 ? 0 : 1;
}

inline void
benchHeader(const char *id, const char *what, const SystemConfig &cfg)
{
    std::printf("%s: %s\n", id, what);
    std::printf("(budget=%llu instr/app, epoch=%.2f ms, profile=%.0f "
                "us, gamma=%.0f%%, %u cores, %u channels)\n",
                static_cast<unsigned long long>(cfg.instrBudget),
                tickToMs(cfg.epochLen),
                tickToUs(cfg.profileLen), cfg.gamma * 100.0,
                cfg.numCores, cfg.mem.numChannels);
}

} // namespace memscale

#endif // MEMSCALE_BENCH_BENCH_COMMON_HH
