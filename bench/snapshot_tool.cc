/**
 * @file
 * Checkpoint/restore command-line tool.
 *
 * Runs one mix under one policy with the standard checkpoint flags
 * and prints a machine-readable summary:
 *
 *     runtime <ticks>
 *     result_hash 0x<16 hex digits>
 *     checkpoint <path>          (one line per snapshot written)
 *
 * Modes:
 *   - plain run:     snapshot_tool mix=MID3 policy=memscale
 *   - cut + stop:    snapshot_tool checkpoint-at=0.4 \
 *                        checkpoint-out=/tmp/cut checkpoint-stop=1
 *   - resume:        snapshot_tool resume=/tmp/cut
 *   - inspect:       snapshot_tool meta=/tmp/cut
 *
 * The run uses a fixed rest-of-system wattage (rest=… , default 150 W)
 * instead of baseline calibration so a single invocation is one
 * deterministic simulation — which is what scripts/golden_bisect.py
 * needs to binary-search the first tick where two builds diverge.
 */

#include <cinttypes>
#include <cstdio>

#include "bench_common.hh"

#include "harness/cluster.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    SystemConfig cfg = benchConfig(argc, argv, &conf);
    cfg.mixName = conf.getString("mix", "MID3");
    const std::string policy = conf.getString("policy", "memscale");
    const double rest = conf.getDouble("rest", 150.0);

    const std::string meta_path = conf.getString("meta", "");
    if (!meta_path.empty()) {
        // Fleet snapshots carry a "cluster" section on top of the
        // per-server files; print its summary and stop.
        FleetMeta fm = readFleetMeta(meta_path);
        if (fm.valid) {
            std::printf("cluster 1\nservers %u\npolicy %s\n",
                        fm.numServers, fm.policy.c_str());
            std::printf("cap_w %.3f\ncoord_epoch %" PRIu64 "\n",
                        fm.capW, fm.coordEpoch);
            std::printf("epochs_done %u\n", fm.epochsDone);
            for (std::size_t k = 0; k < fm.budgetW.size(); ++k)
                std::printf("budget_w server%zu %.3f\n", k,
                            fm.budgetW[k]);
            std::printf("last_fleet_w %.3f\n", fm.lastFleetW);
            return 0;
        }
        SnapshotMeta m = readSnapshotMeta(meta_path);
        std::printf("mix %s\npolicy %s\nnow %" PRIu64 "\n",
                    m.mixName.c_str(), m.policyName.c_str(), m.now);
        std::printf("done_cores %u\npending_events %u\n", m.doneCores,
                    m.pendingEvents);
        std::printf("in_flight_requests %" PRIu64 "\n",
                    m.inFlightRequests);
        std::printf("ranks_powered_down %u\npending_relocks %u\n"
                    "pending_refreshes %u\n",
                    m.ranksPoweredDown, m.pendingRelocks,
                    m.pendingRefreshes);
        return 0;
    }

    RunResult r = runPolicy(cfg, policy, rest);
    std::printf("mix %s\npolicy %s\n", r.mixName.c_str(),
                r.policyName.c_str());
    std::printf("runtime %" PRIu64 "\n", r.runtime);
    std::printf("result_hash 0x%016" PRIx64 "\n", hashRunResult(r));
    for (const std::string &path : r.checkpointsWritten)
        std::printf("checkpoint %s\n", path.c_str());
    if (r.stoppedAtCheckpoint)
        std::printf("stopped_at_checkpoint 1\n");
    return 0;
}
