/**
 * @file
 * Performance-model tests: Eq. 6 device-time estimation, Eq. 9
 * composition, per-core calibration, and frequency monotonicity
 * properties (parameterized across the grid).
 */

#include <gtest/gtest.h>

#include "memscale/perf_model.hh"

using namespace memscale;

namespace
{

/** Profile with hand-set counters at the nominal frequency. */
ProfileData
makeProfile()
{
    ProfileData p;
    p.windowLen = usToTick(100.0);
    p.freqDuring = nominalFreqIndex;
    // 1000 accesses: 100 hits, 800 closed misses, 100 open misses,
    // 50 powerdown exits.
    p.mc.rbhc = 100;
    p.mc.cbmc = 800;
    p.mc.obmc = 100;
    p.mc.epdc = 50;
    p.mc.btc = 1000;
    p.mc.bto = 500;    // xi_bank = 1.5
    p.mc.ctc = 1000;
    p.mc.cto = 250.0;  // xi_bus = 1.25
    p.mc.reads = 900;
    p.mc.writes = 100;
    p.mc.rankTime = usToTick(100.0) * 16;
    p.mc.rankPreTime = usToTick(60.0) * 16;
    // Two cores: one memory-heavy, one compute-heavy.
    p.cores.push_back(CoreSample{100'000, 1'000});
    p.cores.push_back(CoreSample{400'000, 40});
    return p;
}

} // namespace

TEST(PerfModel, DeviceTimeEq6)
{
    PerfModel m;
    m.calibrate(makeProfile());
    const TimingParams &tp = TimingParams::at(0);
    double tCL = tickToSec(tp.tCL);
    double tRCD = tickToSec(tp.tRCD);
    double tRP = tickToSec(tp.tRP);
    double tXP = tickToSec(tp.tXP);
    double expected = (100 * tCL + 800 * (tRCD + tCL) +
                       100 * (tRP + tRCD + tCL) + 50 * tXP) / 1000.0;
    EXPECT_NEAR(m.tDevice(), expected, expected * 1e-12);
}

TEST(PerfModel, XiFactors)
{
    PerfModel m;
    m.calibrate(makeProfile());
    EXPECT_NEAR(m.xiBank(), 1.5, 1e-12);
    EXPECT_NEAR(m.xiBus(), 1.25, 1e-12);
}

TEST(PerfModel, TpiMemEq9Composition)
{
    PerfModel m;
    m.calibrate(makeProfile());
    const TimingParams &tp = TimingParams::at(3);   // 600 MHz
    double expected = 1.5 * (tickToSec(tp.tMC) + m.tDevice() +
                             1.25 * tickToSec(tp.tBURST));
    EXPECT_NEAR(m.tpiMem(3), expected, expected * 1e-12);
}

TEST(PerfModel, AlphaPerCore)
{
    PerfModel m;
    m.calibrate(makeProfile());
    EXPECT_NEAR(m.alpha(0), 0.01, 1e-12);
    EXPECT_NEAR(m.alpha(1), 1e-4, 1e-12);
}

TEST(PerfModel, MeasuredCpiRecoveredAtProfilingFrequency)
{
    PerfModel m;
    ProfileData p = makeProfile();
    m.calibrate(p);
    // Predicting at the profiling frequency must reproduce the
    // measured CPI: window / instructions.
    for (std::uint32_t c = 0; c < 2; ++c) {
        double measured_tpi =
            tickToSec(p.windowLen) /
            static_cast<double>(p.cores[c].tic);
        EXPECT_NEAR(m.tpi(c, p.freqDuring), measured_tpi,
                    measured_tpi * 1e-9);
    }
}

TEST(PerfModel, MemoryHeavyCoreMoreSensitive)
{
    PerfModel m;
    m.calibrate(makeProfile());
    double slow0 = m.tpi(0, 9) / m.tpi(0, 0);
    double slow1 = m.tpi(1, 9) / m.tpi(1, 0);
    EXPECT_GT(slow0, slow1);
    EXPECT_GT(slow0, 1.0);
}

TEST(PerfModel, InactiveCoreDetection)
{
    PerfModel m;
    ProfileData p = makeProfile();
    p.cores.push_back(CoreSample{0, 0});   // finished core
    m.calibrate(p);
    EXPECT_TRUE(m.active(0));
    EXPECT_FALSE(m.active(2));
    EXPECT_DOUBLE_EQ(m.coreTime(2, 0), 0.0);
}

TEST(PerfModel, EmptyCountersFallBack)
{
    PerfModel m;
    ProfileData p;
    p.windowLen = usToTick(10.0);
    p.freqDuring = nominalFreqIndex;
    p.cores.push_back(CoreSample{1000, 0});
    m.calibrate(p);
    EXPECT_DOUBLE_EQ(m.xiBank(), 1.0);
    EXPECT_DOUBLE_EQ(m.xiBus(), 1.0);
    // Idle default device time: closed-bank access.
    const TimingParams &tp = TimingParams::at(0);
    EXPECT_NEAR(m.tDevice(), tickToSec(tp.tRCD + tp.tCL), 1e-15);
}

class PerfModelSweep : public ::testing::TestWithParam<FreqIndex>
{
};

TEST_P(PerfModelSweep, TpiMemMonotoneNonDecreasingWithSlowdown)
{
    FreqIndex f = GetParam();
    if (f == 0)
        return;
    PerfModel m;
    m.calibrate(makeProfile());
    EXPECT_GE(m.tpiMem(f), m.tpiMem(f - 1));
}

TEST_P(PerfModelSweep, CpiAboveCpuFloor)
{
    PerfModel m;
    m.calibrate(makeProfile());
    for (std::uint32_t c = 0; c < 2; ++c)
        EXPECT_GT(m.cpi(c, GetParam()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFrequencies, PerfModelSweep,
                         ::testing::Range(FreqIndex(0),
                                          numFreqPoints));
