/**
 * @file
 * Address-mapping tests: decode/encode round-trips (property sweep
 * across configurations including the non-power-of-two 3-channel
 * case), interleaving behaviour, and field ranges.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "mem/address_map.hh"

using namespace memscale;

namespace
{

MemConfig
cfgWithChannels(std::uint32_t channels)
{
    MemConfig cfg;
    cfg.numChannels = channels;
    return cfg;
}

} // namespace

TEST(AddressMap, FieldRanges)
{
    MemConfig cfg;
    AddressMap map(cfg);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        Addr a = (rng.next() % cfg.totalBytes()) & ~Addr(63);
        DecodedAddr d = map.decode(a);
        EXPECT_LT(d.channel, cfg.numChannels);
        EXPECT_LT(d.rank, cfg.ranksPerChannel());
        EXPECT_LT(d.bank, cfg.banksPerRank);
        EXPECT_LT(d.row, cfg.rowsPerBank());
        EXPECT_LT(d.column, cfg.linesPerRow());
    }
}

TEST(AddressMap, ConsecutiveLinesInterleaveChannels)
{
    MemConfig cfg;
    AddressMap map(cfg);
    for (Addr line = 0; line < 64; ++line) {
        DecodedAddr d = map.decode(line * cfg.lineBytes);
        EXPECT_EQ(d.channel, line % cfg.numChannels);
    }
}

TEST(AddressMap, StreamingTouchesSameRowWithinColLow)
{
    MemConfig cfg;
    AddressMap map(cfg);
    // Lines 0, 4, 8, 12 land on channel 0 with consecutive low column
    // bits in the same row (colLowLines = 4).
    DecodedAddr first = map.decode(0);
    for (Addr i = 1; i < cfg.colLowLines; ++i) {
        DecodedAddr d =
            map.decode(i * cfg.numChannels * cfg.lineBytes);
        EXPECT_EQ(d.channel, first.channel);
        EXPECT_EQ(d.bank, first.bank);
        EXPECT_EQ(d.row, first.row);
        EXPECT_EQ(d.column, first.column + i);
    }
}

class AddressMapRoundTrip
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(AddressMapRoundTrip, DecodeEncodeIdentity)
{
    MemConfig cfg = cfgWithChannels(GetParam());
    AddressMap map(cfg);
    Rng rng(GetParam() * 1234 + 1);
    for (int i = 0; i < 20000; ++i) {
        Addr a = (rng.next() % cfg.totalBytes()) & ~Addr(63);
        DecodedAddr d = map.decode(a);
        EXPECT_EQ(map.encode(d), a);
    }
}

TEST_P(AddressMapRoundTrip, DistinctLinesDistinctLocations)
{
    MemConfig cfg = cfgWithChannels(GetParam());
    AddressMap map(cfg);
    // Dense sweep of the first 4096 lines must produce 4096 distinct
    // decoded locations (verified through the encode round-trip).
    for (Addr line = 0; line < 4096; ++line) {
        Addr a = line * cfg.lineBytes;
        EXPECT_EQ(map.encode(map.decode(a)), a);
    }
}

INSTANTIATE_TEST_SUITE_P(Channels, AddressMapRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(AddressMap, CapacityWraps)
{
    MemConfig cfg;
    AddressMap map(cfg);
    Addr beyond = cfg.totalBytes() + 128;
    DecodedAddr d = map.decode(beyond);
    EXPECT_EQ(map.encode(d), Addr(128));
}

TEST(AddressMap, BadConfigFatal)
{
    MemConfig cfg;
    cfg.colLowLines = 7;   // does not divide 128 lines/row
    EXPECT_THROW(AddressMap m(cfg), FatalError);
}
