/**
 * @file
 * Tests for harness-level features: CSV export, multi-seed averaging,
 * the self-refresh and throttling baselines, and the report helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

SystemConfig
smallConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 500'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    return cfg;
}

} // namespace

TEST(Report, CsvSerialization)
{
    Table t({"a", "b"});
    t.addRow({"1", "x,y"});
    t.addRow({"2", "say \"hi\""});
    std::string csv = t.toCsv();
    EXPECT_EQ(csv, "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n");
}

TEST(Report, CsvFileWrite)
{
    Table t({"h1", "h2"});
    t.addRow({"v1", "v2"});
    std::string path = "/tmp/memscale_test_table.csv";
    t.writeCsv(path);
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "h1,h2\nv1,v2\n");
    std::remove(path.c_str());
}

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(Report, EnvDrivenCsvDump)
{
    setenv("MEMSCALE_CSV_DIR", "/tmp", 1);
    Table t({"col"});
    t.addRow({"val"});
    t.print("My Table: Dump!");
    unsetenv("MEMSCALE_CSV_DIR");
    std::ifstream in("/tmp/my-table-dump.csv");
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "My Table: Dump!\ncol\nval\n");
    std::remove("/tmp/my-table-dump.csv");
}

TEST(Report, SlugHelper)
{
    EXPECT_EQ(csvSlug("Fig. 5: energy savings"), "fig-5-energy-savings");
    EXPECT_EQ(csvSlug("  Mixed CASE  42  "), "mixed-case-42");
    // Never empty, never a hidden/dash-only filename.
    EXPECT_EQ(csvSlug(""), "table");
    EXPECT_EQ(csvSlug("!!! ,,, :::"), "table");
}

TEST(Report, CsvTitleEscaping)
{
    // Titles with commas and quotes must survive as one escaped CSV
    // field, not split the header line.
    Table t({"a"});
    t.addRow({"1"});
    std::string csv = t.toCsv("mem 17-71%, sys \"6-31%\"");
    EXPECT_EQ(csv, "\"mem 17-71%, sys \"\"6-31%\"\"\"\na\n1\n");
    // No title: unchanged legacy serialization.
    EXPECT_EQ(t.toCsv(), "a\n1\n");
}

TEST(Report, SlugCollisionsGetDistinctFiles)
{
    setenv("MEMSCALE_CSV_DIR", "/tmp", 1);
    Table a({"x"});
    a.addRow({"first"});
    Table b({"x"});
    b.addRow({"second"});
    Table c({"x"});
    c.addRow({"third"});
    // Distinct titles, same slug: "collide-me" all three times.
    a.print("Collide, me?");
    b.print("Collide Me");
    c.print("collide:me");
    unsetenv("MEMSCALE_CSV_DIR");

    std::string f1 = slurp("/tmp/collide-me.csv");
    std::string f2 = slurp("/tmp/collide-me-2.csv");
    std::string f3 = slurp("/tmp/collide-me-3.csv");
    EXPECT_NE(f1.find("first"), std::string::npos);
    EXPECT_NE(f2.find("second"), std::string::npos);
    EXPECT_NE(f3.find("third"), std::string::npos);
    // The first file kept its original title (not overwritten).
    EXPECT_NE(f1.find("Collide, me?"), std::string::npos);
    std::remove("/tmp/collide-me.csv");
    std::remove("/tmp/collide-me-2.csv");
    std::remove("/tmp/collide-me-3.csv");
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(pct(0.256), "25.6%");
    EXPECT_EQ(pct(0.5, 0), "50%");
    EXPECT_EQ(joules(2.5), "2.500 J");
    EXPECT_EQ(joules(0.002), "2.000 mJ");
}

TEST(MultiSeed, SummarizesAcrossSeeds)
{
    SystemConfig cfg = smallConfig("MID1");
    AveragedComparison avg = compareAveraged(cfg, "memscale", 3);
    EXPECT_EQ(avg.seeds, 3u);
    EXPECT_GT(avg.memEnergySavings.mean, 0.15);
    EXPECT_GE(avg.memEnergySavings.max, avg.memEnergySavings.mean);
    EXPECT_LE(avg.memEnergySavings.min, avg.memEnergySavings.mean);
    // Seed-to-seed spread should be modest for a stable policy.
    EXPECT_LT(avg.memEnergySavings.stddev, 0.10);
    EXPECT_LT(avg.worstCpiIncrease.max, cfg.gamma + 0.03);
}

TEST(MultiSeed, ZeroSeedsFatal)
{
    SystemConfig cfg = smallConfig("MID1");
    EXPECT_THROW(compareAveraged(cfg, "memscale", 0), FatalError);
}

TEST(SelfRefreshPolicy, DeepestIdleStateWorks)
{
    SystemConfig cfg = smallConfig("ILP2");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult fast = compareWithBase(cfg, base, rest, "fastpd");
    ComparisonResult sr = compareWithBase(cfg, base, rest, "srpd");
    // Self-refresh saves more memory energy than fast powerdown on an
    // idle-heavy ILP workload, at a larger performance cost.
    EXPECT_GT(sr.memEnergySavings, fast.memEnergySavings);
    EXPECT_GE(sr.worstCpiIncrease, fast.worstCpiIncrease);
}

TEST(SelfRefreshPolicy, SelfRefreshTimeAccounted)
{
    SystemConfig cfg = smallConfig("ILP2");
    RunResult run = runPolicy(cfg, "srpd", 50.0);
    EXPECT_GT(run.counters.rankPrePdTime, 0u);
}

TEST(ThrottlePolicy, DelaysButBarelySaves)
{
    SystemConfig cfg = smallConfig("MID2");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult thr =
        compareWithBase(cfg, base, rest, "throttle");
    ComparisonResult ms = compareWithBase(cfg, base, rest, "memscale");
    // Throttling slows things down without meaningful energy savings
    // (the paper's Section 5 argument); MemScale dominates it.
    EXPECT_GT(ms.sysEnergySavings, thr.sysEnergySavings + 0.03);
    EXPECT_GT(thr.policy.runtime, base.runtime);
}

TEST(ThrottleMechanism, CapsBusUtilization)
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc(eq, cfg);
    mc.setThrottle(0.25);
    // Saturating traffic to one channel.
    std::uint64_t done = 0;
    FnClient client([&done](Tick) { ++done; });
    for (int i = 0; i < 400; ++i) {
        DecodedAddr d;
        d.channel = 0;
        d.bank = static_cast<std::uint32_t>(i % 8);
        d.rank = static_cast<std::uint32_t>(i % 4);
        d.row = static_cast<std::uint64_t>(i);
        mc.read(mc.addressMap().encode(d), 0, &client);
    }
    eq.runUntil();
    EXPECT_EQ(done, 400u);
    McCounters c = mc.sampleCounters();
    double util = static_cast<double>(c.busBusyTime) /
                  static_cast<double>(eq.now());
    EXPECT_LT(util, 0.27);   // capped at ~25%
}

TEST(PolicyRegistry, NewBaselinesRegistered)
{
    auto names = policyNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "srpd"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "throttle"),
              names.end());
    EXPECT_EQ(makePolicy("srpd")->name(), "srpd");
    EXPECT_EQ(makePolicy("throttle")->name(), "throttle");
}
