/**
 * @file
 * FastCap invariant tests (ctest label `cluster`): fuzzed property
 * checks of the fleet budget allocator (cap never exceeded,
 * work-conserving, floors honoured, weight monotonicity), Jain's
 * index sanity, and end-to-end behaviour of the fastcap policy on one
 * server — the predicted operating point fits the budget every epoch,
 * uncapped runs never slow down, and tighter caps trade monotonically
 * more slowdown for less energy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "harness/cluster.hh"
#include "harness/experiment.hh"
#include "harness/system.hh"
#include "memscale/policies/fastcap_policy.hh"

using namespace memscale;

namespace
{

std::vector<ServerTelemetry>
fuzzTelemetry(Rng &rng, std::size_t n)
{
    std::vector<ServerTelemetry> t(n);
    for (ServerTelemetry &s : t) {
        s.valid = true;
        s.minW = 5.0 + rng.uniform() * 40.0;
        s.demandW = s.minW + rng.uniform() * 80.0;
        s.measuredW = s.demandW;
    }
    return t;
}

double
sum(const std::vector<double> &v)
{
    double s = 0.0;
    for (double x : v)
        s += x;
    return s;
}

/** The calibrated serving operating point shared by the e2e tests. */
SystemConfig
capConfig()
{
    SystemConfig cfg;
    cfg.mixName = "OPENLOOP";
    cfg.numCores = 8;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    cfg.seed = 12345;
    cfg.modelCpuPower = true;
    cfg.serving.enabled = true;
    cfg.serving.arrival.kind = ArrivalKind::Poisson;
    cfg.serving.arrival.ratePerSec = 0.5e6;
    cfg.serving.horizon = msToTick(1.0);
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// allocateFleetBudget: fuzzed invariants
// ---------------------------------------------------------------------

TEST(FastCapAllocator, FuzzedInvariants)
{
    Rng rng(0xFA57CA9);
    for (int trial = 0; trial < 500; ++trial) {
        const std::size_t n = 1 + rng.next() % 12;
        std::vector<ServerTelemetry> tele = fuzzTelemetry(rng, n);
        std::vector<double> weights;
        if (rng.chance(0.5)) {
            weights.resize(n);
            for (double &w : weights)
                w = 0.25 + rng.uniform() * 4.0;
        }
        double sum_min = 0.0;
        double sum_demand = 0.0;
        for (const ServerTelemetry &t : tele) {
            sum_min += t.minW;
            sum_demand += t.demandW;
        }
        // Caps from "impossible" (below the floors) to "slack"
        // (above the demand) so every allocator branch is exercised.
        const Watts cap =
            0.5 * sum_min + rng.uniform() * (1.2 * sum_demand);
        if (!(cap > 0.0))
            continue;

        BudgetAllocation a = allocateFleetBudget(cap, tele, weights);
        ASSERT_EQ(a.budgetW.size(), n);

        const double total = sum(a.budgetW);
        const double eps = 1e-9 * (1.0 + cap + sum_demand);

        // Invariant 1: predicted fleet power never exceeds the cap
        // (unless even the floors do, which is flagged infeasible).
        if (a.feasible)
            EXPECT_LE(total, cap + eps)
                << "trial " << trial << " n=" << n;
        // Invariant 2: work-conserving — either every server got its
        // full demand, or the cap is exhausted.
        EXPECT_GE(total, std::min(cap, sum_demand) - 1e-6 * cap)
            << "trial " << trial << " n=" << n;
        for (std::size_t k = 0; k < n; ++k) {
            // No budget above demand, none below zero.
            EXPECT_LE(a.budgetW[k], tele[k].demandW + eps);
            EXPECT_GE(a.budgetW[k], -eps);
            // Floors honoured whenever they fit collectively.
            if (sum_min <= cap)
                EXPECT_GE(a.budgetW[k], tele[k].minW - eps)
                    << "trial " << trial << " server " << k;
        }
        EXPECT_EQ(a.feasible, sum_min <= cap);
    }
}

TEST(FastCapAllocator, SlackCapGrantsEveryDemand)
{
    Rng rng(7);
    std::vector<ServerTelemetry> tele = fuzzTelemetry(rng, 6);
    double sum_demand = 0.0;
    for (const ServerTelemetry &t : tele)
        sum_demand += t.demandW;
    BudgetAllocation a =
        allocateFleetBudget(sum_demand * 2.0, tele, {});
    for (std::size_t k = 0; k < tele.size(); ++k)
        EXPECT_DOUBLE_EQ(a.budgetW[k], tele[k].demandW);
    EXPECT_TRUE(a.feasible);
}

TEST(FastCapAllocator, InfeasibleFloorsScaleProportionally)
{
    std::vector<ServerTelemetry> tele(2);
    tele[0].minW = 30.0;
    tele[0].demandW = 50.0;
    tele[1].minW = 60.0;
    tele[1].demandW = 90.0;
    // Cap below sum(min)=90: floors scale by 60/90, nothing else.
    BudgetAllocation a = allocateFleetBudget(60.0, tele, {});
    EXPECT_FALSE(a.feasible);
    EXPECT_DOUBLE_EQ(a.budgetW[0], 60.0 * 30.0 / 90.0);
    EXPECT_DOUBLE_EQ(a.budgetW[1], 60.0 * 60.0 / 90.0);
}

TEST(FastCapAllocator, WeightMonotoneForEqualServers)
{
    // Two identical servers, weight 3 vs 1, cap covering the floors
    // plus half the spans: the heavier weight reaches its demand
    // first and must receive at least the lighter server's grant.
    std::vector<ServerTelemetry> tele(2);
    for (ServerTelemetry &t : tele) {
        t.minW = 20.0;
        t.demandW = 100.0;
    }
    BudgetAllocation a =
        allocateFleetBudget(120.0, tele, {3.0, 1.0});
    EXPECT_GT(a.budgetW[0], a.budgetW[1]);
    EXPECT_NEAR(a.budgetW[0] + a.budgetW[1], 120.0, 1e-6);
    // Equal weights split the same cap evenly.
    BudgetAllocation e = allocateFleetBudget(120.0, tele, {});
    EXPECT_NEAR(e.budgetW[0], e.budgetW[1], 1e-9);
}

TEST(FastCapAllocator, WeightsCycleOverFleet)
{
    std::vector<ServerTelemetry> tele(4);
    for (ServerTelemetry &t : tele) {
        t.minW = 10.0;
        t.demandW = 60.0;
    }
    // weights {2,1} cycle to {2,1,2,1}: servers 0/2 match, 1/3 match.
    BudgetAllocation a = allocateFleetBudget(140.0, tele, {2.0, 1.0});
    EXPECT_NEAR(a.budgetW[0], a.budgetW[2], 1e-9);
    EXPECT_NEAR(a.budgetW[1], a.budgetW[3], 1e-9);
    EXPECT_GT(a.budgetW[0], a.budgetW[1]);
}

// ---------------------------------------------------------------------
// Jain's index
// ---------------------------------------------------------------------

TEST(JainIndex, KnownValues)
{
    EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({0.0, 0.0}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({3.0, 3.0, 3.0}), 1.0);
    // One server hogging everything: index collapses to 1/n.
    EXPECT_NEAR(jainIndex({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
    // Bounds for arbitrary positive vectors.
    Rng rng(99);
    for (int t = 0; t < 100; ++t) {
        std::vector<double> x(2 + rng.next() % 10);
        for (double &v : x)
            v = rng.uniform() + 1e-3;
        const double j = jainIndex(x);
        EXPECT_GE(j, 1.0 / static_cast<double>(x.size()) - 1e-12);
        EXPECT_LE(j, 1.0 + 1e-12);
    }
}

// ---------------------------------------------------------------------
// FastCap policy end to end (one server)
// ---------------------------------------------------------------------

TEST(FastCapPolicyRun, UncappedNeverSlowsDown)
{
    SystemConfig cfg = capConfig();
    Watts rest = 0.0;
    runBaseline(cfg, rest);
    cfg.restWatts = rest;

    FastCapPolicy p;
    System sys(cfg, p);
    RunResult r = sys.run();

    const FastCapTelemetry &t = p.telemetry();
    ASSERT_TRUE(t.valid);
    EXPECT_GT(t.epochs, 0u);
    EXPECT_EQ(t.infeasibleEpochs, 0u);
    // With no budget the policy always picks the fastest pair.
    EXPECT_DOUBLE_EQ(t.slowdown, 1.0);
    EXPECT_DOUBLE_EQ(t.budgetW, 0.0);
    EXPECT_GT(t.demandW, 0.0);
    EXPECT_GE(t.demandW, t.minW);
    EXPECT_TRUE(r.serving.valid);
}

TEST(FastCapPolicyRun, PredictionFitsBudgetEveryEpoch)
{
    SystemConfig cfg = capConfig();
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    cfg.restWatts = rest;

    // A cap at 90% of the measured uncapped draw: tight enough to
    // bind, loose enough that the min-power pair always fits.
    const Watts uncapped =
        base.energy.total() / tickToSec(base.runtime);
    cfg.powerCapW = 0.9 * uncapped;

    FastCapPolicy p;
    System sys(cfg, p);
    RunResult r = sys.run();

    const FastCapTelemetry &t = p.telemetry();
    ASSERT_TRUE(t.valid);
    EXPECT_GT(t.epochs, 0u);
    EXPECT_EQ(t.infeasibleEpochs, 0u);
    // The selection invariant: every epoch's chosen pair predicted
    // within headroom * budget — maxChosenW is the running max.
    EXPECT_LE(t.maxChosenW,
              p.options().headroom * cfg.powerCapW * (1.0 + 1e-9));
    EXPECT_DOUBLE_EQ(t.budgetW, cfg.powerCapW);
    // Capped runs spend less than the uncapped baseline.
    EXPECT_LT(r.energy.total(), base.energy.total());
}

TEST(FastCapPolicyRun, TighterCapMoreSlowdownLessPower)
{
    SystemConfig cfg = capConfig();
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    cfg.restWatts = rest;
    const Watts uncapped =
        base.energy.total() / tickToSec(base.runtime);

    auto run_at = [&](double frac, FastCapTelemetry &tele_out) {
        SystemConfig c = cfg;
        c.powerCapW = frac * uncapped;
        FastCapPolicy p;
        System sys(c, p);
        RunResult r = sys.run();
        tele_out = p.telemetry();
        return r;
    };

    FastCapTelemetry loose_t, tight_t;
    RunResult loose = run_at(0.95, loose_t);
    RunResult tight = run_at(0.75, tight_t);

    ASSERT_TRUE(loose_t.valid);
    ASSERT_TRUE(tight_t.valid);
    EXPECT_GE(tight_t.slowdown, loose_t.slowdown);
    EXPECT_LT(tight.energy.total(), loose.energy.total());
    // Throttling deeper cannot improve the tail.
    EXPECT_GE(tight.serving.p99Us, loose.serving.p99Us);
}

TEST(FastCapPolicyRun, ImpossibleBudgetDegradesToFloor)
{
    SystemConfig cfg = capConfig();
    Watts rest = 0.0;
    runBaseline(cfg, rest);
    cfg.restWatts = rest;
    // 1 W can never fit rest-of-system draw: every epoch is
    // infeasible and the policy pins the min-power pair.
    cfg.powerCapW = 1.0;

    FastCapPolicy p;
    System sys(cfg, p);
    RunResult r = sys.run();

    const FastCapTelemetry &t = p.telemetry();
    ASSERT_TRUE(t.valid);
    EXPECT_GT(t.epochs, 0u);
    EXPECT_EQ(t.infeasibleEpochs, t.epochs);
    EXPECT_GE(t.slowdown, 1.0);
    EXPECT_TRUE(r.serving.valid);
}
