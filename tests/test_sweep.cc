/**
 * @file
 * Tests for the parallel sweep engine: thread-count invariance of
 * results, exception propagation out of worker tasks,
 * oversubscription, and the experiment-level helpers.  Built with
 * -DMEMSCALE_TSAN=ON this suite doubles as the data-race check for
 * the pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "harness/differential.hh"
#include "harness/sweep.hh"
#include "obs/trace_writer.hh"
#include "workload/mixes.hh"

using namespace memscale;

namespace
{

/** A cheap deterministic stand-in for a simulation run. */
std::uint64_t
hashTask(std::size_t i)
{
    std::uint64_t h = deriveSeed(42, i);
    for (int k = 0; k < 100; ++k)
        h = splitmix64(h + k);
    return h;
}

SystemConfig
tinyConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 50000;
    cfg.epochLen = msToTick(0.25);
    cfg.profileLen = usToTick(25.0);
    return cfg;
}

} // namespace

TEST(SweepEngine, ResolveJobsPrefersExplicit)
{
    EXPECT_EQ(resolveJobs(3), 3u);
    EXPECT_GE(resolveJobs(0), 1u);
}

TEST(SweepEngine, CheckedJobsGuardsUserInput)
{
    // A negative jobs= must die cleanly, not get cast to unsigned and
    // spawn four billion threads; absurd values clamp to MaxJobs.
    EXPECT_THROW(checkedJobs(-3), FatalError);
    EXPECT_EQ(checkedJobs(0), 0u);
    EXPECT_EQ(checkedJobs(8), 8u);
    EXPECT_EQ(checkedJobs(1ll << 40), MaxJobs);
}

TEST(SweepEngine, MapPreservesTaskOrder)
{
    SweepEngine eng(4);
    std::vector<std::uint64_t> out = eng.map<std::uint64_t>(
        100, [](std::size_t i) { return hashTask(i); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], hashTask(i)) << "task " << i;
}

TEST(SweepEngine, ThreadCountInvariance)
{
    // 1, 2, and 8 threads must produce identical aggregated results
    // (results are keyed by task index, not completion order).
    std::vector<std::vector<std::uint64_t>> runs;
    for (unsigned jobs : {1u, 2u, 8u}) {
        SweepEngine eng(jobs);
        EXPECT_EQ(eng.jobs(), jobs);
        runs.push_back(eng.map<std::uint64_t>(
            257, [](std::size_t i) { return hashTask(i * 31); }));
    }
    EXPECT_EQ(runs[0], runs[1]);
    EXPECT_EQ(runs[0], runs[2]);
}

TEST(SweepEngine, ThreadCountInvarianceFullRuns)
{
    // End-to-end: whole-system comparisons must not depend on the
    // worker count either (each task owns its System + EventQueue).
    auto sweep = [](unsigned jobs) {
        SweepEngine eng(jobs);
        std::vector<SweepCase> cases;
        for (const char *mix : {"ILP1", "MID2", "MEM2"})
            cases.push_back(SweepCase{tinyConfig(mix), "memscale"});
        std::vector<double> out;
        for (const ComparisonResult &r : compareCases(eng, cases)) {
            out.push_back(r.memEnergySavings);
            out.push_back(r.sysEnergySavings);
            out.push_back(r.worstCpiIncrease);
        }
        return out;
    };
    std::vector<double> serial = sweep(1);
    std::vector<double> parallel = sweep(8);
    // Byte-identical, not approximately equal.
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "metric " << i;
}

TEST(SweepEngine, IdenticalConfigsHashIdenticallyAcrossWorkers)
{
    // Eight copies of the *same* configuration spread across eight
    // workers must produce bit-identical runs.  Any hidden coupling
    // between worker threads and the simulation (a shared RNG, a
    // thread-keyed cache, iteration-order dependence) shows up here
    // as a digest mismatch between replicas.
    SweepEngine eng(8);
    SystemConfig cfg = tinyConfig("MID1");
    std::vector<std::uint64_t> digests = eng.map<std::uint64_t>(
        8, [&](std::size_t) {
            return hashRunResult(runPolicy(cfg, "memscale", 150.0));
        });
    for (std::size_t i = 1; i < digests.size(); ++i)
        EXPECT_EQ(digests[i], digests[0]) << "replica " << i;

    // And the parallel digests must match a serial reference run.
    std::uint64_t serial =
        hashRunResult(runPolicy(cfg, "memscale", 150.0));
    EXPECT_EQ(digests[0], serial);
}

TEST(SweepEngine, PoolStateDoesNotLeakAcrossSweepTasks)
{
    // Each sweep task owns a System, and with it a MemoryController
    // whose RequestPool recycles request storage for the whole run.
    // Interleave two different configurations so every worker services
    // both back to back: if any pooled request state survived from a
    // previous task (a stale client pointer, a non-reset field), the
    // replica digests would diverge from the serial references.
    SweepEngine eng(4);
    SystemConfig a = tinyConfig("MID1");
    SystemConfig b = tinyConfig("MEM2");
    std::vector<std::uint64_t> digests = eng.map<std::uint64_t>(
        8, [&](std::size_t i) {
            const SystemConfig &cfg = (i % 2 == 0) ? a : b;
            return hashRunResult(runPolicy(cfg, "memscale", 150.0));
        });
    std::uint64_t serialA =
        hashRunResult(runPolicy(a, "memscale", 150.0));
    std::uint64_t serialB =
        hashRunResult(runPolicy(b, "memscale", 150.0));
    for (std::size_t i = 0; i < digests.size(); ++i)
        EXPECT_EQ(digests[i], i % 2 == 0 ? serialA : serialB)
            << "task " << i;
}

TEST(SweepEngine, ObservabilityExportsAreJobCountInvariant)
{
    // With observability on, the recorded epoch buffers — and every
    // byte of the exported CSV / Chrome-trace text — must be identical
    // whether the sweep ran serially or on eight workers.  Each run
    // owns its registry + recorder, and floats are printed with
    // round-trip precision, so any divergence here is a real
    // scheduling leak.
    auto sweep = [](unsigned jobs) {
        SweepEngine eng(jobs);
        std::vector<SweepCase> cases;
        for (const char *mix : {"MID1", "MEM2"}) {
            SystemConfig cfg = tinyConfig(mix);
            cfg.observe = true;
            cases.push_back(SweepCase{cfg, "memscale"});
        }
        std::vector<std::string> out;
        for (const ComparisonResult &r : compareCases(eng, cases)) {
            EXPECT_TRUE(r.policy.obs);
            out.push_back(r.policy.obs->toCsv());
            out.push_back(chromeTraceJson(*r.policy.obs));
        }
        return out;
    };
    std::vector<std::string> serial = sweep(1);
    std::vector<std::string> parallel = sweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "export " << i;
}

TEST(SweepEngine, ShardedRunsAreThreadCountInvariant)
{
    // Time-sharding through the sweep engine: each task runs its mix
    // as a chain of three checkpoints (shard -> resume -> ... ->
    // finish).  The final result hash must match the unsharded run,
    // and — because snapshots contain nothing environmental — the
    // intermediate snapshot *files* must be byte-identical whether
    // the sweep ran on one worker or eight.
    const std::vector<std::string> mixes = {"ILP1", "MID2", "MEM2"};
    auto readAll = [](const std::string &path) {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr) << path;
        std::string bytes;
        char buf[4096];
        std::size_t got;
        while (f && (got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.append(buf, got);
        if (f)
            std::fclose(f);
        return bytes;
    };
    struct ShardOut
    {
        std::uint64_t finalHash = 0;
        std::vector<std::string> shardBytes;
    };
    auto sweep = [&](unsigned jobs) {
        SweepEngine eng(jobs);
        return eng.map<ShardOut>(mixes.size(), [&](std::size_t i) {
            SystemConfig cfg = tinyConfig(mixes[i]);
            RunResult full = runPolicy(cfg, "memscale", 150.0);
            const Tick r = full.runtime;
            const std::string prefix =
                "/tmp/memscale_test_sweep_shard_" + mixes[i] + "_j" +
                std::to_string(jobs);
            RunResult sharded =
                runPolicySharded(cfg, "memscale", 150.0,
                                 {r / 4, r / 2, 3 * r / 4}, prefix);
            ShardOut out;
            out.finalHash = hashRunResult(sharded);
            EXPECT_EQ(out.finalHash, hashRunResult(full))
                << mixes[i];
            for (int s = 0; s < 3; ++s) {
                std::string path =
                    prefix + ".shard" + std::to_string(s);
                out.shardBytes.push_back(readAll(path));
                std::remove(path.c_str());
            }
            return out;
        });
    };
    std::vector<ShardOut> serial = sweep(1);
    std::vector<ShardOut> parallel = sweep(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].finalHash, parallel[i].finalHash)
            << mixes[i];
        ASSERT_EQ(serial[i].shardBytes.size(),
                  parallel[i].shardBytes.size());
        for (std::size_t s = 0; s < serial[i].shardBytes.size(); ++s) {
            EXPECT_FALSE(serial[i].shardBytes[s].empty())
                << mixes[i] << " shard " << s;
            EXPECT_EQ(serial[i].shardBytes[s],
                      parallel[i].shardBytes[s])
                << mixes[i] << " shard " << s << " differs by "
                << "thread count";
        }
    }
}

TEST(SweepEngine, Oversubscription)
{
    // Far more tasks than workers: everything still runs exactly once.
    SweepEngine eng(8);
    std::vector<std::atomic<int>> hits(500);
    eng.forEach(500, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(SweepEngine, MoreWorkersThanTasks)
{
    SweepEngine eng(8);
    std::vector<std::uint64_t> out =
        eng.map<std::uint64_t>(3, [](std::size_t i) { return i + 7; });
    EXPECT_EQ(out, (std::vector<std::uint64_t>{7, 8, 9}));
}

TEST(SweepEngine, EmptyBatch)
{
    SweepEngine eng(4);
    int calls = 0;
    eng.forEach(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(SweepEngine, ExceptionPropagates)
{
    SweepEngine eng(4);
    EXPECT_THROW(
        eng.forEach(50,
                    [](std::size_t i) {
                        if (i == 13)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(SweepEngine, LowestIndexedExceptionWins)
{
    // Several tasks fail; the rethrown error must deterministically be
    // the lowest-indexed one, regardless of completion order.
    SweepEngine eng(8);
    for (int round = 0; round < 5; ++round) {
        try {
            eng.forEach(64, [](std::size_t i) {
                if (i % 2 == 1)
                    throw std::runtime_error(std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "1");
        }
    }
}

TEST(SweepEngine, RemainingTasksRunAfterFailure)
{
    SweepEngine eng(4);
    std::vector<std::atomic<int>> hits(40);
    EXPECT_THROW(eng.forEach(40,
                             [&](std::size_t i) {
                                 hits[i].fetch_add(1);
                                 if (i == 0)
                                     throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(SweepEngine, FatalErrorPropagates)
{
    SweepEngine eng(2);
    EXPECT_THROW(eng.forEach(4,
                             [](std::size_t i) {
                                 if (i == 2)
                                     fatal("task-level user error");
                             }),
                 FatalError);
}

TEST(SweepEngine, ReusableAcrossBatches)
{
    SweepEngine eng(4);
    for (int round = 0; round < 10; ++round) {
        std::vector<std::uint64_t> out = eng.map<std::uint64_t>(
            17, [round](std::size_t i) { return i * (round + 1); });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * (round + 1));
    }
}

TEST(SweepHelpers, CompareAveragedMatchesEngineOverload)
{
    SystemConfig cfg = tinyConfig("MID1");
    AveragedComparison serial = compareAveraged(cfg, "memscale", 3);
    SweepEngine eng(8);
    AveragedComparison parallel =
        compareAveraged(eng, cfg, "memscale", 3);
    EXPECT_EQ(serial.seeds, parallel.seeds);
    EXPECT_EQ(serial.memEnergySavings.mean,
              parallel.memEnergySavings.mean);
    EXPECT_EQ(serial.memEnergySavings.stddev,
              parallel.memEnergySavings.stddev);
    EXPECT_EQ(serial.sysEnergySavings.mean,
              parallel.sysEnergySavings.mean);
    EXPECT_EQ(serial.worstCpiIncrease.max,
              parallel.worstCpiIncrease.max);
    EXPECT_GE(serial.memEnergySavings.stddev, 0.0);
}

TEST(SweepHelpers, PolicyGridIndexing)
{
    SweepEngine eng(4);
    std::vector<SystemConfig> cfgs = {tinyConfig("MID1"),
                                      tinyConfig("MEM2")};
    std::vector<CalibratedBaseline> bases = runBaselines(eng, cfgs);
    ASSERT_EQ(bases.size(), 2u);
    EXPECT_GT(bases[0].rest, 0.0);

    std::vector<std::string> policies = {"static", "memscale"};
    std::vector<ComparisonResult> grid =
        comparePolicyGrid(eng, cfgs, bases, policies);
    ASSERT_EQ(grid.size(), 4u);
    // Row-major by policy: [p * cfgs + i].
    EXPECT_EQ(grid[0].policy.policyName, "static");
    EXPECT_EQ(grid[0].policy.mixName, "MID1");
    EXPECT_EQ(grid[1].policy.mixName, "MEM2");
    EXPECT_EQ(grid[2].policy.policyName, "memscale");
    EXPECT_EQ(grid[3].policy.policyName, "memscale");
    EXPECT_EQ(grid[3].policy.mixName, "MEM2");
}
