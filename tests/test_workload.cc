/**
 * @file
 * Workload tests: synthetic trace-source statistics (MPKI/WPKI/phase
 * behaviour), the Table 1 mix registry (including a parameterized
 * check that every mix's synthetic RPKI approximates the paper value),
 * the LLC model, and the cache-based trace source.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "workload/address_stream.hh"
#include "workload/llc.hh"
#include "workload/mixes.hh"
#include "workload/trace_source.hh"

using namespace memscale;

namespace
{

AppProfile
flatProfile(double mpki, double wpki, double cpi = 1.0,
            double stream = 0.5)
{
    AppProfile p;
    p.name = "test";
    p.phases.push_back(AppPhase{mpki, wpki, cpi, stream, 0});
    p.footprintBytes = 16ull << 20;
    return p;
}

} // namespace

TEST(TraceSource, MpkiConverges)
{
    AppProfile p = flatProfile(5.0, 0.0);
    SyntheticTraceSource src(p, 0, 64, 42);
    TraceChunk c;
    std::uint64_t instr = 0, misses = 0;
    while (misses < 20000 && src.next(c)) {
        instr += c.instructions + 1;
        ++misses;
    }
    double mpki = 1000.0 * static_cast<double>(misses) /
                  static_cast<double>(instr);
    EXPECT_NEAR(mpki, 5.0, 0.25);
}

TEST(TraceSource, WpkiConverges)
{
    AppProfile p = flatProfile(10.0, 3.0);
    SyntheticTraceSource src(p, 0, 64, 43);
    TraceChunk c;
    std::uint64_t instr = 0, wbs = 0;
    for (int i = 0; i < 50000 && src.next(c); ++i) {
        instr += c.instructions + 1;
        if (c.hasWriteback)
            ++wbs;
    }
    double wpki = 1000.0 * static_cast<double>(wbs) /
                  static_cast<double>(instr);
    EXPECT_NEAR(wpki, 3.0, 0.3);
}

TEST(TraceSource, AddressesStayInFootprint)
{
    AppProfile p = flatProfile(10.0, 5.0);
    Addr base = 1ull << 30;
    SyntheticTraceSource src(p, base, 64, 44);
    TraceChunk c;
    for (int i = 0; i < 5000 && src.next(c); ++i) {
        EXPECT_GE(c.missAddr, base);
        EXPECT_LT(c.missAddr, base + p.footprintBytes);
        if (c.hasWriteback) {
            EXPECT_GE(c.writebackAddr, base);
            EXPECT_LT(c.writebackAddr, base + p.footprintBytes);
        }
    }
}

TEST(TraceSource, DeterministicBySeed)
{
    AppProfile p = flatProfile(2.0, 0.5);
    SyntheticTraceSource a(p, 0, 64, 7), b(p, 0, 64, 7);
    TraceChunk ca, cb;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(a.next(ca));
        ASSERT_TRUE(b.next(cb));
        EXPECT_EQ(ca.instructions, cb.instructions);
        EXPECT_EQ(ca.missAddr, cb.missAddr);
        EXPECT_EQ(ca.hasWriteback, cb.hasWriteback);
    }
}

TEST(TraceSource, PhaseTransition)
{
    AppProfile p;
    p.name = "phased";
    p.phases.push_back(AppPhase{1.0, 0.0, 1.0, 0.5, 1'000'000});
    p.phases.push_back(AppPhase{20.0, 0.0, 1.0, 0.5, 0});
    p.footprintBytes = 16ull << 20;
    SyntheticTraceSource src(p, 0, 64, 45);
    TraceChunk c;
    std::uint64_t instr = 0;
    std::uint64_t phase1_misses = 0, phase2_misses = 0;
    std::uint64_t phase2_instr = 0;
    while (instr < 2'000'000 && src.next(c)) {
        instr += c.instructions + 1;
        if (instr <= 1'000'000)
            ++phase1_misses;
        else {
            ++phase2_misses;
            phase2_instr += c.instructions + 1;
        }
    }
    double mpki1 = 1000.0 * static_cast<double>(phase1_misses) / 1e6;
    double mpki2 = 1000.0 * static_cast<double>(phase2_misses) /
                   static_cast<double>(phase2_instr);
    EXPECT_NEAR(mpki1, 1.0, 0.3);
    EXPECT_NEAR(mpki2, 20.0, 2.0);
}

TEST(TraceSource, NonLoopingProfileExhausts)
{
    AppProfile p;
    p.name = "finite";
    p.loopPhases = false;
    p.phases.push_back(AppPhase{10.0, 0.0, 1.0, 0.5, 10'000});
    p.footprintBytes = 1ull << 20;
    SyntheticTraceSource src(p, 0, 64, 46);
    TraceChunk c;
    int n = 0;
    while (src.next(c) && n < 100000)
        ++n;
    EXPECT_LT(n, 100000);   // stream ended
}

TEST(Mixes, RegistryComplete)
{
    EXPECT_EQ(allMixes().size(), 12u);
    for (const MixSpec &m : allMixes()) {
        for (const auto &app : m.apps) {
            const AppProfile &p = appByName(app);
            EXPECT_FALSE(p.phases.empty());
        }
    }
    EXPECT_THROW(mixByName("NOPE"), FatalError);
    EXPECT_THROW(appByName("nope"), FatalError);
}

class MixRpki : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MixRpki, ProfileAverageApproximatesPaper)
{
    const MixSpec &mix = allMixes()[GetParam()];
    double sum = 0.0;
    for (const auto &app : mix.apps)
        sum += appByName(app).averageMpki(canonicalBudget);
    double avg = sum / 4.0;
    // Within 15% of the paper's Table 1 value.
    EXPECT_NEAR(avg, mix.paperRpki, mix.paperRpki * 0.15 + 0.02)
        << mix.name;
}

INSTANTIATE_TEST_SUITE_P(AllMixes, MixRpki,
                         ::testing::Range(std::size_t(0),
                                          std::size_t(12)));

TEST(Mixes, ScaledProfileShrinksPhases)
{
    const AppProfile &apsi = appByName("apsi");
    AppProfile scaled = scaledProfile(apsi, 0.01);
    ASSERT_EQ(scaled.phases.size(), apsi.phases.size());
    EXPECT_EQ(scaled.phases[0].instructions,
              apsi.phases[0].instructions / 100);
    EXPECT_DOUBLE_EQ(scaled.phases[0].mpki, apsi.phases[0].mpki);
}

TEST(Mixes, AppForCoreCycles)
{
    const MixSpec &mix = mixByName("MEM1");
    EXPECT_EQ(appForCore(mix, 0).name, "swim");
    EXPECT_EQ(appForCore(mix, 4).name, "swim");
    EXPECT_EQ(appForCore(mix, 1).name, "applu");
}

TEST(Llc, HitsAfterFill)
{
    Llc llc(1 << 16, 4, 64);
    llc.access(0, false);
    EXPECT_EQ(llc.misses(), 1u);
    llc.access(0, false);
    EXPECT_EQ(llc.hits(), 1u);
}

TEST(Llc, LruEviction)
{
    // 4-way, single set: 4 * 64B cache.
    Llc llc(256, 4, 64);
    std::uint64_t sets = 1;
    for (std::uint64_t i = 0; i < 4; ++i)
        llc.access(i * 64 * sets, false);
    llc.access(0, false);            // refresh line 0
    llc.access(4 * 64, false);       // evicts LRU (line 1)
    EXPECT_EQ(llc.misses(), 5u);
    llc.access(0, false);            // still resident
    EXPECT_EQ(llc.hits(), 2u);
    llc.access(64, false);           // line 1 was evicted
    EXPECT_EQ(llc.misses(), 6u);
}

TEST(Llc, DirtyEvictionWritesBack)
{
    Llc llc(256, 4, 64);
    llc.access(0, true);   // dirty
    for (std::uint64_t i = 1; i <= 4; ++i) {
        Llc::AccessResult r = llc.access(i * 64, false);
        if (r.writeback)
            EXPECT_EQ(r.victimAddr, 0u);
    }
    EXPECT_EQ(llc.writebacks(), 1u);
}

TEST(Llc, MissRateForStreamingExceedsCache)
{
    Llc llc(1 << 14, 4, 64);   // 16 KB
    // Stream through 1 MB: everything misses.
    for (Addr a = 0; a < (1 << 20); a += 64)
        llc.access(a, false);
    EXPECT_GT(llc.missRate(), 0.99);
}

TEST(AddressStream, StaysInBounds)
{
    AddressStreamParams sp;
    sp.footprintBytes = 1 << 20;
    AddressStream s(sp, 1 << 24, 9);
    for (int i = 0; i < 10000; ++i) {
        bool st = false;
        Addr a = s.next(st);
        EXPECT_GE(a, Addr(1) << 24);
        EXPECT_LT(a, (Addr(1) << 24) + sp.footprintBytes);
    }
}

TEST(AddressStream, StoreFraction)
{
    AddressStreamParams sp;
    sp.storeFrac = 0.3;
    AddressStream s(sp, 0, 10);
    int stores = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        bool st = false;
        s.next(st);
        if (st)
            ++stores;
    }
    EXPECT_NEAR(static_cast<double>(stores) / n, 0.3, 0.02);
}

TEST(CacheTrace, EmitsMissesWithEmergentRate)
{
    CacheTraceSource::Params cp;
    cp.accessesPerKiloInstr = 200.0;
    cp.llcBytes = 1 << 18;   // 256 KB slice
    AddressStreamParams sp;
    sp.footprintBytes = 16ull << 20;   // much larger than the cache
    sp.seqFrac = 0.5;
    CacheTraceSource src(cp, sp, 0, 11);
    TraceChunk c;
    for (int i = 0; i < 20000; ++i)
        ASSERT_TRUE(src.next(c));
    // Misses must be a plausible fraction of accesses.
    EXPECT_GT(src.observedMpki(), 1.0);
    EXPECT_LT(src.observedMpki(), 200.0);
    EXPECT_GT(src.cache().writebacks(), 0u);
}
