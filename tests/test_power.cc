/**
 * @file
 * Power-model tests: parameter scaling laws (paper Section 2.2), the
 * Micron-style rank energy model, and the system energy integrator.
 */

#include <gtest/gtest.h>

#include "power/dram_power.hh"
#include "power/params.hh"
#include "power/system_power.hh"

using namespace memscale;

namespace
{

RankActivity
standbyWindow(Tick total, Tick pre)
{
    RankActivity a;
    a.totalTime = total;
    a.preStandbyTime = pre;
    a.actStandbyTime = total - pre;
    return a;
}

} // namespace

TEST(PowerParams, McVoltageRange)
{
    PowerParams pp;
    EXPECT_DOUBLE_EQ(pp.mcVoltage(800), 1.20);
    EXPECT_DOUBLE_EQ(pp.mcVoltage(200), 0.65);
    double mid = pp.mcVoltage(500);
    EXPECT_GT(mid, 0.65);
    EXPECT_LT(mid, 1.20);
}

TEST(PowerParams, McPowerVsquaredF)
{
    PowerParams pp;
    // At nominal V/f and full utilization: peak power.
    EXPECT_NEAR(pp.mcPower(800, 1.0), 15.0, 1e-9);
    // At nominal V/f and idle: proportionality * peak.
    EXPECT_NEAR(pp.mcPower(800, 0.0), 7.5, 1e-9);
    // At the lowest point: (0.65/1.2)^2 * (200/800) ~ 7.3% of nominal.
    double scale = (0.65 / 1.2) * (0.65 / 1.2) * 0.25;
    EXPECT_NEAR(pp.mcPower(200, 1.0), 15.0 * scale, 1e-9);
    // Cubic-ish: much more than linear savings.
    EXPECT_LT(pp.mcPower(200, 1.0), 15.0 * 0.25);
}

TEST(PowerParams, RegisterAndPllScaleLinearly)
{
    PowerParams pp;
    EXPECT_NEAR(pp.pllPower(800), 0.5, 1e-12);
    EXPECT_NEAR(pp.pllPower(400), 0.25, 1e-12);
    EXPECT_NEAR(pp.registerPower(800, 1.0), 0.5, 1e-12);
    EXPECT_NEAR(pp.registerPower(800, 0.0), 0.25, 1e-12);
    EXPECT_NEAR(pp.registerPower(400, 0.0), 0.125, 1e-12);
}

TEST(PowerParams, ProportionalityKnob)
{
    PowerParams pp;
    pp.proportionality = 1.0;    // no proportionality
    EXPECT_NEAR(pp.mcPower(800, 0.0), 15.0, 1e-9);
    pp.proportionality = 0.0;    // perfect proportionality
    EXPECT_NEAR(pp.mcPower(800, 0.0), 0.0, 1e-9);
    EXPECT_NEAR(pp.mcPower(800, 0.5), 7.5, 1e-9);
}

TEST(RankEnergy, StandbyBackgroundMatchesHandComputation)
{
    PowerParams pp;
    const TimingParams &tp = TimingParams::at(0);
    // 1 ms entirely in precharge standby.
    RankActivity a = standbyWindow(msToTick(1.0), msToTick(1.0));
    RankEnergy e = rankEnergy(a, tp, pp, 0);
    double expect = pp.vdd * pp.iPreStandby * 9 * 1e-3;
    EXPECT_NEAR(e.background, expect, expect * 1e-9);
    EXPECT_DOUBLE_EQ(e.actPre, 0.0);
    EXPECT_DOUBLE_EQ(e.readWrite, 0.0);
}

TEST(RankEnergy, BackgroundScalesWithFrequency)
{
    PowerParams pp;
    RankActivity a = standbyWindow(msToTick(1.0), msToTick(1.0));
    RankEnergy hi = rankEnergy(a, TimingParams::at(0), pp, 0);
    RankEnergy lo = rankEnergy(a, TimingParams::at(9), pp, 0);
    EXPECT_NEAR(lo.background / hi.background, 200.0 / 800.0, 1e-9);
}

TEST(RankEnergy, PowerdownCheaperThanStandby)
{
    PowerParams pp;
    const TimingParams &tp = TimingParams::at(0);
    RankActivity standby = standbyWindow(msToTick(1.0), msToTick(1.0));
    RankActivity pd;
    pd.totalTime = msToTick(1.0);
    pd.prePowerdownTime = msToTick(1.0);
    RankActivity slow = pd;
    slow.slowPowerdownTime = msToTick(1.0);
    double e_stby = rankEnergy(standby, tp, pp, 0).background;
    double e_fast = rankEnergy(pd, tp, pp, 0).background;
    double e_slow = rankEnergy(slow, tp, pp, 0).background;
    EXPECT_LT(e_fast, e_stby);
    EXPECT_LT(e_slow, e_fast);
}

TEST(RankEnergy, ActPreEnergyPerOperationIsFrequencyInvariant)
{
    PowerParams pp;
    RankActivity a;
    a.totalTime = msToTick(1.0);
    a.preStandbyTime = a.totalTime;
    a.actPreCount = 1000;
    double hi = rankEnergy(a, TimingParams::at(0), pp, 0).actPre;
    double lo = rankEnergy(a, TimingParams::at(9), pp, 0).actPre;
    EXPECT_NEAR(hi, lo, hi * 1e-12);
    EXPECT_GT(hi, 0.0);
}

TEST(RankEnergy, ReadWriteEnergyTracksBurstTime)
{
    PowerParams pp;
    const TimingParams &tp = TimingParams::at(0);
    RankActivity a = standbyWindow(msToTick(1.0), 0);
    a.readBursts = 1000;
    a.readBurstTime = 1000 * tp.tBURST;
    double e1 = rankEnergy(a, tp, pp, 0).readWrite;
    a.readBurstTime *= 2;
    double e2 = rankEnergy(a, tp, pp, 0).readWrite;
    EXPECT_NEAR(e2, 2.0 * e1, e1 * 1e-9);
}

TEST(RankEnergy, TerminationFromOtherRanks)
{
    PowerParams pp;
    const TimingParams &tp = TimingParams::at(0);
    RankActivity a = standbyWindow(msToTick(1.0), msToTick(1.0));
    RankEnergy none = rankEnergy(a, tp, pp, 0);
    RankEnergy some = rankEnergy(a, tp, pp, usToTick(100.0));
    EXPECT_DOUBLE_EQ(none.termination, 0.0);
    double expect = 9 * pp.termOtherRankW * 100e-6;
    EXPECT_NEAR(some.termination, expect, expect * 1e-9);
}

TEST(RankEnergy, RefreshEnergyCounts)
{
    PowerParams pp;
    const TimingParams &tp = TimingParams::at(0);
    RankActivity a = standbyWindow(msToTick(1.0), msToTick(1.0));
    a.refreshes = 128;
    RankEnergy e = rankEnergy(a, tp, pp, 0);
    double per = pp.vdd * (pp.iRefresh - pp.iPreStandby) * 9 *
                 tickToSec(tp.tRFC);
    EXPECT_NEAR(e.refresh, per * 128, per * 1e-6);
}

TEST(SystemIntegrator, AccumulatesIntervals)
{
    PowerParams pp;
    SystemEnergyIntegrator integ(pp, 50.0);
    IntervalActivity ia;
    ia.dt = msToTick(1.0);
    ia.busMHz = 800;
    ia.ranksPerChannel = 4;
    ia.numDimms = 8;
    ia.ranks.assign(16, standbyWindow(msToTick(1.0), msToTick(1.0)));
    ia.channelBurst.assign(4, 0);
    integ.addInterval(ia);
    EXPECT_EQ(integ.elapsed(), msToTick(1.0));
    // Rest-of-system: 50 W for 1 ms.
    EXPECT_NEAR(integ.energy().rest, 0.05, 1e-9);
    // Background: 144 chips standby.
    double bg = pp.vdd * pp.iPreStandby * 9 * 16 * 1e-3;
    EXPECT_NEAR(integ.energy().background, bg, bg * 1e-9);
    // Average power is total/elapsed.
    EXPECT_NEAR(integ.averagePower(),
                integ.energy().total() / 1e-3, 1e-6);
}

TEST(SystemIntegrator, DecoupledDeviceFrequency)
{
    PowerParams pp;
    SystemEnergyIntegrator chan800(pp, 0.0), dev400(pp, 0.0);
    IntervalActivity ia;
    ia.dt = msToTick(1.0);
    ia.busMHz = 800;
    ia.ranksPerChannel = 4;
    ia.numDimms = 8;
    ia.ranks.assign(16, standbyWindow(msToTick(1.0), msToTick(1.0)));
    ia.channelBurst.assign(4, 0);
    chan800.addInterval(ia);
    ia.deviceBusMHz = 400;
    dev400.addInterval(ia);
    // DRAM background halves; PLL/reg/MC stay at channel frequency.
    EXPECT_NEAR(dev400.energy().background,
                chan800.energy().background / 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(dev400.energy().pllReg,
                     chan800.energy().pllReg);
    EXPECT_DOUBLE_EQ(dev400.energy().mc, chan800.energy().mc);
}

TEST(EnergyBreakdown, Arithmetic)
{
    EnergyBreakdown a;
    a.background = 1;
    a.mc = 2;
    a.rest = 3;
    EnergyBreakdown b = a;
    b += a;
    EXPECT_DOUBLE_EQ(b.background, 2);
    EXPECT_DOUBLE_EQ(b.total(), 12);
    EnergyBreakdown d = b - a;
    EXPECT_DOUBLE_EQ(d.total(), a.total());
    EXPECT_DOUBLE_EQ(a.memorySubsystem(), 3);
    EXPECT_DOUBLE_EQ(a.dimm(), 1);
}
