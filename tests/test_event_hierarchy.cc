/**
 * @file
 * Edge cases of the hierarchical (calendar + per-channel lane)
 * scheduler that the basic kernel suite (test_sim) does not reach:
 * far-future events beyond the calendar horizon crossing back in as
 * the wheel rolls over, cancel-then-reschedule across bucket and
 * level boundaries, same-tick FIFO interleaved across sub-queues,
 * and exportPending/restore byte-identity with non-empty lanes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <vector>

#include "sim/event_kinds.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

/**
 * Tag helper: a checkpointable channel-local tag (routes to lane
 * `owner & 63`) or a calendar tag (core kind).  `a` carries a caller
 * chosen label so exports can be matched against execution order.
 */
EventTag
laneTag(std::uint32_t owner, std::uint64_t label)
{
    return EventTag{EvChanBurstDone, owner, label, 0};
}

EventTag
calTag(std::uint64_t label)
{
    return EventTag{EvCoreIssueMiss, 0, label, 0};
}

/** The calendar horizon: 6 levels of 64 buckets, 2^12-tick level 0. */
constexpr Tick kHorizon = Tick(1) << (12 + 6 * 6);

bool
samePending(const PendingEvent &a, const PendingEvent &b)
{
    return a.when == b.when && a.cls == b.cls &&
           a.tag.kind == b.tag.kind && a.tag.owner == b.tag.owner &&
           a.tag.a == b.tag.a && a.tag.b == b.tag.b;
}

} // namespace

TEST(EventHierarchy, AdaptiveRoutingFollowsCalendarOccupancy)
{
    // Default routing is composition-based: channel-tagged events
    // take their lane while the calendar is quiet, but share the
    // calendar once it is busy (> CalBusyMax entries).  Routing is
    // placement only, so this is observable through lanePending()
    // but never through execution order.
    EventQueue eq;
    eq.schedule(10, [] {}, EventClass::Hardware, laneTag(0, 0));
    EXPECT_EQ(eq.lanePending(0), 1u);   // calendar empty -> lane

    for (std::uint64_t i = 0;
         i <= EventQueue::CalBusyMax; ++i)
        eq.schedule(50 + i, [] {}, EventClass::Hardware, calTag(i));
    eq.schedule(90, [] {}, EventClass::Hardware, laneTag(1, 0));
    EXPECT_EQ(eq.lanePending(1), 0u);   // calendar busy -> calendar

    // Same schedule under forced lane routing: identical order.
    EventQueue forced;
    forced.setLaneThreshold(0);
    std::vector<int> order, forcedOrder;
    for (int i = 0; i < 4; ++i) {
        eq.schedule(100, [&order, i] { order.push_back(i); },
                    EventClass::Hardware, laneTag(i, 0));
        forced.schedule(100, [&forcedOrder, i] { forcedOrder.push_back(i); },
                        EventClass::Hardware, laneTag(i, 0));
    }
    EXPECT_EQ(forced.lanePending(2), 1u);
    eq.runUntil();
    forced.runUntil();
    EXPECT_EQ(order, forcedOrder);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventHierarchy, FarFutureBeyondHorizonFiresInOrder)
{
    // Events past the wheel's span land in the overflow heap and must
    // still interleave correctly with near events as the wheel rolls
    // forward to meet them.
    EventQueue eq;
    std::vector<Tick> fired;
    const Tick whens[] = {
        10,          20,           (Tick(1) << 30),
        kHorizon - 1, kHorizon + 5, (Tick(1) << 49),
        (Tick(1) << 49) + 1,
    };
    // Schedule in scrambled order so placement, not insertion, is
    // what gets tested.
    for (int i : {5, 0, 3, 6, 1, 4, 2})
        eq.schedule(whens[i], [&fired, &eq] { fired.push_back(eq.now()); });
    eq.runUntil();
    std::vector<Tick> want(std::begin(whens), std::end(whens));
    EXPECT_EQ(fired, want);
    EXPECT_TRUE(eq.empty());
}

TEST(EventHierarchy, RolloverThenRescheduleFromAdvancedClock)
{
    // After consuming past the first horizon the wheel's consumption
    // point has rolled far forward; fresh near *and* far events
    // scheduled from the advanced clock must still order globally.
    EventQueue eq;
    std::vector<Tick> fired;
    auto rec = [&fired, &eq] { fired.push_back(eq.now()); };
    eq.schedule(5, rec);
    eq.schedule(kHorizon + 100, rec);
    eq.runUntil();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(eq.now(), kHorizon + 100);

    fired.clear();
    const Tick base = eq.now();
    eq.schedule(base + 3, rec);
    eq.schedule(base + kHorizon + 7, rec);   // overflow again
    eq.schedule(base + 1, rec);
    eq.schedule(base + (Tick(1) << 20), rec);
    eq.runUntil();
    EXPECT_EQ(fired, (std::vector<Tick>{base + 1, base + 3,
                                        base + (Tick(1) << 20),
                                        base + kHorizon + 7}));
}

TEST(EventHierarchy, FarFutureLaneEventVsOverflowCalendar)
{
    // Lanes have no horizon; a lane event far in the future must
    // still lose the ladder tournament to every earlier calendar
    // event, including ones surfacing from the overflow heap.
    EventQueue eq;
    eq.setLaneThreshold(0);
    std::vector<int> order;
    eq.schedule(kHorizon + 50, [&] { order.push_back(1); },
                EventClass::Hardware, laneTag(2, 0));
    eq.schedule(kHorizon + 10, [&] { order.push_back(0); },
                EventClass::Hardware, calTag(0));
    eq.schedule(kHorizon + 90, [&] { order.push_back(2); },
                EventClass::Hardware, calTag(0));
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventHierarchy, CancelThenRescheduleAcrossBuckets)
{
    // Kill an event in one calendar bucket, reschedule the same
    // logical work in another bucket/level; only the replacement may
    // fire and the dead id must stay dead (generation check).
    EventQueue eq;
    int fired = 0;
    const Tick spots[] = {
        100,                      // level 0
        (Tick(1) << 13) + 3,      // next L0 epoch
        (Tick(1) << 25),          // mid level
        (Tick(1) << 44),          // top level
        kHorizon + 1,             // overflow
    };
    EventId id = eq.schedule(spots[0], [&] { ++fired; });
    for (std::size_t i = 1; i < std::size(spots); ++i) {
        EXPECT_TRUE(eq.cancel(id));
        EXPECT_FALSE(eq.cancel(id));     // double-cancel is a no-op
        id = eq.schedule(spots[i], [&] { ++fired; });
        EXPECT_EQ(eq.pending(), 1u);
    }
    const EventId last = id;
    eq.runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), spots[std::size(spots) - 1]);
    EXPECT_FALSE(eq.cancel(last));       // already fired
}

TEST(EventHierarchy, CancelThenRescheduleAcrossLanes)
{
    // Same dance inside the lane structures: cancel the head of one
    // channel's lane and reschedule on another channel; the corpse
    // must not win the tournament or distort lanePending().
    EventQueue eq;
    eq.setLaneThreshold(0);
    std::vector<int> order;
    EventId a = eq.schedule(10, [&] { order.push_back(0); },
                            EventClass::Hardware, laneTag(0, 0));
    eq.schedule(20, [&] { order.push_back(1); },
                EventClass::Hardware, laneTag(1, 0));
    EXPECT_EQ(eq.lanePending(0), 1u);
    EXPECT_TRUE(eq.cancel(a));
    EXPECT_EQ(eq.lanePending(0), 0u);
    eq.schedule(5, [&] { order.push_back(2); },
                EventClass::Hardware, laneTag(2, 0));
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(EventHierarchy, SameTickFifoAcrossSubQueues)
{
    // Five events at one tick, interleaved across the calendar and
    // three distinct lanes (one via owner aliasing, 66 & 63 == 2):
    // insertion order must survive the ladder merge exactly.
    EventQueue eq;
    eq.setLaneThreshold(0);
    std::vector<int> order;
    auto push = [&order](int i) { return [&order, i] { order.push_back(i); }; };
    eq.schedule(1000, push(0), EventClass::Hardware, laneTag(3, 0));
    eq.schedule(1000, push(1), EventClass::Hardware, calTag(0));
    eq.schedule(1000, push(2), EventClass::Hardware, laneTag(7, 0));
    eq.schedule(1000, push(3), EventClass::Hardware, laneTag(66, 0));
    eq.schedule(1000, push(4), EventClass::Hardware, calTag(0));
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventHierarchy, SameTickClassBeatsSubQueueAndSeq)
{
    // Priority class outranks both insertion order and which
    // sub-queue an event sits in: a Hardware lane event inserted last
    // still runs before earlier-inserted Policy/Sample calendar ones.
    EventQueue eq;
    eq.setLaneThreshold(0);
    std::vector<int> order;
    eq.schedule(500, [&] { order.push_back(2); }, EventClass::Sample,
                calTag(0));
    eq.schedule(500, [&] { order.push_back(1); }, EventClass::Policy,
                calTag(0));
    eq.schedule(500, [&] { order.push_back(0); }, EventClass::Hardware,
                laneTag(1, 0));
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventHierarchy, ExportPendingMatchesExecutionOrder)
{
    // exportPending() promises exact execution order regardless of
    // which sub-queue holds each event.  Label every event through
    // tag.a and check the exported label sequence against the order
    // the events actually fire in.
    EventQueue eq;
    eq.setLaneThreshold(0);
    std::vector<std::uint64_t> fired;
    std::uint64_t label = 0;
    auto sched = [&](Tick when, EventClass cls, EventTag tag) {
        tag.a = label;
        std::uint64_t l = label++;
        eq.schedule(when, [&fired, l] { fired.push_back(l); }, cls, tag);
    };
    sched(300, EventClass::Hardware, laneTag(0, 0));
    sched(100, EventClass::Sample, calTag(0));
    sched(100, EventClass::Hardware, laneTag(5, 0));
    sched(kHorizon + 2, EventClass::Hardware, calTag(0));
    sched(100, EventClass::Hardware, calTag(0));
    sched(300, EventClass::Policy, calTag(0));
    sched(200, EventClass::Hardware, laneTag(0, 0));

    std::vector<PendingEvent> exp = eq.exportPending();
    ASSERT_EQ(exp.size(), 7u);
    eq.runUntil();
    ASSERT_EQ(fired.size(), exp.size());
    for (std::size_t i = 0; i < exp.size(); ++i)
        EXPECT_EQ(exp[i].tag.a, fired[i]) << "position " << i;
}

TEST(EventHierarchy, ExportRestoreByteIdentityWithLanes)
{
    // Round-trip a queue with populated lanes, calendar buckets, and
    // overflow through export -> clear -> setNow -> re-schedule; the
    // second export must be byte-identical, including after a cancel
    // has punched a corpse into a lane (stale entries must not leak
    // into the export).
    EventQueue eq;
    eq.setLaneThreshold(0);
    auto noop = [] {};
    eq.schedule(40, noop, EventClass::Hardware, laneTag(1, 11));
    eq.schedule(40, noop, EventClass::Hardware, laneTag(1, 12));
    EventId dead = eq.schedule(50, noop, EventClass::Hardware,
                               laneTag(1, 13));
    eq.schedule(60, noop, EventClass::Hardware, laneTag(9, 14));
    eq.schedule(25, noop, EventClass::Policy, calTag(15));
    eq.schedule(kHorizon + 9, noop, EventClass::Hardware, calTag(16));
    eq.schedule(25, noop, EventClass::Sample, calTag(17));
    EXPECT_TRUE(eq.cancel(dead));

    const std::vector<PendingEvent> before = eq.exportPending();
    ASSERT_EQ(before.size(), 6u);

    // Restore path: drop everything, jump the clock, re-schedule the
    // saved events in export order (as snapshot/restore does).
    eq.clearPending();
    EXPECT_TRUE(eq.empty());
    eq.setNow(5);
    for (const PendingEvent &p : before)
        eq.schedule(p.when, noop, p.cls, p.tag);

    const std::vector<PendingEvent> after = eq.exportPending();
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_TRUE(samePending(before[i], after[i]))
            << "position " << i;
    }
}

TEST(EventHierarchy, ExportIdenticalAcrossKernelModes)
{
    // The same schedule executed against the Fast hierarchy and the
    // Reference oracle must export the same pending list — export
    // order is defined by (when, class, seq), not by structure.
    EventQueue fast(KernelMode::Fast);
    EventQueue ref(KernelMode::Reference);
    fast.setLaneThreshold(0);
    auto noop = [] {};
    std::mt19937 rng(2026);
    for (int i = 0; i < 200; ++i) {
        const Tick when = rng() % 3 == 0 ? kHorizon + (rng() & 0xffff)
                                         : (rng() & 0xfffff);
        const auto cls = static_cast<EventClass>(rng() % 3);
        const EventTag tag = (rng() & 1)
                                 ? laneTag(rng() % 80, i)
                                 : calTag(i);
        fast.schedule(when, noop, cls, tag);
        ref.schedule(when, noop, cls, tag);
    }
    const auto a = fast.exportPending();
    const auto b = ref.exportPending();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(samePending(a[i], b[i])) << "position " << i;
}

TEST(EventHierarchy, MirroredFuzzAgainstReference)
{
    // Randomized schedule/cancel churn mirrored into both kernels,
    // biased toward lane traffic (including owner aliasing) and
    // bucket-boundary ticks; firing sequences must match exactly.
    std::mt19937 rng(777);
    for (int round = 0; round < 5; ++round) {
        EventQueue fast(KernelMode::Fast);
        EventQueue ref(KernelMode::Reference);
        if (round % 2)          // both routing regimes, same results
            fast.setLaneThreshold(0);
        std::vector<std::uint64_t> ffired, rfired;
        std::vector<std::pair<EventId, EventId>> ids;
        std::uint64_t label = 0;
        for (int i = 0; i < 400; ++i) {
            if (!ids.empty() && rng() % 4 == 0) {
                const auto [fa, ra] =
                    ids[rng() % ids.size()];
                EXPECT_EQ(fast.cancel(fa), ref.cancel(ra));
                continue;
            }
            Tick when = rng() & 0x3fffff;
            if (rng() % 8 == 0)         // sit exactly on a bucket edge
                when &= ~Tick(0xfff);
            if (rng() % 16 == 0)        // or beyond the horizon
                when += kHorizon;
            const auto cls = static_cast<EventClass>(rng() % 3);
            const EventTag tag = (rng() % 3) ? laneTag(rng() % 100, 0)
                                             : EventTag{};
            const std::uint64_t l = label++;
            ids.emplace_back(
                fast.schedule(when, [&ffired, l] { ffired.push_back(l); },
                              cls, tag),
                ref.schedule(when, [&rfired, l] { rfired.push_back(l); },
                             cls, tag));
        }
        EXPECT_EQ(fast.pending(), ref.pending());
        fast.runUntil();
        ref.runUntil();
        EXPECT_EQ(ffired, rfired) << "round " << round;
        EXPECT_EQ(fast.now(), ref.now()) << "round " << round;
    }
}
