/**
 * @file
 * Property-based protocol fuzzing: randomized request streams driven
 * through the real memory controller, with frequency re-locks,
 * powerdown-mode flips, and refresh injected at random points, must
 * never trigger the ProtocolChecker.  Every case prints its seed on
 * failure so a regression is reproducible with one number.
 */

#include <gtest/gtest.h>

#include <vector>

#include "check/protocol_checker.hh"
#include "common/rng.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

struct FuzzResult
{
    std::uint64_t violations = 0;
    std::uint64_t commands = 0;
    std::uint64_t relocks = 0;
    std::string firstViolation;
};

/**
 * One fuzz episode: `ops` random reads/writebacks interleaved with
 * random frequency switches, powerdown-mode changes, and idle gaps,
 * against a small memory so bank conflicts are frequent.
 */
FuzzResult
fuzz(std::uint64_t seed, int ops, bool refresh, bool powerdown)
{
    EventQueue eq;
    MemConfig cfg;
    cfg.numChannels = 1;
    MemoryController mc(eq, cfg);
    ProtocolChecker pc(false);
    mc.setCommandObserver(&pc);
    if (refresh)
        mc.startRefresh();

    Rng rng(seed);
    const Addr span = cfg.totalBytes();
    std::uint64_t outstanding_cb = 0;
    FnClient client([&](Tick) { --outstanding_cb; });

    for (int i = 0; i < ops; ++i) {
        switch (rng.next() % 16) {
          case 0: {
            // Re-lock to a random grid point (often a real change).
            mc.setFrequency(
                static_cast<FreqIndex>(rng.next() % numFreqPoints));
            break;
          }
          case 1: {
            if (powerdown) {
                static const PowerdownMode modes[] = {
                    PowerdownMode::None, PowerdownMode::FastExit,
                    PowerdownMode::SlowExit,
                    PowerdownMode::SelfRefresh};
                mc.setPowerdownMode(modes[rng.next() % 4]);
            }
            break;
          }
          case 2: {
            // Idle gap: drain everything, let ranks power down and
            // refreshes pass, then resume traffic.
            Tick gap = usToTick(1.0 + double(rng.next() % 200));
            eq.runUntil(eq.now() + gap);
            break;
          }
          default: {
            Addr a = (rng.next() % span) & ~Addr(cfg.lineBytes - 1);
            if (rng.next() % 3 == 0) {
                mc.writeback(a, 0);
            } else {
                ++outstanding_cb;
                mc.read(a, 0, &client);
            }
            // Occasionally run the queue forward a little so traffic
            // overlaps in-flight service and refresh windows.
            if (rng.next() % 4 == 0)
                eq.runUntil(eq.now() + nsToTick(
                    10.0 + double(rng.next() % 500)));
            break;
          }
        }
    }
    // Drain; cap the horizon so a refresh chain cannot spin forever.
    eq.runUntil(eq.now() + msToTick(10.0));

    FuzzResult r;
    r.violations = pc.violations();
    r.commands = pc.commandsChecked();
    r.relocks = pc.relocksSeen();
    if (!pc.samples().empty())
        r.firstViolation = pc.samples().front().str();
    EXPECT_EQ(outstanding_cb, 0u);
    return r;
}

} // namespace

TEST(ProtocolProperties, RandomTrafficWithRelocksNeverViolates)
{
    const std::uint64_t base = 0xfeed5eed;
    for (std::uint64_t i = 0; i < 8; ++i) {
        std::uint64_t seed = deriveSeed(base, i);
        FuzzResult r = fuzz(seed, 400, /*refresh=*/false,
                            /*powerdown=*/false);
        EXPECT_EQ(r.violations, 0u)
            << "seed=" << seed << " first: " << r.firstViolation;
        EXPECT_GT(r.commands, 100u) << "seed=" << seed;
    }
}

TEST(ProtocolProperties, RandomTrafficWithRefreshNeverViolates)
{
    const std::uint64_t base = 0xabad1dea;
    for (std::uint64_t i = 0; i < 6; ++i) {
        std::uint64_t seed = deriveSeed(base, i);
        FuzzResult r = fuzz(seed, 300, /*refresh=*/true,
                            /*powerdown=*/false);
        EXPECT_EQ(r.violations, 0u)
            << "seed=" << seed << " first: " << r.firstViolation;
    }
}

TEST(ProtocolProperties, RandomTrafficWithPowerdownNeverViolates)
{
    const std::uint64_t base = 0x0ddba11;
    for (std::uint64_t i = 0; i < 6; ++i) {
        std::uint64_t seed = deriveSeed(base, i);
        FuzzResult r = fuzz(seed, 300, /*refresh=*/true,
                            /*powerdown=*/true);
        EXPECT_EQ(r.violations, 0u)
            << "seed=" << seed << " first: " << r.firstViolation;
    }
}

TEST(ProtocolProperties, FrequencyTransitionsActuallyExercised)
{
    // The fuzzer is only meaningful if re-locks really happen.
    FuzzResult r = fuzz(deriveSeed(0xfeed5eed, 0), 400, false, false);
    EXPECT_GT(r.relocks, 0u);
}
