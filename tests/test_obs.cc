/**
 * @file
 * Observability-layer tests: StatRegistry registration semantics,
 * EpochRecorder schema/columns/exports, registry wiring against a
 * hand-computed memory-controller scenario, end-to-end epoch capture
 * on a tiny 2-core run, and Chrome-trace well-formedness.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "harness/experiment.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "obs/epoch_recorder.hh"
#include "obs/stat_registry.hh"
#include "obs/trace_writer.hh"
#include "sim/event_queue.hh"

using namespace memscale;

// ---------------------------------------------------------------------------
// StatRegistry
// ---------------------------------------------------------------------------

TEST(StatRegistry, RegistersAndReadsAllKinds)
{
    StatRegistry reg;
    std::uint64_t ctr = 7;
    double gauge = 2.5;
    EXPECT_TRUE(reg.addCounter("a.ctr", &ctr));
    EXPECT_TRUE(reg.addGauge("a.gauge", &gauge));
    EXPECT_TRUE(reg.addGauge("a.fn", [] { return 42.0; }));

    EXPECT_EQ(reg.size(), 3u);
    EXPECT_TRUE(reg.has("a.ctr"));
    EXPECT_FALSE(reg.has("a.nope"));
    EXPECT_DOUBLE_EQ(reg.read("a.ctr"), 7.0);
    EXPECT_DOUBLE_EQ(reg.read("a.gauge"), 2.5);
    EXPECT_DOUBLE_EQ(reg.read("a.fn"), 42.0);

    // The registry is a view: mutations show up on the next read.
    ctr = 9;
    gauge = -1.0;
    EXPECT_DOUBLE_EQ(reg.read("a.ctr"), 9.0);
    EXPECT_DOUBLE_EQ(reg.read("a.gauge"), -1.0);
}

TEST(StatRegistry, NameCollisionKeepsFirstRegistration)
{
    StatRegistry reg;
    std::uint64_t first = 1, second = 2;
    EXPECT_TRUE(reg.addCounter("x", &first));
    EXPECT_FALSE(reg.addCounter("x", &second));
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(reg.read("x"), 1.0);

    // Collisions across kinds are rejected the same way.
    double g = 5.0;
    EXPECT_FALSE(reg.addGauge("x", &g));
    EXPECT_FALSE(reg.addGauge("x", [] { return 9.0; }));
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(reg.read("x"), 1.0);
}

TEST(StatRegistry, EmptyNameRejected)
{
    StatRegistry reg;
    std::uint64_t v = 0;
    EXPECT_FALSE(reg.addCounter("", &v));
    EXPECT_EQ(reg.size(), 0u);
}

TEST(StatRegistry, AccumulatorExpandsToDerivedColumns)
{
    StatRegistry reg;
    Accumulator acc;
    acc.add(1.0);
    acc.add(3.0);
    EXPECT_TRUE(reg.addAccumulator("lat", &acc));
    EXPECT_EQ(reg.size(), 4u);
    EXPECT_DOUBLE_EQ(reg.read("lat.count"), 2.0);
    EXPECT_DOUBLE_EQ(reg.read("lat.mean"), 2.0);
    EXPECT_DOUBLE_EQ(reg.read("lat.min"), 1.0);
    EXPECT_DOUBLE_EQ(reg.read("lat.max"), 3.0);
    // Live view: another sample shifts every derived column.
    acc.add(8.0);
    EXPECT_DOUBLE_EQ(reg.read("lat.count"), 3.0);
    EXPECT_DOUBLE_EQ(reg.read("lat.max"), 8.0);
}

TEST(StatRegistry, AccumulatorCollisionRejectedWholesale)
{
    StatRegistry reg;
    double g = 0.0;
    EXPECT_TRUE(reg.addGauge("lat.mean", &g));
    Accumulator acc;
    EXPECT_FALSE(reg.addAccumulator("lat", &acc));
    // None of the derived columns may appear on partial failure.
    EXPECT_FALSE(reg.has("lat.count"));
    EXPECT_FALSE(reg.has("lat.min"));
    EXPECT_FALSE(reg.has("lat.max"));
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistry, HistogramExpandsToDerivedColumns)
{
    StatRegistry reg;
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_TRUE(reg.addHistogram("cpi", &h));
    EXPECT_EQ(reg.size(), 4u);
    EXPECT_DOUBLE_EQ(reg.read("cpi.count"), 10.0);
    EXPECT_DOUBLE_EQ(reg.read("cpi.p50"), h.percentile(0.50));
    EXPECT_DOUBLE_EQ(reg.read("cpi.p95"), h.percentile(0.95));
    EXPECT_DOUBLE_EQ(reg.read("cpi.p99"), h.percentile(0.99));

    Histogram other(0.0, 1.0, 2);
    EXPECT_FALSE(reg.addHistogram("cpi", &other));
    EXPECT_EQ(reg.size(), 4u);
}

TEST(StatRegistry, PrefixQueryMatchesDotBoundaries)
{
    StatRegistry reg;
    std::uint64_t v = 0;
    reg.addCounter("mc0.chan1.rowHits", &v);
    reg.addCounter("mc0.chan1.reads", &v);
    reg.addCounter("mc0.chan10.reads", &v);   // not a chan1 child
    reg.addCounter("mc0.chan1", &v);          // the node itself

    std::vector<std::string> got = reg.namesWithPrefix("mc0.chan1");
    std::vector<std::string> want = {"mc0.chan1.rowHits",
                                     "mc0.chan1.reads", "mc0.chan1"};
    EXPECT_EQ(got, want);
    EXPECT_EQ(reg.namesWithPrefix("mc0").size(), 4u);
    EXPECT_TRUE(reg.namesWithPrefix("bogus").empty());
}

TEST(StatRegistry, UnknownReadIsFatal)
{
    StatRegistry reg;
    EXPECT_THROW(reg.read("missing"), FatalError);
}

TEST(StatRegistry, SnapshotFollowsRegistrationOrder)
{
    StatRegistry reg;
    std::uint64_t a = 1, b = 2;
    double c = 3.0;
    reg.addCounter("b.second", &b);
    reg.addCounter("a.first", &a);
    reg.addGauge("c.third", &c);

    std::vector<std::string> want = {"b.second", "a.first", "c.third"};
    EXPECT_EQ(reg.names(), want);
    std::vector<double> snap;
    reg.snapshot(snap);
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_DOUBLE_EQ(snap[0], 2.0);
    EXPECT_DOUBLE_EQ(snap[1], 1.0);
    EXPECT_DOUBLE_EQ(snap[2], 3.0);
}

// ---------------------------------------------------------------------------
// EpochRecorder
// ---------------------------------------------------------------------------

namespace
{

EpochSample
sampleAt(double start_ms, double end_ms, std::uint32_t mhz,
         std::vector<double> cpi)
{
    EpochSample s;
    s.start = msToTick(start_ms);
    s.end = msToTick(end_ms);
    s.busMHz = mhz;
    s.cpuGHz = 4.0;
    s.channelUtil = 0.5;
    s.coreCpi = std::move(cpi);
    return s;
}

} // namespace

TEST(EpochRecorder, SchemaAndValues)
{
    EpochRecorder rec;
    rec.record(sampleAt(0.0, 0.1, 800, {1.0, 3.0}));
    rec.record(sampleAt(0.1, 0.2, 400, {2.0, 4.0}));

    // 12 fixed columns + one CPI column per core.
    EXPECT_EQ(rec.columns(), 14u);
    EXPECT_EQ(rec.epochs(), 2u);
    EXPECT_EQ(rec.columnNames()[0], "epoch");
    EXPECT_NE(rec.columnIndex("core1.cpi"), EpochRecorder::npos);
    EXPECT_EQ(rec.columnIndex("nope"), EpochRecorder::npos);

    std::vector<double> mhz = rec.column("bus_mhz");
    ASSERT_EQ(mhz.size(), 2u);
    EXPECT_DOUBLE_EQ(mhz[0], 800.0);
    EXPECT_DOUBLE_EQ(mhz[1], 400.0);
    EXPECT_DOUBLE_EQ(rec.column("epoch")[1], 1.0);
    EXPECT_DOUBLE_EQ(rec.column("start_ms")[1], 0.1);
    EXPECT_DOUBLE_EQ(rec.column("end_ms")[1], 0.2);
    // actual_cpi is the mean over cores.
    EXPECT_DOUBLE_EQ(rec.column("actual_cpi")[0], 2.0);
    EXPECT_DOUBLE_EQ(rec.column("actual_cpi")[1], 3.0);
    EXPECT_DOUBLE_EQ(rec.column("core0.cpi")[1], 2.0);
    EXPECT_DOUBLE_EQ(rec.column("core1.cpi")[1], 4.0);
    // No decision recorded: SER defaults to 1, the rest to 0.
    EXPECT_DOUBLE_EQ(rec.column("ser")[0], 1.0);
    EXPECT_DOUBLE_EQ(rec.column("pred_cpi")[0], 0.0);

    EXPECT_THROW(rec.column("nope"), FatalError);
    EXPECT_THROW(rec.at(2, 0), FatalError);
    EXPECT_THROW(rec.at(0, 14), FatalError);
}

TEST(EpochRecorder, DecisionTrailIsRecorded)
{
    EpochRecorder rec;
    EpochSample s = sampleAt(0.0, 0.1, 600, {1.5});
    s.haveDecision = true;
    s.predCpi = 1.45;
    s.predMemJ = 0.01;
    s.predSysJ = 0.05;
    s.ser = 0.93;
    s.minSlack = 2e-5;
    rec.record(s);
    EXPECT_DOUBLE_EQ(rec.column("pred_cpi")[0], 1.45);
    EXPECT_DOUBLE_EQ(rec.column("pred_mem_j")[0], 0.01);
    EXPECT_DOUBLE_EQ(rec.column("pred_sys_j")[0], 0.05);
    EXPECT_DOUBLE_EQ(rec.column("ser")[0], 0.93);
    EXPECT_DOUBLE_EQ(rec.column("min_slack")[0], 2e-5);
}

TEST(EpochRecorder, SchemaChangeMidRunIsFatal)
{
    EpochRecorder rec;
    rec.record(sampleAt(0.0, 0.1, 800, {1.0, 2.0}));
    EXPECT_THROW(rec.record(sampleAt(0.1, 0.2, 800, {1.0})),
                 FatalError);
}

TEST(EpochRecorder, SnapshotsRegistryPerEpoch)
{
    StatRegistry reg;
    std::uint64_t ctr = 10;
    reg.addCounter("mc0.reads", &ctr);
    EpochRecorder rec(&reg);
    rec.record(sampleAt(0.0, 0.1, 800, {1.0}));
    ctr = 25;
    rec.record(sampleAt(0.1, 0.2, 800, {1.0}));
    rec.detach();   // exports must not touch the registry

    std::vector<double> reads = rec.column("mc0.reads");
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_DOUBLE_EQ(reads[0], 10.0);
    EXPECT_DOUBLE_EQ(reads[1], 25.0);
}

TEST(EpochRecorder, CsvAndJsonExports)
{
    EpochRecorder rec;
    ObsMeta meta;
    meta.label = "MID3/memscale";
    rec.setMeta(meta);
    rec.record(sampleAt(0.0, 0.1, 800, {1.0}));
    rec.record(sampleAt(0.1, 0.2, 400, {2.0}));

    std::string csv = rec.toCsv();
    // Header + one line per epoch, trailing newline.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
    EXPECT_EQ(csv.compare(0, 6, "epoch,"), 0);
    EXPECT_NE(csv.find("core0.cpi"), std::string::npos);
    EXPECT_NE(csv.find("800"), std::string::npos);

    std::string json = rec.toJson();
    EXPECT_NE(json.find("\"label\": \"MID3/memscale\""),
              std::string::npos);
    EXPECT_NE(json.find("\"columns\": [\"epoch\""), std::string::npos);
    EXPECT_NE(json.find("\"rows\": ["), std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry wiring vs. hand-computed controller counters
// ---------------------------------------------------------------------------

namespace
{

/** Minimal controller harness (mirrors test_channel.cc). */
struct McHarness
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc;
    LambdaClients clients;
    StatRegistry reg;

    explicit McHarness(MemConfig c = MemConfig())
        : cfg(c), mc(eq, cfg)
    {
        mc.registerStats(reg, "mc0");
    }

    Addr
    at(std::uint32_t ch, std::uint32_t rank, std::uint32_t bank,
       std::uint64_t row, std::uint64_t col = 0)
    {
        DecodedAddr d;
        d.channel = ch;
        d.rank = rank;
        d.bank = bank;
        d.row = row;
        d.column = col;
        return mc.addressMap().encode(d);
    }

    /** Queue several reads at once, then drain the event queue. */
    void
    readTogether(const std::vector<Addr> &addrs)
    {
        for (Addr a : addrs)
            mc.read(a, 0, clients.add([](Tick) {}));
        eq.runUntil();
    }
};

} // namespace

TEST(ObsWiring, ControllerCountersMatchHandComputedScenario)
{
    McHarness h;

    // Registered hierarchy: controller root, per-channel subtree,
    // per-rank subtree all present.
    EXPECT_TRUE(h.reg.has("mc0.freqTransitions"));
    EXPECT_TRUE(h.reg.has("mc0.busMHz"));
    EXPECT_TRUE(h.reg.has("mc0.chan0.rowHits"));
    EXPECT_TRUE(h.reg.has("mc0.chan0.rank0.actTime"));
    EXPECT_FALSE(
        h.reg.namesWithPrefix("mc0.chan0.rank0").empty());

    // Nominal frequency before any transition.
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.busMHz"), 800.0);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.busMHz"), 800.0);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.freqTransitions"), 0.0);

    // Three reads queued together under the default closed-page
    // policy: a closed-bank miss activates row 5, the second access
    // is a row-buffer hit, and the trailing precharge (no more
    // pending row-5 work — the third request targets row 9) makes
    // the last access a closed-bank miss again.
    h.readTogether({h.at(0, 0, 0, 5, 0), h.at(0, 0, 0, 5, 8),
                    h.at(0, 0, 0, 9, 0)});
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.reads"), 3.0);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.closedMisses"), 2.0);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.rowHits"), 1.0);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.openMisses"), 0.0);

    // Other channels stayed idle.
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan1.reads"), 0.0);

    // The registry view agrees with the sampled counter struct.
    McCounters c = h.mc.sampleCounters();
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.rowHits") +
                         h.reg.read("mc0.chan1.rowHits") +
                         h.reg.read("mc0.chan2.rowHits") +
                         h.reg.read("mc0.chan3.rowHits"),
                     static_cast<double>(c.rbhc));

    // A frequency change shows up in both gauges.
    h.mc.setFrequency(2);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.freqTransitions"), 1.0);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.busMHz"),
                     static_cast<double>(TimingParams::at(2).busMHz));
}

TEST(ObsWiring, OpenPagePolicyCountsOpenMisses)
{
    MemConfig mem;
    mem.pagePolicy = PagePolicy::OpenPage;
    McHarness h(mem);

    // Open-page leaves row 5 latched after the queue drains, so a
    // later access to row 9 of the same bank pays the open-bank miss.
    h.readTogether({h.at(0, 0, 0, 5, 0)});
    h.readTogether({h.at(0, 0, 0, 9, 0)});
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.closedMisses"), 1.0);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.openMisses"), 1.0);
    EXPECT_DOUBLE_EQ(h.reg.read("mc0.chan0.rowHits"), 0.0);
}

// ---------------------------------------------------------------------------
// End-to-end: tiny 2-core observe run
// ---------------------------------------------------------------------------

namespace
{

SystemConfig
tinyObserveConfig()
{
    SystemConfig cfg;
    cfg.mixName = "MID1";
    cfg.numCores = 2;
    cfg.instrBudget = 1'000'000;
    cfg.epochLen = msToTick(0.05);
    cfg.profileLen = usToTick(10.0);
    cfg.seed = 12345;
    cfg.observe = true;
    return cfg;
}

RunResult
tinyObserveRun()
{
    return runPolicy(tinyObserveConfig(), "memscale", 150.0);
}

} // namespace

TEST(ObsEndToEnd, EpochRowsMatchTheTimeline)
{
    RunResult r = tinyObserveRun();
    ASSERT_TRUE(r.obs);
    ASSERT_GT(r.timeline.size(), 0u);
    ASSERT_EQ(r.obs->epochs(), r.timeline.size());

    // Every envelope column must agree exactly with the epoch
    // controller's own history.
    std::vector<double> start = r.obs->column("start_ms");
    std::vector<double> mhz = r.obs->column("bus_mhz");
    std::vector<double> util = r.obs->column("channel_util");
    std::vector<double> cpi0 = r.obs->column("core0.cpi");
    std::vector<double> cpi1 = r.obs->column("core1.cpi");
    for (std::size_t i = 0; i < r.timeline.size(); ++i) {
        const EpochRecord &e = r.timeline[i];
        EXPECT_DOUBLE_EQ(start[i], tickToMs(e.start));
        EXPECT_DOUBLE_EQ(mhz[i], static_cast<double>(e.busMHz));
        EXPECT_DOUBLE_EQ(util[i], e.channelUtil);
        ASSERT_EQ(e.coreCpi.size(), 2u);
        EXPECT_DOUBLE_EQ(cpi0[i], e.coreCpi[0]);
        EXPECT_DOUBLE_EQ(cpi1[i], e.coreCpi[1]);
    }

    // Meta describes the run.
    EXPECT_EQ(r.obs->meta().numCores, 2u);
    EXPECT_EQ(r.obs->meta().label, "MID1/memscale");
}

TEST(ObsEndToEnd, RegistryColumnsAreCumulativeAndConsistent)
{
    RunResult r = tinyObserveRun();
    ASSERT_TRUE(r.obs);
    ASSERT_GT(r.obs->epochs(), 1u);

    // Per-channel read counters are cumulative: monotone, and their
    // epoch-over-epoch sum across channels stays below the run total.
    double last_sum = 0.0;
    for (std::size_t i = 0; i < r.obs->epochs(); ++i) {
        double sum = 0.0;
        for (std::uint32_t c = 0; c < r.obs->meta().numChannels; ++c) {
            std::vector<double> reads = r.obs->column(
                "mc0.chan" + std::to_string(c) + ".reads");
            EXPECT_GE(reads[i], i ? reads[i - 1] : 0.0);
            sum += reads[i];
        }
        EXPECT_GE(sum, last_sum);
        last_sum = sum;
    }
    EXPECT_LE(last_sum, static_cast<double>(r.counters.reads));

    // The policy decision trail rides along: the slack target is the
    // configured bound minus the policy's guard band — positive, no
    // larger than gamma, and constant across epochs; SER stays
    // positive.
    std::vector<double> gamma = r.obs->column("policy.gamma");
    std::vector<double> ser = r.obs->column("ser");
    for (std::size_t i = 0; i < r.obs->epochs(); ++i) {
        EXPECT_GT(gamma[i], 0.0);
        EXPECT_LE(gamma[i], tinyObserveConfig().gamma);
        EXPECT_DOUBLE_EQ(gamma[i], gamma[0]);
        EXPECT_GT(ser[i], 0.0);
    }
}

// ---------------------------------------------------------------------------
// Chrome-trace output
// ---------------------------------------------------------------------------

namespace
{

/**
 * Minimal JSON syntax checker (recursive descent over one value).
 * Returns true when the whole input is a single well-formed value.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_;   // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_;   // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;   // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::string(word).size();
        if (s_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                s_[pos_] == '\t' || s_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** One "X" (duration) event pulled out of the trace body. */
struct XEvent
{
    int pid = 0;
    int tid = 0;
    double ts = 0.0;
    double dur = 0.0;
    std::string name;
};

double
numField(const std::string &line, const std::string &key)
{
    auto pos = line.find("\"" + key + "\":");
    EXPECT_NE(pos, std::string::npos) << key << " in " << line;
    return std::stod(line.substr(pos + key.size() + 3));
}

/** The sink emits one event per line; scan them without a full DOM. */
std::vector<XEvent>
extractDurationEvents(const std::string &trace)
{
    std::vector<XEvent> out;
    std::size_t pos = 0;
    while (pos < trace.size()) {
        std::size_t eol = trace.find('\n', pos);
        if (eol == std::string::npos)
            eol = trace.size();
        std::string line = trace.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.find("\"ph\":\"X\"") == std::string::npos)
            continue;
        XEvent e;
        e.pid = static_cast<int>(numField(line, "pid"));
        e.tid = static_cast<int>(numField(line, "tid"));
        e.ts = numField(line, "ts");
        e.dur = numField(line, "dur");
        auto npos = line.find("\"name\":\"");
        if (npos != std::string::npos) {
            npos += 8;
            e.name = line.substr(npos, line.find('"', npos) - npos);
        }
        out.push_back(e);
    }
    return out;
}

} // namespace

TEST(ChromeTrace, EmptyRecorderProducesValidJson)
{
    EpochRecorder rec;
    std::string trace = chromeTraceJson(rec);
    EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("process_name"), std::string::npos);
    EXPECT_TRUE(extractDurationEvents(trace).empty());
}

TEST(ChromeTrace, WellFormedWithMonotoneTimestampsPerTrack)
{
    RunResult r = tinyObserveRun();
    ASSERT_TRUE(r.obs);
    std::string trace = chromeTraceJson(*r.obs);

    EXPECT_TRUE(JsonChecker(trace).valid());
    EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);

    std::vector<XEvent> events = extractDurationEvents(trace);
    ASSERT_FALSE(events.empty());

    // Each (pid, tid) track must be internally ordered with
    // non-negative durations.
    std::map<std::pair<int, int>, double> last_ts;
    bool saw_mhz = false, saw_cpi = false, saw_residency = false;
    for (const XEvent &e : events) {
        EXPECT_GE(e.dur, 0.0) << e.name;
        auto key = std::make_pair(e.pid, e.tid);
        auto it = last_ts.find(key);
        if (it != last_ts.end()) {
            EXPECT_GE(e.ts, it->second)
                << "track (" << e.pid << "," << e.tid
                << ") went backwards at " << e.name;
        }
        last_ts[key] = e.ts;
        saw_mhz |= e.name.find("MHz") != std::string::npos;
        saw_cpi |= e.name.find("cpi~") != std::string::npos;
        saw_residency |= e.name.find("standby") != std::string::npos ||
                         e.name.find("powerdown") != std::string::npos;
    }
    // All three track families must be present: frequency
    // transitions, per-core CPI phases, power-state residency.
    EXPECT_TRUE(saw_mhz);
    EXPECT_TRUE(saw_cpi);
    EXPECT_TRUE(saw_residency);
}

TEST(ChromeTrace, FrequencyTrackCoversEveryEpochOnce)
{
    RunResult r = tinyObserveRun();
    ASSERT_TRUE(r.obs);
    std::string trace = chromeTraceJson(*r.obs);
    std::vector<XEvent> events = extractDurationEvents(trace);

    // Per-channel frequency events (pid 2) merge equal-frequency runs,
    // so their per-track count is bounded by the epoch count and they
    // must tile the timeline without overlap.
    std::map<int, std::vector<const XEvent *>> freq_tracks;
    for (const XEvent &e : events)
        if (e.pid == 2)
            freq_tracks[e.tid].push_back(&e);
    ASSERT_EQ(freq_tracks.size(),
              static_cast<std::size_t>(r.obs->meta().numChannels));
    for (const auto &[tid, evs] : freq_tracks) {
        EXPECT_LE(evs.size(), r.obs->epochs());
        for (std::size_t i = 1; i < evs.size(); ++i) {
            EXPECT_GE(evs[i]->ts,
                      evs[i - 1]->ts + evs[i - 1]->dur - 1e-6);
        }
    }
}
