/**
 * @file
 * Fleet-simulator tests (ctest label `cluster`): run-to-run and
 * jobs=1-vs-N determinism of the fleet hash, per-server RNG stream
 * independence (server k's result never changes when the fleet
 * grows), per-server observability prefixes, and the coordination
 * acceptance property — under a rack cap, fastcap's budgets respect
 * the cap every epoch and heterogeneous fleets stay fair, while the
 * cap-oblivious memscale policy blows through the same cap.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <string>
#include <vector>

#include "harness/cluster.hh"
#include "harness/differential.hh"
#include "harness/experiment.hh"
#include "obs/stat_registry.hh"

using namespace memscale;

namespace
{

std::string
scratch(const std::string &name)
{
    std::string dir = "/tmp/memscale_test_cluster_" + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

/** Calibrated per-server template (restWatts computed once). */
SystemConfig
serverTemplate()
{
    static SystemConfig cached = [] {
        SystemConfig cfg;
        cfg.mixName = "OPENLOOP";
        cfg.numCores = 8;
        cfg.epochLen = msToTick(0.1);
        cfg.profileLen = usToTick(10.0);
        cfg.seed = 4242;
        cfg.modelCpuPower = true;
        cfg.serving.enabled = true;
        cfg.serving.arrival.kind = ArrivalKind::Poisson;
        cfg.serving.arrival.ratePerSec = 0.5e6;
        cfg.serving.horizon = msToTick(0.6);
        cfg.serving.sloP99Us = 5.0;
        Watts rest = 0.0;
        runBaseline(cfg, rest);
        cfg.restWatts = rest;
        return cfg;
    }();
    return cached;
}

ClusterConfig
fleetConfig(const std::string &name, std::uint32_t n)
{
    ClusterConfig c;
    c.numServers = n;
    c.server = serverTemplate();
    c.policy = "fastcap";
    c.coordEpoch = msToTick(0.2);   // 3 epochs over the 0.6 ms horizon
    c.scratchDir = scratch(name);
    return c;
}

/** Mean fleet power over all coordination epochs, W. */
Watts
meanFleetW(const FleetResult &r)
{
    double s = 0.0;
    for (const FleetEpochRow &row : r.epochs)
        s += row.fleetW;
    return s / static_cast<double>(r.epochs.size());
}

} // namespace

TEST(Cluster, ServerConfigDerivation)
{
    ClusterConfig c = fleetConfig("derive", 4);
    c.rateScale = {1.0, 2.0};
    ClusterHarness h(c);

    SystemConfig s0 = h.serverConfig(0);
    SystemConfig s1 = h.serverConfig(1);
    SystemConfig s2 = h.serverConfig(2);
    // Independent streams, derived from the fleet seed by index only.
    EXPECT_NE(s0.seed, s1.seed);
    EXPECT_EQ(s0.seed, deriveSeed(c.server.seed, 0));
    // Rate multipliers cycle over the fleet.
    EXPECT_DOUBLE_EQ(s1.serving.arrival.ratePerSec,
                     2.0 * s0.serving.arrival.ratePerSec);
    EXPECT_DOUBLE_EQ(s2.serving.arrival.ratePerSec,
                     s0.serving.arrival.ratePerSec);
    // The template's own snapshot/cap knobs never leak into servers.
    EXPECT_TRUE(s0.snapshot.out.empty());
    EXPECT_DOUBLE_EQ(s0.powerCapW, 0.0);

    // Growing the fleet re-derives the same per-server configs.
    ClusterConfig c2 = fleetConfig("derive", 2);
    c2.rateScale = c.rateScale;
    ClusterHarness h2(c2);
    EXPECT_EQ(h2.serverConfig(1).seed, s1.seed);
}

TEST(Cluster, RunToRunDeterminism)
{
    ClusterConfig c = fleetConfig("det", 2);
    c.capW = 0.0;
    FleetResult a = ClusterHarness(c).run();
    FleetResult b = ClusterHarness(c).run();

    ASSERT_EQ(a.servers.size(), 2u);
    ASSERT_EQ(a.epochs.size(), 3u);
    EXPECT_EQ(a.fleetHash, b.fleetHash);
    EXPECT_DOUBLE_EQ(a.fleetEnergyJ, b.fleetEnergyJ);
    for (std::size_t e = 0; e < a.epochs.size(); ++e)
        for (std::size_t k = 0; k < 2; ++k)
            EXPECT_DOUBLE_EQ(a.epochs[e].measuredW[k],
                             b.epochs[e].measuredW[k]);
}

TEST(Cluster, JobsOneVsManyIdentical)
{
    ClusterConfig c = fleetConfig("jobs", 3);
    // Any fixed cap works here: the property is bit-identity across
    // thread counts, binding or not.
    c.capW = 3.0 * serverTemplate().restWatts;
    c.jobs = 1;
    FleetResult serial = ClusterHarness(c).run();
    c.jobs = 4;
    FleetResult wide = ClusterHarness(c).run();

    EXPECT_EQ(serial.fleetHash, wide.fleetHash);
    ASSERT_EQ(serial.epochs.size(), wide.epochs.size());
    for (std::size_t e = 0; e < serial.epochs.size(); ++e) {
        ASSERT_EQ(serial.epochs[e].budgetW.size(),
                  wide.epochs[e].budgetW.size());
        for (std::size_t k = 0; k < serial.epochs[e].budgetW.size();
             ++k)
            EXPECT_DOUBLE_EQ(serial.epochs[e].budgetW[k],
                             wide.epochs[e].budgetW[k]);
        EXPECT_DOUBLE_EQ(serial.epochs[e].fleetW,
                         wide.epochs[e].fleetW);
    }
}

TEST(Cluster, ServerStreamsIndependentOfFleetSize)
{
    // Uncoordinated (cap 0) fleets of 2 and 4: servers 0 and 1 see no
    // budgets and no coupling, so their results must be bit-identical
    // across the two fleet sizes — the index-only seed-derivation
    // property that makes fleet scaling experiments comparable.
    ClusterConfig c2 = fleetConfig("grow2", 2);
    ClusterConfig c4 = fleetConfig("grow4", 4);
    FleetResult small = ClusterHarness(c2).run();
    FleetResult big = ClusterHarness(c4).run();

    ASSERT_EQ(small.servers.size(), 2u);
    ASSERT_EQ(big.servers.size(), 4u);
    for (std::size_t k = 0; k < 2; ++k)
        EXPECT_EQ(hashRunResult(small.servers[k]),
                  hashRunResult(big.servers[k]))
            << "server " << k << " changed when the fleet grew";
}

TEST(Cluster, ObsPrefixesPerServer)
{
    ClusterConfig c = fleetConfig("obs", 4);
    ClusterHarness h(c);
    StatRegistry reg;
    h.registerStats(reg);

    for (std::uint32_t k = 0; k < 4; ++k) {
        const std::string p = "server" + std::to_string(k);
        const auto names = reg.namesWithPrefix(p);
        EXPECT_EQ(names.size(), 4u) << p;
    }
    EXPECT_TRUE(reg.namesWithPrefix("server4").empty());
    ASSERT_FALSE(reg.namesWithPrefix("fleet").empty());

    FleetResult r = h.run();
    ASSERT_EQ(r.epochs.size(), 3u);
    EXPECT_GT(reg.read("server0.powerW"), 0.0);
    EXPECT_GT(reg.read("fleet.powerW"), 0.0);
    EXPECT_DOUBLE_EQ(reg.read("fleet.epoch"), 2.0);
    EXPECT_DOUBLE_EQ(reg.read("server1.powerW"),
                     r.epochs.back().measuredW[1]);
}

TEST(Cluster, CoordinatedCapMetWhereUncoordinatedViolates)
{
    // The acceptance property: pick a rack cap below what the
    // uncoordinated memscale fleet naturally draws.  The cap-aware
    // fastcap coordinator fits budgets and measured power under the
    // cap every epoch; memscale ignores the budgets and violates it.
    ClusterConfig probe = fleetConfig("probe", 3);
    probe.capW = 0.0;
    probe.policy = "memscale";
    FleetResult uncapped = ClusterHarness(probe).run();
    const Watts cap = 0.95 * meanFleetW(uncapped);

    ClusterConfig coord = fleetConfig("coord", 3);
    coord.capW = cap;
    FleetResult fast = ClusterHarness(coord).run();

    ClusterConfig naive = fleetConfig("naive", 3);
    naive.capW = cap;
    naive.policy = "memscale";
    FleetResult mem = ClusterHarness(naive).run();

    // Budgets respect the cap in every coordinated epoch.
    for (const FleetEpochRow &row : fast.epochs) {
        ASSERT_EQ(row.budgetW.size(), 3u);
        EXPECT_LE(row.fleetBudgetW, cap * (1.0 + 1e-9));
        EXPECT_TRUE(row.allocFeasible);
    }
    EXPECT_EQ(fast.capViolations, 0u)
        << "fastcap exceeded the cap; peak " << fast.peakEpochW
        << " W vs cap " << cap << " W";
    EXPECT_GT(mem.capViolations, 0u)
        << "memscale was expected to violate the " << cap << " W cap";
    EXPECT_LT(fast.peakEpochW, mem.peakEpochW);
    // Fitting under a cap the uncoordinated fleet violates is paid
    // for in latency, never in accounting: request conservation and
    // attainment stay well-defined on every server.
    for (const RunResult &r : fast.servers) {
        ASSERT_TRUE(r.serving.valid);
        EXPECT_EQ(r.serving.arrived,
                  r.serving.completed + r.serving.dropped +
                      r.serving.queuedAtEnd + r.serving.inServiceAtEnd);
    }
}

TEST(Cluster, HeterogeneousFleetStaysFair)
{
    ClusterConfig probe = fleetConfig("fairprobe", 3);
    probe.rateScale = {0.5, 1.0, 2.0};
    probe.capW = 0.0;
    FleetResult uncapped = ClusterHarness(probe).run();

    ClusterConfig c = fleetConfig("fair", 3);
    c.rateScale = probe.rateScale;
    c.capW = 0.85 * meanFleetW(uncapped);
    FleetResult r = ClusterHarness(c).run();

    // Unequal load, equal weights: the water-fill still divides pain
    // evenly — per-server predicted slowdowns stay clustered.
    EXPECT_GE(r.jainSlowdown, 0.85);
    EXPECT_EQ(r.capViolations, 0u);
}

TEST(Cluster, WeightsTiltBudgets)
{
    ClusterConfig probe = fleetConfig("weightprobe", 2);
    probe.capW = 0.0;
    FleetResult uncapped = ClusterHarness(probe).run();

    ClusterConfig c = fleetConfig("weights", 2);
    c.weights = {1.0, 3.0};
    c.capW = 0.8 * meanFleetW(uncapped);
    FleetResult r = ClusterHarness(c).run();

    for (const FleetEpochRow &row : r.epochs) {
        ASSERT_EQ(row.budgetW.size(), 2u);
        EXPECT_GE(row.budgetW[1], row.budgetW[0])
            << "epoch " << row.epoch;
    }
}
