/**
 * @file
 * Policy tests: factory, configuration side effects on the memory
 * controller, and MemScale frequency selection on crafted profiles.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "memscale/policies/decoupled_policy.hh"
#include "memscale/policies/memscale_policy.hh"
#include "memscale/policies/policy.hh"
#include "memscale/policies/static_policy.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

ProfileData
profileWithAlpha(double alpha, double xi, std::uint32_t cores = 4)
{
    ProfileData p;
    p.windowLen = usToTick(100.0);
    p.freqDuring = nominalFreqIndex;
    std::uint64_t instr = 100'000;
    auto misses = static_cast<std::uint64_t>(alpha * instr);
    for (std::uint32_t c = 0; c < cores; ++c)
        p.cores.push_back(CoreSample{instr, misses});
    std::uint64_t total_misses = misses * cores;
    p.mc.cbmc = total_misses;
    p.mc.btc = total_misses ? total_misses : 1;
    p.mc.bto = static_cast<std::uint64_t>((xi - 1.0) * p.mc.btc);
    p.mc.ctc = p.mc.btc;
    p.mc.cto = (xi - 1.0) * static_cast<double>(p.mc.ctc);
    p.mc.reads = total_misses;
    p.mc.pocc = total_misses;
    p.mc.rankTime = p.windowLen * 16;
    p.mc.rankPreTime = p.windowLen * 16;
    return p;
}

PolicyContext
defaultContext()
{
    PolicyContext ctx;
    ctx.restWatts = 60.0;
    ctx.epochLen = msToTick(5.0);
    ctx.profileLen = usToTick(300.0);
    return ctx;
}

} // namespace

TEST(PolicyFactory, AllNamesConstruct)
{
    for (const std::string &name : policyNames()) {
        auto p = makePolicy(name);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), name);
    }
    EXPECT_THROW(makePolicy("bogus"), FatalError);
}

TEST(PolicyFactory, DynamicFlags)
{
    EXPECT_FALSE(makePolicy("baseline")->dynamic());
    EXPECT_FALSE(makePolicy("static")->dynamic());
    EXPECT_FALSE(makePolicy("fastpd")->dynamic());
    EXPECT_FALSE(makePolicy("decoupled")->dynamic());
    EXPECT_TRUE(makePolicy("memscale")->dynamic());
    EXPECT_TRUE(makePolicy("memscale-memenergy")->dynamic());
    EXPECT_TRUE(makePolicy("memscale-fastpd")->dynamic());
}

TEST(PolicyConfigure, StaticSetsPaperFrequency)
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc(eq, cfg);
    StaticPolicy p;   // 467 MHz
    p.configure(mc, defaultContext());
    eq.runUntil();
    EXPECT_EQ(mc.busMHz(), 467u);
}

TEST(PolicyConfigure, DecoupledSetsDeviceClock)
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc(eq, cfg);
    DecoupledPolicy p;
    p.configure(mc, defaultContext());
    EXPECT_EQ(mc.busMHz(), 800u);
    EXPECT_EQ(mc.decoupledDeviceMHz(), 400u);
}

TEST(MemScaleSelect, ComputeBoundPicksLowestFrequency)
{
    MemScalePolicy p;
    PolicyContext ctx = defaultContext();
    // Near-zero miss rate: everything is feasible; lowest frequency
    // minimizes energy.
    ProfileData prof = profileWithAlpha(1e-5, 1.0);
    FreqIndex f = p.selectFrequency(prof, ctx, nominalFreqIndex);
    EXPECT_EQ(f, numFreqPoints - 1);
}

TEST(MemScaleSelect, MemoryBoundKeepsHighFrequency)
{
    MemScalePolicy p;
    PolicyContext ctx = defaultContext();
    // alpha 3% with heavy queueing: deep scaling infeasible within a
    // 10% CPI bound.
    ProfileData prof = profileWithAlpha(0.03, 2.0);
    FreqIndex f = p.selectFrequency(prof, ctx, nominalFreqIndex);
    EXPECT_LT(f, 4u);   // stays in the upper half of the grid
}

TEST(MemScaleSelect, BoundTightensSelection)
{
    PolicyContext loose = defaultContext();
    loose.gamma = 0.15;
    PolicyContext tight = defaultContext();
    tight.gamma = 0.01;
    ProfileData prof = profileWithAlpha(0.01, 1.3);
    MemScalePolicy p1, p2;
    FreqIndex f_loose =
        p1.selectFrequency(prof, loose, nominalFreqIndex);
    FreqIndex f_tight =
        p2.selectFrequency(prof, tight, nominalFreqIndex);
    EXPECT_GE(f_loose, f_tight);   // looser bound -> slower allowed
}

TEST(MemScaleSelect, NegativeSlackForcesSpeedup)
{
    MemScalePolicy p;
    PolicyContext ctx = defaultContext();
    // Memory-heavy profile so frequency-induced slowdown is visible
    // to the model (slack only tracks modelled, i.e. memory-induced,
    // slowdown -- exactly as in the paper).
    ProfileData prof = profileWithAlpha(0.03, 2.0);
    FreqIndex first = p.selectFrequency(prof, ctx, nominalFreqIndex);
    EXPECT_GT(first, 0u);
    // Report an epoch executed at the lowest frequency whose measured
    // time exceeds the slack target: slack must go negative and the
    // next selection must not be slower than before.
    // Window sized so the measured time is memory-dominated (100k
    // instructions in 500 us -> 5 ns/instr against ~2.6 ns at max
    // frequency): >9.5% modelled slowdown, so slack goes negative.
    ProfileData epoch = prof;
    epoch.windowLen = usToTick(500.0);
    epoch.freqDuring = numFreqPoints - 1;
    p.endEpoch(epoch, ctx);
    for (std::uint32_t c = 0; c < epoch.cores.size(); ++c)
        EXPECT_LT(p.slack().slack(c), 0.0);
    FreqIndex second = p.selectFrequency(prof, ctx, first);
    EXPECT_LE(second, first);
}

TEST(MemScaleSelect, MemEnergyVariantScalesAtLeastAsDeep)
{
    MemScalePolicy::Options o;
    o.memoryEnergyOnly = true;
    MemScalePolicy mem_only(o);
    MemScalePolicy full;
    PolicyContext ctx = defaultContext();
    ctx.restWatts = 200.0;   // make slowdown expensive system-wide
    ProfileData prof = profileWithAlpha(0.02, 1.5);
    FreqIndex f_mem =
        mem_only.selectFrequency(prof, ctx, nominalFreqIndex);
    FreqIndex f_full =
        full.selectFrequency(prof, ctx, nominalFreqIndex);
    EXPECT_GE(f_mem, f_full);
}

TEST(MemScaleSelect, InactiveCoresDoNotConstrain)
{
    MemScalePolicy p;
    PolicyContext ctx = defaultContext();
    ProfileData prof = profileWithAlpha(1e-5, 1.0, 2);
    prof.cores.push_back(CoreSample{0, 0});   // finished core
    FreqIndex f = p.selectFrequency(prof, ctx, nominalFreqIndex);
    EXPECT_EQ(f, numFreqPoints - 1);
}
