/**
 * @file
 * Energy-model (SER) tests: prediction sanity, the system-vs-memory
 * balance (memory-only predictions always prefer lower frequencies;
 * system predictions stop when slowdown costs more than memory saves),
 * and time scaling.
 */

#include <gtest/gtest.h>

#include "memscale/energy_model.hh"

using namespace memscale;

namespace
{

ProfileData
profileWithAlpha(double alpha, double xi = 1.1)
{
    ProfileData p;
    p.windowLen = usToTick(100.0);
    p.freqDuring = nominalFreqIndex;
    std::uint64_t instr = 1'000'000;
    auto misses = static_cast<std::uint64_t>(alpha * instr);
    p.cores.push_back(CoreSample{instr, misses});
    p.mc.rbhc = 0;
    p.mc.cbmc = misses;
    p.mc.obmc = 0;
    p.mc.btc = misses ? misses : 1;
    p.mc.bto = static_cast<std::uint64_t>((xi - 1.0) * p.mc.btc);
    p.mc.ctc = p.mc.btc;
    p.mc.cto = (xi - 1.0) * static_cast<double>(p.mc.ctc);
    p.mc.reads = misses;
    p.mc.pocc = misses;
    p.mc.rankTime = p.windowLen * 16;
    p.mc.rankPreTime = p.windowLen * 16;
    return p;
}

PolicyContext
context(Watts rest)
{
    PolicyContext ctx;
    ctx.restWatts = rest;
    return ctx;
}

} // namespace

TEST(EnergyModel, PredictionsArePositive)
{
    ProfileData p = profileWithAlpha(0.005);
    PerfModel perf;
    perf.calibrate(p);
    PolicyContext ctx = context(60.0);
    for (FreqIndex f = 0; f < numFreqPoints; ++f) {
        EnergyPrediction e = EnergyModel::predict(perf, p, ctx, f);
        EXPECT_GT(e.timeSec, 0.0);
        EXPECT_GT(e.memory, 0.0);
        EXPECT_GT(e.system, e.memory);
    }
}

TEST(EnergyModel, TimeGrowsAsFrequencyDrops)
{
    ProfileData p = profileWithAlpha(0.01);
    PerfModel perf;
    perf.calibrate(p);
    PolicyContext ctx = context(60.0);
    double prev = 0.0;
    for (FreqIndex f = 0; f < numFreqPoints; ++f) {
        EnergyPrediction e = EnergyModel::predict(perf, p, ctx, f);
        EXPECT_GE(e.timeSec, prev);
        prev = e.timeSec;
    }
}

TEST(EnergyModel, ComputeBoundWorkloadPrefersLowestFrequency)
{
    // Near-zero miss rate: scaling down costs almost nothing and
    // saves background/MC power, so SER decreases monotonically.
    ProfileData p = profileWithAlpha(1e-5, 1.0);
    PerfModel perf;
    perf.calibrate(p);
    PolicyContext ctx = context(60.0);
    double best = 1e30;
    FreqIndex best_f = 0;
    for (FreqIndex f = 0; f < numFreqPoints; ++f) {
        double s = EnergyModel::ser(perf, p, ctx, f);
        if (s < best) {
            best = s;
            best_f = f;
        }
    }
    EXPECT_EQ(best_f, numFreqPoints - 1);
    EXPECT_LT(best, 0.75);   // substantial predicted savings
}

TEST(EnergyModel, MemoryBoundWorkloadResistsDeepScaling)
{
    // Heavy miss rate + large rest-of-system: the slowdown at the
    // lowest frequency costs more system energy than memory saves.
    ProfileData p = profileWithAlpha(0.03, 1.8);
    PerfModel perf;
    perf.calibrate(p);
    PolicyContext ctx = context(120.0);
    double ser_min_freq =
        EnergyModel::ser(perf, p, ctx, numFreqPoints - 1);
    double best = 1e30;
    for (FreqIndex f = 0; f < numFreqPoints; ++f)
        best = std::min(best,
                        EnergyModel::ser(perf, p, ctx, f));
    EXPECT_GT(ser_min_freq, best);
}

TEST(EnergyModel, MemoryOnlyMetricIgnoresRestOfSystem)
{
    ProfileData p = profileWithAlpha(0.03, 1.8);
    PerfModel perf;
    perf.calibrate(p);
    PolicyContext ctx = context(120.0);
    // Memory-only SER at the lowest frequency beats nominal even when
    // the full-system SER does not.
    double mem_ser = EnergyModel::ser(perf, p, ctx,
                                      numFreqPoints - 1, true);
    EXPECT_LT(mem_ser, 1.0);
}

TEST(EnergyModel, SerIsOneAtNominal)
{
    ProfileData p = profileWithAlpha(0.01);
    PerfModel perf;
    perf.calibrate(p);
    PolicyContext ctx = context(60.0);
    EXPECT_NEAR(EnergyModel::ser(perf, p, ctx, nominalFreqIndex),
                1.0, 1e-12);
}

TEST(EnergyModel, HigherRestPowerPenalizesSlowdown)
{
    ProfileData p = profileWithAlpha(0.02, 1.5);
    PerfModel perf;
    perf.calibrate(p);
    double ser_low_rest =
        EnergyModel::ser(perf, p, context(30.0), numFreqPoints - 1);
    double ser_high_rest =
        EnergyModel::ser(perf, p, context(200.0), numFreqPoints - 1);
    EXPECT_GT(ser_high_rest, ser_low_rest);
}
