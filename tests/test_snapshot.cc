/**
 * @file
 * Checkpoint/restore tests.
 *
 * Three layers, mirroring the subsystem:
 *
 *  - Serializer: the container format itself — typed round-trips and
 *    the rejection paths (bad magic, wrong version, truncation, CRC
 *    corruption, over-reads) that keep a damaged checkpoint from ever
 *    restoring silently.
 *  - ResumeEquivalence: the headline property.  For every Table-1 mix
 *    and every policy, a run cut at a seeded-fuzz mid-run tick and
 *    resumed from the snapshot must be bit-identical to the
 *    uninterrupted run — same state digest, same flattened result
 *    fields, same epoch-recorder CSV bytes.
 *  - Churn: checkpoints taken at deliberately awkward instants — mid
 *    frequency-relock, mid refresh, with most ranks powered down,
 *    inside a profiling window — restore exactly and replay cleanly
 *    under the strict DDR3 protocol checker.
 *
 * Everything here uses the golden-test scenario (500k instructions,
 * 0.1 ms epochs, seed 12345) so failures can be cross-checked against
 * test_golden, whose hashes must NOT change when checkpoint events
 * are added to a run: snapshot writers are pure readers.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "harness/cluster.hh"
#include "harness/differential.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "memscale/policies/policy.hh"
#include "snapshot/serializer.hh"
#include "workload/mixes.hh"

using namespace memscale;

namespace
{

/** Same scenario as test_golden's goldenConfig(). */
SystemConfig
snapConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 500'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    cfg.seed = 12345;
    return cfg;
}

constexpr Watts kRestWatts = 150.0;

std::string
scratch(const std::string &name)
{
    return "/tmp/memscale_test_snapshot_" + name;
}

void
removeShards(const std::string &prefix, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        std::remove((prefix + ".shard" + std::to_string(i)).c_str());
}

/** The FatalError message for an action, or "" if none was thrown. */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.message;
    }
    return "";
}

/**
 * Everything two runs must agree on, gathered inside a sweep task so
 * the EXPECTs can run on the main thread.
 */
struct EquivOutcome
{
    std::string label;
    Tick cut = 0;
    std::uint64_t fullHash = 0;
    std::uint64_t shardedHash = 0;
    bool fieldsEqual = false;
    bool csvEqual = false;
};

/**
 * Cut one (mix, policy) run at a seeded-fuzz mid-run tick, resume it
 * from the snapshot, and collect every equivalence signal.  `salt`
 * varies the cut per case so the matrix probes many different resume
 * points, while staying fully deterministic.
 */
EquivOutcome
checkResume(const SystemConfig &base, const std::string &policy,
            std::uint64_t salt)
{
    SystemConfig cfg = base;
    cfg.observe = true;
    RunResult full = runPolicy(cfg, policy, kRestWatts);

    // Fuzz the cut into the middle three fifths of the run: past
    // warm-up, before the finish line.
    const Tick lo = full.runtime / 5;
    const Tick cut =
        lo + deriveSeed(cfg.seed, salt) % (full.runtime * 3 / 5);

    const std::string prefix =
        scratch("equiv_" + cfg.mixName + "_" + policy);
    RunResult sharded =
        runPolicySharded(cfg, policy, kRestWatts, {cut}, prefix);
    removeShards(prefix, 1);

    EquivOutcome out;
    out.label = cfg.mixName + "/" + policy;
    out.cut = cut;
    out.fullHash = hashRunResult(full);
    out.shardedHash = hashRunResult(sharded);
    out.fieldsEqual =
        flattenRunResult(full) == flattenRunResult(sharded);
    out.csvEqual = full.obs && sharded.obs &&
                   full.obs->toCsv() == sharded.obs->toCsv();
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Serializer: container round-trips and rejection paths.
// ---------------------------------------------------------------------

TEST(Serializer, RoundTripTypedValues)
{
    SnapshotWriter w;
    SectionWriter &s = w.section("vals");
    s.u8(0xab);
    s.u32(0xdeadbeef);
    s.u64(0x0123456789abcdefull);
    s.i64(-42);
    s.f64(0.1);
    s.f64(-0.0);
    s.b(true);
    s.b(false);
    s.str("hello snapshot");
    s.str("");

    SnapshotReader r(w.serialize());
    ASSERT_TRUE(r.has("vals"));
    SectionReader v = r.section("vals");
    EXPECT_EQ(v.u8(), 0xab);
    EXPECT_EQ(v.u32(), 0xdeadbeefu);
    EXPECT_EQ(v.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(v.i64(), -42);
    EXPECT_EQ(v.f64(), 0.1);
    double nz = v.f64();
    EXPECT_EQ(nz, 0.0);
    EXPECT_TRUE(std::signbit(nz));   // bit-pattern exact, -0.0 != +0.0
    EXPECT_TRUE(v.b());
    EXPECT_FALSE(v.b());
    EXPECT_EQ(v.str(), "hello snapshot");
    EXPECT_EQ(v.str(), "");
    EXPECT_EQ(v.remaining(), 0u);
}

TEST(Serializer, SectionReopenAppends)
{
    SnapshotWriter w;
    w.section("a").u32(1);
    w.section("b").u32(2);
    w.section("a").u32(3);   // reopen appends, no duplicate section

    SnapshotReader r(w.serialize());
    SectionReader a = r.section("a");
    EXPECT_EQ(a.u32(), 1u);
    EXPECT_EQ(a.u32(), 3u);
    EXPECT_EQ(a.remaining(), 0u);
    SectionReader b = r.section("b");
    EXPECT_EQ(b.u32(), 2u);
}

TEST(Serializer, MissingSectionFatal)
{
    SnapshotWriter w;
    w.section("present").u8(1);
    SnapshotReader r(w.serialize());
    EXPECT_FALSE(r.has("absent"));
    EXPECT_THROW(r.section("absent"), FatalError);
}

TEST(Serializer, OverreadFatalNamesSection)
{
    SnapshotWriter w;
    w.section("tiny").u8(7);
    SnapshotReader r(w.serialize());
    SectionReader t = r.section("tiny");
    t.u8();
    std::string msg = fatalMessage([&] { t.u64(); });
    EXPECT_NE(msg.find("tiny"), std::string::npos) << msg;
}

TEST(Serializer, RejectsBadMagic)
{
    SnapshotWriter w;
    w.section("s").u64(1);
    std::vector<std::uint8_t> bytes = w.serialize();
    bytes[0] ^= 0xff;
    EXPECT_THROW(SnapshotReader r(std::move(bytes)), FatalError);
}

TEST(Serializer, RejectsUnsupportedVersion)
{
    SnapshotWriter w;
    w.section("s").u64(1);
    std::vector<std::uint8_t> bytes = w.serialize();
    bytes[8] += 1;   // version field follows the 8-byte magic
    EXPECT_THROW(SnapshotReader r(std::move(bytes)), FatalError);
}

TEST(Serializer, RejectsCorruptPayload)
{
    SnapshotWriter w;
    w.section("s").str("payload payload payload");
    std::vector<std::uint8_t> bytes = w.serialize();
    bytes[bytes.size() - 9] ^= 0x01;   // inside the payload, before CRC
    EXPECT_THROW(SnapshotReader r(std::move(bytes)), FatalError);
}

TEST(Serializer, RejectsTruncation)
{
    SnapshotWriter w;
    w.section("s").u64(0x1122334455667788ull);
    std::vector<std::uint8_t> whole = w.serialize();
    // Every proper prefix must be rejected — there is no length at
    // which a cut-off snapshot starts looking valid again.
    for (std::size_t keep : {whole.size() - 1, whole.size() / 2,
                             std::size_t(12), std::size_t(3)}) {
        std::vector<std::uint8_t> cut(whole.begin(),
                                      whole.begin() + keep);
        EXPECT_THROW(SnapshotReader r(std::move(cut)), FatalError)
            << "prefix of " << keep << " bytes accepted";
    }
}

TEST(Serializer, RngRoundTrip)
{
    Rng rng(987654321);
    for (int i = 0; i < 100; ++i)
        rng.next();

    SnapshotWriter w;
    saveRng(w.section("rng"), rng);
    std::vector<std::uint64_t> expect;
    for (int i = 0; i < 32; ++i)
        expect.push_back(rng.next());

    Rng other(1);   // different seed: state must come from the snapshot
    SnapshotReader r(w.serialize());
    SectionReader s = r.section("rng");
    restoreRng(s, other);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(other.next(), expect[i]) << "draw " << i;
}

TEST(Serializer, FileRoundTrip)
{
    const std::string path = scratch("file.snap");
    SnapshotWriter w;
    w.section("x").u64(42);
    w.writeFile(path);
    SnapshotReader r(path);
    SectionReader x = r.section("x");
    EXPECT_EQ(x.u64(), 42u);
    std::remove(path.c_str());

    EXPECT_THROW(SnapshotReader gone("/nonexistent/no.snap"),
                 FatalError);
}

// ---------------------------------------------------------------------
// ResumeEquivalence: the full mix x policy matrix.
// ---------------------------------------------------------------------

TEST(ResumeEquivalence, AllMixesMidRunCheckpoint)
{
    // Every Table-1 mix under MemScale, each cut at its own
    // seeded-fuzz tick.  Fanned out on the sweep engine; checked on
    // this thread.
    const std::vector<MixSpec> &mixes = allMixes();
    SweepEngine eng;
    std::vector<EquivOutcome> outs = eng.map<EquivOutcome>(
        mixes.size(), [&](std::size_t i) {
            return checkResume(snapConfig(mixes[i].name), "memscale",
                               i);
        });
    for (const EquivOutcome &o : outs) {
        EXPECT_EQ(o.shardedHash, o.fullHash)
            << o.label << " cut@" << o.cut;
        EXPECT_TRUE(o.fieldsEqual) << o.label << " cut@" << o.cut;
        EXPECT_TRUE(o.csvEqual) << o.label << " cut@" << o.cut;
    }
}

TEST(ResumeEquivalence, AllPoliciesMidRunCheckpoint)
{
    // Every registered policy on MID3, plus the coordinated-DVFS
    // research policy, each with its own fuzzed cut.  This is what
    // forces saveState/restoreState coverage of per-policy state
    // (slack trackers, per-channel decisions, CPU DVFS level).
    std::vector<std::string> policies = policyNames();
    policies.push_back("coscale");
    SweepEngine eng;
    std::vector<EquivOutcome> outs = eng.map<EquivOutcome>(
        policies.size(), [&](std::size_t i) {
            return checkResume(snapConfig("MID3"), policies[i],
                               100 + i);
        });
    for (const EquivOutcome &o : outs) {
        EXPECT_EQ(o.shardedHash, o.fullHash)
            << o.label << " cut@" << o.cut;
        EXPECT_TRUE(o.fieldsEqual) << o.label << " cut@" << o.cut;
        EXPECT_TRUE(o.csvEqual) << o.label << " cut@" << o.cut;
    }
}

namespace
{

/** Open-loop scenario sized like snapConfig (see test_serving). */
SystemConfig
servingConfig(ArrivalKind kind)
{
    SystemConfig cfg;
    cfg.mixName = "OPENLOOP";
    cfg.numCores = 8;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    cfg.seed = 12345;
    cfg.serving.enabled = true;
    cfg.serving.arrival.kind = kind;
    cfg.serving.arrival.ratePerSec = 2.0e6;
    cfg.serving.horizon = msToTick(0.5);
    cfg.serving.sloP99Us = 3.0;
    return cfg;
}

} // namespace

TEST(ResumeEquivalence, ServingMidRunCheckpoint)
{
    // The open-loop path adds a whole new section's worth of state —
    // generator Rng + MMPP dwell, demand Rng, the request queue,
    // in-flight workers, both latency histograms — and ServingStats
    // fields join the flattened digest, so a cut anywhere must still
    // land bit-identical.  Every arrival process, CPI-bound and
    // SLO policies, fuzzed cuts.
    std::vector<std::pair<ArrivalKind, std::string>> cases = {
        {ArrivalKind::Poisson, "memscale"},
        {ArrivalKind::Poisson, "slo"},
        {ArrivalKind::Bursty, "slo"},
        {ArrivalKind::Diurnal, "slo"},
    };
    SweepEngine eng;
    std::vector<EquivOutcome> outs = eng.map<EquivOutcome>(
        cases.size(), [&](std::size_t i) {
            SystemConfig cfg = servingConfig(cases[i].first);
            cfg.mixName = std::string("OPENLOOP-") +
                          arrivalKindName(cases[i].first);
            return checkResume(cfg, cases[i].second, 500 + i);
        });
    for (const EquivOutcome &o : outs) {
        EXPECT_EQ(o.shardedHash, o.fullHash)
            << o.label << " cut@" << o.cut;
        EXPECT_TRUE(o.fieldsEqual) << o.label << " cut@" << o.cut;
        EXPECT_TRUE(o.csvEqual) << o.label << " cut@" << o.cut;
    }
}

TEST(ResumeEquivalence, ServingBurstyChainOfCuts)
{
    // Three cuts through a bursty run: with ~50 us burst dwells in a
    // 500 us horizon the cuts land inside dwell states, so the MMPP
    // position (inBurst_/stateEnd_) must round-trip exactly — a
    // drifted dwell clock shifts every later arrival and the digest.
    SystemConfig cfg = servingConfig(ArrivalKind::Bursty);
    cfg.observe = true;
    RunResult full = runPolicy(cfg, "slo", kRestWatts);
    ASSERT_GT(full.serving.completed, 0u);

    const Tick t = full.runtime;
    const std::string prefix = scratch("serving_chain");
    RunResult sharded = runPolicySharded(
        cfg, "slo", kRestWatts, {t / 4, t / 2, (3 * t) / 4}, prefix);
    removeShards(prefix, 3);

    EXPECT_EQ(hashRunResult(sharded), hashRunResult(full));
    EXPECT_TRUE(flattenRunResult(full) == flattenRunResult(sharded));
    ASSERT_TRUE(full.obs && sharded.obs);
    EXPECT_EQ(full.obs->toCsv(), sharded.obs->toCsv());
}

TEST(ResumeEquivalence, ServingResumeRejectsMismatchedArrival)
{
    // The serving section carries its own config fingerprint: a
    // snapshot resumed under a different traffic scenario must be
    // refused loudly, not replayed into a silently-wrong tail.
    const std::string path = scratch("serving_mismatch.snap");
    SystemConfig cfg = servingConfig(ArrivalKind::Bursty);
    cfg.snapshot.at = msToTick(0.1);
    cfg.snapshot.stopAfter = true;
    cfg.snapshot.out = path;
    runPolicy(cfg, "slo", kRestWatts);

    auto resume = [&](SystemConfig rcfg) {
        rcfg.snapshot = {};
        rcfg.snapshot.resumePath = path;
        return fatalMessage([&] { runPolicy(rcfg, "slo", kRestWatts); });
    };

    EXPECT_EQ(resume(servingConfig(ArrivalKind::Bursty)), "");

    SystemConfig other = servingConfig(ArrivalKind::Poisson);
    std::string msg = resume(other);
    EXPECT_NE(msg.find("serving resume"), std::string::npos) << msg;

    other = servingConfig(ArrivalKind::Bursty);
    other.serving.arrival.ratePerSec = 1.0e6;
    msg = resume(other);
    EXPECT_NE(msg.find("serving resume"), std::string::npos) << msg;

    other = servingConfig(ArrivalKind::Bursty);
    other.serving.missesPerRequest = 4.0;
    msg = resume(other);
    EXPECT_NE(msg.find("serving resume"), std::string::npos) << msg;

    std::remove(path.c_str());
}

TEST(ResumeEquivalence, ServingAndClosedLoopSnapshotsDontCross)
{
    // Closed-loop snapshots carry a "cores" section, serving ones a
    // "serving" section; resuming across modes must fail on the
    // missing section, never silently construct the wrong workload.
    const std::string cl = scratch("closedloop.snap");
    SystemConfig cfg = snapConfig("MID3");
    cfg.snapshot.at = msToTick(0.1);
    cfg.snapshot.stopAfter = true;
    cfg.snapshot.out = cl;
    runPolicy(cfg, "slo", kRestWatts);

    SystemConfig srv = servingConfig(ArrivalKind::Poisson);
    srv.snapshot.resumePath = cl;
    EXPECT_NE(fatalMessage([&] { runPolicy(srv, "slo", kRestWatts); }),
              "");

    const std::string sv = scratch("servingmode.snap");
    SystemConfig scfg = servingConfig(ArrivalKind::Poisson);
    scfg.snapshot.at = msToTick(0.1);
    scfg.snapshot.stopAfter = true;
    scfg.snapshot.out = sv;
    runPolicy(scfg, "slo", kRestWatts);

    SystemConfig closed = snapConfig("MID3");
    closed.snapshot.resumePath = sv;
    EXPECT_NE(
        fatalMessage([&] { runPolicy(closed, "slo", kRestWatts); }),
        "");

    std::remove(cl.c_str());
    std::remove(sv.c_str());
}

TEST(ResumeEquivalence, ChainOfThreeCuts)
{
    // Shard -> resume -> shard -> resume -> shard -> finish: state
    // must survive repeated serialization, not just one hop.
    SystemConfig cfg = snapConfig("MEM2");
    cfg.observe = true;
    RunResult full = runPolicy(cfg, "memscale", kRestWatts);
    const Tick r = full.runtime;
    const std::string prefix = scratch("chain");
    RunResult sharded = runPolicySharded(
        cfg, "memscale", kRestWatts, {r / 4, r / 2, 3 * r / 4},
        prefix);
    removeShards(prefix, 3);
    EXPECT_EQ(hashRunResult(sharded), hashRunResult(full));
    EXPECT_EQ(flattenRunResult(sharded), flattenRunResult(full));
    ASSERT_TRUE(full.obs && sharded.obs);
    EXPECT_EQ(full.obs->toCsv(), sharded.obs->toCsv());
}

TEST(ResumeEquivalence, CheckpointWritersAreBehaviourFree)
{
    // A run that writes periodic checkpoints must be bit-identical to
    // one that doesn't — the same contract observability has.  This
    // is why the golden hashes survive checkpointing.
    SystemConfig plain = snapConfig("MID1");
    RunResult off = runPolicy(plain, "memscale", kRestWatts);

    SystemConfig writing = snapConfig("MID1");
    writing.snapshot.every = usToTick(50.0);
    writing.snapshot.out = scratch("periodic");
    RunResult on = runPolicy(writing, "memscale", kRestWatts);

    EXPECT_EQ(hashRunResult(on), hashRunResult(off));
    EXPECT_GE(on.checkpointsWritten.size(), 2u);
    EXPECT_TRUE(off.checkpointsWritten.empty());
    for (const std::string &p : on.checkpointsWritten)
        std::remove(p.c_str());
}

TEST(ResumeEquivalence, SnapshotFilesAreDeterministic)
{
    // Two separate processes-worth of the same run must produce
    // byte-identical snapshot files: the container holds no pointers,
    // timestamps, or other environmental junk.  golden_bisect.py and
    // the sweep thread-count test both stand on this.
    auto snapBytes = [](const std::string &path) {
        SystemConfig cfg = snapConfig("MID3");
        cfg.snapshot.at = msToTick(0.15);
        cfg.snapshot.stopAfter = true;
        cfg.snapshot.out = path;
        runPolicy(cfg, "memscale", kRestWatts);
        std::FILE *f = std::fopen(path.c_str(), "rb");
        EXPECT_NE(f, nullptr);
        std::string bytes;
        char buf[4096];
        std::size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.append(buf, got);
        std::fclose(f);
        std::remove(path.c_str());
        return bytes;
    };
    std::string a = snapBytes(scratch("det_a.snap"));
    std::string b = snapBytes(scratch("det_b.snap"));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(ResumeEquivalence, ResumeRejectsMismatchedConfig)
{
    // A snapshot resumed under a different scenario is a silent-wrong
    // result factory; the meta fingerprint must catch it loudly.
    const std::string path = scratch("mismatch.snap");
    SystemConfig cfg = snapConfig("MID3");
    cfg.snapshot.at = msToTick(0.1);
    cfg.snapshot.stopAfter = true;
    cfg.snapshot.out = path;
    runPolicy(cfg, "memscale", kRestWatts);

    auto resume = [&](SystemConfig rcfg, const std::string &policy) {
        rcfg.snapshot = {};
        rcfg.snapshot.resumePath = path;
        return fatalMessage(
            [&] { runPolicy(rcfg, policy, kRestWatts); });
    };

    EXPECT_EQ(resume(snapConfig("MID3"), "memscale"), "");

    std::string msg = resume(snapConfig("MID2"), "memscale");
    EXPECT_NE(msg.find("mix"), std::string::npos) << msg;

    msg = resume(snapConfig("MID3"), "static");
    EXPECT_NE(msg.find("policy"), std::string::npos) << msg;

    SystemConfig fewer = snapConfig("MID3");
    fewer.numCores = 8;
    msg = resume(fewer, "memscale");
    EXPECT_NE(msg.find("numCores"), std::string::npos) << msg;

    SystemConfig reseeded = snapConfig("MID3");
    reseeded.seed = 777;
    EXPECT_NE(resume(reseeded, "memscale"), "");

    std::remove(path.c_str());
}

TEST(ResumeEquivalence, ResumeRejectsCorruptSnapshot)
{
    const std::string path = scratch("corrupt.snap");
    SystemConfig cfg = snapConfig("MID1");
    cfg.snapshot.at = msToTick(0.1);
    cfg.snapshot.stopAfter = true;
    cfg.snapshot.out = path;
    runPolicy(cfg, "memscale", kRestWatts);

    // Flip one byte in the middle of the file: CRC must refuse it.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);

    SystemConfig rcfg = snapConfig("MID1");
    rcfg.snapshot.resumePath = path;
    EXPECT_THROW(runPolicy(rcfg, "memscale", kRestWatts), FatalError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Churn: checkpoints at deliberately awkward instants.
// ---------------------------------------------------------------------

namespace
{

/**
 * Cut a protocol-checked run at `cut`, return the snapshot's meta
 * block, and leave the snapshot at `path` for the caller to resume.
 */
SnapshotMeta
cutCheckedRun(const SystemConfig &base, const std::string &policy,
              Tick cut, const std::string &path)
{
    SystemConfig cfg = base;
    cfg.protocolCheck = true;
    cfg.snapshot.at = cut;
    cfg.snapshot.stopAfter = true;
    cfg.snapshot.out = path;
    RunResult r = runPolicy(cfg, policy, kRestWatts);
    EXPECT_TRUE(r.stoppedAtCheckpoint);
    return readSnapshotMeta(path);
}

/**
 * Resume `path` under the strict checker (first violation is fatal)
 * and require the result to be bit-identical to the uninterrupted
 * protocol-checked run.
 */
void
expectCleanResume(const SystemConfig &base, const std::string &policy,
                  const std::string &path)
{
    SystemConfig rcfg = base;
    rcfg.protocolCheck = true;
    rcfg.strictCheck = true;
    rcfg.snapshot.resumePath = path;
    RunResult resumed = runPolicy(rcfg, policy, kRestWatts);
    EXPECT_EQ(resumed.protocolViolations, 0u);

    SystemConfig fcfg = base;
    fcfg.protocolCheck = true;
    RunResult full = runPolicy(fcfg, policy, kRestWatts);
    EXPECT_EQ(hashRunResult(resumed), hashRunResult(full));
    EXPECT_EQ(resumed.commandsChecked, full.commandsChecked);
}

} // namespace

TEST(SnapshotChurn, MidFrequencyRelock)
{
    // MemScale's first frequency decision lands exactly at
    // profile-end (10 us); the DLL relock stall lasts ~0.67 us, so a
    // cut 100 ns in catches all four channels mid-transition with
    // their ranks forced into powerdown.
    const std::string path = scratch("relock.snap");
    SnapshotMeta m = cutCheckedRun(snapConfig("MID3"), "memscale",
                                   usToTick(10.0) + 100'000, path);
    EXPECT_GT(m.pendingRelocks, 0u);
    EXPECT_GT(m.ranksPoweredDown, 0u);
    expectCleanResume(snapConfig("MID3"), "memscale", path);
    std::remove(path.c_str());
}

TEST(SnapshotChurn, MidRefresh)
{
    // At 0.15 ms several staggered auto-refreshes are in flight
    // (tRFC windows open, EvChanRefreshDone pending) alongside live
    // requests.
    const std::string path = scratch("refresh.snap");
    SnapshotMeta m = cutCheckedRun(snapConfig("MID3"), "memscale",
                                   msToTick(0.15), path);
    EXPECT_GT(m.pendingRefreshes, 0u);
    EXPECT_GT(m.inFlightRequests, 0u);
    expectCleanResume(snapConfig("MID3"), "memscale", path);
    std::remove(path.c_str());
}

TEST(SnapshotChurn, RanksPoweredDown)
{
    // An ILP mix under the fast-exit powerdown policy idles almost
    // every rank; the snapshot must capture and re-establish the
    // powerdown states and their exit latencies.
    const std::string path = scratch("powerdown.snap");
    SnapshotMeta m = cutCheckedRun(snapConfig("ILP1"), "fastpd",
                                   msToTick(0.07), path);
    EXPECT_GT(m.ranksPoweredDown, 0u);
    expectCleanResume(snapConfig("ILP1"), "fastpd", path);
    std::remove(path.c_str());
}

TEST(SnapshotChurn, SelfRefreshPowerdown)
{
    // Same, for the self-refresh idle state (srpd) whose exit path
    // interacts with the refresh schedule.
    const std::string path = scratch("srpd.snap");
    cutCheckedRun(snapConfig("MID3"), "srpd", msToTick(0.15), path);
    expectCleanResume(snapConfig("MID3"), "srpd", path);
    std::remove(path.c_str());
}

TEST(SnapshotChurn, InsideProfileWindow)
{
    // Cut inside the second epoch's profiling window (profile runs
    // for the first 10 us of each 100 us epoch).  The profiling
    // counter deltas the policy will read at profile-end must restore
    // exactly, or the first post-resume frequency decision — and
    // everything after it — diverges.
    SystemConfig cfg = snapConfig("MID3");
    cfg.observe = true;
    RunResult full = runPolicy(cfg, "memscale", kRestWatts);
    const Tick cut = msToTick(0.1) + usToTick(5.0);
    ASSERT_LT(cut, full.runtime);
    const std::string prefix = scratch("profile");
    RunResult sharded =
        runPolicySharded(cfg, "memscale", kRestWatts, {cut}, prefix);
    removeShards(prefix, 1);
    EXPECT_EQ(hashRunResult(sharded), hashRunResult(full));
    ASSERT_TRUE(full.obs && sharded.obs);
    EXPECT_EQ(full.obs->toCsv(), sharded.obs->toCsv());
}

TEST(SnapshotChurn, MetaMatchesRun)
{
    const std::string path = scratch("meta.snap");
    SystemConfig cfg = snapConfig("MEM4");
    cfg.snapshot.at = msToTick(0.12);
    cfg.snapshot.stopAfter = true;
    cfg.snapshot.out = path;
    RunResult r = runPolicy(cfg, "memscale", kRestWatts);
    ASSERT_TRUE(r.stoppedAtCheckpoint);
    ASSERT_EQ(r.checkpointsWritten.size(), 1u);
    EXPECT_EQ(r.checkpointsWritten[0], path);

    SnapshotMeta m = readSnapshotMeta(path);
    EXPECT_EQ(m.mixName, "MEM4");
    EXPECT_EQ(m.policyName, "memscale");
    EXPECT_EQ(m.now, msToTick(0.12));
    EXPECT_EQ(m.doneCores, 0u);
    EXPECT_GT(m.pendingEvents, 0u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Idle ladder: deep-state cuts, mid-migration cuts, fingerprinting.
// ---------------------------------------------------------------------

TEST(SnapshotChurn, RanksInEachDeepIdleState)
{
    // Cuts taken while ranks sit in each deep rung.  The static
    // policies hold every idle rank in one target state (slow-clock
    // self-refresh, deep powerdown); the adaptive ladder catches
    // ranks mid-demotion with their walk-down timers pending.  An
    // ILP mix idles almost everything, so the cut is guaranteed to
    // find residents.
    for (const char *policy : {"srslowpd", "deeppd", "ladder"}) {
        const std::string path =
            scratch(std::string("deep-") + policy + ".snap");
        SnapshotMeta m = cutCheckedRun(snapConfig("ILP1"), policy,
                                       msToTick(0.07), path);
        EXPECT_GT(m.ranksPoweredDown, 0u) << policy;
        expectCleanResume(snapConfig("ILP1"), policy, path);
        std::remove(path.c_str());
    }
}

TEST(SnapshotChurn, MidMigration)
{
    // Consolidation on: the snapshot must capture the hot-frame
    // counter cache, the remap permutation, the round-robin cursors,
    // and the pending EvMemMigrate pass — and the resumed run must
    // keep migrating bit-identically.
    SystemConfig base = snapConfig("MEM4");
    base.mem.ladder.migrate = true;
    base.mem.ladder.hotThreshold = 2;
    base.mem.ladder.migrateInterval = usToTick(20.0);

    SystemConfig fcfg = base;
    fcfg.protocolCheck = true;
    RunResult full = runPolicy(fcfg, "memscale-ladder", kRestWatts);
    // The scenario actually migrates; otherwise this test is hollow.
    ASSERT_GT(full.counters.migrations, 0u);

    const std::string path = scratch("migration.snap");
    cutCheckedRun(base, "memscale-ladder", msToTick(0.15), path);

    SystemConfig rcfg = base;
    rcfg.protocolCheck = true;
    rcfg.strictCheck = true;
    rcfg.snapshot.resumePath = path;
    RunResult resumed =
        runPolicy(rcfg, "memscale-ladder", kRestWatts);
    EXPECT_EQ(resumed.protocolViolations, 0u);
    EXPECT_EQ(hashRunResult(resumed), hashRunResult(full));
    EXPECT_EQ(resumed.counters.migrations, full.counters.migrations);
    std::remove(path.c_str());
}

TEST(ResumeEquivalence, ResumeRejectsMismatchedLadderConfig)
{
    // The ladder config shapes every demotion tick and remap
    // decision; resuming under different thresholds or consolidation
    // settings would silently diverge, so the meta fingerprint must
    // refuse each field loudly.
    const std::string path = scratch("ladder-mismatch.snap");
    SystemConfig cfg = snapConfig("MID3");
    cfg.mem.ladder.migrate = true;
    cfg.snapshot.at = msToTick(0.1);
    cfg.snapshot.stopAfter = true;
    cfg.snapshot.out = path;
    runPolicy(cfg, "ladder", kRestWatts);

    auto resume = [&](SystemConfig rcfg) {
        rcfg.snapshot = {};
        rcfg.snapshot.resumePath = path;
        return fatalMessage(
            [&] { runPolicy(rcfg, "ladder", kRestWatts); });
    };

    SystemConfig same = snapConfig("MID3");
    same.mem.ladder.migrate = true;
    EXPECT_EQ(resume(same), "");

    SystemConfig thresholds = same;
    thresholds.mem.ladder.demoteDeepPd *= 2;
    std::string msg = resume(thresholds);
    EXPECT_NE(msg.find("ladder.demoteDeepPd"), std::string::npos)
        << msg;

    SystemConfig consolidation = snapConfig("MID3");  // migrate off
    msg = resume(consolidation);
    EXPECT_NE(msg.find("ladder.migrate"), std::string::npos) << msg;

    SystemConfig hot = same;
    hot.mem.ladder.hotRanks = 2;
    msg = resume(hot);
    EXPECT_NE(msg.find("ladder.hotRanks"), std::string::npos) << msg;

    SystemConfig interval = same;
    interval.mem.ladder.migrateInterval *= 2;
    msg = resume(interval);
    EXPECT_NE(msg.find("ladder.migrateInterval"), std::string::npos)
        << msg;

    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Fleet-level cut/resume: a whole cluster checkpoints and resumes
// bit-identically through the "cluster" section + per-server files.
// ---------------------------------------------------------------------

TEST(ResumeEquivalence, FleetMidRunCutAndResume)
{
    ClusterConfig base;
    base.numServers = 2;
    base.server = servingConfig(ArrivalKind::Poisson);
    base.server.modelCpuPower = true;
    base.server.restWatts = kRestWatts;
    base.policy = "fastcap";
    base.capW = 320.0;   // binding or not, budgets must replay exactly
    base.coordEpoch = msToTick(0.1);   // 5 epochs over the 0.5 ms run
    base.scratchDir = "/tmp/memscale_test_snapshot_fleet";
    ::mkdir(base.scratchDir.c_str(), 0755);

    FleetResult full = ClusterHarness(base).run();
    ASSERT_EQ(full.epochs.size(), 5u);

    // Cut the fleet after two coordination epochs, then resume.
    const std::string path = scratch("fleet_cut");
    ClusterConfig head_cfg = base;
    head_cfg.snapshot.atEpoch = 2;
    head_cfg.snapshot.stopAfter = true;
    head_cfg.snapshot.out = path;
    FleetResult head = ClusterHarness(head_cfg).run();
    EXPECT_TRUE(head.stoppedAtCheckpoint);
    EXPECT_EQ(head.fleetSnapshotPath, path);
    ASSERT_EQ(head.epochs.size(), 2u);

    // The fleet snapshot is introspectable without restoring it.
    FleetMeta meta = readFleetMeta(path);
    ASSERT_TRUE(meta.valid);
    EXPECT_EQ(meta.numServers, 2u);
    EXPECT_EQ(meta.policy, "fastcap");
    EXPECT_DOUBLE_EQ(meta.capW, base.capW);
    EXPECT_EQ(meta.coordEpoch, base.coordEpoch);
    EXPECT_EQ(meta.epochsDone, 2u);
    ASSERT_EQ(meta.budgetW.size(), 2u);
    EXPECT_DOUBLE_EQ(meta.lastFleetW, head.epochs.back().fleetW);
    // Ordinary per-server snapshots sit next to the fleet file.
    SnapshotMeta s0 = readSnapshotMeta(path + ".server0");
    EXPECT_EQ(s0.policyName, "fastcap");
    EXPECT_EQ(s0.now, 2 * base.coordEpoch);

    ClusterConfig tail_cfg = base;
    tail_cfg.snapshot.resumePath = path;
    FleetResult tail = ClusterHarness(tail_cfg).run();

    // The resumed fleet finishes bit-identical to the uncut one:
    // same fleet hash, same per-server results, same budget rows.
    EXPECT_EQ(tail.fleetHash, full.fleetHash);
    EXPECT_DOUBLE_EQ(tail.fleetEnergyJ, full.fleetEnergyJ);
    for (std::size_t k = 0; k < 2; ++k)
        EXPECT_EQ(hashRunResult(tail.servers[k]),
                  hashRunResult(full.servers[k]))
            << "server " << k;
    ASSERT_EQ(tail.epochs.size(), full.epochs.size());
    for (std::size_t e = 0; e < full.epochs.size(); ++e) {
        const FleetEpochRow &a = full.epochs[e];
        const FleetEpochRow &b = tail.epochs[e];
        ASSERT_EQ(a.budgetW.size(), b.budgetW.size()) << "epoch " << e;
        for (std::size_t k = 0; k < a.budgetW.size(); ++k)
            EXPECT_DOUBLE_EQ(a.budgetW[k], b.budgetW[k])
                << "epoch " << e << " server " << k;
        EXPECT_DOUBLE_EQ(a.fleetW, b.fleetW) << "epoch " << e;
    }

    std::remove(path.c_str());
    std::remove((path + ".server0").c_str());
    std::remove((path + ".server1").c_str());
}

TEST(ResumeEquivalence, FleetResumeRejectsMismatchedConfig)
{
    ClusterConfig base;
    base.numServers = 2;
    base.server = servingConfig(ArrivalKind::Poisson);
    base.server.modelCpuPower = true;
    base.server.restWatts = kRestWatts;
    base.policy = "fastcap";
    base.capW = 320.0;
    base.coordEpoch = msToTick(0.1);
    base.scratchDir = "/tmp/memscale_test_snapshot_fleet";
    ::mkdir(base.scratchDir.c_str(), 0755);

    const std::string path = scratch("fleet_mismatch");
    ClusterConfig head_cfg = base;
    head_cfg.snapshot.atEpoch = 1;
    head_cfg.snapshot.stopAfter = true;
    head_cfg.snapshot.out = path;
    ClusterHarness(head_cfg).run();

    auto resume = [&](ClusterConfig rcfg) {
        rcfg.snapshot = {};
        rcfg.snapshot.resumePath = path;
        return fatalMessage([&] { ClusterHarness(rcfg).run(); });
    };

    EXPECT_EQ(resume(base), "");

    ClusterConfig bigger = base;
    bigger.numServers = 3;
    std::string msg = resume(bigger);
    EXPECT_NE(msg.find("servers"), std::string::npos) << msg;

    ClusterConfig recapped = base;
    recapped.capW = 200.0;
    msg = resume(recapped);
    EXPECT_NE(msg.find("cap"), std::string::npos) << msg;

    ClusterConfig repoliced = base;
    repoliced.policy = "memscale";
    msg = resume(repoliced);
    EXPECT_NE(msg.find("policy"), std::string::npos) << msg;

    // An ordinary per-server snapshot is not a fleet snapshot.
    ClusterConfig notfleet = base;
    notfleet.snapshot = {};
    notfleet.snapshot.resumePath = path + ".server0";
    msg = fatalMessage([&] { ClusterHarness(notfleet).run(); });
    EXPECT_NE(msg.find("cluster"), std::string::npos) << msg;

    std::remove(path.c_str());
    std::remove((path + ".server0").c_str());
    std::remove((path + ".server1").c_str());
}
