/**
 * @file
 * Full-matrix property sweep: MemScale against every Table 1 mix.
 * These are the headline guarantees of the paper, asserted per mix:
 * the performance bound holds, energy is saved (never lost), runtime
 * only stretches within the bound, and energy accounting is
 * internally consistent.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workload/mixes.hh"

using namespace memscale;

namespace
{

/** One comparison per mix, cached across the suite's assertions. */
const ComparisonResult &
resultFor(std::size_t mix_idx)
{
    static std::map<std::size_t, ComparisonResult> cache;
    auto it = cache.find(mix_idx);
    if (it == cache.end()) {
        SystemConfig cfg;
        cfg.mixName = allMixes()[mix_idx].name;
        cfg.instrBudget = 600'000;
        cfg.epochLen = msToTick(0.1);
        cfg.profileLen = usToTick(10.0);
        it = cache.emplace(mix_idx, compare(cfg, "memscale")).first;
    }
    return it->second;
}

} // namespace

class MixSweep : public ::testing::TestWithParam<std::size_t>
{
  protected:
    const ComparisonResult &r() const { return resultFor(GetParam()); }
    const MixSpec &mix() const { return allMixes()[GetParam()]; }
};

TEST_P(MixSweep, BoundHolds)
{
    EXPECT_LE(r().worstCpiIncrease, 0.10 + 0.02) << mix().name;
}

TEST_P(MixSweep, SavesMemoryEnergy)
{
    EXPECT_GT(r().memEnergySavings, 0.05) << mix().name;
}

TEST_P(MixSweep, NeverLosesSystemEnergy)
{
    EXPECT_GT(r().sysEnergySavings, -0.01) << mix().name;
}

TEST_P(MixSweep, RuntimeStretchWithinBound)
{
    double stretch = static_cast<double>(r().policy.runtime) /
                     static_cast<double>(r().base.runtime);
    EXPECT_LE(stretch, 1.0 + 0.10 + 0.03) << mix().name;
    EXPECT_GE(stretch, 0.999) << mix().name;
}

TEST_P(MixSweep, AllCoresFinished)
{
    EXPECT_FALSE(r().base.hitTimeLimit);
    EXPECT_FALSE(r().policy.hitTimeLimit);
    for (double cpi : r().policy.coreCpi)
        EXPECT_GT(cpi, 0.0);
}

TEST_P(MixSweep, EnergyAccountingConsistent)
{
    for (const RunResult *run : {&r().base, &r().policy}) {
        const EnergyBreakdown &e = run->energy;
        EXPECT_NEAR(e.total(),
                    e.background + e.actPre + e.readWrite +
                        e.termination + e.refresh + e.pllReg + e.mc +
                        e.cpu + e.rest,
                    e.total() * 1e-9);
        EXPECT_GT(e.memorySubsystem(), 0.0);
    }
}

TEST_P(MixSweep, ClassOrderingOnSavings)
{
    // Class-level expectation from Fig. 5: ILP mixes save more system
    // energy than MEM mixes.
    if (mix().klass == "ILP")
        EXPECT_GT(r().sysEnergySavings, 0.10) << mix().name;
    if (mix().klass == "MEM")
        EXPECT_LT(r().sysEnergySavings, 0.15) << mix().name;
}

INSTANTIATE_TEST_SUITE_P(AllMixes, MixSweep,
                         ::testing::Range(std::size_t(0),
                                          std::size_t(12)),
                         [](const auto &info) {
                             return allMixes()[info.param].name;
                         });
