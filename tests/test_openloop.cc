/**
 * @file
 * Arrival-generator tests: empirical rates against the configured λ,
 * byte-identical seed determinism, over-dispersion/shape invariants
 * for the bursty and diurnal processes, checkpoint round-trips
 * mid-stream, and jobs=1-vs-N hash identity for serving sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "harness/differential.hh"
#include "harness/serving.hh"
#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "snapshot/serializer.hh"
#include "workload/openloop.hh"

using namespace memscale;

namespace
{

ArrivalConfig
arrivalConfig(ArrivalKind kind, double rate = 2.0e6,
              std::uint64_t seed = 12345)
{
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.ratePerSec = rate;
    cfg.seed = seed;
    return cfg;
}

/** Arrival ticks until `horizon`, capped (shape tests only). */
std::vector<Tick>
drawUntil(ArrivalGenerator &gen, Tick horizon,
          std::size_t cap = 2'000'000)
{
    std::vector<Tick> out;
    while (out.size() < cap) {
        Tick t = gen.next();
        if (t > horizon)
            break;
        out.push_back(t);
    }
    return out;
}

/** Empirical rate over a horizon, requests per second. */
double
empiricalRate(const ArrivalConfig &cfg, Tick horizon)
{
    ArrivalGenerator gen(cfg);
    return static_cast<double>(drawUntil(gen, horizon).size()) /
           tickToSec(horizon);
}

} // namespace

// ---------------------------------------------------------------------
// Long-run rate: every process must realize the configured λ.
// ---------------------------------------------------------------------

TEST(ArrivalRate, PoissonMatchesLambda)
{
    const double rate = 2.0e6;
    // ~20k arrivals: relative sd of the count is 1/sqrt(n) ~ 0.7%,
    // so a 5% tolerance is ~7 sigma and effectively deterministic.
    double got =
        empiricalRate(arrivalConfig(ArrivalKind::Poisson, rate),
                      msToTick(10.0));
    EXPECT_NEAR(got, rate, 0.05 * rate);
}

TEST(ArrivalRate, BurstyMatchesLambdaLongRun)
{
    // The MMPP state rates are solved so the long-run mean is λ, but
    // count variance is dominated by the dwell process (one burst/calm
    // cycle is ~0.5 ms here), so "long run" means many hundreds of
    // cycles, not many arrivals.
    const double rate = 2.0e6;
    double got = empiricalRate(
        arrivalConfig(ArrivalKind::Bursty, rate), msToTick(500.0));
    EXPECT_NEAR(got, rate, 0.05 * rate);
}

TEST(ArrivalRate, DiurnalMatchesLambdaOverWholePeriods)
{
    // Over an integer number of periods the sinusoid integrates out.
    const double rate = 2.0e6;
    ArrivalConfig cfg = arrivalConfig(ArrivalKind::Diurnal, rate);
    double got = empiricalRate(cfg, 5 * cfg.diurnalPeriod);
    EXPECT_NEAR(got, rate, 0.05 * rate);
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

TEST(ArrivalDeterminism, SameSeedIdenticalStream)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        ArrivalGenerator a(arrivalConfig(kind));
        ArrivalGenerator b(arrivalConfig(kind));
        for (int i = 0; i < 20000; ++i)
            ASSERT_EQ(a.next(), b.next())
                << arrivalKindName(kind) << " diverged at " << i;
    }
}

TEST(ArrivalDeterminism, DifferentSeedDifferentStream)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        ArrivalGenerator a(arrivalConfig(kind, 2.0e6, 1));
        ArrivalGenerator b(arrivalConfig(kind, 2.0e6, 2));
        bool diverged = false;
        for (int i = 0; i < 100 && !diverged; ++i)
            diverged = a.next() != b.next();
        EXPECT_TRUE(diverged) << arrivalKindName(kind);
    }
}

TEST(ArrivalDeterminism, TicksNondecreasing)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        ArrivalGenerator gen(arrivalConfig(kind, 5.0e7));
        Tick prev = 0;
        for (int i = 0; i < 50000; ++i) {
            Tick t = gen.next();
            ASSERT_GE(t, prev) << arrivalKindName(kind);
            prev = t;
        }
        EXPECT_EQ(gen.generated(), 50000u);
    }
}

// ---------------------------------------------------------------------
// Shape invariants
// ---------------------------------------------------------------------

namespace
{

/** Index of dispersion (var/mean) of counts in fixed windows. */
double
dispersionIndex(const std::vector<Tick> &arrivals, Tick window,
                Tick horizon)
{
    std::vector<double> counts(horizon / window, 0.0);
    for (Tick t : arrivals) {
        std::size_t w = t / window;
        if (w < counts.size())
            counts[w] += 1.0;
    }
    double mean = 0.0;
    for (double c : counts)
        mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (double c : counts)
        var += (c - mean) * (c - mean);
    var /= static_cast<double>(counts.size());
    return var / mean;
}

} // namespace

TEST(ArrivalShape, BurstyOverdispersedVsPoisson)
{
    // Counts in windows comparable to the dwell time: Poisson has
    // var/mean ~ 1; the MMPP mixes two rates, so var/mean >> 1.
    const Tick horizon = msToTick(20.0);
    const Tick window = usToTick(50.0);

    ArrivalGenerator pg(arrivalConfig(ArrivalKind::Poisson));
    double poisson =
        dispersionIndex(drawUntil(pg, horizon), window, horizon);
    ArrivalGenerator bg(arrivalConfig(ArrivalKind::Bursty));
    double bursty =
        dispersionIndex(drawUntil(bg, horizon), window, horizon);

    EXPECT_LT(poisson, 2.0);
    EXPECT_GT(bursty, 3.0 * poisson);
}

TEST(ArrivalShape, DiurnalPeakOverTrough)
{
    // λ(t) = λ(1 + d sin(2πt/T)): with d = 0.75 the peak quarter of
    // the period (centred on T/4) averages ~1.68λ and the trough
    // quarter ~0.33λ — a ratio of ~5, far outside Poisson noise.
    ArrivalConfig cfg = arrivalConfig(ArrivalKind::Diurnal);
    ArrivalGenerator gen(cfg);
    const Tick T = cfg.diurnalPeriod;
    const int periods = 8;
    std::uint64_t peak = 0, trough = 0;
    for (Tick t : drawUntil(gen, periods * T)) {
        Tick phase = t % T;
        if (phase >= T / 8 && phase < 3 * T / 8)
            ++peak;
        else if (phase >= 5 * T / 8 && phase < 7 * T / 8)
            ++trough;
    }
    ASSERT_GT(trough, 0u);
    double ratio =
        static_cast<double>(peak) / static_cast<double>(trough);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 8.0);
}

// ---------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------

TEST(ArrivalValidation, BadConfigsAreFatal)
{
    ArrivalConfig cfg = arrivalConfig(ArrivalKind::Poisson, 0.0);
    EXPECT_THROW(ArrivalGenerator{cfg}, FatalError);

    cfg = arrivalConfig(ArrivalKind::Bursty);
    cfg.burstFraction = 1.5;
    EXPECT_THROW(ArrivalGenerator{cfg}, FatalError);

    cfg = arrivalConfig(ArrivalKind::Bursty);
    cfg.burstFactor = 0.5;
    EXPECT_THROW(ArrivalGenerator{cfg}, FatalError);

    cfg = arrivalConfig(ArrivalKind::Diurnal);
    cfg.diurnalDepth = 1.0;   // rate would touch zero
    EXPECT_THROW(ArrivalGenerator{cfg}, FatalError);

    EXPECT_THROW(parseArrivalKind("weekly"), FatalError);
}

// ---------------------------------------------------------------------
// Checkpoint round-trip mid-stream
// ---------------------------------------------------------------------

TEST(ArrivalSnapshot, ResumeContinuesStreamExactly)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        ArrivalConfig cfg = arrivalConfig(kind);
        ArrivalGenerator ref(cfg);
        ArrivalGenerator cut(cfg);
        // Advance both to mid-stream (inside dwells/periods), then
        // round-trip one through the serializer.
        for (int i = 0; i < 7777; ++i) {
            ref.next();
            cut.next();
        }
        SnapshotWriter w;
        cut.saveState(w.section("gen"));
        SnapshotReader r(w.serialize());
        ArrivalGenerator resumed(cfg);
        SectionReader s = r.section("gen");
        resumed.restoreState(s);
        EXPECT_EQ(resumed.generated(), cut.generated());
        for (int i = 0; i < 20000; ++i)
            ASSERT_EQ(resumed.next(), ref.next())
                << arrivalKindName(kind) << " diverged at " << i;
    }
}

// ---------------------------------------------------------------------
// Serving sweeps: jobs=1 vs jobs=N produce identical result hashes.
// ---------------------------------------------------------------------

TEST(ServingSweep, JobsOneVsManyHashIdentical)
{
    std::vector<SystemConfig> cfgs;
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        SystemConfig cfg;
        cfg.mixName = "OPENLOOP";
        cfg.numCores = 4;
        cfg.epochLen = msToTick(0.1);
        cfg.profileLen = usToTick(10.0);
        cfg.seed = 12345;
        cfg.serving.enabled = true;
        cfg.serving.arrival = arrivalConfig(kind, 1.0e6);
        cfg.serving.horizon = msToTick(0.5);
        cfgs.push_back(cfg);
    }
    auto runAll = [&](unsigned jobs) {
        SweepEngine eng(jobs);
        return eng.map<std::uint64_t>(cfgs.size(), [&](std::size_t i) {
            return hashRunResult(
                runPolicy(cfgs[i], "memscale", 150.0));
        });
    };
    std::vector<std::uint64_t> serial = runAll(1);
    std::vector<std::uint64_t> fanned = runAll(4);
    ASSERT_EQ(serial.size(), fanned.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], fanned[i]) << "config " << i;
}

// ---------------------------------------------------------------------
// Service-demand mixes: every distribution must keep the configured
// mean (so the offered *work* is shape-independent), differ only in
// spread, and stay deterministic per seed.
// ---------------------------------------------------------------------

namespace
{

struct DemandSample
{
    double mean = 0.0;
    double variance = 0.0;
    std::uint64_t min = ~0ull;
    std::uint64_t max = 0;
};

DemandSample
sampleDemand(const ServingOptions &opts, std::size_t n = 200'000,
             std::uint64_t seed = 777)
{
    Rng rng(seed);
    DemandSample s;
    double sum = 0.0;
    double sumsq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t d = drawServingDemand(opts, rng);
        sum += static_cast<double>(d);
        sumsq += static_cast<double>(d) * static_cast<double>(d);
        s.min = std::min(s.min, d);
        s.max = std::max(s.max, d);
    }
    s.mean = sum / static_cast<double>(n);
    s.variance = sumsq / static_cast<double>(n) - s.mean * s.mean;
    return s;
}

ServingOptions
demandOpts(DemandMix mix)
{
    ServingOptions o;
    o.missesPerRequest = 8.0;
    o.demandMix = mix;
    return o;
}

} // namespace

TEST(DemandMix, EveryMixPreservesTheMean)
{
    for (DemandMix mix :
         {DemandMix::Geometric, DemandMix::Fixed, DemandMix::LogNormal,
          DemandMix::TwoClass}) {
        DemandSample s = sampleDemand(demandOpts(mix));
        // 200k draws: even the heavy-tailed shapes estimate the mean
        // to well under 5%.
        EXPECT_NEAR(s.mean, 8.0, 0.4) << demandMixName(mix);
        EXPECT_GE(s.min, 1u) << demandMixName(mix);
    }
}

TEST(DemandMix, ShapesOrderBySpread)
{
    DemandSample fixed = sampleDemand(demandOpts(DemandMix::Fixed));
    DemandSample geo = sampleDemand(demandOpts(DemandMix::Geometric));
    ServingOptions two = demandOpts(DemandMix::TwoClass);
    DemandSample twoc = sampleDemand(two);

    EXPECT_DOUBLE_EQ(fixed.variance, 0.0);
    EXPECT_EQ(fixed.min, fixed.max);
    // Two-class piles mass at ~6 and ~47 misses, so it is strictly
    // more dispersed than the memoryless mix at the same mean.
    EXPECT_GT(geo.variance, 0.0);
    EXPECT_GT(twoc.variance, 2.0 * geo.variance);
}

TEST(DemandMix, LogNormalSpreadGrowsWithSigma)
{
    ServingOptions narrow = demandOpts(DemandMix::LogNormal);
    narrow.demandSigma = 0.4;
    ServingOptions wide = demandOpts(DemandMix::LogNormal);
    wide.demandSigma = 1.2;

    DemandSample n = sampleDemand(narrow);
    DemandSample w = sampleDemand(wide);
    // Same mean by construction (mu = ln(mean) - sigma^2/2) ...
    EXPECT_NEAR(n.mean, 8.0, 0.4);
    EXPECT_NEAR(w.mean, 8.0, 0.8);
    // ... but the multiplicative spread is sigma's knob alone.
    EXPECT_GT(w.variance, 3.0 * n.variance);
    EXPECT_GT(w.max, n.max);
}

TEST(DemandMix, TwoClassHeavyFractionRealized)
{
    ServingOptions o = demandOpts(DemandMix::TwoClass);
    o.heavyFraction = 0.05;
    o.heavyMultiplier = 8.0;
    // light mean = 8/1.35 ~ 5.9, heavy mean ~ 47.4: a threshold at
    // 4x the light mean cleanly separates the classes.
    Rng rng(31337);
    const std::size_t n = 200'000;
    std::size_t heavy = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (drawServingDemand(o, rng) > 24)
            ++heavy;
    const double frac = static_cast<double>(heavy) /
                        static_cast<double>(n);
    // The heavy class lands above the threshold with prob ~0.6 and
    // the light class below with prob ~0.98; the observed fraction
    // sits near p * P(heavy above) ~ 0.03.
    EXPECT_GT(frac, 0.015);
    EXPECT_LT(frac, 0.05);
}

TEST(DemandMix, DeterministicPerSeedAndNamedRoundTrip)
{
    for (DemandMix mix :
         {DemandMix::Geometric, DemandMix::Fixed, DemandMix::LogNormal,
          DemandMix::TwoClass}) {
        ServingOptions o = demandOpts(mix);
        Rng a(9), b(9);
        for (int i = 0; i < 1000; ++i)
            ASSERT_EQ(drawServingDemand(o, a), drawServingDemand(o, b))
                << demandMixName(mix) << " diverged at " << i;
        EXPECT_EQ(parseDemandMix(demandMixName(mix)), mix);
    }
    // fixedDemand predates the enum and overrides it.
    ServingOptions legacy = demandOpts(DemandMix::LogNormal);
    legacy.fixedDemand = true;
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(drawServingDemand(legacy, rng), 8u);
}
