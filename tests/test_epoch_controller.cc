/**
 * @file
 * Epoch-controller tests: profiling/decision/settlement cadence,
 * snapshot delta arithmetic, and policy invocation, using a counting
 * stub policy over a minimal live system.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.hh"
#include "memscale/epoch_controller.hh"
#include "workload/trace_source.hh"

using namespace memscale;

namespace
{

/** Policy stub that records invocations and returns a fixed choice. */
class RecordingPolicy : public Policy
{
  public:
    std::string name() const override { return "recording"; }
    bool dynamic() const override { return true; }

    FreqIndex
    selectFrequency(const ProfileData &profile,
                    const PolicyContext &, FreqIndex current) override
    {
        profiles.push_back(profile);
        return choice == kKeep ? current : choice;
    }

    void
    endEpoch(const ProfileData &epoch, const PolicyContext &) override
    {
        epochs.push_back(epoch);
    }

    static constexpr FreqIndex kKeep = 0xffff;
    FreqIndex choice = kKeep;
    std::vector<ProfileData> profiles;
    std::vector<ProfileData> epochs;
};

struct EpochHarness
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc;
    AppProfile app;
    std::unique_ptr<SyntheticTraceSource> src;
    std::unique_ptr<Core> core;
    RecordingPolicy policy;
    PolicyContext ctx;

    EpochHarness() : mc(eq, cfg)
    {
        app.name = "stub";
        app.phases.push_back(AppPhase{2.0, 0.2, 1.0, 0.5, 0});
        app.footprintBytes = 8ull << 20;
        src = std::make_unique<SyntheticTraceSource>(app, 0, 64, 5);
        CoreParams cp;
        cp.instrBudget = 1ull << 60;   // run forever
        core = std::make_unique<Core>(eq, 0, *src, mc, cp);
        ctx.epochLen = usToTick(100.0);
        ctx.profileLen = usToTick(10.0);
    }
};

} // namespace

TEST(EpochController, EpochCadence)
{
    EpochHarness h;
    EpochController ec(h.eq, h.mc, {h.core.get()}, h.policy, h.ctx);
    h.core->start();
    ec.start();
    h.eq.runUntil(usToTick(1000.0));
    // 1 ms / 100 us epochs: about 10 epochs; profiling precedes each.
    EXPECT_GE(ec.epochs(), 8u);
    EXPECT_LE(ec.epochs(), 11u);
    EXPECT_GE(h.policy.profiles.size(), ec.epochs());
}

TEST(EpochController, ProfileWindowLength)
{
    EpochHarness h;
    EpochController ec(h.eq, h.mc, {h.core.get()}, h.policy, h.ctx);
    h.core->start();
    ec.start();
    h.eq.runUntil(usToTick(500.0));
    ASSERT_FALSE(h.policy.profiles.empty());
    for (const ProfileData &p : h.policy.profiles)
        EXPECT_EQ(p.windowLen, usToTick(10.0));
}

TEST(EpochController, EpochDeltaCoversWholeQuantum)
{
    EpochHarness h;
    EpochController ec(h.eq, h.mc, {h.core.get()}, h.policy, h.ctx);
    h.core->start();
    ec.start();
    h.eq.runUntil(usToTick(500.0));
    ASSERT_FALSE(h.policy.epochs.empty());
    for (const ProfileData &e : h.policy.epochs) {
        EXPECT_GE(e.windowLen, h.ctx.epochLen);
        ASSERT_EQ(e.cores.size(), 1u);
        EXPECT_GT(e.cores[0].tic, 0u);
        EXPECT_GT(e.cores[0].tlm, 0u);
    }
}

TEST(EpochController, AppliesPolicyChoice)
{
    EpochHarness h;
    h.policy.choice = 7;   // 333 MHz
    EpochController ec(h.eq, h.mc, {h.core.get()}, h.policy, h.ctx);
    h.core->start();
    ec.start();
    h.eq.runUntil(usToTick(300.0));
    EXPECT_EQ(h.mc.busMHz(), 333u);
    ASSERT_FALSE(ec.history().empty());
    EXPECT_EQ(ec.history().back().busMHz, 333u);
}

TEST(EpochController, HistoryHasMeasurements)
{
    EpochHarness h;
    EpochController ec(h.eq, h.mc, {h.core.get()}, h.policy, h.ctx);
    h.core->start();
    ec.start();
    h.eq.runUntil(usToTick(500.0));
    ASSERT_GE(ec.history().size(), 3u);
    for (const EpochRecord &r : ec.history()) {
        EXPECT_GT(r.end, r.start);
        ASSERT_EQ(r.coreCpi.size(), 1u);
        EXPECT_GT(r.coreCpi[0], 0.9);   // base CPI 1.0 + memory time
        EXPECT_GT(r.channelUtil, 0.0);
    }
}

TEST(EpochController, CountersMonotonic)
{
    EpochHarness h;
    EpochController ec(h.eq, h.mc, {h.core.get()}, h.policy, h.ctx);
    h.core->start();
    ec.start();
    h.eq.runUntil(usToTick(500.0));
    for (const ProfileData &e : h.policy.epochs) {
        EXPECT_GE(e.mc.reads + e.mc.writes, e.cores[0].tlm / 2);
        EXPECT_GE(e.mc.btc, 1u);
    }
}
