/**
 * @file
 * Memory controller + channel scheduler tests: exact service latencies
 * at multiple frequencies, row-buffer management, bank/bus contention,
 * writeback priority, powerdown, re-lock stalls, refresh, and the
 * MemScale counter semantics.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mem/client.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

struct Harness
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc;
    LambdaClients clients;

    explicit Harness(FreqIndex f = nominalFreqIndex,
                     MemConfig c = MemConfig())
        : cfg(c), mc(eq, cfg, f)
    {
    }

    /** Issue a read with a lambda completion (pooled adapter). */
    template <typename F>
    void
    read(Addr a, CoreId core, F fn)
    {
        mc.read(a, core, clients.add(std::move(fn)));
    }

    /** Address of (channel, rank, bank, row, column). */
    Addr
    at(std::uint32_t ch, std::uint32_t rank, std::uint32_t bank,
       std::uint64_t row, std::uint64_t col = 0)
    {
        DecodedAddr d;
        d.channel = ch;
        d.rank = rank;
        d.bank = bank;
        d.row = row;
        d.column = col;
        return mc.addressMap().encode(d);
    }

    Tick
    readAndWait(Addr a)
    {
        Tick done = 0;
        read(a, 0, [&](Tick t) { done = t; });
        eq.runUntil();
        return done;
    }
};

/** Uncontended closed-bank read service time at a frequency. */
Tick
closedReadLatency(FreqIndex f)
{
    const TimingParams &tp = TimingParams::at(f);
    return tp.tMC + tp.tRCD + tp.tCL + tp.tBURST;
}

} // namespace

TEST(Channel, UncontendedClosedReadLatency800)
{
    Harness h;
    Tick done = h.readAndWait(h.at(0, 0, 0, 5));
    // tMC(3.125ns) + tRCD(15) + tCL(15) + tBURST(5) = 38.125 ns.
    EXPECT_EQ(done, closedReadLatency(0));
    EXPECT_EQ(done, nsToTick(38.125));
}

TEST(Channel, UncontendedClosedReadLatency200)
{
    Harness h(9);
    Tick done = h.readAndWait(h.at(0, 0, 0, 5));
    // tMC(12.5ns) + tRCD(15) + tCL(15) + tBURST(20) = 62.5 ns.
    EXPECT_EQ(done, closedReadLatency(9));
    EXPECT_EQ(done, nsToTick(62.5));
}

class ChannelLatencySweep : public ::testing::TestWithParam<FreqIndex>
{
};

TEST_P(ChannelLatencySweep, MatchesAnalyticalServiceTime)
{
    Harness h(GetParam());
    Tick done = h.readAndWait(h.at(0, 0, 0, 1));
    EXPECT_EQ(done, closedReadLatency(GetParam()));
}

TEST_P(ChannelLatencySweep, LatencyMonotoneInFrequency)
{
    // Lower frequency (higher index) must never be faster.
    FreqIndex f = GetParam();
    if (f == 0)
        return;
    EXPECT_GE(closedReadLatency(f), closedReadLatency(f - 1));
}

INSTANTIATE_TEST_SUITE_P(AllFrequencies, ChannelLatencySweep,
                         ::testing::Range(FreqIndex(0),
                                          numFreqPoints));

TEST(Channel, RowHitWhenQueuedTogether)
{
    Harness h;
    Tick done1 = 0, done2 = 0;
    h.read(h.at(0, 0, 0, 7, 0), 0, [&](Tick t) { done1 = t; });
    h.read(h.at(0, 0, 0, 7, 1), 1, [&](Tick t) { done2 = t; });
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.cbmc, 1u);
    EXPECT_EQ(c.rbhc, 1u);   // second access hits the open row
    // Hit skips precharge+activate: much closer than a full reopen.
    EXPECT_LT(done2 - done1, TimingParams::at(0).tRCD +
                                 TimingParams::at(0).tRP);
    EXPECT_GT(done2, done1);
}

TEST(Channel, ClosedPageClosesWithoutPendingHit)
{
    Harness h;
    // Same row, but issued strictly one after the other: the row is
    // closed in between (closed-page), so both are closed-bank misses.
    Tick done1 = h.readAndWait(h.at(0, 0, 0, 7, 0));
    h.eq.runUntil(done1 + usToTick(1.0));
    h.read(h.at(0, 0, 0, 7, 1), 0, [](Tick) {});
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.cbmc, 2u);
    EXPECT_EQ(c.rbhc, 0u);
}

TEST(Channel, OpenMissPaysPrecharge)
{
    Harness h;
    // Three requests to one bank: first opens row A (kept open for the
    // third, which matches row A), second wants row B -> open miss.
    Tick d2 = 0, d3 = 0;
    h.read(h.at(0, 0, 0, 1, 0), 0, [](Tick) {});
    h.read(h.at(0, 0, 0, 2, 0), 1, [&](Tick t) { d2 = t; });
    h.read(h.at(0, 0, 0, 1, 1), 2, [&](Tick t) { d3 = t; });
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    // Row 1 is held open for the third request, so the second (row 2)
    // pays an open-row miss; the third finds the bank precharged
    // again because row 2 had no pending match.
    EXPECT_EQ(c.cbmc, 2u);
    EXPECT_EQ(c.obmc, 1u);
    EXPECT_GT(d3, d2);
}

TEST(Channel, BankConflictSerializes)
{
    Harness h;
    Tick d1 = 0, d2 = 0;
    h.read(h.at(0, 0, 0, 1), 0, [&](Tick t) { d1 = t; });
    h.read(h.at(0, 0, 0, 2), 1, [&](Tick t) { d2 = t; });
    h.eq.runUntil();
    // Second request waits for the first's full access + precharge.
    const TimingParams &tp = TimingParams::at(0);
    EXPECT_GE(d2 - d1, tp.tRP + tp.tRCD);
}

TEST(Channel, ChannelsAreParallel)
{
    Harness h;
    Tick d1 = 0, d2 = 0;
    h.read(h.at(0, 0, 0, 1), 0, [&](Tick t) { d1 = t; });
    h.read(h.at(1, 0, 0, 1), 1, [&](Tick t) { d2 = t; });
    h.eq.runUntil();
    EXPECT_EQ(d1, d2);   // independent channels, identical timing
}

TEST(Channel, BusSerializesBanksOfOneChannel)
{
    Harness h;
    Tick d1 = 0, d2 = 0;
    h.read(h.at(0, 0, 0, 1), 0, [&](Tick t) { d1 = t; });
    h.read(h.at(0, 0, 1, 1), 1, [&](Tick t) { d2 = t; });
    h.eq.runUntil();
    // Bank work overlaps; bursts serialize on the data bus.  The
    // second finishes one burst after the first (plus the rank tRRD
    // offset on the activates).
    const TimingParams &tp = TimingParams::at(0);
    EXPECT_GE(d2 - d1, tp.tBURST);
    EXPECT_LE(d2 - d1, tp.tBURST + tp.tRRD);
}

TEST(Channel, WritebacksYieldToReads)
{
    Harness h;
    // A writeback alone (no reads pending) proceeds immediately.
    h.mc.writeback(h.at(0, 0, 0, 3), 0);
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.writes, 1u);
}

TEST(Channel, WriteQueueDrainsAtHalfFull)
{
    Harness h;
    // Keep reads flowing to one bank while posting writes to another;
    // writes must still complete once the queue hits half depth.
    for (std::uint32_t i = 0; i < h.cfg.writeQueueDepth; ++i)
        h.mc.writeback(h.at(0, 0, 1, 100 + i), 0);
    h.read(h.at(0, 0, 0, 1), 0, [](Tick) {});
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.writes, h.cfg.writeQueueDepth);
    EXPECT_EQ(c.reads, 1u);
}

TEST(Channel, QueueCountersSeeOutstandingWork)
{
    Harness h;
    h.read(h.at(0, 0, 0, 1), 0, [](Tick) {});
    h.read(h.at(0, 0, 0, 2), 1, [](Tick) {});
    h.read(h.at(0, 0, 0, 3), 2, [](Tick) {});
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.btc, 3u);
    // Arrivals saw 0, 1, 2 requests already at the bank.
    EXPECT_EQ(c.bto, 3u);
    EXPECT_EQ(c.ctc, 3u);
    EXPECT_NEAR(c.xiBank(), 2.0, 1e-12);
}

TEST(Channel, PowerdownEntryAndExit)
{
    Harness h;
    h.mc.setPowerdownMode(PowerdownMode::FastExit);
    Tick d1 = h.readAndWait(h.at(0, 0, 0, 1));
    // After idling, the rank sits in precharge powerdown.
    h.eq.runUntil(d1 + usToTick(1.0));
    IntervalActivity ia = h.mc.sampleActivity();
    EXPECT_GT(ia.ranks[0].prePowerdownTime, 0u);
    // The next read pays the tXP exit and counts one more EPDC (the
    // first read already exited the powerdown entered when the mode
    // was switched on with an idle rank).
    McCounters before = h.mc.sampleCounters();
    Tick start = h.eq.now();
    Tick d2 = 0;
    h.read(h.at(0, 0, 0, 2), 0, [&](Tick t) { d2 = t; });
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.epdc - before.epdc, 1u);
    EXPECT_GE(d2 - start,
              closedReadLatency(0) + TimingParams::at(0).tXP -
                  TimingParams::at(0).tMC);
}

TEST(Channel, SlowExitCostsMore)
{
    auto exit_latency = [](PowerdownMode mode) {
        Harness h;
        h.mc.setPowerdownMode(mode);
        Tick d1 = h.readAndWait(h.at(0, 0, 0, 1));
        h.eq.runUntil(d1 + usToTick(1.0));
        Tick start = h.eq.now();
        Tick d2 = 0;
        h.read(h.at(0, 0, 0, 2), 0, [&](Tick t) { d2 = t; });
        h.eq.runUntil();
        return d2 - start;
    };
    Tick fast = exit_latency(PowerdownMode::FastExit);
    Tick slow = exit_latency(PowerdownMode::SlowExit);
    EXPECT_EQ(slow - fast,
              TimingParams::at(0).tXPDLL - TimingParams::at(0).tXP);
}

TEST(Channel, FrequencyChangeStallsAndApplies)
{
    Harness h;
    bool hook_called = false;
    h.mc.setBeforeFreqChangeHook([&] { hook_called = true; });
    Tick resume = h.mc.setFrequency(5);   // 467 MHz
    EXPECT_TRUE(hook_called);
    EXPECT_EQ(h.mc.busMHz(), 467u);
    EXPECT_GE(resume, TimingParams::at(5).tRELOCK);
    // A read issued during the stall completes only after it.
    Tick done = 0;
    h.read(h.at(0, 0, 0, 1), 0, [&](Tick t) { done = t; });
    h.eq.runUntil();
    EXPECT_GE(done, resume);
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.freqTransitions, 1u);
    EXPECT_GT(c.relockStallTime, 0u);
}

TEST(Channel, SameFrequencyIsNoop)
{
    Harness h;
    bool hook_called = false;
    h.mc.setBeforeFreqChangeHook([&] { hook_called = true; });
    h.mc.setFrequency(nominalFreqIndex);
    EXPECT_FALSE(hook_called);
    EXPECT_EQ(h.mc.sampleCounters().freqTransitions, 0u);
}

TEST(Channel, RefreshRuns)
{
    Harness h;
    h.mc.startRefresh();
    h.eq.runUntil(usToTick(20.0));
    IntervalActivity ia = h.mc.sampleActivity();
    std::uint64_t refreshes = 0;
    for (const RankActivity &r : ia.ranks)
        refreshes += r.refreshes;
    // tREFI = 7.8 us: every rank refreshed at least once in 20 us.
    EXPECT_GE(refreshes, static_cast<std::uint64_t>(ia.ranks.size()));
    h.eq.cancel(InvalidEventId);
}

TEST(Channel, RefreshDelaysColocatedRead)
{
    Harness h;
    h.mc.startRefresh();
    // Find a moment just after a refresh starts and issue a read.
    h.eq.runUntil(usToTick(2.0));
    Tick start = h.eq.now();
    Tick done = 0;
    h.read(h.at(0, 0, 0, 1), 0, [&](Tick t) { done = t; });
    h.eq.runUntil(start + usToTick(5.0));
    ASSERT_GT(done, 0u);
    // Latency is at least the uncontended time; not absurdly more.
    EXPECT_GE(done - start, closedReadLatency(0));
}

TEST(Channel, DecoupledAddsLatencyButKeepsChannelRate)
{
    Harness base, dec;
    dec.mc.setDecoupled(400);
    Tick t_base = base.readAndWait(base.at(0, 0, 0, 1));
    Tick t_dec = dec.readAndWait(dec.at(0, 0, 0, 1));
    EXPECT_GT(t_dec, t_base);
    // Far cheaper than actually running the channel at 400 MHz.
    Harness slow(6);   // 400 MHz grid point
    Tick t_slow = slow.readAndWait(slow.at(0, 0, 0, 1));
    EXPECT_LT(t_dec - t_base, t_slow - t_base);
}

TEST(Channel, PendingTracksOutstanding)
{
    Harness h;
    EXPECT_EQ(h.mc.pending(), 0u);
    h.read(h.at(0, 0, 0, 1), 0, [](Tick) {});
    h.mc.writeback(h.at(1, 0, 0, 1), 0);
    EXPECT_EQ(h.mc.pending(), 2u);
    h.eq.runUntil();
    EXPECT_EQ(h.mc.pending(), 0u);
}

TEST(Channel, ReadLatencyCounterAccumulates)
{
    Harness h;
    h.readAndWait(h.at(0, 0, 0, 1));
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.readLatencyTotal, closedReadLatency(0));
}

TEST(Channel, BurstTimeAccounting)
{
    Harness h;
    h.readAndWait(h.at(0, 0, 0, 1));
    h.readAndWait(h.at(1, 0, 0, 1));
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.busBusyTime, 2 * TimingParams::at(0).tBURST);
}
