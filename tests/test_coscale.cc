/**
 * @file
 * Coordinated CPU+memory DVFS tests: core re-clocking mechanics, the
 * CPU power model, CPU energy integration, and end-to-end CoScale
 * behaviour.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.hh"
#include "harness/experiment.hh"
#include "memscale/policies/coscale_policy.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

class ScriptedSource : public TraceSource
{
  public:
    std::deque<TraceChunk> chunks;

    bool
    next(TraceChunk &chunk) override
    {
        if (chunks.empty())
            return false;
        chunk = chunks.front();
        chunks.pop_front();
        return true;
    }
};

SystemConfig
smallConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 1'000'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    cfg.modelCpuPower = true;
    return cfg;
}

} // namespace

TEST(CpuPowerModel, VsquaredFScaling)
{
    PowerParams pp;
    // Busy at nominal: full peak.
    EXPECT_NEAR(pp.cpuCorePower(4.0, 1.0), pp.cpuCorePeakW, 1e-9);
    // Idle at nominal: static share only.
    EXPECT_NEAR(pp.cpuCorePower(4.0, 0.0),
                pp.cpuStaticFrac * pp.cpuCorePeakW, 1e-9);
    // Scaling down wins superlinearly on the dynamic share.
    double lo = pp.cpuCorePower(2.0, 1.0);
    double linear = pp.cpuCorePeakW * (1.0 - pp.cpuStaticFrac) * 0.5 +
                    pp.cpuStaticFrac * pp.cpuCorePeakW;
    EXPECT_LT(lo, linear);
    EXPECT_GT(lo, 0.0);
}

TEST(CoreDvfs, ReclockingStretchesCompute)
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc(eq, cfg);
    ScriptedSource src;
    TraceChunk c;
    c.instructions = 1000;
    c.cpi = 1.0;
    c.missAddr = 0;
    src.chunks.push_back(c);
    CoreParams cp;
    cp.instrBudget = 1001;
    cp.runPastBudget = false;
    Core core(eq, 0, src, mc, cp);
    core.setFrequencyGHz(2.0);   // half speed: 1000 instr in 500 ns
    core.start();
    eq.runUntil();
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.doneAt(), nsToTick(500.0 + 38.125));
    // Reported CPI stays normalized to the nominal 4 GHz clock.
    EXPECT_NEAR(core.budgetCpi(),
                tickToSec(core.doneAt()) * 4e9 / 1001.0, 1e-9);
}

TEST(CoreDvfs, BadFrequencyPanics)
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc(eq, cfg);
    ScriptedSource src;
    CoreParams cp;
    Core core(eq, 0, src, mc, cp);
    EXPECT_DEATH(core.setFrequencyGHz(0.0), "non-positive");
}

TEST(CoScale, PolicyRegistered)
{
    auto p = makePolicy("coscale");
    EXPECT_TRUE(p->dynamic());
    EXPECT_EQ(p->name(), "coscale");
    EXPECT_DOUBLE_EQ(p->selectedCpuGHz(), 0.0);
}

TEST(CoScale, CpuEnergyTracked)
{
    SystemConfig cfg = smallConfig("MID1");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    EXPECT_GT(base.energy.cpu, 0.0);
    // 16 cores at <= 3 W: a plausible average power band.
    double cpu_w = base.energy.cpu / tickToSec(base.runtime);
    EXPECT_GT(cpu_w, 5.0);
    EXPECT_LT(cpu_w, 48.0);
    // Calibration keeps the memory fraction on target.
    EXPECT_NEAR(base.avgMemPower / base.avgSystemPower,
                cfg.memPowerFraction, 0.01);
}

TEST(CoScale, SavesAtLeastAsMuchAsMemScale)
{
    SystemConfig cfg = smallConfig("MID2");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult ms = compareWithBase(cfg, base, rest, "memscale");
    ComparisonResult co = compareWithBase(cfg, base, rest, "coscale");
    EXPECT_GT(co.sysEnergySavings, ms.sysEnergySavings - 0.02);
    EXPECT_LE(co.worstCpiIncrease, cfg.gamma + 0.02);
}

TEST(CoScale, CpuEnergyNeverWorseThanMemScale)
{
    // Adding the CPU dimension can only help the CPU-energy term:
    // wherever memscale leaves the cores at nominal, coscale may
    // scale them within the same slack.
    for (const char *mix : {"MID1", "MEM2"}) {
        SystemConfig cfg = smallConfig(mix);
        cfg.instrBudget = 2'000'000;
        Watts rest = 0.0;
        RunResult base = runBaseline(cfg, rest);
        ComparisonResult ms =
            compareWithBase(cfg, base, rest, "memscale");
        ComparisonResult co =
            compareWithBase(cfg, base, rest, "coscale");
        EXPECT_LE(co.policy.energy.cpu,
                  ms.policy.energy.cpu * 1.001)
            << mix;
        EXPECT_LE(co.worstCpiIncrease, cfg.gamma + 0.02) << mix;
    }
}

TEST(CoScale, SpendsSlackOnCpuWhenMemoryIsCheap)
{
    // ILP work leaves the memory at the floor with slack to spare;
    // the coordinated policy converts it into CPU scaling.
    SystemConfig cfg = smallConfig("ILP2");
    cfg.instrBudget = 2'000'000;
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult co = compareWithBase(cfg, base, rest, "coscale");
    ASSERT_FALSE(co.policy.timeline.empty());
    double min_ghz = 10.0;
    for (const EpochRecord &er : co.policy.timeline)
        min_ghz = std::min(min_ghz, er.cpuGHz);
    EXPECT_LT(min_ghz, 4.0);
    EXPECT_LT(co.policy.energy.cpu, base.energy.cpu);
    EXPECT_LE(co.worstCpiIncrease, cfg.gamma + 0.02);
}

TEST(CoScale, CpuZeroWhenNotModelled)
{
    SystemConfig cfg = smallConfig("MID1");
    cfg.modelCpuPower = false;
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    EXPECT_DOUBLE_EQ(base.energy.cpu, 0.0);
}
