/**
 * @file
 * Tests for the substrate extensions: open-page row management,
 * FR-FCFS scheduling, per-channel frequency control, and the
 * per-channel MemScale policy.
 */

#include <gtest/gtest.h>

#include <utility>

#include "harness/experiment.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "memscale/policies/perchannel_policy.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

struct Harness
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc;
    LambdaClients clients;

    explicit Harness(MemConfig c) : cfg(c), mc(eq, cfg) {}

    /** Issue a read with a lambda completion (pooled adapter). */
    template <typename F>
    void
    read(Addr a, CoreId core, F fn)
    {
        mc.read(a, core, clients.add(std::move(fn)));
    }

    Addr
    at(std::uint32_t ch, std::uint32_t rank, std::uint32_t bank,
       std::uint64_t row, std::uint64_t col = 0)
    {
        DecodedAddr d;
        d.channel = ch;
        d.rank = rank;
        d.bank = bank;
        d.row = row;
        d.column = col;
        return mc.addressMap().encode(d);
    }
};

} // namespace

TEST(OpenPage, RowStaysOpenAcrossIdleGaps)
{
    MemConfig cfg;
    cfg.pagePolicy = PagePolicy::OpenPage;
    Harness h(cfg);
    Tick d1 = 0;
    h.read(h.at(0, 0, 0, 7, 0), 0, [&](Tick t) { d1 = t; });
    h.eq.runUntil();
    h.eq.runUntil(d1 + usToTick(1.0));
    // The second access to the same row hits even after the idle gap
    // (closed-page would have precharged it).
    h.read(h.at(0, 0, 0, 7, 1), 0, [](Tick) {});
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.rbhc, 1u);
    EXPECT_EQ(c.cbmc, 1u);
}

TEST(OpenPage, ConflictPaysOpenMiss)
{
    MemConfig cfg;
    cfg.pagePolicy = PagePolicy::OpenPage;
    Harness h(cfg);
    Tick d1 = 0;
    h.read(h.at(0, 0, 0, 1), 0, [&](Tick t) { d1 = t; });
    h.eq.runUntil();
    h.read(h.at(0, 0, 0, 2), 0, [](Tick) {});
    h.eq.runUntil();
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.obmc, 1u);
}

TEST(FrFcfs, PromotesRowHits)
{
    MemConfig cfg;
    cfg.scheduler = SchedulerPolicy::FrFcfs;
    Harness h(cfg);
    // A opens row 1; B (row 2) and C (row 1) queue behind it.
    // FR-FCFS serves C before B.
    Tick db = 0, dc = 0;
    h.read(h.at(0, 0, 0, 1, 0), 0, [](Tick) {});
    h.read(h.at(0, 0, 0, 2, 0), 1, [&](Tick t) { db = t; });
    h.read(h.at(0, 0, 0, 1, 1), 2, [&](Tick t) { dc = t; });
    h.eq.runUntil();
    EXPECT_LT(dc, db);
    McCounters c = h.mc.sampleCounters();
    EXPECT_EQ(c.rbhc, 1u);
}

TEST(FrFcfs, FcfsKeepsArrivalOrder)
{
    MemConfig cfg;   // default FCFS
    Harness h(cfg);
    Tick db = 0, dc = 0;
    h.read(h.at(0, 0, 0, 1, 0), 0, [](Tick) {});
    h.read(h.at(0, 0, 0, 2, 0), 1, [&](Tick t) { db = t; });
    h.read(h.at(0, 0, 0, 1, 1), 2, [&](Tick t) { dc = t; });
    h.eq.runUntil();
    EXPECT_LT(db, dc);
}

TEST(PerChannelFreq, IndependentRelock)
{
    MemConfig cfg;
    Harness h(cfg);
    h.mc.setChannelFrequency(2, 9);   // channel 2 to 200 MHz
    EXPECT_EQ(h.mc.channelFrequency(2), 9u);
    EXPECT_EQ(h.mc.channelFrequency(0), 0u);
    // MC domain reports the fastest channel.
    EXPECT_EQ(h.mc.frequency(), 0u);
    EXPECT_EQ(h.mc.busMHz(), 800u);

    // Latency differs per channel accordingly.
    Tick d_fast = 0, d_slow = 0;
    h.read(h.at(0, 0, 0, 1), 0, [&](Tick t) { d_fast = t; });
    h.eq.runUntil();
    Tick t0 = h.eq.now();
    h.read(h.at(2, 0, 0, 1), 0, [&](Tick t) { d_slow = t; });
    h.eq.runUntil();
    EXPECT_GT(d_slow - t0, d_fast);
}

TEST(PerChannelFreq, ActivitySampleCarriesPerChannelClocks)
{
    MemConfig cfg;
    Harness h(cfg);
    h.mc.setChannelFrequency(1, 5);
    IntervalActivity ia = h.mc.sampleActivity();
    ASSERT_EQ(ia.channelMHz.size(), 4u);
    EXPECT_EQ(ia.channelMHz[0], 800u);
    EXPECT_EQ(ia.channelMHz[1], 467u);
}

TEST(PerChannelFreq, SetFrequencyRealignsAllChannels)
{
    MemConfig cfg;
    Harness h(cfg);
    h.mc.setChannelFrequency(1, 9);
    h.mc.setFrequency(3);
    for (std::uint32_t c = 0; c < 4; ++c)
        EXPECT_EQ(h.mc.channelFrequency(c), 3u);
}

TEST(PerChannelPolicy, RunsAndRespectsBound)
{
    SystemConfig cfg;
    cfg.mixName = "MID1";
    cfg.instrBudget = 1'000'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    ComparisonResult r = compare(cfg, "memscale-perchannel");
    EXPECT_GT(r.memEnergySavings, 0.10);
    EXPECT_LE(r.worstCpiIncrease, cfg.gamma + 0.02);
}

TEST(PerChannelPolicy, ComparableToLockstepOnSymmetricTraffic)
{
    SystemConfig cfg;
    cfg.mixName = "MID4";
    cfg.instrBudget = 1'000'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult lock =
        compareWithBase(cfg, base, rest, "memscale");
    ComparisonResult per =
        compareWithBase(cfg, base, rest, "memscale-perchannel");
    EXPECT_GT(per.sysEnergySavings, lock.sysEnergySavings - 0.05);
}

TEST(PerChannelPolicy, FactoryAndFlags)
{
    auto p = makePolicy("memscale-perchannel");
    EXPECT_TRUE(p->dynamic());
    EXPECT_EQ(p->name(), "memscale-perchannel");
}
