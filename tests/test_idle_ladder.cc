/**
 * @file
 * Property/fuzz matrix for the deep idle-state ladder (ctest label
 * `idle`): randomized traffic with hot/cold skew, randomized demotion
 * thresholds, migration-based rank consolidation, refresh, and
 * frequency re-locks — all driven through the real controller with
 * the protocol checker in STRICT mode, so the first illegal command
 * aborts the episode with full provenance and the seed that produced
 * it.
 *
 * On top of protocol cleanliness the suite pins two accounting
 * invariants the power model depends on:
 *  - residency times partition wall time per rank (the four CKE/bank
 *    quadrants sum exactly to totalTime, and the deep rungs are
 *    subsets of precharge powerdown), and
 *  - energy integrals are non-negative per window and monotone in
 *    time, for every rung the fuzzed ladder visits.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/protocol_checker.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "power/dram_power.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

/** Randomized but always-sane ladder config derived from the seed. */
MemConfig
ladderConfig(Rng &rng)
{
    MemConfig cfg;
    cfg.numChannels = 1;
    // Dwell thresholds: each rung waits 50 ns .. ~2 us beyond the
    // previous one, so episodes visit different rung mixes.
    Tick dwell = nsToTick(50.0 + double(rng.next() % 2000));
    cfg.ladder.demoteSlowPd = dwell;
    dwell += nsToTick(50.0 + double(rng.next() % 2000));
    cfg.ladder.demoteSelfRefresh = dwell;
    dwell += nsToTick(50.0 + double(rng.next() % 2000));
    cfg.ladder.demoteSrSlow = dwell;
    dwell += nsToTick(50.0 + double(rng.next() % 2000));
    cfg.ladder.demoteDeepPd = dwell;
    cfg.ladder.migrate = true;
    cfg.ladder.hotRanks =
        1 + static_cast<std::uint32_t>(
                rng.next() % (cfg.ranksPerChannel() - 1));
    cfg.ladder.migrateInterval =
        usToTick(2.0 + double(rng.next() % 20));
    cfg.ladder.maxSwapsPerInterval =
        1 + static_cast<std::uint32_t>(rng.next() % 8);
    // Promotion threshold low enough that a short episode's skewed
    // traffic actually qualifies frames for consolidation.
    cfg.ladder.hotThreshold =
        2 + static_cast<std::uint32_t>(rng.next() % 7);
    return cfg;
}

struct LadderEpisode
{
    std::string violation;     ///< empty = strict checker stayed clean
    std::uint64_t commands = 0;
    std::uint64_t demotions = 0;
    std::uint64_t swaps = 0;
    std::uint64_t relocks = 0;
    IntervalActivity activity; ///< cumulative, sampled at the end
    Tick end = 0;              ///< wall time at the final sample
};

/**
 * One fuzz episode under the STRICT checker.  Traffic is skewed: most
 * accesses hit a small hot region (so consolidation has something to
 * consolidate), the rest roam the whole address space; idle gaps are
 * long enough for ranks to walk the whole ladder.
 */
LadderEpisode
fuzzLadder(std::uint64_t seed, int ops)
{
    EventQueue eq;
    Rng rng(seed);
    MemConfig cfg = ladderConfig(rng);
    MemoryController mc(eq, cfg);
    ProtocolChecker pc(/*strict=*/true);
    mc.setCommandObserver(&pc);
    mc.startRefresh();
    mc.startMigration();
    mc.setPowerdownMode(PowerdownMode::Ladder);

    const Addr span = cfg.totalBytes();
    const Addr hot_span = span / 256;
    std::uint64_t outstanding_cb = 0;
    FnClient client([&](Tick) { --outstanding_cb; });

    LadderEpisode ep;
    try {
        for (int i = 0; i < ops; ++i) {
            switch (rng.next() % 16) {
              case 0:
                mc.setFrequency(static_cast<FreqIndex>(
                    rng.next() % numFreqPoints));
                break;
              case 1:
              case 2: {
                // Long idle gap: lets cold ranks demote all the way
                // down and migration passes fire with no traffic.
                Tick gap =
                    usToTick(1.0 + double(rng.next() % 100));
                eq.runUntil(eq.now() + gap);
                break;
              }
              default: {
                // 7/8 hot, 1/8 cold — the skew consolidation needs.
                Addr region = rng.next() % 8 ? hot_span : span;
                Addr a = (rng.next() % region) &
                         ~Addr(cfg.lineBytes - 1);
                if (rng.next() % 3 == 0) {
                    mc.writeback(a, 0);
                } else {
                    ++outstanding_cb;
                    mc.read(a, 0, &client);
                }
                if (rng.next() % 4 == 0)
                    eq.runUntil(eq.now() +
                                nsToTick(10.0 +
                                         double(rng.next() % 500)));
                break;
              }
            }
        }
        // Drain with a capped horizon (refresh/migration re-arm
        // forever); then settle so every rank is mid-residency.
        eq.runUntil(eq.now() + msToTick(5.0));
    } catch (const FatalError &e) {
        ep.violation = e.message;
        return ep;
    }

    McCounters c = mc.sampleCounters();
    ep.commands = pc.commandsChecked();
    ep.demotions = c.pdDemotions;
    ep.swaps = c.migrations;
    ep.relocks = pc.relocksSeen();
    ep.activity = mc.sampleActivity();
    ep.end = eq.now();
    EXPECT_EQ(outstanding_cb, 0u) << "seed=" << seed;
    return ep;
}

} // namespace

TEST(IdleLadderFuzz, StrictCheckerCleanAcrossSeedMatrix)
{
    const std::uint64_t base = 0x1ad2de39;
    std::uint64_t demotions = 0, swaps = 0, relocks = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        std::uint64_t seed = deriveSeed(base, i);
        LadderEpisode ep = fuzzLadder(seed, 300);
        EXPECT_EQ(ep.violation, "") << "seed=" << seed;
        EXPECT_GT(ep.commands, 100u) << "seed=" << seed;
        demotions += ep.demotions;
        swaps += ep.swaps;
        relocks += ep.relocks;
    }
    // The matrix must actually exercise what it claims to: ladder
    // walk-downs, consolidation swaps, and frequency transitions.
    EXPECT_GT(demotions, 0u);
    EXPECT_GT(swaps, 0u);
    EXPECT_GT(relocks, 0u);
}

TEST(IdleLadderFuzz, ResidencyTimesPartitionWallTime)
{
    const std::uint64_t base = 0xc01dbeef;
    for (std::uint64_t i = 0; i < 4; ++i) {
        std::uint64_t seed = deriveSeed(base, i);
        LadderEpisode ep = fuzzLadder(seed, 200);
        ASSERT_EQ(ep.violation, "") << "seed=" << seed;
        ASSERT_FALSE(ep.activity.ranks.empty());
        bool any_deep = false;
        for (std::size_t r = 0; r < ep.activity.ranks.size(); ++r) {
            const RankActivity &a = ep.activity.ranks[r];
            // The four CKE/bank quadrants partition the rank's whole
            // life, which is exactly the wall time at the sample.
            EXPECT_EQ(a.preStandbyTime + a.prePowerdownTime +
                          a.actStandbyTime + a.actPowerdownTime,
                      a.totalTime)
                << "seed=" << seed << " rank=" << r;
            EXPECT_EQ(a.totalTime, ep.end)
                << "seed=" << seed << " rank=" << r;
            // The deep rungs are disjoint refinements of precharge
            // powerdown; FastPd is the (implicit) remainder.
            EXPECT_LE(a.slowPowerdownTime + a.selfRefreshTime +
                          a.srSlowClockTime + a.deepPowerdownTime,
                      a.prePowerdownTime)
                << "seed=" << seed << " rank=" << r;
            any_deep |= a.selfRefreshTime + a.srSlowClockTime +
                            a.deepPowerdownTime >
                        0;
        }
        EXPECT_TRUE(any_deep) << "seed=" << seed
                              << ": ladder never left fast/slow PD";
    }
}

TEST(IdleLadderFuzz, EnergyIntegralsNonNegativeAndMonotone)
{
    // Fixed frequency (energy windows need one set of params), random
    // ladder thresholds, bursty traffic with long idle tails: every
    // per-window energy component must be >= 0 and the cumulative
    // integral monotone.
    const std::uint64_t base = 0x0e4e26;
    for (std::uint64_t i = 0; i < 3; ++i) {
        std::uint64_t seed = deriveSeed(base, i);
        EventQueue eq;
        Rng rng(seed);
        MemConfig cfg = ladderConfig(rng);
        MemoryController mc(eq, cfg);
        ProtocolChecker pc(/*strict=*/true);
        mc.setCommandObserver(&pc);
        mc.startRefresh();
        mc.startMigration();
        mc.setPowerdownMode(PowerdownMode::Ladder);

        const TimingParams &tp = TimingParams::at(0);
        const PowerParams pp;
        const Addr span = cfg.totalBytes();
        FnClient client([&](Tick) {});

        IntervalActivity prev = mc.sampleActivity();
        Joules cumulative = 0.0;
        for (int window = 0; window < 20; ++window) {
            // A burst of traffic then an idle tail inside each window.
            int burst = static_cast<int>(rng.next() % 40);
            for (int b = 0; b < burst; ++b) {
                Addr a = (rng.next() % span) &
                         ~Addr(cfg.lineBytes - 1);
                if (rng.next() % 3 == 0)
                    mc.writeback(a, 0);
                else
                    mc.read(a, 0, &client);
            }
            eq.runUntil(eq.now() + usToTick(20.0));

            IntervalActivity cur = mc.sampleActivity();
            Joules window_total = 0.0;
            ASSERT_EQ(cur.ranks.size(), prev.ranks.size());
            for (std::size_t r = 0; r < cur.ranks.size(); ++r) {
                RankActivity d = cur.ranks[r] - prev.ranks[r];
                EXPECT_EQ(d.totalTime, usToTick(20.0))
                    << "seed=" << seed << " window=" << window;
                RankEnergy e = rankEnergy(d, tp, pp, 0);
                EXPECT_GE(e.background, 0.0) << "seed=" << seed;
                EXPECT_GE(e.actPre, 0.0) << "seed=" << seed;
                EXPECT_GE(e.readWrite, 0.0) << "seed=" << seed;
                EXPECT_GE(e.termination, 0.0) << "seed=" << seed;
                EXPECT_GE(e.refresh, 0.0) << "seed=" << seed;
                window_total += e.total();
            }
            // Background current alone makes every window's energy
            // strictly positive — the integral is strictly monotone.
            EXPECT_GT(window_total, 0.0)
                << "seed=" << seed << " window=" << window;
            cumulative += window_total;
            EXPECT_GE(cumulative, window_total);
            prev = cur;
        }
        EXPECT_EQ(pc.violations(), 0u) << "seed=" << seed;
    }
}
