/**
 * @file
 * Cross-feature interaction tests: combinations of DVFS re-locking,
 * powerdown modes, Decoupled DIMMs, refresh, throttling, and page
 * policies that individually pass but have historically conflicting
 * state machines in real controllers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "harness/experiment.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

struct Harness
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc;

    explicit Harness(MemConfig c = MemConfig()) : cfg(c), mc(eq, cfg)
    {
    }

    Addr
    at(std::uint32_t ch, std::uint32_t rank, std::uint32_t bank,
       std::uint64_t row)
    {
        DecodedAddr d;
        d.channel = ch;
        d.rank = rank;
        d.bank = bank;
        d.row = row;
        return mc.addressMap().encode(d);
    }

    std::uint64_t
    blast(int n, std::uint64_t seed = 5)
    {
        Rng rng(seed);
        std::uint64_t done = 0;
        FnClient client([&done](Tick) { ++done; });
        for (int i = 0; i < n; ++i) {
            Addr a = (rng.next() % cfg.totalBytes()) & ~Addr(63);
            if (rng.chance(0.25))
                mc.writeback(a, 0);
            else
                mc.read(a, 0, &client);
        }
        eq.runUntil();
        return done;
    }
};

} // namespace

TEST(Interaction, DvfsDuringPowerdown)
{
    Harness h;
    h.mc.setPowerdownMode(PowerdownMode::FastExit);
    h.blast(50);
    h.eq.runUntil(h.eq.now() + usToTick(2.0));
    // Ranks are asleep; re-locking must wake, relock, and resume.
    h.mc.setFrequency(7);
    std::uint64_t done = h.blast(50, 6);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(h.mc.busMHz(), 333u);
    EXPECT_EQ(h.mc.pending(), 0u);
}

TEST(Interaction, DvfsWithDecoupledDevices)
{
    Harness h;
    h.mc.setDecoupled(400);
    h.mc.setFrequency(3);   // channel 600 MHz, devices stay at 400
    std::uint64_t done = h.blast(100);
    EXPECT_GT(done, 0u);
    IntervalActivity ia = h.mc.sampleActivity();
    EXPECT_EQ(ia.deviceBusMHz, 400u);
    EXPECT_EQ(ia.busMHz, 600u);
}

TEST(Interaction, ThrottlePlusLowFrequency)
{
    MemConfig cfg;
    Harness h(cfg);
    h.mc.setFrequency(9);
    h.mc.setThrottle(0.5);
    std::uint64_t done = h.blast(200);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(h.mc.pending(), 0u);
}

TEST(Interaction, RefreshAcrossRelock)
{
    Harness h;
    h.mc.startRefresh();
    // Re-lock mid-refresh-schedule repeatedly; refresh must survive.
    for (FreqIndex f : {FreqIndex(5), FreqIndex(9), FreqIndex(0)}) {
        h.mc.setFrequency(f);
        h.eq.runUntil(h.eq.now() + usToTick(20.0));
    }
    IntervalActivity ia = h.mc.sampleActivity();
    std::uint64_t refreshes = 0;
    for (const RankActivity &r : ia.ranks)
        refreshes += r.refreshes;
    // ~60 us elapsed, 16 ranks, tREFI 7.8 us: expect dozens.
    EXPECT_GT(refreshes, 50u);
}

TEST(Interaction, SelfRefreshRanksSkipExternalRefresh)
{
    Harness h;
    h.mc.setPowerdownMode(PowerdownMode::SelfRefresh);
    h.mc.startRefresh();
    // Fully idle: all ranks drop into self-refresh and stay there.
    h.eq.runUntil(usToTick(50.0));
    IntervalActivity ia = h.mc.sampleActivity();
    std::uint64_t ext_refreshes = 0;
    Tick sr_time = 0;
    for (const RankActivity &r : ia.ranks) {
        ext_refreshes += r.refreshes;
        sr_time += r.selfRefreshTime;
    }
    EXPECT_EQ(ext_refreshes, 0u);
    EXPECT_GT(sr_time, 0u);
}

TEST(Interaction, OpenPageWithPowerdown)
{
    MemConfig cfg;
    cfg.pagePolicy = PagePolicy::OpenPage;
    Harness h(cfg);
    h.mc.setPowerdownMode(PowerdownMode::FastExit);
    std::uint64_t done = h.blast(100);
    EXPECT_GT(done, 0u);
    // Open rows keep their ranks out of precharge powerdown; the
    // touched ranks must show active (not powerdown) residency.
    h.eq.runUntil(h.eq.now() + usToTick(5.0));
    IntervalActivity ia = h.mc.sampleActivity();
    Tick act = 0;
    for (const RankActivity &r : ia.ranks)
        act += r.actStandbyTime;
    EXPECT_GT(act, 0u);
}

TEST(Interaction, BackToBackRelocks)
{
    Harness h;
    Tick r1 = h.mc.setFrequency(5);
    Tick r2 = h.mc.setFrequency(9);
    Tick r3 = h.mc.setFrequency(1);
    EXPECT_GT(r2, r1);
    EXPECT_GT(r3, r2);
    std::uint64_t done = h.blast(50);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(h.mc.sampleCounters().freqTransitions, 3u);
}

TEST(Interaction, PerChannelFreqWithDecoupled)
{
    Harness h;
    h.mc.setDecoupled(400);
    h.mc.setChannelFrequency(0, 5);
    std::uint64_t done = h.blast(100);
    EXPECT_GT(done, 0u);
}

TEST(Interaction, DecoupledPolicyUnderMemScaleHarness)
{
    // Decoupled is static, but must coexist with epoch machinery when
    // a dynamic policy is later swapped in on a fresh system.
    SystemConfig cfg;
    cfg.mixName = "MID1";
    cfg.instrBudget = 400'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult dec =
        compareWithBase(cfg, base, rest, "decoupled");
    ComparisonResult ms = compareWithBase(cfg, base, rest, "memscale");
    EXPECT_GT(dec.memEnergySavings, 0.0);
    EXPECT_GT(ms.memEnergySavings, dec.memEnergySavings);
}

TEST(Interaction, WriteHeavyStorm)
{
    Harness h;
    // Saturate the write path across every channel; nothing may wedge.
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        Addr a = (rng.next() % h.cfg.totalBytes()) & ~Addr(63);
        h.mc.writeback(a, 0);
    }
    h.eq.runUntil();
    EXPECT_EQ(h.mc.pending(), 0u);
    EXPECT_EQ(h.mc.sampleCounters().writes, 2000u);
}

// ---------------------------------------------------------------------
// Serving x deep-idle ladder x page migration, STRICT-checked: the
// open-loop front end drives real traffic through a controller whose
// ranks walk the demotion ladder and whose migrator swaps frames
// behind the remap — the three features with the most historically
// conflicting state machines.  The strict checker turns the first
// illegal DDR3 command into a FatalError, so a pass means the whole
// fuzzed matrix replayed protocol-clean.
// ---------------------------------------------------------------------

namespace
{

/** Seed-fuzzed but always-sane ladder + migration mem config. */
MemConfig
servingLadderConfig(Rng &rng)
{
    MemConfig cfg;
    Tick dwell = nsToTick(50.0 + double(rng.next() % 1500));
    cfg.ladder.demoteSlowPd = dwell;
    dwell += nsToTick(50.0 + double(rng.next() % 1500));
    cfg.ladder.demoteSelfRefresh = dwell;
    dwell += nsToTick(50.0 + double(rng.next() % 1500));
    cfg.ladder.demoteSrSlow = dwell;
    dwell += nsToTick(50.0 + double(rng.next() % 1500));
    cfg.ladder.demoteDeepPd = dwell;
    cfg.ladder.migrate = true;
    cfg.ladder.hotRanks =
        1 + static_cast<std::uint32_t>(
                rng.next() % (cfg.ranksPerChannel() - 1));
    cfg.ladder.migrateInterval =
        usToTick(2.0 + double(rng.next() % 20));
    cfg.ladder.maxSwapsPerInterval =
        1 + static_cast<std::uint32_t>(rng.next() % 8);
    cfg.ladder.hotThreshold =
        2 + static_cast<std::uint32_t>(rng.next() % 7);
    return cfg;
}

} // namespace

TEST(Interaction, ServingLadderMigrationStrictMatrix)
{
    // 6 fuzzed episodes cycling arrival processes and demand mixes;
    // rates low enough that idle gaps let ranks demote all the way
    // down while requests keep arriving and frames keep migrating.
    const ArrivalKind kinds[] = {ArrivalKind::Poisson,
                                 ArrivalKind::Bursty,
                                 ArrivalKind::Diurnal};
    const DemandMix mixes[] = {DemandMix::Geometric,
                               DemandMix::LogNormal,
                               DemandMix::TwoClass};
    std::uint64_t demotions = 0;
    std::uint64_t swaps = 0;
    for (std::uint64_t ep = 0; ep < 6; ++ep) {
        Rng rng(deriveSeed(0x5EAF00D, ep));
        SystemConfig cfg;
        cfg.mixName = "OPENLOOP-LADDER";
        cfg.numCores = 4;
        cfg.epochLen = msToTick(0.1);
        cfg.profileLen = usToTick(10.0);
        cfg.seed = 1000 + ep;
        cfg.mem = servingLadderConfig(rng);
        cfg.protocolCheck = true;
        cfg.strictCheck = true;
        cfg.serving.enabled = true;
        cfg.serving.arrival.kind = kinds[ep % 3];
        cfg.serving.arrival.ratePerSec =
            0.1e6 * (1.0 + double(rng.next() % 4));
        cfg.serving.demandMix = mixes[ep % 3];
        cfg.serving.horizon = msToTick(0.5);

        auto policy = makePolicy("memscale-ladder");
        System sys(cfg, *policy);
        RunResult r;
        ASSERT_NO_THROW(r = sys.run()) << "episode " << ep;

        EXPECT_GT(r.commandsChecked, 0u) << "episode " << ep;
        EXPECT_EQ(r.protocolViolations, 0u)
            << "episode " << ep << ": "
            << (r.protocolViolationSamples.empty()
                    ? ""
                    : r.protocolViolationSamples.front());
        EXPECT_TRUE(r.serving.valid);
        EXPECT_EQ(r.serving.arrived,
                  r.serving.completed + r.serving.dropped +
                      r.serving.queuedAtEnd +
                      r.serving.inServiceAtEnd)
            << "episode " << ep;
        demotions += r.counters.pdDemotions;
        swaps += r.counters.migrations;
    }
    // The matrix must actually exercise both machines, not merely
    // survive them.
    EXPECT_GT(demotions, 0u);
    EXPECT_GT(swaps, 0u);
}
