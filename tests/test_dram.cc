/**
 * @file
 * Unit tests for DDR3 timing parameters and the rank state machine:
 * frequency scaling laws, tRRD/tFAW enforcement, background-state time
 * integration, powerdown accounting.
 */

#include <gtest/gtest.h>

#include "dram/rank.hh"
#include "dram/timing.hh"

using namespace memscale;

TEST(Timing, GridIsComplete)
{
    ASSERT_EQ(numFreqPoints, 10u);
    EXPECT_EQ(busFreqGridMHz.front(), 800u);
    EXPECT_EQ(busFreqGridMHz.back(), 200u);
    for (FreqIndex i = 0; i < numFreqPoints; ++i)
        EXPECT_EQ(TimingParams::at(i).busMHz, busFreqGridMHz[i]);
}

TEST(Timing, Nominal800)
{
    const TimingParams &tp = TimingParams::at(nominalFreqIndex);
    EXPECT_EQ(tp.tCK, 1250u);
    EXPECT_EQ(tp.tCKMC, 625u);             // MC at 2x bus
    EXPECT_EQ(tp.tBURST, 4 * 1250u);       // 4 bus cycles
    EXPECT_EQ(tp.tMC, 5 * 625u);           // 5 MC cycles
    EXPECT_EQ(tp.tRCD, nsToTick(15.0));
    EXPECT_EQ(tp.tRP, nsToTick(15.0));
    EXPECT_EQ(tp.tCL, nsToTick(15.0));
    EXPECT_EQ(tp.tRAS, nsToTick(35.0));    // 28 cycles @ 800
    EXPECT_EQ(tp.tFAW, nsToTick(25.0));    // 20 cycles @ 800
    EXPECT_EQ(tp.tXP, nsToTick(6.0));
    EXPECT_EQ(tp.tXPDLL, nsToTick(24.0));
}

TEST(Timing, OnlyInterfaceParamsScale)
{
    const TimingParams &hi = TimingParams::at(0);    // 800
    const TimingParams &lo = TimingParams::at(9);    // 200
    // Device-internal params are wall-clock fixed.
    EXPECT_EQ(hi.tRCD, lo.tRCD);
    EXPECT_EQ(hi.tRP, lo.tRP);
    EXPECT_EQ(hi.tCL, lo.tCL);
    EXPECT_EQ(hi.tRAS, lo.tRAS);
    EXPECT_EQ(hi.tRFC, lo.tRFC);
    // Interface params scale linearly: 4x slower at 200 MHz.
    EXPECT_EQ(lo.tBURST, 4 * hi.tBURST);
    EXPECT_EQ(lo.tMC, 4 * hi.tMC);
}

TEST(Timing, RelockPenalty)
{
    // 512 cycles + 28 ns.
    const TimingParams &tp = TimingParams::at(0);
    EXPECT_EQ(tp.tRELOCK, 512 * tp.tCK + nsToTick(28.0));
}

TEST(Timing, FreqIndexLookup)
{
    EXPECT_EQ(freqIndexForMHz(800), 0u);
    EXPECT_EQ(freqIndexForMHz(467), 5u);
    EXPECT_EQ(freqIndexForMHz(400), 6u);
    EXPECT_EQ(freqIndexForMHz(210), 9u);
    EXPECT_EQ(freqIndexForMHz(100), 9u);   // clamps to slowest
    EXPECT_EQ(freqIndexForMHz(750), 1u);   // next grid point below
}

TEST(Rank, TrrdEnforced)
{
    Rank r;
    const TimingParams &tp = TimingParams::at(0);
    EXPECT_EQ(r.earliestAct(1000, tp), 1000u);
    r.recordAct(1000);
    EXPECT_EQ(r.earliestAct(1000, tp), 1000 + tp.tRRD);
    EXPECT_EQ(r.earliestAct(1000 + 2 * tp.tRRD, tp),
              1000 + 2 * tp.tRRD);
}

TEST(Rank, TfawEnforced)
{
    Rank r;
    const TimingParams &tp = TimingParams::at(0);
    // Four ACTs packed at tRRD spacing; the fifth must wait for the
    // first to age out of the tFAW window.
    Tick t = 0;
    for (int i = 0; i < 4; ++i) {
        t = r.earliestAct(t, tp);
        r.recordAct(t);
    }
    Tick fifth = r.earliestAct(t, tp);
    EXPECT_GE(fifth, tp.tFAW);   // first ACT was at 0
}

TEST(Rank, OutOfOrderActRecording)
{
    Rank r;
    const TimingParams &tp = TimingParams::at(0);
    r.recordAct(10000);
    r.recordAct(5000);   // planned out of order
    // tRRD measured from the latest ACT (10000), not insertion order.
    EXPECT_EQ(r.earliestAct(10000, tp), 10000 + tp.tRRD);
}

TEST(Rank, BackgroundIntegration)
{
    Rank r;
    // [0,100) precharge standby, [100,300) active, [300,600) precharge
    // powerdown.
    r.bankOpened(100);
    r.bankClosed(300);
    r.setPowerdown(300, true, false);
    const RankActivity &a = r.sample(600);
    EXPECT_EQ(a.preStandbyTime, 100u);
    EXPECT_EQ(a.actStandbyTime, 200u);
    EXPECT_EQ(a.prePowerdownTime, 300u);
    EXPECT_EQ(a.slowPowerdownTime, 0u);
    EXPECT_EQ(a.totalTime, 600u);
    EXPECT_NEAR(a.preFraction(), 400.0 / 600.0, 1e-12);
}

TEST(Rank, SlowPowerdownTracked)
{
    Rank r;
    r.setPowerdown(0, true, true);
    r.sample(500);
    r.setPowerdown(500, false);
    const RankActivity &a = r.sample(500);
    EXPECT_EQ(a.prePowerdownTime, 500u);
    EXPECT_EQ(a.slowPowerdownTime, 500u);
    EXPECT_EQ(a.pdExits, 1u);
}

TEST(Rank, NestedBankOpens)
{
    Rank r;
    r.bankOpened(0);
    r.bankOpened(50);
    r.bankClosed(100);
    // Still one bank open: remains "active".
    const RankActivity &a = r.sample(200);
    EXPECT_EQ(a.actStandbyTime, 200u);
    EXPECT_EQ(a.preStandbyTime, 0u);
}

TEST(Rank, BurstAndOpAccounting)
{
    Rank r;
    r.noteBurst(false, 5000);
    r.noteBurst(true, 5000);
    r.noteActPre();
    r.noteRefresh();
    const RankActivity &a = r.sample(100);
    EXPECT_EQ(a.readBursts, 1u);
    EXPECT_EQ(a.writeBursts, 1u);
    EXPECT_EQ(a.readBurstTime, 5000u);
    EXPECT_EQ(a.writeBurstTime, 5000u);
    EXPECT_EQ(a.actPreCount, 1u);
    EXPECT_EQ(a.refreshes, 1u);
}

TEST(Rank, ActivityDiff)
{
    Rank r;
    r.bankOpened(100);
    RankActivity s0 = r.sample(200);
    r.bankClosed(400);
    RankActivity s1 = r.sample(600);
    RankActivity d = s1 - s0;
    EXPECT_EQ(d.totalTime, 400u);
    EXPECT_EQ(d.actStandbyTime, 200u);
    EXPECT_EQ(d.preStandbyTime, 200u);
}

TEST(Rank, RedundantPowerdownIsNoop)
{
    Rank r;
    r.setPowerdown(100, true, false);
    r.setPowerdown(200, true, false);   // no-op
    r.setPowerdown(300, false);
    r.setPowerdown(400, false);         // no-op
    const RankActivity &a = r.sample(400);
    EXPECT_EQ(a.pdExits, 1u);
    EXPECT_EQ(a.prePowerdownTime, 200u);
}
