/**
 * @file
 * Unit tests for the online DDR3 protocol checker: direct-feed
 * detection of each rule, strict-mode abort, and full-System runs with
 * the checker attached — including runs whose policy re-locks the
 * memory frequency mid-run, the case the checker exists to guard.
 */

#include <gtest/gtest.h>

#include "check/protocol_checker.hh"
#include "common/log.hh"
#include "dram/rank.hh"
#include "harness/experiment.hh"

using namespace memscale;

namespace
{

const TimingParams &tp0 = TimingParams::at(0);

DramCmdEvent
act(Tick at, std::uint32_t bank = 0, std::uint64_t row = 7,
    std::uint32_t rank = 0)
{
    DramCmdEvent ev;
    ev.cmd = DramCmd::Act;
    ev.at = at;
    ev.doneAt = at;
    ev.rank = rank;
    ev.bank = bank;
    ev.row = row;
    return ev;
}

DramCmdEvent
pre(Tick at, std::uint32_t bank = 0)
{
    DramCmdEvent ev;
    ev.cmd = DramCmd::Pre;
    ev.at = at;
    ev.doneAt = at + tp0.tRP;
    ev.rank = 0;
    ev.bank = bank;
    return ev;
}

DramCmdEvent
read(Tick at, std::uint32_t bank = 0, std::uint64_t row = 7,
     Tick bus_free = 0)
{
    DramCmdEvent ev;
    ev.cmd = DramCmd::Read;
    ev.at = at;
    ev.rank = 0;
    ev.bank = bank;
    ev.row = row;
    ev.burstStart = std::max(at + tp0.tCL, bus_free);
    ev.burstEnd = ev.burstStart + tp0.tBURST;
    ev.doneAt = ev.burstEnd;
    return ev;
}

/** Checker with the nominal params installed, strictness off. */
ProtocolChecker
fresh()
{
    ProtocolChecker pc(false);
    pc.onTimingChange(0, 0, tp0);
    return pc;
}

std::string
firstRule(const ProtocolChecker &pc)
{
    return pc.samples().empty() ? "" : pc.samples().front().rule;
}

SystemConfig
smallConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 1'000'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    cfg.protocolCheck = true;
    return cfg;
}

} // namespace

TEST(ProtocolChecker, LegalSequenceIsClean)
{
    ProtocolChecker pc = fresh();
    Tick t = 10000;
    pc.onCommand(act(t));
    pc.onCommand(read(t + tp0.tRCD));
    Tick p = t + tp0.tRAS;
    pc.onCommand(pre(p));
    pc.onCommand(act(p + tp0.tRP));
    EXPECT_EQ(pc.violations(), 0u);
    EXPECT_EQ(pc.commandsChecked(), 4u);
}

TEST(ProtocolChecker, DetectsTrcdViolation)
{
    ProtocolChecker pc = fresh();
    pc.onCommand(act(10000));
    pc.onCommand(read(10000 + tp0.tRCD - 1));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "tRCD");
}

TEST(ProtocolChecker, DetectsTrpViolation)
{
    ProtocolChecker pc = fresh();
    pc.onCommand(act(10000));
    Tick p = 10000 + tp0.tRAS;
    pc.onCommand(pre(p));
    pc.onCommand(act(p + tp0.tRP - 1));
    EXPECT_GE(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "tRP");
}

TEST(ProtocolChecker, DetectsTrasViolation)
{
    ProtocolChecker pc = fresh();
    pc.onCommand(act(10000));
    pc.onCommand(pre(10000 + tp0.tRAS - 1));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "tRAS");
}

TEST(ProtocolChecker, DetectsTrcViolation)
{
    ProtocolChecker pc = fresh();
    pc.onCommand(act(10000));
    Tick p = 10000 + tp0.tRAS;
    pc.onCommand(pre(p));
    // tRP satisfied but the same-bank ACT-to-ACT gap is one tick
    // short of tRC = tRAS + tRP.
    pc.onCommand(act(10000 + tp0.tRC() - 1));
    bool saw_trc = false;
    for (const auto &v : pc.samples())
        saw_trc |= v.rule == "tRC";
    EXPECT_TRUE(saw_trc);
}

TEST(ProtocolChecker, DetectsTrrdViolation)
{
    ProtocolChecker pc = fresh();
    pc.onCommand(act(100000, 0));
    pc.onCommand(act(100000 + tp0.tRRD - 1, 1));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "tRRD");
}

TEST(ProtocolChecker, DetectsTrrdViolationAnnouncedOutOfOrder)
{
    // Cross-bank announcements may arrive out of tick order; the
    // checker must still see the too-small gap.
    ProtocolChecker pc = fresh();
    pc.onCommand(act(100000 + tp0.tRRD - 1, 1));
    pc.onCommand(act(100000, 0));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "tRRD");
}

TEST(ProtocolChecker, DetectsTfawViolation)
{
    ProtocolChecker pc = fresh();
    // Spacing legal under tRRD but five activates inside tFAW.
    const Tick gap = tp0.tRRD + 1000;
    ASSERT_LT(4 * gap, tp0.tFAW);
    for (std::uint32_t i = 0; i < 5; ++i)
        pc.onCommand(act(500000 + i * gap, i, 7));
    EXPECT_GE(pc.violations(), 1u);
    bool saw_tfaw = false;
    for (const auto &v : pc.samples())
        saw_tfaw |= v.rule == "tFAW";
    EXPECT_TRUE(saw_tfaw);
}

TEST(ProtocolChecker, DetectsCommandInsideRefreshWindow)
{
    ProtocolChecker pc = fresh();
    DramCmdEvent ref;
    ref.cmd = DramCmd::Refresh;
    ref.at = 1000000;
    ref.doneAt = ref.at + tp0.tRFC;
    pc.onCommand(ref);
    pc.onCommand(act(ref.at + tp0.tRFC / 2));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "refresh-window");
}

TEST(ProtocolChecker, DetectsActAnnouncedBeforeRefreshWindow)
{
    // The backward direction: the ACT was announced first, then a
    // refresh window lands on top of it.
    ProtocolChecker pc = fresh();
    pc.onCommand(act(1000000));
    DramCmdEvent ref;
    ref.cmd = DramCmd::Refresh;
    ref.at = 1000000 - 1000;
    ref.doneAt = ref.at + tp0.tRFC;
    pc.onCommand(ref);
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "refresh-window");
}

TEST(ProtocolChecker, DetectsCommandWhilePoweredDown)
{
    ProtocolChecker pc = fresh();
    DramCmdEvent pde;
    pde.cmd = DramCmd::PowerdownEnter;
    pde.at = pde.doneAt = 50000;
    pc.onCommand(pde);
    pc.onCommand(act(60000));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "powerdown");
}

TEST(ProtocolChecker, DetectsCommandBeforePowerdownExitLatency)
{
    ProtocolChecker pc = fresh();
    DramCmdEvent pde;
    pde.cmd = DramCmd::PowerdownEnter;
    pde.at = pde.doneAt = 50000;
    pc.onCommand(pde);
    DramCmdEvent pdx;
    pdx.cmd = DramCmd::PowerdownExit;
    pdx.at = 60000;
    pdx.doneAt = 60000 + tp0.tXP;
    pc.onCommand(pdx);
    pc.onCommand(act(60000 + tp0.tXP - 1));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "powerdown-exit");
}

TEST(ProtocolChecker, DetectsCommandInsideRelockWindow)
{
    ProtocolChecker pc = fresh();
    DramCmdEvent rl;
    rl.cmd = DramCmd::Relock;
    rl.at = 200000;
    rl.doneAt = rl.at + tp0.tRELOCK;
    pc.onCommand(rl);
    pc.onCommand(act(rl.at + 1000));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "relock-window");
    EXPECT_EQ(pc.relocksSeen(), 1u);
}

TEST(ProtocolChecker, DetectsCasOnClosedBankAndRowMismatch)
{
    ProtocolChecker pc = fresh();
    pc.onCommand(read(10000, 3, 7));
    EXPECT_EQ(firstRule(pc), "cas-closed-bank");

    ProtocolChecker pc2 = fresh();
    pc2.onCommand(act(10000, 3, 7));
    pc2.onCommand(read(10000 + tp0.tRCD, 3, 8));
    EXPECT_EQ(firstRule(pc2), "cas-row-mismatch");
}

TEST(ProtocolChecker, DetectsBusOverlap)
{
    // At the slowest grid point tBURST (20 ns) exceeds tRRD (5 ns),
    // so back-to-back CAS bursts on different banks can overlap on
    // the bus while every bank-level timing is satisfied.
    const TimingParams &tp = TimingParams::at(numFreqPoints - 1);
    ProtocolChecker pc(false);
    pc.onTimingChange(0, 0, tp);
    pc.onCommand(act(10000, 0));
    pc.onCommand(act(10000 + tp.tRRD, 1));
    DramCmdEvent r1 = read(10000 + tp.tRCD, 0);
    r1.burstStart = r1.at + tp.tCL;
    r1.burstEnd = r1.burstStart + tp.tBURST;
    r1.doneAt = r1.burstEnd;
    pc.onCommand(r1);
    // Legal tRCD/tCL for bank 1, but its burst starts mid-way through
    // bank 0's transfer.
    DramCmdEvent r2 = read(10000 + tp.tRRD + tp.tRCD, 1);
    r2.burstStart = r2.at + tp.tCL;
    r2.burstEnd = r2.burstStart + tp.tBURST;
    r2.doneAt = r2.burstEnd;
    ASSERT_LT(r2.burstStart, r1.burstEnd);
    pc.onCommand(r2);
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "bus-overlap");
}

TEST(ProtocolChecker, AppliesParamsInEffectAtIssueTick)
{
    // A gap legal at the tick where the command issues must be judged
    // by the parameters in effect *there*, not by the attach-time set.
    ProtocolChecker pc = fresh();
    const TimingParams &slow = TimingParams::at(numFreqPoints - 1);

    // Before the switch: burst of tp0.tBURST is legal.
    pc.onCommand(act(10000));
    pc.onCommand(read(10000 + tp0.tRCD));
    EXPECT_EQ(pc.violations(), 0u);

    // Re-lock to the slowest point, effective at 10 ms.
    Tick eff = msToTick(10.0);
    DramCmdEvent rl;
    rl.cmd = DramCmd::Relock;
    rl.at = eff - tp0.tRELOCK;
    rl.doneAt = eff;
    pc.onCommand(rl);
    pc.onTimingChange(0, eff, slow);

    // After the switch a burst of the *old* length is a violation...
    pc.onCommand(pre(eff, 0));
    pc.onCommand(act(eff + tp0.tRP));
    DramCmdEvent r = read(eff + tp0.tRP + slow.tRCD);
    r.burstStart = r.at + slow.tCL;
    r.burstEnd = r.burstStart + tp0.tBURST;   // stale length
    r.doneAt = r.burstEnd;
    pc.onCommand(r);
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "burst-length");

    // ...and the correct slow-grid burst is clean.
    ProtocolChecker pc2 = fresh();
    pc2.onTimingChange(0, eff, slow);
    pc2.onCommand(act(eff + 1000));
    DramCmdEvent r2 = read(eff + 1000 + slow.tRCD);
    r2.burstStart = r2.at + slow.tCL;
    r2.burstEnd = r2.burstStart + slow.tBURST;
    r2.doneAt = r2.burstEnd;
    pc2.onCommand(r2);
    EXPECT_EQ(pc2.violations(), 0u);
}

TEST(ProtocolChecker, StrictModeAbortsOnFirstViolation)
{
    ProtocolChecker pc(true);
    pc.onTimingChange(0, 0, tp0);
    pc.onCommand(act(10000));
    EXPECT_THROW(pc.onCommand(read(10000 + tp0.tRCD - 1)), FatalError);
}

TEST(ProtocolChecker, ViolationStringCarriesProvenance)
{
    ProtocolChecker pc = fresh();
    pc.onCommand(act(10000, 2, 7, 1));
    DramCmdEvent r = read(10000 + tp0.tRCD - 1, 2, 7);
    r.rank = 1;
    pc.onCommand(r);
    ASSERT_EQ(pc.samples().size(), 1u);
    std::string s = pc.samples().front().str();
    EXPECT_NE(s.find("tRCD"), std::string::npos);
    EXPECT_NE(s.find("rank 1"), std::string::npos);
    EXPECT_NE(s.find("bank 2"), std::string::npos);
    EXPECT_NE(s.find("RD"), std::string::npos);
}

// --- Full-system validation -------------------------------------------

TEST(ProtocolCheckerSystem, BaselineRunIsClean)
{
    SystemConfig cfg = smallConfig("MID1");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    EXPECT_GT(base.commandsChecked, 1000u);
    EXPECT_EQ(base.protocolViolations, 0u)
        << (base.protocolViolationSamples.empty()
                ? ""
                : base.protocolViolationSamples.front());
}

TEST(ProtocolCheckerSystem, MemScaleRunWithFrequencyTransitionsIsClean)
{
    // The acceptance case: the checker validates tRCD/tRP/tRAS/tRRD/
    // tFAW/refresh across *mid-run frequency transitions* driven by
    // the real MemScale policy.
    SystemConfig cfg = smallConfig("MID1");
    Watts rest = 0.0;
    runBaseline(cfg, rest);
    RunResult ms = runPolicy(cfg, "memscale", rest);
    ASSERT_GT(ms.counters.freqTransitions, 0u);
    EXPECT_GT(ms.commandsChecked, 1000u);
    EXPECT_EQ(ms.protocolViolations, 0u)
        << (ms.protocolViolationSamples.empty()
                ? ""
                : ms.protocolViolationSamples.front());
}

TEST(ProtocolCheckerSystem, PowerdownPoliciesAreClean)
{
    for (const char *policy : {"fastpd", "slowpd", "srpd"}) {
        SystemConfig cfg = smallConfig("ILP1");
        Watts rest = 0.0;
        runBaseline(cfg, rest);
        RunResult r = runPolicy(cfg, policy, rest);
        EXPECT_EQ(r.protocolViolations, 0u)
            << policy << ": "
            << (r.protocolViolationSamples.empty()
                    ? ""
                    : r.protocolViolationSamples.front());
    }
}

TEST(ProtocolCheckerSystem, CheckerDoesNotPerturbResults)
{
    // Attaching the checker must not change simulation behaviour.
    SystemConfig cfg = smallConfig("MID2");
    cfg.protocolCheck = false;
    Watts rest1 = 0.0;
    RunResult plain = runBaseline(cfg, rest1);
    cfg.protocolCheck = true;
    Watts rest2 = 0.0;
    RunResult checked = runBaseline(cfg, rest2);
    EXPECT_EQ(plain.runtime, checked.runtime);
    EXPECT_EQ(plain.counters.reads, checked.counters.reads);
    EXPECT_EQ(plain.counters.writes, checked.counters.writes);
    EXPECT_EQ(plain.energy.total(), checked.energy.total());
}

// --- Idle-ladder suite ------------------------------------------------
//
// The deep rungs (self-refresh, SR with slow clock, deep powerdown)
// each carry their own datasheet exit latency and refresh semantics;
// these tests feed the checker hand-built CKE sequences for every
// rung and pin the rules the ladder relies on.

namespace
{

DramCmdEvent
pde(Tick at, RankIdleState state)
{
    DramCmdEvent ev;
    ev.cmd = DramCmd::PowerdownEnter;
    ev.at = ev.doneAt = at;
    ev.pdState = static_cast<std::uint8_t>(state);
    ev.selfRefresh = selfRefreshing(state);
    return ev;
}

DramCmdEvent
pdx(Tick at, Tick exit_latency)
{
    DramCmdEvent ev;
    ev.cmd = DramCmd::PowerdownExit;
    ev.at = at;
    ev.doneAt = at + exit_latency;
    return ev;
}

const RankIdleState AllRungs[] = {
    RankIdleState::FastPd, RankIdleState::SlowPd,
    RankIdleState::SelfRefresh, RankIdleState::SrSlowClock,
    RankIdleState::DeepPd};

} // namespace

TEST(ProtocolCheckerLadder, EnforcesExitLatencyPerRung)
{
    for (RankIdleState s : AllRungs) {
        const Tick need = idleExitLatency(s, tp0);
        ASSERT_GT(need, 0u) << rankIdleStateName(s);

        // One tick short of the datasheet latency: rejected.
        ProtocolChecker pc = fresh();
        pc.onCommand(pde(100000, s));
        pc.onCommand(pdx(200000, need - 1));
        EXPECT_EQ(pc.violations(), 1u) << rankIdleStateName(s);
        EXPECT_EQ(firstRule(pc), "pd-exit-latency")
            << rankIdleStateName(s);

        // The exact latency: clean, and the rank is usable only at
        // the advertised ready tick.
        ProtocolChecker ok = fresh();
        ok.onCommand(pde(100000, s));
        ok.onCommand(pdx(200000, need));
        ok.onCommand(act(200000 + need));
        EXPECT_EQ(ok.violations(), 0u) << rankIdleStateName(s);

        // An ACT one tick before ready still trips powerdown-exit.
        ProtocolChecker early = fresh();
        early.onCommand(pde(100000, s));
        early.onCommand(pdx(200000, need));
        early.onCommand(act(200000 + need - 1));
        EXPECT_EQ(early.violations(), 1u) << rankIdleStateName(s);
        EXPECT_EQ(firstRule(early), "powerdown-exit")
            << rankIdleStateName(s);
    }
}

TEST(ProtocolCheckerLadder, DeeperRungsDemandLongerExits)
{
    // The ladder is only a ladder if each rung's wake-up cost grows:
    // tXP < tXPDLL < tXS < tXSDLL < tXDP.
    Tick prev = 0;
    for (RankIdleState s : AllRungs) {
        Tick need = idleExitLatency(s, tp0);
        EXPECT_GT(need, prev) << rankIdleStateName(s);
        prev = need;
    }
}

TEST(ProtocolCheckerLadder, RejectsExternalRefreshDuringSelfRefresh)
{
    // A self-refreshing rank refreshes internally; an external REF is
    // a protocol error distinct from command-while-CKE-low — for
    // every self-refreshing rung, but NOT for the shallow PD rungs.
    for (RankIdleState s : AllRungs) {
        ProtocolChecker pc = fresh();
        pc.onCommand(pde(100000, s));
        DramCmdEvent ref;
        ref.cmd = DramCmd::Refresh;
        ref.at = 150000;
        ref.doneAt = ref.at + tp0.tRFC;
        pc.onCommand(ref);
        EXPECT_EQ(pc.violations(), 1u) << rankIdleStateName(s);
        EXPECT_EQ(firstRule(pc), selfRefreshing(s)
                                     ? "refresh-in-selfrefresh"
                                     : "powerdown")
            << rankIdleStateName(s);
    }
}

TEST(ProtocolCheckerLadder, SelfRefreshSuspendsRefreshStarvationClock)
{
    // Long CKE-low residencies in self-refresh must not trip the
    // refresh-starvation watchdog: the rank refreshed itself.
    ProtocolChecker pc = fresh();
    DramCmdEvent ref;
    ref.cmd = DramCmd::Refresh;
    ref.at = 100000;
    ref.doneAt = ref.at + tp0.tRFC;
    pc.onCommand(ref);

    Tick enter = ref.doneAt + 1000;
    pc.onCommand(pde(enter, RankIdleState::SelfRefresh));
    // Dwell 100x the starvation horizon, then exit and refresh.
    Tick exit = enter + 100 * 9 * tp0.tREFI;
    Tick need = idleExitLatency(RankIdleState::SelfRefresh, tp0);
    pc.onCommand(pdx(exit, need));
    DramCmdEvent ref2 = ref;
    ref2.at = exit + need;
    ref2.doneAt = ref2.at + tp0.tRFC;
    pc.onCommand(ref2);
    EXPECT_EQ(pc.violations(), 0u)
        << (pc.samples().empty() ? "" : pc.samples().front().str());
}

TEST(ProtocolCheckerLadder, AllowsOnlyStrictlyDeeperDemotions)
{
    // Walking down rung by rung without an intervening exit is the
    // adaptive-demotion fast path and must be clean...
    ProtocolChecker pc = fresh();
    Tick t = 100000;
    pc.onCommand(pde(t, RankIdleState::FastPd));
    pc.onCommand(pde(t + 1000, RankIdleState::SelfRefresh));
    pc.onCommand(pde(t + 2000, RankIdleState::SrSlowClock));
    pc.onCommand(pde(t + 3000, RankIdleState::DeepPd));
    EXPECT_EQ(pc.violations(), 0u);

    // ...the exit must then pay the *deepest* rung's latency...
    Tick deep = idleExitLatency(RankIdleState::DeepPd, tp0);
    pc.onCommand(pdx(t + 10000, deep - 1));
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(firstRule(pc), "pd-exit-latency");

    // ...and re-entering the same or a shallower rung mid-residency
    // (a "promotion" without CKE ever rising) is illegal.
    for (RankIdleState again :
         {RankIdleState::SelfRefresh, RankIdleState::FastPd}) {
        ProtocolChecker up = fresh();
        up.onCommand(pde(100000, RankIdleState::SelfRefresh));
        up.onCommand(pde(101000, again));
        EXPECT_EQ(up.violations(), 1u) << rankIdleStateName(again);
        EXPECT_EQ(firstRule(up), "pd-transition")
            << rankIdleStateName(again);
    }
}

TEST(ProtocolCheckerLadder, RejectsActDuringDeepResidency)
{
    // Deep powerdown -> ACT without any exit announced: the rank is
    // simply powered down, however deep the rung.
    for (RankIdleState s :
         {RankIdleState::SelfRefresh, RankIdleState::DeepPd}) {
        ProtocolChecker pc = fresh();
        pc.onCommand(pde(100000, s));
        pc.onCommand(act(150000));
        EXPECT_EQ(pc.violations(), 1u) << rankIdleStateName(s);
        EXPECT_EQ(firstRule(pc), "powerdown") << rankIdleStateName(s);
    }

    // Exit without a matching enter is its own transition error.
    ProtocolChecker orphan = fresh();
    orphan.onCommand(pdx(100000, tp0.tXP));
    EXPECT_EQ(orphan.violations(), 1u);
    EXPECT_EQ(firstRule(orphan), "pd-transition");
}

TEST(ProtocolCheckerLadder, SelfRefreshAcrossFrequencyTransition)
{
    // A rank that entered self-refresh *before* a frequency re-lock
    // may legally sleep straight through the quiescence window
    // (self-refresh needs no external clock).  Its eventual exit is
    // NOT relock-exempt — only force-parked ranks (entered inside the
    // window) are — and must pay the exit latency under the *new*
    // parameters.
    ProtocolChecker pc = fresh();
    const TimingParams &slow = TimingParams::at(numFreqPoints - 1);

    // Slow-clock self-refresh: its tXSDLL exit is counted in DRAM
    // clocks, so the re-lock visibly changes the required latency.
    Tick enter = 100000;
    pc.onCommand(pde(enter, RankIdleState::SrSlowClock));

    Tick eff = msToTick(1.0);
    DramCmdEvent rl;
    rl.cmd = DramCmd::Relock;
    rl.at = eff - tp0.tRELOCK;
    rl.doneAt = eff;
    pc.onCommand(rl);
    pc.onTimingChange(0, eff, slow);

    // Exit well after the window: judged by the slow grid's tXSDLL.
    Tick need = idleExitLatency(RankIdleState::SrSlowClock, slow);
    ASSERT_GT(need, idleExitLatency(RankIdleState::SrSlowClock, tp0));
    Tick exit = eff + 50000;

    ProtocolChecker shortpc = fresh();
    shortpc.onCommand(pde(enter, RankIdleState::SrSlowClock));
    shortpc.onCommand(rl);
    shortpc.onTimingChange(0, eff, slow);
    shortpc.onCommand(pdx(
        exit, idleExitLatency(RankIdleState::SrSlowClock, tp0)));
    EXPECT_EQ(shortpc.violations(), 1u);
    EXPECT_EQ(firstRule(shortpc), "pd-exit-latency");

    pc.onCommand(pdx(exit, need));
    pc.onCommand(act(exit + need));
    EXPECT_EQ(pc.violations(), 0u)
        << (pc.samples().empty() ? "" : pc.samples().front().str());
}

TEST(ProtocolCheckerSystem, LadderPoliciesAreClean)
{
    // Full-system sweep over the new rungs: static deep modes and the
    // adaptive demotion ladder, with the checker attached.
    for (const char *policy : {"srslowpd", "deeppd", "ladder"}) {
        SystemConfig cfg = smallConfig("ILP1");
        Watts rest = 0.0;
        runBaseline(cfg, rest);
        RunResult r = runPolicy(cfg, policy, rest);
        if (std::string(policy) == "ladder")
            EXPECT_GT(r.counters.pdDemotions, 0u);
        EXPECT_EQ(r.protocolViolations, 0u)
            << policy << ": "
            << (r.protocolViolationSamples.empty()
                    ? ""
                    : r.protocolViolationSamples.front());
    }
}

TEST(ProtocolCheckerSystem, LadderWithFrequencyTransitionsIsClean)
{
    // The composed case the tentpole exists for: adaptive demotion +
    // consolidation migrations + MemScale DVFS re-locks, all under
    // the checker, including transitions straddling frequency
    // changes.
    SystemConfig cfg = smallConfig("MID1");
    cfg.mem.ladder.migrate = true;
    Watts rest = 0.0;
    runBaseline(cfg, rest);
    RunResult r = runPolicy(cfg, "memscale-ladder", rest);
    ASSERT_GT(r.counters.freqTransitions, 0u);
    EXPECT_GT(r.counters.pdDemotions, 0u);
    EXPECT_EQ(r.protocolViolations, 0u)
        << (r.protocolViolationSamples.empty()
                ? ""
                : r.protocolViolationSamples.front());
}
