/**
 * @file
 * Unit tests for common utilities: unit conversions, RNG determinism
 * and distribution sanity, statistics accumulators, config parsing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/config.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace memscale;

TEST(Units, Conversions)
{
    EXPECT_EQ(nsToTick(1.0), 1000u);
    EXPECT_EQ(usToTick(1.0), 1000u * 1000);
    EXPECT_EQ(msToTick(1.0), 1000ull * 1000 * 1000);
    EXPECT_DOUBLE_EQ(tickToNs(1500), 1.5);
    EXPECT_DOUBLE_EQ(tickToMs(msToTick(5.0)), 5.0);
}

TEST(Units, PeriodFromMHz)
{
    EXPECT_EQ(periodFromMHz(800.0), 1250u);   // 1.25 ns
    EXPECT_EQ(periodFromMHz(200.0), 5000u);   // 5 ns
    EXPECT_EQ(periodFromMHz(4000.0), 250u);   // 4 GHz CPU
    // 667 MHz is not integral; check rounding is within 1 ps.
    Tick p = periodFromMHz(667.0);
    EXPECT_NEAR(static_cast<double>(p), 1.0e6 / 667.0, 0.5);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ExponentialMean)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, GeometricMean)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(0.1));
    EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Rng, ChanceProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIndependence)
{
    Rng a(5);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(Rng, SplitMix64KnownValues)
{
    // Reference values of the splitmix64 stream seeded with 0
    // (Vigna's test vector / wikipedia reference implementation).
    EXPECT_EQ(splitmix64(0x9e3779b97f4a7c15ull),
              0xe220a8397b1dcdafull);
    // The finalizer is a bijection, so distinct inputs cannot agree.
    EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(Rng, DeriveSeedNoAdjacentCollisions)
{
    // The old additive scheme (base + i * 7919) collided across
    // adjacent bases; the splitmix64 scheme must keep every derived
    // stream of nearby base seeds distinct.
    std::set<std::uint64_t> seen;
    for (std::uint64_t base = 12345; base < 12345 + 64; ++base)
        for (std::uint64_t i = 0; i < 64; ++i)
            seen.insert(deriveSeed(base, i));
    EXPECT_EQ(seen.size(), 64u * 64u);
    // index 0 is already decorrelated from the base seed.
    EXPECT_NE(deriveSeed(99, 0), 99u);
}

TEST(Rng, DeriveSeedDeterministic)
{
    EXPECT_EQ(deriveSeed(7, 3), deriveSeed(7, 3));
    EXPECT_NE(deriveSeed(7, 3), deriveSeed(7, 4));
    EXPECT_NE(deriveSeed(7, 3), deriveSeed(8, 3));
}

TEST(Accumulator, Basic)
{
    Accumulator a;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.add(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.sum(), 10.0);
    EXPECT_NEAR(a.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, Empty)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, WelfordResistsCatastrophicCancellation)
{
    // A long sweep of near-identical large values: the naive
    // E[x^2] - E[x]^2 formula loses all significant digits here (and
    // can go negative); Welford's online update must not.
    Accumulator a;
    const double base = 1e9;
    for (int i = 0; i < 100000; ++i)
        a.add(base + (i % 2 ? 1e-3 : -1e-3));
    EXPECT_GE(a.variance(), 0.0);
    EXPECT_NEAR(a.variance(), 1e-6, 1e-8);
    EXPECT_GE(a.stddev(), 0.0);
    EXPECT_NEAR(a.mean(), base, 1e-3);
}

TEST(Accumulator, VarianceNeverNegative)
{
    // Identical samples: variance must clamp to exactly 0, not a
    // tiny negative rounding residue.
    Accumulator a;
    for (int i = 0; i < 1000; ++i)
        a.add(0.1 + 1e9);
    EXPECT_GE(a.variance(), 0.0);
    EXPECT_GE(a.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSerial)
{
    // Chan's parallel merge must agree with one serial pass.
    Accumulator serial, left, right;
    Rng rng(77);
    for (int i = 0; i < 2000; ++i) {
        double x = rng.uniform(-5.0, 5.0);
        serial.add(x);
        (i < 700 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), serial.count());
    EXPECT_NEAR(left.mean(), serial.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), serial.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), serial.min());
    EXPECT_DOUBLE_EQ(left.max(), serial.max());
    EXPECT_GE(left.variance(), 0.0);
}

TEST(Accumulator, MergeWithEmpty)
{
    Accumulator a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Histogram, BucketsAndPercentiles)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0);
    h.add(-1.0);
    h.add(1000.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, InvalidRangeFatal)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
}

TEST(Config, ParseAndTypes)
{
    Config c;
    const char *argv[] = {"prog", "mix=MEM1", "budget=1000",
                          "gamma=0.05", "verbose=true", "notakv"};
    c.parseArgs(6, const_cast<char **>(argv));
    EXPECT_EQ(c.getString("mix", "x"), "MEM1");
    EXPECT_EQ(c.getInt("budget", 0), 1000);
    EXPECT_DOUBLE_EQ(c.getDouble("gamma", 0.0), 0.05);
    EXPECT_TRUE(c.getBool("verbose", false));
    EXPECT_EQ(c.getInt("missing", 7), 7);
}

TEST(Config, DashDashForms)
{
    // Sweep drivers take --jobs 8 / --jobs=8 alongside bare key=value.
    Config c;
    const char *argv[] = {"prog", "--jobs=8",  "--mix",  "MEM3",
                          "seed=5", "--verbose", "true"};
    c.parseArgs(7, const_cast<char **>(argv));
    EXPECT_EQ(c.getInt("jobs", 0), 8);
    EXPECT_EQ(c.getString("mix", "x"), "MEM3");
    EXPECT_EQ(c.getInt("seed", 0), 5);
    EXPECT_TRUE(c.getBool("verbose", false));
}

TEST(Config, DashDashFlagBeforeKeyValue)
{
    // "--flag key=value": the next arg contains '=', so it must not be
    // consumed as --flag's value.
    Config c;
    const char *argv[] = {"prog", "--fast", "budget=10"};
    c.parseArgs(3, const_cast<char **>(argv));
    EXPECT_EQ(c.getInt("budget", 0), 10);
}

TEST(Config, BadValuesFatal)
{
    Config c;
    c.set("n", "abc");
    EXPECT_THROW(c.getInt("n", 0), FatalError);
    c.set("b", "maybe");
    EXPECT_THROW(c.getBool("b", false), FatalError);
}

TEST(Config, EnvOverride)
{
    setenv("MEMSCALE_TESTKEY", "99", 1);
    Config c;
    EXPECT_EQ(c.getInt("testkey", 1), 99);
    // Explicit args beat the environment.
    c.set("testkey", "5");
    EXPECT_EQ(c.getInt("testkey", 1), 5);
    unsetenv("MEMSCALE_TESTKEY");
}
