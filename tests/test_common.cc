/**
 * @file
 * Unit tests for common utilities: unit conversions, RNG determinism
 * and distribution sanity, statistics accumulators, config parsing.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace memscale;

TEST(Units, Conversions)
{
    EXPECT_EQ(nsToTick(1.0), 1000u);
    EXPECT_EQ(usToTick(1.0), 1000u * 1000);
    EXPECT_EQ(msToTick(1.0), 1000ull * 1000 * 1000);
    EXPECT_DOUBLE_EQ(tickToNs(1500), 1.5);
    EXPECT_DOUBLE_EQ(tickToMs(msToTick(5.0)), 5.0);
}

TEST(Units, PeriodFromMHz)
{
    EXPECT_EQ(periodFromMHz(800.0), 1250u);   // 1.25 ns
    EXPECT_EQ(periodFromMHz(200.0), 5000u);   // 5 ns
    EXPECT_EQ(periodFromMHz(4000.0), 250u);   // 4 GHz CPU
    // 667 MHz is not integral; check rounding is within 1 ps.
    Tick p = periodFromMHz(667.0);
    EXPECT_NEAR(static_cast<double>(p), 1.0e6 / 667.0, 0.5);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ExponentialMean)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, GeometricMean)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(0.1));
    EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(Rng, ChanceProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIndependence)
{
    Rng a(5);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(Accumulator, Basic)
{
    Accumulator a;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.add(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.sum(), 10.0);
    EXPECT_NEAR(a.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, Empty)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Histogram, BucketsAndPercentiles)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 10.0);
    h.add(-1.0);
    h.add(1000.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, InvalidRangeFatal)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
}

TEST(Config, ParseAndTypes)
{
    Config c;
    const char *argv[] = {"prog", "mix=MEM1", "budget=1000",
                          "gamma=0.05", "verbose=true", "notakv"};
    c.parseArgs(6, const_cast<char **>(argv));
    EXPECT_EQ(c.getString("mix", "x"), "MEM1");
    EXPECT_EQ(c.getInt("budget", 0), 1000);
    EXPECT_DOUBLE_EQ(c.getDouble("gamma", 0.0), 0.05);
    EXPECT_TRUE(c.getBool("verbose", false));
    EXPECT_EQ(c.getInt("missing", 7), 7);
}

TEST(Config, BadValuesFatal)
{
    Config c;
    c.set("n", "abc");
    EXPECT_THROW(c.getInt("n", 0), FatalError);
    c.set("b", "maybe");
    EXPECT_THROW(c.getBool("b", false), FatalError);
}

TEST(Config, EnvOverride)
{
    setenv("MEMSCALE_TESTKEY", "99", 1);
    Config c;
    EXPECT_EQ(c.getInt("testkey", 1), 99);
    // Explicit args beat the environment.
    c.set("testkey", "5");
    EXPECT_EQ(c.getInt("testkey", 1), 5);
    unsetenv("MEMSCALE_TESTKEY");
}
