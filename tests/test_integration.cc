/**
 * @file
 * End-to-end integration tests over the experiment harness: baseline
 * calibration, policy behaviours (MemScale savings and bound
 * compliance, Fast-PD vs Slow-PD, Decoupled), determinism, and epoch
 * dynamics.  Budgets are kept small so the suite stays fast.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workload/mixes.hh"

using namespace memscale;

namespace
{

SystemConfig
smallConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 1'000'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    return cfg;
}

} // namespace

TEST(Integration, BaselineCalibrationHitsMemoryFraction)
{
    SystemConfig cfg = smallConfig("MID1");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    EXPECT_GT(rest, 0.0);
    double frac = base.avgMemPower / base.avgSystemPower;
    EXPECT_NEAR(frac, cfg.memPowerFraction, 0.01);
    EXPECT_FALSE(base.hitTimeLimit);
    EXPECT_EQ(base.coreCpi.size(), 16u);
    for (double cpi : base.coreCpi)
        EXPECT_GT(cpi, 0.5);
}

TEST(Integration, MemScaleSavesEnergyWithinBound)
{
    SystemConfig cfg = smallConfig("MID1");
    ComparisonResult r = compare(cfg, "memscale");
    EXPECT_GT(r.memEnergySavings, 0.15);
    EXPECT_GT(r.sysEnergySavings, 0.0);
    EXPECT_LE(r.worstCpiIncrease, cfg.gamma + 0.02);
}

TEST(Integration, IlpWorkloadScalesToMinimumFrequency)
{
    SystemConfig cfg = smallConfig("ILP2");
    cfg.instrBudget = 2'000'000;
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    RunResult ms = runPolicy(cfg, "memscale", rest);
    ASSERT_FALSE(ms.timeline.empty());
    // After the first decision, ILP mixes sit at the lowest frequency.
    EXPECT_EQ(ms.timeline.back().busMHz, 200u);
    EXPECT_LT(ms.energy.memorySubsystem(),
              base.energy.memorySubsystem() * 0.5);
}

TEST(Integration, FastPdSavesSlowPdHurtsPerformance)
{
    SystemConfig cfg = smallConfig("MID2");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult fast = compareWithBase(cfg, base, rest, "fastpd");
    ComparisonResult slow = compareWithBase(cfg, base, rest, "slowpd");
    EXPECT_GT(fast.memEnergySavings, 0.0);
    EXPECT_LT(fast.worstCpiIncrease, 0.05);
    EXPECT_GT(slow.worstCpiIncrease, fast.worstCpiIncrease);
}

TEST(Integration, DecoupledCutsDramOnly)
{
    SystemConfig cfg = smallConfig("MID1");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult dec =
        compareWithBase(cfg, base, rest, "decoupled");
    // DRAM energy shrinks...
    EXPECT_LT(dec.policy.energy.dram(), base.energy.dram());
    // ...but PLL/reg and MC energy do not improve (runtime stretches).
    EXPECT_GE(dec.policy.energy.pllReg, base.energy.pllReg * 0.99);
    EXPECT_GE(dec.policy.energy.mc, base.energy.mc * 0.99);
}

TEST(Integration, StaticBeatsDecoupled)
{
    SystemConfig cfg = smallConfig("MID1");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult st = compareWithBase(cfg, base, rest, "static");
    ComparisonResult dec =
        compareWithBase(cfg, base, rest, "decoupled");
    EXPECT_GT(st.sysEnergySavings, dec.sysEnergySavings);
}

TEST(Integration, DeterministicAcrossRuns)
{
    SystemConfig cfg = smallConfig("MID3");
    ComparisonResult a = compare(cfg, "memscale");
    ComparisonResult b = compare(cfg, "memscale");
    EXPECT_EQ(a.policy.runtime, b.policy.runtime);
    EXPECT_EQ(a.base.runtime, b.base.runtime);
    EXPECT_DOUBLE_EQ(a.policy.energy.total(),
                     b.policy.energy.total());
}

TEST(Integration, SeedChangesRuntime)
{
    SystemConfig cfg = smallConfig("MID3");
    Watts rest = 0.0;
    RunResult a = runBaseline(cfg, rest);
    cfg.seed = 999;
    RunResult b = runBaseline(cfg, rest);
    EXPECT_NE(a.runtime, b.runtime);
}

TEST(Integration, EpochTimelineRecorded)
{
    SystemConfig cfg = smallConfig("MID1");
    cfg.instrBudget = 2'000'000;
    ComparisonResult r = compare(cfg, "memscale");
    ASSERT_GE(r.policy.timeline.size(), 2u);
    for (const EpochRecord &er : r.policy.timeline) {
        EXPECT_GT(er.busMHz, 0u);
        EXPECT_GE(er.channelUtil, 0.0);
        EXPECT_LE(er.channelUtil, 1.0);
        EXPECT_EQ(er.coreCpi.size(), 16u);
    }
}

TEST(Integration, TwoChannelConfigRuns)
{
    SystemConfig cfg = smallConfig("MID1");
    cfg.mem.numChannels = 2;
    ComparisonResult r = compare(cfg, "memscale");
    EXPECT_GT(r.memEnergySavings, 0.0);
    EXPECT_LE(r.worstCpiIncrease, cfg.gamma + 0.02);
}

TEST(Integration, EightCoreConfigRuns)
{
    SystemConfig cfg = smallConfig("MEM4");
    cfg.numCores = 8;
    ComparisonResult r = compare(cfg, "memscale");
    EXPECT_EQ(r.policy.coreCpi.size(), 8u);
    EXPECT_GT(r.memEnergySavings, 0.0);
}

TEST(Integration, MemScaleFastPdCombination)
{
    SystemConfig cfg = smallConfig("MID1");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    ComparisonResult ms = compareWithBase(cfg, base, rest, "memscale");
    ComparisonResult combo =
        compareWithBase(cfg, base, rest, "memscale-fastpd");
    // The combination must not be materially worse than MemScale.
    EXPECT_GT(combo.memEnergySavings, ms.memEnergySavings - 0.05);
}

TEST(Integration, EnergyBreakdownConsistent)
{
    SystemConfig cfg = smallConfig("MID1");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    const EnergyBreakdown &e = base.energy;
    EXPECT_NEAR(e.total(),
                e.background + e.actPre + e.readWrite +
                    e.termination + e.refresh + e.pllReg + e.mc +
                    e.rest,
                e.total() * 1e-12);
    EXPECT_GT(e.background, 0.0);
    EXPECT_GT(e.actPre, 0.0);
    EXPECT_GT(e.readWrite, 0.0);
    EXPECT_GT(e.refresh, 0.0);
    EXPECT_GT(e.mc, 0.0);
}

TEST(Integration, RpkiMeasurementSane)
{
    SystemConfig cfg = smallConfig("MEM2");
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    const MixSpec &mix = mixByName("MEM2");
    EXPECT_NEAR(base.measuredRpki, mix.paperRpki,
                mix.paperRpki * 0.25);
}
