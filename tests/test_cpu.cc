/**
 * @file
 * Core-model tests: execution timing, stall behaviour, TIC
 * interpolation, budget completion, halting on exhausted traces.
 */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

/** Scripted trace source for deterministic tests. */
class ScriptedSource : public TraceSource
{
  public:
    std::deque<TraceChunk> chunks;

    bool
    next(TraceChunk &chunk) override
    {
        if (chunks.empty())
            return false;
        chunk = chunks.front();
        chunks.pop_front();
        return true;
    }
};

TraceChunk
chunk(std::uint64_t instr, double cpi, Addr addr)
{
    TraceChunk c;
    c.instructions = instr;
    c.cpi = cpi;
    c.missAddr = addr;
    return c;
}

struct CpuHarness
{
    EventQueue eq;
    MemConfig cfg;
    MemoryController mc;
    ScriptedSource src;

    CpuHarness() : mc(eq, cfg) {}

    Core
    makeCore(std::uint64_t budget)
    {
        CoreParams p;
        p.cpuGHz = 4.0;
        p.instrBudget = budget;
        p.runPastBudget = false;
        return Core(eq, 0, src, mc, p);
    }
};

} // namespace

TEST(Core, ComputePhaseTiming)
{
    CpuHarness h;
    // 1000 instructions at CPI 2.0 on a 4 GHz core = 500 ns, then one
    // miss of known uncontended latency (38.125 ns at 800 MHz).
    h.src.chunks.push_back(chunk(1000, 2.0, 0));
    Core core = h.makeCore(1001);
    core.start();
    h.eq.runUntil();
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.doneAt(), nsToTick(500.0) + nsToTick(38.125));
}

TEST(Core, StallTimeEqualsMemoryLatency)
{
    CpuHarness h;
    h.src.chunks.push_back(chunk(100, 1.0, 0));
    Core core = h.makeCore(101);
    core.start();
    h.eq.runUntil();
    EXPECT_EQ(core.stallTime(), nsToTick(38.125));
}

TEST(Core, TicInterpolatesWithinChunk)
{
    CpuHarness h;
    h.src.chunks.push_back(chunk(1000, 1.0, 0));   // 250 ns compute
    Core core = h.makeCore(1001);
    core.start();
    h.eq.runUntil(nsToTick(125.0));
    // Halfway through the compute phase: ~500 instructions.
    EXPECT_NEAR(static_cast<double>(core.tic(h.eq.now())), 500.0, 5.0);
}

TEST(Core, TicFrozenDuringStall)
{
    CpuHarness h;
    h.src.chunks.push_back(chunk(100, 1.0, 0));
    h.src.chunks.push_back(chunk(1000000, 1.0, 64));
    Core core = h.makeCore(2000000);
    core.start();
    // 100 instr = 25 ns compute; at 30 ns the core is stalled.
    h.eq.runUntil(nsToTick(30.0));
    EXPECT_EQ(core.tic(h.eq.now()), 100u);
}

TEST(Core, TlmCountsMisses)
{
    CpuHarness h;
    for (int i = 0; i < 5; ++i)
        h.src.chunks.push_back(chunk(10, 1.0, 64 * i));
    Core core = h.makeCore(100);
    core.start();
    h.eq.runUntil();
    EXPECT_EQ(core.tlm(), 5u);
}

TEST(Core, HaltsWhenTraceExhausted)
{
    CpuHarness h;
    h.src.chunks.push_back(chunk(10, 1.0, 0));
    Core core = h.makeCore(1000000);   // budget never reached
    bool done_fired = false;
    core.setOnDone([&] { done_fired = true; });
    core.start();
    h.eq.runUntil();
    EXPECT_TRUE(done_fired);
    EXPECT_TRUE(core.done());
}

TEST(Core, BudgetCpiMatchesTimeline)
{
    CpuHarness h;
    h.src.chunks.push_back(chunk(999, 1.0, 0));
    Core core = h.makeCore(1000);
    core.start();
    h.eq.runUntil();
    // CPI = total cycles / 1000 instructions.
    double cycles = static_cast<double>(core.doneAt()) / 250.0;
    EXPECT_NEAR(core.budgetCpi(), cycles / 1000.0, 1e-9);
}

TEST(Core, WritebackAccompaniesMiss)
{
    CpuHarness h;
    TraceChunk c = chunk(10, 1.0, 0);
    c.hasWriteback = true;
    c.writebackAddr = 4096;
    h.src.chunks.push_back(c);
    Core core = h.makeCore(11);
    core.start();
    h.eq.runUntil();
    McCounters mc = h.mc.sampleCounters();
    EXPECT_EQ(mc.reads, 1u);
    EXPECT_EQ(mc.writes, 1u);
}

TEST(Core, ZeroGapChunksIssueImmediately)
{
    CpuHarness h;
    h.src.chunks.push_back(chunk(0, 1.0, 0));
    h.src.chunks.push_back(chunk(0, 1.0, 64));
    Core core = h.makeCore(2);
    core.start();
    h.eq.runUntil();
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.tlm(), 2u);
}
