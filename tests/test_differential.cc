/**
 * @file
 * Differential-harness tests: the Reference event kernel must agree
 * bit-for-bit with the production Fast kernel, sweeps must agree
 * across worker counts, and the diff machinery itself must detect
 * injected divergence (a differ that can't fail proves nothing).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/differential.hh"
#include "harness/experiment.hh"

using namespace memscale;

namespace
{

SystemConfig
smallConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 500'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    return cfg;
}

} // namespace

TEST(Differential, ReferenceKernelMatchesFastKernel)
{
    DifferentialHarness diff(2);
    DiffReport rep = diff.kernelDiff(smallConfig("MID1"), "memscale");
    EXPECT_TRUE(rep.identical()) << rep.str();
}

TEST(Differential, ReferenceKernelMatchesOnMemBoundMix)
{
    DifferentialHarness diff(2);
    DiffReport rep = diff.kernelDiff(smallConfig("MEM1"), "fastpd");
    EXPECT_TRUE(rep.identical()) << rep.str();
}

TEST(Differential, SweepAgreesAcrossWorkerCounts)
{
    DifferentialHarness diff(4);
    std::vector<SweepCase> cases;
    for (const char *mix : {"ILP1", "MID1", "MEM1"}) {
        SweepCase c;
        c.cfg = smallConfig(mix);
        c.policy = "memscale";
        cases.push_back(std::move(c));
    }
    for (const DiffReport &rep : diff.sweepDiff(cases))
        EXPECT_TRUE(rep.identical()) << rep.str();
}

TEST(Differential, DifferDetectsInjectedCounterDrift)
{
    SystemConfig cfg = smallConfig("MID1");
    RunResult a = runPolicy(cfg, "memscale", 150.0);
    RunResult b = a;
    b.counters.reads += 1;
    DiffReport rep = diffRunResults("inject", a, b);
    ASSERT_FALSE(rep.identical());
    ASSERT_EQ(rep.diffs.size(), 1u);
    EXPECT_EQ(rep.diffs.front().field, "counters.reads");
    EXPECT_NE(rep.hashA, rep.hashB);
}

TEST(Differential, DifferDetectsInjectedEnergyDrift)
{
    SystemConfig cfg = smallConfig("MID1");
    RunResult a = runPolicy(cfg, "memscale", 150.0);
    RunResult b = a;
    // One ulp of drift in one energy category must not slip through.
    b.energy.background =
        std::nextafter(b.energy.background, 1e30);
    DiffReport rep = diffRunResults("inject", a, b);
    ASSERT_FALSE(rep.identical());
    EXPECT_EQ(rep.diffs.front().field, "energy.background");
}

TEST(Differential, DifferDetectsTimelineDivergence)
{
    SystemConfig cfg = smallConfig("MID1");
    RunResult a = runPolicy(cfg, "memscale", 150.0);
    ASSERT_FALSE(a.timeline.empty());
    RunResult b = a;
    b.timeline.back().busMHz = 12345;
    DiffReport rep = diffRunResults("inject", a, b);
    ASSERT_FALSE(rep.identical());
    EXPECT_NE(rep.diffs.front().field.find("busMHz"),
              std::string::npos);
}

TEST(Differential, ReportStringsAreReadable)
{
    SystemConfig cfg = smallConfig("ILP1");
    RunResult a = runPolicy(cfg, "fastpd", 150.0);
    DiffReport same = diffRunResults("same", a, a);
    EXPECT_TRUE(same.identical());
    EXPECT_NE(same.str().find("identical"), std::string::npos);

    RunResult b = a;
    b.runtime += 1;
    DiffReport rep = diffRunResults("drift", a, b);
    std::string s = rep.str();
    EXPECT_NE(s.find("runtime"), std::string::npos);
    EXPECT_NE(s.find("vs"), std::string::npos);
}

TEST(Differential, RunAllSelfCheckPasses)
{
    // What the bench drivers execute under --check, scaled down.
    EXPECT_EQ(runSelfCheck(smallConfig("MID1"), 2), 0u);
}
