/**
 * @file
 * End-to-end tests of the open-loop serving path: sane request
 * accounting under Poisson load, the SLO policy meeting a p99 target
 * the CPI-bound policy misses at lower-than-baseline energy, graceful
 * degradation to the nominal frequency under overload, bounded-queue
 * drop accounting, and observability integration.
 *
 * All runs are deterministic (fixed seeds, bit-reproducible kernel),
 * so the latency assertions are exact, not statistical.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "memscale/policies/policy.hh"

using namespace memscale;

namespace
{

/** The calibrated operating point shared by the tests below. */
SystemConfig
serveConfig(double rate_per_sec = 0.5e6)
{
    SystemConfig cfg;
    cfg.mixName = "OPENLOOP";
    cfg.numCores = 8;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    cfg.seed = 12345;
    cfg.serving.enabled = true;
    cfg.serving.arrival.kind = ArrivalKind::Poisson;
    cfg.serving.arrival.ratePerSec = rate_per_sec;
    cfg.serving.horizon = msToTick(1.0);
    cfg.serving.sloP99Us = 3.0;
    return cfg;
}

/** arrived = completed + dropped + queued + in service. */
void
expectConservation(const ServingStats &s)
{
    EXPECT_TRUE(s.valid);
    EXPECT_EQ(s.arrived, s.completed + s.dropped + s.queuedAtEnd +
                             s.inServiceAtEnd);
}

} // namespace

TEST(Serving, BaselineRunAccounting)
{
    SystemConfig cfg = serveConfig();
    Watts rest = 0.0;
    RunResult r = runBaseline(cfg, rest);

    const ServingStats &s = r.serving;
    expectConservation(s);
    EXPECT_GT(rest, 0.0);
    // ~500 arrivals expected at 0.5M/s over 1 ms; Poisson noise on a
    // fixed seed is frozen, so a generous band documents intent.
    EXPECT_GT(s.arrived, 400u);
    EXPECT_LT(s.arrived, 650u);
    EXPECT_GT(s.completed, 0u);
    EXPECT_NEAR(s.offeredQps, 0.5e6, 0.1e6);
    EXPECT_EQ(s.dropped, 0u);
    // Percentiles are nondecreasing and the tail fits the histogram.
    EXPECT_LE(s.p50Us, s.p95Us);
    EXPECT_LE(s.p95Us, s.p99Us);
    EXPECT_LE(s.p99Us, s.p999Us);
    EXPECT_LE(s.p999Us, s.maxUs + 1.0);
    EXPECT_EQ(s.histOverflow, 0u);
    EXPECT_GT(s.meanUs, 0.0);
    // Per-core rows come from the workers.
    ASSERT_EQ(r.coreCpi.size(), cfg.numCores);
    ASSERT_EQ(r.coreApp.size(), cfg.numCores);
    EXPECT_EQ(r.coreApp[0], "openloop");
    // Serving runs end at the horizon, not a budget exhaustion.
    EXPECT_FALSE(r.hitTimeLimit);
    EXPECT_EQ(r.runtime, cfg.serving.horizon);
}

TEST(Serving, SloMeetsTargetThatMemscaleMissesAtLowerEnergy)
{
    // The acceptance point: at 0.5 Mreq/s with a 3 us p99 target, the
    // CPI-bound memscale policy (which only sees per-epoch slack, not
    // the tail) over-throttles the bus and blows the target, while
    // the SLO policy holds p99 at the target with real savings.
    SystemConfig cfg = serveConfig();
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    RunResult mem = runPolicy(cfg, "memscale", rest);
    RunResult slo = runPolicy(cfg, "slo", rest);

    expectConservation(mem.serving);
    expectConservation(slo.serving);

    const double target = cfg.serving.sloP99Us;
    EXPECT_GT(mem.serving.p99Us, target)
        << "memscale was expected to miss the target here";
    EXPECT_LE(slo.serving.p99Us, target);
    EXPECT_LT(slo.energy.total(), base.energy.total());
    // SLO trades some of memscale's savings for the met target, but
    // must not give all of them back.
    EXPECT_LT(mem.energy.total(), slo.energy.total());
}

TEST(Serving, SloDegradesToNominalUnderOverload)
{
    // 20 Mreq/s is ~3x this system's service capacity: queues grow
    // without bound and no frequency can meet any target, so the SLO
    // policy must pin the bus at nominal (800 MHz) and match the
    // baseline's behaviour rather than chase savings.
    SystemConfig cfg = serveConfig(20.0e6);
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    RunResult slo = runPolicy(cfg, "slo", rest);

    expectConservation(slo.serving);
    EXPECT_GT(slo.serving.queuedAtEnd, 0u);
    ASSERT_FALSE(slo.timeline.empty());
    for (const EpochRecord &er : slo.timeline)
        EXPECT_EQ(er.busMHz, 800u);
    // Pinned at nominal, the overloaded run serves exactly what the
    // baseline serves.
    EXPECT_EQ(slo.serving.completed, base.serving.completed);
    EXPECT_DOUBLE_EQ(slo.serving.p99Us, base.serving.p99Us);
}

TEST(Serving, BoundedQueueDropsAndConserves)
{
    SystemConfig cfg = serveConfig(20.0e6);
    cfg.serving.maxQueue = 8;
    Watts rest = 0.0;
    RunResult r = runBaseline(cfg, rest);

    const ServingStats &s = r.serving;
    expectConservation(s);
    EXPECT_GT(s.dropped, 0u);
    EXPECT_LE(s.queuePeak, 8u);
    EXPECT_LE(s.queuedAtEnd, 8u);
    // The bounded queue caps waiting time, so the tail stays finite
    // even at 3x overload.
    EXPECT_LT(s.p99Us, cfg.serving.histMaxUs);
}

TEST(Serving, FixedDemandStillConserves)
{
    SystemConfig cfg = serveConfig();
    cfg.serving.fixedDemand = true;
    Watts rest = 0.0;
    RunResult r = runBaseline(cfg, rest);
    expectConservation(r.serving);
    EXPECT_GT(r.serving.completed, 0u);
    // Every request costs exactly 8 misses; with a fixed per-request
    // compute segment the latency spread collapses vs. geometric
    // demand (same seed, same arrivals).
    SystemConfig geo = serveConfig();
    Watts rest2 = 0.0;
    RunResult g = runBaseline(geo, rest2);
    EXPECT_LT(r.serving.p999Us - r.serving.p50Us,
              g.serving.p999Us - g.serving.p50Us);
}

TEST(Serving, ObservabilityRecordsServingColumns)
{
    SystemConfig cfg = serveConfig();
    cfg.observe = true;
    auto policy = makePolicy("slo");
    System sys(cfg, *policy);
    RunResult r = sys.run();

    ASSERT_TRUE(r.obs);
    EXPECT_GT(r.obs->epochs(), 0u);
    const std::vector<std::string> &names = r.obs->columnNames();
    auto has = [&](const std::string &n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("serving.completed"));
    EXPECT_TRUE(has("serving.queueDepth"));
    EXPECT_TRUE(has("serving.latencyUs.p99"));
    EXPECT_TRUE(has("policy.lastP99Us"));
}

TEST(Serving, CpuPowerModelChargesWorkers)
{
    // Serving + explicit CPU power (the coordinated-DVFS extension):
    // each ServingWorker is charged active power for its busy
    // fraction and leakage otherwise, so cpu energy is positive but
    // bounded by every core running flat out for the whole horizon.
    SystemConfig cfg = serveConfig();
    cfg.modelCpuPower = true;
    Watts rest = 0.0;
    RunResult r = runBaseline(cfg, rest);

    expectConservation(r.serving);
    EXPECT_GT(r.energy.cpu, 0.0);
    const double horizon_sec = tickToSec(cfg.serving.horizon);
    const Watts flat_out =
        cfg.power.cpuCorePower(cfg.power.cpuNominalGHz, 1.0);
    EXPECT_LT(r.energy.cpu,
              cfg.numCores * flat_out * horizon_sec * (1.0 + 1e-9));
    // At 0.5 Mreq/s the workers are mostly idle, so the charged
    // energy sits well below the flat-out bound too.
    EXPECT_LT(r.energy.cpu,
              0.5 * cfg.numCores * flat_out * horizon_sec);

    // The modelled-CPU run remains behaviourally identical: only the
    // energy accounting moves (out of rest, into cpu).
    SystemConfig plain = serveConfig();
    Watts rest2 = 0.0;
    RunResult p = runBaseline(plain, rest2);
    EXPECT_EQ(p.serving.completed, r.serving.completed);
    EXPECT_DOUBLE_EQ(p.serving.p99Us, r.serving.p99Us);
    EXPECT_DOUBLE_EQ(r.energy.dram(), p.energy.dram());
}

TEST(Serving, DemandMixesServeEndToEnd)
{
    // The demand shape only rebundles work into requests: the same
    // offered load must conserve requests under every mix, and the
    // heavier-tailed shapes pay for it in tail latency.
    auto run_mix = [&](DemandMix mix) {
        SystemConfig cfg = serveConfig();
        cfg.serving.demandMix = mix;
        Watts rest = 0.0;
        RunResult r = runBaseline(cfg, rest);
        expectConservation(r.serving);
        EXPECT_GT(r.serving.completed, 0u) << demandMixName(mix);
        return r;
    };

    RunResult geo = run_mix(DemandMix::Geometric);
    RunResult logn = run_mix(DemandMix::LogNormal);
    RunResult two = run_mix(DemandMix::TwoClass);

    // Same arrival stream in all three runs (the demand Rng is a
    // separate derived stream), so arrivals match exactly.
    EXPECT_EQ(logn.serving.arrived, geo.serving.arrived);
    EXPECT_EQ(two.serving.arrived, geo.serving.arrived);
    // The rare ~6x-mean heavy requests of the two-class mix stretch
    // the extreme tail beyond the memoryless shape's.
    EXPECT_GT(two.serving.p999Us, geo.serving.p999Us);
    EXPECT_GT(two.serving.maxUs, geo.serving.maxUs);
}
