/**
 * @file
 * Bound/weave parallel kernel tests.
 *
 * The contract under test is absolute bit-identity: a run at any
 * thread count must produce exactly the same observable state — the
 * full flattenRunResult() digest, including counters, energy, CPI,
 * and the per-epoch decision timeline — as the serial (threads=1)
 * kernel.  The suite pins this three ways: the full mix matrix at
 * several thread counts against the serial run, the unregenerated
 * MID1 golden hash reproduced at every thread count, and a churn
 * fuzz that forces weave barriers through mid-relock, mid-refresh,
 * and powered-down-rank states with the strict protocol checker
 * attached (any ordering bug that surfaces as a timing violation
 * aborts the run, not just the comparison).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/differential.hh"
#include "harness/experiment.hh"
#include "sim/event_queue.hh"
#include "sim/weave.hh"

using namespace memscale;

namespace
{

/** Fixed rest-of-system wattage (matches test_golden). */
constexpr Watts RestWatts = 150.0;

/** The exact scenario behind test_golden's pinned hashes. */
SystemConfig
goldenConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 500'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    cfg.seed = 12345;
    return cfg;
}

/** Smaller budget for the broad mix x threads matrix. */
SystemConfig
matrixConfig(const std::string &mix)
{
    SystemConfig cfg = goldenConfig(mix);
    cfg.instrBudget = 250'000;
    return cfg;
}

std::uint64_t
hashAt(SystemConfig cfg, const std::string &policy, unsigned threads)
{
    cfg.threads = threads;
    return hashRunResult(runPolicy(cfg, policy, RestWatts));
}

const char *const kAllMixes[] = {
    "ILP1", "ILP2", "ILP3", "ILP4", "MID1", "MID2",
    "MID3", "MID4", "MEM1", "MEM2", "MEM3", "MEM4",
};

/** test_golden's pinned MID1 digest at the goldenConfig scenario. */
constexpr std::uint64_t kMid1Golden = 0x509463a53f9d2cfdull;

} // namespace

TEST(ParallelKernel, SerialVsThreadedAllMixes)
{
    for (const char *mix : kAllMixes) {
        const std::uint64_t serial =
            hashAt(matrixConfig(mix), "memscale", 1);
        for (unsigned threads : {2u, 4u, 8u}) {
            EXPECT_EQ(hashAt(matrixConfig(mix), "memscale", threads),
                      serial)
                << mix << " diverged at threads=" << threads;
        }
    }
}

TEST(ParallelKernel, PinnedGoldenAtEveryThreadCount)
{
    // The goldens must pass *unregenerated* at every thread count:
    // the parallel kernel reproduces the exact serial digest, not a
    // new one of its own.
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        EXPECT_EQ(hashAt(goldenConfig("MID1"), "memscale", threads),
                  kMid1Golden)
            << "MID1 golden diverged at threads=" << threads;
    }
}

TEST(ParallelKernel, EpochBoundaryChurnUnderStrictChecker)
{
    // Weave barriers land on whatever the bound phase left in flight:
    // relocks straddling an epoch edge (memscale re-clocks), ranks in
    // (self-refresh) powerdown (fastpd), refreshes mid-window.  The
    // strict checker turns any replay-ordering bug that perturbs
    // timing validation into a hard abort; the digest comparison
    // catches everything else.
    for (const char *policy : {"memscale", "fastpd"}) {
        for (std::uint64_t seed : {7ull, 99ull}) {
            for (std::uint32_t channels : {4u, 8u}) {
                SystemConfig cfg = matrixConfig("MID3");
                cfg.mem.numChannels = channels;
                cfg.seed = seed;
                cfg.protocolCheck = true;
                cfg.strictCheck = true;
                EXPECT_EQ(hashAt(cfg, policy, 4),
                          hashAt(cfg, policy, 1))
                    << policy << " seed=" << seed
                    << " channels=" << channels;
            }
        }
    }
}

TEST(ParallelKernel, OpenLoopServingBitIdenticalAcrossThreads)
{
    // The serving front end (arrivals, queueing, per-request latency
    // histograms) runs entirely in the bound phase, so the open-loop
    // digest — which folds in every ServingStats field — must be
    // bit-identical at any thread count, protocol checker attached.
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty,
                             ArrivalKind::Diurnal}) {
        SystemConfig cfg;
        cfg.mixName = "OPENLOOP";
        cfg.numCores = 8;
        cfg.epochLen = msToTick(0.1);
        cfg.profileLen = usToTick(10.0);
        cfg.seed = 12345;
        cfg.mem.numChannels = 8;
        cfg.protocolCheck = true;
        cfg.serving.enabled = true;
        cfg.serving.arrival.kind = kind;
        cfg.serving.arrival.ratePerSec = 2.0e6;
        cfg.serving.horizon = msToTick(0.5);
        cfg.serving.sloP99Us = 3.0;

        const std::uint64_t serial = hashAt(cfg, "slo", 1);
        for (unsigned threads : {2u, 4u}) {
            EXPECT_EQ(hashAt(cfg, "slo", threads), serial)
                << arrivalKindName(kind)
                << " diverged at threads=" << threads;
        }
    }
}

TEST(ParallelKernel, ThreadDiffHarnessIsClean)
{
    DifferentialHarness diff(4);
    SystemConfig cfg = matrixConfig("MID1");
    cfg.protocolCheck = true;
    DiffReport rep = diff.threadDiff(cfg, "memscale", 4);
    EXPECT_TRUE(rep.identical()) << rep.str();
}

TEST(ParallelKernel, ShardedThreadedRunMatchesSerial)
{
    // Checkpoint/resume composes with the weave kernel: cutting a
    // threaded run at arbitrary ticks (each cut drains the weave
    // barrier first) and resuming threaded must land on the serial
    // uninterrupted digest.
    SystemConfig cfg = matrixConfig("MID2");
    RunResult serial = runPolicy(cfg, "memscale", RestWatts);
    ASSERT_GT(serial.runtime, 0u);

    SystemConfig threaded = cfg;
    threaded.threads = 4;
    const std::vector<Tick> cuts = {serial.runtime / 3,
                                    (2 * serial.runtime) / 3};
    RunResult sharded = runPolicySharded(
        threaded, "memscale", RestWatts, cuts,
        "/tmp/memscale_test_parallel_shard");
    EXPECT_EQ(hashRunResult(sharded), hashRunResult(serial));
}

TEST(ParallelKernel, ExportGuardRefusesHalfWovenCut)
{
    EventQueue eq(KernelMode::Fast);
    eq.setExportGuard([] { return false; });
    EXPECT_THROW(eq.exportPending(), FatalError);
}

TEST(ParallelKernel, WeaveHubRunsTasksAtBarriers)
{
    WeaveHub hub;
    int a = 0;
    int b = 0;
    EXPECT_EQ(hub.addTask([&a] { ++a; }), 0u);
    EXPECT_EQ(hub.addTask([&b] { b += 2; }), 1u);
    EXPECT_EQ(hub.tasks(), 2u);

    // No runner installed: barrier() falls back to inline execution.
    hub.barrier();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);

    // A runner sees the task count and dispatches by index.
    std::size_t seen = 0;
    hub.setRunner([&seen](std::size_t n,
                          const std::function<void(std::size_t)> &fn) {
        seen = n;
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
    });
    hub.barrier();
    EXPECT_EQ(seen, 2u);
    EXPECT_EQ(a, 2);
    EXPECT_EQ(b, 4);
    EXPECT_EQ(hub.barriers(), 2u);
}
