/**
 * @file
 * Hardening tests for the statistics primitives backing the
 * observability layer: Histogram percentile edge cases and the
 * Accumulator parallel-merge serial-equivalence property.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace memscale;

// ---------------------------------------------------------------------------
// Histogram::percentile edge cases
// ---------------------------------------------------------------------------

TEST(HistogramPercentile, EmptyReturnsLowerBound)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(HistogramPercentile, PZeroReturnsLowerBound)
{
    Histogram h(2.0, 12.0, 5);
    for (double x : {3.0, 5.0, 7.0, 11.0})
        h.add(x);
    // target = 0 samples: nothing needs to fall below, so lo.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
}

TEST(HistogramPercentile, POneCoversAllSamples)
{
    Histogram h(0.0, 10.0, 10);
    for (double x : {0.5, 1.5, 2.5, 9.5})
        h.add(x);
    // p=1 must return an upper edge at or above the last occupied
    // bucket; with the top sample in [9,10) that is the histogram hi.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);

    Histogram low(0.0, 10.0, 10);
    low.add(0.5);
    low.add(0.7);
    // All mass in the first bucket: p=1 is that bucket's upper edge.
    EXPECT_DOUBLE_EQ(low.percentile(1.0), 1.0);
}

TEST(HistogramPercentile, AllUnderflowReturnsLowerBound)
{
    Histogram h(10.0, 20.0, 4);
    for (int i = 0; i < 8; ++i)
        h.add(-5.0);
    EXPECT_EQ(h.underflow(), 8u);
    EXPECT_EQ(h.count(), 8u);
    // Every percentile is pinned at lo: all mass sits below the range.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(HistogramPercentile, AllOverflowReturnsUpperBound)
{
    Histogram h(0.0, 1.0, 4);
    for (int i = 0; i < 8; ++i)
        h.add(99.0);
    EXPECT_EQ(h.overflow(), 8u);
    // The scan exhausts every bucket without reaching the target, so
    // any p > 0 saturates at hi.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.0);
    // p=0 still reports lo (zero samples required below it).
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
}

TEST(HistogramPercentile, MonotoneInP)
{
    Histogram h(0.0, 100.0, 50);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        h.add(rng.uniform(-10.0, 110.0));
    double prev = h.percentile(0.0);
    for (double p = 0.05; p <= 1.0 + 1e-12; p += 0.05) {
        double cur = h.percentile(p);
        EXPECT_GE(cur, prev) << "percentile not monotone at p=" << p;
        prev = cur;
    }
}

TEST(HistogramPercentile, BucketEdgeSemantics)
{
    // 10 samples spread one per bucket: p=0.5 needs 5 samples, which
    // the scan reaches at the end of the 5th bucket (upper edge 5.0).
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.1), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(HistogramPercentile, InvalidConstructionThrows)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);   // empty range
    EXPECT_THROW(Histogram(5.0, 1.0, 4), FatalError);   // inverted
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);   // no buckets
}

TEST(HistogramPercentile, ResetClearsEverything)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(5.0);
    h.add(100.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(HistogramPercentile, FractionalRankRoundsUp)
{
    // 100 samples, one per bucket.  p=0.29 needs the 29th-smallest
    // sample (nearest-rank ceil), which sits in bucket 28 with upper
    // edge 29.  0.29 * 100 evaluates to 28.999... in binary; a
    // truncating target would step a whole rank down and report 28.
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.29), 29.0);
    // A genuinely fractional rank also rounds up: p=0.95 over 10
    // samples needs ceil(9.5) = 10 of them.
    Histogram t(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        t.add(i + 0.5);
    EXPECT_DOUBLE_EQ(t.percentile(0.95), 10.0);
}

TEST(HistogramPercentile, SingleSample)
{
    Histogram h(0.0, 1000.0, 1000);
    h.add(123.4);
    // Every non-zero percentile needs that one sample; its bucket
    // [123, 124) answers them all.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 124.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 124.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.999), 124.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 124.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
}

TEST(HistogramPercentile, SparseTailP999)
{
    // Tail-latency shape: almost all mass near zero, a handful of
    // stragglers far out.  9990 fast + 10 slow samples: p99.9 is the
    // 9990th sample (still fast), p99.95 and up must walk into the
    // sparse tail instead of stopping at the bulk.
    Histogram h(0.0, 1000.0, 1000);
    for (int i = 0; i < 9990; ++i)
        h.add(1.5);
    for (int i = 0; i < 10; ++i)
        h.add(900.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.999), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9995), 901.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 901.0);
    // A single extreme straggler among 499 fast samples: p99.9 over
    // 500 samples is rank ceil(499.5) = 500 — the straggler itself.
    Histogram one(0.0, 1000.0, 1000);
    for (int i = 0; i < 499; ++i)
        one.add(1.5);
    one.add(700.25);
    EXPECT_DOUBLE_EQ(one.percentile(0.999), 701.0);
}

// ---------------------------------------------------------------------------
// Histogram::merge
// ---------------------------------------------------------------------------

TEST(HistogramMerge, MergeThenPercentileMatchesSerial)
{
    // Property: shard-and-merge is *exactly* the serial histogram —
    // counts are integers, so there is no rounding story at all.
    Rng rng(0xBEEF);
    for (int trial = 0; trial < 20; ++trial) {
        Histogram serial(0.0, 100.0, 200);
        std::vector<Histogram> shards(1 + rng.below(6),
                                      Histogram(0.0, 100.0, 200));
        std::size_t n = 100 + rng.below(3000);
        for (std::size_t i = 0; i < n; ++i) {
            double x = rng.uniform(-5.0, 110.0);
            serial.add(x);
            shards[rng.below(shards.size())].add(x);
        }
        Histogram merged(0.0, 100.0, 200);
        for (const Histogram &s : shards)
            merged.merge(s);
        EXPECT_EQ(merged.count(), serial.count());
        EXPECT_EQ(merged.underflow(), serial.underflow());
        EXPECT_EQ(merged.overflow(), serial.overflow());
        EXPECT_EQ(merged.buckets(), serial.buckets());
        for (double p : {0.5, 0.9, 0.99, 0.999, 1.0}) {
            EXPECT_DOUBLE_EQ(merged.percentile(p),
                             serial.percentile(p))
                << "trial " << trial << " p=" << p;
        }
    }
}

TEST(HistogramMerge, PercentileThenMergeDiverges)
{
    // The anti-pattern Histogram::merge exists to prevent: averaging
    // per-shard percentiles.  Two shards with disjoint mass — one all
    // fast, one all slow — give a mean-of-p99s of ~(2 + 901)/2, while
    // the true merged p99 over 1000+2 samples is still fast.  Any
    // cross-shard tail statistic must merge counts first.
    Histogram fast(0.0, 1000.0, 1000);
    for (int i = 0; i < 1000; ++i)
        fast.add(1.5);
    Histogram slow(0.0, 1000.0, 1000);
    slow.add(900.5);
    slow.add(900.5);

    double averaged =
        (fast.percentile(0.99) + slow.percentile(0.99)) / 2.0;

    Histogram merged(0.0, 1000.0, 1000);
    merged.merge(fast);
    merged.merge(slow);
    // Serial reference over the union of samples.
    Histogram serial(0.0, 1000.0, 1000);
    for (int i = 0; i < 1000; ++i)
        serial.add(1.5);
    serial.add(900.5);
    serial.add(900.5);

    EXPECT_DOUBLE_EQ(merged.percentile(0.99), serial.percentile(0.99));
    EXPECT_DOUBLE_EQ(merged.percentile(0.99), 2.0);
    EXPECT_GT(averaged, 100.0);   // wildly off the true tail
}

TEST(HistogramMerge, GeometryMismatchIsFatal)
{
    Histogram a(0.0, 10.0, 10);
    Histogram range(0.0, 20.0, 10);
    Histogram bins(0.0, 10.0, 20);
    EXPECT_THROW(a.merge(range), FatalError);
    EXPECT_THROW(a.merge(bins), FatalError);
    Histogram ok(0.0, 10.0, 10);
    ok.add(5.0);
    a.merge(ok);
    EXPECT_EQ(a.count(), 1u);
}

TEST(HistogramMerge, SetCountsRoundTrip)
{
    // setCounts (the checkpoint-restore path) must reproduce the
    // source histogram exactly, including the recomputed total.
    Histogram src(0.0, 50.0, 25);
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        src.add(rng.uniform(-10.0, 60.0));
    Histogram dst(0.0, 50.0, 25);
    dst.setCounts(src.buckets(), src.underflow(), src.overflow());
    EXPECT_EQ(dst.count(), src.count());
    for (double p : {0.25, 0.5, 0.99, 0.999})
        EXPECT_DOUBLE_EQ(dst.percentile(p), src.percentile(p));
    std::vector<std::uint64_t> wrong(7, 0);
    EXPECT_THROW(dst.setCounts(wrong, 0, 0), FatalError);
}

// ---------------------------------------------------------------------------
// Accumulator::merge serial-equivalence property
// ---------------------------------------------------------------------------

namespace
{

/// Reference: accumulate all samples serially in order.
Accumulator
serialAccumulate(const std::vector<double> &xs)
{
    Accumulator a;
    for (double x : xs)
        a.add(x);
    return a;
}

/// Split xs at the given cut points, accumulate each shard
/// independently, then merge the shards left-to-right.
Accumulator
shardedAccumulate(const std::vector<double> &xs,
                  const std::vector<std::size_t> &cuts)
{
    std::vector<Accumulator> shards;
    std::size_t begin = 0;
    for (std::size_t cut : cuts) {
        Accumulator a;
        for (std::size_t i = begin; i < cut; ++i)
            a.add(xs[i]);
        shards.push_back(a);
        begin = cut;
    }
    Accumulator tail;
    for (std::size_t i = begin; i < xs.size(); ++i)
        tail.add(xs[i]);
    shards.push_back(tail);

    Accumulator merged;
    for (const Accumulator &s : shards)
        merged.merge(s);
    return merged;
}

void
expectEquivalent(const Accumulator &serial, const Accumulator &merged)
{
    // Count, min, and max are exact regardless of grouping.
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_DOUBLE_EQ(merged.min(), serial.min());
    EXPECT_DOUBLE_EQ(merged.max(), serial.max());
    // Sum/mean/variance differ only by floating-point regrouping.
    double scale = std::max(1.0, std::fabs(serial.sum()));
    EXPECT_NEAR(merged.sum(), serial.sum(), 1e-9 * scale);
    EXPECT_NEAR(merged.mean(), serial.mean(),
                1e-9 * std::max(1.0, std::fabs(serial.mean())));
    EXPECT_NEAR(merged.variance(), serial.variance(),
                1e-7 * std::max(1.0, serial.variance()));
}

} // namespace

TEST(AccumulatorMerge, RandomShardSplitsMatchSerial)
{
    Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 50; ++trial) {
        std::size_t n = 1 + rng.below(400);
        std::vector<double> xs;
        xs.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            xs.push_back(rng.uniform(-1e3, 1e3));

        // Random number of random cut points (possibly duplicated or
        // at the ends, producing empty shards).
        std::size_t ncuts = rng.below(8);
        std::vector<std::size_t> cuts;
        for (std::size_t i = 0; i < ncuts; ++i)
            cuts.push_back(rng.below(n + 1));
        std::sort(cuts.begin(), cuts.end());

        expectEquivalent(serialAccumulate(xs),
                         shardedAccumulate(xs, cuts));
    }
}

TEST(AccumulatorMerge, NearConstantValuesStayStable)
{
    // The Welford/Chan path must not go catastrophically wrong on
    // near-identical samples (the motivating case in stats.hh).
    Rng rng(42);
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i)
        xs.push_back(1e9 + rng.uniform(0.0, 1e-3));
    Accumulator serial = serialAccumulate(xs);
    Accumulator merged = shardedAccumulate(xs, {250, 500, 750});
    EXPECT_GE(serial.variance(), 0.0);
    EXPECT_GE(merged.variance(), 0.0);
    expectEquivalent(serial, merged);
}

TEST(AccumulatorMerge, EmptySidesAreIdentityElements)
{
    std::vector<double> xs = {1.0, 2.0, 3.0};
    Accumulator serial = serialAccumulate(xs);

    Accumulator empty_into_full = serialAccumulate(xs);
    empty_into_full.merge(Accumulator());
    expectEquivalent(serial, empty_into_full);

    Accumulator full_into_empty;
    full_into_empty.merge(serial);
    expectEquivalent(serial, full_into_empty);

    Accumulator both;
    both.merge(Accumulator());
    EXPECT_EQ(both.count(), 0u);
    EXPECT_DOUBLE_EQ(both.mean(), 0.0);
    EXPECT_DOUBLE_EQ(both.variance(), 0.0);
}

TEST(AccumulatorMerge, SingleSampleShards)
{
    // Degenerate split: every shard holds exactly one sample.
    std::vector<double> xs = {4.0, -2.0, 7.5, 0.25, 11.0};
    std::vector<std::size_t> cuts = {1, 2, 3, 4};
    expectEquivalent(serialAccumulate(xs),
                     shardedAccumulate(xs, cuts));
}

TEST(AccumulatorMerge, MergeOrderInvariance)
{
    Rng rng(99);
    std::vector<double> xs;
    for (int i = 0; i < 300; ++i)
        xs.push_back(rng.uniform(-50.0, 50.0));

    Accumulator a = serialAccumulate({xs.begin(), xs.begin() + 100});
    Accumulator b =
        serialAccumulate({xs.begin() + 100, xs.begin() + 200});
    Accumulator c = serialAccumulate({xs.begin() + 200, xs.end()});

    Accumulator ab = a;
    ab.merge(b);
    ab.merge(c);
    Accumulator cb = c;
    cb.merge(b);
    cb.merge(a);
    EXPECT_EQ(ab.count(), cb.count());
    EXPECT_DOUBLE_EQ(ab.min(), cb.min());
    EXPECT_DOUBLE_EQ(ab.max(), cb.max());
    EXPECT_NEAR(ab.mean(), cb.mean(),
                1e-9 * std::max(1.0, std::fabs(ab.mean())));
    EXPECT_NEAR(ab.variance(), cb.variance(),
                1e-7 * std::max(1.0, ab.variance()));
}
