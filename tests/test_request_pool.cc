/**
 * @file
 * Request lifecycle under the RequestPool: slab recycling across a
 * full run (bounded capacity, zero leakage), completion ordering
 * unchanged under heavy write-drain + FR-FCFS promotion, and channel
 * destruction with queued and in-flight pooled requests (ASan-clean).
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "mem/request_pool.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

MemConfig
oneChannel(SchedulerPolicy sched = SchedulerPolicy::Fcfs)
{
    MemConfig cfg;
    cfg.numChannels = 1;
    cfg.scheduler = sched;
    return cfg;
}

Addr
at(const MemoryController &mc, std::uint32_t bank, std::uint64_t row,
   std::uint64_t col = 0)
{
    DecodedAddr d;
    d.bank = bank;
    d.row = row;
    d.column = col;
    return mc.addressMap().encode(d);
}

/**
 * Deterministic heavy traffic: reads and writebacks concentrated on
 * two banks so the write queue hits its drain threshold and FR-FCFS
 * finds promotable row hits.  Returns the read completion order as
 * (seq, tick) pairs.
 */
std::vector<std::pair<std::uint64_t, Tick>>
runHeavyTraffic(SchedulerPolicy sched, std::uint64_t seed)
{
    EventQueue eq;
    MemConfig cfg = oneChannel(sched);
    MemoryController mc(eq, cfg);
    std::vector<std::pair<std::uint64_t, Tick>> order;
    FnClient client([&](Tick when, const MemRequest &req) {
        order.emplace_back(req.seq, when);
    });
    Rng rng(seed);
    Tick t = 0;
    for (int i = 0; i < 600; ++i) {
        t += rng.below(3) == 0 ? 0 : rng.below(nsToTick(40.0));
        std::uint32_t bank = rng.next() % 2;
        std::uint64_t row = rng.next() % 4;
        bool is_write = rng.chance(0.45);
        Addr a = at(mc, bank, row, rng.next() % 16);
        eq.schedule(t, [&, a, is_write] {
            if (is_write)
                mc.writeback(a, 0);
            else
                mc.read(a, 0, &client);
        });
    }
    eq.runUntil();
    EXPECT_EQ(mc.pending(), 0u);
    EXPECT_EQ(mc.requestPool().inUse(), 0u);
    McCounters c = mc.sampleCounters();
    EXPECT_GT(c.writes, 0u);
    if (sched == SchedulerPolicy::FrFcfs) {
        EXPECT_GT(c.rbhc, 0u);   // promotions actually exercised
    }
    return order;
}

} // namespace

TEST(RequestPool, AllocReleaseRoundTrip)
{
    RequestPool pool;
    EXPECT_EQ(pool.inUse(), 0u);
    MemRequest *a = pool.alloc();
    MemRequest *b = pool.alloc();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.inUse(), 2u);
    EXPECT_EQ(pool.capacity(), RequestPool::ChunkSize);
    a->addr = 0xdead;
    pool.release(a);
    // LIFO recycling hands the same slab slot back, zeroed.
    MemRequest *c = pool.alloc();
    EXPECT_EQ(c, a);
    EXPECT_EQ(c->addr, 0u);
    EXPECT_EQ(c->client, nullptr);
    pool.release(b);
    pool.release(c);
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(RequestPool, SlabGrowsPastOneChunk)
{
    RequestPool pool;
    std::vector<MemRequest *> live;
    for (std::size_t i = 0; i < 3 * RequestPool::ChunkSize + 1; ++i)
        live.push_back(pool.alloc());
    EXPECT_EQ(pool.inUse(), live.size());
    EXPECT_GE(pool.capacity(), live.size());
    for (MemRequest *r : live)
        pool.release(r);
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(RequestPool, RecyclesAcrossFullRun)
{
    // Waves of traffic through a controller: after the first wave has
    // sized the slab, later waves must recycle it without growth, and
    // every request must come home (inUse == 0) when traffic drains.
    EventQueue eq;
    MemConfig cfg = oneChannel();
    MemoryController mc(eq, cfg);
    FnClient client([](Tick) {});
    std::size_t settled_capacity = 0;
    for (int wave = 0; wave < 12; ++wave) {
        for (int i = 0; i < 48; ++i) {
            Addr a = at(mc, static_cast<std::uint32_t>(i % 8),
                        static_cast<std::uint64_t>(wave % 4), i % 16);
            if (i % 3 == 0)
                mc.writeback(a, 0);
            else
                mc.read(a, 0, &client);
        }
        eq.runUntil();
        EXPECT_EQ(mc.requestPool().inUse(), 0u) << "wave " << wave;
        if (wave == 0)
            settled_capacity = mc.requestPool().capacity();
        else
            EXPECT_EQ(mc.requestPool().capacity(), settled_capacity)
                << "slab grew after warm-up in wave " << wave;
    }
}

TEST(RequestPool, InUseTracksControllerPending)
{
    EventQueue eq;
    MemConfig cfg = oneChannel();
    MemoryController mc(eq, cfg);
    FnClient client([](Tick) {});
    EXPECT_EQ(mc.requestPool().inUse(), 0u);
    for (int i = 0; i < 20; ++i)
        mc.read(at(mc, static_cast<std::uint32_t>(i % 8), 1), 0,
                &client);
    mc.writeback(at(mc, 0, 9), 0);
    EXPECT_EQ(mc.requestPool().inUse(), 21u);
    EXPECT_EQ(mc.requestPool().inUse(), mc.pending());
    eq.runUntil();
    EXPECT_EQ(mc.requestPool().inUse(), 0u);
}

TEST(RequestPool, CompletionOrderDeterministicUnderDrainAndPromotion)
{
    // Identical traffic into fresh controllers must complete in the
    // identical (seq, tick) order: pool recycling (same storage, new
    // identity) must not perturb FR-FCFS promotion or write drain.
    auto a = runHeavyTraffic(SchedulerPolicy::FrFcfs, 0xabcde);
    auto b = runHeavyTraffic(SchedulerPolicy::FrFcfs, 0xabcde);
    EXPECT_EQ(a, b);
    auto c = runHeavyTraffic(SchedulerPolicy::Fcfs, 0xabcde);
    EXPECT_EQ(c, runHeavyTraffic(SchedulerPolicy::Fcfs, 0xabcde));
}

TEST(RequestPool, FrFcfsPromotionOrderPreserved)
{
    // A(row 1), B(row 2), C(row 1) at one bank: FR-FCFS serves the
    // row-1 hit C before B — the intrusive-queue splice must reproduce
    // the deque-era completion order exactly.
    EventQueue eq;
    MemConfig cfg = oneChannel(SchedulerPolicy::FrFcfs);
    MemoryController mc(eq, cfg);
    std::vector<std::uint64_t> seqs;
    FnClient client([&](Tick, const MemRequest &req) {
        seqs.push_back(req.seq);
    });
    mc.read(at(mc, 0, 1, 0), 0, &client);
    mc.read(at(mc, 0, 2, 0), 1, &client);
    mc.read(at(mc, 0, 1, 1), 2, &client);
    eq.runUntil();
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 3, 2}));
}

TEST(RequestPool, WriteDrainInterleavesDeterministically)
{
    // Fill the write queue past its half-full drain threshold while a
    // read stream runs; the drain must retire every write and the
    // reads must all complete (the LIFO-recycled requests keep their
    // queue discipline).
    EventQueue eq;
    MemConfig cfg = oneChannel(SchedulerPolicy::FrFcfs);
    MemoryController mc(eq, cfg);
    std::uint64_t reads_done = 0;
    FnClient client([&](Tick) { ++reads_done; });
    // Reads first so pendingReads > 0 and the writebacks actually park
    // in the write queue instead of dispatching immediately.
    for (int i = 0; i < 10; ++i)
        mc.read(at(mc, 0, static_cast<std::uint64_t>(i)), 0, &client);
    for (std::uint32_t i = 0; i < cfg.writeQueueDepth; ++i)
        mc.writeback(at(mc, 1, 100 + i), 0);
    eq.runUntil();
    McCounters c = mc.sampleCounters();
    EXPECT_EQ(c.writes, cfg.writeQueueDepth);
    EXPECT_EQ(reads_done, 10u);
    EXPECT_EQ(mc.requestPool().inUse(), 0u);
}

TEST(RequestPool, ChannelDestructionReleasesQueuedAndInflight)
{
    // Tear the controller down mid-burst: queued requests, an
    // in-flight request at each bank head, and parked writebacks must
    // all return to the pool (no leak — ASan-clean) before the pool
    // itself is destroyed.
    EventQueue eq;
    {
        MemConfig cfg = oneChannel();
        MemoryController mc(eq, cfg);
        FnClient client([](Tick) {});
        for (int i = 0; i < 40; ++i)
            mc.read(at(mc, static_cast<std::uint32_t>(i % 4), 1, i), 0,
                    &client);
        for (int i = 0; i < 10; ++i)
            mc.writeback(at(mc, 7, 50 + i), 0);
        // Run just far enough that bank heads are in service but the
        // queues are still deep.
        eq.runUntil(nsToTick(40.0));
        EXPECT_GT(mc.requestPool().inUse(), 0u);
        EXPECT_EQ(mc.requestPool().inUse(), mc.pending());
    }
    // The events still queued reference the dead controller; they must
    // never run.  (A fresh queue would be equivalent; this documents
    // the contract.)
}

TEST(RequestPool, DestructionWithUntouchedQueueIsClean)
{
    EventQueue eq;
    MemConfig cfg = oneChannel();
    MemoryController mc(eq, cfg);
    FnClient client([](Tick) {});
    for (int i = 0; i < 8; ++i)
        mc.read(at(mc, 0, 1, i), 0, &client);
    EXPECT_EQ(mc.requestPool().inUse(), 8u);
    // Destroyed without running a single event: everything queued.
}
