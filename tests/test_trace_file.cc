/**
 * @file
 * Trace record/replay tests: round-trip fidelity, looping replay,
 * format validation, and recorder pass-through.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <string>

#include "common/log.hh"
#include "workload/trace_file.hh"
#include "workload/trace_source.hh"

using namespace memscale;

namespace
{

class VectorSource : public TraceSource
{
  public:
    std::deque<TraceChunk> chunks;

    bool
    next(TraceChunk &chunk) override
    {
        if (chunks.empty())
            return false;
        chunk = chunks.front();
        chunks.pop_front();
        return true;
    }
};

TraceChunk
mk(std::uint64_t instr, Addr miss, bool wb = false, Addr wba = 0)
{
    TraceChunk c;
    c.instructions = instr;
    c.cpi = 1.25;
    c.missAddr = miss;
    c.hasWriteback = wb;
    c.writebackAddr = wba;
    return c;
}

std::string
tempPath(const char *name)
{
    return std::string("/tmp/memscale_test_") + name + ".trc";
}

} // namespace

TEST(TraceFile, RoundTrip)
{
    std::string path = tempPath("roundtrip");
    VectorSource src;
    src.chunks.push_back(mk(100, 0x1000));
    src.chunks.push_back(mk(0, 0x2040, true, 0x9fc0));
    src.chunks.push_back(mk(7, 0x30c0));

    {
        TraceRecorder rec(src, path);
        TraceChunk c;
        while (rec.next(c)) {
        }
        EXPECT_EQ(rec.recorded(), 3u);
    }

    TraceFileSource replay(path);
    TraceChunk c;
    ASSERT_TRUE(replay.next(c));
    EXPECT_EQ(c.instructions, 100u);
    EXPECT_EQ(c.missAddr, 0x1000u);
    EXPECT_FALSE(c.hasWriteback);
    EXPECT_DOUBLE_EQ(c.cpi, 1.25);
    ASSERT_TRUE(replay.next(c));
    EXPECT_EQ(c.instructions, 0u);
    EXPECT_TRUE(c.hasWriteback);
    EXPECT_EQ(c.writebackAddr, 0x9fc0u);
    ASSERT_TRUE(replay.next(c));
    EXPECT_EQ(c.missAddr, 0x30c0u);
    EXPECT_FALSE(replay.next(c));
    EXPECT_EQ(replay.replayed(), 3u);
    std::remove(path.c_str());
}

TEST(TraceFile, LoopingReplay)
{
    std::string path = tempPath("loop");
    VectorSource src;
    src.chunks.push_back(mk(1, 0x40));
    src.chunks.push_back(mk(2, 0x80));
    {
        TraceRecorder rec(src, path);
        TraceChunk c;
        while (rec.next(c)) {
        }
    }
    TraceFileSource replay(path, true);
    TraceChunk c;
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(replay.next(c));
    EXPECT_EQ(c.instructions, 1u);   // 7th chunk wraps to the first
    std::remove(path.c_str());
}

TEST(TraceFile, RecorderPassesThroughSyntheticStream)
{
    std::string path = tempPath("synth");
    AppProfile p;
    p.name = "t";
    p.phases.push_back(AppPhase{5.0, 1.0, 1.0, 0.5, 0});
    p.footprintBytes = 1 << 20;
    SyntheticTraceSource a(p, 0, 64, 3), b(p, 0, 64, 3);
    TraceRecorder rec(a, path);
    TraceChunk ca, cb;
    for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(rec.next(ca));
        ASSERT_TRUE(b.next(cb));
        EXPECT_EQ(ca.missAddr, cb.missAddr);
        EXPECT_EQ(ca.instructions, cb.instructions);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsGarbage)
{
    std::string path = tempPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_THROW(TraceFileSource src(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileFatal)
{
    EXPECT_THROW(TraceFileSource src("/nonexistent/nope.trc"),
                 FatalError);
}

namespace
{

/** The FatalError message for an action, or "" if none was thrown. */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.message;
    }
    return "";
}

/** Record a two-chunk trace, then chop the file to `keep` bytes. */
std::string
truncatedTrace(const char *name, long keep)
{
    std::string path = tempPath(name);
    VectorSource src;
    src.chunks.push_back(mk(1, 0x40));
    src.chunks.push_back(mk(2, 0x80));
    {
        TraceRecorder rec(src, path);
        TraceChunk c;
        while (rec.next(c)) {
        }
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::string data(static_cast<std::size_t>(keep), '\0');
    EXPECT_EQ(std::fread(data.data(), 1, data.size(), f),
              data.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    std::fwrite(data.data(), 1, data.size(), f);
    std::fclose(f);
    return path;
}

} // namespace

TEST(TraceFile, TruncatedHeaderFatal)
{
    // A valid magic that stops mid-header must be reported as
    // truncation, not as "not a trace".
    std::string path = truncatedTrace("shorthdr", 10);
    std::string msg =
        fatalMessage([&] { TraceFileSource src(path); });
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    std::remove(path.c_str());
}

TEST(TraceFile, BadMagicNamedInError)
{
    std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("0123456789abcdefpadpadpad", f);   // 16+ bytes
    std::fclose(f);
    std::string msg =
        fatalMessage([&] { TraceFileSource src(path); });
    EXPECT_NE(msg.find("bad magic"), std::string::npos) << msg;
    std::remove(path.c_str());
}

TEST(TraceFile, UnsupportedVersionFatal)
{
    std::string path = tempPath("version");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::uint64_t magic = traceFileMagic;
    std::uint32_t version = traceFileVersion + 7, reserved = 0;
    std::fwrite(&magic, sizeof(magic), 1, f);
    std::fwrite(&version, sizeof(version), 1, f);
    std::fwrite(&reserved, sizeof(reserved), 1, f);
    std::fclose(f);
    std::string msg =
        fatalMessage([&] { TraceFileSource src(path); });
    EXPECT_NE(msg.find("unsupported version"), std::string::npos)
        << msg;
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedMidRecordFatal)
{
    // Header + first record + half the second record: the good record
    // replays, then the partial one is a diagnosed error — never a
    // silent early end of the workload.
    const long keep = 16 + static_cast<long>(sizeof(TraceFileRecord)) +
                      static_cast<long>(sizeof(TraceFileRecord)) / 2;
    std::string path = truncatedTrace("midrec", keep);
    TraceFileSource replay(path);
    TraceChunk c;
    ASSERT_TRUE(replay.next(c));
    EXPECT_EQ(c.instructions, 1u);
    std::string msg = fatalMessage([&] { replay.next(c); });
    EXPECT_NE(msg.find("truncated mid-record"), std::string::npos)
        << msg;
    std::remove(path.c_str());
}

TEST(TraceFile, TruncationFatalInLoopModeToo)
{
    const long keep = 16 + static_cast<long>(sizeof(TraceFileRecord)) +
                      4;
    std::string path = truncatedTrace("midrecloop", keep);
    TraceFileSource replay(path, true);
    TraceChunk c;
    ASSERT_TRUE(replay.next(c));
    EXPECT_THROW(replay.next(c), FatalError);
    std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceEndsCleanly)
{
    // A header-only file is a valid, zero-length trace: next() is
    // false in both modes, with no error.
    std::string path = truncatedTrace("empty", 16);
    TraceChunk c;
    TraceFileSource once(path);
    EXPECT_FALSE(once.next(c));
    TraceFileSource looped(path, true);
    EXPECT_FALSE(looped.next(c));
    std::remove(path.c_str());
}
