/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, same-tick
 * priority classes, cancellation, run limits, stop().
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/callback.hh"
#include "sim/event_queue.hh"

using namespace memscale;

TEST(EventQueue, OrdersByTime)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityClasses)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(2); }, EventClass::Sample);
    eq.schedule(50, [&] { order.push_back(1); }, EventClass::Policy);
    eq.schedule(50, [&] { order.push_back(0); }, EventClass::Hardware);
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, Cancel)
{
    EventQueue eq;
    int fired = 0;
    EventId id = eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id + 100));
    eq.runUntil();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelFromEvent)
{
    EventQueue eq;
    int fired = 0;
    EventId victim = eq.schedule(20, [&] { fired += 10; });
    eq.schedule(10, [&] { eq.cancel(victim); ++fired; });
    eq.runUntil();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunUntilLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    // Events exactly at the limit run.
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingFromEvents)
{
    EventQueue eq;
    std::vector<Tick> times;
    std::function<void()> chain = [&] {
        times.push_back(eq.now());
        if (times.size() < 5)
            eq.scheduleIn(7, chain);
    };
    eq.schedule(0, chain);
    eq.runUntil();
    EXPECT_EQ(times, (std::vector<Tick>{0, 7, 14, 21, 28}));
}

TEST(EventQueue, Stop)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.stop();
    });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, AdvancesToLimitWhenDrained)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, PendingCount)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EventId a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, StepSkipsCancelledTop)
{
    // Regression: a cancelled event sitting at the top of the heap
    // must be purged by step() — it must neither fire nor consume the
    // step, and step() must not report work on a queue whose only
    // entries are cancelled.
    EventQueue eq;
    std::vector<int> order;
    EventId a = eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.cancel(a));
    EXPECT_TRUE(eq.step());  // runs the tick-20 event, not the corpse
    EXPECT_EQ(order, (std::vector<int>{2}));
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_FALSE(eq.step());
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, StepOnAllCancelled)
{
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(eq.schedule(static_cast<Tick>(10 + i), [] {
            FAIL() << "cancelled event fired";
        }));
    for (EventId id : ids)
        EXPECT_TRUE(eq.cancel(id));
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, PendingExactAfterCancelChurn)
{
    // Heavy interleaved schedule/cancel: pending() must stay exact
    // (it used to drift when cancelled entries lingered in the heap).
    EventQueue eq;
    std::uint64_t fired = 0;
    std::vector<EventId> ids;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 40; ++i)
            ids.push_back(
                eq.schedule(static_cast<Tick>(1000 + round * 40 + i),
                            [&fired] { ++fired; }));
        // Cancel three quarters of this round's events.
        for (std::size_t k = ids.size() - 40; k < ids.size(); ++k) {
            if (k % 4 != 0)
                EXPECT_TRUE(eq.cancel(ids[k]));
        }
    }
    EXPECT_EQ(eq.pending(), 50u * 10u);
    eq.runUntil();
    EXPECT_EQ(fired, 50u * 10u);
    EXPECT_EQ(eq.pending(), 0u);
    // Double-cancel of long-dead ids stays a no-op.
    for (EventId id : ids)
        EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot)
{
    // After an event fires (or is cancelled), its slab slot is
    // recycled with a bumped generation: the old id must not be able
    // to kill the new occupant.
    EventQueue eq;
    EventId a = eq.schedule(10, [] {});
    eq.runUntil();
    int fired = 0;
    EventId b = eq.schedule(20, [&] { ++fired; });
    // Same slot, different generation.
    EXPECT_NE(a, b);
    EXPECT_EQ(a & 0xffffffffull, b & 0xffffffffull);
    EXPECT_FALSE(eq.cancel(a));
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelInvalidId)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(InvalidEventId));
    EXPECT_FALSE(eq.cancel(~0ull));  // out-of-range slot
}

TEST(EventQueue, CancelDestroysCaptureImmediately)
{
    // cancel() promises the callback's captured resources die right
    // away, even though the heap entry is reclaimed lazily.
    EventQueue eq;
    auto token = std::make_shared<int>(5);
    std::weak_ptr<int> watch = token;
    EventId id = eq.schedule(10, [t = std::move(token)] { (void)*t; });
    EXPECT_FALSE(watch.expired());
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, ScheduleInsideCallbackReusesSlots)
{
    // A self-rescheduling chain must recycle a single slot without
    // unbounded slab growth and with fresh ids every hop.
    EventQueue eq;
    int hops = 0;
    EventId last = InvalidEventId;
    std::function<void()> chain = [&] {
        ++hops;
        if (hops < 1000) {
            EventId id = eq.scheduleIn(3, chain);
            EXPECT_NE(id, last);
            last = id;
        }
    };
    eq.schedule(0, chain);
    eq.runUntil();
    EXPECT_EQ(hops, 1000);
}

TEST(EventCallback, SmallCapturesStoredInline)
{
    // The whole point of the SBO callback: typical simulator captures
    // (a couple of pointers/integers) must not heap-allocate.
    struct Small
    {
        void *a, *b;
        std::uint64_t c;
        void operator()() {}
    };
    EXPECT_TRUE(EventCallback::storedInline<Small>());

    struct Big
    {
        std::array<char, 128> blob;
        void operator()() {}
    };
    EXPECT_FALSE(EventCallback::storedInline<Big>());

    // Both still behave identically.
    int hits = 0;
    EventCallback small([&hits] { ++hits; });
    EventCallback big([&hits, pad = std::array<char, 128>{}] {
        ++hits;
        (void)pad;
    });
    small();
    big();
    EXPECT_EQ(hits, 2);
}

TEST(EventCallback, MoveTransfersOwnership)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    EventCallback a([t = std::move(token)] { (void)*t; });
    EventCallback b(std::move(a));
    EXPECT_FALSE(a);
    EXPECT_TRUE(b);
    EXPECT_FALSE(watch.expired());
    b = EventCallback();
    EXPECT_TRUE(watch.expired());
}
