/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, same-tick
 * priority classes, cancellation, run limits, stop().
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace memscale;

TEST(EventQueue, OrdersByTime)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityClasses)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] { order.push_back(2); }, EventClass::Sample);
    eq.schedule(50, [&] { order.push_back(1); }, EventClass::Policy);
    eq.schedule(50, [&] { order.push_back(0); }, EventClass::Hardware);
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, Cancel)
{
    EventQueue eq;
    int fired = 0;
    EventId id = eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id + 100));
    eq.runUntil();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelFromEvent)
{
    EventQueue eq;
    int fired = 0;
    EventId victim = eq.schedule(20, [&] { fired += 10; });
    eq.schedule(10, [&] { eq.cancel(victim); ++fired; });
    eq.runUntil();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunUntilLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    // Events exactly at the limit run.
    eq.runUntil(100);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingFromEvents)
{
    EventQueue eq;
    std::vector<Tick> times;
    std::function<void()> chain = [&] {
        times.push_back(eq.now());
        if (times.size() < 5)
            eq.scheduleIn(7, chain);
    };
    eq.schedule(0, chain);
    eq.runUntil();
    EXPECT_EQ(times, (std::vector<Tick>{0, 7, 14, 21, 28}));
}

TEST(EventQueue, Stop)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.stop();
    });
    eq.schedule(20, [&] { ++fired; });
    eq.runUntil();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, AdvancesToLimitWhenDrained)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.runUntil(1000);
    EXPECT_EQ(eq.now(), 1000u);
}

TEST(EventQueue, PendingCount)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EventId a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil();
    EXPECT_TRUE(eq.empty());
}
