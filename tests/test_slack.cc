/**
 * @file
 * Slack-tracker tests: Eq. 1 accumulation, feasibility algebra,
 * negative-slack repayment.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "memscale/slack.hh"

using namespace memscale;

TEST(Slack, StartsAtZero)
{
    SlackTracker s;
    s.reset(4, 0.10);
    for (std::uint32_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(s.slack(c), 0.0);
    EXPECT_DOUBLE_EQ(s.gamma(), 0.10);
}

TEST(Slack, AccumulatesTargetMinusActual)
{
    SlackTracker s;
    s.reset(1, 0.10);
    // Work worth 1 ms at max frequency, executed in exactly 1.1 ms:
    // on target, slack unchanged.
    s.update(0, 1.0e-3, 1.1e-3);
    EXPECT_NEAR(s.slack(0), 0.0, 1e-15);
    // Executed faster than target: positive slack.
    s.update(0, 1.0e-3, 1.0e-3);
    EXPECT_NEAR(s.slack(0), 0.1e-3, 1e-12);
    // Executed slower than target: slack decreases.
    s.update(0, 1.0e-3, 1.3e-3);
    EXPECT_NEAR(s.slack(0), -0.1e-3, 1e-12);
}

TEST(Slack, FeasibilityAtZeroSlack)
{
    SlackTracker s;
    s.reset(1, 0.10);
    double tpi_max = 1e-9;
    // Up to 10% slower is feasible; beyond is not.
    EXPECT_TRUE(s.feasible(0, tpi_max * 1.10, tpi_max, 1e-3));
    EXPECT_TRUE(s.feasible(0, tpi_max * 1.0999, tpi_max, 1e-3));
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.12, tpi_max, 1e-3));
}

TEST(Slack, PositiveSlackRelaxesTarget)
{
    SlackTracker s;
    s.reset(1, 0.10);
    s.update(0, 2.0e-3, 1.0e-3);   // banked 1.2 ms of slack
    double tpi_max = 1e-9;
    // With slack larger than the next epoch, anything goes.
    EXPECT_TRUE(s.feasible(0, tpi_max * 5.0, tpi_max, 1e-3));
}

TEST(Slack, NegativeSlackTightensTarget)
{
    SlackTracker s;
    s.reset(1, 0.10);
    s.update(0, 1.0e-3, 2.0e-3);   // 0.9 ms of debt
    double tpi_max = 1e-9;
    // Even running exactly at max-frequency speed is not enough to be
    // "within target" for the next epoch; the debt must be repaid
    // over time (the tracker still allows the fastest option when
    // nothing is feasible -- that choice is the policy's).
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.10, tpi_max, 1e-3));
}

TEST(Slack, PartialSlackInterpolates)
{
    SlackTracker s;
    s.reset(1, 0.0);   // gamma 0 isolates the slack term
    s.update(0, 0.5e-3, 0.0);   // 0.5 ms banked
    double tpi_max = 1e-9;
    // epoch 1 ms, slack 0.5 ms: allowed stretch factor is
    // epoch / (epoch - slack) = 2.
    EXPECT_TRUE(s.feasible(0, tpi_max * 1.99, tpi_max, 1e-3));
    EXPECT_FALSE(s.feasible(0, tpi_max * 2.01, tpi_max, 1e-3));
}

TEST(Slack, PerCoreIndependence)
{
    SlackTracker s;
    s.reset(2, 0.10);
    s.update(0, 1.0e-3, 2.0e-3);
    EXPECT_LT(s.slack(0), 0.0);
    EXPECT_DOUBLE_EQ(s.slack(1), 0.0);
}

TEST(Slack, ZeroGammaPermitsOnlyNominalSpeed)
{
    // gamma = 0 is the degenerate zero-slowdown bound: with no banked
    // slack, only tpi_f <= tpi_max is feasible — the policy may never
    // pick a point slower than nominal.
    SlackTracker s;
    s.reset(1, 0.0);
    double tpi_max = 1e-9;
    EXPECT_TRUE(s.feasible(0, tpi_max, tpi_max, 1e-3));
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.000001, tpi_max, 1e-3));
    // Running exactly on target accumulates nothing.
    s.update(0, 1.0e-3, 1.0e-3);
    EXPECT_DOUBLE_EQ(s.slack(0), 0.0);
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.01, tpi_max, 1e-3));
}

TEST(Slack, SlackExactlyExhaustedAtEpochBoundary)
{
    // Bank slack exactly equal to the epoch length: budget
    // (epoch - slack) hits zero and the feasibility test must flip to
    // "anything goes" without dividing by zero or flipping sign.
    SlackTracker s;
    s.reset(1, 0.0);
    const double epoch = 1e-3;
    s.update(0, epoch, 0.0);   // banked exactly one epoch of slack
    EXPECT_DOUBLE_EQ(s.slack(0), epoch);
    double tpi_max = 1e-9;
    EXPECT_TRUE(s.feasible(0, tpi_max * 1000.0, tpi_max, epoch));

    // One ulp less slack and a sufficiently slow point is rejected
    // again — the boundary is exact, not approximate.  The remaining
    // budget is a single ulp of the epoch (~2e-19 s), so "sufficiently
    // slow" means a stretch factor beyond epoch/ulp (~5e15).
    SlackTracker t;
    t.reset(1, 0.0);
    double almost = std::nextafter(epoch, 0.0);
    t.update(0, almost, 0.0);
    EXPECT_TRUE(t.feasible(0, tpi_max * 1e13, tpi_max, epoch));
    EXPECT_FALSE(t.feasible(0, tpi_max * 1e17, tpi_max, epoch));

    // Spending the banked epoch drops the tracker back to zero: the
    // next epoch is bounded as if nothing had ever been saved.
    s.update(0, 0.0, epoch);
    EXPECT_DOUBLE_EQ(s.slack(0), 0.0);
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.01, tpi_max, epoch));
}

TEST(Slack, NegativeSlackRecovery)
{
    // A missed target must be repaid: after running 2x slower than
    // allowed, epochs at nominal speed accumulate gamma worth of
    // credit each until the debt clears and feasibility is restored.
    SlackTracker s;
    s.reset(1, 0.10);
    const double epoch = 1e-3;
    double tpi_max = 1e-9;

    s.update(0, epoch, 2.0 * epoch);   // debt: 1.1 - 2.0 = -0.9 ms
    EXPECT_NEAR(s.slack(0), -0.9e-3, 1e-12);
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.10, tpi_max, epoch));

    int epochs_to_recover = 0;
    while (s.slack(0) < 0.0 && epochs_to_recover < 100) {
        // Run at nominal speed: banks gamma * epoch per epoch.
        s.update(0, epoch, epoch);
        ++epochs_to_recover;
    }
    // 0.9 ms debt at 0.1 ms credit per epoch: exactly 9 epochs.
    EXPECT_EQ(epochs_to_recover, 9);
    EXPECT_NEAR(s.slack(0), 0.0, 1e-12);
    // With the debt repaid, the gamma bound applies again.
    EXPECT_TRUE(s.feasible(0, tpi_max * 1.0999, tpi_max, epoch));
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.2, tpi_max, epoch));
}
