/**
 * @file
 * Slack-tracker tests: Eq. 1 accumulation, feasibility algebra,
 * negative-slack repayment.
 */

#include <gtest/gtest.h>

#include "memscale/slack.hh"

using namespace memscale;

TEST(Slack, StartsAtZero)
{
    SlackTracker s;
    s.reset(4, 0.10);
    for (std::uint32_t c = 0; c < 4; ++c)
        EXPECT_DOUBLE_EQ(s.slack(c), 0.0);
    EXPECT_DOUBLE_EQ(s.gamma(), 0.10);
}

TEST(Slack, AccumulatesTargetMinusActual)
{
    SlackTracker s;
    s.reset(1, 0.10);
    // Work worth 1 ms at max frequency, executed in exactly 1.1 ms:
    // on target, slack unchanged.
    s.update(0, 1.0e-3, 1.1e-3);
    EXPECT_NEAR(s.slack(0), 0.0, 1e-15);
    // Executed faster than target: positive slack.
    s.update(0, 1.0e-3, 1.0e-3);
    EXPECT_NEAR(s.slack(0), 0.1e-3, 1e-12);
    // Executed slower than target: slack decreases.
    s.update(0, 1.0e-3, 1.3e-3);
    EXPECT_NEAR(s.slack(0), -0.1e-3, 1e-12);
}

TEST(Slack, FeasibilityAtZeroSlack)
{
    SlackTracker s;
    s.reset(1, 0.10);
    double tpi_max = 1e-9;
    // Up to 10% slower is feasible; beyond is not.
    EXPECT_TRUE(s.feasible(0, tpi_max * 1.10, tpi_max, 1e-3));
    EXPECT_TRUE(s.feasible(0, tpi_max * 1.0999, tpi_max, 1e-3));
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.12, tpi_max, 1e-3));
}

TEST(Slack, PositiveSlackRelaxesTarget)
{
    SlackTracker s;
    s.reset(1, 0.10);
    s.update(0, 2.0e-3, 1.0e-3);   // banked 1.2 ms of slack
    double tpi_max = 1e-9;
    // With slack larger than the next epoch, anything goes.
    EXPECT_TRUE(s.feasible(0, tpi_max * 5.0, tpi_max, 1e-3));
}

TEST(Slack, NegativeSlackTightensTarget)
{
    SlackTracker s;
    s.reset(1, 0.10);
    s.update(0, 1.0e-3, 2.0e-3);   // 0.9 ms of debt
    double tpi_max = 1e-9;
    // Even running exactly at max-frequency speed is not enough to be
    // "within target" for the next epoch; the debt must be repaid
    // over time (the tracker still allows the fastest option when
    // nothing is feasible -- that choice is the policy's).
    EXPECT_FALSE(s.feasible(0, tpi_max * 1.10, tpi_max, 1e-3));
}

TEST(Slack, PartialSlackInterpolates)
{
    SlackTracker s;
    s.reset(1, 0.0);   // gamma 0 isolates the slack term
    s.update(0, 0.5e-3, 0.0);   // 0.5 ms banked
    double tpi_max = 1e-9;
    // epoch 1 ms, slack 0.5 ms: allowed stretch factor is
    // epoch / (epoch - slack) = 2.
    EXPECT_TRUE(s.feasible(0, tpi_max * 1.99, tpi_max, 1e-3));
    EXPECT_FALSE(s.feasible(0, tpi_max * 2.01, tpi_max, 1e-3));
}

TEST(Slack, PerCoreIndependence)
{
    SlackTracker s;
    s.reset(2, 0.10);
    s.update(0, 1.0e-3, 2.0e-3);
    EXPECT_LT(s.slack(0), 0.0);
    EXPECT_DOUBLE_EQ(s.slack(1), 0.0);
}
