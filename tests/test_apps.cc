/**
 * @file
 * Per-application profile validation: every application used by the
 * Table 1 mixes must be generatable, hit its configured MPKI/WPKI
 * through the synthetic source, stay in its footprint, and carry sane
 * parameters.  Parameterized across all 26 applications.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/mixes.hh"
#include "workload/trace_source.hh"

using namespace memscale;

namespace
{

const std::vector<std::string> &
allAppNames()
{
    static const std::vector<std::string> names = [] {
        std::set<std::string> s;
        for (const MixSpec &m : allMixes())
            for (const auto &a : m.apps)
                s.insert(a);
        return std::vector<std::string>(s.begin(), s.end());
    }();
    return names;
}

} // namespace

class AppProfileTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const AppProfile &app() const { return appByName(GetParam()); }
};

TEST_P(AppProfileTest, ParametersSane)
{
    const AppProfile &p = app();
    EXPECT_EQ(p.name, GetParam());
    ASSERT_FALSE(p.phases.empty());
    for (const AppPhase &ph : p.phases) {
        EXPECT_GT(ph.mpki, 0.0);
        EXPECT_GE(ph.wpki, 0.0);
        EXPECT_LE(ph.wpki, ph.mpki);   // writebacks ride on misses
        EXPECT_GT(ph.baseCpi, 0.3);
        EXPECT_LT(ph.baseCpi, 4.0);
        EXPECT_GE(ph.streamFrac, 0.0);
        EXPECT_LE(ph.streamFrac, 1.0);
    }
    EXPECT_GE(p.footprintBytes, 16ull << 20);
}

TEST_P(AppProfileTest, SourceHitsConfiguredRates)
{
    const AppProfile &p = app();
    SyntheticTraceSource src(p, 0, 64, 2024);
    TraceChunk c;
    std::uint64_t instr = 0, misses = 0, wbs = 0;
    const std::uint64_t target = 2'000'000;
    while (instr < target && src.next(c)) {
        instr += c.instructions + 1;
        ++misses;
        if (c.hasWriteback)
            ++wbs;
    }
    double mpki = 1000.0 * static_cast<double>(misses) /
                  static_cast<double>(instr);
    double want_mpki = p.averageMpki(target);
    EXPECT_NEAR(mpki, want_mpki, want_mpki * 0.12 + 0.05)
        << "mpki mismatch for " << p.name;
    double wpki = 1000.0 * static_cast<double>(wbs) /
                  static_cast<double>(instr);
    double want_wpki = p.averageWpki(target);
    EXPECT_NEAR(wpki, want_wpki, want_wpki * 0.25 + 0.05)
        << "wpki mismatch for " << p.name;
}

TEST_P(AppProfileTest, AddressesWithinFootprint)
{
    const AppProfile &p = app();
    const Addr base = 0x40000000;
    SyntheticTraceSource src(p, base, 64, 99);
    TraceChunk c;
    for (int i = 0; i < 2000 && src.next(c); ++i) {
        EXPECT_GE(c.missAddr, base);
        EXPECT_LT(c.missAddr, base + p.footprintBytes);
        EXPECT_EQ(c.missAddr % 64, 0u);
    }
}

TEST_P(AppProfileTest, ScalingPreservesRates)
{
    const AppProfile &p = app();
    AppProfile scaled = scaledProfile(p, 0.05);
    EXPECT_NEAR(scaled.averageMpki(5'000'000),
                p.averageMpki(100'000'000),
                p.averageMpki(100'000'000) * 0.01 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppProfileTest,
                         ::testing::ValuesIn(allAppNames()),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// Mix-level parameterized checks.
// ---------------------------------------------------------------------

class MixTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    const MixSpec &mix() const { return allMixes()[GetParam()]; }
};

TEST_P(MixTest, ClassMatchesIntensity)
{
    double sum = 0.0;
    for (const auto &a : mix().apps)
        sum += appByName(a).averageMpki(canonicalBudget);
    double avg = sum / 4.0;
    if (mix().klass == "ILP")
        EXPECT_LT(avg, 1.0);
    else if (mix().klass == "MID")
        EXPECT_TRUE(avg >= 1.0 && avg < 6.0);
    else
        EXPECT_GE(avg, 6.0);
}

TEST_P(MixTest, WpkiApproximatesPaper)
{
    double sum = 0.0;
    for (const auto &a : mix().apps)
        sum += appByName(a).averageWpki(canonicalBudget);
    double avg = sum / 4.0;
    // WPKI values are the loosest-calibrated (see mixes.cc); stay
    // within a factor-of-two band of Table 1.
    EXPECT_LT(avg, mix().paperWpki * 2.0 + 0.05) << mix().name;
    EXPECT_GT(avg, mix().paperWpki * 0.4 - 0.05) << mix().name;
}

INSTANTIATE_TEST_SUITE_P(AllMixes, MixTest,
                         ::testing::Range(std::size_t(0),
                                          std::size_t(12)));
