/**
 * @file
 * Property-based sweeps over the memory system and the models:
 * randomized traffic through every (page policy x scheduler x
 * frequency) combination with invariant checks, an event-queue stress
 * test against a reference implementation, and cross-frequency model
 * invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "memscale/perf_model.hh"
#include "power/dram_power.hh"
#include "sim/event_queue.hh"

using namespace memscale;

namespace
{

struct TrafficResult
{
    std::uint64_t completedReads = 0;
    std::uint64_t completedWrites = 0;
    Tick minLatency = MaxTick;
    Tick maxLatency = 0;
    Tick lastDone = 0;
    McCounters counters;
};

/** Drive `n` random requests through a controller configuration. */
TrafficResult
runRandomTraffic(MemConfig cfg, FreqIndex freq, std::uint64_t n,
                 std::uint64_t seed, bool with_refresh = true,
                 PowerdownMode pd = PowerdownMode::None)
{
    EventQueue eq;
    MemoryController mc(eq, cfg, freq);
    mc.setPowerdownMode(pd);
    if (with_refresh)
        mc.startRefresh();

    TrafficResult res;
    // One shared client serves every read: per-request context comes
    // from the completed request itself (arrival == issue tick here).
    FnClient client([&](Tick done, const MemRequest &req) {
        ++res.completedReads;
        Tick lat = done - req.arrival;
        res.minLatency = std::min(res.minLatency, lat);
        res.maxLatency = std::max(res.maxLatency, lat);
        res.lastDone = std::max(res.lastDone, done);
    });
    Rng rng(seed);
    Tick t = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        // Arrivals spread over time with bursts.
        t += rng.below(3) == 0 ? 0 : rng.below(nsToTick(200.0));
        Addr addr = (rng.next() % cfg.totalBytes()) & ~Addr(63);
        bool is_write = rng.chance(0.2);
        eq.schedule(t, [&, addr, is_write] {
            if (is_write)
                mc.writeback(addr, 0);
            else
                mc.read(addr, 0, &client);
        });
    }
    eq.runUntil(t + msToTick(10.0));
    res.counters = mc.sampleCounters();
    res.completedWrites = res.counters.writes;
    return res;
}

using ComboParam =
    std::tuple<int /*page*/, int /*sched*/, FreqIndex>;

class MemSystemProperty
    : public ::testing::TestWithParam<ComboParam>
{
  protected:
    MemConfig
    makeConfig() const
    {
        MemConfig cfg;
        cfg.pagePolicy = std::get<0>(GetParam()) == 0
                             ? PagePolicy::ClosedPage
                             : PagePolicy::OpenPage;
        cfg.scheduler = std::get<1>(GetParam()) == 0
                            ? SchedulerPolicy::Fcfs
                            : SchedulerPolicy::FrFcfs;
        return cfg;
    }

    FreqIndex freq() const { return std::get<2>(GetParam()); }
};

} // namespace

TEST_P(MemSystemProperty, AllRequestsComplete)
{
    TrafficResult r =
        runRandomTraffic(makeConfig(), freq(), 2000, 42);
    EXPECT_EQ(r.completedReads, r.counters.reads);
    EXPECT_EQ(r.completedReads + r.completedWrites, 2000u);
}

TEST_P(MemSystemProperty, LatencyBounds)
{
    TrafficResult r =
        runRandomTraffic(makeConfig(), freq(), 2000, 43);
    const TimingParams &tp = TimingParams::at(freq());
    // No read can beat a row hit with zero queueing.
    EXPECT_GE(r.minLatency, tp.tMC + tp.tCL + tp.tBURST);
    // And none should exceed a very generous bound (deadlock guard).
    EXPECT_LT(r.maxLatency, usToTick(50.0));
}

TEST_P(MemSystemProperty, RowOutcomeAccounting)
{
    TrafficResult r =
        runRandomTraffic(makeConfig(), freq(), 2000, 44);
    // Every serviced request is classified exactly once.
    EXPECT_EQ(r.counters.rbhc + r.counters.obmc + r.counters.cbmc,
              r.counters.reads + r.counters.writes);
    // Activations match page open/close pairs.
    EXPECT_EQ(r.counters.pocc,
              r.counters.cbmc + r.counters.obmc);
}

TEST_P(MemSystemProperty, QueueCountersConsistent)
{
    TrafficResult r =
        runRandomTraffic(makeConfig(), freq(), 2000, 45);
    EXPECT_EQ(r.counters.btc, 2000u);
    EXPECT_EQ(r.counters.ctc, 2000u);
    EXPECT_GE(r.counters.xiBank(), 1.0);
    EXPECT_GE(r.counters.xiBus(), 1.0);
}

TEST_P(MemSystemProperty, BusTimeMatchesBursts)
{
    TrafficResult r = runRandomTraffic(makeConfig(), freq(), 1000, 46);
    const TimingParams &tp = TimingParams::at(freq());
    EXPECT_EQ(r.counters.busBusyTime,
              (r.counters.reads + r.counters.writes) * tp.tBURST);
}

TEST_P(MemSystemProperty, DeterministicReplay)
{
    TrafficResult a = runRandomTraffic(makeConfig(), freq(), 800, 47);
    TrafficResult b = runRandomTraffic(makeConfig(), freq(), 800, 47);
    EXPECT_EQ(a.lastDone, b.lastDone);
    EXPECT_EQ(a.maxLatency, b.maxLatency);
    EXPECT_DOUBLE_EQ(a.counters.cto, b.counters.cto);
}

TEST_P(MemSystemProperty, PowerdownDoesNotLoseRequests)
{
    TrafficResult r = runRandomTraffic(makeConfig(), freq(), 1500, 48,
                                       true, PowerdownMode::FastExit);
    EXPECT_EQ(r.completedReads + r.completedWrites, 1500u);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, MemSystemProperty,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(FreqIndex(0), FreqIndex(5),
                                         FreqIndex(9))));

TEST(MemSystemProperty, RankStateTimesSumToTotal)
{
    TrafficResult r = runRandomTraffic(MemConfig(), 0, 3000, 49, true,
                                       PowerdownMode::FastExit);
    const McCounters &c = r.counters;
    EXPECT_GT(c.rankTime, 0u);
    EXPECT_LE(c.rankPreTime, c.rankTime);
    EXPECT_LE(c.rankPrePdTime, c.rankPreTime);
}

// ---------------------------------------------------------------------
// Event-queue stress test against a straightforward reference model.
// ---------------------------------------------------------------------

TEST(EventQueueStress, MatchesReferenceOrdering)
{
    EventQueue eq;
    Rng rng(1234);
    std::vector<std::pair<Tick, int>> fired;
    // Reference: (time, id) pairs sorted stably by time.
    std::vector<std::pair<Tick, int>> expected;
    std::vector<EventId> ids;
    int tag = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 40; ++i) {
            Tick when = rng.below(100000);
            int t = tag++;
            ids.push_back(eq.schedule(when, [&fired, when, t] {
                fired.emplace_back(when, t);
            }));
            expected.emplace_back(when, t);
        }
        // Cancel a random subset of everything still pending.
        for (int i = 0; i < 5; ++i) {
            std::size_t victim = rng.below(ids.size());
            if (eq.cancel(ids[victim])) {
                int vt = static_cast<int>(victim);
                std::erase_if(expected, [&](const auto &p) {
                    return p.second == vt;
                });
            }
        }
    }
    eq.runUntil();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         if (a.first != b.first)
                             return a.first < b.first;
                         return a.second < b.second;
                     });
    ASSERT_EQ(fired.size(), expected.size());
    EXPECT_EQ(fired, expected);
}

// ---------------------------------------------------------------------
// Cross-frequency model invariants on random counter profiles.
// ---------------------------------------------------------------------

TEST(ModelProperty, TpiMemMonotoneForRandomProfiles)
{
    Rng rng(777);
    for (int trial = 0; trial < 50; ++trial) {
        ProfileData p;
        p.windowLen = usToTick(100.0);
        p.freqDuring = static_cast<FreqIndex>(rng.below(10));
        std::uint64_t accesses = 100 + rng.below(100000);
        p.mc.rbhc = rng.below(accesses / 4 + 1);
        p.mc.obmc = rng.below(accesses / 8 + 1);
        p.mc.cbmc = accesses - p.mc.rbhc - p.mc.obmc;
        p.mc.btc = accesses;
        p.mc.bto = rng.below(accesses * 3);
        p.mc.ctc = accesses;
        p.mc.cto = rng.uniform() * accesses * 2;
        p.cores.push_back(
            CoreSample{1'000'000, accesses});
        PerfModel m;
        m.calibrate(p);
        for (FreqIndex f = 1; f < numFreqPoints; ++f)
            EXPECT_GE(m.tpiMem(f), m.tpiMem(f - 1));
    }
}

TEST(ModelProperty, RankEnergyNonNegativeEverywhere)
{
    Rng rng(888);
    PowerParams pp;
    for (int trial = 0; trial < 100; ++trial) {
        RankActivity a;
        a.totalTime = usToTick(1.0 + rng.uniform() * 1000.0);
        Tick rem = a.totalTime;
        a.prePowerdownTime = rng.below(rem + 1);
        rem -= a.prePowerdownTime;
        a.slowPowerdownTime = rng.below(a.prePowerdownTime + 1);
        a.preStandbyTime = rng.below(rem + 1);
        rem -= a.preStandbyTime;
        a.actPowerdownTime = rng.below(rem + 1);
        a.actStandbyTime = rem - a.actPowerdownTime;
        a.actPreCount = rng.below(10000);
        a.readBursts = rng.below(10000);
        a.writeBursts = rng.below(10000);
        a.readBurstTime = a.readBursts * 5000;
        a.writeBurstTime = a.writeBursts * 5000;
        a.refreshes = rng.below(100);
        FreqIndex f = static_cast<FreqIndex>(rng.below(10));
        RankEnergy e = rankEnergy(a, TimingParams::at(f), pp,
                                  rng.below(usToTick(100.0)));
        EXPECT_GE(e.background, 0.0);
        EXPECT_GE(e.actPre, 0.0);
        EXPECT_GE(e.readWrite, 0.0);
        EXPECT_GE(e.termination, 0.0);
        EXPECT_GE(e.refresh, 0.0);
    }
}

TEST(ModelProperty, BackgroundEnergyMonotoneInFrequency)
{
    PowerParams pp;
    RankActivity a;
    a.totalTime = msToTick(1.0);
    a.preStandbyTime = a.totalTime;
    double prev = -1.0;
    for (FreqIndex f = numFreqPoints; f-- > 0;) {
        double e =
            rankEnergy(a, TimingParams::at(f), pp, 0).background;
        EXPECT_GT(e, prev);
        prev = e;
    }
}
