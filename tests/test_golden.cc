/**
 * @file
 * Golden-hash regression tests.
 *
 * Every Table-1 mix is run under the MemScale policy at a fixed seed
 * and its entire observable state (counters, energy, per-core CPI,
 * per-epoch decisions) is folded into one StateHasher digest; the
 * digests below pin the simulator's exact behaviour.  A separate
 * golden pins the Fig. 7 MID3 timeline (the apsi phase change) at
 * per-epoch granularity.
 *
 * These hashes are sensitive to any behavioural change, including
 * last-ulp floating-point drift.  After an *intended* change,
 * regenerate with:
 *
 *     MEMSCALE_REGEN_GOLDENS=1 ./build/tests/test_golden
 *
 * and paste the printed tables over the arrays below (see DESIGN.md,
 * "Golden regeneration").  Digests assume one toolchain/platform; if
 * this suite fails while every other test passes, suspect a compiler
 * or libm change before suspecting the simulator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "check/state_hash.hh"
#include "harness/differential.hh"
#include "harness/experiment.hh"

using namespace memscale;

namespace
{

bool
regenMode()
{
    const char *v = std::getenv("MEMSCALE_REGEN_GOLDENS");
    return v && v[0] == '1';
}

/** The fixed scenario behind every golden below. */
SystemConfig
goldenConfig(const std::string &mix)
{
    SystemConfig cfg;
    cfg.mixName = mix;
    cfg.instrBudget = 500'000;
    cfg.epochLen = msToTick(0.1);
    cfg.profileLen = usToTick(10.0);
    cfg.seed = 12345;
    return cfg;
}

/** Fixed rest-of-system wattage: keeps the golden independent of the
 *  (also-deterministic, but expensive) baseline calibration run. */
constexpr Watts GoldenRestWatts = 150.0;

std::uint64_t
mixHash(const std::string &mix)
{
    RunResult r = runPolicy(goldenConfig(mix), "memscale",
                            GoldenRestWatts);
    return hashRunResult(r);
}

struct Golden
{
    const char *mix;
    std::uint64_t hash;
};

// Regenerate: MEMSCALE_REGEN_GOLDENS=1 ./build/tests/test_golden
const Golden kMixGoldens[] = {
    {"ILP1", 0xd1158a80e0af0e5dull},
    {"ILP2", 0x2f504d2e2cae9519ull},
    {"ILP3", 0xfa10f55364eecab3ull},
    {"ILP4", 0x62ba5174726ca439ull},
    {"MID1", 0x509463a53f9d2cfdull},
    {"MID2", 0x3d07fe3443a23bf9ull},
    {"MID3", 0x4b661fcc09e5c09cull},
    {"MID4", 0x495a27873ad027b5ull},
    {"MEM1", 0xca48ba699770c4caull},
    {"MEM2", 0x595add51021fc4a0ull},
    {"MEM3", 0x854aead6f21f5ad3ull},
    {"MEM4", 0xf54146f9b9d37d26ull},
};

/**
 * Idle-ladder rows: the same fixed scenario under MemScale composed
 * with the adaptive demotion ladder and migration-based rank
 * consolidation.  These pin the ladder walk-downs, the deep-state
 * residency accounting, and the consolidation remap/copy traffic —
 * one mix per workload class keeps the suite fast.
 */
std::uint64_t
ladderHash(const std::string &mix)
{
    SystemConfig cfg = goldenConfig(mix);
    cfg.mem.ladder.migrate = true;
    RunResult r = runPolicy(cfg, "memscale-ladder", GoldenRestWatts);
    return hashRunResult(r);
}

// Regenerate: MEMSCALE_REGEN_GOLDENS=1 ./build/tests/test_golden
const Golden kLadderGoldens[] = {
    {"ILP2", 0x1685a82a793ecbf9ull},
    {"MID3", 0x870cf98612d85499ull},
    {"MEM1", 0x8daca523ae6501b6ull},
};

/** Fig. 7 scenario: MID3 under MemScale, per-epoch decisions only. */
std::uint64_t
fig7TimelineHash()
{
    RunResult r = runPolicy(goldenConfig("MID3"), "memscale",
                            GoldenRestWatts);
    StateHasher h;
    h.add("epochs", static_cast<std::uint64_t>(r.timeline.size()));
    for (const EpochRecord &e : r.timeline) {
        h.add("start", e.start);
        h.add("end", e.end);
        h.add("busMHz", static_cast<std::uint64_t>(e.busMHz));
        h.add("cpuGHz", e.cpuGHz);
        h.add("channelUtil", e.channelUtil);
        for (double cpi : e.coreCpi)
            h.add("cpi", cpi);
    }
    return h.digest();
}

constexpr std::uint64_t kFig7TimelineGolden = 0xb09fbb1b049d062eull;

} // namespace

TEST(Golden, MixHashesMatch)
{
    if (regenMode()) {
        std::printf("const Golden kMixGoldens[] = {\n");
        for (const Golden &g : kMixGoldens) {
            std::printf("    {\"%s\", 0x%016llxull},\n", g.mix,
                        static_cast<unsigned long long>(
                            mixHash(g.mix)));
        }
        std::printf("};\n");
        GTEST_SKIP() << "regenerated goldens printed above";
    }
    for (const Golden &g : kMixGoldens) {
        EXPECT_EQ(mixHash(g.mix), g.hash)
            << g.mix
            << ": behaviour changed; if intended, regenerate with "
               "MEMSCALE_REGEN_GOLDENS=1 ./build/tests/test_golden";
    }
}

TEST(Golden, LadderMixHashesMatch)
{
    if (regenMode()) {
        std::printf("const Golden kLadderGoldens[] = {\n");
        for (const Golden &g : kLadderGoldens) {
            std::printf("    {\"%s\", 0x%016llxull},\n", g.mix,
                        static_cast<unsigned long long>(
                            ladderHash(g.mix)));
        }
        std::printf("};\n");
        GTEST_SKIP() << "regenerated goldens printed above";
    }
    for (const Golden &g : kLadderGoldens) {
        EXPECT_EQ(ladderHash(g.mix), g.hash)
            << g.mix
            << " (ladder): behaviour changed; if intended, regenerate "
               "with MEMSCALE_REGEN_GOLDENS=1 "
               "./build/tests/test_golden";
    }
}

TEST(Golden, LadderOffLeavesMixHashesUntouched)
{
    // The flattened/hashed surface is gated on ladder activity: with
    // the ladder disabled the digests must equal the plain goldens
    // above, byte for byte — that is what lets kMixGoldens survive
    // this PR unregenerated.
    EXPECT_EQ(mixHash("MID1"), kMixGoldens[4].hash);
    EXPECT_NE(ladderHash("MID3"), kMixGoldens[6].hash);
}

TEST(Golden, Fig7ApsiTimelineMatches)
{
    if (regenMode()) {
        std::printf("constexpr std::uint64_t kFig7TimelineGolden = "
                    "0x%016llxull;\n",
                    static_cast<unsigned long long>(
                        fig7TimelineHash()));
        GTEST_SKIP() << "regenerated golden printed above";
    }
    EXPECT_EQ(fig7TimelineHash(), kFig7TimelineGolden)
        << "MID3/apsi per-epoch timeline changed; if intended, "
           "regenerate with MEMSCALE_REGEN_GOLDENS=1 "
           "./build/tests/test_golden";
}

TEST(Golden, HashIsRunToRunStable)
{
    // The digest itself must be deterministic, or the goldens above
    // would be meaningless.
    EXPECT_EQ(mixHash("MID1"), mixHash("MID1"));
}

TEST(Golden, ObservabilityIsBehaviourFree)
{
    // Attaching the stat registry + epoch recorder must not perturb
    // the simulation by a single bit: the observe run's digest has to
    // equal the plain run's, epoch for epoch.  This is the contract
    // that lets --trace-out ride along on any experiment without
    // invalidating the goldens above.
    SystemConfig plain = goldenConfig("MID2");
    SystemConfig observed = goldenConfig("MID2");
    observed.observe = true;

    RunResult off = runPolicy(plain, "memscale", GoldenRestWatts);
    RunResult on = runPolicy(observed, "memscale", GoldenRestWatts);
    EXPECT_EQ(hashRunResult(on), hashRunResult(off));

    // The recorder exists only on the observe run, and captured
    // exactly one row per epoch decision.
    EXPECT_EQ(off.obs, nullptr);
    ASSERT_TRUE(on.obs);
    EXPECT_EQ(on.obs->epochs(), on.timeline.size());
    EXPECT_EQ(off.timeline.size(), on.timeline.size());
}

TEST(Golden, HashDistinguishesSeeds)
{
    SystemConfig a = goldenConfig("MID1");
    SystemConfig b = goldenConfig("MID1");
    b.seed = 54321;
    RunResult ra = runPolicy(a, "memscale", GoldenRestWatts);
    RunResult rb = runPolicy(b, "memscale", GoldenRestWatts);
    EXPECT_NE(hashRunResult(ra), hashRunResult(rb));
}
