file(REMOVE_RECURSE
  "CMakeFiles/test_coscale.dir/test_coscale.cc.o"
  "CMakeFiles/test_coscale.dir/test_coscale.cc.o.d"
  "test_coscale"
  "test_coscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
