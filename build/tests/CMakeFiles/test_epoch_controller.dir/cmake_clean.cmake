file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_controller.dir/test_epoch_controller.cc.o"
  "CMakeFiles/test_epoch_controller.dir/test_epoch_controller.cc.o.d"
  "test_epoch_controller"
  "test_epoch_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
