# Empty dependencies file for test_epoch_controller.
# This may be replaced when dependencies are built.
