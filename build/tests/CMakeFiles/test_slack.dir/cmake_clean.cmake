file(REMOVE_RECURSE
  "CMakeFiles/test_slack.dir/test_slack.cc.o"
  "CMakeFiles/test_slack.dir/test_slack.cc.o.d"
  "test_slack"
  "test_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
