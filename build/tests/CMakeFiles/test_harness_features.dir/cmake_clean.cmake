file(REMOVE_RECURSE
  "CMakeFiles/test_harness_features.dir/test_harness_features.cc.o"
  "CMakeFiles/test_harness_features.dir/test_harness_features.cc.o.d"
  "test_harness_features"
  "test_harness_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
