# Empty compiler generated dependencies file for test_mix_sweep.
# This may be replaced when dependencies are built.
