file(REMOVE_RECURSE
  "CMakeFiles/test_mix_sweep.dir/test_mix_sweep.cc.o"
  "CMakeFiles/test_mix_sweep.dir/test_mix_sweep.cc.o.d"
  "test_mix_sweep"
  "test_mix_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mix_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
