file(REMOVE_RECURSE
  "libms_cpu.a"
)
