# Empty compiler generated dependencies file for ms_cpu.
# This may be replaced when dependencies are built.
