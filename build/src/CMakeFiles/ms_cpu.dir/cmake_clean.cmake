file(REMOVE_RECURSE
  "CMakeFiles/ms_cpu.dir/cpu/core.cc.o"
  "CMakeFiles/ms_cpu.dir/cpu/core.cc.o.d"
  "libms_cpu.a"
  "libms_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
