file(REMOVE_RECURSE
  "CMakeFiles/ms_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/ms_sim.dir/sim/event_queue.cc.o.d"
  "libms_sim.a"
  "libms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
