file(REMOVE_RECURSE
  "CMakeFiles/ms_dram.dir/dram/bank.cc.o"
  "CMakeFiles/ms_dram.dir/dram/bank.cc.o.d"
  "CMakeFiles/ms_dram.dir/dram/rank.cc.o"
  "CMakeFiles/ms_dram.dir/dram/rank.cc.o.d"
  "CMakeFiles/ms_dram.dir/dram/timing.cc.o"
  "CMakeFiles/ms_dram.dir/dram/timing.cc.o.d"
  "libms_dram.a"
  "libms_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
