file(REMOVE_RECURSE
  "libms_dram.a"
)
