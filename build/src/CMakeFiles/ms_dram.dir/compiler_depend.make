# Empty compiler generated dependencies file for ms_dram.
# This may be replaced when dependencies are built.
