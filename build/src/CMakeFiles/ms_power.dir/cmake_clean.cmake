file(REMOVE_RECURSE
  "CMakeFiles/ms_power.dir/power/dram_power.cc.o"
  "CMakeFiles/ms_power.dir/power/dram_power.cc.o.d"
  "CMakeFiles/ms_power.dir/power/params.cc.o"
  "CMakeFiles/ms_power.dir/power/params.cc.o.d"
  "CMakeFiles/ms_power.dir/power/system_power.cc.o"
  "CMakeFiles/ms_power.dir/power/system_power.cc.o.d"
  "libms_power.a"
  "libms_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
