# Empty dependencies file for ms_power.
# This may be replaced when dependencies are built.
