file(REMOVE_RECURSE
  "libms_power.a"
)
