file(REMOVE_RECURSE
  "libms_mem.a"
)
