file(REMOVE_RECURSE
  "CMakeFiles/ms_mem.dir/mem/address_map.cc.o"
  "CMakeFiles/ms_mem.dir/mem/address_map.cc.o.d"
  "CMakeFiles/ms_mem.dir/mem/channel.cc.o"
  "CMakeFiles/ms_mem.dir/mem/channel.cc.o.d"
  "CMakeFiles/ms_mem.dir/mem/controller.cc.o"
  "CMakeFiles/ms_mem.dir/mem/controller.cc.o.d"
  "CMakeFiles/ms_mem.dir/mem/counters.cc.o"
  "CMakeFiles/ms_mem.dir/mem/counters.cc.o.d"
  "libms_mem.a"
  "libms_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
