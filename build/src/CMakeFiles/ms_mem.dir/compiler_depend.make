# Empty compiler generated dependencies file for ms_mem.
# This may be replaced when dependencies are built.
