
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cc" "src/CMakeFiles/ms_mem.dir/mem/address_map.cc.o" "gcc" "src/CMakeFiles/ms_mem.dir/mem/address_map.cc.o.d"
  "/root/repo/src/mem/channel.cc" "src/CMakeFiles/ms_mem.dir/mem/channel.cc.o" "gcc" "src/CMakeFiles/ms_mem.dir/mem/channel.cc.o.d"
  "/root/repo/src/mem/controller.cc" "src/CMakeFiles/ms_mem.dir/mem/controller.cc.o" "gcc" "src/CMakeFiles/ms_mem.dir/mem/controller.cc.o.d"
  "/root/repo/src/mem/counters.cc" "src/CMakeFiles/ms_mem.dir/mem/counters.cc.o" "gcc" "src/CMakeFiles/ms_mem.dir/mem/counters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ms_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
