
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memscale/energy_model.cc" "src/CMakeFiles/ms_core.dir/memscale/energy_model.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/energy_model.cc.o.d"
  "/root/repo/src/memscale/epoch_controller.cc" "src/CMakeFiles/ms_core.dir/memscale/epoch_controller.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/epoch_controller.cc.o.d"
  "/root/repo/src/memscale/perf_model.cc" "src/CMakeFiles/ms_core.dir/memscale/perf_model.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/perf_model.cc.o.d"
  "/root/repo/src/memscale/policies/coscale_policy.cc" "src/CMakeFiles/ms_core.dir/memscale/policies/coscale_policy.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/policies/coscale_policy.cc.o.d"
  "/root/repo/src/memscale/policies/decoupled_policy.cc" "src/CMakeFiles/ms_core.dir/memscale/policies/decoupled_policy.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/policies/decoupled_policy.cc.o.d"
  "/root/repo/src/memscale/policies/memscale_policy.cc" "src/CMakeFiles/ms_core.dir/memscale/policies/memscale_policy.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/policies/memscale_policy.cc.o.d"
  "/root/repo/src/memscale/policies/perchannel_policy.cc" "src/CMakeFiles/ms_core.dir/memscale/policies/perchannel_policy.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/policies/perchannel_policy.cc.o.d"
  "/root/repo/src/memscale/policies/policy.cc" "src/CMakeFiles/ms_core.dir/memscale/policies/policy.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/policies/policy.cc.o.d"
  "/root/repo/src/memscale/policies/powerdown_policy.cc" "src/CMakeFiles/ms_core.dir/memscale/policies/powerdown_policy.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/policies/powerdown_policy.cc.o.d"
  "/root/repo/src/memscale/policies/static_policy.cc" "src/CMakeFiles/ms_core.dir/memscale/policies/static_policy.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/policies/static_policy.cc.o.d"
  "/root/repo/src/memscale/slack.cc" "src/CMakeFiles/ms_core.dir/memscale/slack.cc.o" "gcc" "src/CMakeFiles/ms_core.dir/memscale/slack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ms_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
