file(REMOVE_RECURSE
  "CMakeFiles/ms_core.dir/memscale/energy_model.cc.o"
  "CMakeFiles/ms_core.dir/memscale/energy_model.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/epoch_controller.cc.o"
  "CMakeFiles/ms_core.dir/memscale/epoch_controller.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/perf_model.cc.o"
  "CMakeFiles/ms_core.dir/memscale/perf_model.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/policies/coscale_policy.cc.o"
  "CMakeFiles/ms_core.dir/memscale/policies/coscale_policy.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/policies/decoupled_policy.cc.o"
  "CMakeFiles/ms_core.dir/memscale/policies/decoupled_policy.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/policies/memscale_policy.cc.o"
  "CMakeFiles/ms_core.dir/memscale/policies/memscale_policy.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/policies/perchannel_policy.cc.o"
  "CMakeFiles/ms_core.dir/memscale/policies/perchannel_policy.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/policies/policy.cc.o"
  "CMakeFiles/ms_core.dir/memscale/policies/policy.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/policies/powerdown_policy.cc.o"
  "CMakeFiles/ms_core.dir/memscale/policies/powerdown_policy.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/policies/static_policy.cc.o"
  "CMakeFiles/ms_core.dir/memscale/policies/static_policy.cc.o.d"
  "CMakeFiles/ms_core.dir/memscale/slack.cc.o"
  "CMakeFiles/ms_core.dir/memscale/slack.cc.o.d"
  "libms_core.a"
  "libms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
