file(REMOVE_RECURSE
  "libms_workload.a"
)
