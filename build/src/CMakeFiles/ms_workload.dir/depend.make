# Empty dependencies file for ms_workload.
# This may be replaced when dependencies are built.
