
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/address_stream.cc" "src/CMakeFiles/ms_workload.dir/workload/address_stream.cc.o" "gcc" "src/CMakeFiles/ms_workload.dir/workload/address_stream.cc.o.d"
  "/root/repo/src/workload/app_profile.cc" "src/CMakeFiles/ms_workload.dir/workload/app_profile.cc.o" "gcc" "src/CMakeFiles/ms_workload.dir/workload/app_profile.cc.o.d"
  "/root/repo/src/workload/llc.cc" "src/CMakeFiles/ms_workload.dir/workload/llc.cc.o" "gcc" "src/CMakeFiles/ms_workload.dir/workload/llc.cc.o.d"
  "/root/repo/src/workload/mixes.cc" "src/CMakeFiles/ms_workload.dir/workload/mixes.cc.o" "gcc" "src/CMakeFiles/ms_workload.dir/workload/mixes.cc.o.d"
  "/root/repo/src/workload/trace_file.cc" "src/CMakeFiles/ms_workload.dir/workload/trace_file.cc.o" "gcc" "src/CMakeFiles/ms_workload.dir/workload/trace_file.cc.o.d"
  "/root/repo/src/workload/trace_source.cc" "src/CMakeFiles/ms_workload.dir/workload/trace_source.cc.o" "gcc" "src/CMakeFiles/ms_workload.dir/workload/trace_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ms_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
