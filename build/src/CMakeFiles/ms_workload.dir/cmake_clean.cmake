file(REMOVE_RECURSE
  "CMakeFiles/ms_workload.dir/workload/address_stream.cc.o"
  "CMakeFiles/ms_workload.dir/workload/address_stream.cc.o.d"
  "CMakeFiles/ms_workload.dir/workload/app_profile.cc.o"
  "CMakeFiles/ms_workload.dir/workload/app_profile.cc.o.d"
  "CMakeFiles/ms_workload.dir/workload/llc.cc.o"
  "CMakeFiles/ms_workload.dir/workload/llc.cc.o.d"
  "CMakeFiles/ms_workload.dir/workload/mixes.cc.o"
  "CMakeFiles/ms_workload.dir/workload/mixes.cc.o.d"
  "CMakeFiles/ms_workload.dir/workload/trace_file.cc.o"
  "CMakeFiles/ms_workload.dir/workload/trace_file.cc.o.d"
  "CMakeFiles/ms_workload.dir/workload/trace_source.cc.o"
  "CMakeFiles/ms_workload.dir/workload/trace_source.cc.o.d"
  "libms_workload.a"
  "libms_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
