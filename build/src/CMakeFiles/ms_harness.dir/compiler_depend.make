# Empty compiler generated dependencies file for ms_harness.
# This may be replaced when dependencies are built.
