file(REMOVE_RECURSE
  "CMakeFiles/ms_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/ms_harness.dir/harness/experiment.cc.o.d"
  "CMakeFiles/ms_harness.dir/harness/report.cc.o"
  "CMakeFiles/ms_harness.dir/harness/report.cc.o.d"
  "CMakeFiles/ms_harness.dir/harness/system.cc.o"
  "CMakeFiles/ms_harness.dir/harness/system.cc.o.d"
  "libms_harness.a"
  "libms_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
