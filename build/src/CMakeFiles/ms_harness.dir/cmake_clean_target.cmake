file(REMOVE_RECURSE
  "libms_harness.a"
)
