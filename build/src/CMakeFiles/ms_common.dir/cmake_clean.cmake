file(REMOVE_RECURSE
  "CMakeFiles/ms_common.dir/common/config.cc.o"
  "CMakeFiles/ms_common.dir/common/config.cc.o.d"
  "CMakeFiles/ms_common.dir/common/log.cc.o"
  "CMakeFiles/ms_common.dir/common/log.cc.o.d"
  "CMakeFiles/ms_common.dir/common/stats.cc.o"
  "CMakeFiles/ms_common.dir/common/stats.cc.o.d"
  "libms_common.a"
  "libms_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
