file(REMOVE_RECURSE
  "libms_common.a"
)
