# Empty compiler generated dependencies file for cache_workload.
# This may be replaced when dependencies are built.
