file(REMOVE_RECURSE
  "CMakeFiles/cache_workload.dir/cache_workload.cpp.o"
  "CMakeFiles/cache_workload.dir/cache_workload.cpp.o.d"
  "cache_workload"
  "cache_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
