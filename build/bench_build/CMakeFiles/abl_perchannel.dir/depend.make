# Empty dependencies file for abl_perchannel.
# This may be replaced when dependencies are built.
