file(REMOVE_RECURSE
  "../bench/abl_perchannel"
  "../bench/abl_perchannel.pdb"
  "CMakeFiles/abl_perchannel.dir/abl_perchannel.cc.o"
  "CMakeFiles/abl_perchannel.dir/abl_perchannel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_perchannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
