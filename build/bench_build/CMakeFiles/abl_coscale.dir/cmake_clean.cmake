file(REMOVE_RECURSE
  "../bench/abl_coscale"
  "../bench/abl_coscale.pdb"
  "CMakeFiles/abl_coscale.dir/abl_coscale.cc.o"
  "CMakeFiles/abl_coscale.dir/abl_coscale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
