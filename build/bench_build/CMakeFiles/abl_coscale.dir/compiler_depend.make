# Empty compiler generated dependencies file for abl_coscale.
# This may be replaced when dependencies are built.
