# Empty dependencies file for fig14_vary_memfraction.
# This may be replaced when dependencies are built.
