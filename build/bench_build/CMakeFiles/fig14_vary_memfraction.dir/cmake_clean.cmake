file(REMOVE_RECURSE
  "../bench/fig14_vary_memfraction"
  "../bench/fig14_vary_memfraction.pdb"
  "CMakeFiles/fig14_vary_memfraction.dir/fig14_vary_memfraction.cc.o"
  "CMakeFiles/fig14_vary_memfraction.dir/fig14_vary_memfraction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_vary_memfraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
