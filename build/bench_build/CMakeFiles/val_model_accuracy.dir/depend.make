# Empty dependencies file for val_model_accuracy.
# This may be replaced when dependencies are built.
