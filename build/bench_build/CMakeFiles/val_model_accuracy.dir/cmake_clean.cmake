file(REMOVE_RECURSE
  "../bench/val_model_accuracy"
  "../bench/val_model_accuracy.pdb"
  "CMakeFiles/val_model_accuracy.dir/val_model_accuracy.cc.o"
  "CMakeFiles/val_model_accuracy.dir/val_model_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/val_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
