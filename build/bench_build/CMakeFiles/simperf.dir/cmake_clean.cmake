file(REMOVE_RECURSE
  "../bench/simperf"
  "../bench/simperf.pdb"
  "CMakeFiles/simperf.dir/simperf.cc.o"
  "CMakeFiles/simperf.dir/simperf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
