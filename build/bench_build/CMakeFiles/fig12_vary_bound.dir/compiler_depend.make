# Empty compiler generated dependencies file for fig12_vary_bound.
# This may be replaced when dependencies are built.
