file(REMOVE_RECURSE
  "../bench/fig12_vary_bound"
  "../bench/fig12_vary_bound.pdb"
  "CMakeFiles/fig12_vary_bound.dir/fig12_vary_bound.cc.o"
  "CMakeFiles/fig12_vary_bound.dir/fig12_vary_bound.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_vary_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
