# Empty compiler generated dependencies file for fig13_vary_channels.
# This may be replaced when dependencies are built.
