file(REMOVE_RECURSE
  "../bench/fig13_vary_channels"
  "../bench/fig13_vary_channels.pdb"
  "CMakeFiles/fig13_vary_channels.dir/fig13_vary_channels.cc.o"
  "CMakeFiles/fig13_vary_channels.dir/fig13_vary_channels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_vary_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
