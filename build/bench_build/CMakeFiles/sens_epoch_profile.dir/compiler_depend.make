# Empty compiler generated dependencies file for sens_epoch_profile.
# This may be replaced when dependencies are built.
