file(REMOVE_RECURSE
  "../bench/sens_epoch_profile"
  "../bench/sens_epoch_profile.pdb"
  "CMakeFiles/sens_epoch_profile.dir/sens_epoch_profile.cc.o"
  "CMakeFiles/sens_epoch_profile.dir/sens_epoch_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_epoch_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
