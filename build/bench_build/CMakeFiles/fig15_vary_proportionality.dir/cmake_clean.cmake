file(REMOVE_RECURSE
  "../bench/fig15_vary_proportionality"
  "../bench/fig15_vary_proportionality.pdb"
  "CMakeFiles/fig15_vary_proportionality.dir/fig15_vary_proportionality.cc.o"
  "CMakeFiles/fig15_vary_proportionality.dir/fig15_vary_proportionality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_vary_proportionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
