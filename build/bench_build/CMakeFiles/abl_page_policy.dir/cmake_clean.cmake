file(REMOVE_RECURSE
  "../bench/abl_page_policy"
  "../bench/abl_page_policy.pdb"
  "CMakeFiles/abl_page_policy.dir/abl_page_policy.cc.o"
  "CMakeFiles/abl_page_policy.dir/abl_page_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_page_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
