file(REMOVE_RECURSE
  "../bench/fig9_policy_comparison"
  "../bench/fig9_policy_comparison.pdb"
  "CMakeFiles/fig9_policy_comparison.dir/fig9_policy_comparison.cc.o"
  "CMakeFiles/fig9_policy_comparison.dir/fig9_policy_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
