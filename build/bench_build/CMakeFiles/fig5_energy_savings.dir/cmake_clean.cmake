file(REMOVE_RECURSE
  "../bench/fig5_energy_savings"
  "../bench/fig5_energy_savings.pdb"
  "CMakeFiles/fig5_energy_savings.dir/fig5_energy_savings.cc.o"
  "CMakeFiles/fig5_energy_savings.dir/fig5_energy_savings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_energy_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
