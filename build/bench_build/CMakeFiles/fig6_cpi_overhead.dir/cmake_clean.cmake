file(REMOVE_RECURSE
  "../bench/fig6_cpi_overhead"
  "../bench/fig6_cpi_overhead.pdb"
  "CMakeFiles/fig6_cpi_overhead.dir/fig6_cpi_overhead.cc.o"
  "CMakeFiles/fig6_cpi_overhead.dir/fig6_cpi_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cpi_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
