# Empty dependencies file for fig6_cpi_overhead.
# This may be replaced when dependencies are built.
