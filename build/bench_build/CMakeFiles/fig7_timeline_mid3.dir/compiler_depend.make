# Empty compiler generated dependencies file for fig7_timeline_mid3.
# This may be replaced when dependencies are built.
