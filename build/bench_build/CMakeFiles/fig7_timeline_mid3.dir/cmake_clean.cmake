file(REMOVE_RECURSE
  "../bench/fig7_timeline_mid3"
  "../bench/fig7_timeline_mid3.pdb"
  "CMakeFiles/fig7_timeline_mid3.dir/fig7_timeline_mid3.cc.o"
  "CMakeFiles/fig7_timeline_mid3.dir/fig7_timeline_mid3.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_timeline_mid3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
