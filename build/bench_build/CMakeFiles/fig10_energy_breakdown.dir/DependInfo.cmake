
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_energy_breakdown.cc" "bench_build/CMakeFiles/fig10_energy_breakdown.dir/fig10_energy_breakdown.cc.o" "gcc" "bench_build/CMakeFiles/fig10_energy_breakdown.dir/fig10_energy_breakdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ms_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ms_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
