file(REMOVE_RECURSE
  "../bench/fig11_policy_cpi"
  "../bench/fig11_policy_cpi.pdb"
  "CMakeFiles/fig11_policy_cpi.dir/fig11_policy_cpi.cc.o"
  "CMakeFiles/fig11_policy_cpi.dir/fig11_policy_cpi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_policy_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
