file(REMOVE_RECURSE
  "../bench/abl_idle_states"
  "../bench/abl_idle_states.pdb"
  "CMakeFiles/abl_idle_states.dir/abl_idle_states.cc.o"
  "CMakeFiles/abl_idle_states.dir/abl_idle_states.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_idle_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
