# Empty compiler generated dependencies file for sens_cores32.
# This may be replaced when dependencies are built.
