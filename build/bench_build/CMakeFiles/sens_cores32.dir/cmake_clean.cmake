file(REMOVE_RECURSE
  "../bench/sens_cores32"
  "../bench/sens_cores32.pdb"
  "CMakeFiles/sens_cores32.dir/sens_cores32.cc.o"
  "CMakeFiles/sens_cores32.dir/sens_cores32.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_cores32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
