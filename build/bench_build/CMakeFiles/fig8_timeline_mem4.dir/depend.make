# Empty dependencies file for fig8_timeline_mem4.
# This may be replaced when dependencies are built.
