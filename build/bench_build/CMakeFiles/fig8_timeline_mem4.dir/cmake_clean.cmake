file(REMOVE_RECURSE
  "../bench/fig8_timeline_mem4"
  "../bench/fig8_timeline_mem4.pdb"
  "CMakeFiles/fig8_timeline_mem4.dir/fig8_timeline_mem4.cc.o"
  "CMakeFiles/fig8_timeline_mem4.dir/fig8_timeline_mem4.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_timeline_mem4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
