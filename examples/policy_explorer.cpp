/**
 * @file
 * Policy explorer: compare every registered energy-management policy
 * on one workload mix and print the savings/performance frontier.
 *
 * Usage: policy_explorer [mix=MID3] [budget=3000000] [gamma=0.10]
 *                        [channels=4] [cores=16] [jobs=N]
 *
 * The per-policy runs fan out on the shared sweep engine; results are
 * printed in registration order regardless of completion order.
 */

#include <cstdio>

#include "common/config.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    conf.parseArgs(argc, argv);

    SystemConfig cfg;
    cfg.mixName = conf.getString("mix", "MID3");
    cfg.instrBudget =
        static_cast<std::uint64_t>(conf.getInt("budget", 3'000'000));
    cfg.gamma = conf.getDouble("gamma", 0.10);
    cfg.epochLen = msToTick(conf.getDouble("epoch_ms", 0.25));
    cfg.profileLen = usToTick(conf.getDouble("profile_us", 25.0));
    cfg.numCores =
        static_cast<std::uint32_t>(conf.getInt("cores", 16));
    cfg.mem.numChannels =
        static_cast<std::uint32_t>(conf.getInt("channels", 4));
    // CPU power modelled explicitly so the coordinated-DVFS policy
    // (coscale) competes on equal accounting.
    cfg.modelCpuPower = true;

    std::printf("Comparing all policies on %s (gamma=%.0f%%)\n",
                cfg.mixName.c_str(), cfg.gamma * 100.0);

    SweepEngine eng(checkedJobs(conf.getInt("jobs", 0)));

    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    std::printf("baseline: %.2f ms, %.2f W system "
                "(rest-of-system calibrated to %.1f W)\n",
                tickToMs(base.runtime), base.avgSystemPower, rest);

    std::vector<std::string> names;
    for (const std::string &name : policyNames()) {
        if (name != "baseline")
            names.push_back(name);
    }
    std::vector<ComparisonResult> results =
        eng.map<ComparisonResult>(names.size(), [&](std::size_t i) {
            return compareWithBase(cfg, base, rest, names[i]);
        });

    Table t({"policy", "sys saved", "mem saved", "avg CPI incr",
             "worst CPI incr", "runtime (ms)"});
    for (std::size_t i = 0; i < names.size(); ++i) {
        const ComparisonResult &r = results[i];
        t.addRow({names[i], pct(r.sysEnergySavings),
                  pct(r.memEnergySavings), pct(r.avgCpiIncrease),
                  pct(r.worstCpiIncrease),
                  fmt(tickToMs(r.policy.runtime))});
    }
    t.print("policy frontier");
    return 0;
}
