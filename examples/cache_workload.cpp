/**
 * @file
 * Cache-derived workload: instead of prescribing the miss rate, run a
 * synthetic address stream through the modelled 16 MB shared LLC
 * (Table 2) and let misses and writebacks emerge from cache behaviour,
 * then feed them to the memory system under MemScale.
 *
 * Demonstrates: AddressStream, Llc, CacheTraceSource, low-level system
 * assembly, epoch control without the System harness.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "cpu/core.hh"
#include "harness/report.hh"
#include "mem/controller.hh"
#include "memscale/epoch_controller.hh"
#include "sim/event_queue.hh"
#include "workload/llc.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    conf.parseArgs(argc, argv);
    const auto budget = static_cast<std::uint64_t>(
        conf.getInt("budget", 1'000'000));
    const std::uint32_t ncores = 16;

    EventQueue eq;
    MemConfig mcfg;
    MemoryController mc(eq, mcfg);
    mc.startRefresh();

    // Each core runs a stream mix through its slice of a 16 MB LLC.
    std::vector<std::unique_ptr<CacheTraceSource>> sources;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<CpuSampler *> core_ptrs;
    CoreParams cp;
    cp.instrBudget = budget;
    cp.runPastBudget = false;
    std::uint32_t done = 0;
    for (std::uint32_t i = 0; i < ncores; ++i) {
        CacheTraceSource::Params p;
        p.accessesPerKiloInstr = 50.0;
        p.llcBytes = (16ull << 20) / ncores;   // shared-cache slice
        p.llcWays = 4;
        AddressStreamParams sp;
        sp.footprintBytes = 8ull << 20;
        sp.seqFrac = i % 2 ? 0.25 : 0.45;      // alternate behaviours
        sp.storeFrac = 0.3;
        sp.hotFrac = 0.08;                     // fits the LLC slice
        sp.hotProb = 0.85;
        sources.push_back(std::make_unique<CacheTraceSource>(
            p, sp, Addr(i) * (512ull << 20), 77 + i));
        cores.push_back(std::make_unique<Core>(
            eq, i, *sources.back(), mc, cp));
        core_ptrs.push_back(cores.back().get());
        cores.back()->setOnDone([&] {
            if (++done == ncores)
                eq.stop();
        });
    }

    auto policy = makePolicy("memscale");
    PolicyContext ctx;
    ctx.epochLen = msToTick(0.25);
    ctx.profileLen = usToTick(25.0);
    ctx.restWatts = 60.0;
    policy->configure(mc, ctx);
    EpochController epochs(eq, mc, core_ptrs, *policy, ctx);
    epochs.start();
    for (auto &c : cores)
        c->start();

    eq.runUntil(msToTick(500.0));

    McCounters counters = mc.sampleCounters();
    double instr = static_cast<double>(budget) * ncores;
    std::printf("cache-derived workload finished in %.3f ms\n",
                tickToMs(eq.now()));
    std::printf("emergent RPKI: %.2f, WPKI: %.2f (from LLC "
                "behaviour, not prescribed)\n",
                1000.0 * static_cast<double>(counters.reads) / instr,
                1000.0 * static_cast<double>(counters.writes) / instr);
    double mr = 0.0;
    for (auto &s : sources)
        mr += s->cache().missRate();
    std::printf("average LLC miss rate: %.1f%%\n",
                100.0 * mr / ncores);

    Table t({"t(ms)", "bus MHz", "util"});
    for (const EpochRecord &er : epochs.history())
        t.addRow({fmt(tickToMs(er.start)),
                  std::to_string(er.busMHz), pct(er.channelUtil)});
    t.print("MemScale decisions on the emergent workload");
    return 0;
}
