/**
 * @file
 * Quickstart: run MemScale on one workload mix against the baseline
 * and print energy savings and performance impact.
 *
 * Usage: quickstart [mix=MID1] [budget=2000000] [gamma=0.10]
 *                   [epoch_ms=0.25] [profile_us=25]
 */

#include <cstdio>

#include "common/config.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace memscale;

int
main(int argc, char **argv)
{
    Config conf;
    conf.parseArgs(argc, argv);

    SystemConfig cfg;
    cfg.mixName = conf.getString("mix", "MID1");
    cfg.instrBudget =
        static_cast<std::uint64_t>(conf.getInt("budget", 2'000'000));
    cfg.gamma = conf.getDouble("gamma", 0.10);
    cfg.epochLen = msToTick(conf.getDouble("epoch_ms", 0.25));
    cfg.profileLen = usToTick(conf.getDouble("profile_us", 25.0));

    std::printf("MemScale quickstart: mix=%s budget=%llu gamma=%.0f%%\n",
                cfg.mixName.c_str(),
                static_cast<unsigned long long>(cfg.instrBudget),
                cfg.gamma * 100.0);

    ComparisonResult r = compare(cfg, "memscale");

    std::printf("\nbaseline : runtime %.2f ms, system %.2f W "
                "(memory %.2f W)\n",
                tickToMs(r.base.runtime), r.base.avgSystemPower,
                r.base.avgMemPower);
    std::printf("memscale : runtime %.2f ms, system %.2f W "
                "(memory %.2f W)\n",
                tickToMs(r.policy.runtime), r.policy.avgSystemPower,
                r.policy.avgMemPower);
    std::printf("\nmemory energy savings : %s\n",
                pct(r.memEnergySavings).c_str());
    std::printf("system energy savings : %s\n",
                pct(r.sysEnergySavings).c_str());
    std::printf("CPI increase          : avg %s, worst %s "
                "(bound %s)\n",
                pct(r.avgCpiIncrease).c_str(),
                pct(r.worstCpiIncrease).c_str(),
                pct(cfg.gamma).c_str());

    Table t({"epoch", "t_start(ms)", "bus MHz", "util", "worst CPI"});
    const auto &tl = r.policy.timeline;
    for (std::size_t i = 0; i < tl.size(); ++i) {
        double worst = 0.0;
        for (double c : tl[i].coreCpi)
            worst = std::max(worst, c);
        t.addRow({std::to_string(i), fmt(tickToMs(tl[i].start)),
                  std::to_string(tl[i].busMHz),
                  pct(tl[i].channelUtil), fmt(worst)});
    }
    t.print("per-epoch frequency decisions");
    return 0;
}
