/**
 * @file
 * The paper's two-step methodology end to end: record a per-core LLC
 * miss trace from the synthetic front end, then replay the *same*
 * trace through the detailed memory simulator — identical offered
 * work, byte-for-byte reproducible.
 *
 * Demonstrates: TraceRecorder / TraceFileSource, driving cores and the
 * memory controller directly (without the System harness).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "cpu/core.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"
#include "workload/mixes.hh"
#include "workload/trace_file.hh"
#include "workload/trace_source.hh"

using namespace memscale;

namespace
{

/** Run `cores` cores off the given sources; return last finish tick. */
Tick
runCores(std::vector<std::unique_ptr<TraceSource>> &sources,
         std::uint64_t budget, McCounters &counters_out)
{
    EventQueue eq;
    MemConfig mcfg;
    MemoryController mc(eq, mcfg);
    mc.startRefresh();

    CoreParams cp;
    cp.instrBudget = budget;
    cp.runPastBudget = false;
    std::vector<std::unique_ptr<Core>> cores;
    std::uint32_t done = 0;
    for (std::uint32_t i = 0; i < sources.size(); ++i)
        cores.push_back(std::make_unique<Core>(
            eq, i, *sources[i], mc, cp));
    for (auto &c : cores) {
        c->setOnDone([&] {
            if (++done == cores.size())
                eq.stop();
        });
        c->start();
    }
    eq.runUntil(msToTick(500.0));
    counters_out = mc.sampleCounters();
    return eq.now();
}

} // namespace

int
main(int argc, char **argv)
{
    Config conf;
    conf.parseArgs(argc, argv);
    const auto budget = static_cast<std::uint64_t>(
        conf.getInt("budget", 500'000));
    const std::string dir = conf.getString("tracedir", "/tmp");
    const std::uint32_t ncores = 4;

    // Step 1: record.  Each core's synthetic stream is teed to disk.
    std::printf("step 1: recording %u-core traces (%llu instr each) "
                "to %s\n", ncores,
                static_cast<unsigned long long>(budget), dir.c_str());
    std::vector<std::string> paths;
    {
        std::vector<std::unique_ptr<SyntheticTraceSource>> inner;
        std::vector<std::unique_ptr<TraceSource>> rec;
        for (std::uint32_t i = 0; i < ncores; ++i) {
            const AppProfile &app =
                appByName(i % 2 ? "gap" : "ammp");
            paths.push_back(dir + "/memscale_core" +
                            std::to_string(i) + ".trc");
            inner.push_back(std::make_unique<SyntheticTraceSource>(
                app, Addr(i) << 32, 64, 1000 + i));
            rec.push_back(std::make_unique<TraceRecorder>(
                *inner.back(), paths.back()));
        }
        McCounters c1;
        Tick t1 = runCores(rec, budget, c1);
        std::printf("  recorded run: %.3f ms, %llu reads\n",
                    tickToMs(t1),
                    static_cast<unsigned long long>(c1.reads));
    }

    // Step 2: replay twice and check reproducibility.
    Tick t_prev = 0;
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<std::unique_ptr<TraceSource>> replay;
        for (std::uint32_t i = 0; i < ncores; ++i)
            replay.push_back(
                std::make_unique<TraceFileSource>(paths[i]));
        McCounters c2;
        Tick t2 = runCores(replay, budget, c2);
        std::printf("step 2.%d: replay run: %.3f ms, %llu reads\n",
                    pass + 1, tickToMs(t2),
                    static_cast<unsigned long long>(c2.reads));
        if (pass == 1 && t2 != t_prev) {
            std::printf("ERROR: replays diverged!\n");
            return 1;
        }
        t_prev = t2;
    }
    std::printf("replays are tick-identical: the same trace yields "
                "the same execution.\n");
    return 0;
}
