/**
 * @file
 * Defining a custom workload against the library API: a phased
 * "analytics" application (scan bursts between compute phases) mixed
 * with a latency-sensitive "frontend", run under MemScale with a tight
 * 5% degradation bound.
 *
 * Demonstrates: AppProfile construction, SystemConfig::customApps,
 * per-epoch timeline inspection.
 */

#include <cstdio>

#include "common/config.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace memscale;

namespace
{

AppProfile
analyticsApp()
{
    AppProfile app;
    app.name = "analytics";
    // Compute phase: light traffic; scan phase: streaming misses.
    // Phase lengths are in canonical 100M-instruction units and get
    // scaled to the run budget; keep them long enough that each phase
    // spans several OS epochs, or the policy will always trail the
    // workload by an epoch.
    app.phases.push_back(AppPhase{0.5, 0.05, 0.9, 0.5, 55'000'000});
    app.phases.push_back(AppPhase{12.0, 4.0, 0.8, 0.9, 45'000'000});
    app.loopPhases = true;
    app.footprintBytes = 256ull << 20;
    return app;
}

AppProfile
frontendApp()
{
    AppProfile app;
    app.name = "frontend";
    app.phases.push_back(AppPhase{1.2, 0.1, 1.1, 0.3, 0});
    app.footprintBytes = 64ull << 20;
    return app;
}

} // namespace

int
main(int argc, char **argv)
{
    Config conf;
    conf.parseArgs(argc, argv);

    SystemConfig cfg;
    cfg.mixName = "custom-analytics";
    cfg.customApps = {analyticsApp(), frontendApp()};
    cfg.instrBudget =
        static_cast<std::uint64_t>(conf.getInt("budget", 4'000'000));
    cfg.gamma = conf.getDouble("gamma", 0.05);
    cfg.epochLen = msToTick(conf.getDouble("epoch_ms", 0.25));
    cfg.profileLen = usToTick(conf.getDouble("profile_us", 25.0));

    std::printf("Custom workload: 8x analytics + 8x frontend, "
                "gamma=%.0f%%\n", cfg.gamma * 100.0);

    ComparisonResult r = compare(cfg, "memscale");

    std::printf("\nmemory energy savings : %s\n",
                pct(r.memEnergySavings).c_str());
    std::printf("system energy savings : %s\n",
                pct(r.sysEnergySavings).c_str());
    std::printf("CPI increase          : avg %s, worst %s\n",
                pct(r.avgCpiIncrease).c_str(),
                pct(r.worstCpiIncrease).c_str());

    Table t({"t(ms)", "bus MHz", "util"});
    for (const EpochRecord &er : r.policy.timeline) {
        t.addRow({fmt(tickToMs(er.start)),
                  std::to_string(er.busMHz), pct(er.channelUtil)});
    }
    t.print("frequency tracks the analytics scan phases");
    return 0;
}
