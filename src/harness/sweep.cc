#include "harness/sweep.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hh"

namespace memscale
{

namespace
{

unsigned
clampJobs(unsigned long long v)
{
    if (v > MaxJobs) {
        warn("clamping jobs=%llu to %u", v, MaxJobs);
        return MaxJobs;
    }
    return static_cast<unsigned>(v);
}

} // namespace

unsigned
checkedJobs(long long requested)
{
    if (requested < 0)
        fatal("jobs must be >= 0, got %lld", requested);
    return clampJobs(static_cast<unsigned long long>(requested));
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return clampJobs(requested);
    if (const char *env = std::getenv("MEMSCALE_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return clampJobs(static_cast<unsigned long long>(v));
        warn("ignoring invalid MEMSCALE_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * One parallel batch in flight.  Tasks are dealt out as contiguous
 * index chunks, one per worker; an idle worker steals from the back
 * of a victim's deque, scanning victims in a fixed order.  All
 * bookkeeping is mutex-per-deque — task bodies here are entire
 * simulation runs, so queue overhead is noise.
 */
struct Batch
{
    explicit Batch(std::size_t n, unsigned workers,
                   const std::function<void(std::size_t)> &f)
        : fn(f), queues(workers), remaining(n)
    {
        for (std::size_t i = 0; i < n; ++i)
            queues[i * workers / n].q.push_back(i);
    }

    struct WorkerQueue
    {
        std::mutex m;
        std::deque<std::size_t> q;
    };

    const std::function<void(std::size_t)> &fn;
    std::vector<WorkerQueue> queues;
    std::atomic<std::size_t> remaining;

    std::mutex errMutex;
    std::size_t errIndex = ~std::size_t(0);
    std::exception_ptr err;

    bool
    pop(unsigned self, std::size_t &out)
    {
        {
            WorkerQueue &own = queues[self];
            std::lock_guard<std::mutex> g(own.m);
            if (!own.q.empty()) {
                out = own.q.front();
                own.q.pop_front();
                return true;
            }
        }
        // Steal from the back of the first non-empty victim.
        unsigned nw = static_cast<unsigned>(queues.size());
        for (unsigned k = 1; k < nw; ++k) {
            WorkerQueue &victim = queues[(self + k) % nw];
            std::lock_guard<std::mutex> g(victim.m);
            if (!victim.q.empty()) {
                out = victim.q.back();
                victim.q.pop_back();
                return true;
            }
        }
        return false;
    }

    void
    runTasks(unsigned self)
    {
        std::size_t idx;
        while (pop(self, idx)) {
            try {
                fn(idx);
            } catch (...) {
                std::lock_guard<std::mutex> g(errMutex);
                // Keep the lowest-indexed failure so the rethrown
                // error does not depend on thread timing.
                if (idx < errIndex) {
                    errIndex = idx;
                    err = std::current_exception();
                }
            }
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    }
};

struct SweepEngine::Impl
{
    explicit Impl(unsigned njobs) : jobs(njobs)
    {
        // The calling thread is worker 0; spawn the other jobs-1.
        for (unsigned w = 1; w < jobs; ++w)
            threads.emplace_back([this, w] { workerLoop(w); });
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> g(m);
            shutdown = true;
        }
        cv.notify_all();
        for (std::thread &t : threads)
            t.join();
    }

    void
    workerLoop(unsigned self)
    {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(m);
        for (;;) {
            cv.wait(lk, [&] {
                return shutdown || (batch && batchGen != seen);
            });
            if (shutdown)
                return;
            seen = batchGen;
            Batch *b = batch;
            ++active;
            lk.unlock();
            b->runTasks(self);
            lk.lock();
            if (--active == 0)
                doneCv.notify_all();
        }
    }

    void
    run(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        // Serialize batches from concurrent callers.
        std::lock_guard<std::mutex> serial(callerMutex);
        Batch b(n, jobs, fn);
        {
            std::lock_guard<std::mutex> g(m);
            batch = &b;
            ++batchGen;
        }
        cv.notify_all();
        b.runTasks(0);
        {
            // Wait for stragglers: every task done *and* every worker
            // out of runTasks() before the stack Batch dies.
            std::unique_lock<std::mutex> lk(m);
            doneCv.wait(lk, [&] {
                return active == 0 &&
                       b.remaining.load(std::memory_order_acquire) == 0;
            });
            batch = nullptr;
        }
        if (b.err)
            std::rethrow_exception(b.err);
    }

    unsigned jobs;
    std::vector<std::thread> threads;
    std::mutex callerMutex;
    std::mutex m;
    std::condition_variable cv;
    std::condition_variable doneCv;
    Batch *batch = nullptr;
    std::uint64_t batchGen = 0;
    unsigned active = 0;
    bool shutdown = false;
};

SweepEngine::SweepEngine(unsigned jobs)
    : impl_(std::make_unique<Impl>(resolveJobs(jobs)))
{
}

SweepEngine::~SweepEngine() = default;
SweepEngine::SweepEngine(SweepEngine &&) noexcept = default;
SweepEngine &SweepEngine::operator=(SweepEngine &&) noexcept = default;

unsigned
SweepEngine::jobs() const
{
    return impl_->jobs;
}

void
SweepEngine::forEach(std::size_t n,
                     const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;
    if (impl_->jobs == 1 || n == 1) {
        // Single-thread fallback: run inline, first failure
        // propagates directly (which is also the lowest index).
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    impl_->run(n, fn);
}

std::vector<ComparisonResult>
compareCases(const SweepEngine &eng, const std::vector<SweepCase> &cases)
{
    return eng.map<ComparisonResult>(
        cases.size(), [&](std::size_t i) {
            return compare(cases[i].cfg, cases[i].policy);
        });
}

std::vector<CalibratedBaseline>
runBaselines(const SweepEngine &eng,
             const std::vector<SystemConfig> &cfgs)
{
    return eng.map<CalibratedBaseline>(
        cfgs.size(), [&](std::size_t i) {
            CalibratedBaseline out;
            out.base = runBaseline(cfgs[i], out.rest);
            return out;
        });
}

std::vector<ComparisonResult>
comparePolicyGrid(const SweepEngine &eng,
                  const std::vector<SystemConfig> &cfgs,
                  const std::vector<CalibratedBaseline> &bases,
                  const std::vector<std::string> &policies)
{
    if (bases.size() != cfgs.size())
        fatal("comparePolicyGrid: %zu baselines for %zu configs",
              bases.size(), cfgs.size());
    std::size_t n = cfgs.size();
    return eng.map<ComparisonResult>(
        policies.size() * n, [&](std::size_t t) {
            std::size_t p = t / n;
            std::size_t i = t % n;
            return compareWithBase(cfgs[i], bases[i].base,
                                   bases[i].rest, policies[p]);
        });
}

} // namespace memscale
