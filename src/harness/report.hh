/**
 * @file
 * Plain-text table rendering for the bench binaries, so every figure
 * and table of the paper prints as aligned rows/series.
 */

#ifndef MEMSCALE_HARNESS_REPORT_HH
#define MEMSCALE_HARNESS_REPORT_HH

#include <string>
#include <vector>

#include "power/system_power.hh"

namespace memscale
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /**
     * Render with aligned columns to stdout.  If the environment
     * variable MEMSCALE_CSV_DIR is set, the table is also written as
     * <dir>/<csvSlug(title)>.csv for plotting; when two tables in the
     * same process slugify to the same name, later ones get a "-2",
     * "-3", ... suffix instead of silently overwriting the first.
     */
    void print(const std::string &title = "") const;

    /**
     * Serialize as RFC-4180-ish CSV.  A non-empty title becomes the
     * first line, escaped like any other cell (titles routinely
     * contain commas and quotes — "Fig. 5: mem 17-71%, sys 6-31%").
     */
    std::string toCsv(const std::string &title = "") const;

    /** Write CSV to an explicit path. */
    void writeCsv(const std::string &path,
                  const std::string &title = "") const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Filesystem-safe slug of a table title: lower-cased alphanumeric
 * runs joined by single dashes ("Fig. 5: energy" -> "fig-5-energy").
 * Never empty — an all-punctuation or empty title slugs to "table".
 */
std::string csvSlug(const std::string &title);

/** Format helpers. */
std::string fmt(double v, int precision = 2);
std::string pct(double fraction, int precision = 1);
std::string joules(double j);

/** Energy breakdown as normalized shares (for Figs. 2 and 10). */
std::vector<std::string> breakdownShares(const EnergyBreakdown &e,
                                         double denom);

} // namespace memscale

#endif // MEMSCALE_HARNESS_REPORT_HH
