#include "harness/differential.hh"

#include <cstdio>

#include "check/state_hash.hh"
#include "common/log.hh"

namespace memscale
{

namespace
{

using Flat = std::vector<std::pair<std::string, std::string>>;

std::string
fmtU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
fmtF64(double v)
{
    if (v == 0.0)
        v = 0.0;   // collapse -0.0 and +0.0, as StateHasher does
    char buf[48];
    // %a round-trips the exact bit pattern, so string equality is
    // value equality at the last ulp.
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

std::string
indexed(const char *prefix, std::size_t i, const char *suffix = "")
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s[%zu]%s", prefix, i, suffix);
    return buf;
}

void
flattenCounters(Flat &out, const char *p, const McCounters &c)
{
    auto put = [&](const char *name, std::uint64_t v) {
        out.emplace_back(std::string(p) + name, fmtU64(v));
    };
    put("bto", c.bto);
    put("btc", c.btc);
    out.emplace_back(std::string(p) + "cto", fmtF64(c.cto));
    put("ctc", c.ctc);
    put("rbhc", c.rbhc);
    put("obmc", c.obmc);
    put("cbmc", c.cbmc);
    put("epdc", c.epdc);
    put("pocc", c.pocc);
    put("rankTime", c.rankTime);
    put("rankPreTime", c.rankPreTime);
    put("rankPrePdTime", c.rankPrePdTime);
    put("rankActPdTime", c.rankActPdTime);
    put("reads", c.reads);
    put("writes", c.writes);
    put("busBusyTime", c.busBusyTime);
    put("readLatencyTotal", c.readLatencyTotal);
    put("freqTransitions", c.freqTransitions);
    put("relockStallTime", c.relockStallTime);
    // Idle-ladder columns ride along only when a deep state or the
    // migrator was actually exercised, so pre-ladder flattened
    // sequences — and their golden hashes — are unchanged.
    if (c.rankSrTime + c.rankSrSlowTime + c.rankDeepPdTime +
            c.pdDemotions + c.migrations >
        0) {
        put("rankSrTime", c.rankSrTime);
        put("rankSrSlowTime", c.rankSrSlowTime);
        put("rankDeepPdTime", c.rankDeepPdTime);
        put("pdDemotions", c.pdDemotions);
        put("migrations", c.migrations);
    }
}

void
flattenEnergy(Flat &out, const char *p, const EnergyBreakdown &e)
{
    auto put = [&](const char *name, double v) {
        out.emplace_back(std::string(p) + name, fmtF64(v));
    };
    put("background", e.background);
    put("actPre", e.actPre);
    put("readWrite", e.readWrite);
    put("termination", e.termination);
    put("refresh", e.refresh);
    put("pllReg", e.pllReg);
    put("mc", e.mc);
    put("cpu", e.cpu);
    put("rest", e.rest);
}

} // namespace

Flat
flattenRunResult(const RunResult &r)
{
    Flat out;
    out.emplace_back("mixName", r.mixName);
    out.emplace_back("policyName", r.policyName);
    out.emplace_back("runtime", fmtU64(r.runtime));
    out.emplace_back("hitTimeLimit", fmtU64(r.hitTimeLimit ? 1 : 0));
    out.emplace_back("numCores", fmtU64(r.coreCpi.size()));
    for (std::size_t i = 0; i < r.coreCpi.size(); ++i)
        out.emplace_back(indexed("coreCpi", i), fmtF64(r.coreCpi[i]));
    for (std::size_t i = 0; i < r.coreTlm.size(); ++i)
        out.emplace_back(indexed("coreTlm", i), fmtU64(r.coreTlm[i]));
    for (std::size_t i = 0; i < r.coreApp.size(); ++i)
        out.emplace_back(indexed("coreApp", i), r.coreApp[i]);
    flattenEnergy(out, "energy.", r.energy);
    flattenCounters(out, "counters.", r.counters);
    out.emplace_back("avgMemPower", fmtF64(r.avgMemPower));
    out.emplace_back("avgDimmPower", fmtF64(r.avgDimmPower));
    out.emplace_back("avgSystemPower", fmtF64(r.avgSystemPower));
    out.emplace_back("measuredRpki", fmtF64(r.measuredRpki));
    out.emplace_back("measuredWpki", fmtF64(r.measuredWpki));
    out.emplace_back("epochs", fmtU64(r.timeline.size()));
    for (std::size_t i = 0; i < r.timeline.size(); ++i) {
        const EpochRecord &e = r.timeline[i];
        out.emplace_back(indexed("epoch", i, ".start"),
                         fmtU64(e.start));
        out.emplace_back(indexed("epoch", i, ".end"), fmtU64(e.end));
        out.emplace_back(indexed("epoch", i, ".busMHz"),
                         fmtU64(e.busMHz));
        out.emplace_back(indexed("epoch", i, ".cpuGHz"),
                         fmtF64(e.cpuGHz));
        out.emplace_back(indexed("epoch", i, ".channelUtil"),
                         fmtF64(e.channelUtil));
    }
    out.emplace_back("protocolViolations",
                     fmtU64(r.protocolViolations));
    // Serving fields ride along only for serving runs, so every
    // closed-loop flattened sequence — and therefore every golden
    // hash — is byte-identical to what it was before serving existed.
    if (r.serving.valid) {
        const ServingStats &s = r.serving;
        out.emplace_back("serving.arrived", fmtU64(s.arrived));
        out.emplace_back("serving.completed", fmtU64(s.completed));
        out.emplace_back("serving.dropped", fmtU64(s.dropped));
        out.emplace_back("serving.queuedAtEnd",
                         fmtU64(s.queuedAtEnd));
        out.emplace_back("serving.inServiceAtEnd",
                         fmtU64(s.inServiceAtEnd));
        out.emplace_back("serving.queuePeak", fmtU64(s.queuePeak));
        out.emplace_back("serving.meanUs", fmtF64(s.meanUs));
        out.emplace_back("serving.maxUs", fmtF64(s.maxUs));
        out.emplace_back("serving.p50Us", fmtF64(s.p50Us));
        out.emplace_back("serving.p95Us", fmtF64(s.p95Us));
        out.emplace_back("serving.p99Us", fmtF64(s.p99Us));
        out.emplace_back("serving.p999Us", fmtF64(s.p999Us));
        out.emplace_back("serving.histOverflow",
                         fmtU64(s.histOverflow));
    }
    return out;
}

DiffReport
diffRunResults(std::string label, const RunResult &a, const RunResult &b)
{
    DiffReport rep;
    rep.label = std::move(label);
    rep.hashA = hashRunResult(a);
    rep.hashB = hashRunResult(b);
    Flat fa = flattenRunResult(a);
    Flat fb = flattenRunResult(b);
    if (fa.size() != fb.size()) {
        rep.diffs.push_back({"field-count", fmtU64(fa.size()),
                             fmtU64(fb.size())});
    }
    const std::size_t n = std::min(fa.size(), fb.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (fa[i].first != fb[i].first) {
            // Structural divergence (different vector lengths above);
            // positional comparison is meaningless past this point.
            rep.diffs.push_back({"field-order", fa[i].first,
                                 fb[i].first});
            break;
        }
        if (fa[i].second != fb[i].second)
            rep.diffs.push_back({fa[i].first, fa[i].second,
                                 fb[i].second});
    }
    return rep;
}

DiffReport
diffComparisons(std::string label, const ComparisonResult &a,
                const ComparisonResult &b)
{
    DiffReport base = diffRunResults(label + ":base", a.base, b.base);
    DiffReport pol =
        diffRunResults(label + ":policy", a.policy, b.policy);
    DiffReport rep;
    rep.label = std::move(label);
    for (FieldDiff &d : base.diffs) {
        d.field = "base." + d.field;
        rep.diffs.push_back(std::move(d));
    }
    for (FieldDiff &d : pol.diffs) {
        d.field = "policy." + d.field;
        rep.diffs.push_back(std::move(d));
    }
    if (fmtF64(a.memEnergySavings) != fmtF64(b.memEnergySavings))
        rep.diffs.push_back({"memEnergySavings",
                             fmtF64(a.memEnergySavings),
                             fmtF64(b.memEnergySavings)});
    if (fmtF64(a.sysEnergySavings) != fmtF64(b.sysEnergySavings))
        rep.diffs.push_back({"sysEnergySavings",
                             fmtF64(a.sysEnergySavings),
                             fmtF64(b.sysEnergySavings)});
    if (fmtF64(a.worstCpiIncrease) != fmtF64(b.worstCpiIncrease))
        rep.diffs.push_back({"worstCpiIncrease",
                             fmtF64(a.worstCpiIncrease),
                             fmtF64(b.worstCpiIncrease)});
    rep.hashA = hashComparison(a);
    rep.hashB = hashComparison(b);
    return rep;
}

std::uint64_t
hashRunResult(const RunResult &r)
{
    StateHasher h;
    for (const auto &[label, value] : flattenRunResult(r))
        h.add(label, std::string_view(value));
    return h.digest();
}

std::uint64_t
hashComparison(const ComparisonResult &c)
{
    StateHasher h;
    h.add("base", hashRunResult(c.base));
    h.add("policy", hashRunResult(c.policy));
    h.add("memEnergySavings", c.memEnergySavings);
    h.add("sysEnergySavings", c.sysEnergySavings);
    h.add("avgCpiIncrease", c.avgCpiIncrease);
    h.add("worstCpiIncrease", c.worstCpiIncrease);
    return h.digest();
}

std::string
DiffReport::str(std::size_t max_fields) const
{
    std::string s = label;
    if (identical()) {
        s += ": identical (hash ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%016llx)",
                      static_cast<unsigned long long>(hashA));
        s += buf;
        return s;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  ": %zu field diff(s), hash %016llx vs %016llx",
                  diffs.size(),
                  static_cast<unsigned long long>(hashA),
                  static_cast<unsigned long long>(hashB));
    s += buf;
    std::size_t shown = 0;
    for (const FieldDiff &d : diffs) {
        if (shown++ == max_fields) {
            s += "\n  ...";
            break;
        }
        s += "\n  " + d.field + ": " + d.a + " vs " + d.b;
    }
    return s;
}

DifferentialHarness::DifferentialHarness(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
}

DiffReport
DifferentialHarness::kernelDiff(SystemConfig cfg,
                                const std::string &policy)
{
    cfg.kernelMode = KernelMode::Fast;
    ComparisonResult fast = compare(cfg, policy);
    cfg.kernelMode = KernelMode::Reference;
    ComparisonResult ref = compare(cfg, policy);
    return diffComparisons("kernel:" + cfg.mixName + "/" + policy,
                           fast, ref);
}

DiffReport
DifferentialHarness::threadDiff(SystemConfig cfg,
                                const std::string &policy,
                                unsigned threads)
{
    cfg.threads = 1;
    ComparisonResult serial = compare(cfg, policy);
    cfg.threads = threads;
    ComparisonResult woven = compare(cfg, policy);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "threads1v%u:", threads);
    return diffComparisons(buf + cfg.mixName + "/" + policy, serial,
                           woven);
}

std::vector<DiffReport>
DifferentialHarness::sweepDiff(const std::vector<SweepCase> &cases)
{
    SweepEngine serial(1);
    SweepEngine pool(jobs_);
    std::vector<ComparisonResult> a = compareCases(serial, cases);
    std::vector<ComparisonResult> b = compareCases(pool, cases);
    std::vector<DiffReport> reports;
    reports.reserve(cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "sweep[%zu]:", i);
        reports.push_back(diffComparisons(
            buf + cases[i].cfg.mixName + "/" + cases[i].policy, a[i],
            b[i]));
    }
    return reports;
}

std::vector<DiffReport>
DifferentialHarness::runAll(const SystemConfig &cfg)
{
    std::vector<DiffReport> reports;
    reports.push_back(kernelDiff(cfg, "memscale"));
    reports.push_back(threadDiff(cfg, "memscale"));
    std::vector<SweepCase> cases;
    for (const char *policy : {"memscale", "fastpd"}) {
        SweepCase c;
        c.cfg = cfg;
        c.policy = policy;
        cases.push_back(std::move(c));
    }
    for (DiffReport &r : sweepDiff(cases))
        reports.push_back(std::move(r));
    return reports;
}

std::size_t
runSelfCheck(const SystemConfig &cfg, unsigned jobs)
{
    DifferentialHarness diff(jobs);
    std::size_t failures = 0;
    for (const DiffReport &r : diff.runAll(cfg)) {
        bool ok = r.identical();
        std::fprintf(stderr, "[%s] %s\n", ok ? "PASS" : "FAIL",
                     r.str().c_str());
        if (!ok)
            ++failures;
    }
    return failures;
}

} // namespace memscale
