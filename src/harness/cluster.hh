/**
 * @file
 * Fleet simulator: N server instances under a shared rack/PDU power
 * budget, coordinated by a FastCap-style budget divider.
 *
 * Each server is a full System with its own open-loop serving front
 * end, seeded independently via splitmix64 stream derivation
 * (deriveSeed(fleetSeed, k) depends only on the server index, so
 * server k's stream never changes when the fleet grows).  Time
 * advances in lockstep coordination epochs over the PR 5 checkpoint
 * chain: every epoch each server runs one shard (resume previous cut,
 * checkpoint at the next boundary) fanned out across the SweepEngine,
 * then the Coordinator divides the fleet budget for the *next* epoch
 * from the telemetry the shards just reported — stale by exactly one
 * epoch, as a real out-of-band controller would see it.
 *
 * Fleets cut and resume bit-identically: a fleet snapshot is a
 * container with a "cluster" section (config fingerprint, epoch
 * cursor, telemetry, per-epoch power rows) next to one ordinary
 * per-server snapshot file per server (`<out>.server<k>`).
 */

#ifndef MEMSCALE_HARNESS_CLUSTER_HH
#define MEMSCALE_HARNESS_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/system.hh"

namespace memscale
{

class StatRegistry;

/** What one server reports to the coordinator after an epoch. */
struct ServerTelemetry
{
    bool valid = false;
    /** Measured average power over the epoch, W (ground truth). */
    Watts measuredW = 0.0;
    /** Policy-predicted uncapped power demand, W. */
    Watts demandW = 0.0;
    /** Policy-predicted power floor (min-power operating point), W. */
    Watts minW = 0.0;
    /** Policy-predicted slowdown at the chosen operating point. */
    double slowdown = 1.0;
};

/** One coordination epoch's budget split. */
struct BudgetAllocation
{
    std::vector<Watts> budgetW;
    /** False when even the sum of power floors exceeds the cap. */
    bool feasible = true;
    /** Granted fraction of each server's (demand - min) span. */
    double theta = 1.0;
};

/**
 * Divide `capW` across servers: weighted water-fill on the fraction
 * of each server's (demand - min) span.  Pure and deterministic; the
 * property tests fuzz it directly.  Invariants: sum(budget) <= cap;
 * work-conserving (either every server gets its full demand or the
 * cap is exhausted up to bisection epsilon); budget_k >= min_k
 * whenever sum(min) <= cap.  Weights are per-server fairness shares
 * (empty = equal); servers with larger weights reach their demand
 * first as the budget loosens.
 */
BudgetAllocation
allocateFleetBudget(Watts capW,
                    const std::vector<ServerTelemetry> &telemetry,
                    const std::vector<double> &weights);

/** Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = equal. */
double jainIndex(const std::vector<double> &x);

/** Fleet-level configuration. */
struct ClusterConfig
{
    std::uint32_t numServers = 4;

    /**
     * Per-server template.  serving.enabled must be set; seed is the
     * fleet base seed (server k runs deriveSeed(seed, k)); restWatts
     * must already be calibrated (the harness never runs baselines).
     * Leave serving.arrival.seed at 0 so each server derives its own
     * arrival stream.
     */
    SystemConfig server;

    /** Per-server policy name ("fastcap" for coordinated capping). */
    std::string policy = "fastcap";

    /** Fleet power cap, W (0 = uncoordinated: no budgets applied). */
    Watts capW = 0.0;

    /** Coordination epoch; must be >= server.epochLen. */
    Tick coordEpoch = msToTick(0.25);

    /** Fairness weights, cycled over servers (empty = equal). */
    std::vector<double> weights;

    /** Arrival-rate multipliers, cycled (heterogeneous load). */
    std::vector<double> rateScale;

    /** Demand-mix override per server, cycled (empty = template's). */
    std::vector<DemandMix> demandMix;

    /** Scratch directory for the per-server checkpoint chains. */
    std::string scratchDir;

    /** Sweep parallelism across servers (0 = hardware default). */
    unsigned jobs = 1;

    /** Fleet-level cut/resume (counts whole coordination epochs). */
    struct FleetSnapshotOptions
    {
        /** Cut after this many completed epochs (0 = off). */
        std::uint32_t atEpoch = 0;
        bool stopAfter = false;
        std::string out;
        std::string resumePath;
    } snapshot;
};

/** One coordination epoch's fleet-wide power accounting. */
struct FleetEpochRow
{
    std::uint32_t epoch = 0;
    Tick start = 0;
    Tick end = 0;
    std::vector<Watts> budgetW;    ///< empty when uncoordinated
    std::vector<Watts> measuredW;
    Watts fleetW = 0.0;            ///< sum of measured
    Watts fleetBudgetW = 0.0;      ///< sum of budgets
    bool capMet = true;            ///< fleetW <= capW (or no cap)
    bool allocFeasible = true;
};

/** Fleet run outcome. */
struct FleetResult
{
    std::vector<RunResult> servers;
    std::vector<FleetEpochRow> epochs;
    /** Order-sensitive combination of per-server result hashes. */
    std::uint64_t fleetHash = 0;
    Joules fleetEnergyJ = 0.0;
    Watts peakEpochW = 0.0;
    /** Epochs whose measured fleet power exceeded the cap. */
    std::uint32_t capViolations = 0;
    /** Fraction of servers with p99 <= serving.sloP99Us (if set). */
    double sloAttainment = 0.0;
    /** Jain's index over per-server predicted slowdown (fastcap). */
    double jainSlowdown = 1.0;
    bool stoppedAtCheckpoint = false;
    std::string fleetSnapshotPath;
};

/** Fleet snapshot summary (snapshot_tool `meta=` on a fleet file). */
struct FleetMeta
{
    bool valid = false;
    std::uint32_t numServers = 0;
    std::string policy;
    Watts capW = 0.0;
    Tick coordEpoch = 0;
    std::uint32_t epochsDone = 0;
    std::vector<Watts> budgetW;   ///< last epoch's budgets
    Watts lastFleetW = 0.0;
};

/** Read the "cluster" section summary; valid=false if absent. */
FleetMeta readFleetMeta(const std::string &path);

class ClusterHarness
{
  public:
    explicit ClusterHarness(const ClusterConfig &cfg);

    /**
     * Per-server + fleet gauges under `server<k>.` / `fleet.`
     * prefixes.  Register before run(); values track the most recent
     * coordination epoch.
     */
    void registerStats(StatRegistry &reg);

    FleetResult run();

    /** The derived per-server config (exposed for tests). */
    SystemConfig serverConfig(std::uint32_t k) const;

  private:
    ClusterConfig cfg_;

    // Live obs gauges, updated once per coordination epoch.
    std::vector<double> obsBudgetW_;
    std::vector<double> obsPowerW_;
    std::vector<double> obsP99Us_;
    std::vector<double> obsSlowdown_;
    double obsFleetW_ = 0.0;
    double obsEpoch_ = 0.0;
};

} // namespace memscale

#endif // MEMSCALE_HARNESS_CLUSTER_HH
