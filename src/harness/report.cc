#include "harness/report.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/log.hh"

namespace memscale
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(const std::string &title) const
{
    if (!title.empty())
        std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            std::printf("%-*s  ", static_cast<int>(widths[i]),
                        row[i].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    std::string rule(total, '-');
    std::printf("%s\n", rule.c_str());
    for (const auto &row : rows_)
        print_row(row);

    if (const char *dir = std::getenv("MEMSCALE_CSV_DIR")) {
        // Distinct titles can slugify identically ("Fig 5" and
        // "Fig: 5"), and several benches reuse generic titles;
        // suffix repeats instead of silently overwriting the
        // earlier dump.  The registry is per-process and keyed by
        // the full path, so parallel drivers in separate processes
        // (the normal bench setup) are unaffected.
        static std::mutex mu;
        static std::map<std::string, int> used;
        std::string base = std::string(dir) + "/" + csvSlug(title);
        std::string path;
        {
            std::lock_guard<std::mutex> lock(mu);
            int n = ++used[base];
            path = n == 1 ? base + ".csv"
                          : base + "-" + std::to_string(n) + ".csv";
        }
        writeCsv(path, title);
    }
}

std::string
csvSlug(const std::string &title)
{
    std::string slug;
    for (char c : title) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            slug += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        else if (!slug.empty() && slug.back() != '-')
            slug += '-';
    }
    while (!slug.empty() && slug.back() == '-')
        slug.pop_back();
    return slug.empty() ? "table" : slug;
}

namespace
{

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::toCsv(const std::string &title) const
{
    std::string out;
    if (!title.empty())
        out += csvEscape(title) + '\n';
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out += ',';
            out += csvEscape(row[i]);
        }
        out += '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return out;
}

void
Table::writeCsv(const std::string &path,
                const std::string &title) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("Table: cannot write CSV to '%s'", path.c_str());
        return;
    }
    std::string csv = toCsv(title);
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
joules(double j)
{
    char buf[64];
    if (j >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.3f J", j);
    else
        std::snprintf(buf, sizeof(buf), "%.3f mJ", j * 1e3);
    return buf;
}

std::vector<std::string>
breakdownShares(const EnergyBreakdown &e, double denom)
{
    auto share = [&](double x) {
        return denom > 0.0 ? pct(x / denom) : std::string("-");
    };
    return {share(e.background), share(e.actPre), share(e.readWrite),
            share(e.termination), share(e.refresh), share(e.pllReg),
            share(e.mc), share(e.rest)};
}

} // namespace memscale
