/**
 * @file
 * Open-loop serving front end: datacenter-style request traffic over
 * the simulated memory system.
 *
 * An ArrivalGenerator (workload/openloop) supplies the request clock;
 * the front end fans requests out across per-core ServingWorkers.  A
 * request is a service demand of N LLC misses with a fixed compute
 * segment between them; a worker serves one request at a time through
 * the ordinary MemClient completion interface, so every DRAM-level
 * mechanism — FR-FCFS, frequency relocks, refresh, powerdown — shapes
 * the end-to-end latency exactly as it would a trace core's stalls.
 * Completed requests feed two obs Histograms (cumulative for the
 * run's p50/p99/p99.9, windowed for the SLO policy's probe).
 *
 * Workers implement CpuSampler, so the unchanged epoch controller
 * profiles them and dynamic policies (memscale, slo) re-clock the bus
 * under open-loop load.  Everything runs on the bound thread, which
 * makes results bit-identical across `--threads` for free; all state
 * checkpoints through a dedicated "serving" snapshot section.
 */

#ifndef MEMSCALE_HARNESS_SERVING_HH
#define MEMSCALE_HARNESS_SERVING_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/sampler.hh"
#include "mem/client.hh"
#include "memscale/tail_window.hh"
#include "sim/event_queue.hh"
#include "workload/openloop.hh"

namespace memscale
{

class MemoryController;
class SectionReader;
class SectionWriter;
class StatRegistry;

/**
 * Request service-demand distribution.  All mixes share the same mean
 * (`missesPerRequest`), so switching the shape never changes the
 * offered *work*, only how it is bundled into requests — the knob
 * that matters for tail latency and for heterogeneous fleet load.
 */
enum class DemandMix : std::uint8_t
{
    Geometric = 0,  ///< memoryless around the mean (the default)
    Fixed = 1,      ///< every request exactly round(missesPerRequest)
    LogNormal = 2,  ///< multiplicative spread, demandSigma of ln
    TwoClass = 3,   ///< bimodal: rare heavy requests among light ones
};

const char *demandMixName(DemandMix mix);
DemandMix parseDemandMix(const std::string &name);

/** Open-loop serving configuration (SystemConfig::serving). */
struct ServingOptions
{
    /** Off by default: System::run keeps the closed-loop workload. */
    bool enabled = false;

    ArrivalConfig arrival;

    /**
     * Service demand: LLC misses a request must resolve.  Drawn
     * geometrically around the mean per request (heavy-ish tail, the
     * interesting case for p99) unless fixedDemand pins every request
     * to exactly `missesPerRequest` rounded.
     */
    double missesPerRequest = 8.0;
    bool fixedDemand = false;

    /**
     * Demand-distribution shape.  `fixedDemand` predates the enum and
     * wins when set (it maps to DemandMix::Fixed).
     */
    DemandMix demandMix = DemandMix::Geometric;
    /** LogNormal: standard deviation of ln(demand). */
    double demandSigma = 0.75;
    /** TwoClass: fraction of requests in the heavy class. */
    double heavyFraction = 0.05;
    /** TwoClass: heavy-class mean as a multiple of the light mean. */
    double heavyMultiplier = 8.0;

    /** Instructions retired in the compute segment before each miss. */
    std::uint32_t instrPerMiss = 200;
    /** CPI of those compute segments at the core clock. */
    double computeCpi = 1.0;

    /** Accept arrivals and simulate until this tick, then stop. */
    Tick horizon = msToTick(2.0);

    /** Queue bound; arrivals beyond it are dropped (0 = unbounded). */
    std::uint64_t maxQueue = 0;

    /** p99 target handed to SLO-aware policies, µs (0 = none). */
    double sloP99Us = 0.0;

    /** @name Latency histogram geometry (microseconds). */
    /// @{
    double histMaxUs = 2000.0;
    std::uint32_t histBuckets = 4000;
    /// @}
};

/** Derived serving metrics (RunResult::serving). */
struct ServingStats
{
    bool valid = false;
    std::uint64_t arrived = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t queuedAtEnd = 0;
    std::uint64_t inServiceAtEnd = 0;
    std::uint64_t queuePeak = 0;
    double offeredQps = 0.0;       ///< arrivals / simulated seconds
    double completedQps = 0.0;
    double meanUs = 0.0;
    double maxUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    /** Samples outside the histogram range (tail credibility check). */
    std::uint64_t histOverflow = 0;
};

/**
 * Draw one request's service demand (LLC misses, >= 1) from the
 * configured mix.  Exposed as a free function so the distribution
 * tests can sample it directly; the front end draws through the same
 * path with its dedicated demand Rng.
 */
std::uint64_t drawServingDemand(const ServingOptions &opts, Rng &rng);

class ServingFrontEnd;

/**
 * One core's worth of serving capacity: pulls requests from the front
 * end, alternates compute segments (EvServeIssue events) with memory
 * misses (MemClient completions), and exposes the CpuSampler counter
 * surface so the epoch loop can profile it.
 */
class ServingWorker final : public MemClient, public CpuSampler
{
  public:
    ServingWorker(ServingFrontEnd &fe, CoreId id, Addr base,
                  std::uint64_t footprint_lines,
                  std::uint64_t rng_seed);

    void onMemComplete(Tick when, const MemRequest &req) override;

    /** @name CpuSampler surface. */
    /// @{
    std::uint64_t tic(Tick) const override { return retired_; }
    std::uint64_t tlm() const override { return tlm_; }
    double frequencyGHz() const override { return ghz_; }
    void setFrequencyGHz(double ghz) override;
    /// @}

    CoreId id() const { return id_; }
    bool busy() const { return busy_; }
    Tick busyTime() const { return busyTime_; }

    /**
     * Busy time including the in-flight request's partial service up
     * to `now` (busyTime() only accrues at completion).  The CPU
     * power model integrates this across intervals, so a worker busy
     * through an epoch boundary is charged in the right interval.
     */
    Tick
    busyAsOf(Tick now) const
    {
        Tick t = busyTime_;
        if (busy_ && now > busyStart_)
            t += now - busyStart_;
        return t;
    }

    std::uint64_t served() const { return served_; }

    /** Start serving a request that arrived at `arrival`. */
    void beginRequest(Tick arrival, std::uint64_t misses);

    /** End of a compute segment: issue the next miss. */
    void issueMiss();

    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);

  private:
    void scheduleCompute();
    Addr nextLineAddr();

    ServingFrontEnd &fe_;
    CoreId id_;
    Addr base_;                     ///< this worker's memory region
    std::uint64_t footprintLines_;
    Rng rng_;                       ///< address stream
    double ghz_ = 0.0;              ///< set by the front end at build
    Tick cpuPeriod_ = 0;

    bool busy_ = false;
    Tick reqArrival_ = 0;
    std::uint64_t missesLeft_ = 0;
    std::uint64_t streamLine_ = 0;  ///< sequential-access cursor

    std::uint64_t retired_ = 0;     ///< instructions (TIC)
    std::uint64_t tlm_ = 0;         ///< misses issued (TLM)
    std::uint64_t served_ = 0;      ///< requests completed
    Tick busyTime_ = 0;             ///< busy ticks (request service)
    Tick busyStart_ = 0;
};

class ServingFrontEnd
{
  public:
    ServingFrontEnd(EventQueue &eq, MemoryController &mc,
                    const ServingOptions &opts,
                    std::uint32_t num_workers, double cpu_ghz,
                    std::uint64_t run_seed);
    ~ServingFrontEnd();

    /** Arm the first arrival (fresh runs only; resume rebuilds it). */
    void start();

    /** The workers, viewed as MemClients (request-pool re-linking). */
    std::vector<MemClient *> clients();

    /** The workers, viewed as CpuSamplers (epoch controller). */
    std::vector<CpuSampler *> samplers();

    /**
     * SLO-policy probe: latency stats since the previous call.
     * Consumes the window (resets the windowed histogram).
     */
    TailWindow tailWindow();

    /** Derived end-of-run metrics; `end` is the final tick. */
    ServingStats stats(Tick end) const;

    std::uint64_t queueDepth() const { return queue_.size(); }
    const ServingOptions &options() const { return opts_; }

    /** Worker `i` (per-core rows in RunResult). */
    const ServingWorker &worker(std::size_t i) const
    {
        return *workers_[i];
    }
    std::size_t numWorkers() const { return workers_.size(); }

    /** Publish counters/gauges/latency histogram under `prefix`. */
    void registerStats(StatRegistry &reg, const std::string &prefix);

    /** @name Checkpoint/restore ("serving" snapshot section). */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);

    /** Rebuild a tagged pending event (EvServeArrival/EvServeIssue). */
    EventCallback rebuildEvent(std::uint32_t kind,
                               std::uint32_t owner);
    /// @}

    /** A worker finished a request at `when`. */
    void onRequestDone(ServingWorker &w, Tick when, Tick arrival);

  private:
    friend class ServingWorker;

    struct QueuedRequest
    {
        Tick arrival = 0;
        std::uint64_t misses = 0;
    };

    void onArrival();
    void scheduleNextArrival();
    std::uint64_t drawDemand();
    void noteQueuePeak();

    EventQueue &eq_;
    MemoryController &mc_;
    ServingOptions opts_;
    ArrivalGenerator gen_;
    Rng demandRng_;
    std::vector<std::unique_ptr<ServingWorker>> workers_;

    std::deque<QueuedRequest> queue_;
    bool arrivalsClosed_ = false;  ///< generator passed the horizon

    std::uint64_t arrived_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t queuePeak_ = 0;
    double latSumUs_ = 0.0;
    double latMaxUs_ = 0.0;
    Histogram latUs_;              ///< cumulative, whole run
    Histogram winUs_;              ///< since the last tailWindow()
};

} // namespace memscale

#endif // MEMSCALE_HARNESS_SERVING_HH
