#include "harness/experiment.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "harness/sweep.hh"

namespace memscale
{

RunResult
runBaseline(const SystemConfig &cfg, Watts &rest_out)
{
    SystemConfig base_cfg = cfg;
    base_cfg.restWatts = 0.0;
    auto policy = makePolicy("baseline");
    System sys(base_cfg, *policy);
    RunResult base = sys.run();

    // Memory subsystem = fraction of server power at the baseline
    // (paper Section 4.1, default 40%); the remainder is a fixed
    // rest-of-system draw.
    double frac = cfg.memPowerFraction;
    if (frac <= 0.0 || frac >= 1.0)
        fatal("memPowerFraction must be in (0,1), got %g", frac);
    rest_out = base.avgMemPower * (1.0 / frac - 1.0);
    if (cfg.modelCpuPower) {
        // Explicitly-modelled CPU power comes out of the fixed
        // rest-of-system draw so the server total is unchanged.
        double cpu_w = base.energy.cpu / tickToSec(base.runtime);
        rest_out = std::max(0.0, rest_out - cpu_w);
    }
    base.energy.rest = rest_out * tickToSec(base.runtime);
    base.avgSystemPower =
        base.energy.total() / tickToSec(base.runtime);
    return base;
}

RunResult
runPolicy(const SystemConfig &cfg, const std::string &policy,
          Watts rest_watts)
{
    SystemConfig pcfg = cfg;
    pcfg.restWatts = rest_watts;
    auto p = makePolicy(policy);
    System sys(pcfg, *p);
    return sys.run();
}

RunResult
runPolicySharded(const SystemConfig &cfg, const std::string &policy,
                 Watts rest_watts, const std::vector<Tick> &cuts,
                 const std::string &scratch_prefix)
{
    for (std::size_t i = 1; i < cuts.size(); ++i) {
        if (cuts[i] <= cuts[i - 1])
            fatal("runPolicySharded: cuts must be strictly "
                  "ascending");
    }
    SystemConfig scfg = cfg;
    scfg.restWatts = rest_watts;

    std::string resume_from;
    RunResult res;
    for (std::size_t shard = 0; shard <= cuts.size(); ++shard) {
        // A fresh policy per shard, exactly as separate processes
        // would have: everything a shard needs must come from the
        // snapshot, never from leftover in-memory policy state.
        auto p = makePolicy(policy);
        SystemConfig cur = scfg;
        cur.snapshot.resumePath = resume_from;
        if (shard < cuts.size()) {
            cur.snapshot.at = cuts[shard];
            cur.snapshot.stopAfter = true;
            cur.snapshot.out = scratch_prefix + ".shard" +
                               std::to_string(shard);
        }
        System sys(cur, *p);
        res = sys.run();
        if (!res.stoppedAtCheckpoint)
            break;   // workload finished before the cut
        resume_from = res.checkpointsWritten.back();
    }
    return res;
}

ComparisonResult
compareWithBase(const SystemConfig &cfg, const RunResult &base,
                Watts rest_watts, const std::string &policy)
{
    ComparisonResult out;
    out.base = base;
    out.policy = runPolicy(cfg, policy, rest_watts);

    double base_mem = base.energy.memorySubsystem();
    double base_sys = base.energy.total();
    if (base_mem > 0.0) {
        out.memEnergySavings =
            1.0 - out.policy.energy.memorySubsystem() / base_mem;
    }
    if (base_sys > 0.0) {
        out.sysEnergySavings =
            1.0 - out.policy.energy.total() / base_sys;
    }

    out.cpiIncrease.resize(base.coreCpi.size(), 0.0);
    for (std::size_t i = 0; i < base.coreCpi.size(); ++i) {
        if (base.coreCpi[i] > 0.0) {
            out.cpiIncrease[i] =
                out.policy.coreCpi[i] / base.coreCpi[i] - 1.0;
        }
    }
    double sum = 0.0;
    double worst = 0.0;
    for (double d : out.cpiIncrease) {
        sum += d;
        worst = std::max(worst, d);
    }
    out.avgCpiIncrease =
        out.cpiIncrease.empty()
            ? 0.0
            : sum / static_cast<double>(out.cpiIncrease.size());
    out.worstCpiIncrease = worst;
    return out;
}

ComparisonResult
compare(const SystemConfig &cfg, const std::string &policy)
{
    Watts rest = 0.0;
    RunResult base = runBaseline(cfg, rest);
    return compareWithBase(cfg, base, rest, policy);
}

AveragedComparison
compareAveraged(const SweepEngine &eng, const SystemConfig &cfg,
                const std::string &policy, std::size_t seeds)
{
    if (seeds == 0)
        fatal("compareAveraged: need at least one seed");
    std::vector<SweepCase> cases(seeds);
    for (std::size_t i = 0; i < seeds; ++i) {
        cases[i].cfg = cfg;
        cases[i].cfg.seed = deriveSeed(cfg.seed, i);
        cases[i].policy = policy;
    }
    std::vector<ComparisonResult> results = compareCases(eng, cases);
    // Accumulate in seed order (results are indexed by task), so the
    // summary is bit-identical no matter how many threads ran it.
    Accumulator mem, sys, worst;
    for (const ComparisonResult &r : results) {
        mem.add(r.memEnergySavings);
        sys.add(r.sysEnergySavings);
        worst.add(r.worstCpiIncrease);
    }
    auto summarize = [](const Accumulator &a) {
        return SeededMetric{a.mean(), a.stddev(), a.min(), a.max()};
    };
    AveragedComparison out;
    out.memEnergySavings = summarize(mem);
    out.sysEnergySavings = summarize(sys);
    out.worstCpiIncrease = summarize(worst);
    out.seeds = seeds;
    return out;
}

AveragedComparison
compareAveraged(const SystemConfig &cfg, const std::string &policy,
                std::size_t seeds)
{
    if (seeds == 0)
        fatal("compareAveraged: need at least one seed");
    SweepEngine eng;
    return compareAveraged(eng, cfg, policy, seeds);
}

} // namespace memscale
