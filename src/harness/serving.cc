#include "harness/serving.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "mem/controller.hh"
#include "obs/stat_registry.hh"
#include "sim/event_kinds.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

const char *
demandMixName(DemandMix mix)
{
    switch (mix) {
      case DemandMix::Geometric:
        return "geometric";
      case DemandMix::Fixed:
        return "fixed";
      case DemandMix::LogNormal:
        return "lognormal";
      case DemandMix::TwoClass:
        return "twoclass";
    }
    return "?";
}

DemandMix
parseDemandMix(const std::string &name)
{
    if (name == "geometric")
        return DemandMix::Geometric;
    if (name == "fixed")
        return DemandMix::Fixed;
    if (name == "lognormal")
        return DemandMix::LogNormal;
    if (name == "twoclass")
        return DemandMix::TwoClass;
    fatal("unknown demand mix '%s' (geometric|fixed|lognormal|"
          "twoclass)",
          name.c_str());
}

std::uint64_t
drawServingDemand(const ServingOptions &opts, Rng &rng)
{
    const double mean = opts.missesPerRequest;
    DemandMix mix =
        opts.fixedDemand ? DemandMix::Fixed : opts.demandMix;
    switch (mix) {
      case DemandMix::Fixed:
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(mean)));
      case DemandMix::Geometric:
        return rng.geometric(1.0 / mean);
      case DemandMix::LogNormal: {
        // Box-Muller from two uniforms; mu chosen so the arithmetic
        // mean stays missesPerRequest regardless of sigma.
        double u1 = 1.0 - rng.uniform();   // (0, 1]
        double u2 = rng.uniform();
        const double z = std::sqrt(-2.0 * std::log(u1)) *
                         std::cos(2.0 * M_PI * u2);
        const double sigma = opts.demandSigma;
        const double mu = std::log(mean) - 0.5 * sigma * sigma;
        const double x = std::exp(mu + sigma * z);
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(std::llround(x)));
      }
      case DemandMix::TwoClass: {
        // Class means solve (1-p)*light + p*mult*light = mean, so
        // the blend keeps the configured mean; each class spreads
        // geometrically around its own mean.
        const double p = opts.heavyFraction;
        const double m = opts.heavyMultiplier;
        const bool heavy = rng.chance(p);
        double class_mean =
            mean / (1.0 - p + p * m) * (heavy ? m : 1.0);
        class_mean = std::max(class_mean, 1.0);
        return rng.geometric(1.0 / class_mean);
      }
    }
    fatal("drawServingDemand: bad mix %u",
          static_cast<unsigned>(mix));
}

// ---------------------------------------------------------------------------
// ServingWorker
// ---------------------------------------------------------------------------

ServingWorker::ServingWorker(ServingFrontEnd &fe, CoreId id, Addr base,
                             std::uint64_t footprint_lines,
                             std::uint64_t rng_seed)
    : fe_(fe), id_(id), base_(base),
      footprintLines_(footprint_lines), rng_(rng_seed)
{
    if (footprintLines_ == 0)
        fatal("ServingWorker: zero footprint");
    streamLine_ = rng_.below(footprintLines_);
}

void
ServingWorker::setFrequencyGHz(double ghz)
{
    ghz_ = ghz;
    cpuPeriod_ = static_cast<Tick>(
        std::llround(static_cast<double>(tickPerSec) / (ghz * 1e9)));
    if (cpuPeriod_ == 0)
        cpuPeriod_ = 1;
}

Addr
ServingWorker::nextLineAddr()
{
    // Half streaming, half uniform within the worker's region — a
    // plain mixed access pattern with some row-buffer locality.
    std::uint64_t line;
    if (rng_.chance(0.5)) {
        streamLine_ = (streamLine_ + 1) % footprintLines_;
        line = streamLine_;
    } else {
        line = rng_.below(footprintLines_);
    }
    return base_ + line * fe_.mc_.config().lineBytes;
}

void
ServingWorker::beginRequest(Tick arrival, std::uint64_t misses)
{
    busy_ = true;
    reqArrival_ = arrival;
    missesLeft_ = misses;
    busyStart_ = fe_.eq_.now();
    scheduleCompute();
}

void
ServingWorker::scheduleCompute()
{
    // Compute segment before the next miss: instrPerMiss instructions
    // at computeCpi cycles each, at the current core clock.
    const Tick gap = static_cast<Tick>(
        std::llround(static_cast<double>(fe_.opts_.instrPerMiss) *
                     fe_.opts_.computeCpi *
                     static_cast<double>(cpuPeriod_)));
    if (gap == 0) {
        issueMiss();
        return;
    }
    fe_.eq_.scheduleIn(gap, [this] { issueMiss(); },
                       EventClass::Hardware, {EvServeIssue, id_});
}

void
ServingWorker::issueMiss()
{
    retired_ += fe_.opts_.instrPerMiss;
    ++tlm_;
    fe_.mc_.read(nextLineAddr(), id_, this);
}

void
ServingWorker::onMemComplete(Tick when, const MemRequest &req)
{
    (void)req;
    ++retired_;   // the missing load itself
    --missesLeft_;
    if (missesLeft_ > 0) {
        scheduleCompute();
        return;
    }
    ++served_;
    busy_ = false;
    busyTime_ += when - busyStart_;
    fe_.onRequestDone(*this, when, reqArrival_);
}

void
ServingWorker::saveState(SectionWriter &w) const
{
    saveRng(w, rng_);
    w.f64(ghz_);
    w.b(busy_);
    w.u64(reqArrival_);
    w.u64(missesLeft_);
    w.u64(streamLine_);
    w.u64(retired_);
    w.u64(tlm_);
    w.u64(served_);
    w.u64(busyTime_);
    w.u64(busyStart_);
}

void
ServingWorker::restoreState(SectionReader &r)
{
    restoreRng(r, rng_);
    setFrequencyGHz(r.f64());
    busy_ = r.b();
    reqArrival_ = r.u64();
    missesLeft_ = r.u64();
    streamLine_ = r.u64();
    retired_ = r.u64();
    tlm_ = r.u64();
    served_ = r.u64();
    busyTime_ = r.u64();
    busyStart_ = r.u64();
}

// ---------------------------------------------------------------------------
// ServingFrontEnd
// ---------------------------------------------------------------------------

ServingFrontEnd::ServingFrontEnd(EventQueue &eq, MemoryController &mc,
                                 const ServingOptions &opts,
                                 std::uint32_t num_workers,
                                 double cpu_ghz,
                                 std::uint64_t run_seed)
    : eq_(eq), mc_(mc), opts_(opts),
      gen_([&] {
          ArrivalConfig ac = opts.arrival;
          if (ac.seed == 0)
              ac.seed = deriveSeed(run_seed, 0xA11Au);
          return ac;
      }()),
      demandRng_(deriveSeed(run_seed, 0xDE3Au)),
      latUs_(0.0, opts.histMaxUs, opts.histBuckets),
      winUs_(0.0, opts.histMaxUs, opts.histBuckets)
{
    if (num_workers == 0)
        fatal("ServingFrontEnd: no workers");
    if (!(opts_.missesPerRequest >= 1.0))
        fatal("ServingFrontEnd: misses/request %g must be >= 1",
              opts_.missesPerRequest);
    if (opts_.horizon == 0)
        fatal("ServingFrontEnd: zero horizon");
    if (opts_.demandMix == DemandMix::LogNormal &&
        !(opts_.demandSigma > 0.0))
        fatal("ServingFrontEnd: lognormal demand needs sigma > 0, "
              "got %g",
              opts_.demandSigma);
    if (opts_.demandMix == DemandMix::TwoClass) {
        if (!(opts_.heavyFraction > 0.0) ||
            !(opts_.heavyFraction < 1.0))
            fatal("ServingFrontEnd: two-class heavy fraction %g must "
                  "be in (0,1)",
                  opts_.heavyFraction);
        if (!(opts_.heavyMultiplier >= 1.0))
            fatal("ServingFrontEnd: two-class heavy multiplier %g "
                  "must be >= 1",
                  opts_.heavyMultiplier);
    }
    const std::uint64_t region =
        mc_.config().totalBytes() / num_workers;
    const std::uint64_t lines = region / mc_.config().lineBytes;
    workers_.reserve(num_workers);
    for (std::uint32_t i = 0; i < num_workers; ++i) {
        workers_.push_back(std::make_unique<ServingWorker>(
            *this, i, static_cast<Addr>(i) * region, lines,
            deriveSeed(run_seed, 0x5E54000ull + i)));
        workers_.back()->setFrequencyGHz(cpu_ghz);
    }
}

ServingFrontEnd::~ServingFrontEnd() = default;

void
ServingFrontEnd::start()
{
    scheduleNextArrival();
}

void
ServingFrontEnd::scheduleNextArrival()
{
    // Exactly one arrival event is ever pending; each one re-arms the
    // next, so a checkpoint carries at most one EvServeArrival and
    // the generator Rng sits exactly at the consumption point.
    const Tick when = gen_.next();
    if (when > opts_.horizon) {
        arrivalsClosed_ = true;
        return;
    }
    eq_.schedule(std::max(when, eq_.now()), [this] { onArrival(); },
                 EventClass::Hardware, {EvServeArrival, 0});
}

std::uint64_t
ServingFrontEnd::drawDemand()
{
    return drawServingDemand(opts_, demandRng_);
}

void
ServingFrontEnd::noteQueuePeak()
{
    queuePeak_ = std::max<std::uint64_t>(queuePeak_, queue_.size());
}

void
ServingFrontEnd::onArrival()
{
    ++arrived_;
    // Demand is drawn at arrival time from a dedicated Rng, so a
    // request's size never depends on which worker it lands on.
    const QueuedRequest req{eq_.now(), drawDemand()};

    // Lowest-index idle worker; deterministic dispatch.
    ServingWorker *idle = nullptr;
    for (auto &w : workers_) {
        if (!w->busy()) {
            idle = w.get();
            break;
        }
    }
    if (idle) {
        idle->beginRequest(req.arrival, req.misses);
    } else if (opts_.maxQueue > 0 &&
               queue_.size() >= opts_.maxQueue) {
        ++dropped_;
    } else {
        queue_.push_back(req);
        noteQueuePeak();
    }
    scheduleNextArrival();
}

void
ServingFrontEnd::onRequestDone(ServingWorker &w, Tick when,
                               Tick arrival)
{
    ++completed_;
    const double lat_us = tickToUs(when - arrival);
    latSumUs_ += lat_us;
    latMaxUs_ = std::max(latMaxUs_, lat_us);
    latUs_.add(lat_us);
    winUs_.add(lat_us);

    if (!queue_.empty()) {
        const QueuedRequest next = queue_.front();
        queue_.pop_front();
        w.beginRequest(next.arrival, next.misses);
    }
}

std::vector<MemClient *>
ServingFrontEnd::clients()
{
    std::vector<MemClient *> out;
    out.reserve(workers_.size());
    for (auto &w : workers_)
        out.push_back(w.get());
    return out;
}

std::vector<CpuSampler *>
ServingFrontEnd::samplers()
{
    std::vector<CpuSampler *> out;
    out.reserve(workers_.size());
    for (auto &w : workers_)
        out.push_back(w.get());
    return out;
}

TailWindow
ServingFrontEnd::tailWindow()
{
    TailWindow tw;
    tw.completions = winUs_.count();
    if (tw.completions > 0) {
        tw.p50Us = winUs_.percentile(0.50);
        tw.p99Us = winUs_.percentile(0.99);
        tw.p999Us = winUs_.percentile(0.999);
        // Mean from the bucket midpoints; exact enough for a policy
        // signal and avoids a second windowed sum to checkpoint.
        // Overflowed samples count at hi (they only push the signal
        // the safe way: toward "too slow").
        double sum = 0.0;
        const auto &b = winUs_.buckets();
        for (std::size_t i = 0; i < b.size(); ++i) {
            sum += static_cast<double>(b[i]) *
                   (winUs_.lo() +
                    winUs_.bucketWidth() * (static_cast<double>(i) + 0.5));
        }
        sum += static_cast<double>(winUs_.overflow()) * winUs_.hi();
        tw.meanUs = sum / static_cast<double>(tw.completions);
    }
    tw.queued = queue_.size();
    winUs_.reset();
    return tw;
}

ServingStats
ServingFrontEnd::stats(Tick end) const
{
    ServingStats s;
    s.valid = true;
    s.arrived = arrived_;
    s.completed = completed_;
    s.dropped = dropped_;
    s.queuedAtEnd = queue_.size();
    s.queuePeak = queuePeak_;
    for (const auto &w : workers_)
        s.inServiceAtEnd += w->busy() ? 1 : 0;
    const double sec = tickToSec(end);
    if (sec > 0.0) {
        s.offeredQps = static_cast<double>(arrived_) / sec;
        s.completedQps = static_cast<double>(completed_) / sec;
    }
    if (completed_ > 0) {
        s.meanUs = latSumUs_ / static_cast<double>(completed_);
        s.maxUs = latMaxUs_;
        s.p50Us = latUs_.percentile(0.50);
        s.p95Us = latUs_.percentile(0.95);
        s.p99Us = latUs_.percentile(0.99);
        s.p999Us = latUs_.percentile(0.999);
    }
    s.histOverflow = latUs_.overflow();
    return s;
}

void
ServingFrontEnd::registerStats(StatRegistry &reg,
                               const std::string &prefix)
{
    reg.addCounter(prefix + ".arrived", &arrived_);
    reg.addCounter(prefix + ".completed", &completed_);
    reg.addCounter(prefix + ".dropped", &dropped_);
    reg.addCounter(prefix + ".queuePeak", &queuePeak_);
    reg.addGauge(prefix + ".queueDepth", [this] {
        return static_cast<double>(queue_.size());
    });
    reg.addHistogram(prefix + ".latencyUs", &latUs_);
}

void
ServingFrontEnd::saveState(SectionWriter &w) const
{
    // Configuration fingerprint first: a serving snapshot only
    // replays into the identical serving setup, and a named mismatch
    // beats a silently diverging arrival stream.
    w.u8(static_cast<std::uint8_t>(opts_.arrival.kind));
    w.f64(opts_.arrival.ratePerSec);
    w.u64(gen_.config().seed);
    w.f64(opts_.arrival.burstFactor);
    w.f64(opts_.arrival.burstFraction);
    w.u64(opts_.arrival.meanBurstLen);
    w.u64(opts_.arrival.diurnalPeriod);
    w.f64(opts_.arrival.diurnalDepth);
    w.f64(opts_.missesPerRequest);
    w.b(opts_.fixedDemand);
    w.u8(static_cast<std::uint8_t>(opts_.demandMix));
    w.f64(opts_.demandSigma);
    w.f64(opts_.heavyFraction);
    w.f64(opts_.heavyMultiplier);
    w.u32(opts_.instrPerMiss);
    w.f64(opts_.computeCpi);
    w.u64(opts_.horizon);
    w.u64(opts_.maxQueue);
    w.f64(opts_.histMaxUs);
    w.u32(opts_.histBuckets);
    w.u32(static_cast<std::uint32_t>(workers_.size()));

    gen_.saveState(w);
    saveRng(w, demandRng_);
    w.b(arrivalsClosed_);

    w.u64(arrived_);
    w.u64(completed_);
    w.u64(dropped_);
    w.u64(queuePeak_);
    w.f64(latSumUs_);
    w.f64(latMaxUs_);

    w.u32(static_cast<std::uint32_t>(queue_.size()));
    for (const QueuedRequest &q : queue_) {
        w.u64(q.arrival);
        w.u64(q.misses);
    }

    auto save_hist = [&w](const Histogram &h) {
        w.u64(h.underflow());
        w.u64(h.overflow());
        w.u32(static_cast<std::uint32_t>(h.buckets().size()));
        for (std::uint64_t c : h.buckets())
            w.u64(c);
    };
    save_hist(latUs_);
    save_hist(winUs_);

    for (const auto &wk : workers_)
        wk->saveState(w);
}

void
ServingFrontEnd::restoreState(SectionReader &r)
{
    auto want_u64 = [&r](const char *what, std::uint64_t want) {
        const std::uint64_t got = r.u64();
        if (got != want)
            fatal("serving resume: snapshot %s %llu does not match "
                  "run %llu",
                  what, static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want));
    };
    auto want_f64 = [&r](const char *what, double want) {
        const double got = r.f64();
        if (got != want)
            fatal("serving resume: snapshot %s %.17g does not match "
                  "run %.17g",
                  what, got, want);
    };

    const std::uint8_t kind = r.u8();
    if (kind != static_cast<std::uint8_t>(opts_.arrival.kind))
        fatal("serving resume: snapshot arrival kind %u does not "
              "match run %u",
              kind, static_cast<unsigned>(opts_.arrival.kind));
    want_f64("arrival rate", opts_.arrival.ratePerSec);
    want_u64("arrival seed", gen_.config().seed);
    want_f64("burst factor", opts_.arrival.burstFactor);
    want_f64("burst fraction", opts_.arrival.burstFraction);
    want_u64("mean burst length", opts_.arrival.meanBurstLen);
    want_u64("diurnal period", opts_.arrival.diurnalPeriod);
    want_f64("diurnal depth", opts_.arrival.diurnalDepth);
    want_f64("misses/request", opts_.missesPerRequest);
    const bool fixed = r.b();
    if (fixed != opts_.fixedDemand)
        fatal("serving resume: snapshot fixedDemand %d does not "
              "match run %d",
              fixed ? 1 : 0, opts_.fixedDemand ? 1 : 0);
    const std::uint8_t mix = r.u8();
    if (mix != static_cast<std::uint8_t>(opts_.demandMix))
        fatal("serving resume: snapshot demand mix %s does not match "
              "run %s",
              demandMixName(static_cast<DemandMix>(mix)),
              demandMixName(opts_.demandMix));
    want_f64("demand sigma", opts_.demandSigma);
    want_f64("heavy fraction", opts_.heavyFraction);
    want_f64("heavy multiplier", opts_.heavyMultiplier);
    const std::uint32_t ipm = r.u32();
    if (ipm != opts_.instrPerMiss)
        fatal("serving resume: snapshot instrPerMiss %u does not "
              "match run %u",
              ipm, opts_.instrPerMiss);
    want_f64("compute CPI", opts_.computeCpi);
    want_u64("horizon", opts_.horizon);
    want_u64("max queue", opts_.maxQueue);
    want_f64("histogram max", opts_.histMaxUs);
    const std::uint32_t nbuckets = r.u32();
    if (nbuckets != opts_.histBuckets)
        fatal("serving resume: snapshot histBuckets %u does not "
              "match run %u",
              nbuckets, opts_.histBuckets);
    const std::uint32_t nworkers = r.u32();
    if (nworkers != workers_.size())
        fatal("serving resume: snapshot has %u workers, run has %zu",
              nworkers, workers_.size());

    gen_.restoreState(r);
    restoreRng(r, demandRng_);
    arrivalsClosed_ = r.b();

    arrived_ = r.u64();
    completed_ = r.u64();
    dropped_ = r.u64();
    queuePeak_ = r.u64();
    latSumUs_ = r.f64();
    latMaxUs_ = r.f64();

    queue_.clear();
    const std::uint32_t nq = r.u32();
    for (std::uint32_t i = 0; i < nq; ++i) {
        QueuedRequest q;
        q.arrival = r.u64();
        q.misses = r.u64();
        queue_.push_back(q);
    }

    auto restore_hist = [&r](Histogram &h) {
        const std::uint64_t under = r.u64();
        const std::uint64_t over = r.u64();
        std::vector<std::uint64_t> counts(r.u32(), 0);
        for (std::uint64_t &c : counts)
            c = r.u64();
        h.setCounts(counts, under, over);
    };
    restore_hist(latUs_);
    restore_hist(winUs_);

    for (auto &wk : workers_)
        wk->restoreState(r);
}

EventCallback
ServingFrontEnd::rebuildEvent(std::uint32_t kind, std::uint32_t owner)
{
    switch (kind) {
      case EvServeArrival:
        return [this] { onArrival(); };
      case EvServeIssue:
        if (owner >= workers_.size())
            fatal("serving resume: issue event owner %u out of range",
                  owner);
        return [w = workers_[owner].get()] { w->issueMiss(); };
      default:
        panic("ServingFrontEnd: cannot rebuild event kind %u (%s)",
              kind, eventKindName(kind));
    }
}

} // namespace memscale
