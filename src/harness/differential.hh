/**
 * @file
 * Differential self-checking harness.
 *
 * Runs the same System configuration under two implementations that
 * must agree bit-for-bit and diffs every observable field:
 *
 *  - kernelDiff(): production slab event kernel (KernelMode::Fast)
 *    vs. the sorted-list reference oracle (KernelMode::Reference);
 *  - sweepDiff(): the sweep engine at jobs=1 vs. jobs=N over the same
 *    case list (catches latent RNG/thread coupling).
 *
 * End-of-run counters, energy categories, per-core CPI, and the
 * per-epoch frequency-decision timeline are compared field-by-field;
 * a mismatch names the first differing fields with both values.  The
 * same flattening feeds StateHasher, so a whole run compresses to one
 * uint64_t for golden tests (hashRunResult / hashComparison).
 */

#ifndef MEMSCALE_HARNESS_DIFFERENTIAL_HH
#define MEMSCALE_HARNESS_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"
#include "harness/system.hh"

namespace memscale
{

/** One field whose value differs between the two runs. */
struct FieldDiff
{
    std::string field;
    std::string a;
    std::string b;
};

/** Outcome of diffing two runs. */
struct DiffReport
{
    std::string label;             ///< e.g. "kernel:MID1/memscale"
    std::vector<FieldDiff> diffs;  ///< empty when the runs agree
    std::uint64_t hashA = 0;
    std::uint64_t hashB = 0;

    bool identical() const { return diffs.empty() && hashA == hashB; }

    /** Multi-line human-readable summary (first few diffs). */
    std::string str(std::size_t max_fields = 8) const;
};

/**
 * Flatten a run to (label, exact-value-string) pairs in a fixed
 * order.  Doubles are rendered with %a so the representation is
 * lossless; this sequence is the single source of truth for both
 * diffing and hashing.
 */
std::vector<std::pair<std::string, std::string>>
flattenRunResult(const RunResult &r);

/** Field-by-field diff of two runs. */
DiffReport diffRunResults(std::string label, const RunResult &a,
                          const RunResult &b);

/** Diff of two baseline-vs-policy comparisons (base + policy runs). */
DiffReport diffComparisons(std::string label, const ComparisonResult &a,
                           const ComparisonResult &b);

/** Deterministic 64-bit digest of a run's observable state. */
std::uint64_t hashRunResult(const RunResult &r);

/** Digest of a comparison (both runs + savings metrics). */
std::uint64_t hashComparison(const ComparisonResult &c);

class DifferentialHarness
{
  public:
    /** @param jobs worker count for the parallel side of sweepDiff
     *         (0 resolves via resolveJobs()). */
    explicit DifferentialHarness(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Run cfg under `policy` (baseline + policy, via compare()) with
     * the Fast kernel and again with the Reference kernel; diff.
     */
    DiffReport kernelDiff(SystemConfig cfg, const std::string &policy);

    /**
     * Run cfg under `policy` with the serial kernel (threads=1) and
     * again under the bound/weave kernel at `threads` workers; diff.
     * The parallel kernel's contract is bit-identity, so this is the
     * same oracle shape as kernelDiff().
     */
    DiffReport threadDiff(SystemConfig cfg, const std::string &policy,
                          unsigned threads = 4);

    /** compareCases() at jobs=1 vs jobs=N; one report per case. */
    std::vector<DiffReport>
    sweepDiff(const std::vector<SweepCase> &cases);

    /**
     * Stock self-check used by the bench drivers' --check flag:
     * kernelDiff on cfg/memscale plus a small sweepDiff across
     * policies.  Returns every report; all must be identical().
     */
    std::vector<DiffReport> runAll(const SystemConfig &cfg);

  private:
    unsigned jobs_;
};

/**
 * Convenience for drivers: run runAll(), print a PASS/FAIL line per
 * report to stderr, return the number of failing reports.
 */
std::size_t runSelfCheck(const SystemConfig &cfg, unsigned jobs = 0);

} // namespace memscale

#endif // MEMSCALE_HARNESS_DIFFERENTIAL_HH
