#include "harness/system.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"
#include "cpu/core.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"
#include "workload/mixes.hh"
#include "workload/trace_source.hh"

namespace memscale
{

PolicyContext
SystemConfig::policyContext() const
{
    PolicyContext ctx;
    ctx.power = power;
    ctx.mem = mem;
    ctx.restWatts = restWatts;
    ctx.gamma = gamma;
    ctx.cpuGHz = cpuGHz;
    ctx.epochLen = epochLen;
    ctx.profileLen = profileLen;
    return ctx;
}

double
RunResult::avgCpi() const
{
    if (coreCpi.empty())
        return 0.0;
    double s = 0.0;
    for (double c : coreCpi)
        s += c;
    return s / static_cast<double>(coreCpi.size());
}

double
RunResult::worstCpi() const
{
    double w = 0.0;
    for (double c : coreCpi)
        w = std::max(w, c);
    return w;
}

System::System(const SystemConfig &cfg, Policy &policy)
    : cfg_(cfg), policy_(policy)
{
}

RunResult
System::run()
{
    EventQueue eq(cfg_.kernelMode);
    MemoryController mc(eq, cfg_.mem);
    PolicyContext ctx = cfg_.policyContext();

    // Observability: registry + recorder exist only for observe runs;
    // both are pure readers of state the simulation maintains anyway.
    std::unique_ptr<StatRegistry> registry;
    std::shared_ptr<EpochRecorder> recorder;
    if (cfg_.observe) {
        registry = std::make_unique<StatRegistry>();
        mc.registerStats(*registry, "mc0");
        policy_.registerStats(*registry, "policy");
        recorder = std::make_shared<EpochRecorder>(registry.get());
    }

    // Optional online protocol validation.  Environment- or
    // build-level strictness attaches the checker to every run
    // regardless of the config flag.
    std::unique_ptr<ProtocolChecker> checker;
    if (cfg_.protocolCheck || cfg_.strictCheck ||
        ProtocolChecker::strictDefault()) {
        checker = std::make_unique<ProtocolChecker>(
            cfg_.strictCheck || ProtocolChecker::strictDefault());
        mc.setCommandObserver(checker.get());
    }

    // Energy integration: close a constant-frequency interval before
    // every frequency change and once more at the end of the run.
    SystemEnergyIntegrator integrator(cfg_.power, cfg_.restWatts);
    IntervalActivity last = mc.sampleActivity();
    Tick last_sample = eq.now();
    // CPU-energy bookkeeping (coordinated-DVFS extension); filled in
    // below once the cores exist.
    std::vector<Core *> cpu_cores;
    std::vector<Tick> last_stall;
    auto close_interval = [&] {
        IntervalActivity cur = mc.sampleActivity();
        IntervalActivity d = cur;
        d.dt = eq.now() - last_sample;
        for (std::size_t i = 0; i < d.ranks.size(); ++i)
            d.ranks[i] = cur.ranks[i] - last.ranks[i];
        for (std::size_t i = 0; i < d.channelBurst.size(); ++i)
            d.channelBurst[i] = cur.channelBurst[i] -
                                last.channelBurst[i];
        if (d.dt > 0) {
            integrator.addInterval(d);
            if (cfg_.modelCpuPower && !cpu_cores.empty()) {
                // Cores still run at the clock in effect during the
                // closing interval (CPU re-clocks fire after this).
                double ghz = cpu_cores[0]->frequencyGHz();
                double dt_sec = tickToSec(d.dt);
                Joules cpu_e = 0.0;
                for (std::size_t i = 0; i < cpu_cores.size(); ++i) {
                    Core *c = cpu_cores[i];
                    Tick ds = c->stallTime() - last_stall[i];
                    last_stall[i] = c->stallTime();
                    Tick active_end =
                        c->done() ? std::min(c->doneAt(), eq.now())
                                  : eq.now();
                    Tick active = active_end > last_sample
                                      ? active_end - last_sample
                                      : 0;
                    Tick busy_t = active > ds ? active - ds : 0;
                    double busy = static_cast<double>(busy_t) /
                                  static_cast<double>(d.dt);
                    cpu_e += cfg_.power.cpuCorePower(ghz, busy) *
                             dt_sec;
                }
                integrator.addCpuEnergy(cpu_e);
            }
        }
        last = cur;
        last_sample = eq.now();
    };
    mc.setBeforeFreqChangeHook(close_interval);

    policy_.configure(mc, ctx);
    mc.startRefresh();

    // Workload construction: numCores instances, four per application
    // in the mix (or the user's custom profiles), phase schedules
    // scaled to the instruction budget.
    const double phase_scale =
        static_cast<double>(cfg_.instrBudget) /
        static_cast<double>(canonicalBudget);
    const std::uint64_t region =
        cfg_.mem.totalBytes() / cfg_.numCores;

    std::vector<AppProfile> profiles;
    std::vector<std::unique_ptr<SyntheticTraceSource>> sources;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Core *> core_ptrs;
    profiles.reserve(cfg_.numCores);
    Rng seeder(cfg_.seed);

    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        const AppProfile &app =
            cfg_.customApps.empty()
                ? appForCore(mixByName(cfg_.mixName), i)
                : cfg_.customApps[i % cfg_.customApps.size()];
        profiles.push_back(scaledProfile(app, phase_scale));
    }
    CoreParams cp;
    cp.cpuGHz = cfg_.cpuGHz;
    cp.instrBudget = cfg_.instrBudget;
    cp.runPastBudget = false;
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        Addr base = static_cast<Addr>(i) * region;
        sources.push_back(std::make_unique<SyntheticTraceSource>(
            profiles[i], base, cfg_.mem.lineBytes, seeder.next()));
        cores.push_back(std::make_unique<Core>(
            eq, i, *sources.back(), mc, cp));
        core_ptrs.push_back(cores.back().get());
    }

    std::uint32_t done = 0;
    for (auto &c : cores) {
        c->setOnDone([&] {
            if (++done == cfg_.numCores)
                eq.stop();
        });
    }
    if (cfg_.modelCpuPower) {
        cpu_cores = core_ptrs;
        last_stall.assign(core_ptrs.size(), 0);
    }

    if (recorder) {
        ObsMeta meta;
        meta.numCores = cfg_.numCores;
        meta.numChannels = cfg_.mem.numChannels;
        meta.ranksPerChannel = cfg_.mem.ranksPerChannel();
        for (const AppProfile &p : profiles)
            meta.coreNames.push_back(p.name);
        meta.label = cfg_.mixName + "/" + policy_.name();
        recorder->setMeta(std::move(meta));
    }

    std::unique_ptr<EpochController> epochs;
    if (policy_.dynamic()) {
        epochs = std::make_unique<EpochController>(eq, mc, core_ptrs,
                                                   policy_, ctx);
        epochs->setBeforeCpuFreqChangeHook(close_interval);
        if (recorder)
            epochs->setRecorder(recorder.get());
        epochs->start();
    }

    for (auto &c : cores)
        c->start();

    eq.runUntil(cfg_.maxSimTime);

    RunResult res;
    res.hitTimeLimit = done < cfg_.numCores;
    if (res.hitTimeLimit) {
        warn("run %s/%s hit the simulated-time limit (%0.1f ms)",
             cfg_.mixName.c_str(), policy_.name().c_str(),
             tickToMs(cfg_.maxSimTime));
    }

    close_interval();

    res.mixName = cfg_.mixName;
    res.policyName = policy_.name();
    res.runtime = eq.now();
    res.energy = integrator.energy();
    res.counters = mc.sampleCounters();
    res.avgMemPower = integrator.averageMemoryPower();
    res.avgDimmPower = integrator.averageDimmPower();
    res.avgSystemPower = integrator.averagePower();
    for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
        res.coreCpi.push_back(core_ptrs[i]->budgetCpi());
        res.coreTlm.push_back(core_ptrs[i]->tlm());
        res.coreApp.push_back(profiles[i].name);
    }
    const double total_instr = static_cast<double>(cfg_.instrBudget) *
                               cfg_.numCores;
    res.measuredRpki =
        1000.0 * static_cast<double>(res.counters.reads) / total_instr;
    res.measuredWpki =
        1000.0 * static_cast<double>(res.counters.writes) /
        total_instr;
    if (epochs)
        res.timeline = epochs->history();
    if (recorder) {
        // The registry dies with this frame; the recorded buffer (a
        // plain columnar copy) lives on in the result.
        recorder->detach();
        res.obs = std::move(recorder);
    }
    if (checker) {
        res.protocolViolations = checker->violations();
        res.commandsChecked = checker->commandsChecked();
        for (const ProtocolViolation &v : checker->samples())
            res.protocolViolationSamples.push_back(v.str());
        if (res.protocolViolations != 0) {
            warn("run %s/%s: %llu protocol violation(s); first: %s",
                 cfg_.mixName.c_str(), policy_.name().c_str(),
                 static_cast<unsigned long long>(
                     res.protocolViolations),
                 res.protocolViolationSamples.front().c_str());
        }
        mc.setCommandObserver(nullptr);
    }
    return res;
}

} // namespace memscale
