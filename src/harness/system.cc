#include "harness/system.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"
#include "cpu/core.hh"
#include "harness/sweep.hh"
#include "mem/controller.hh"
#include "sim/event_kinds.hh"
#include "sim/event_queue.hh"
#include "sim/weave.hh"
#include "snapshot/serializer.hh"
#include "workload/mixes.hh"
#include "workload/trace_source.hh"

namespace memscale
{

namespace
{

/**
 * Check the snapshot's configuration fingerprint against the resuming
 * run.  A snapshot only replays bit-identically into the exact system
 * it was taken from, so any mismatch is fatal with a named field
 * rather than a silently diverging simulation.
 */
void
verifySnapshotMeta(SectionReader &m, const SystemConfig &cfg,
                   const std::string &policy_name, bool has_checker,
                   bool dynamic_policy)
{
    auto want_str = [&](const char *what, const std::string &want) {
        const std::string got = m.str();
        if (got != want)
            fatal("resume: snapshot %s '%s' does not match run '%s'",
                  what, got.c_str(), want.c_str());
    };
    auto want_u64 = [&](const char *what, std::uint64_t want) {
        const std::uint64_t got = m.u64();
        if (got != want)
            fatal("resume: snapshot %s %llu does not match run %llu",
                  what, static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(want));
    };
    auto want_u32 = [&](const char *what, std::uint32_t want) {
        const std::uint32_t got = m.u32();
        if (got != want)
            fatal("resume: snapshot %s %u does not match run %u",
                  what, got, want);
    };
    auto want_f64 = [&](const char *what, double want) {
        const double got = m.f64();
        if (got != want)
            fatal("resume: snapshot %s %.17g does not match run "
                  "%.17g",
                  what, got, want);
    };
    auto want_b = [&](const char *what, bool want) {
        const bool got = m.b();
        if (got != want)
            fatal("resume: snapshot %s %d does not match run %d",
                  what, got ? 1 : 0, want ? 1 : 0);
    };

    want_str("mix", cfg.mixName);
    want_str("policy", policy_name);
    want_u32("numCores", cfg.numCores);
    want_f64("cpuGHz", cfg.cpuGHz);
    want_u64("instrBudget", cfg.instrBudget);
    want_u64("epochLen", cfg.epochLen);
    want_u64("profileLen", cfg.profileLen);
    want_f64("gamma", cfg.gamma);
    want_u64("seed", cfg.seed);
    want_f64("restWatts", cfg.restWatts);
    want_u32("numChannels", cfg.mem.numChannels);
    want_u32("ranksPerChannel", cfg.mem.ranksPerChannel());
    want_u32("banksPerRank", cfg.mem.banksPerRank);
    const std::uint8_t km = m.u8();
    if (km != static_cast<std::uint8_t>(cfg.kernelMode))
        fatal("resume: snapshot kernel mode %u does not match run %u",
              km, static_cast<unsigned>(cfg.kernelMode));
    want_b("observe", cfg.observe);
    want_b("modelCpuPower", cfg.modelCpuPower);
    want_b("protocolCheck", has_checker);
    want_b("dynamicPolicy", dynamic_policy);
    want_u32("customApps",
             static_cast<std::uint32_t>(cfg.customApps.size()));
    // Idle-ladder fingerprint: demotion thresholds and consolidation
    // knobs shape the event stream and the migrator's remap table, so
    // a snapshot is only valid under the exact same ladder config.
    const IdleLadderConfig &lc = cfg.mem.ladder;
    want_u64("ladder.demoteSlowPd", lc.demoteSlowPd);
    want_u64("ladder.demoteSelfRefresh", lc.demoteSelfRefresh);
    want_u64("ladder.demoteSrSlow", lc.demoteSrSlow);
    want_u64("ladder.demoteDeepPd", lc.demoteDeepPd);
    want_b("ladder.migrate", lc.migrate);
    want_u64("ladder.migrateInterval", lc.migrateInterval);
    want_u32("ladder.hotRanks", lc.hotRanks);
    want_u32("ladder.hotThreshold", lc.hotThreshold);
    want_u32("ladder.maxSwapsPerInterval", lc.maxSwapsPerInterval);
    want_u32("ladder.migrationLines", lc.migrationLines);
    want_u32("ladder.counterSets", lc.counterSets);
}

} // namespace

PolicyContext
SystemConfig::policyContext() const
{
    PolicyContext ctx;
    ctx.power = power;
    ctx.mem = mem;
    ctx.restWatts = restWatts;
    ctx.gamma = gamma;
    ctx.cpuGHz = cpuGHz;
    ctx.epochLen = epochLen;
    ctx.profileLen = profileLen;
    ctx.sloP99Us = serving.sloP99Us;
    ctx.powerCapW = powerCapW;
    return ctx;
}

double
RunResult::avgCpi() const
{
    if (coreCpi.empty())
        return 0.0;
    double s = 0.0;
    for (double c : coreCpi)
        s += c;
    return s / static_cast<double>(coreCpi.size());
}

double
RunResult::worstCpi() const
{
    double w = 0.0;
    for (double c : coreCpi)
        w = std::max(w, c);
    return w;
}

System::System(const SystemConfig &cfg, Policy &policy)
    : cfg_(cfg), policy_(policy)
{
}

RunResult
System::run()
{
    const bool resuming = !cfg_.snapshot.resumePath.empty();
    const bool serving_mode = cfg_.serving.enabled;
    EventQueue eq(cfg_.kernelMode);
    MemoryController mc(eq, cfg_.mem);
    PolicyContext ctx = cfg_.policyContext();

    // Bound/weave kernel (threads > 1): a worker pool drains the
    // per-channel weave shards at barriers while the bound thread
    // blocks, so worker/bound accesses are temporally disjoint.
    // Declared before the components whose state the hub tasks touch
    // are *used*, but the hub itself never runs outside barrier().
    const unsigned weave_threads =
        checkedJobs(cfg_.threads == 0 ? 1 : cfg_.threads);
    std::unique_ptr<SweepEngine> weave_engine;
    std::unique_ptr<WeaveHub> weave_hub;
    if (weave_threads > 1) {
        weave_engine = std::make_unique<SweepEngine>(weave_threads);
        weave_hub = std::make_unique<WeaveHub>();
        weave_hub->setRunner(
            [&weave_engine](std::size_t n,
                            const std::function<void(std::size_t)> &fn) {
                weave_engine->forEach(n, fn);
            });
        // A checkpoint cut through a half-woven interval would snapshot
        // stale channel accounting; the guard makes that loud.
        eq.setExportGuard([&mc] { return mc.weaveDrained(); });
    }

    // Observability: registry + recorder exist only for observe runs;
    // both are pure readers of state the simulation maintains anyway.
    std::unique_ptr<StatRegistry> registry;
    std::shared_ptr<EpochRecorder> recorder;
    if (cfg_.observe) {
        registry = std::make_unique<StatRegistry>();
        mc.registerStats(*registry, "mc0");
        policy_.registerStats(*registry, "policy");
        recorder = std::make_shared<EpochRecorder>(registry.get());
    }

    // Optional online protocol validation.  Environment- or
    // build-level strictness attaches the checker to every run
    // regardless of the config flag.
    std::unique_ptr<ProtocolChecker> checker;
    if (cfg_.protocolCheck || cfg_.strictCheck ||
        ProtocolChecker::strictDefault()) {
        checker = std::make_unique<ProtocolChecker>(
            cfg_.strictCheck || ProtocolChecker::strictDefault());
        mc.setCommandObserver(checker.get());
    }

    // Attach after the observer so the checker's per-channel slots are
    // pre-sized (serially) before any concurrent drain can touch them.
    if (weave_hub)
        mc.attachWeave(weave_hub.get());

    // Energy integration: close a constant-frequency interval before
    // every frequency change and once more at the end of the run.
    SystemEnergyIntegrator integrator(cfg_.power, cfg_.restWatts);
    IntervalActivity last = mc.sampleActivity();
    Tick last_sample = eq.now();
    // CPU-energy bookkeeping (coordinated-DVFS extension); filled in
    // below once the cores (or serving workers) exist.  Closed-loop
    // cores charge busy = active minus stall; serving workers expose
    // request-service busy time directly, so `last_stall` doubles as
    // the per-worker busy baseline there.
    std::vector<Core *> cpu_cores;
    std::vector<Tick> last_stall;
    ServingFrontEnd *fe_raw = nullptr;
    auto close_interval = [&] {
        IntervalActivity cur = mc.sampleActivity();
        IntervalActivity d = cur;
        d.dt = eq.now() - last_sample;
        for (std::size_t i = 0; i < d.ranks.size(); ++i)
            d.ranks[i] = cur.ranks[i] - last.ranks[i];
        for (std::size_t i = 0; i < d.channelBurst.size(); ++i)
            d.channelBurst[i] = cur.channelBurst[i] -
                                last.channelBurst[i];
        if (d.dt > 0) {
            integrator.addInterval(d);
            if (cfg_.modelCpuPower && !cpu_cores.empty()) {
                // Cores still run at the clock in effect during the
                // closing interval (CPU re-clocks fire after this).
                double ghz = cpu_cores[0]->frequencyGHz();
                double dt_sec = tickToSec(d.dt);
                Joules cpu_e = 0.0;
                for (std::size_t i = 0; i < cpu_cores.size(); ++i) {
                    Core *c = cpu_cores[i];
                    Tick ds = c->stallTime() - last_stall[i];
                    last_stall[i] = c->stallTime();
                    Tick active_end =
                        c->done() ? std::min(c->doneAt(), eq.now())
                                  : eq.now();
                    Tick active = active_end > last_sample
                                      ? active_end - last_sample
                                      : 0;
                    Tick busy_t = active > ds ? active - ds : 0;
                    double busy = static_cast<double>(busy_t) /
                                  static_cast<double>(d.dt);
                    cpu_e += cfg_.power.cpuCorePower(ghz, busy) *
                             dt_sec;
                }
                integrator.addCpuEnergy(cpu_e);
            } else if (cfg_.modelCpuPower && fe_raw) {
                const double dt_sec = tickToSec(d.dt);
                Joules cpu_e = 0.0;
                for (std::size_t i = 0; i < fe_raw->numWorkers();
                     ++i) {
                    const ServingWorker &wk = fe_raw->worker(i);
                    const Tick b = wk.busyAsOf(eq.now());
                    const Tick db =
                        b > last_stall[i] ? b - last_stall[i] : 0;
                    last_stall[i] = b;
                    const double busy = std::min(
                        1.0, static_cast<double>(db) /
                                 static_cast<double>(d.dt));
                    cpu_e += cfg_.power.cpuCorePower(
                                 wk.frequencyGHz(), busy) *
                             dt_sec;
                }
                integrator.addCpuEnergy(cpu_e);
            }
        }
        last = cur;
        last_sample = eq.now();
    };
    mc.setBeforeFreqChangeHook(close_interval);

    policy_.configure(mc, ctx);
    // On resume, the refresh engines' pending events come from the
    // snapshot (clearPending() below drops anything configure()
    // scheduled); starting them here would double-refresh.
    if (!resuming) {
        mc.startRefresh();
        mc.startMigration();
    }

    // Workload construction.  Serving mode replaces the synthetic
    // trace cores with an open-loop front end fanning requests across
    // ServingWorkers; everything below that touches `cores` simply
    // iterates an empty vector then.  Closed-loop: numCores
    // instances, four per application in the mix (or the user's
    // custom profiles), phase schedules scaled to the budget.
    const double phase_scale =
        static_cast<double>(cfg_.instrBudget) /
        static_cast<double>(canonicalBudget);
    const std::uint64_t region =
        cfg_.mem.totalBytes() / cfg_.numCores;

    std::vector<AppProfile> profiles;
    std::vector<std::unique_ptr<SyntheticTraceSource>> sources;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<Core *> core_ptrs;
    std::unique_ptr<ServingFrontEnd> fe;
    if (serving_mode) {
        fe = std::make_unique<ServingFrontEnd>(
            eq, mc, cfg_.serving, cfg_.numCores, cfg_.cpuGHz,
            cfg_.seed);
        fe_raw = fe.get();
        if (registry)
            fe->registerStats(*registry, "serving");
        policy_.attachTailProbe(
            [f = fe.get()] { return f->tailWindow(); });
    } else {
        profiles.reserve(cfg_.numCores);
        Rng seeder(cfg_.seed);

        for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
            const AppProfile &app =
                cfg_.customApps.empty()
                    ? appForCore(mixByName(cfg_.mixName), i)
                    : cfg_.customApps[i % cfg_.customApps.size()];
            profiles.push_back(scaledProfile(app, phase_scale));
        }
        CoreParams cp;
        cp.cpuGHz = cfg_.cpuGHz;
        cp.instrBudget = cfg_.instrBudget;
        cp.runPastBudget = false;
        for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
            Addr base = static_cast<Addr>(i) * region;
            sources.push_back(std::make_unique<SyntheticTraceSource>(
                profiles[i], base, cfg_.mem.lineBytes, seeder.next()));
            cores.push_back(std::make_unique<Core>(
                eq, i, *sources.back(), mc, cp));
            core_ptrs.push_back(cores.back().get());
        }
    }

    // Trace pre-generation rides the weave pool too, but only when no
    // checkpoint is in play in either direction: a prefetched source's
    // RNG sits ahead of the consumption point, which would change what
    // saveState() captures.
    const bool snapshot_active =
        !cfg_.snapshot.out.empty() || resuming ||
        cfg_.snapshot.every > 0 || cfg_.snapshot.at > 0;
    if (weave_hub && !snapshot_active) {
        constexpr std::size_t PrefetchChunks = 64;
        for (auto &c : cores) {
            Core *cp = c.get();
            cp->setPrefetch(PrefetchChunks);
            weave_hub->addTask([cp] { cp->refillPrefetch(); });
        }
    }

    std::uint32_t done = 0;
    for (auto &c : cores) {
        c->setOnDone([&] {
            if (++done == cfg_.numCores)
                eq.stop();
        });
    }
    if (cfg_.modelCpuPower) {
        cpu_cores = core_ptrs;
        last_stall.assign(serving_mode ? cfg_.numCores
                                       : core_ptrs.size(),
                          0);
    }

    if (recorder) {
        ObsMeta meta;
        meta.numCores = cfg_.numCores;
        meta.numChannels = cfg_.mem.numChannels;
        meta.ranksPerChannel = cfg_.mem.ranksPerChannel();
        if (serving_mode) {
            for (std::uint32_t i = 0; i < cfg_.numCores; ++i)
                meta.coreNames.push_back("openloop");
        } else {
            for (const AppProfile &p : profiles)
                meta.coreNames.push_back(p.name);
        }
        meta.label = cfg_.mixName + "/" + policy_.name();
        recorder->setMeta(std::move(meta));
    }

    std::unique_ptr<EpochController> epochs;
    if (policy_.dynamic()) {
        epochs = std::make_unique<EpochController>(
            eq, mc,
            serving_mode ? fe->samplers()
                         : std::vector<CpuSampler *>(core_ptrs.begin(),
                                                     core_ptrs.end()),
            policy_, ctx);
        epochs->setBeforeCpuFreqChangeHook(close_interval);
        if (recorder)
            epochs->setRecorder(recorder.get());
        // A resumed run rebuilds the in-flight epoch event from the
        // snapshot instead of arming a fresh first epoch.
        if (!resuming)
            epochs->start();
    }

    if (!resuming) {
        for (auto &c : cores)
            c->start();
        if (fe)
            fe->start();
    }

    if (resuming) {
        SnapshotReader snap(cfg_.snapshot.resumePath);
        SectionReader meta = snap.section("meta");
        verifySnapshotMeta(meta, cfg_, policy_.name(),
                           checker != nullptr, policy_.dynamic());

        // Drop everything the fresh construction scheduled (refresh
        // arming, relocks from configure()) and jump the clock; the
        // snapshot's own event list replaces it wholesale.
        eq.clearPending();
        SectionReader sim = snap.section("sim");
        eq.setNow(sim.u64());

        SectionReader mcs = snap.section("mc");
        std::vector<MemClient *> clients =
            serving_mode ? fe->clients()
                         : std::vector<MemClient *>(core_ptrs.begin(),
                                                    core_ptrs.end());
        mc.restoreState(mcs, clients);

        // Closed-loop snapshots carry a "cores" section, serving
        // snapshots a "serving" one; asking for the wrong section is
        // fatal, which is exactly the cross-mode guard we want.
        if (serving_mode) {
            SectionReader svs = snap.section("serving");
            fe->restoreState(svs);
        } else {
            SectionReader crs = snap.section("cores");
            const std::uint32_t ncores = crs.u32();
            if (ncores != cfg_.numCores)
                fatal("resume: snapshot has %u cores, run has %u",
                      ncores, cfg_.numCores);
            for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
                sources[i]->restoreState(crs);
                cores[i]->restoreState(crs);
            }
        }

        SectionReader pw = snap.section("power");
        integrator.restoreState(pw);
        last.dt = pw.u64();
        last.busMHz = pw.u32();
        last.deviceBusMHz = pw.u32();
        last.ranksPerChannel = pw.u32();
        last.numDimms = pw.u32();
        last.ranks.assign(pw.u32(), RankActivity{});
        for (RankActivity &ra : last.ranks)
            ra.restoreState(pw);
        last.channelBurst.assign(pw.u32(), 0);
        for (Tick &t : last.channelBurst)
            t = pw.u64();
        last.channelMHz.assign(pw.u32(), 0);
        for (std::uint32_t &mhz : last.channelMHz)
            mhz = pw.u32();
        last_sample = pw.u64();
        const std::uint32_t nstall = pw.u32();
        for (std::uint32_t i = 0; i < nstall; ++i) {
            const Tick s = pw.u64();
            if (i < last_stall.size())
                last_stall[i] = s;
        }

        if (epochs) {
            SectionReader es = snap.section("epoch");
            epochs->restoreState(es);
        }
        if (recorder) {
            SectionReader rs = snap.section("recorder");
            recorder->restoreState(rs);
        }
        SectionReader ps = snap.section("policy");
        policy_.restoreState(ps);
        if (checker) {
            SectionReader chs = snap.section("checker");
            checker->restoreState(chs);
        }

        done = 0;
        for (Core *c : core_ptrs) {
            if (c->done())
                ++done;
        }

        // Re-schedule the saved pending events in their original
        // execution order; fresh insertion sequences then preserve
        // every same-tick tie-break.
        const std::uint32_t npend = sim.u32();
        for (std::uint32_t i = 0; i < npend; ++i) {
            const Tick when = sim.u64();
            const auto cls = static_cast<EventClass>(sim.u8());
            EventTag tag;
            tag.kind = sim.u32();
            tag.owner = sim.u32();
            tag.a = sim.u64();
            tag.b = sim.u64();
            EventCallback cb;
            switch (tag.kind) {
              case EvCoreIssueMiss:
                if (tag.owner >= core_ptrs.size())
                    fatal("resume: core event owner %u out of range",
                          tag.owner);
                cb = core_ptrs[tag.owner]->rebuildEvent(tag.kind);
                break;
              case EvChanBankClosed:
              case EvChanActOpen:
              case EvChanBurstDone:
              case EvChanPreDone:
              case EvChanRelockEnter:
              case EvChanRelockExit:
              case EvChanRefreshTick:
              case EvChanRefreshDone:
              case EvChanPdDemote:
                cb = mc.rebuildChannelEvent(tag.owner, tag.kind,
                                            tag.a, tag.b);
                break;
              case EvMemMigrate:
                cb = mc.rebuildMigrationEvent();
                break;
              case EvEpochEndProfile:
              case EvEpochEndEpoch:
                if (!epochs)
                    fatal("resume: snapshot carries an epoch event "
                          "but the policy is static");
                cb = epochs->rebuildEvent(tag.kind);
                break;
              case EvServeArrival:
              case EvServeIssue:
                if (!fe)
                    fatal("resume: snapshot carries a serving event "
                          "but the run is closed-loop");
                cb = fe->rebuildEvent(tag.kind, tag.owner);
                break;
              default:
                fatal("resume: unknown event kind %u (%s)", tag.kind,
                      eventKindName(tag.kind));
            }
            eq.schedule(when, std::move(cb), cls, tag);
        }
    }

    // Checkpoint writers: EvEphemeral Sample-class events, pure
    // readers of simulation state.  They shift later insertion
    // sequences uniformly, preserving every relative (tick, class,
    // seq) comparison — runs with and without them are bit-identical.
    bool stopped_at_checkpoint = false;
    std::vector<std::string> checkpoints_written;
    auto write_checkpoint = [&](const std::string &path) {
        // Drain the weave shards before cutting: every saveState()
        // below (and exportPending()'s guard) requires fully-integrated
        // accounting.  MemoryController::saveState is const and cannot
        // barrier itself.
        mc.weaveBarrier();
        const std::vector<PendingEvent> pend = eq.exportPending();
        std::uint32_t relocks = 0;
        std::uint32_t refreshes = 0;
        for (const PendingEvent &pe : pend) {
            if (pe.tag.kind == EvChanRelockEnter ||
                pe.tag.kind == EvChanRelockExit)
                ++relocks;
            if (pe.tag.kind == EvChanRefreshDone)
                ++refreshes;
        }

        SnapshotWriter sw;
        SectionWriter &m = sw.section("meta");
        m.str(cfg_.mixName);
        m.str(policy_.name());
        m.u32(cfg_.numCores);
        m.f64(cfg_.cpuGHz);
        m.u64(cfg_.instrBudget);
        m.u64(cfg_.epochLen);
        m.u64(cfg_.profileLen);
        m.f64(cfg_.gamma);
        m.u64(cfg_.seed);
        m.f64(cfg_.restWatts);
        m.u32(cfg_.mem.numChannels);
        m.u32(cfg_.mem.ranksPerChannel());
        m.u32(cfg_.mem.banksPerRank);
        m.u8(static_cast<std::uint8_t>(cfg_.kernelMode));
        m.b(cfg_.observe);
        m.b(cfg_.modelCpuPower);
        m.b(checker != nullptr);
        m.b(policy_.dynamic());
        m.u32(static_cast<std::uint32_t>(cfg_.customApps.size()));
        const IdleLadderConfig &lc = cfg_.mem.ladder;
        m.u64(lc.demoteSlowPd);
        m.u64(lc.demoteSelfRefresh);
        m.u64(lc.demoteSrSlow);
        m.u64(lc.demoteDeepPd);
        m.b(lc.migrate);
        m.u64(lc.migrateInterval);
        m.u32(lc.hotRanks);
        m.u32(lc.hotThreshold);
        m.u32(lc.maxSwapsPerInterval);
        m.u32(lc.migrationLines);
        m.u32(lc.counterSets);
        // Summary block (SnapshotMeta): what the checkpoint caught
        // mid-flight, for diagnostics and test probes.
        m.u64(eq.now());
        m.u32(done);
        m.u32(static_cast<std::uint32_t>(pend.size()));
        m.u64(mc.requestPool().inUse());
        m.u32(mc.ranksPoweredDown());
        m.u32(relocks);
        m.u32(refreshes);

        SectionWriter &sim = sw.section("sim");
        sim.u64(eq.now());
        sim.u32(static_cast<std::uint32_t>(pend.size()));
        for (const PendingEvent &pe : pend) {
            sim.u64(pe.when);
            sim.u8(static_cast<std::uint8_t>(pe.cls));
            sim.u32(pe.tag.kind);
            sim.u32(pe.tag.owner);
            sim.u64(pe.tag.a);
            sim.u64(pe.tag.b);
        }

        mc.saveState(sw.section("mc"));

        if (serving_mode) {
            fe->saveState(sw.section("serving"));
        } else {
            SectionWriter &crs = sw.section("cores");
            crs.u32(cfg_.numCores);
            for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
                sources[i]->saveState(crs);
                cores[i]->saveState(crs);
            }
        }

        SectionWriter &pw = sw.section("power");
        integrator.saveState(pw);
        pw.u64(last.dt);
        pw.u32(last.busMHz);
        pw.u32(last.deviceBusMHz);
        pw.u32(last.ranksPerChannel);
        pw.u32(last.numDimms);
        pw.u32(static_cast<std::uint32_t>(last.ranks.size()));
        for (const RankActivity &ra : last.ranks)
            ra.saveState(pw);
        pw.u32(static_cast<std::uint32_t>(last.channelBurst.size()));
        for (Tick t : last.channelBurst)
            pw.u64(t);
        pw.u32(static_cast<std::uint32_t>(last.channelMHz.size()));
        for (std::uint32_t mhz : last.channelMHz)
            pw.u32(mhz);
        pw.u64(last_sample);
        pw.u32(static_cast<std::uint32_t>(last_stall.size()));
        for (Tick s : last_stall)
            pw.u64(s);

        if (epochs)
            epochs->saveState(sw.section("epoch"));
        if (recorder)
            recorder->saveState(sw.section("recorder"));
        policy_.saveState(sw.section("policy"));
        if (checker)
            checker->saveState(sw.section("checker"));

        sw.writeFile(path);
        checkpoints_written.push_back(path);
    };

    if ((cfg_.snapshot.every > 0 || cfg_.snapshot.at > 0) &&
        cfg_.snapshot.out.empty())
        fatal("snapshot: checkpointing requested without an output "
              "path");
    std::function<void()> periodic;
    if (cfg_.snapshot.every > 0) {
        periodic = [&] {
            write_checkpoint(cfg_.snapshot.out + "." +
                             std::to_string(eq.now()));
            eq.scheduleIn(cfg_.snapshot.every, [&] { periodic(); },
                          EventClass::Sample, {EvEphemeral});
        };
        eq.scheduleIn(cfg_.snapshot.every, [&] { periodic(); },
                      EventClass::Sample, {EvEphemeral});
    }
    if (cfg_.snapshot.at > 0 && cfg_.snapshot.at > eq.now()) {
        eq.schedule(cfg_.snapshot.at,
                    [&] {
                        write_checkpoint(cfg_.snapshot.out);
                        if (cfg_.snapshot.stopAfter) {
                            stopped_at_checkpoint = true;
                            eq.stop();
                        }
                    },
                    EventClass::Sample, {EvEphemeral});
    }

    // Serving runs end at the arrival horizon, not at an instruction
    // budget.  The stop is an EvEphemeral Sample-class event: never
    // exported, re-armed from the config on resume, and ordered after
    // any same-tick hardware/policy work (Sample runs last), so the
    // final tick's completions are all counted.  Scheduled after the
    // checkpoint events so a same-tick `--checkpoint-at` still
    // writes before the stop.
    bool horizon_reached = false;
    if (fe) {
        eq.schedule(std::max(cfg_.serving.horizon, eq.now()),
                    [&] {
                        horizon_reached = true;
                        eq.stop();
                    },
                    EventClass::Sample, {EvEphemeral});
    }

    // Periodic weave flush: static policies never hit an epoch
    // barrier, so without this the shards would grow for the whole
    // run.  A barrier is behaviour-free at any bound-side point, and
    // EvEphemeral Sample-class events shift later insertion sequences
    // uniformly, so scheduling it cannot perturb results.
    std::function<void()> weave_flush;
    if (weave_hub) {
        const Tick flush_period =
            std::max<Tick>(1, std::min(cfg_.epochLen, msToTick(1.0)));
        weave_flush = [&, flush_period] {
            mc.weaveBarrier();
            eq.scheduleIn(flush_period, [&] { weave_flush(); },
                          EventClass::Sample, {EvEphemeral});
        };
        eq.scheduleIn(flush_period, [&] { weave_flush(); },
                      EventClass::Sample, {EvEphemeral});
    }

    eq.runUntil(cfg_.maxSimTime);

    RunResult res;
    res.stoppedAtCheckpoint = stopped_at_checkpoint;
    res.checkpointsWritten = std::move(checkpoints_written);
    res.hitTimeLimit =
        serving_mode ? (!horizon_reached && !stopped_at_checkpoint)
                     : (done < cfg_.numCores && !stopped_at_checkpoint);
    if (res.hitTimeLimit) {
        warn("run %s/%s hit the simulated-time limit (%0.1f ms)",
             cfg_.mixName.c_str(), policy_.name().c_str(),
             tickToMs(cfg_.maxSimTime));
    }

    close_interval();

    res.mixName = cfg_.mixName;
    res.policyName = policy_.name();
    res.runtime = eq.now();
    res.energy = integrator.energy();
    res.counters = mc.sampleCounters();
    res.avgMemPower = integrator.averageMemoryPower();
    res.avgDimmPower = integrator.averageDimmPower();
    res.avgSystemPower = integrator.averagePower();
    double total_instr = 0.0;
    if (serving_mode) {
        for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
            const ServingWorker &w = fe->worker(i);
            const double instr = static_cast<double>(w.tic(eq.now()));
            // busyTime is in picoseconds; cycles = ps * GHz / 1000.
            const double cycles =
                static_cast<double>(w.busyTime()) * cfg_.cpuGHz /
                1000.0;
            res.coreCpi.push_back(instr > 0.0 ? cycles / instr : 0.0);
            res.coreTlm.push_back(w.tlm());
            res.coreApp.push_back("openloop");
            total_instr += instr;
        }
        res.serving = fe->stats(eq.now());
    } else {
        for (std::uint32_t i = 0; i < cfg_.numCores; ++i) {
            res.coreCpi.push_back(core_ptrs[i]->budgetCpi());
            res.coreTlm.push_back(core_ptrs[i]->tlm());
            res.coreApp.push_back(profiles[i].name);
        }
        total_instr = static_cast<double>(cfg_.instrBudget) *
                      cfg_.numCores;
    }
    if (total_instr > 0.0) {
        res.measuredRpki = 1000.0 *
                           static_cast<double>(res.counters.reads) /
                           total_instr;
        res.measuredWpki = 1000.0 *
                           static_cast<double>(res.counters.writes) /
                           total_instr;
    }
    if (epochs)
        res.timeline = epochs->history();
    if (recorder) {
        // The registry dies with this frame; the recorded buffer (a
        // plain columnar copy) lives on in the result.
        recorder->detach();
        res.obs = std::move(recorder);
    }
    if (checker) {
        res.protocolViolations = checker->violations();
        res.commandsChecked = checker->commandsChecked();
        for (const ProtocolViolation &v : checker->samples())
            res.protocolViolationSamples.push_back(v.str());
        if (res.protocolViolations != 0) {
            warn("run %s/%s: %llu protocol violation(s); first: %s",
                 cfg_.mixName.c_str(), policy_.name().c_str(),
                 static_cast<unsigned long long>(
                     res.protocolViolations),
                 res.protocolViolationSamples.front().c_str());
        }
        mc.setCommandObserver(nullptr);
    }
    return res;
}

SnapshotMeta
readSnapshotMeta(const std::string &path)
{
    SnapshotReader snap(path);
    SectionReader m = snap.section("meta");
    SnapshotMeta out;
    out.mixName = m.str();
    out.policyName = m.str();
    m.u32();  // numCores
    m.f64();  // cpuGHz
    m.u64();  // instrBudget
    m.u64();  // epochLen
    m.u64();  // profileLen
    m.f64();  // gamma
    m.u64();  // seed
    m.f64();  // restWatts
    m.u32();  // numChannels
    m.u32();  // ranksPerChannel
    m.u32();  // banksPerRank
    m.u8();   // kernelMode
    m.b();    // observe
    m.b();    // modelCpuPower
    m.b();    // protocolCheck
    m.b();    // dynamicPolicy
    m.u32();  // customApps
    m.u64();  // ladder.demoteSlowPd
    m.u64();  // ladder.demoteSelfRefresh
    m.u64();  // ladder.demoteSrSlow
    m.u64();  // ladder.demoteDeepPd
    m.b();    // ladder.migrate
    m.u64();  // ladder.migrateInterval
    m.u32();  // ladder.hotRanks
    m.u32();  // ladder.hotThreshold
    m.u32();  // ladder.maxSwapsPerInterval
    m.u32();  // ladder.migrationLines
    m.u32();  // ladder.counterSets
    out.now = m.u64();
    out.doneCores = m.u32();
    out.pendingEvents = m.u32();
    out.inFlightRequests = m.u64();
    out.ranksPoweredDown = m.u32();
    out.pendingRelocks = m.u32();
    out.pendingRefreshes = m.u32();
    return out;
}

} // namespace memscale
