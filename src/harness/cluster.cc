#include "harness/cluster.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/rng.hh"
#include "harness/differential.hh"
#include "harness/sweep.hh"
#include "memscale/policies/fastcap_policy.hh"
#include "memscale/policies/policy.hh"
#include "obs/stat_registry.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

double
jainIndex(const std::vector<double> &x)
{
    if (x.empty())
        return 1.0;
    double sum = 0.0;
    double sumsq = 0.0;
    for (double v : x) {
        sum += v;
        sumsq += v * v;
    }
    if (sumsq <= 0.0)
        return 1.0;
    return sum * sum / (static_cast<double>(x.size()) * sumsq);
}

BudgetAllocation
allocateFleetBudget(Watts capW,
                    const std::vector<ServerTelemetry> &telemetry,
                    const std::vector<double> &weights)
{
    const std::size_t n = telemetry.size();
    if (n == 0)
        fatal("allocateFleetBudget: empty fleet");
    if (!(capW > 0.0))
        fatal("allocateFleetBudget: cap %g W must be positive", capW);

    std::vector<double> w(n, 1.0);
    if (!weights.empty()) {
        for (std::size_t k = 0; k < n; ++k) {
            w[k] = weights[k % weights.size()];
            if (!(w[k] > 0.0))
                fatal("allocateFleetBudget: weight %g must be "
                      "positive",
                      w[k]);
        }
    }

    std::vector<double> mn(n), dm(n);
    double sum_min = 0.0;
    double sum_demand = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        mn[k] = std::max(telemetry[k].minW, 0.0);
        dm[k] = std::max(telemetry[k].demandW, mn[k]);
        sum_min += mn[k];
        sum_demand += dm[k];
    }

    BudgetAllocation out;
    out.budgetW.resize(n);

    if (sum_demand <= capW) {
        // Cap is slack: everybody runs at full demand.  Granting more
        // than the demand would not buy performance, so this is the
        // work-conserving optimum, not a violation of it.
        out.budgetW.assign(dm.begin(), dm.end());
        out.theta = 1.0 / *std::min_element(w.begin(), w.end());
        return out;
    }
    if (sum_min >= capW) {
        // Even the power floors overflow the budget: scale them
        // proportionally and flag the epoch.  sum_min >= capW > 0.
        for (std::size_t k = 0; k < n; ++k)
            out.budgetW[k] = capW * mn[k] / sum_min;
        out.feasible = sum_min <= capW;
        out.theta = 0.0;
        return out;
    }

    // Weighted water-fill: grant each server the fraction
    // min(1, theta * w_k) of its (demand - min) span and bisect for
    // the largest theta that fits.  Sum is continuous and monotone in
    // theta, so 64 halvings pin the cap to machine precision —
    // work-conserving by construction.
    auto total = [&](double theta) {
        double s = 0.0;
        for (std::size_t k = 0; k < n; ++k)
            s += mn[k] +
                 std::min(1.0, theta * w[k]) * (dm[k] - mn[k]);
        return s;
    };
    double lo = 0.0;
    double hi = 1.0 / *std::min_element(w.begin(), w.end());
    for (int it = 0; it < 64; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (total(mid) <= capW)
            lo = mid;
        else
            hi = mid;
    }
    for (std::size_t k = 0; k < n; ++k)
        out.budgetW[k] =
            mn[k] + std::min(1.0, lo * w[k]) * (dm[k] - mn[k]);
    out.theta = lo;
    return out;
}

namespace
{

constexpr std::uint64_t fleetHashSeed = 0xF1EE7C0DEull;

std::string
serverSnapshotPath(const std::string &fleet_path, std::uint32_t k)
{
    return fleet_path + ".server" + std::to_string(k);
}

void
saveTelemetry(SectionWriter &w, const ServerTelemetry &t)
{
    w.b(t.valid);
    w.f64(t.measuredW);
    w.f64(t.demandW);
    w.f64(t.minW);
    w.f64(t.slowdown);
}

ServerTelemetry
restoreTelemetry(SectionReader &r)
{
    ServerTelemetry t;
    t.valid = r.b();
    t.measuredW = r.f64();
    t.demandW = r.f64();
    t.minW = r.f64();
    t.slowdown = r.f64();
    return t;
}

void
saveRow(SectionWriter &w, const FleetEpochRow &row)
{
    w.u32(row.epoch);
    w.u64(row.start);
    w.u64(row.end);
    w.u32(static_cast<std::uint32_t>(row.budgetW.size()));
    for (double b : row.budgetW)
        w.f64(b);
    w.u32(static_cast<std::uint32_t>(row.measuredW.size()));
    for (double m : row.measuredW)
        w.f64(m);
    w.f64(row.fleetW);
    w.f64(row.fleetBudgetW);
    w.b(row.capMet);
    w.b(row.allocFeasible);
}

FleetEpochRow
restoreRow(SectionReader &r)
{
    FleetEpochRow row;
    row.epoch = r.u32();
    row.start = r.u64();
    row.end = r.u64();
    row.budgetW.resize(r.u32());
    for (double &b : row.budgetW)
        b = r.f64();
    row.measuredW.resize(r.u32());
    for (double &m : row.measuredW)
        m = r.f64();
    row.fleetW = r.f64();
    row.fleetBudgetW = r.f64();
    row.capMet = r.b();
    row.allocFeasible = r.b();
    return row;
}

} // namespace

FleetMeta
readFleetMeta(const std::string &path)
{
    SnapshotReader snap(path);
    FleetMeta meta;
    if (!snap.has("cluster"))
        return meta;
    SectionReader r = snap.section("cluster");
    meta.valid = true;
    meta.numServers = r.u32();
    meta.policy = r.str();
    meta.capW = r.f64();
    meta.coordEpoch = r.u64();
    r.u64();   // fleet seed
    r.u64();   // horizon
    r.u64();   // server epoch length
    for (std::uint32_t i = r.u32(); i > 0; --i)
        r.f64();   // weights
    for (std::uint32_t i = r.u32(); i > 0; --i)
        r.f64();   // rate scales
    for (std::uint32_t i = r.u32(); i > 0; --i)
        r.u8();    // demand mixes
    meta.epochsDone = r.u32();
    for (std::uint32_t k = 0; k < meta.numServers; ++k) {
        restoreTelemetry(r);
        r.f64();   // cumulative energy baseline
    }
    const std::uint32_t nrows = r.u32();
    for (std::uint32_t i = 0; i < nrows; ++i) {
        FleetEpochRow row = restoreRow(r);
        if (i + 1 == nrows) {
            meta.budgetW = row.budgetW;
            meta.lastFleetW = row.fleetW;
        }
    }
    return meta;
}

ClusterHarness::ClusterHarness(const ClusterConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numServers == 0)
        fatal("cluster: need at least one server");
    if (!cfg_.server.serving.enabled)
        fatal("cluster: the per-server template must enable the "
              "serving front end");
    if (cfg_.coordEpoch == 0)
        fatal("cluster: zero coordination epoch");
    if (cfg_.coordEpoch < cfg_.server.epochLen)
        fatal("cluster: coordination epoch (%0.3f ms) must cover at "
              "least one policy epoch (%0.3f ms)",
              tickToMs(cfg_.coordEpoch),
              tickToMs(cfg_.server.epochLen));
    if (cfg_.scratchDir.empty())
        fatal("cluster: scratchDir is required (per-server "
              "checkpoint chains live there)");
    for (double w : cfg_.weights) {
        if (!(w > 0.0))
            fatal("cluster: fairness weight %g must be positive", w);
    }
    obsBudgetW_.assign(cfg_.numServers, 0.0);
    obsPowerW_.assign(cfg_.numServers, 0.0);
    obsP99Us_.assign(cfg_.numServers, 0.0);
    obsSlowdown_.assign(cfg_.numServers, 1.0);
}

SystemConfig
ClusterHarness::serverConfig(std::uint32_t k) const
{
    SystemConfig c = cfg_.server;
    // Index-keyed stream derivation: server k's seed depends only on
    // the fleet base seed and k, never on the fleet size.
    c.seed = deriveSeed(cfg_.server.seed, k);
    c.snapshot = SystemConfig::SnapshotOptions{};
    c.powerCapW = 0.0;
    if (!cfg_.rateScale.empty())
        c.serving.arrival.ratePerSec *=
            cfg_.rateScale[k % cfg_.rateScale.size()];
    if (!cfg_.demandMix.empty())
        c.serving.demandMix = cfg_.demandMix[k % cfg_.demandMix.size()];
    return c;
}

void
ClusterHarness::registerStats(StatRegistry &reg)
{
    for (std::uint32_t k = 0; k < cfg_.numServers; ++k) {
        const std::string p = "server" + std::to_string(k);
        reg.addGauge(p + ".budgetW", &obsBudgetW_[k]);
        reg.addGauge(p + ".powerW", &obsPowerW_[k]);
        reg.addGauge(p + ".p99Us", &obsP99Us_[k]);
        reg.addGauge(p + ".slowdown", &obsSlowdown_[k]);
    }
    reg.addGauge("fleet.powerW", &obsFleetW_);
    reg.addGauge("fleet.capW", [this] { return cfg_.capW; });
    reg.addGauge("fleet.epoch", &obsEpoch_);
}

FleetResult
ClusterHarness::run()
{
    const std::uint32_t n = cfg_.numServers;
    const Tick horizon = cfg_.server.serving.horizon;
    std::vector<Tick> cuts;
    for (Tick t = cfg_.coordEpoch; t < horizon; t += cfg_.coordEpoch)
        cuts.push_back(t);
    const std::size_t num_epochs = cuts.size() + 1;

    auto weight = [&](std::uint32_t k) {
        return cfg_.weights.empty()
                   ? 1.0
                   : cfg_.weights[k % cfg_.weights.size()];
    };
    std::vector<double> weights(n);
    for (std::uint32_t k = 0; k < n; ++k)
        weights[k] = weight(k);

    std::vector<ServerTelemetry> tele(n);
    std::vector<double> prev_energy(n, 0.0);
    std::vector<std::string> chain(n);
    std::vector<FleetEpochRow> rows;
    std::size_t e0 = 0;

    if (!cfg_.snapshot.resumePath.empty()) {
        SnapshotReader snap(cfg_.snapshot.resumePath);
        if (!snap.has("cluster"))
            fatal("cluster resume: %s has no cluster section",
                  cfg_.snapshot.resumePath.c_str());
        SectionReader r = snap.section("cluster");
        auto want_u64 = [&r](const char *what, std::uint64_t want) {
            const std::uint64_t got = r.u64();
            if (got != want)
                fatal("cluster resume: snapshot %s %llu does not "
                      "match run %llu",
                      what, static_cast<unsigned long long>(got),
                      static_cast<unsigned long long>(want));
        };
        const std::uint32_t ns = r.u32();
        if (ns != n)
            fatal("cluster resume: snapshot has %u servers, run has "
                  "%u",
                  ns, n);
        const std::string pol = r.str();
        if (pol != cfg_.policy)
            fatal("cluster resume: snapshot policy %s does not match "
                  "run %s",
                  pol.c_str(), cfg_.policy.c_str());
        const double cap = r.f64();
        if (cap != cfg_.capW)
            fatal("cluster resume: snapshot cap %.17g does not match "
                  "run %.17g",
                  cap, cfg_.capW);
        want_u64("coordination epoch", cfg_.coordEpoch);
        want_u64("fleet seed", cfg_.server.seed);
        want_u64("horizon", horizon);
        want_u64("server epoch length", cfg_.server.epochLen);
        auto want_list = [&r](const char *what,
                              const std::vector<double> &want) {
            const std::uint32_t cnt = r.u32();
            if (cnt != want.size())
                fatal("cluster resume: snapshot has %u %s, run has "
                      "%zu",
                      cnt, what, want.size());
            for (std::uint32_t i = 0; i < cnt; ++i) {
                const double got = r.f64();
                if (got != want[i])
                    fatal("cluster resume: snapshot %s[%u] %.17g "
                          "does not match run %.17g",
                          what, i, got, want[i]);
            }
        };
        want_list("weights", cfg_.weights);
        want_list("rate scales", cfg_.rateScale);
        const std::uint32_t nmix = r.u32();
        if (nmix != cfg_.demandMix.size())
            fatal("cluster resume: snapshot has %u demand mixes, run "
                  "has %zu",
                  nmix, cfg_.demandMix.size());
        for (std::uint32_t i = 0; i < nmix; ++i) {
            const std::uint8_t m = r.u8();
            if (m != static_cast<std::uint8_t>(cfg_.demandMix[i]))
                fatal("cluster resume: demand mix[%u] mismatch", i);
        }
        const std::uint32_t done = r.u32();
        if (done == 0 || done > cuts.size())
            fatal("cluster resume: snapshot epoch cursor %u out of "
                  "range (run has %zu cuts)",
                  done, cuts.size());
        e0 = done;
        for (std::uint32_t k = 0; k < n; ++k) {
            tele[k] = restoreTelemetry(r);
            prev_energy[k] = r.f64();
            chain[k] =
                serverSnapshotPath(cfg_.snapshot.resumePath, k);
        }
        rows.resize(r.u32());
        for (FleetEpochRow &row : rows)
            row = restoreRow(r);
    }

    if (cfg_.snapshot.atEpoch > 0) {
        if (cfg_.snapshot.out.empty())
            fatal("cluster: fleet cut requested without an output "
                  "path");
        if (cfg_.snapshot.atEpoch > cuts.size())
            fatal("cluster: fleet cut after epoch %u, but the "
                  "horizon only spans %zu full epochs",
                  cfg_.snapshot.atEpoch, cuts.size());
        if (cfg_.snapshot.atEpoch <= e0)
            fatal("cluster: fleet cut after epoch %u is already "
                  "behind the resume cursor %zu",
                  cfg_.snapshot.atEpoch, e0);
    }

    SweepEngine eng(cfg_.jobs);
    std::vector<RunResult> results(n);
    FleetResult out;

    for (std::size_t e = e0; e < num_epochs; ++e) {
        const Tick start = e == 0 ? 0 : cuts[e - 1];
        const Tick end = e < cuts.size() ? cuts[e] : horizon;
        const double dt_sec = tickToSec(end - start);

        // Budgets for epoch e come from epoch e-1's telemetry — the
        // coordinator always acts on stale-by-one-epoch reports.  The
        // first epoch has none, so the cap splits by weight alone.
        BudgetAllocation alloc;
        if (cfg_.capW > 0.0) {
            bool have_tele = true;
            for (const ServerTelemetry &t : tele)
                have_tele = have_tele && t.valid;
            if (have_tele) {
                alloc = allocateFleetBudget(cfg_.capW, tele, weights);
            } else {
                double wsum = 0.0;
                for (double w : weights)
                    wsum += w;
                alloc.budgetW.resize(n);
                for (std::uint32_t k = 0; k < n; ++k)
                    alloc.budgetW[k] =
                        cfg_.capW * weights[k] / wsum;
            }
        }

        const bool fleet_cut = cfg_.snapshot.atEpoch > 0 &&
                               e + 1 == cfg_.snapshot.atEpoch;

        std::vector<SystemConfig> scfgs(n);
        for (std::uint32_t k = 0; k < n; ++k) {
            SystemConfig c = serverConfig(k);
            c.powerCapW =
                alloc.budgetW.empty() ? 0.0 : alloc.budgetW[k];
            c.snapshot.resumePath = chain[k];
            if (e < cuts.size()) {
                c.snapshot.at = cuts[e];
                c.snapshot.stopAfter = true;
                c.snapshot.out =
                    fleet_cut
                        ? serverSnapshotPath(cfg_.snapshot.out, k)
                        : cfg_.scratchDir + "/fleet_s" +
                              std::to_string(k) + "_e" +
                              std::to_string(e);
            }
            scfgs[k] = c;
        }

        // One shard per server, fanned out across the sweep pool.
        // Results and telemetry are keyed by server index, so the
        // outcome is bit-identical at any --jobs.
        std::vector<ServerTelemetry> new_tele(n);
        eng.forEach(n, [&](std::size_t k) {
            auto p = makePolicy(cfg_.policy);
            System sys(scfgs[k], *p);
            results[k] = sys.run();
            ServerTelemetry t;
            t.valid = true;
            t.measuredW =
                (results[k].energy.total() - prev_energy[k]) /
                dt_sec;
            const auto *fc =
                dynamic_cast<const FastCapPolicy *>(p.get());
            if (fc != nullptr && fc->telemetry().valid) {
                t.demandW = fc->telemetry().demandW;
                t.minW = fc->telemetry().minW;
                t.slowdown = fc->telemetry().slowdown;
            } else {
                // Cap-oblivious policies report measurements only:
                // the coordinator still splits the budget, the server
                // just won't honour it.
                t.demandW = t.measuredW;
                t.minW = 0.0;
                t.slowdown = 1.0;
            }
            new_tele[k] = t;
        });

        FleetEpochRow row;
        row.epoch = static_cast<std::uint32_t>(e);
        row.start = start;
        row.end = end;
        row.budgetW = alloc.budgetW;
        row.allocFeasible = alloc.feasible;
        for (std::uint32_t k = 0; k < n; ++k) {
            if (e < cuts.size()) {
                if (!results[k].stoppedAtCheckpoint)
                    fatal("cluster: server %u ran past the epoch cut "
                          "at %0.3f ms",
                          k, tickToMs(cuts[e]));
                chain[k] = results[k].checkpointsWritten.back();
            }
            prev_energy[k] = results[k].energy.total();
            row.measuredW.push_back(new_tele[k].measuredW);
            row.fleetW += new_tele[k].measuredW;
        }
        for (double b : row.budgetW)
            row.fleetBudgetW += b;
        row.capMet = cfg_.capW <= 0.0 ||
                     row.fleetW <= cfg_.capW * (1.0 + 1e-9);
        rows.push_back(row);
        tele = new_tele;

        obsEpoch_ = static_cast<double>(e);
        obsFleetW_ = row.fleetW;
        for (std::uint32_t k = 0; k < n; ++k) {
            obsBudgetW_[k] =
                row.budgetW.empty() ? 0.0 : row.budgetW[k];
            obsPowerW_[k] = row.measuredW[k];
            obsP99Us_[k] = results[k].serving.p99Us;
            obsSlowdown_[k] = new_tele[k].slowdown;
        }

        if (fleet_cut) {
            SnapshotWriter sw;
            SectionWriter &w = sw.section("cluster");
            w.u32(n);
            w.str(cfg_.policy);
            w.f64(cfg_.capW);
            w.u64(cfg_.coordEpoch);
            w.u64(cfg_.server.seed);
            w.u64(horizon);
            w.u64(cfg_.server.epochLen);
            w.u32(static_cast<std::uint32_t>(cfg_.weights.size()));
            for (double v : cfg_.weights)
                w.f64(v);
            w.u32(static_cast<std::uint32_t>(cfg_.rateScale.size()));
            for (double v : cfg_.rateScale)
                w.f64(v);
            w.u32(static_cast<std::uint32_t>(cfg_.demandMix.size()));
            for (DemandMix m : cfg_.demandMix)
                w.u8(static_cast<std::uint8_t>(m));
            w.u32(static_cast<std::uint32_t>(e + 1));
            for (std::uint32_t k = 0; k < n; ++k) {
                saveTelemetry(w, tele[k]);
                w.f64(prev_energy[k]);
            }
            w.u32(static_cast<std::uint32_t>(rows.size()));
            for (const FleetEpochRow &rw : rows)
                saveRow(w, rw);
            sw.writeFile(cfg_.snapshot.out);
            out.fleetSnapshotPath = cfg_.snapshot.out;
            if (cfg_.snapshot.stopAfter) {
                out.stoppedAtCheckpoint = true;
                break;
            }
        }
    }

    out.servers = results;
    out.epochs = rows;
    std::uint64_t h = fleetHashSeed;
    for (const RunResult &r : results)
        h = splitmix64(h ^ hashRunResult(r));
    out.fleetHash = h;
    for (const RunResult &r : results)
        out.fleetEnergyJ += r.energy.total();
    for (const FleetEpochRow &row : rows) {
        out.peakEpochW = std::max(out.peakEpochW, row.fleetW);
        if (cfg_.capW > 0.0 && !row.capMet)
            ++out.capViolations;
    }
    const double slo = cfg_.server.serving.sloP99Us;
    if (slo > 0.0) {
        std::uint32_t met = 0;
        for (const RunResult &r : results)
            met += r.serving.p99Us <= slo ? 1 : 0;
        out.sloAttainment =
            static_cast<double>(met) / static_cast<double>(n);
    } else {
        out.sloAttainment = 1.0;
    }
    std::vector<double> slowdowns;
    for (const ServerTelemetry &t : tele)
        if (t.valid)
            slowdowns.push_back(t.slowdown);
    out.jainSlowdown = jainIndex(slowdowns);
    return out;
}

} // namespace memscale
