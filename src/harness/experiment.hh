/**
 * @file
 * Experiment driver: baseline calibration (rest-of-system wattage per
 * paper Section 4.1), baseline-vs-policy comparisons, and the savings
 * metrics every figure reports.
 */

#ifndef MEMSCALE_HARNESS_EXPERIMENT_HH
#define MEMSCALE_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "harness/system.hh"

namespace memscale
{

class SweepEngine;

/** Baseline-relative outcome of one policy on one mix. */
struct ComparisonResult
{
    RunResult base;
    RunResult policy;
    double memEnergySavings = 0.0;   ///< 1 - E_mem/E_mem_base
    double sysEnergySavings = 0.0;   ///< 1 - E_sys/E_sys_base
    std::vector<double> cpiIncrease; ///< per core, fractional
    double avgCpiIncrease = 0.0;
    double worstCpiIncrease = 0.0;
};

/**
 * Run the reference (max-frequency, no-powerdown) configuration and
 * return it with the rest-of-system energy patched in so the memory
 * subsystem accounts for cfg.memPowerFraction of server power.
 * @param rest_out receives the calibrated wattage.
 */
RunResult runBaseline(const SystemConfig &cfg, Watts &rest_out);

/** Run one named policy with a known rest-of-system wattage. */
RunResult runPolicy(const SystemConfig &cfg, const std::string &policy,
                    Watts rest_watts);

/**
 * Run one policy as a chain of time shards: the run is cut at each
 * tick in `cuts` (ascending), a checkpoint is written to
 * `scratch_prefix`.shard<N>, and the next shard resumes from it.  The
 * final shard's RunResult is returned and is bit-identical to the
 * uninterrupted runPolicy() — the resume-equivalence property the
 * snapshot tests pin.  Shards whose workload finishes before their
 * cut simply end the chain early.
 */
RunResult runPolicySharded(const SystemConfig &cfg,
                           const std::string &policy, Watts rest_watts,
                           const std::vector<Tick> &cuts,
                           const std::string &scratch_prefix);

/** Compare a policy against a precomputed calibrated baseline. */
ComparisonResult compareWithBase(const SystemConfig &cfg,
                                 const RunResult &base,
                                 Watts rest_watts,
                                 const std::string &policy);

/** Baseline + policy in one call. */
ComparisonResult compare(const SystemConfig &cfg,
                         const std::string &policy);

/** Mean and spread of a metric over repeated seeds. */
struct SeededMetric
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Multi-seed comparison summary (workload-generation variance). */
struct AveragedComparison
{
    SeededMetric memEnergySavings;
    SeededMetric sysEnergySavings;
    SeededMetric worstCpiIncrease;
    std::size_t seeds = 0;
};

/**
 * Repeat compare() over `seeds` seeds derived via deriveSeed() (see
 * common/rng.hh) and summarize.  Useful for judging whether an effect
 * exceeds synthetic-workload noise.  Runs on its own sweep pool sized
 * by resolveJobs(); statistics are accumulated in seed order, so the
 * summary is identical for any thread count.
 */
AveragedComparison compareAveraged(const SystemConfig &cfg,
                                   const std::string &policy,
                                   std::size_t seeds);

/** As above, fanning the per-seed runs out on an existing engine. */
AveragedComparison compareAveraged(const SweepEngine &eng,
                                   const SystemConfig &cfg,
                                   const std::string &policy,
                                   std::size_t seeds);

} // namespace memscale

#endif // MEMSCALE_HARNESS_EXPERIMENT_HH
