/**
 * @file
 * Full-system wiring: cores + synthetic trace sources + memory
 * controller + power integrator + policy (+ epoch controller for
 * dynamic policies), run to completion of a workload mix.
 */

#ifndef MEMSCALE_HARNESS_SYSTEM_HH
#define MEMSCALE_HARNESS_SYSTEM_HH

#include <string>
#include <vector>

#include <memory>

#include "check/protocol_checker.hh"
#include "common/types.hh"
#include "harness/serving.hh"
#include "obs/epoch_recorder.hh"
#include "mem/config.hh"
#include "workload/app_profile.hh"
#include "mem/counters.hh"
#include "memscale/epoch_controller.hh"
#include "memscale/policies/policy.hh"
#include "power/params.hh"
#include "power/system_power.hh"
#include "sim/event_queue.hh"

namespace memscale
{

struct SystemConfig
{
    std::string mixName = "MID1";
    std::uint32_t numCores = 16;
    double cpuGHz = 4.0;
    /**
     * Instructions per application instance.  The paper runs 100M
     * SimPoints; benches default to a scaled-down budget with phase
     * schedules scaled to match (see workload/mixes.hh).
     */
    std::uint64_t instrBudget = 5'000'000;

    MemConfig mem;
    PowerParams power;

    double gamma = 0.10;               ///< max CPI degradation
    Tick epochLen = msToTick(5.0);
    Tick profileLen = usToTick(300.0);

    /** Non-memory system power; 0 means "to be calibrated". */
    Watts restWatts = 0.0;
    /** Memory subsystem share of server power at the baseline. */
    double memPowerFraction = 0.40;

    /**
     * Server power budget in Watts handed to cap-aware policies
     * (fastcap); 0 means uncapped.  A runtime knob like threads or
     * jobs: the cluster coordinator re-assigns it every coordination
     * epoch, so it is deliberately NOT part of the snapshot
     * fingerprint — a resumed shard may carry a different budget.
     */
    Watts powerCapW = 0.0;

    std::uint64_t seed = 12345;

    /**
     * When non-empty, cores cycle through these profiles instead of
     * the named mix (library users can define arbitrary workloads);
     * mixName then only labels the results.
     */
    std::vector<AppProfile> customApps;

    /**
     * Track CPU core energy explicitly (coordinated-DVFS extension).
     * Off by default: the paper keeps CPU power inside the fixed
     * rest-of-system draw, and baseline calibration subtracts the
     * modelled CPU power from it when this is on.
     */
    bool modelCpuPower = false;

    /** Hard wall on simulated time (guards runaway experiments). */
    Tick maxSimTime = msToTick(2000.0);

    /**
     * Event-kernel implementation (sim/event_queue).  Reference is the
     * simple sorted-list oracle used by the differential harness; both
     * modes must produce bit-identical results.
     */
    KernelMode kernelMode = KernelMode::Fast;

    /**
     * Bound/weave worker threads (sim/weave).  1 (the default) runs
     * today's purely serial kernel; N > 1 keeps the global event loop
     * serial (the "bound" phase, which fixes all timing) but defers
     * per-channel accounting — command-stream validation, rank
     * residency integration, trace pre-generation — to a worker pool
     * that drains it at policy/sampling barriers (the "weave" phase).
     * Results are bit-identical at every thread count; the goldens and
     * the differential harness's threadDiff() pin this.  Not part of
     * the result identity (flattenRunResult ignores it).
     */
    unsigned threads = 1;

    /**
     * Attach the online DDR3 protocol checker (check/protocol_checker)
     * to every channel.  Violations are counted in RunResult; with
     * strictCheck (or MEMSCALE_STRICT=1 / -DMEMSCALE_STRICT=ON) the
     * first violation aborts the run.
     */
    bool protocolCheck = false;
    bool strictCheck = false;

    /**
     * Observability (src/obs): build a StatRegistry over the whole
     * component tree and record a per-epoch columnar timeline into
     * RunResult::obs.  Off by default; the recording path is purely
     * read-only, so enabling it leaves every simulation result —
     * including the golden state hashes — bit-identical.
     */
    bool observe = false;

    /**
     * Checkpoint/restore (src/snapshot).  Snapshot writers are
     * EvEphemeral Sample-class events and pure readers of simulation
     * state, so a run that writes checkpoints remains bit-identical
     * to one that doesn't — the golden hashes pin this.
     */
    struct SnapshotOptions
    {
        /** Write `out`.<tick> every this many ticks (0 disables). */
        Tick every = 0;
        /** Write `out` once at this absolute tick (0 disables). */
        Tick at = 0;
        /** Stop the run right after the `at` snapshot (sharding). */
        bool stopAfter = false;
        /** Output path: exact for `at`, prefix for `every`. */
        std::string out;
        /** Resume from this snapshot instead of starting at tick 0. */
        std::string resumePath;
    };
    SnapshotOptions snapshot;

    /**
     * Open-loop serving front end (harness/serving).  When enabled,
     * the synthetic trace cores are replaced by ServingWorkers fed
     * from an arrival process; the run ends at serving.horizon
     * instead of at an instruction budget.
     */
    ServingOptions serving;

    PolicyContext policyContext() const;
};

struct RunResult
{
    std::string mixName;
    std::string policyName;
    Tick runtime = 0;                    ///< last core's finish tick
    std::vector<double> coreCpi;         ///< budget CPI per core
    std::vector<std::uint64_t> coreTlm;  ///< LLC misses per core
    std::vector<std::string> coreApp;
    EnergyBreakdown energy;              ///< integrated over the run
    McCounters counters;                 ///< cumulative at end
    std::vector<EpochRecord> timeline;   ///< dynamic policies only
    Watts avgMemPower = 0.0;             ///< DIMMs + MC
    Watts avgDimmPower = 0.0;
    Watts avgSystemPower = 0.0;
    double measuredRpki = 0.0;
    double measuredWpki = 0.0;
    bool hitTimeLimit = false;
    /// @name Protocol-checker results (zero unless protocolCheck).
    /// @{
    std::uint64_t protocolViolations = 0;
    std::uint64_t commandsChecked = 0;
    std::vector<std::string> protocolViolationSamples;
    /// @}

    /**
     * Recorded epoch timeline + stat snapshots (cfg.observe runs
     * only; null otherwise).  Shared so RunResult stays cheap to
     * copy through the sweep/differential plumbing, which ignores it:
     * the state hashes and field diffs cover simulation outputs only.
     */
    std::shared_ptr<const EpochRecorder> obs;

    /// @name Checkpoint bookkeeping (excluded from result hashing —
    /// a sharded chain's final result must equal the unsharded run's).
    /// @{
    bool stoppedAtCheckpoint = false;
    std::vector<std::string> checkpointsWritten;
    /// @}

    /**
     * Open-loop serving metrics (serving runs only; valid is false
     * otherwise).  Flattened into the differential-harness vector
     * only when valid, so closed-loop hashes are untouched.
     */
    ServingStats serving;

    double avgCpi() const;
    double worstCpi() const;
};

/**
 * Summary block of a snapshot's "meta" section, exposed so tests and
 * tools can probe what a checkpoint caught mid-flight (in-flight
 * requests, powered-down ranks, pending relock/refresh events)
 * without restoring it.
 */
struct SnapshotMeta
{
    std::string mixName;
    std::string policyName;
    Tick now = 0;
    std::uint32_t doneCores = 0;
    std::uint32_t pendingEvents = 0;
    std::uint64_t inFlightRequests = 0;
    std::uint32_t ranksPoweredDown = 0;
    std::uint32_t pendingRelocks = 0;
    std::uint32_t pendingRefreshes = 0;
};

/** Parse a snapshot file's meta block (fatal on unreadable files). */
SnapshotMeta readSnapshotMeta(const std::string &path);

class System
{
  public:
    System(const SystemConfig &cfg, Policy &policy);

    /** Run the mix to completion and collect results. */
    RunResult run();

  private:
    SystemConfig cfg_;
    Policy &policy_;
};

} // namespace memscale

#endif // MEMSCALE_HARNESS_SYSTEM_HH
