/**
 * @file
 * Parallel sweep engine for independent simulation runs.
 *
 * Every figure reproduction fans out the same shape of work — mix x
 * policy x seed x config points, each an isolated `System` run — so
 * the harness provides one fixed-size thread pool with a
 * work-stealing task queue to run them concurrently.  Determinism is
 * preserved by construction: results are keyed by task index, never
 * by completion order, so a sweep produces byte-identical reports
 * whether it runs on 1 thread or 16.
 *
 * Job-count control, in increasing precedence: hardware concurrency,
 * the MEMSCALE_JOBS environment variable, an explicit `jobs=N` /
 * `--jobs N` argument.  `jobs=1` is a graceful fallback that executes
 * every task inline on the calling thread without spawning anything.
 */

#ifndef MEMSCALE_HARNESS_SWEEP_HH
#define MEMSCALE_HARNESS_SWEEP_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/system.hh"

namespace memscale
{

/**
 * Hard ceiling on the worker count.  Sweeps are CPU-bound, so more
 * workers than this is never useful and usually a sign of a bogus
 * jobs value (e.g. a negative number cast to unsigned).
 */
inline constexpr unsigned MaxJobs = 1024;

/**
 * Resolve an effective worker count: `requested` if non-zero, else
 * the MEMSCALE_JOBS environment variable, else the number of hardware
 * threads (at least 1).  Values above MaxJobs are clamped with a
 * warning.
 */
unsigned resolveJobs(unsigned requested = 0);

/**
 * Validate a user-supplied (possibly signed) jobs value: negative is
 * fatal, oversized is clamped, 0 still means "auto" for the
 * SweepEngine constructor.
 */
unsigned checkedJobs(long long requested);

class SweepEngine
{
  public:
    /** jobs == 0 resolves via resolveJobs(). */
    explicit SweepEngine(unsigned jobs = 0);
    ~SweepEngine();

    SweepEngine(SweepEngine &&) noexcept;
    SweepEngine &operator=(SweepEngine &&) noexcept;

    /** Effective worker count (>= 1, includes the calling thread). */
    unsigned jobs() const;

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     * Tasks must be independent of each other.  If any task throws,
     * the remaining tasks still run and the exception from the
     * lowest-indexed failing task is rethrown afterwards (so failure
     * reporting is deterministic too).
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn) const;

    /**
     * Parallel map: out[i] = fn(i), with forEach()'s guarantees.
     * T must be default-constructible and movable.
     */
    template <typename T>
    std::vector<T>
    map(std::size_t n, const std::function<T(std::size_t)> &fn) const
    {
        std::vector<T> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One point of a comparison sweep: a configuration and a policy. */
struct SweepCase
{
    SystemConfig cfg;
    std::string policy;
};

/** Calibrated baseline of one configuration (see runBaseline()). */
struct CalibratedBaseline
{
    RunResult base;
    Watts rest = 0.0;
};

/**
 * compare() every case concurrently; result[i] corresponds to
 * cases[i].  Each task runs its own baseline + policy pair.
 */
std::vector<ComparisonResult>
compareCases(const SweepEngine &eng, const std::vector<SweepCase> &cases);

/** runBaseline() every configuration concurrently. */
std::vector<CalibratedBaseline>
runBaselines(const SweepEngine &eng,
             const std::vector<SystemConfig> &cfgs);

/**
 * The policy-grid shape shared by the figure drivers: every policy
 * against every pre-calibrated (cfg, baseline) pair.  The result for
 * policy p on config i lands at [p * cfgs.size() + i].
 */
std::vector<ComparisonResult>
comparePolicyGrid(const SweepEngine &eng,
                  const std::vector<SystemConfig> &cfgs,
                  const std::vector<CalibratedBaseline> &bases,
                  const std::vector<std::string> &policies);

} // namespace memscale

#endif // MEMSCALE_HARNESS_SWEEP_HH
