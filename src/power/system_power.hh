/**
 * @file
 * Full-system energy accounting: DRAM categories + PLL/register + MC +
 * rest-of-system, integrated over intervals of constant frequency.
 */

#ifndef MEMSCALE_POWER_SYSTEM_POWER_HH
#define MEMSCALE_POWER_SYSTEM_POWER_HH

#include <vector>

#include "common/types.hh"
#include "dram/rank.hh"
#include "dram/timing.hh"
#include "power/dram_power.hh"
#include "power/params.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;

/** System-wide energy split (the categories of Figs. 2 and 10). */
struct EnergyBreakdown
{
    Joules background = 0;
    Joules actPre = 0;
    Joules readWrite = 0;
    Joules termination = 0;
    Joules refresh = 0;
    Joules pllReg = 0;   ///< DIMM PLL + register devices
    Joules mc = 0;       ///< memory controller
    /**
     * CPU cores, tracked explicitly only under the coordinated-DVFS
     * extension (zero otherwise; CPU power then sits inside rest).
     */
    Joules cpu = 0;
    Joules rest = 0;     ///< everything outside the memory subsystem

    /** DRAM-device energy (what Decoupled DIMMs attacks). */
    Joules
    dram() const
    {
        return background + actPre + readWrite + termination + refresh;
    }

    /** DIMM energy: DRAM devices + on-DIMM PLL/register. */
    Joules dimm() const { return dram() + pllReg; }

    /** Memory subsystem: DIMMs + memory controller. */
    Joules memorySubsystem() const { return dimm() + mc; }

    Joules total() const { return memorySubsystem() + cpu + rest; }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
    EnergyBreakdown operator-(const EnergyBreakdown &o) const;

    /** @name Checkpoint/restore (bit-exact double round-trip). */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}
};

/**
 * Activity of the memory system over one constant-frequency interval,
 * produced by the memory controller's sampling interface.
 */
struct IntervalActivity
{
    Tick dt = 0;                       ///< interval length
    std::uint32_t busMHz = 800;        ///< channel frequency in effect
    /**
     * DRAM device frequency; differs from busMHz only under Decoupled
     * DIMMs.  0 means "same as busMHz".
     */
    std::uint32_t deviceBusMHz = 0;
    std::uint32_t ranksPerChannel = 4;
    std::uint32_t numDimms = 8;
    std::vector<RankActivity> ranks;   ///< per-rank deltas, channel-major
    std::vector<Tick> channelBurst;    ///< per-channel total burst time
    /**
     * Per-channel bus frequencies (per-channel DVFS extension); empty
     * means every channel runs at busMHz.
     */
    std::vector<std::uint32_t> channelMHz;
};

/**
 * Integrates IntervalActivity windows into a cumulative
 * EnergyBreakdown.  Rest-of-system power is a fixed wattage set by
 * the harness calibration (Section 4.1: DIMMs = 40% of server power
 * at the baseline).
 */
class SystemEnergyIntegrator
{
  public:
    SystemEnergyIntegrator(const PowerParams &pp, Watts rest_watts)
        : pp_(pp), restW_(rest_watts)
    {}

    /** Add one constant-frequency interval. */
    void addInterval(const IntervalActivity &ia);

    /** Add explicitly-modelled CPU energy (coordinated DVFS). */
    void addCpuEnergy(Joules j) { total_.cpu += j; }

    const EnergyBreakdown &energy() const { return total_; }
    Tick elapsed() const { return elapsed_; }

    /** Average power over everything integrated so far. */
    Watts averagePower() const;
    /** Average memory-subsystem power so far. */
    Watts averageMemoryPower() const;
    /** Average DIMM (DRAM + PLL/reg) power so far. */
    Watts averageDimmPower() const;

    Watts restOfSystemWatts() const { return restW_; }
    void setRestOfSystemWatts(Watts w) { restW_ = w; }

    const PowerParams &params() const { return pp_; }

    /** @name Checkpoint/restore (accumulated energy + elapsed time;
     * params and rest watts come from configuration). */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    PowerParams pp_;
    Watts restW_;
    EnergyBreakdown total_;
    Tick elapsed_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_POWER_SYSTEM_POWER_HH
