#include "power/params.hh"

#include <algorithm>

namespace memscale
{

double
PowerParams::mcVoltage(std::uint32_t bus_mhz) const
{
    // Voltage tracks frequency linearly across the usable grid.
    double span = static_cast<double>(nominalBusMHz - minBusMHz);
    double t = (static_cast<double>(bus_mhz) -
                static_cast<double>(minBusMHz)) / span;
    t = std::clamp(t, 0.0, 1.0);
    return mcVMin + t * (mcVMax - mcVMin);
}

Watts
PowerParams::mcPower(std::uint32_t bus_mhz, double utilization) const
{
    utilization = std::clamp(utilization, 0.0, 1.0);
    double idle = proportionality * mcPeakW;
    double base = idle + (mcPeakW - idle) * utilization;
    double v = mcVoltage(bus_mhz) / mcVMax;
    double f = static_cast<double>(bus_mhz) /
               static_cast<double>(nominalBusMHz);
    return base * v * v * f;
}

Watts
PowerParams::registerPower(std::uint32_t bus_mhz,
                           double utilization) const
{
    utilization = std::clamp(utilization, 0.0, 1.0);
    double idle = proportionality * regPeakW;
    double base = idle + (regPeakW - idle) * utilization;
    return base * freqScale(bus_mhz);
}

Watts
PowerParams::pllPower(std::uint32_t bus_mhz) const
{
    return pllW * freqScale(bus_mhz);
}

double
PowerParams::cpuVoltage(double ghz) const
{
    double t = (ghz - cpuMinGHz) / (cpuNominalGHz - cpuMinGHz);
    t = std::clamp(t, 0.0, 1.0);
    return cpuVMin + t * (cpuVMax - cpuVMin);
}

Watts
PowerParams::cpuCorePower(double ghz, double utilization) const
{
    utilization = std::clamp(utilization, 0.0, 1.0);
    double v = cpuVoltage(ghz) / cpuVMax;
    double f = ghz / cpuNominalGHz;
    double dyn = (1.0 - cpuStaticFrac) * cpuCorePeakW * v * v * f *
                 utilization;
    double stat = cpuStaticFrac * cpuCorePeakW * v;
    return dyn + stat;
}

} // namespace memscale
