/**
 * @file
 * Micron-power-calculator-style DRAM energy model (paper ref [33]),
 * operating on RankActivity windows.
 *
 * The same model serves two callers: the "ground truth" system energy
 * integrator (fed with measured rank activity) and the MemScale
 * policy's energy predictor (fed with counter-derived estimates), so
 * policy decisions and accounting can never diverge on formula bugs.
 */

#ifndef MEMSCALE_POWER_DRAM_POWER_HH
#define MEMSCALE_POWER_DRAM_POWER_HH

#include "common/types.hh"
#include "dram/rank.hh"
#include "dram/timing.hh"
#include "power/params.hh"

namespace memscale
{

/** Energy consumed by one rank over an activity window, by category. */
struct RankEnergy
{
    Joules background = 0;   ///< standby/powerdown currents
    Joules actPre = 0;       ///< activate + precharge operations
    Joules readWrite = 0;    ///< column access bursts
    Joules termination = 0;  ///< ODT on this rank's chips
    Joules refresh = 0;      ///< refresh bursts

    Joules
    total() const
    {
        return background + actPre + readWrite + termination + refresh;
    }

    RankEnergy &operator+=(const RankEnergy &o);
};

/**
 * Energy of one rank for an activity window at one operating point.
 *
 * @param act           activity delta for the window
 * @param tp            timing parameters in effect during the window
 * @param pp            power parameters
 * @param other_burst   time during the window that *other* ranks on
 *                      the same channel were bursting (drives ODT)
 */
RankEnergy rankEnergy(const RankActivity &act, const TimingParams &tp,
                      const PowerParams &pp, Tick other_burst);

/** Average power over a window (convenience wrapper). */
Watts rankAveragePower(const RankActivity &act, const TimingParams &tp,
                       const PowerParams &pp, Tick other_burst);

} // namespace memscale

#endif // MEMSCALE_POWER_DRAM_POWER_HH
