#include "power/system_power.hh"

#include <algorithm>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    background += o.background;
    actPre += o.actPre;
    readWrite += o.readWrite;
    termination += o.termination;
    refresh += o.refresh;
    pllReg += o.pllReg;
    mc += o.mc;
    cpu += o.cpu;
    rest += o.rest;
    return *this;
}

EnergyBreakdown
EnergyBreakdown::operator-(const EnergyBreakdown &o) const
{
    EnergyBreakdown r;
    r.background = background - o.background;
    r.actPre = actPre - o.actPre;
    r.readWrite = readWrite - o.readWrite;
    r.termination = termination - o.termination;
    r.refresh = refresh - o.refresh;
    r.pllReg = pllReg - o.pllReg;
    r.mc = mc - o.mc;
    r.cpu = cpu - o.cpu;
    r.rest = rest - o.rest;
    return r;
}

void
EnergyBreakdown::saveState(SectionWriter &w) const
{
    w.f64(background);
    w.f64(actPre);
    w.f64(readWrite);
    w.f64(termination);
    w.f64(refresh);
    w.f64(pllReg);
    w.f64(mc);
    w.f64(cpu);
    w.f64(rest);
}

void
EnergyBreakdown::restoreState(SectionReader &r)
{
    background = r.f64();
    actPre = r.f64();
    readWrite = r.f64();
    termination = r.f64();
    refresh = r.f64();
    pllReg = r.f64();
    mc = r.f64();
    cpu = r.f64();
    rest = r.f64();
}

void
SystemEnergyIntegrator::saveState(SectionWriter &w) const
{
    total_.saveState(w);
    w.u64(elapsed_);
}

void
SystemEnergyIntegrator::restoreState(SectionReader &r)
{
    total_.restoreState(r);
    elapsed_ = r.u64();
}

void
SystemEnergyIntegrator::addInterval(const IntervalActivity &ia)
{
    if (ia.dt == 0)
        return;
    if (ia.ranks.empty() || ia.channelBurst.empty())
        panic("SystemEnergyIntegrator: empty activity sample");
    const double dtSec = tickToSec(ia.dt);
    const std::size_t numChannels = ia.channelBurst.size();
    auto chan_mhz = [&](std::size_t ch) {
        return ia.channelMHz.empty() ? ia.busMHz : ia.channelMHz[ch];
    };

    // DRAM devices, rank by rank (ranks are channel-major).  Devices
    // clock at their channel's frequency, or the Decoupled device
    // frequency when set.
    for (std::size_t r = 0; r < ia.ranks.size(); ++r) {
        std::size_t ch = r / ia.ranksPerChannel;
        std::uint32_t dev_mhz =
            ia.deviceBusMHz ? ia.deviceBusMHz
                            : chan_mhz(ch);
        const TimingParams tp = TimingParams::forBusMHz(dev_mhz);
        Tick own =
            ia.ranks[r].readBurstTime + ia.ranks[r].writeBurstTime;
        Tick chBurst = ia.channelBurst[ch];
        Tick other = chBurst > own ? chBurst - own : 0;
        RankEnergy re = rankEnergy(ia.ranks[r], tp, pp_, other);
        total_.background += re.background;
        total_.actPre += re.actPre;
        total_.readWrite += re.readWrite;
        total_.termination += re.termination;
        total_.refresh += re.refresh;
    }

    // Register/PLL follow their channel's clock; the MC clocks off
    // the fastest channel.  Utilization drives the load terms.
    Tick burstSum = 0;
    std::uint32_t mc_mhz = 0;
    const double dimmsPerChannel =
        static_cast<double>(ia.numDimms) /
        static_cast<double>(numChannels);
    for (std::size_t ch = 0; ch < numChannels; ++ch) {
        burstSum += ia.channelBurst[ch];
        mc_mhz = std::max(mc_mhz, chan_mhz(ch));
        double ch_util = static_cast<double>(ia.channelBurst[ch]) /
                         static_cast<double>(ia.dt);
        ch_util = std::min(ch_util, 1.0);
        total_.pllReg += dimmsPerChannel *
            (pp_.pllPower(chan_mhz(ch)) +
             pp_.registerPower(chan_mhz(ch), ch_util)) * dtSec;
    }
    double util = static_cast<double>(burstSum) /
                  (static_cast<double>(numChannels) *
                   static_cast<double>(ia.dt));
    total_.mc += pp_.mcPower(mc_mhz, util) * dtSec;
    total_.rest += restW_ * dtSec;
    elapsed_ += ia.dt;
}

Watts
SystemEnergyIntegrator::averagePower() const
{
    return elapsed_ ? total_.total() / tickToSec(elapsed_) : 0.0;
}

Watts
SystemEnergyIntegrator::averageMemoryPower() const
{
    return elapsed_ ? total_.memorySubsystem() / tickToSec(elapsed_)
                    : 0.0;
}

Watts
SystemEnergyIntegrator::averageDimmPower() const
{
    return elapsed_ ? total_.dimm() / tickToSec(elapsed_) : 0.0;
}

} // namespace memscale
