/**
 * @file
 * Power-model parameters (paper Table 2 plus the MC/register/PLL model
 * of Section 4.1) and the frequency/voltage scaling laws of Section
 * 2.2.
 *
 * Scaling laws implemented exactly as the paper states:
 *  - DRAM background and register/PLL power scale linearly with bus
 *    frequency.
 *  - MC power scales with V^2 * f; the MC voltage tracks frequency
 *    linearly across 0.65-1.2 V over the MC frequency range.
 *  - Read/write and termination *power* is frequency-independent
 *    (energy per access grows as bursts stretch).
 *  - Activate/precharge energy per operation is frequency-independent
 *    (device-internal).
 */

#ifndef MEMSCALE_POWER_PARAMS_HH
#define MEMSCALE_POWER_PARAMS_HH

#include <cstdint>

#include "common/types.hh"

namespace memscale
{

struct PowerParams
{
    /// @name DDR3 device currents in amperes, per chip, at 800 MHz
    /// (Table 2).
    /// @{
    double vdd = 1.575;
    double iReadWrite = 0.250;   ///< row-buffer read/write burst
    double iActPre = 0.120;      ///< activate-precharge (IDD0-style)
    double iActStandby = 0.067;  ///< active standby (IDD3N)
    double iActPowerdown = 0.045;///< active powerdown (IDD3P)
    double iPreStandby = 0.070;  ///< precharge standby (IDD2N)
    double iPrePdFast = 0.045;   ///< precharge powerdown, fast exit
    /**
     * Precharge powerdown with DLL frozen (slow exit).  Table 2 lists a
     * single powerdown current; real devices draw less with the DLL
     * off (IDD2P0 vs IDD2P1), so Slow-PD uses this reduced value.
     */
    double iPrePdSlow = 0.025;
    /**
     * Self-refresh current (IDD6-style).  Deepest idle state: the
     * device refreshes itself, so no external refresh energy is paid
     * while resident, at the cost of a tXS (~tRFC) exit penalty.
     */
    double iSelfRefresh = 0.012;
    /**
     * Self-refresh with the slow internal clock (IDD6ET-style):
     * trading the tXSDLL exit for a lower standby draw.
     */
    double iSrSlowClock = 0.008;
    /**
     * Deep powerdown (clock tree off, array self-refreshing):
     * the floor of the ladder, behind the tXDP exit penalty.
     */
    double iDeepPowerdown = 0.004;
    double iRefresh = 0.240;     ///< refresh burst (IDD5-style)
    /// @}

    /// @name Termination (ODT) power in watts per chip.
    /// @{
    double termOtherRankW = 0.025;  ///< while another rank bursts
    double termSelfWriteW = 0.050;  ///< while this rank receives writes
    /// @}

    /// @name DIMM support devices (per DIMM, at 800 MHz).
    /// @{
    double pllW = 0.5;        ///< PLL: frequency-scaled, load-invariant
    double regPeakW = 0.5;    ///< register at full channel utilization
    /// @}

    /// @name Memory controller (one per system).
    /// @{
    double mcPeakW = 15.0;    ///< at nominal V/f, 100% utilization
    double mcVMin = 0.65;     ///< MC voltage at the slowest grid point
    double mcVMax = 1.20;     ///< MC voltage at the nominal grid point
    /// @}

    /**
     * Idle power of the MC and DIMM registers as a fraction of their
     * peak ("power proportionality" knob, Fig. 15).  Default 50%:
     * MC idles at 7.5 W, register at 0.25 W.
     */
    double proportionality = 0.5;

    /// @name CPU cores (CoScale-style coordinated DVFS extension).
    /// Only used when SystemConfig::modelCpuPower is enabled; the
    /// paper's own experiments keep CPU power inside the fixed
    /// rest-of-system draw.
    /// @{
    double cpuCorePeakW = 3.0;   ///< per core at nominal V/f, busy
    double cpuStaticFrac = 0.3;  ///< leakage share, V-scaled only
    double cpuVMin = 0.65;       ///< at the slowest CPU grid point
    double cpuVMax = 1.20;       ///< at nominal
    double cpuNominalGHz = 4.0;
    double cpuMinGHz = 2.0;
    /// @}

    /** CPU core voltage at a clock (linear across the DVFS range). */
    double cpuVoltage(double ghz) const;

    /**
     * Per-core CPU power at a clock and non-stalled utilization:
     * dynamic part scales with V^2 f and utilization; static part
     * with V only.
     */
    Watts cpuCorePower(double ghz, double utilization) const;

    std::uint32_t chipsPerRank = 9;   ///< x8 parts + ECC
    std::uint32_t nominalBusMHz = 800;
    std::uint32_t minBusMHz = 200;

    /** Linear frequency derating for background/PLL/register power. */
    double
    freqScale(std::uint32_t bus_mhz) const
    {
        return static_cast<double>(bus_mhz) /
               static_cast<double>(nominalBusMHz);
    }

    /** MC supply voltage at the given bus frequency (MC runs at 2x). */
    double mcVoltage(std::uint32_t bus_mhz) const;

    /**
     * MC power at the given frequency and utilization in [0,1],
     * applying proportionality and V^2 f scaling.
     */
    Watts mcPower(std::uint32_t bus_mhz, double utilization) const;

    /** Register power per DIMM at frequency/utilization. */
    Watts registerPower(std::uint32_t bus_mhz, double utilization) const;

    /** PLL power per DIMM at the given frequency. */
    Watts pllPower(std::uint32_t bus_mhz) const;
};

} // namespace memscale

#endif // MEMSCALE_POWER_PARAMS_HH
