#include "power/dram_power.hh"

namespace memscale
{

RankEnergy &
RankEnergy::operator+=(const RankEnergy &o)
{
    background += o.background;
    actPre += o.actPre;
    readWrite += o.readWrite;
    termination += o.termination;
    refresh += o.refresh;
    return *this;
}

RankEnergy
rankEnergy(const RankActivity &act, const TimingParams &tp,
           const PowerParams &pp, Tick other_burst)
{
    RankEnergy e;
    const double chips = pp.chipsPerRank;
    const double vdd = pp.vdd;
    // Background/standby currents derate linearly with interface
    // frequency (Section 2.2); device-internal operation energies do
    // not.
    const double fscale = pp.freqScale(tp.busMHz);

    // Background: four CKE/bank-state combinations.  Slow-exit
    // powerdown time is a subset of prePowerdownTime drawn at the
    // lower DLL-off current.
    const double fastPdTime =
        tickToSec(act.prePowerdownTime - act.slowPowerdownTime -
                  act.selfRefreshTime - act.srSlowClockTime -
                  act.deepPowerdownTime);
    e.background = vdd * chips * fscale *
        (pp.iPreStandby * tickToSec(act.preStandbyTime) +
         pp.iPrePdFast * fastPdTime +
         pp.iPrePdSlow * tickToSec(act.slowPowerdownTime) +
         pp.iActStandby * tickToSec(act.actStandbyTime) +
         pp.iActPowerdown * tickToSec(act.actPowerdownTime)) +
        // The internally-refreshing states draw their own
        // (frequency-independent) currents: the interface clock is
        // decoupled or off, so the bus frequency derating no longer
        // applies.
        vdd * chips *
            (pp.iSelfRefresh * tickToSec(act.selfRefreshTime) +
             pp.iSrSlowClock * tickToSec(act.srSlowClockTime) +
             pp.iDeepPowerdown * tickToSec(act.deepPowerdownTime));

    // Activate/precharge: IDD0-style measurement cycles ACT-PRE at
    // tRC; net charge above standby is (IDD0 - weighted standby)
    // over tRC = tRAS + tRP.  Standby time is already counted in
    // background, so only the net is added here.
    const double tRC = tickToSec(tp.tRAS + tp.tRP);
    double iNet = pp.iActPre -
        (pp.iActStandby * tickToSec(tp.tRAS) +
         pp.iPreStandby * tickToSec(tp.tRP)) / tRC;
    if (iNet < 0)
        iNet = 0;
    e.actPre = vdd * chips * iNet * tRC *
               static_cast<double>(act.actPreCount);

    // Read/write: burst current above standby while the rank drives
    // or receives data.  Power is frequency-independent; lower
    // frequencies stretch burst time and thus energy.
    const double burstSec =
        tickToSec(act.readBurstTime + act.writeBurstTime);
    double iBurstNet = pp.iReadWrite - pp.iActStandby;
    if (iBurstNet < 0)
        iBurstNet = 0;
    e.readWrite = vdd * chips * iBurstNet * burstSec;

    // Termination: ODT dissipation on this rank while other ranks on
    // the channel burst, plus self-termination of incoming writes.
    e.termination = chips *
        (pp.termOtherRankW * tickToSec(other_burst) +
         pp.termSelfWriteW * tickToSec(act.writeBurstTime));

    // Refresh: net current above precharge standby for tRFC per
    // refresh command.
    double iRefNet = pp.iRefresh - pp.iPreStandby;
    if (iRefNet < 0)
        iRefNet = 0;
    e.refresh = vdd * chips * iRefNet * tickToSec(tp.tRFC) *
                static_cast<double>(act.refreshes);

    return e;
}

Watts
rankAveragePower(const RankActivity &act, const TimingParams &tp,
                 const PowerParams &pp, Tick other_burst)
{
    if (act.totalTime == 0)
        return 0.0;
    return rankEnergy(act, tp, pp, other_burst).total() /
           tickToSec(act.totalTime);
}

} // namespace memscale
