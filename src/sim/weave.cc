#include "sim/weave.hh"

#include <utility>

namespace memscale
{

void
WeaveHub::setRunner(WeaveRunner runner)
{
    runner_ = std::move(runner);
}

std::size_t
WeaveHub::addTask(std::function<void()> task, WeaveScope scope,
                  std::uint32_t lane)
{
    tasks_.push_back({std::move(task), scope, lane});
    return tasks_.size() - 1;
}

std::size_t
WeaveHub::tasks(WeaveScope scope) const
{
    std::size_t n = 0;
    for (const Task &t : tasks_)
        if (t.scope == scope)
            ++n;
    return n;
}

void
WeaveHub::barrier()
{
    if (tasks_.empty())
        return;
    ++barriers_;
    if (runner_) {
        runner_(tasks_.size(),
                [this](std::size_t i) { tasks_[i].fn(); });
    } else {
        for (auto &t : tasks_)
            t.fn();
    }
}

void
WeaveHub::barrier(WeaveScope scope)
{
    // Dispatch over the dense task list but skip other scopes inside
    // the worker, so task indices (and thus which worker runs which
    // channel) stay stable no matter which scopes exist.
    std::size_t n = tasks(scope);
    if (n == 0)
        return;
    ++barriers_;
    if (runner_) {
        runner_(tasks_.size(), [this, scope](std::size_t i) {
            if (tasks_[i].scope == scope)
                tasks_[i].fn();
        });
    } else {
        for (auto &t : tasks_)
            if (t.scope == scope)
                t.fn();
    }
}

} // namespace memscale
