#include "sim/weave.hh"

#include <utility>

namespace memscale
{

void
WeaveHub::setRunner(WeaveRunner runner)
{
    runner_ = std::move(runner);
}

std::size_t
WeaveHub::addTask(std::function<void()> task)
{
    tasks_.push_back(std::move(task));
    return tasks_.size() - 1;
}

void
WeaveHub::barrier()
{
    if (tasks_.empty())
        return;
    ++barriers_;
    if (runner_) {
        runner_(tasks_.size(),
                [this](std::size_t i) { tasks_[i](); });
    } else {
        for (auto &t : tasks_)
            t();
    }
}

} // namespace memscale
