/**
 * @file
 * Small-buffer-optimized move-only callable for the event kernel.
 *
 * `std::function` heap-allocates for any capture larger than its
 * (implementation-defined, typically 16-byte) inline buffer and drags
 * in copy-constructibility requirements the kernel never uses.  Every
 * `schedule()` in the hot path would pay that allocation.  EventCallback
 * stores captures of up to 48 bytes inline — which covers every
 * callback the simulator schedules (`[this, r]`-style closures) — and
 * only falls back to the heap for oversized or throwing-move captures.
 */

#ifndef MEMSCALE_SIM_CALLBACK_HH
#define MEMSCALE_SIM_CALLBACK_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace memscale
{

class EventCallback
{
  public:
    /** Captures up to this size (and max_align_t alignment) stay inline. */
    static constexpr std::size_t InlineCapacity = 48;

    EventCallback() noexcept = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    EventCallback(F &&f)   // NOLINT: implicit by design, mirrors std::function
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            *reinterpret_cast<D **>(buf_) = new D(std::forward<F>(f));
            ops_ = &heapOps<D>;
        }
    }

    EventCallback(EventCallback &&o) noexcept
    {
        if (o.ops_) {
            relocateFrom(o);
            o.ops_ = nullptr;
        }
    }

    EventCallback &
    operator=(EventCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            if (o.ops_) {
                relocateFrom(o);
                o.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    void
    reset() noexcept
    {
        if (ops_) {
            if (!ops_->trivial)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** True when the given callable would avoid the heap fallback. */
    template <typename F>
    static constexpr bool
    storedInline()
    {
        return fitsInline<std::decay_t<F>>();
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        /**
         * Inline capture with trivial copy and destruction: relocate
         * degenerates to a fixed-size memcpy and destroy to a no-op.
         * Nearly every callback the simulator schedules qualifies, so
         * the move/destroy paths branch on this flag instead of paying
         * an indirect call whose target varies with the capture type.
         */
        bool trivial;
    };

    void
    relocateFrom(EventCallback &o) noexcept
    {
        if (o.ops_->trivial)
            std::memcpy(buf_, o.buf_, InlineCapacity);
        else
            o.ops_->relocate(buf_, o.buf_);
        ops_ = o.ops_;
    }

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= InlineCapacity &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void *p) { (*std::launder(reinterpret_cast<D *>(p)))(); },
        [](void *dst, void *src) noexcept {
            D *s = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void *p) noexcept {
            std::launder(reinterpret_cast<D *>(p))->~D();
        },
        std::is_trivially_copyable_v<D> &&
            std::is_trivially_destructible_v<D>,
    };

    template <typename D>
    static constexpr Ops heapOps = {
        [](void *p) { (**reinterpret_cast<D **>(p))(); },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<D **>(dst) = *reinterpret_cast<D **>(src);
        },
        [](void *p) noexcept { delete *reinterpret_cast<D **>(p); },
        false,
    };

    alignas(std::max_align_t) unsigned char buf_[InlineCapacity];
    const Ops *ops_ = nullptr;
};

} // namespace memscale

#endif // MEMSCALE_SIM_CALLBACK_HH
