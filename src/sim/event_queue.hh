/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are closures scheduled at absolute ticks.  Ties are broken by
 * (priority, insertion sequence) so simulations are reproducible
 * regardless of heap internals.  Events can be cancelled via the
 * EventId returned at scheduling time.
 */

#ifndef MEMSCALE_SIM_EVENT_QUEUE_HH
#define MEMSCALE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace memscale
{

/** Handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel id for "no event". */
inline constexpr EventId InvalidEventId = 0;

/**
 * Priority classes for same-tick ordering.  Lower values run first.
 * Counter sampling must observe state *after* the hardware settles at
 * a tick, hence the Sample class runs last.
 */
enum class EventClass : std::uint8_t
{
    Hardware = 0,  ///< DRAM/MC/CPU state transitions
    Policy = 1,    ///< OS policy invocations
    Sample = 2,    ///< statistics sampling / epoch bookkeeping
};

class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule fn at absolute tick `when` (>= now).
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, std::function<void()> fn,
                     EventClass cls = EventClass::Hardware);

    /** Schedule fn `delta` ticks from now. */
    EventId
    scheduleIn(Tick delta, std::function<void()> fn,
               EventClass cls = EventClass::Hardware)
    {
        return schedule(now_ + delta, std::move(fn), cls);
    }

    /**
     * Cancel a pending event.  Cancelling an already-fired or unknown
     * id is a harmless no-op (returns false).
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return live_.size(); }

    bool empty() const { return live_.empty(); }

    /**
     * Run events until the queue drains or `limit` ticks is passed.
     * Events scheduled exactly at `limit` still run.  Returns the
     * number of events executed.
     */
    std::uint64_t runUntil(Tick limit = MaxTick);

    /** Execute exactly one event if any is pending; returns true if so. */
    bool step();

    /** Abort the current runUntil() after the in-flight event returns. */
    void stop() { stopped_ = true; }

  private:
    struct Entry
    {
        Tick when;
        std::uint8_t cls;
        std::uint64_t seq;
        EventId id;
        std::function<void()> fn;
        bool cancelled = false;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (cls != o.cls)
                return cls > o.cls;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    /** Ids scheduled but neither fired nor cancelled. */
    std::unordered_set<EventId> live_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    bool stopped_ = false;
};

} // namespace memscale

#endif // MEMSCALE_SIM_EVENT_QUEUE_HH
