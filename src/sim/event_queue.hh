/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are closures scheduled at absolute ticks.  Ties are broken by
 * (priority, insertion sequence) so simulations are reproducible
 * regardless of scheduler internals.  Events can be cancelled via the
 * EventId returned at scheduling time.
 *
 * Internals are built for throughput.  Callbacks live in a slab of
 * pooled slots recycled through a free list (no per-event heap
 * allocation for captures up to EventCallback::InlineCapacity bytes)
 * and cancellation is lazy — a cancelled event's slot is released
 * immediately while its ordering entry is skipped when it surfaces
 * (or swept during periodic compaction after heavy cancel churn).
 * EventIds carry a generation so a recycled slot can never be
 * cancelled through a stale id.
 *
 * The Fast kernel is a two-level hierarchical scheduler:
 *
 *  - A **calendar queue** (hierarchical timing wheel): six levels of
 *    64 fixed-width tick buckets with one occupancy bitmask per
 *    level.  Level 0 buckets span 2^12 ticks (~4 ns — on the order of
 *    one DRAM command slot), each higher level is 64x wider, so the
 *    wheel covers ~2^48 ticks (~4.7 simulated minutes) ahead of the
 *    consumption point.  Events beyond that horizon (diurnal arrival
 *    phases, far refresh horizons) fall back to a sorted overflow
 *    min-heap.  The bucket under consumption is sorted once and
 *    consumed through a cursor; far buckets stay unsorted until the
 *    wheel reaches them, and higher-level buckets scatter one level
 *    down as the wheel advances.
 *
 *  - **Per-channel lanes**: channel-local events (bank timers, burst
 *    completions, powerdown/re-lock, refresh) are routed by their
 *    EventTag kind into per-channel sorted sub-queues when the
 *    calendar is quiet or the backlog is deep (routing is placement
 *    only, so the adaptive policy cannot affect order).  The lanes'
 *    earliest deadlines plus the calendar's cached head form a small
 *    top-level *ladder*; the global loop pops from that N-way
 *    tournament instead of sifting one shared heap.  Lanes also give
 *    each channel's pending service events a structure of their own,
 *    which is the hook for draining them from weave workers.
 *
 * Pop order is exactly (tick, class, seq) in both kernels; the
 * Reference kernel (a sorted list with eager cancel) is the oracle
 * the differential harness checks the hierarchy against.
 */

#ifndef MEMSCALE_SIM_EVENT_QUEUE_HH
#define MEMSCALE_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/callback.hh"

namespace memscale
{

/**
 * Handle to a scheduled event, usable for cancellation.  Packs a slab
 * slot index (low 32 bits) with the slot's generation at scheduling
 * time (high 32 bits); generations start at 1, so no valid id is 0.
 */
using EventId = std::uint64_t;

/** Sentinel id for "no event". */
inline constexpr EventId InvalidEventId = 0;

/**
 * Priority classes for same-tick ordering.  Lower values run first.
 * Counter sampling must observe state *after* the hardware settles at
 * a tick, hence the Sample class runs last.
 */
enum class EventClass : std::uint8_t
{
    Hardware = 0,  ///< DRAM/MC/CPU state transitions
    Policy = 1,    ///< OS policy invocations
    Sample = 2,    ///< statistics sampling / epoch bookkeeping
};

/**
 * Serializable description of a scheduled event.  Closures cannot be
 * written to a checkpoint, so every schedule site provides a tag —
 * the event's kind (sim/event_kinds.hh), the scheduling component
 * (owner, e.g. a channel or core id), and two operands whose meaning
 * is kind-specific.  On resume the owning component reconstructs an
 * equivalent closure from the tag.  kind == EvNone marks an untagged
 * event; exporting one is fatal, so new schedule sites cannot silently
 * break checkpointing.
 */
struct EventTag
{
    std::uint32_t kind = 0;   ///< EventKind (0 = EvNone = untagged)
    std::uint32_t owner = 0;  ///< scheduling component id
    std::uint64_t a = 0;      ///< kind-specific operand
    std::uint64_t b = 0;      ///< kind-specific operand
};

/** One pending event as exported for a checkpoint. */
struct PendingEvent
{
    Tick when = 0;
    EventClass cls = EventClass::Hardware;
    EventTag tag;
};

/**
 * Kernel implementation selector.  Fast is the production calendar +
 * lane hierarchy; Reference is a deliberately simple sorted-list
 * kernel with eager cancellation that serves as the correctness
 * oracle for the differential harness (harness/differential).  Both
 * modes run events in the identical (tick, class, seq) order, so a
 * simulation must produce bit-identical results under either.
 */
enum class KernelMode : std::uint8_t
{
    Fast,
    Reference,
};

class EventQueue
{
  public:
    /**
     * Maximum number of per-channel lanes.  Channel owners alias into
     * this many lanes (owner & (MaxLanes-1)); aliasing is
     * correctness-neutral because the pop tournament always takes the
     * global (when, class, seq) minimum.
     */
    static constexpr std::uint32_t MaxLanes = 64;

    /**
     * Adaptive lane-routing parameters.  Routing is placement only —
     * pop order is the global (when, class, seq) minimum wherever an
     * entry sits — so the kernel picks the cheaper structure per
     * event.  Channel-local events route to their per-channel lane
     * when the calendar holds at most CalBusyMax entries (pure
     * channel traffic: the ladder degenerates to the lane tops and a
     * pop is a cursor bump) or when the pending population reaches
     * LaneMinPending (heavy backlog: lane append/cursor-pop stays
     * O(1) where bucket maintenance would not); otherwise they share
     * the calendar, because splitting a small mixed population
     * across both structures adds ladder bookkeeping to every pop.
     * setLaneThreshold(0) forces lane routing (tests, per-lane drain
     * experiments).
     */
    static constexpr std::size_t CalBusyMax = 8;
    static constexpr std::size_t LaneMinPending = 1024;

    explicit EventQueue(KernelMode mode = KernelMode::Fast)
        : mode_(mode)
    {}

    KernelMode mode() const { return mode_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule fn at absolute tick `when` (>= now).  `tag` is the
     * event's serializable identity for checkpointing; untagged events
     * are legal to run but fatal to checkpoint.  Channel-local kinds
     * route to the owner's lane, everything else to the calendar.
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, EventCallback fn,
                     EventClass cls = EventClass::Hardware,
                     EventTag tag = {});

    /** Schedule fn `delta` ticks from now. */
    EventId
    scheduleIn(Tick delta, EventCallback fn,
               EventClass cls = EventClass::Hardware, EventTag tag = {})
    {
        return schedule(now_ + delta, std::move(fn), cls, tag);
    }

    /**
     * Cancel a pending event.  Cancelling an already-fired or unknown
     * id is a harmless no-op (returns false).  The callback (and any
     * resources it captured) is destroyed immediately; the ordering
     * entry is reclaimed lazily.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events.  Exact at all times. */
    std::size_t pending() const { return pending_; }

    bool empty() const { return pending_ == 0; }

    /**
     * Run events until the queue drains or `limit` ticks is passed.
     * Events scheduled exactly at `limit` still run.  Returns the
     * number of events executed.
     */
    std::uint64_t runUntil(Tick limit = MaxTick);

    /** Execute exactly one event if any is pending; returns true if so. */
    bool step();

    /** Abort the current runUntil() after the in-flight event returns. */
    void stop() { stopped_ = true; }

    /** @name Lane introspection (weave scaffolding, tests) */
    /// @{
    /** Override the lane-routing threshold (see LaneMinPending). */
    void setLaneThreshold(std::size_t n) { laneThreshold_ = n; }

    /** Number of lanes that have ever held an event. */
    std::size_t laneCount() const { return lanes_.size(); }

    /** Live events currently parked in `lane` (O(lane size)). */
    std::size_t lanePending(std::uint32_t lane) const;
    /// @}

    /** @name Checkpoint support */
    /// @{
    /**
     * Export every pending event's tag, sorted by execution order
     * (when, class, insertion sequence).  EvEphemeral-tagged events
     * (the checkpoint writer's own) are skipped; an untagged
     * (EvNone) live event is fatal — it could not be reconstructed.
     *
     * Order-stability guarantee: the exported order is the exact
     * order the events would have executed in, independent of kernel
     * mode, of how many weave barriers have run, and of which
     * sub-queue (calendar bucket, overflow heap, channel lane) each
     * event sits in — (when, class, seq) is a total order and seq is
     * assigned at schedule time on the bound thread only.  Under the
     * bound/weave kernel the *accounting* state a checkpoint also
     * captures is only coherent at a drained barrier, so an export
     * guard (below) makes cutting inside a half-woven interval fatal
     * rather than silently inconsistent.
     */
    std::vector<PendingEvent> exportPending() const;

    /**
     * Install a predicate that must return true for exportPending()
     * to proceed (e.g. "all weave shards drained").  Exporting while
     * the guard returns false is fatal: a snapshot cut there would
     * observe a half-woven interval.  Empty guard disables the check.
     */
    void setExportGuard(std::function<bool()> guard)
    {
        exportGuard_ = std::move(guard);
    }

    /**
     * Destroy every pending event (restore drops the freshly
     * constructed system's events before re-scheduling the saved
     * ones).
     */
    void clearPending();

    /**
     * Jump the clock to `t` on an empty queue (restore only).
     * Re-scheduled events then carry fresh insertion sequences in
     * saved execution order, preserving all same-tick tie-breaks.
     */
    void setNow(Tick t);
    /// @}

  private:
    /**
     * Ordering entry: 24 trivially-copyable bytes.  `key` packs the
     * event class above a 56-bit insertion sequence, so the same-tick
     * tie-break (class, then seq) is a single integer compare; `id`
     * packs (generation << 32 | slot) exactly like the public
     * EventId, so staleness checks and cancel matching reuse one
     * field.  The callback lives in slots_[slot].
     */
    struct Entry
    {
        Tick when;
        std::uint64_t key;
        std::uint64_t id;
    };

    static constexpr unsigned ClsShift = 56;

    static bool
    entryLess(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.key < b.key;
    }

    static std::uint32_t entrySlot(const Entry &e)
    {
        return static_cast<std::uint32_t>(e.id);
    }
    static std::uint32_t entryGen(const Entry &e)
    {
        return static_cast<std::uint32_t>(e.id >> 32);
    }
    static std::uint8_t entryCls(const Entry &e)
    {
        return static_cast<std::uint8_t>(e.key >> ClsShift);
    }

    /** Pooled callback storage, recycled through freeHead_. */
    struct Slot
    {
        EventCallback fn;
        EventTag tag;
        std::uint32_t gen = 1;
        std::uint32_t nextFree = NoSlot;
        /**
         * Where the ordering entry was actually placed (NoLane =
         * calendar).  Routing is adaptive, so cancel must use the
         * recorded placement — re-deriving it from the tag would
         * miss the calendar-head invalidation for a channel-tagged
         * event that was routed below the lane threshold.
         */
        std::uint32_t lane = NoLane;
        bool live = false;
    };

    static constexpr std::uint32_t NoSlot = ~std::uint32_t(0);
    static constexpr std::uint32_t NoLane = ~std::uint32_t(0);

    /**
     * Calendar geometry.  Level-0 buckets are 2^Shift0 ticks wide;
     * each level is 64 buckets (one occupancy bit each), each higher
     * level 64x coarser.  Events further out than the top level's
     * span sit in the overflow heap.
     */
    static constexpr unsigned LevelBits = 6;
    static constexpr unsigned BucketsPerLevel = 1u << LevelBits;
    static constexpr unsigned NumLevels = 6;
    static constexpr unsigned Shift0 = 12;

    struct Wheel
    {
        std::vector<std::vector<Entry>> b;  ///< lazily sized to 64
        std::uint64_t occ = 0;              ///< bit i: bucket i non-empty
    };

    /**
     * Per-channel sub-queue: an ascending-sorted vector consumed
     * through a head cursor.  Channel service events are scheduled in
     * near-increasing time order, so inserts almost always append
     * (out-of-order inserts memmove a short tail of the live region)
     * and a pop is a cursor bump — both far cheaper than heap sifts
     * for these small, bursty queues.  The consumed prefix [0, head)
     * is compacted once it dominates the vector.
     */
    struct Lane
    {
        std::vector<Entry> v;
        std::uint32_t head = 0;
    };

    /** Where the tournament found the next event. */
    struct Source
    {
        enum Kind : std::uint8_t { None, Calendar, InLane } kind = None;
        std::uint32_t lane = 0;
        Entry e{};
    };

    bool liveEntry(const Entry &e) const
    {
        const Slot &s = slots_[entrySlot(e)];
        return s.live && s.gen == entryGen(e);
    }

    std::uint32_t allocSlot();
    void releaseSlot(std::uint32_t idx);

    /** Lane index for a tag, or NoLane for calendar routing. */
    static std::uint32_t laneFor(const EventTag &tag);

    /** Place an entry into wheels/overflow (placement only). */
    void placeCalendar(const Entry &e);
    void placeLane(std::uint32_t lane, const Entry &e);

    /**
     * Earliest live calendar entry (cached), or nullptr.  May purge
     * stale entries and empty buckets while scanning.
     */
    const Entry *calendarHead();
    bool scanCalendar(Entry &out);

    /** Remove `head` (the current calendar minimum), advancing the wheel. */
    void popCalendar(const Entry &head);
    void popLane(std::uint32_t lane);

    /**
     * Re-establish the "lane tops are live" ladder invariant: skip
     * corpses at the head cursor, retire the lane when drained, and
     * compact the consumed prefix when it dominates.
     */
    void purgeLane(std::uint32_t lane);

    /** N-way tournament over the calendar head and the lane heads. */
    Source findMin();
    void popSource(const Source &src);

    /** Drop all stale entries when they dominate the structures. */
    void maybeSweep();
    void sweep();

    /** Append every live entry (any sub-queue) to `out`. */
    void gatherLive(std::vector<Entry> &out) const;

    /**
     * Reference mode: kept fully sorted *descending* by (when, cls,
     * seq), so the next event is heap_.back() and popping it is O(1);
     * inserts and cancels are linear, which is fine for an oracle.
     * Unused in Fast mode.
     */
    std::vector<Entry> heap_;

    std::array<Wheel, NumLevels> wheels_;
    std::vector<Entry> overflow_;  ///< min-heap of beyond-horizon events
    /**
     * Wheel consumption point: every live wheel entry satisfies its
     * level/index placement rule relative to wheelNow_.  Advances
     * only when the pop path enters a new bucket (never past a live
     * entry), so it can lag now_ after a runUntil() horizon advance —
     * placement is measured from wheelNow_, which keeps lagging safe.
     */
    Tick wheelNow_ = 0;
    std::uint32_t curPos_ = 0;  ///< consumed prefix of the current bucket
    bool curSorted_ = false;    ///< current bucket sorted & under cursor
    /**
     * Cached calendar minimum — the calendar's ladder rung.  Validity
     * implies liveness: every path that kills an event either misses
     * the calendar (lanes) or invalidates/refreshes the cache, so the
     * tournament never re-checks the slot generation.
     */
    Entry calHead_{};
    bool calHeadValid_ = false;
    /** Physical entries (live + stale) across wheels_ + overflow_. */
    std::size_t calEntries_ = 0;

    std::vector<Lane> lanes_;
    std::uint64_t laneMask_ = 0;  ///< bit l: lanes_[l] non-empty
    std::size_t laneThreshold_ = LaneMinPending;

    /**
     * Mirror of each non-empty lane's head entry, indexed by lane.
     * The ladder tournament reads this flat array (~2 lanes per cache
     * line) instead of chasing each lane's vector data pointer; slots
     * whose laneMask_ bit is clear are garbage.
     */
    std::array<Entry, MaxLanes> laneTop_{};

    /**
     * Cached lane-tournament winner: when valid, laneWinLane_ is the
     * lane whose head is the minimum over all lane heads.  An insert
     * can only change the winner by beating it (compare-update); a
     * pop or head purge on the winning lane invalidates.  Runs of
     * calendar pops — the common case in full-system mixes, where
     * core issue events dominate — then skip the lane scan entirely.
     */
    std::uint32_t laneWinLane_ = 0;
    bool laneWinValid_ = false;

    std::vector<Slot> slots_;
    std::uint32_t freeHead_ = NoSlot;
    std::size_t pending_ = 0;
    /** Entries whose event has been cancelled but not yet reclaimed. */
    std::size_t stale_ = 0;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    bool stopped_ = false;
    KernelMode mode_ = KernelMode::Fast;
    std::function<bool()> exportGuard_;
};

} // namespace memscale

#endif // MEMSCALE_SIM_EVENT_QUEUE_HH
