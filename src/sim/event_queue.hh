/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are closures scheduled at absolute ticks.  Ties are broken by
 * (priority, insertion sequence) so simulations are reproducible
 * regardless of heap internals.  Events can be cancelled via the
 * EventId returned at scheduling time.
 *
 * Internals are built for throughput: callbacks live in a slab of
 * pooled slots recycled through a free list (no per-event heap
 * allocation for captures up to EventCallback::InlineCapacity bytes),
 * heap entries are trivially-copyable PODs, and cancellation is lazy —
 * a cancelled event's slot is released immediately while its heap
 * entry is purged when it surfaces at the top (or during periodic
 * compaction after heavy cancel churn).  EventIds carry a generation
 * so a recycled slot can never be cancelled through a stale id.
 */

#ifndef MEMSCALE_SIM_EVENT_QUEUE_HH
#define MEMSCALE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/callback.hh"

namespace memscale
{

/**
 * Handle to a scheduled event, usable for cancellation.  Packs a slab
 * slot index (low 32 bits) with the slot's generation at scheduling
 * time (high 32 bits); generations start at 1, so no valid id is 0.
 */
using EventId = std::uint64_t;

/** Sentinel id for "no event". */
inline constexpr EventId InvalidEventId = 0;

/**
 * Priority classes for same-tick ordering.  Lower values run first.
 * Counter sampling must observe state *after* the hardware settles at
 * a tick, hence the Sample class runs last.
 */
enum class EventClass : std::uint8_t
{
    Hardware = 0,  ///< DRAM/MC/CPU state transitions
    Policy = 1,    ///< OS policy invocations
    Sample = 2,    ///< statistics sampling / epoch bookkeeping
};

/**
 * Serializable description of a scheduled event.  Closures cannot be
 * written to a checkpoint, so every schedule site provides a tag —
 * the event's kind (sim/event_kinds.hh), the scheduling component
 * (owner, e.g. a channel or core id), and two operands whose meaning
 * is kind-specific.  On resume the owning component reconstructs an
 * equivalent closure from the tag.  kind == EvNone marks an untagged
 * event; exporting one is fatal, so new schedule sites cannot silently
 * break checkpointing.
 */
struct EventTag
{
    std::uint32_t kind = 0;   ///< EventKind (0 = EvNone = untagged)
    std::uint32_t owner = 0;  ///< scheduling component id
    std::uint64_t a = 0;      ///< kind-specific operand
    std::uint64_t b = 0;      ///< kind-specific operand
};

/** One pending event as exported for a checkpoint. */
struct PendingEvent
{
    Tick when = 0;
    EventClass cls = EventClass::Hardware;
    EventTag tag;
};

/**
 * Kernel implementation selector.  Fast is the production slab/lazy-
 * cancel path; Reference is a deliberately simple sorted-list kernel
 * with eager cancellation that serves as the correctness oracle for
 * the differential harness (harness/differential).  Both modes run
 * events in the identical (tick, class, seq) order, so a simulation
 * must produce bit-identical results under either.
 */
enum class KernelMode : std::uint8_t
{
    Fast,
    Reference,
};

class EventQueue
{
  public:
    explicit EventQueue(KernelMode mode = KernelMode::Fast)
        : mode_(mode)
    {}

    KernelMode mode() const { return mode_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule fn at absolute tick `when` (>= now).  `tag` is the
     * event's serializable identity for checkpointing; untagged events
     * are legal to run but fatal to checkpoint.
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, EventCallback fn,
                     EventClass cls = EventClass::Hardware,
                     EventTag tag = {});

    /** Schedule fn `delta` ticks from now. */
    EventId
    scheduleIn(Tick delta, EventCallback fn,
               EventClass cls = EventClass::Hardware, EventTag tag = {})
    {
        return schedule(now_ + delta, std::move(fn), cls, tag);
    }

    /**
     * Cancel a pending event.  Cancelling an already-fired or unknown
     * id is a harmless no-op (returns false).  The callback (and any
     * resources it captured) is destroyed immediately; the heap entry
     * is reclaimed lazily.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events.  Exact at all times. */
    std::size_t pending() const { return pending_; }

    bool empty() const { return pending_ == 0; }

    /**
     * Run events until the queue drains or `limit` ticks is passed.
     * Events scheduled exactly at `limit` still run.  Returns the
     * number of events executed.
     */
    std::uint64_t runUntil(Tick limit = MaxTick);

    /** Execute exactly one event if any is pending; returns true if so. */
    bool step();

    /** Abort the current runUntil() after the in-flight event returns. */
    void stop() { stopped_ = true; }

    /** @name Checkpoint support */
    /// @{
    /**
     * Export every pending event's tag, sorted by execution order
     * (when, class, insertion sequence).  EvEphemeral-tagged events
     * (the checkpoint writer's own) are skipped; an untagged
     * (EvNone) live event is fatal — it could not be reconstructed.
     *
     * Order-stability guarantee: the exported order is the exact
     * order the events would have executed in, independent of kernel
     * mode, of how many weave barriers have run, and of heap
     * internals — (when, class, seq) is a total order and seq is
     * assigned at schedule time on the bound thread only.  Under the
     * bound/weave kernel the *accounting* state a checkpoint also
     * captures is only coherent at a drained barrier, so an export
     * guard (below) makes cutting inside a half-woven interval fatal
     * rather than silently inconsistent.
     */
    std::vector<PendingEvent> exportPending() const;

    /**
     * Install a predicate that must return true for exportPending()
     * to proceed (e.g. "all weave shards drained").  Exporting while
     * the guard returns false is fatal: a snapshot cut there would
     * observe a half-woven interval.  Empty guard disables the check.
     */
    void setExportGuard(std::function<bool()> guard)
    {
        exportGuard_ = std::move(guard);
    }

    /**
     * Destroy every pending event (restore drops the freshly
     * constructed system's events before re-scheduling the saved
     * ones).
     */
    void clearPending();

    /**
     * Jump the clock to `t` on an empty queue (restore only).
     * Re-scheduled events then carry fresh insertion sequences in
     * saved execution order, preserving all same-tick tie-breaks.
     */
    void setNow(Tick t);
    /// @}

  private:
    /**
     * Heap entry: trivially copyable, so priority-queue sift
     * operations are plain moves of 32 bytes.  The callback lives in
     * slots_[slot]; `gen` detects entries whose event was cancelled
     * (the slot was released and its generation bumped).
     */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
        std::uint8_t cls;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (cls != o.cls)
                return cls > o.cls;
            return seq > o.seq;
        }
    };

    /** Pooled callback storage, recycled through freeHead_. */
    struct Slot
    {
        EventCallback fn;
        EventTag tag;
        std::uint32_t gen = 1;
        std::uint32_t nextFree = NoSlot;
        bool live = false;
    };

    static constexpr std::uint32_t NoSlot = ~std::uint32_t(0);

    bool liveEntry(const Entry &e) const
    {
        return slots_[e.slot].live && slots_[e.slot].gen == e.gen;
    }

    /** Pop cancelled entries off the heap top. */
    void purgeTop();

    /** Drop all stale entries when they dominate the heap. */
    void maybeCompact();

    std::uint32_t allocSlot();
    void releaseSlot(std::uint32_t idx);

    /** Next event to run, or nullptr when none is pending. */
    const Entry *peek() const;

    /**
     * Fast mode: min-heap over Entry (make/push/pop_heap with
     * operator>).  Reference mode: kept fully sorted *descending* by
     * (when, cls, seq), so the next event is heap_.back() and popping
     * it is O(1); inserts and cancels are linear, which is fine for an
     * oracle.
     */
    std::vector<Entry> heap_;
    std::vector<Slot> slots_;
    std::uint32_t freeHead_ = NoSlot;
    std::size_t pending_ = 0;
    /** Heap entries whose event has been cancelled but not yet popped. */
    std::size_t stale_ = 0;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    bool stopped_ = false;
    KernelMode mode_ = KernelMode::Fast;
    std::function<bool()> exportGuard_;
};

} // namespace memscale

#endif // MEMSCALE_SIM_EVENT_QUEUE_HH
