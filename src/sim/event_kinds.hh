/**
 * @file
 * Stable identifiers for every kind of event the simulator schedules.
 *
 * Checkpointing cannot serialize an `EventCallback` closure, so each
 * schedule site tags its event with an EventKind plus up to three
 * integer operands (owner, a, b).  On resume, a registry of named
 * reconstructors — one per kind, owned by the component that scheduled
 * the original — rebuilds an equivalent closure from the tag.  The
 * enumerator values are part of the snapshot format: never renumber an
 * existing kind, only append.
 */

#ifndef MEMSCALE_SIM_EVENT_KINDS_HH
#define MEMSCALE_SIM_EVENT_KINDS_HH

#include <cstdint>

namespace memscale
{

enum EventKind : std::uint32_t
{
    EvNone = 0,            ///< untagged (not checkpointable)
    EvCoreIssueMiss = 1,   ///< Core compute-chunk end -> issue miss
    EvChanBankClosed = 2,  ///< row-miss precharge done
    EvChanActOpen = 3,     ///< ACT latched, row open
    EvChanBurstDone = 4,   ///< data burst completes a request
    EvChanPreDone = 5,     ///< trailing precharge done
    EvChanRelockEnter = 6, ///< frequency-relock stall begins
    EvChanRelockExit = 7,  ///< frequency-relock stall ends
    EvChanRefreshTick = 8, ///< periodic per-rank refresh arm
    EvChanRefreshDone = 9, ///< tRFC elapsed, refresh complete
    EvEpochEndProfile = 10, ///< profiling window closes
    EvEpochEndEpoch = 11,   ///< epoch closes, next one begins
    EvServeArrival = 12,    ///< open-loop front end: next request lands
    EvServeIssue = 13,      ///< serving worker compute segment ends
    EvChanPdDemote = 14,    ///< idle-ladder demotion timer fires
    EvMemMigrate = 15,      ///< periodic hot-page consolidation pass
    /**
     * Meta-events of the checkpoint machinery itself (the periodic
     * snapshot writer).  Never exported: a resumed run re-creates its
     * own from the command line, so they must not round-trip.
     */
    EvEphemeral = 0xffffffffu,
};

/** Human-readable kind name for diagnostics. */
inline const char *
eventKindName(std::uint32_t kind)
{
    switch (kind) {
      case EvNone: return "none";
      case EvCoreIssueMiss: return "core.issueMiss";
      case EvChanBankClosed: return "chan.bankClosed";
      case EvChanActOpen: return "chan.actOpen";
      case EvChanBurstDone: return "chan.burstDone";
      case EvChanPreDone: return "chan.preDone";
      case EvChanRelockEnter: return "chan.relockEnter";
      case EvChanRelockExit: return "chan.relockExit";
      case EvChanRefreshTick: return "chan.refreshTick";
      case EvChanRefreshDone: return "chan.refreshDone";
      case EvEpochEndProfile: return "epoch.endProfile";
      case EvEpochEndEpoch: return "epoch.endEpoch";
      case EvServeArrival: return "serve.arrival";
      case EvServeIssue: return "serve.issue";
      case EvChanPdDemote: return "chan.pdDemote";
      case EvMemMigrate: return "mem.migrateTick";
      case EvEphemeral: return "ephemeral";
      default: return "unknown";
    }
}

} // namespace memscale

#endif // MEMSCALE_SIM_EVENT_KINDS_HH
