#include "sim/event_queue.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/event_kinds.hh"

namespace memscale
{

namespace
{

/** Comparator turning std::*_heap (max-heap by default) into a min-heap. */
struct EntryGreater
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        return a > b;
    }
};

} // namespace

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != NoSlot) {
        std::uint32_t idx = freeHead_;
        freeHead_ = slots_[idx].nextFree;
        return idx;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::releaseSlot(std::uint32_t idx)
{
    Slot &s = slots_[idx];
    s.fn.reset();
    s.live = false;
    // Bumping the generation invalidates every outstanding EventId for
    // this slot; skip 0 on wrap so InvalidEventId never matches.
    if (++s.gen == 0)
        s.gen = 1;
    s.nextFree = freeHead_;
    freeHead_ = idx;
}

EventId
EventQueue::schedule(Tick when, EventCallback fn, EventClass cls,
                     EventTag tag)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    std::uint32_t slot = allocSlot();
    Slot &s = slots_[slot];
    s.fn = std::move(fn);
    s.tag = tag;
    s.live = true;
    std::uint64_t seq = nextSeq_++;
    Entry e{when, seq, slot, s.gen, static_cast<std::uint8_t>(cls)};
    if (mode_ == KernelMode::Reference) {
        // Sorted insert, descending, so the soonest event is at the
        // back.  upper_bound keeps ties (impossible: seq is unique)
        // stable either way.
        auto pos = std::upper_bound(heap_.begin(), heap_.end(), e,
                                    EntryGreater{});
        heap_.insert(pos, e);
    } else {
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end(), EntryGreater{});
    }
    ++pending_;
    return (static_cast<EventId>(s.gen) << 32) | slot;
}

bool
EventQueue::cancel(EventId id)
{
    std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots_.size() || !slots_[slot].live ||
        slots_[slot].gen != gen) {
        return false;
    }
    if (mode_ == KernelMode::Reference) {
        // Eager cancellation: remove the entry immediately.
        auto it = std::find_if(heap_.begin(), heap_.end(),
                               [&](const Entry &e) {
                                   return e.slot == slot &&
                                          e.gen == gen;
                               });
        if (it != heap_.end())
            heap_.erase(it);
        releaseSlot(slot);
        --pending_;
        return true;
    }
    // Lazy cancellation: destroy the callback and recycle the slot now
    // (the generation bump marks the heap entry stale); the entry
    // itself is purged when it reaches the top or at compaction.
    releaseSlot(slot);
    --pending_;
    ++stale_;
    maybeCompact();
    return true;
}

void
EventQueue::purgeTop()
{
    while (!heap_.empty() && !liveEntry(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
        heap_.pop_back();
        --stale_;
    }
}

void
EventQueue::maybeCompact()
{
    // After heavy cancel churn stale entries can dominate the heap;
    // filtering and re-heapifying is O(n) and keeps memory bounded by
    // the live event count.  The rebuilt heap pops in the exact same
    // (tick, class, seq) order, so results are unaffected.
    if (stale_ < 64 || stale_ * 2 < heap_.size())
        return;
    std::erase_if(heap_, [this](const Entry &e) { return !liveEntry(e); });
    std::make_heap(heap_.begin(), heap_.end(), EntryGreater{});
    stale_ = 0;
}

const EventQueue::Entry *
EventQueue::peek() const
{
    if (heap_.empty())
        return nullptr;
    return mode_ == KernelMode::Reference ? &heap_.back()
                                          : &heap_.front();
}

bool
EventQueue::step()
{
    purgeTop();
    if (heap_.empty())
        return false;
    Entry e;
    if (mode_ == KernelMode::Reference) {
        e = heap_.back();
        heap_.pop_back();
    } else {
        e = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), EntryGreater{});
        heap_.pop_back();
    }
    // Release the slot before invoking so the callback can freely
    // schedule new events (possibly reusing this slot) and so
    // cancelling the in-flight id is a no-op, as documented.
    EventCallback fn = std::move(slots_[e.slot].fn);
    releaseSlot(e.slot);
    --pending_;
    now_ = e.when;
    fn();
    return true;
}

std::vector<PendingEvent>
EventQueue::exportPending() const
{
    if (exportGuard_ && !exportGuard_())
        fatal("checkpoint: exportPending inside a half-woven "
              "interval; drain the weave barrier before cutting");
    // Collect live entries with their ordering keys, sort by execution
    // order, then strip the keys: the restore side re-schedules in this
    // order with fresh sequences, which reproduces every same-tick
    // tie-break.
    struct Keyed
    {
        Entry e;
        EventTag tag;
    };
    std::vector<Keyed> live;
    live.reserve(pending_);
    for (const Entry &e : heap_) {
        if (!liveEntry(e))
            continue;
        live.push_back({e, slots_[e.slot].tag});
    }
    std::sort(live.begin(), live.end(),
              [](const Keyed &a, const Keyed &b) { return b.e > a.e; });
    std::vector<PendingEvent> out;
    out.reserve(live.size());
    for (const Keyed &k : live) {
        if (k.tag.kind == EvEphemeral)
            continue;
        if (k.tag.kind == EvNone)
            fatal("checkpoint: untagged event pending at tick %llu "
                  "(class %u) cannot be serialized",
                  static_cast<unsigned long long>(k.e.when),
                  static_cast<unsigned>(k.e.cls));
        out.push_back({k.e.when, static_cast<EventClass>(k.e.cls),
                       k.tag});
    }
    return out;
}

void
EventQueue::clearPending()
{
    for (const Entry &e : heap_) {
        if (liveEntry(e))
            releaseSlot(e.slot);
    }
    heap_.clear();
    pending_ = 0;
    stale_ = 0;
}

void
EventQueue::setNow(Tick t)
{
    if (pending_ != 0)
        panic("EventQueue::setNow with %zu events pending", pending_);
    if (t < now_)
        panic("EventQueue::setNow moving backwards (%llu -> %llu)",
              static_cast<unsigned long long>(now_),
              static_cast<unsigned long long>(t));
    now_ = t;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    stopped_ = false;
    std::uint64_t executed = 0;
    while (!stopped_) {
        purgeTop();
        const Entry *next = peek();
        if (!next || next->when > limit)
            break;
        if (step())
            ++executed;
    }
    // Advance the clock to the horizon unless stopped early; any
    // remaining events all lie beyond it.
    if (!stopped_ && limit != MaxTick && now_ < limit)
        now_ = limit;
    return executed;
}

} // namespace memscale
