#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"
#include "sim/event_kinds.hh"

namespace memscale
{

namespace
{

/**
 * The hierarchy never compares entries across sub-queues except at
 * the ladder, so these two comparators are the whole ordering story:
 * Lt for sorts/sorted-inserts, Gt to turn std::*_heap into min-heaps.
 */
struct Lt
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.key < b.key;
    }
};

struct Gt
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        return Lt{}(b, a);
    }
};

} // namespace

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != NoSlot) {
        std::uint32_t idx = freeHead_;
        freeHead_ = slots_[idx].nextFree;
        return idx;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::releaseSlot(std::uint32_t idx)
{
    Slot &s = slots_[idx];
    s.fn.reset();
    s.live = false;
    // Bumping the generation invalidates every outstanding EventId for
    // this slot; skip 0 on wrap so InvalidEventId never matches.
    if (++s.gen == 0)
        s.gen = 1;
    s.nextFree = freeHead_;
    freeHead_ = idx;
}

std::uint32_t
EventQueue::laneFor(const EventTag &tag)
{
    // Channel-local kinds are a contiguous run in event_kinds.hh
    // (plus the appended idle-ladder demotion kind); owner is the
    // channel index.  Aliasing (owner & 63) keeps the lane table
    // bounded and is order-neutral: the ladder always pops the global
    // (when, class, seq) minimum.
    if (tag.kind - EvChanBankClosed <=
            EvChanRefreshDone - EvChanBankClosed ||
        tag.kind == EvChanPdDemote)
        return tag.owner & (MaxLanes - 1);
    return NoLane;
}

EventId
EventQueue::schedule(Tick when, EventCallback fn, EventClass cls,
                     EventTag tag)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    std::uint32_t slot = allocSlot();
    Slot &s = slots_[slot];
    s.fn = std::move(fn);
    s.tag = tag;
    s.live = true;
    std::uint64_t seq = nextSeq_++;
    Entry e{when,
            (static_cast<std::uint64_t>(cls) << ClsShift) | seq,
            (static_cast<std::uint64_t>(s.gen) << 32) | slot};
    if (mode_ == KernelMode::Reference) {
        // Sorted insert, descending, so the soonest event is at the
        // back.  upper_bound keeps ties (impossible: seq is unique)
        // stable either way.
        auto pos =
            std::upper_bound(heap_.begin(), heap_.end(), e, Gt{});
        heap_.insert(pos, e);
    } else {
        // Adaptive routing (placement only — order is the global
        // (when, class, seq) minimum wherever an entry sits).  Lanes
        // win when channel traffic has the queue to itself: the
        // calendar stays empty, the ladder degenerates to the lane
        // tops, and a pop is a cursor bump.  Once the calendar is
        // busy (core issue / epoch / arrival events), splitting the
        // same population across both structures just adds ladder
        // bookkeeping to every pop, so channel events share the
        // calendar instead — unless the backlog is large enough that
        // the lanes' O(1) append/pop beats bucket sorting outright.
        std::uint32_t lane = (calEntries_ <= CalBusyMax ||
                              pending_ >= laneThreshold_)
                                 ? laneFor(tag)
                                 : NoLane;
        s.lane = lane;
        if (lane != NoLane) {
            placeLane(lane, e);
        } else {
            placeCalendar(e);
            ++calEntries_;
        }
    }
    ++pending_;
    return e.id;
}

void
EventQueue::placeLane(std::uint32_t lane, const Entry &e)
{
    if (lane >= lanes_.size())
        lanes_.resize(lane + 1);
    Lane &L = lanes_[lane];
    if (L.v.empty() || !Lt{}(e, L.v.back())) {
        // Common case: channel service events arrive in near-increasing
        // time order, so the new entry is the latest and appends.
        L.v.push_back(e);
    } else {
        auto pos = std::upper_bound(L.v.begin() + L.head, L.v.end(),
                                    e, Lt{});
        L.v.insert(pos, e);
    }
    std::uint64_t bit = std::uint64_t(1) << lane;
    if (!(laneMask_ & bit) || Lt{}(e, laneTop_[lane])) {
        laneTop_[lane] = e;
        // New head: it can only take the cached tournament win by
        // beating the current winner (same-lane updates keep it).
        if (laneWinValid_ && Lt{}(e, laneTop_[laneWinLane_]))
            laneWinLane_ = lane;
    }
    laneMask_ |= bit;
}

void
EventQueue::placeCalendar(const Entry &e)
{
    // Ladder invalidation rule 1: an insert can only change the
    // calendar minimum by *becoming* it, so the cached head stays
    // valid across inserts (bucket ranges are disjoint and ordered,
    // hence an entry in an earlier bucket always compares lower).
    if (calHeadValid_ && Lt{}(e, calHead_))
        calHead_ = e;
    std::uint64_t x = (e.when >> Shift0) ^ (wheelNow_ >> Shift0);
    unsigned lvl = 0;
    if (x != 0) {
        lvl = (63u - static_cast<unsigned>(std::countl_zero(x))) /
              LevelBits;
        if (lvl >= NumLevels) {
            // Beyond the wheel horizon (~2^48 ticks): overflow heap.
            overflow_.push_back(e);
            std::push_heap(overflow_.begin(), overflow_.end(), Gt{});
            return;
        }
    }
    Wheel &w = wheels_[lvl];
    if (w.b.empty())
        w.b.resize(BucketsPerLevel);
    unsigned shift = Shift0 + LevelBits * lvl;
    unsigned idx =
        static_cast<unsigned>(e.when >> shift) & (BucketsPerLevel - 1);
    auto &v = w.b[idx];
    if (x == 0 && curSorted_) {
        // Scheduling into the bucket under the cursor: keep the live
        // region sorted so a same-tick lower-class event lands exactly
        // where the cursor reads next.
        auto pos = std::upper_bound(v.begin() + curPos_, v.end(), e,
                                    Lt{});
        v.insert(pos, e);
    } else {
        v.push_back(e);
    }
    w.occ |= std::uint64_t(1) << idx;
}

const EventQueue::Entry *
EventQueue::calendarHead()
{
    // Ladder invalidation rule 2: validity implies liveness — the
    // cancel path invalidates on an id match and lane-routed events
    // can never alias a calendar entry — so a valid rung needs no
    // slot-generation re-check here.
    if (calHeadValid_)
        return &calHead_;
    calHeadValid_ = scanCalendar(calHead_);
    return calHeadValid_ ? &calHead_ : nullptr;
}

bool
EventQueue::scanCalendar(Entry &out)
{
    bool found = false;
    // 1. The bucket under the cursor (sorted, O(1) head).
    Wheel &w0 = wheels_[0];
    unsigned curIdx = static_cast<unsigned>(wheelNow_ >> Shift0) &
                      (BucketsPerLevel - 1);
    if (w0.occ & (std::uint64_t(1) << curIdx)) {
        auto &v = w0.b[curIdx];
        if (curSorted_) {
            while (curPos_ < v.size() && !liveEntry(v[curPos_])) {
                ++curPos_;
                --stale_;
                --calEntries_;
            }
            if (curPos_ < v.size()) {
                out = v[curPos_];
                return true;
            }
        } else {
            for (const Entry &e : v) {
                if (!liveEntry(e))
                    continue;
                if (!found || Lt{}(e, out)) {
                    out = e;
                    found = true;
                }
            }
            if (found)
                return true;
            stale_ -= v.size();
            calEntries_ -= v.size();
        }
        // Exhausted (or all-stale leftovers): retire the bucket.
        v.clear();
        w0.occ &= ~(std::uint64_t(1) << curIdx);
        curSorted_ = false;
        curPos_ = 0;
    }
    // 2. Wheel levels, nearest first.  Live entries at level l are
    //    strictly after the consumption point and inside the same
    //    level-(l+1) bucket as wheelNow_, so bucket index order *is*
    //    time order and the first occupied bucket of the lowest
    //    occupied level holds the wheel minimum.  (Bits at or behind
    //    the current position can only be cancelled leftovers; the
    //    sweep reclaims them.)
    for (unsigned lvl = 0; lvl < NumLevels && !found; ++lvl) {
        Wheel &w = wheels_[lvl];
        if (!w.occ)
            continue;
        unsigned shift = Shift0 + LevelBits * lvl;
        unsigned pos = static_cast<unsigned>(wheelNow_ >> shift) &
                       (BucketsPerLevel - 1);
        std::uint64_t mask =
            pos + 1 >= BucketsPerLevel
                ? 0
                : w.occ & (~std::uint64_t(0) << (pos + 1));
        while (mask) {
            unsigned idx =
                static_cast<unsigned>(std::countr_zero(mask));
            mask &= mask - 1;
            auto &v = w.b[idx];
            for (const Entry &e : v) {
                if (!liveEntry(e))
                    continue;
                if (!found || Lt{}(e, out)) {
                    out = e;
                    found = true;
                }
            }
            if (found)
                break;
            // All-stale bucket: reclaim it on the way past.
            stale_ -= v.size();
            calEntries_ -= v.size();
            v.clear();
            w.occ &= ~(std::uint64_t(1) << idx);
        }
    }
    // 3. Overflow.  Entries that were beyond the horizon when
    //    scheduled may have come inside it since, so the overflow top
    //    competes with the wheel candidate instead of being assumed
    //    later.
    while (!overflow_.empty() && !liveEntry(overflow_.front())) {
        std::pop_heap(overflow_.begin(), overflow_.end(), Gt{});
        overflow_.pop_back();
        --stale_;
        --calEntries_;
    }
    if (!overflow_.empty() &&
        (!found || Lt{}(overflow_.front(), out))) {
        out = overflow_.front();
        found = true;
    }
    return found;
}

void
EventQueue::popCalendar(const Entry &head)
{
    calHeadValid_ = false;
    // Overflow-resident head pops straight off that heap.
    if (!overflow_.empty() && overflow_.front().id == head.id) {
        std::pop_heap(overflow_.begin(), overflow_.end(), Gt{});
        overflow_.pop_back();
        --calEntries_;
        return;
    }
    for (;;) {
        std::uint64_t x = (head.when >> Shift0) ^ (wheelNow_ >> Shift0);
        if (x == 0) {
            // head lives in the bucket under the cursor: sort on
            // first touch, then consume through curPos_.
            unsigned curIdx =
                static_cast<unsigned>(head.when >> Shift0) &
                (BucketsPerLevel - 1);
            auto &v = wheels_[0].b[curIdx];
            if (!curSorted_) {
                std::sort(v.begin(), v.end(), Lt{});
                curSorted_ = true;
                curPos_ = 0;
            }
            while (curPos_ < v.size() && !liveEntry(v[curPos_])) {
                ++curPos_;
                --stale_;
                --calEntries_;
            }
            // head is the wheel minimum, so it is the first live entry.
            ++curPos_;
            --calEntries_;
            if (curPos_ >= v.size()) {
                v.clear();
                wheels_[0].occ &= ~(std::uint64_t(1) << curIdx);
                curSorted_ = false;
                curPos_ = 0;
            } else if (liveEntry(v[curPos_])) {
                // Refresh the ladder rung without a rescan.
                calHead_ = v[curPos_];
                calHeadValid_ = true;
            }
            return;
        }
        unsigned lvl = (63u - static_cast<unsigned>(
                                  std::countl_zero(x))) /
                       LevelBits;
        if (lvl == 0) {
            // Enter head's bucket; nothing live precedes it (the scan
            // that produced `head` cleared everything earlier).
            wheelNow_ = head.when & ~((Tick(1) << Shift0) - 1);
            curSorted_ = false;
            curPos_ = 0;
            continue;
        }
        // Advance into head's higher-level bucket and scatter it one
        // step down; placement of the scattered entries is relative
        // to the new wheelNow_, so they land at levels below `lvl`.
        unsigned shift = Shift0 + LevelBits * lvl;
        unsigned idx = static_cast<unsigned>(head.when >> shift) &
                       (BucketsPerLevel - 1);
        Wheel &w = wheels_[lvl];
        wheelNow_ = (head.when >> shift) << shift;
        curSorted_ = false;
        curPos_ = 0;
        auto &v = w.b[idx];
        for (const Entry &e : v) {
            if (liveEntry(e)) {
                placeCalendar(e);  // touches only levels < lvl
            } else {
                --stale_;  // scatter drops corpses for free
                --calEntries_;
            }
        }
        v.clear();
        w.occ &= ~(std::uint64_t(1) << idx);
    }
}

void
EventQueue::popLane(std::uint32_t lane)
{
    ++lanes_[lane].head;
    purgeLane(lane);
}

void
EventQueue::purgeLane(std::uint32_t lane)
{
    // The head of this lane is changing (pop or cancelled corpse);
    // if it held the cached tournament win, force a rescan.  Heads of
    // other lanes only ever grow here, which cannot steal the win.
    if (laneWinValid_ && lane == laneWinLane_)
        laneWinValid_ = false;
    Lane &L = lanes_[lane];
    while (L.head < L.v.size() && !liveEntry(L.v[L.head])) {
        // A skipped corpse is never revisited: the cursor consumes it.
        ++L.head;
        --stale_;
    }
    if (L.head >= L.v.size()) {
        L.v.clear();
        L.head = 0;
        laneMask_ &= ~(std::uint64_t(1) << lane);
        return;
    }
    if (L.head >= 64 && L.head * 2 >= L.v.size()) {
        L.v.erase(L.v.begin(), L.v.begin() + L.head);
        L.head = 0;
    }
    laneTop_[lane] = L.v[L.head];
}

EventQueue::Source
EventQueue::findMin()
{
    // The tournament reads only trusted-live heads: the calendar rung
    // is invalidated on cancel and every lane purges corpses off its
    // top as they appear (cancel of a head, pop exposing one), so no
    // slot generations are consulted here.
    Source src;
    if (calEntries_ != 0) {
        if (const Entry *c = calendarHead()) {
            src.kind = Source::Calendar;
            src.e = *c;
        }
    }
    if (laneMask_ != 0) {
        if (!laneWinValid_) {
            std::uint64_t mask = laneMask_;
            std::uint32_t best = NoLane;
            while (mask) {
                unsigned l =
                    static_cast<unsigned>(std::countr_zero(mask));
                mask &= mask - 1;
                if (best == NoLane ||
                    Lt{}(laneTop_[l], laneTop_[best])) {
                    best = l;
                }
            }
            laneWinLane_ = best;
            laneWinValid_ = true;
        }
        const Entry &top = laneTop_[laneWinLane_];
        if (src.kind == Source::None || Lt{}(top, src.e)) {
            src.kind = Source::InLane;
            src.lane = laneWinLane_;
            src.e = top;
        }
    }
    return src;
}

void
EventQueue::popSource(const Source &src)
{
    if (src.kind == Source::Calendar)
        popCalendar(src.e);
    else
        popLane(src.lane);
}

bool
EventQueue::cancel(EventId id)
{
    std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots_.size() || !slots_[slot].live ||
        slots_[slot].gen != gen) {
        return false;
    }
    if (mode_ == KernelMode::Reference) {
        // Eager cancellation: remove the entry immediately.
        auto it = std::find_if(heap_.begin(), heap_.end(),
                               [&](const Entry &e) {
                                   return e.id == id;
                               });
        if (it != heap_.end())
            heap_.erase(it);
        releaseSlot(slot);
        --pending_;
        return true;
    }
    // Lazy cancellation: destroy the callback and recycle the slot now
    // (the generation bump marks the ordering entry stale); the entry
    // itself is skipped when the cursor or a heap top reaches it, or
    // reclaimed wholesale by the sweep.
    std::uint32_t lane = slots_[slot].lane;
    releaseSlot(slot);
    --pending_;
    ++stale_;
    if (lane != NoLane) {
        // Keep the "lane tops are live" invariant the ladder relies
        // on: if the corpse is the lane head, purge it (and any
        // corpses it was shadowing) right now.
        purgeLane(lane);
    } else if (calHeadValid_ && calHead_.id == id) {
        calHeadValid_ = false;
    }
    maybeSweep();
    return true;
}

void
EventQueue::maybeSweep()
{
    // After heavy cancel churn stale entries can dominate; one pass
    // over every sub-queue is O(n) and keeps memory bounded by the
    // live event count.  Erasure preserves relative order (and heaps
    // are rebuilt), so pop order is unaffected.
    if (stale_ < 64 || stale_ * 2 < pending_ + stale_)
        return;
    sweep();
}

void
EventQueue::sweep()
{
    auto dead = [this](const Entry &e) { return !liveEntry(e); };
    std::size_t cal = 0;
    for (Wheel &w : wheels_) {
        if (w.b.empty())
            continue;
        std::uint64_t occ = 0;
        for (unsigned i = 0; i < BucketsPerLevel; ++i) {
            auto &v = w.b[i];
            std::erase_if(v, dead);
            if (!v.empty()) {
                occ |= std::uint64_t(1) << i;
                cal += v.size();
            }
        }
        w.occ = occ;
    }
    // The consumed prefix of the cursor bucket was erased with the
    // corpses (popped slots are dead too), and erase_if keeps the
    // remaining live region sorted, so the cursor restarts at 0.
    curPos_ = 0;
    std::uint64_t mask = 0;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
        Lane &L = lanes_[l];
        L.v.erase(L.v.begin(), L.v.begin() + L.head);
        L.head = 0;
        // erase_if preserves order, so the live region stays sorted.
        std::erase_if(L.v, dead);
        if (!L.v.empty()) {
            mask |= std::uint64_t(1) << l;
            laneTop_[l] = L.v.front();
        }
    }
    laneMask_ = mask;
    laneWinValid_ = false;
    std::erase_if(overflow_, dead);
    std::make_heap(overflow_.begin(), overflow_.end(), Gt{});
    calEntries_ = cal + overflow_.size();
    stale_ = 0;
    // calHead_ is a value copy of a live entry; it stays the minimum.
}

bool
EventQueue::step()
{
    Entry e;
    if (mode_ == KernelMode::Reference) {
        if (heap_.empty())
            return false;
        e = heap_.back();
        heap_.pop_back();
    } else {
        Source src = findMin();
        if (src.kind == Source::None)
            return false;
        popSource(src);
        e = src.e;
    }
    // Release the slot before invoking so the callback can freely
    // schedule new events (possibly reusing this slot) and so
    // cancelling the in-flight id is a no-op, as documented.
    EventCallback fn = std::move(slots_[entrySlot(e)].fn);
    releaseSlot(entrySlot(e));
    --pending_;
    now_ = e.when;
    fn();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    stopped_ = false;
    std::uint64_t executed = 0;
    if (mode_ == KernelMode::Reference) {
        while (!stopped_ && !heap_.empty() &&
               heap_.back().when <= limit) {
            Entry e = heap_.back();
            heap_.pop_back();
            EventCallback fn = std::move(slots_[entrySlot(e)].fn);
            releaseSlot(entrySlot(e));
            --pending_;
            now_ = e.when;
            fn();
            ++executed;
        }
    } else {
        while (!stopped_) {
            Source src = findMin();
            if (src.kind == Source::None || src.e.when > limit)
                break;
            popSource(src);
            EventCallback fn =
                std::move(slots_[entrySlot(src.e)].fn);
            releaseSlot(entrySlot(src.e));
            --pending_;
            now_ = src.e.when;
            fn();
            ++executed;
        }
    }
    // Advance the clock to the horizon unless stopped early; any
    // remaining events all lie beyond it.
    if (!stopped_ && limit != MaxTick && now_ < limit)
        now_ = limit;
    return executed;
}

void
EventQueue::gatherLive(std::vector<Entry> &out) const
{
    for (const Wheel &w : wheels_)
        for (const auto &v : w.b)
            for (const Entry &e : v)
                if (liveEntry(e))
                    out.push_back(e);
    for (const Entry &e : overflow_)
        if (liveEntry(e))
            out.push_back(e);
    for (const Lane &l : lanes_)
        for (std::size_t i = l.head; i < l.v.size(); ++i)
            if (liveEntry(l.v[i]))
                out.push_back(l.v[i]);
}

std::size_t
EventQueue::lanePending(std::uint32_t lane) const
{
    if (lane >= lanes_.size())
        return 0;
    const Lane &l = lanes_[lane];
    std::size_t n = 0;
    for (std::size_t i = l.head; i < l.v.size(); ++i)
        if (liveEntry(l.v[i]))
            ++n;
    return n;
}

std::vector<PendingEvent>
EventQueue::exportPending() const
{
    if (exportGuard_ && !exportGuard_())
        fatal("checkpoint: exportPending inside a half-woven "
              "interval; drain the weave barrier before cutting");
    // Collect live entries from every sub-queue, sort by execution
    // order, then emit their tags: the restore side re-schedules in
    // this order with fresh sequences, which reproduces every
    // same-tick tie-break regardless of which sub-queue an event
    // originally sat in.
    std::vector<Entry> live;
    live.reserve(pending_);
    if (mode_ == KernelMode::Reference) {
        for (const Entry &e : heap_)
            live.push_back(e);
    } else {
        gatherLive(live);
    }
    std::sort(live.begin(), live.end(), Lt{});
    std::vector<PendingEvent> out;
    out.reserve(live.size());
    for (const Entry &e : live) {
        const EventTag &tag = slots_[entrySlot(e)].tag;
        if (tag.kind == EvEphemeral)
            continue;
        if (tag.kind == EvNone)
            fatal("checkpoint: untagged event pending at tick %llu "
                  "(class %u) cannot be serialized",
                  static_cast<unsigned long long>(e.when),
                  static_cast<unsigned>(entryCls(e)));
        out.push_back(
            {e.when, static_cast<EventClass>(entryCls(e)), tag});
    }
    return out;
}

void
EventQueue::clearPending()
{
    if (mode_ == KernelMode::Reference) {
        for (const Entry &e : heap_)
            releaseSlot(entrySlot(e));
        heap_.clear();
    } else {
        for (Wheel &w : wheels_) {
            for (auto &v : w.b) {
                for (const Entry &e : v)
                    if (liveEntry(e))
                        releaseSlot(entrySlot(e));
                v.clear();
            }
            w.occ = 0;
        }
        for (const Entry &e : overflow_)
            if (liveEntry(e))
                releaseSlot(entrySlot(e));
        overflow_.clear();
        for (Lane &l : lanes_) {
            for (std::size_t i = l.head; i < l.v.size(); ++i)
                if (liveEntry(l.v[i]))
                    releaseSlot(entrySlot(l.v[i]));
            l.v.clear();
            l.head = 0;
        }
        laneMask_ = 0;
        laneWinValid_ = false;
        curPos_ = 0;
        curSorted_ = false;
        calHeadValid_ = false;
        calEntries_ = 0;
    }
    pending_ = 0;
    stale_ = 0;
}

void
EventQueue::setNow(Tick t)
{
    if (pending_ != 0)
        panic("EventQueue::setNow with %zu events pending", pending_);
    if (t < now_)
        panic("EventQueue::setNow moving backwards (%llu -> %llu)",
              static_cast<unsigned long long>(now_),
              static_cast<unsigned long long>(t));
    if (mode_ == KernelMode::Fast && stale_ != 0)
        sweep();  // leftover corpses would sit behind the new anchor
    now_ = t;
    wheelNow_ = t;
    curPos_ = 0;
    curSorted_ = false;
    calHeadValid_ = false;
}

} // namespace memscale
