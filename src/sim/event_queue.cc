#include "sim/event_queue.hh"

#include "common/log.hh"

namespace memscale
{

EventId
EventQueue::schedule(Tick when, std::function<void()> fn, EventClass cls)
{
    if (when < now_)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    EventId id = nextSeq_++;
    heap_.push(Entry{when, static_cast<std::uint8_t>(cls), id, id,
                     std::move(fn)});
    live_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Cancellation is lazy: the heap entry is skipped when popped.
    return live_.erase(id) > 0;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        // The entry must be moved out before pop; top() is const.
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        if (live_.erase(e.id) == 0)
            continue;   // cancelled
        now_ = e.when;
        e.fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    stopped_ = false;
    std::uint64_t executed = 0;
    while (!heap_.empty() && !stopped_) {
        const Entry &top = heap_.top();
        if (top.when > limit)
            break;
        if (step())
            ++executed;
    }
    // Advance the clock to the horizon unless stopped early; any
    // remaining events all lie beyond it.
    if (!stopped_ && limit != MaxTick && now_ < limit)
        now_ = limit;
    return executed;
}

} // namespace memscale
