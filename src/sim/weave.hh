/**
 * @file
 * Bound/weave coordination hub.
 *
 * The parallel kernel splits each run into a *bound* phase — the
 * ordinary global event loop, which stays the single source of truth
 * for timing — and a *weave* phase in which per-channel accounting
 * shards (DRAM command replay into the protocol checker, deferred
 * rank time-in-state integration, trace prefetch refill) are drained
 * concurrently on worker threads.
 *
 * The hub owns the list of weave tasks and a pluggable runner.  A
 * barrier() call hands every task to the runner and returns only when
 * all of them have completed; the bound thread blocks inside the
 * runner for the duration, so bound-phase and weave-phase accesses to
 * shared simulator state are temporally disjoint (the runner's join
 * establishes the happens-before edge).  Without a runner the tasks
 * execute inline, which is also the threads=1 degenerate case.
 *
 * The runner is deliberately type-erased (`std::function`) so that
 * src/sim and src/mem need no dependency on the harness thread pool:
 * the harness wraps SweepEngine::forEach and injects it here.
 */

#ifndef MEMSCALE_SIM_WEAVE_HH
#define MEMSCALE_SIM_WEAVE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace memscale
{

/**
 * Executes `fn(0..n-1)` across a worker pool and returns once every
 * index has completed (a full barrier).
 */
using WeaveRunner = std::function<void(
    std::size_t, const std::function<void(std::size_t)> &)>;

/**
 * What a weave task drains.  Accounting tasks (protocol replay, rank
 * residency integration, trace prefetch) are behaviour-free and may
 * run at any barrier.  Service tasks are the widened scope the
 * per-channel event lanes enable: a worker draining one channel's
 * pending service events between bound-phase deadlines.  They are
 * registered per-lane so a future scheduler can match workers to
 * EventQueue lanes; today the bound thread still pops every lane, so
 * no Service tasks are registered yet — the scope plumbing is what
 * keeps that extension from being another cross-layer refactor.
 */
enum class WeaveScope : std::uint8_t
{
    Accounting = 0,
    Service = 1,
};

class WeaveHub
{
  public:
    /** Tasks not bound to an EventQueue lane use this. */
    static constexpr std::uint32_t NoLane = ~std::uint32_t(0);

    /** Install the parallel runner; nullptr-like empty runs inline. */
    void setRunner(WeaveRunner runner);

    /**
     * Register a weave task (e.g. one channel's drain, one core's
     * prefetch refill).  Tasks must touch disjoint state: they run
     * concurrently with each other during a barrier.  `lane` records
     * which EventQueue lane the task services (NoLane if none).
     * Returns the task index.
     */
    std::size_t addTask(std::function<void()> task,
                        WeaveScope scope = WeaveScope::Accounting,
                        std::uint32_t lane = NoLane);

    /**
     * Run every registered task to completion.  Safe to call at any
     * bound-phase point: tasks are required to be behaviour-free
     * (pure accounting replay), so extra barriers only cost time.
     */
    void barrier();

    /** Run only the tasks of one scope to completion. */
    void barrier(WeaveScope scope);

    std::size_t tasks() const { return tasks_.size(); }
    std::size_t tasks(WeaveScope scope) const;
    std::uint64_t barriers() const { return barriers_; }

    /** Lane recorded for task `i` (NoLane if unbound). */
    std::uint32_t taskLane(std::size_t i) const
    {
        return tasks_[i].lane;
    }

  private:
    struct Task
    {
        std::function<void()> fn;
        WeaveScope scope = WeaveScope::Accounting;
        std::uint32_t lane = NoLane;
    };

    std::vector<Task> tasks_;
    WeaveRunner runner_;
    std::uint64_t barriers_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_SIM_WEAVE_HH
