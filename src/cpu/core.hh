/**
 * @file
 * In-order core model (paper Section 3.3): fixed-rate execution
 * between LLC misses, exactly one outstanding miss, full stall until
 * the miss returns.  Memory slowdowns therefore translate directly
 * into execution-time increases, the property the paper's performance
 * model relies on.
 *
 * Exposes the per-core TIC (total instructions committed) and TLM
 * (total LLC misses) counters; TIC is interpolated within the current
 * compute segment so epoch-boundary sampling is exact.
 */

#ifndef MEMSCALE_CPU_CORE_HH
#define MEMSCALE_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "cpu/sampler.hh"
#include "cpu/trace.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

struct CoreParams
{
    double cpuGHz = 4.0;
    /** Instruction budget after which the core reports done. */
    std::uint64_t instrBudget = 100'000'000;
    /** Keep generating traffic after the budget is reached. */
    bool runPastBudget = true;
};

class Core final : public MemClient, public CpuSampler
{
  public:
    Core(EventQueue &eq, CoreId id, TraceSource &source,
         MemoryController &mc, const CoreParams &params);

    /** MemClient: the outstanding miss returned (typed completion —
     * no per-miss std::function on the steady-state path). */
    void onMemComplete(Tick when, const MemRequest &req) override;

    /** Begin execution at the current tick. */
    void start();

    /** @name Performance counters (the CpuSampler surface). */
    /// @{
    /** Instructions committed by `now` (interpolated mid-segment). */
    std::uint64_t tic(Tick now) const override;
    /** LLC misses issued so far. */
    std::uint64_t tlm() const override { return tlm_; }
    /// @}

    CoreId id() const { return id_; }
    bool done() const { return doneAt_ != MaxTick; }
    Tick doneAt() const { return doneAt_; }
    Tick startedAt() const { return startedAt_; }

    /** CPI over the whole budget (valid once done). */
    double budgetCpi() const;

    /** Ticks per CPU cycle at the current clock. */
    Tick cpuPeriod() const { return cpuPeriod_; }

    /**
     * CPU DVFS (coordinated-scaling extension): re-clock the core.
     * Takes effect from the next compute segment; reported CPI stays
     * normalized to the nominal clock (i.e. it measures time).
     */
    void setFrequencyGHz(double ghz) override;

    /** Current core clock. */
    double frequencyGHz() const override { return ghz_; }

    /** Total ticks spent stalled on memory so far. */
    Tick stallTime() const { return stallTime_; }

    /** Callback fired when the instruction budget is reached. */
    void setOnDone(std::function<void()> fn) { onDone_ = std::move(fn); }

    /**
     * @name Trace prefetch (bound/weave kernel).
     *
     * Trace generation is libm-heavy (exponential inter-miss gaps)
     * and consumed strictly in sequence, so a weave worker can run
     * the generator ahead of the core: refillPrefetch() — registered
     * as a hub task — tops up a per-core FIFO of up to `chunks`
     * entries, and beginChunk() pops from it, falling back to inline
     * generation when the FIFO runs dry between barriers.  The
     * consumed chunk sequence (and its exhaustion point) is identical
     * to serial generation, so results are bit-identical.  Must stay
     * disabled when checkpointing: the source RNG would be ahead of
     * the consumption point, changing the snapshot.
     */
    /// @{
    void setPrefetch(std::size_t chunks);

    /** Top up the FIFO from the trace source (weave worker). */
    void refillPrefetch();
    /// @}

    /** @name Checkpoint/restore */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);

    /** Reconstruct the closure of a tagged pending event (restore). */
    EventCallback rebuildEvent(std::uint32_t kind);
    /// @}

  private:
    void beginChunk();
    bool nextChunk();
    void issueMiss();

    EventQueue &eq_;
    CoreId id_;
    TraceSource &source_;
    MemoryController &mc_;
    CoreParams params_;
    Tick cpuPeriod_;          ///< current clock period
    Tick nominalPeriod_;      ///< nominal clock (CPI accounting)
    double ghz_;

    TraceChunk chunk_;
    bool computing_ = false;
    bool halted_ = false;
    Tick chunkStart_ = 0;
    Tick chunkLen_ = 0;

    std::uint64_t retired_ = 0;
    std::uint64_t tlm_ = 0;
    Tick stallTime_ = 0;
    Tick stallStart_ = 0;
    Tick startedAt_ = 0;
    Tick doneAt_ = MaxTick;
    std::function<void()> onDone_;

    std::size_t prefetchDepth_ = 0;      ///< 0 = prefetch off
    std::vector<TraceChunk> prefetch_;   ///< FIFO buffer
    std::size_t prefetchHead_ = 0;       ///< consumed prefix
    bool srcExhausted_ = false;          ///< source_.next returned false
};

} // namespace memscale

#endif // MEMSCALE_CPU_CORE_HH
