/**
 * @file
 * In-order core model (paper Section 3.3): fixed-rate execution
 * between LLC misses, exactly one outstanding miss, full stall until
 * the miss returns.  Memory slowdowns therefore translate directly
 * into execution-time increases, the property the paper's performance
 * model relies on.
 *
 * Exposes the per-core TIC (total instructions committed) and TLM
 * (total LLC misses) counters; TIC is interpolated within the current
 * compute segment so epoch-boundary sampling is exact.
 */

#ifndef MEMSCALE_CPU_CORE_HH
#define MEMSCALE_CPU_CORE_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "cpu/trace.hh"
#include "mem/client.hh"
#include "mem/controller.hh"
#include "sim/event_queue.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

struct CoreParams
{
    double cpuGHz = 4.0;
    /** Instruction budget after which the core reports done. */
    std::uint64_t instrBudget = 100'000'000;
    /** Keep generating traffic after the budget is reached. */
    bool runPastBudget = true;
};

class Core final : public MemClient
{
  public:
    Core(EventQueue &eq, CoreId id, TraceSource &source,
         MemoryController &mc, const CoreParams &params);

    /** MemClient: the outstanding miss returned (typed completion —
     * no per-miss std::function on the steady-state path). */
    void onMemComplete(Tick when, const MemRequest &req) override;

    /** Begin execution at the current tick. */
    void start();

    /** @name Performance counters. */
    /// @{
    /** Instructions committed by `now` (interpolated mid-segment). */
    std::uint64_t tic(Tick now) const;
    /** LLC misses issued so far. */
    std::uint64_t tlm() const { return tlm_; }
    /// @}

    CoreId id() const { return id_; }
    bool done() const { return doneAt_ != MaxTick; }
    Tick doneAt() const { return doneAt_; }
    Tick startedAt() const { return startedAt_; }

    /** CPI over the whole budget (valid once done). */
    double budgetCpi() const;

    /** Ticks per CPU cycle at the current clock. */
    Tick cpuPeriod() const { return cpuPeriod_; }

    /**
     * CPU DVFS (coordinated-scaling extension): re-clock the core.
     * Takes effect from the next compute segment; reported CPI stays
     * normalized to the nominal clock (i.e. it measures time).
     */
    void setFrequencyGHz(double ghz);

    /** Current core clock. */
    double frequencyGHz() const { return ghz_; }

    /** Total ticks spent stalled on memory so far. */
    Tick stallTime() const { return stallTime_; }

    /** Callback fired when the instruction budget is reached. */
    void setOnDone(std::function<void()> fn) { onDone_ = std::move(fn); }

    /** @name Checkpoint/restore */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);

    /** Reconstruct the closure of a tagged pending event (restore). */
    EventCallback rebuildEvent(std::uint32_t kind);
    /// @}

  private:
    void beginChunk();
    void issueMiss();

    EventQueue &eq_;
    CoreId id_;
    TraceSource &source_;
    MemoryController &mc_;
    CoreParams params_;
    Tick cpuPeriod_;          ///< current clock period
    Tick nominalPeriod_;      ///< nominal clock (CPI accounting)
    double ghz_;

    TraceChunk chunk_;
    bool computing_ = false;
    bool halted_ = false;
    Tick chunkStart_ = 0;
    Tick chunkLen_ = 0;

    std::uint64_t retired_ = 0;
    std::uint64_t tlm_ = 0;
    Tick stallTime_ = 0;
    Tick stallStart_ = 0;
    Tick startedAt_ = 0;
    Tick doneAt_ = MaxTick;
    std::function<void()> onDone_;
};

} // namespace memscale

#endif // MEMSCALE_CPU_CORE_HH
