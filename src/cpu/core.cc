#include "cpu/core.hh"

#include <cmath>

#include "common/log.hh"

namespace memscale
{

Core::Core(EventQueue &eq, CoreId id, TraceSource &source,
           MemoryController &mc, const CoreParams &params)
    : eq_(eq), id_(id), source_(source), mc_(mc), params_(params),
      cpuPeriod_(periodFromMHz(params.cpuGHz * 1000.0)),
      nominalPeriod_(cpuPeriod_), ghz_(params.cpuGHz)
{
}

void
Core::setFrequencyGHz(double ghz)
{
    if (ghz <= 0.0)
        panic("Core: non-positive frequency %g GHz", ghz);
    ghz_ = ghz;
    cpuPeriod_ = periodFromMHz(ghz * 1000.0);
}

void
Core::start()
{
    startedAt_ = eq_.now();
    beginChunk();
}

void
Core::beginChunk()
{
    if (!source_.next(chunk_)) {
        halted_ = true;
        if (doneAt_ == MaxTick) {
            doneAt_ = eq_.now();
            if (onDone_)
                onDone_();
        }
        return;
    }

    chunkStart_ = eq_.now();
    chunkLen_ = static_cast<Tick>(
        std::llround(static_cast<double>(chunk_.instructions) *
                     chunk_.cpi * static_cast<double>(cpuPeriod_)));
    computing_ = true;
    if (chunkLen_ == 0) {
        issueMiss();
    } else {
        eq_.scheduleIn(chunkLen_, [this] { issueMiss(); });
    }
}

void
Core::issueMiss()
{
    computing_ = false;
    retired_ += chunk_.instructions;
    ++tlm_;
    stallStart_ = eq_.now();

    if (chunk_.hasWriteback)
        mc_.writeback(chunk_.writebackAddr, id_);
    mc_.read(chunk_.missAddr, id_, this);
}

void
Core::onMemComplete(Tick when, const MemRequest &)
{
    stallTime_ += when - stallStart_;
    // The missing instruction commits when its data arrives.
    retired_ += 1;

    if (doneAt_ == MaxTick && retired_ >= params_.instrBudget) {
        doneAt_ = when;
        if (onDone_)
            onDone_();
        if (!params_.runPastBudget) {
            halted_ = true;
            return;
        }
    }
    beginChunk();
}

std::uint64_t
Core::tic(Tick now) const
{
    if (!computing_ || chunkLen_ == 0 || now <= chunkStart_)
        return retired_;
    Tick elapsed = now - chunkStart_;
    if (elapsed >= chunkLen_)
        return retired_ + chunk_.instructions;
    double frac = static_cast<double>(elapsed) /
                  static_cast<double>(chunkLen_);
    return retired_ + static_cast<std::uint64_t>(
        frac * static_cast<double>(chunk_.instructions));
}

double
Core::budgetCpi() const
{
    if (doneAt_ == MaxTick)
        return 0.0;
    double cycles = static_cast<double>(doneAt_ - startedAt_) /
                    static_cast<double>(nominalPeriod_);
    return cycles / static_cast<double>(params_.instrBudget);
}

} // namespace memscale
