#include "cpu/core.hh"

#include <cmath>

#include "common/log.hh"
#include "sim/event_kinds.hh"

namespace memscale
{

Core::Core(EventQueue &eq, CoreId id, TraceSource &source,
           MemoryController &mc, const CoreParams &params)
    : eq_(eq), id_(id), source_(source), mc_(mc), params_(params),
      cpuPeriod_(periodFromMHz(params.cpuGHz * 1000.0)),
      nominalPeriod_(cpuPeriod_), ghz_(params.cpuGHz)
{
}

void
Core::setFrequencyGHz(double ghz)
{
    if (ghz <= 0.0)
        panic("Core: non-positive frequency %g GHz", ghz);
    ghz_ = ghz;
    cpuPeriod_ = periodFromMHz(ghz * 1000.0);
}

void
Core::start()
{
    startedAt_ = eq_.now();
    beginChunk();
}

void
Core::setPrefetch(std::size_t chunks)
{
    prefetchDepth_ = chunks;
    prefetch_.clear();
    prefetchHead_ = 0;
    if (chunks > 0)
        prefetch_.reserve(chunks);
}

void
Core::refillPrefetch()
{
    if (prefetchDepth_ == 0 || srcExhausted_)
        return;
    if (prefetchHead_ > 0) {
        prefetch_.erase(prefetch_.begin(),
                        prefetch_.begin() +
                            static_cast<std::ptrdiff_t>(prefetchHead_));
        prefetchHead_ = 0;
    }
    while (prefetch_.size() < prefetchDepth_) {
        TraceChunk c;
        if (!source_.next(c)) {
            srcExhausted_ = true;
            break;
        }
        prefetch_.push_back(c);
    }
}

bool
Core::nextChunk()
{
    if (prefetchDepth_ == 0)
        return source_.next(chunk_);
    // FIFO first, then inline fallback between barriers; either way
    // the chunks are consumed in exact generation order, and the
    // exhaustion point lands on the same chunk index as a serial run.
    if (prefetchHead_ < prefetch_.size()) {
        chunk_ = prefetch_[prefetchHead_++];
        return true;
    }
    if (srcExhausted_)
        return false;
    if (!source_.next(chunk_)) {
        srcExhausted_ = true;
        return false;
    }
    return true;
}

void
Core::beginChunk()
{
    if (!nextChunk()) {
        halted_ = true;
        if (doneAt_ == MaxTick) {
            doneAt_ = eq_.now();
            if (onDone_)
                onDone_();
        }
        return;
    }

    chunkStart_ = eq_.now();
    chunkLen_ = static_cast<Tick>(
        std::llround(static_cast<double>(chunk_.instructions) *
                     chunk_.cpi * static_cast<double>(cpuPeriod_)));
    computing_ = true;
    if (chunkLen_ == 0) {
        issueMiss();
    } else {
        eq_.scheduleIn(chunkLen_, [this] { issueMiss(); },
                       EventClass::Hardware, {EvCoreIssueMiss, id_});
    }
}

void
Core::issueMiss()
{
    computing_ = false;
    retired_ += chunk_.instructions;
    ++tlm_;
    stallStart_ = eq_.now();

    if (chunk_.hasWriteback)
        mc_.writeback(chunk_.writebackAddr, id_);
    mc_.read(chunk_.missAddr, id_, this);
}

void
Core::onMemComplete(Tick when, const MemRequest &)
{
    stallTime_ += when - stallStart_;
    // The missing instruction commits when its data arrives.
    retired_ += 1;

    if (doneAt_ == MaxTick && retired_ >= params_.instrBudget) {
        doneAt_ = when;
        if (onDone_)
            onDone_();
        if (!params_.runPastBudget) {
            halted_ = true;
            return;
        }
    }
    beginChunk();
}

std::uint64_t
Core::tic(Tick now) const
{
    if (!computing_ || chunkLen_ == 0 || now <= chunkStart_)
        return retired_;
    Tick elapsed = now - chunkStart_;
    if (elapsed >= chunkLen_)
        return retired_ + chunk_.instructions;
    double frac = static_cast<double>(elapsed) /
                  static_cast<double>(chunkLen_);
    return retired_ + static_cast<std::uint64_t>(
        frac * static_cast<double>(chunk_.instructions));
}

void
Core::saveState(SectionWriter &w) const
{
    w.f64(ghz_);
    w.u64(chunk_.instructions);
    w.f64(chunk_.cpi);
    w.u64(chunk_.missAddr);
    w.b(chunk_.hasWriteback);
    w.u64(chunk_.writebackAddr);
    w.b(computing_);
    w.b(halted_);
    w.u64(chunkStart_);
    w.u64(chunkLen_);
    w.u64(retired_);
    w.u64(tlm_);
    w.u64(stallTime_);
    w.u64(stallStart_);
    w.u64(startedAt_);
    w.u64(doneAt_);
}

void
Core::restoreState(SectionReader &r)
{
    // Recomputes cpuPeriod_ from the clock, exactly as the live run
    // did; nominalPeriod_ is a constructor constant.
    setFrequencyGHz(r.f64());
    chunk_.instructions = r.u64();
    chunk_.cpi = r.f64();
    chunk_.missAddr = r.u64();
    chunk_.hasWriteback = r.b();
    chunk_.writebackAddr = r.u64();
    computing_ = r.b();
    halted_ = r.b();
    chunkStart_ = r.u64();
    chunkLen_ = r.u64();
    retired_ = r.u64();
    tlm_ = r.u64();
    stallTime_ = r.u64();
    stallStart_ = r.u64();
    startedAt_ = r.u64();
    doneAt_ = r.u64();
}

EventCallback
Core::rebuildEvent(std::uint32_t kind)
{
    if (kind != EvCoreIssueMiss)
        panic("Core %u: cannot rebuild event kind %s", id_,
              eventKindName(kind));
    return [this] { issueMiss(); };
}

double
Core::budgetCpi() const
{
    if (doneAt_ == MaxTick)
        return 0.0;
    double cycles = static_cast<double>(doneAt_ - startedAt_) /
                    static_cast<double>(nominalPeriod_);
    return cycles / static_cast<double>(params_.instrBudget);
}

} // namespace memscale
