/**
 * @file
 * Interface between cores and workload trace generators.
 *
 * The paper's methodology collects LLC miss/writeback traces with M5
 * and replays them in a detailed memory simulator; a core consumes a
 * stream of "chunks": a run of non-missing instructions followed by
 * one LLC miss (optionally accompanied by a writeback of a victim
 * line).
 */

#ifndef MEMSCALE_CPU_TRACE_HH
#define MEMSCALE_CPU_TRACE_HH

#include <cstdint>

#include "common/types.hh"

namespace memscale
{

/** One inter-miss execution segment. */
struct TraceChunk
{
    std::uint64_t instructions = 0;  ///< instructions before the miss
    double cpi = 1.0;                ///< non-memory CPI of the segment
    Addr missAddr = 0;               ///< LLC miss (read) address
    bool hasWriteback = false;
    Addr writebackAddr = 0;
};

/** Producer of TraceChunks for one core. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next chunk.
     * @retval false when the stream is exhausted (the core halts).
     */
    virtual bool next(TraceChunk &chunk) = 0;
};

} // namespace memscale

#endif // MEMSCALE_CPU_TRACE_HH
