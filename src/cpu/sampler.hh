/**
 * @file
 * The counter surface the epoch loop reads from "a CPU core".
 *
 * The paper's OS-level loop only ever touches four things per core:
 * the TIC/TLM performance counters at a sampling boundary and the
 * clock (read + re-clock for coordinated DVFS).  Pulling that surface
 * into an interface lets the epoch controller and every dynamic
 * policy drive any instruction-retiring agent — the closed-loop
 * trace-replay Core, or an open-loop serving worker whose "program"
 * is whatever requests arrived — without knowing which one it has.
 */

#ifndef MEMSCALE_CPU_SAMPLER_HH
#define MEMSCALE_CPU_SAMPLER_HH

#include <cstdint>

#include "common/types.hh"

namespace memscale
{

class CpuSampler
{
  public:
    virtual ~CpuSampler() = default;

    /** Instructions committed by `now`. */
    virtual std::uint64_t tic(Tick now) const = 0;

    /** LLC misses issued so far. */
    virtual std::uint64_t tlm() const = 0;

    /** Current core clock. */
    virtual double frequencyGHz() const = 0;

    /** Re-clock the core (coordinated-DVFS extension). */
    virtual void setFrequencyGHz(double ghz) = 0;
};

} // namespace memscale

#endif // MEMSCALE_CPU_SAMPLER_HH
