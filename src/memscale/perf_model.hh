/**
 * @file
 * The MemScale counter-driven performance model (paper Section 3.3,
 * Eqs. 2-9).
 *
 * From one profiling window the model derives frequency-invariant
 * inputs — queue-pressure factors xi_bank and xi_bus, the average
 * device access time E[T_device] (Eq. 6), and per-core alpha and
 * E[TPI_cpu] — and then predicts E[TPI_mem], CPI, and execution time
 * at *any* candidate frequency via
 *
 *     E[TPI_mem](f) = xi_bank * (T_MC(f) + T_device
 *                                + xi_bus * T_burst(f))      (Eq. 9)
 *     E[CPI_i](f)   = (TPI_cpu_i + alpha_i * TPI_mem(f)) * F_cpu.
 */

#ifndef MEMSCALE_MEMSCALE_PERF_MODEL_HH
#define MEMSCALE_MEMSCALE_PERF_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/timing.hh"
#include "mem/counters.hh"

namespace memscale
{

/** Per-core counter delta over a sampling window. */
struct CoreSample
{
    std::uint64_t tic = 0;   ///< instructions committed
    std::uint64_t tlm = 0;   ///< LLC misses
};

/** Everything the OS reads at a profiling/epoch boundary. */
struct ProfileData
{
    McCounters mc;                  ///< MC counter deltas
    std::vector<CoreSample> cores;  ///< per-core deltas
    Tick windowLen = 0;
    FreqIndex freqDuring = nominalFreqIndex;
};

class PerfModel
{
  public:
    explicit PerfModel(double cpu_ghz = 4.0) : cpuGHz_(cpu_ghz) {}

    /** Derive model inputs from a profiling window. */
    void calibrate(const ProfileData &profile);

    /** E[TPI_mem] at a grid frequency, in seconds (Eq. 9). */
    double tpiMem(FreqIndex f) const;

    /** Predicted CPI of a core at a grid frequency (Eq. 3). */
    double cpi(std::uint32_t core, FreqIndex f) const;

    /** Seconds per instruction of a core at a grid frequency. */
    double tpi(std::uint32_t core, FreqIndex f) const;

    /**
     * Predicted time for a core to repeat its profiled instruction
     * share at frequency f (used for energy-model time scaling).
     */
    double coreTime(std::uint32_t core, FreqIndex f) const;

    /** Mean of coreTime over all cores. */
    double meanTime(FreqIndex f) const;

    /** @name Calibrated inputs (exposed for tests/diagnostics). */
    /// @{
    double xiBank() const { return xiBank_; }
    double xiBus() const { return xiBus_; }
    double tDevice() const { return tDevice_; }
    std::size_t numCores() const { return cores_.size(); }
    double alpha(std::uint32_t core) const { return cores_[core].alpha; }
    double tpiCpu(std::uint32_t c) const { return cores_[c].tpiCpu; }
    std::uint64_t
    instructions(std::uint32_t c) const
    {
        return cores_[c].instr;
    }
    /// @}

  private:
    struct CoreCal
    {
        double alpha = 0.0;     ///< misses per instruction
        double tpiCpu = 0.0;    ///< seconds per instr on the CPU side
        std::uint64_t instr = 0;
        bool active = true;     ///< produced any work this window
    };

  public:
    /** Whether the core did any work during the profiled window. */
    bool
    active(std::uint32_t core) const
    {
        return cores_[core].active;
    }

  private:

    double cpuGHz_;
    double xiBank_ = 1.0;
    double xiBus_ = 1.0;
    double tDevice_ = 0.0;
    std::vector<CoreCal> cores_;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_PERF_MODEL_HH
