#include "memscale/epoch_controller.hh"

#include "common/log.hh"
#include "obs/epoch_recorder.hh"
#include "sim/event_kinds.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

EpochController::EpochController(
    EventQueue &eq, MemoryController &mc,
    const std::vector<CpuSampler *> &cores, Policy &policy,
    const PolicyContext &ctx)
    : eq_(eq), mc_(mc), cores_(cores), policy_(policy), ctx_(ctx)
{
}

EpochController::Snapshot
EpochController::takeSnapshot()
{
    Snapshot s;
    s.mc = mc_.sampleCounters();
    s.at = eq_.now();
    s.freq = mc_.frequency();
    s.cores.reserve(cores_.size());
    for (CpuSampler *c : cores_)
        s.cores.push_back(CoreSample{c->tic(s.at), c->tlm()});
    return s;
}

ProfileData
EpochController::delta(const Snapshot &s0, const Snapshot &s1)
{
    ProfileData d;
    d.mc = s1.mc - s0.mc;
    d.windowLen = s1.at - s0.at;
    d.freqDuring = s1.freq;
    d.cores.reserve(s0.cores.size());
    for (std::size_t i = 0; i < s0.cores.size(); ++i) {
        d.cores.push_back(CoreSample{
            s1.cores[i].tic - s0.cores[i].tic,
            s1.cores[i].tlm - s0.cores[i].tlm});
    }
    return d;
}

void
EpochController::start()
{
    beginEpoch();
}

void
EpochController::beginEpoch()
{
    epochStart_ = takeSnapshot();
    epochStartTick_ = eq_.now();
    eq_.scheduleIn(ctx_.profileLen, [this] { endProfile(); },
                   EventClass::Policy, {EvEpochEndProfile});
}

void
EpochController::endProfile()
{
    Snapshot now = takeSnapshot();
    ProfileData profile = delta(epochStart_, now);
    FreqIndex chosen =
        policy_.selectFrequency(profile, ctx_, mc_.frequency());
    if (chosen != mc_.frequency())
        mc_.setFrequency(chosen);

    // Coordinated policies also re-clock the cores.
    double ghz = policy_.selectedCpuGHz();
    if (ghz > 0.0 && !cores_.empty() &&
        cores_[0]->frequencyGHz() != ghz) {
        if (beforeCpuFreqChange_)
            beforeCpuFreqChange_();
        for (CpuSampler *c : cores_)
            c->setFrequencyGHz(ghz);
    }

    Tick epoch_end = epochStartTick_ + ctx_.epochLen;
    if (epoch_end <= eq_.now())
        epoch_end = eq_.now() + 1;
    eq_.schedule(epoch_end, [this] { endEpoch(); },
                 EventClass::Policy, {EvEpochEndEpoch});
}

void
EpochController::endEpoch()
{
    Snapshot now = takeSnapshot();
    ProfileData epoch = delta(epochStart_, now);
    policy_.endEpoch(epoch, ctx_);

    EpochRecord rec;
    rec.start = epochStartTick_;
    rec.end = now.at;
    rec.busMHz = mc_.busMHz();
    rec.cpuGHz =
        cores_.empty() ? ctx_.cpuGHz : cores_[0]->frequencyGHz();
    rec.coreCpi.reserve(epoch.cores.size());
    const double cycles = tickToSec(epoch.windowLen) *
                          ctx_.cpuGHz * 1e9;
    for (const CoreSample &cs : epoch.cores) {
        rec.coreCpi.push_back(
            cs.tic > 0 ? cycles / static_cast<double>(cs.tic) : 0.0);
    }
    rec.channelUtil =
        static_cast<double>(epoch.mc.busBusyTime) /
        (static_cast<double>(mc_.config().numChannels) *
         static_cast<double>(epoch.windowLen));
    history_.push_back(std::move(rec));

    if (recorder_) {
        const EpochRecord &er = history_.back();
        EpochSample s;
        s.start = er.start;
        s.end = er.end;
        s.busMHz = er.busMHz;
        s.cpuGHz = er.cpuGHz;
        s.channelUtil = er.channelUtil;
        s.coreCpi = er.coreCpi;
        PolicyDecision d = policy_.lastDecision();
        s.haveDecision = d.valid;
        if (d.valid) {
            s.predCpi = d.predictedCpi;
            s.predMemJ = d.predictedMemJ;
            s.predSysJ = d.predictedSysJ;
            s.ser = d.ser;
            s.minSlack = d.minSlack;
        }
        recorder_->record(s);
    }

    beginEpoch();
}

void
EpochController::saveState(SectionWriter &w) const
{
    epochStart_.mc.saveState(w);
    w.u32(static_cast<std::uint32_t>(epochStart_.cores.size()));
    for (const CoreSample &cs : epochStart_.cores) {
        w.u64(cs.tic);
        w.u64(cs.tlm);
    }
    w.u64(epochStart_.at);
    w.u32(epochStart_.freq);
    w.u64(epochStartTick_);
    w.u32(static_cast<std::uint32_t>(history_.size()));
    for (const EpochRecord &rec : history_) {
        w.u64(rec.start);
        w.u64(rec.end);
        w.u32(rec.busMHz);
        w.f64(rec.cpuGHz);
        w.u32(static_cast<std::uint32_t>(rec.coreCpi.size()));
        for (double cpi : rec.coreCpi)
            w.f64(cpi);
        w.f64(rec.channelUtil);
    }
}

void
EpochController::restoreState(SectionReader &r)
{
    epochStart_.mc.restoreState(r);
    epochStart_.cores.assign(r.u32(), CoreSample{});
    for (CoreSample &cs : epochStart_.cores) {
        cs.tic = r.u64();
        cs.tlm = r.u64();
    }
    epochStart_.at = r.u64();
    epochStart_.freq = r.u32();
    epochStartTick_ = r.u64();
    history_.assign(r.u32(), EpochRecord{});
    for (EpochRecord &rec : history_) {
        rec.start = r.u64();
        rec.end = r.u64();
        rec.busMHz = r.u32();
        rec.cpuGHz = r.f64();
        rec.coreCpi.assign(r.u32(), 0.0);
        for (double &cpi : rec.coreCpi)
            cpi = r.f64();
        rec.channelUtil = r.f64();
    }
}

EventCallback
EpochController::rebuildEvent(std::uint32_t kind)
{
    switch (kind) {
      case EvEpochEndProfile:
        return [this] { endProfile(); };
      case EvEpochEndEpoch:
        return [this] { endEpoch(); };
      default:
        panic("EpochController: cannot rebuild event kind %u (%s)",
              kind, eventKindName(kind));
    }
}

} // namespace memscale
