// SlackTracker is header-only; this anchors it in ms_core.
#include "memscale/slack.hh"
