#include "memscale/perf_model.hh"

#include <algorithm>

#include "common/log.hh"

namespace memscale
{

void
PerfModel::calibrate(const ProfileData &profile)
{
    const McCounters &mc = profile.mc;
    xiBank_ = mc.xiBank();
    xiBus_ = mc.xiBus();

    // E[T_device], Eq. 6.  All terms are wall-clock-fixed device
    // parameters, so the estimate holds at every frequency.
    const TimingParams &tp = TimingParams::at(profile.freqDuring);
    const double tCL = tickToSec(tp.tCL);
    const double tRCD = tickToSec(tp.tRCD);
    const double tRP = tickToSec(tp.tRP);
    const double tXP = tickToSec(tp.tXP);
    const double hits = static_cast<double>(mc.rbhc);
    const double cb = static_cast<double>(mc.cbmc);
    const double ob = static_cast<double>(mc.obmc);
    const double pd = static_cast<double>(mc.epdc);
    const double n = hits + cb + ob;
    if (n > 0.0) {
        tDevice_ = (tCL * hits + (tRCD + tCL) * cb +
                    (tRP + tRCD + tCL) * ob + tXP * pd) / n;
    } else {
        tDevice_ = tRCD + tCL;   // idle default: closed-bank access
    }

    // Per-core alpha and CPU-side time per instruction.  The memory
    // component measured during profiling is split out using the model
    // evaluated at the profiling frequency.
    cores_.assign(profile.cores.size(), CoreCal{});
    const double window = tickToSec(profile.windowLen);
    const double tpi_mem_prof = tpiMem(profile.freqDuring);
    for (std::size_t i = 0; i < profile.cores.size(); ++i) {
        const CoreSample &cs = profile.cores[i];
        CoreCal &cal = cores_[i];
        cal.instr = cs.tic;
        if (cs.tic == 0) {
            // Idle or finished core: it neither constrains frequency
            // selection nor contributes predicted work time.
            cal.active = cs.tlm != 0;
            cal.alpha = cal.active ? 1.0 : 0.0;
            cal.tpiCpu = 0.0;
            continue;
        }
        cal.alpha = static_cast<double>(cs.tlm) /
                    static_cast<double>(cs.tic);
        double tpi_total = window / static_cast<double>(cs.tic);
        cal.tpiCpu = tpi_total - cal.alpha * tpi_mem_prof;
        // Guard against sampling noise driving the CPU share negative.
        cal.tpiCpu = std::max(cal.tpiCpu, 0.05 / (cpuGHz_ * 1e9));
    }
}

double
PerfModel::tpiMem(FreqIndex f) const
{
    const TimingParams &tp = TimingParams::at(f);
    const double s_bank = tickToSec(tp.tMC) + tDevice_;
    const double s_bus = tickToSec(tp.tBURST);
    return xiBank_ * (s_bank + xiBus_ * s_bus);
}

double
PerfModel::tpi(std::uint32_t core, FreqIndex f) const
{
    const CoreCal &cal = cores_[core];
    return cal.tpiCpu + cal.alpha * tpiMem(f);
}

double
PerfModel::cpi(std::uint32_t core, FreqIndex f) const
{
    return tpi(core, f) * cpuGHz_ * 1e9;
}

double
PerfModel::coreTime(std::uint32_t core, FreqIndex f) const
{
    const CoreCal &cal = cores_[core];
    return static_cast<double>(cal.instr) * tpi(core, f);
}

double
PerfModel::meanTime(FreqIndex f) const
{
    if (cores_.empty())
        return 0.0;
    double sum = 0.0;
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < cores_.size(); ++i) {
        if (!cores_[i].active)
            continue;
        sum += coreTime(i, f);
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace memscale
