/**
 * @file
 * Tail-latency window sample: what an SLO-aware policy reads from the
 * serving front end at each profiling boundary.
 *
 * Lives in its own header so the policy layer and the serving harness
 * can share the type without depending on each other.
 */

#ifndef MEMSCALE_MEMSCALE_TAIL_WINDOW_HH
#define MEMSCALE_MEMSCALE_TAIL_WINDOW_HH

#include <cstdint>

namespace memscale
{

/**
 * Latency statistics over the window since the previous probe call
 * (the probe consumes the window: reading it resets the underlying
 * histogram).  Latencies are end-to-end — arrival to last-miss
 * completion — in microseconds.
 */
struct TailWindow
{
    std::uint64_t completions = 0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double meanUs = 0.0;
    /** Requests waiting in the front-end queue right now. */
    std::uint64_t queued = 0;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_TAIL_WINDOW_HH
