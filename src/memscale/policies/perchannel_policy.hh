/**
 * @file
 * Per-channel MemScale (paper Section 6 future work): each channel is
 * re-locked independently using its own counter block, so a channel
 * serving hot banks can stay fast while colder channels scale deeper.
 *
 * A core's memory time under mixed channel frequencies is modelled as
 * the traffic-weighted mix of the per-channel Eq. 9 predictions; the
 * slack feasibility test then runs against that blend.
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_PERCHANNEL_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_PERCHANNEL_POLICY_HH

#include "memscale/policies/policy.hh"
#include "memscale/slack.hh"

namespace memscale
{

class PerChannelMemScalePolicy : public Policy
{
  public:
    std::string name() const override { return "memscale-perchannel"; }
    bool dynamic() const override { return true; }

    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

    FreqIndex selectFrequency(const ProfileData &profile,
                              const PolicyContext &ctx,
                              FreqIndex current) override;

    void endEpoch(const ProfileData &epoch,
                  const PolicyContext &ctx) override;

    /**
     * The epoch controller drives the whole-subsystem interface; this
     * policy additionally needs the controller to apply per-channel
     * choices, so it keeps a reference from configure().
     */
    const std::vector<FreqIndex> &lastChoices() const
    {
        return choices_;
    }

    void
    saveState(SectionWriter &w) const override
    {
        slack_.saveState(w);
        w.b(slackReady_);
        w.u32(static_cast<std::uint32_t>(choices_.size()));
        for (FreqIndex f : choices_)
            w.u32(f);
        w.u32(static_cast<std::uint32_t>(chanPrev_.size()));
        for (const McCounters &c : chanPrev_)
            c.saveState(w);
    }

    void
    restoreState(SectionReader &r) override
    {
        slack_.restoreState(r);
        slackReady_ = r.b();
        choices_.assign(r.u32(), nominalFreqIndex);
        for (FreqIndex &f : choices_)
            f = r.u32();
        chanPrev_.assign(r.u32(), McCounters{});
        for (McCounters &c : chanPrev_)
            c.restoreState(r);
    }

  private:
    MemoryController *mc_ = nullptr;
    SlackTracker slack_;
    PerfModel perf_;
    bool slackReady_ = false;
    std::vector<FreqIndex> choices_;
    /** Previous per-channel counter snapshots (for window deltas). */
    std::vector<McCounters> chanPrev_;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_PERCHANNEL_POLICY_HH
