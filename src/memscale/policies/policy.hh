/**
 * @file
 * Energy-management policy interface and registry.
 *
 * Policies come in two flavours: static configurations (baseline,
 * Static, Fast-PD, Slow-PD, Decoupled) that only set up the memory
 * controller once, and dynamic policies (the MemScale variants) that
 * the epoch controller consults at every profiling boundary.
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_POLICY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dram/timing.hh"
#include "mem/controller.hh"
#include "memscale/energy_model.hh"
#include "memscale/perf_model.hh"
#include "memscale/tail_window.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;
class StatRegistry;

/**
 * Decision trail of a dynamic policy's most recent epoch, captured
 * for observability (the EpochRecorder stores one per epoch).  All
 * values are pure by-products of computations the policy already
 * performs; filling the struct must never change policy behaviour.
 */
struct PolicyDecision
{
    bool valid = false;
    FreqIndex chosen = nominalFreqIndex;
    double predictedCpi = 0.0;  ///< mean predicted CPI at `chosen`
    double predictedMemJ = 0.0; ///< predicted memory energy (J)
    double predictedSysJ = 0.0; ///< predicted system energy (J)
    double ser = 1.0;           ///< system energy ratio vs. nominal
    double minSlack = 0.0;      ///< tightest per-core slack (s)
};

class Policy
{
  public:
    virtual ~Policy() = default;

    /** Human-readable policy name. */
    virtual std::string name() const = 0;

    /** One-time memory-controller setup (frequency, PD mode, ...). */
    virtual void configure(MemoryController &mc,
                           const PolicyContext &ctx);

    /** Whether the epoch controller should drive this policy. */
    virtual bool dynamic() const { return false; }

    /**
     * Dynamic policies: pick the frequency for the rest of the epoch
     * from the profiling window.  Default: keep the current one.
     */
    virtual FreqIndex
    selectFrequency(const ProfileData &profile,
                    const PolicyContext &ctx, FreqIndex current)
    {
        (void)profile;
        (void)ctx;
        return current;
    }

    /** Dynamic policies: end-of-epoch accounting (slack update). */
    virtual void
    endEpoch(const ProfileData &epoch, const PolicyContext &ctx)
    {
        (void)epoch;
        (void)ctx;
    }

    /**
     * Coordinated-scaling policies: CPU clock chosen by the last
     * selectFrequency call, in GHz; 0 means "leave the cores alone".
     * The epoch controller applies it to every core.
     */
    virtual double selectedCpuGHz() const { return 0.0; }

    /**
     * Observability: the decision trail of the most recent epoch.
     * Static policies (and dynamic ones that don't implement it)
     * report an invalid/empty decision.
     */
    virtual PolicyDecision lastDecision() const { return {}; }

    /**
     * Observability: publish policy-internal gauges (slack balance,
     * last SER, ...) under `prefix`.  Default: nothing.
     */
    virtual void
    registerStats(StatRegistry &reg, const std::string &prefix)
    {
        (void)reg;
        (void)prefix;
    }

    /**
     * Serving runs: give the policy a probe into the front end's
     * windowed tail-latency statistics.  Calling the probe consumes
     * the window, so a policy should read it exactly once per
     * selectFrequency.  Default: ignore it — CPI-slack policies work
     * unchanged under open-loop load.
     */
    virtual void
    attachTailProbe(std::function<TailWindow()> probe)
    {
        (void)probe;
    }

    /**
     * @name Checkpoint/restore of policy-internal state (slack
     * accounts, decision trails).  Static policies are stateless
     * after configure(); the defaults serialize nothing.  Restore
     * runs after configure() on the resumed run.
     */
    /// @{
    virtual void saveState(SectionWriter &w) const { (void)w; }
    virtual void restoreState(SectionReader &r) { (void)r; }
    /// @}
};

/**
 * Policy factory.  Known names: "baseline", "static", "fastpd",
 * "slowpd", "decoupled", "memscale", "memscale-memenergy",
 * "memscale-fastpd".
 */
std::unique_ptr<Policy> makePolicy(const std::string &name);

/** All registered policy names. */
std::vector<std::string> policyNames();

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_POLICY_HH
