/**
 * @file
 * Fast-PD / Slow-PD: today's aggressive memory controllers, which
 * transition a rank to (fast- or slow-exit) precharge powerdown the
 * moment its last open bank closes (paper Section 4.2.3).
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_POWERDOWN_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_POWERDOWN_POLICY_HH

#include "memscale/policies/policy.hh"

namespace memscale
{

class PowerdownPolicy : public Policy
{
  public:
    explicit PowerdownPolicy(PowerdownMode mode) : mode_(mode) {}

    std::string name() const override;

    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

  private:
    PowerdownMode mode_;
};

/**
 * Memory throttling (paper Section 5, related work): caps the request
 * rate at nominal frequency.  Limits peak power/temperature but, as
 * the paper argues, delaying accesses conserves essentially no
 * energy -- included as the contrast baseline.
 */
class ThrottlePolicy : public Policy
{
  public:
    explicit ThrottlePolicy(double max_util = 0.5)
        : maxUtil_(max_util)
    {}

    std::string name() const override { return "throttle"; }
    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

    double maxUtilization() const { return maxUtil_; }

  private:
    double maxUtil_;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_POWERDOWN_POLICY_HH
