#include "memscale/policies/coscale_policy.hh"

#include <limits>

#include "common/log.hh"
#include "memscale/energy_model.hh"

namespace memscale
{

constexpr std::array<double, 7> CoScalePolicy::cpuGridGHz;

void
CoScalePolicy::configure(MemoryController &mc, const PolicyContext &ctx)
{
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(PowerdownMode::None);
    perf_ = PerfModel(ctx.cpuGHz);
    slackReady_ = false;
    currentGHz_ = ctx.cpuGHz;
    chosenGHz_ = ctx.cpuGHz;
}

FreqIndex
CoScalePolicy::selectFrequency(const ProfileData &profile,
                               const PolicyContext &ctx,
                               FreqIndex current)
{
    if (!slackReady_) {
        slack_.reset(profile.cores.size(), ctx.gamma * 0.95);
        slackReady_ = true;
    }
    perf_.calibrate(profile);
    if (currentGHz_ <= 0.0)
        currentGHz_ = ctx.cpuGHz;

    // The profiling window ran at currentGHz_, so the calibrated
    // CPU-side time is already stretched by (nominal/current); a
    // candidate clock g costs a further factor (currentGHz_/g).
    const double g_nom = ctx.cpuGHz;
    auto tpi_at = [&](std::uint32_t i, FreqIndex fm, double g) {
        return perf_.tpiCpu(i) * (currentGHz_ / g) +
               perf_.alpha(i) * perf_.tpiMem(fm);
    };

    const double epoch_sec = tickToSec(ctx.epochLen);
    FreqIndex best_f = nominalFreqIndex;
    double best_g = g_nom;
    double best_energy = std::numeric_limits<double>::infinity();

    for (FreqIndex f = 0; f < numFreqPoints; ++f) {
        double switch_stretch = 1.0;
        if (f != current) {
            switch_stretch +=
                tickToSec(TimingParams::at(f).tRELOCK) / epoch_sec;
        }
        for (double g : cpuGridGHz) {
            // Feasibility for every active core.
            bool ok = true;
            double t_sum = 0.0;
            double cpu_energy = 0.0;
            std::uint32_t n_active = 0;
            for (std::uint32_t i = 0; i < profile.cores.size(); ++i) {
                if (!perf_.active(i))
                    continue;
                double tpi_f = tpi_at(i, f, g) * switch_stretch;
                double tpi_max = tpi_at(i, nominalFreqIndex, g_nom);
                if (!slack_.feasible(i, tpi_f, tpi_max, epoch_sec)) {
                    ok = false;
                    break;
                }
                double t_i = static_cast<double>(
                                 perf_.instructions(i)) * tpi_f;
                double busy =
                    tpi_f > 0.0
                        ? perf_.tpiCpu(i) * (currentGHz_ / g) / tpi_f
                        : 0.0;
                cpu_energy += ctx.power.cpuCorePower(g, busy) * t_i;
                t_sum += t_i;
                ++n_active;
            }
            if (!ok || n_active == 0)
                continue;
            double t_mean = t_sum / n_active;

            EnergyPrediction mem = EnergyModel::predict(
                perf_, profile, ctx, f, t_mean);
            // Idle (finished) cores still leak static power.
            double idle_cores = static_cast<double>(
                profile.cores.size() - n_active);
            cpu_energy +=
                idle_cores * ctx.power.cpuCorePower(g, 0.0) * t_mean;
            double total = mem.memory + cpu_energy +
                           ctx.restWatts * t_mean;
            if (total < best_energy) {
                best_energy = total;
                best_f = f;
                best_g = g;
            }
        }
    }

    chosenGHz_ = best_g;
    currentGHz_ = best_g;
    return best_f;
}

void
CoScalePolicy::endEpoch(const ProfileData &epoch,
                        const PolicyContext &ctx)
{
    if (!slackReady_) {
        slack_.reset(epoch.cores.size(), ctx.gamma * 0.95);
        slackReady_ = true;
    }
    PerfModel epoch_model(ctx.cpuGHz);
    epoch_model.calibrate(epoch);
    const double actual = tickToSec(epoch.windowLen);
    const double g_ratio =
        currentGHz_ > 0.0 ? currentGHz_ / ctx.cpuGHz : 1.0;
    for (std::uint32_t c = 0; c < epoch.cores.size(); ++c) {
        if (!epoch_model.active(c))
            continue;
        // Work-equivalent time at nominal CPU *and* memory clocks:
        // the measured CPU share shrinks by current/nominal.
        double instr =
            static_cast<double>(epoch_model.instructions(c));
        double max_sec =
            instr * (epoch_model.tpiCpu(c) * g_ratio +
                     epoch_model.alpha(c) *
                         epoch_model.tpiMem(nominalFreqIndex));
        slack_.update(c, max_sec, actual);
    }
}

} // namespace memscale
