#include "memscale/policies/memscale_policy.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "memscale/energy_model.hh"
#include "obs/stat_registry.hh"

namespace memscale
{

std::string
MemScalePolicy::name() const
{
    if (opts_.withLadder)
        return "memscale-ladder";
    if (opts_.withFastPd)
        return "memscale-fastpd";
    if (opts_.memoryEnergyOnly)
        return "memscale-memenergy";
    return "memscale";
}

void
MemScalePolicy::configure(MemoryController &mc, const PolicyContext &ctx)
{
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(opts_.withLadder ? PowerdownMode::Ladder
                        : opts_.withFastPd ? PowerdownMode::FastExit
                                           : PowerdownMode::None);
    perf_ = PerfModel(ctx.cpuGHz);
    slackReady_ = false;
    decision_ = PolicyDecision();
}

FreqIndex
MemScalePolicy::selectFrequency(const ProfileData &profile,
                                const PolicyContext &ctx,
                                FreqIndex current)
{
    if (!slackReady_) {
        // A small guard band absorbs the queue-length mispredictions
        // at the highest frequency that the paper reports (its
        // MemEnergy variant overshoots by 0.8% for the same reason).
        slack_.reset(profile.cores.size(), ctx.gamma * 0.95);
        slackReady_ = true;
    }
    perf_.calibrate(profile);

    const double epoch_sec = tickToSec(ctx.epochLen);
    FreqIndex best = nominalFreqIndex;
    double best_energy = std::numeric_limits<double>::infinity();

    for (FreqIndex f = 0; f < numFreqPoints; ++f) {
        // Switching costs a bus re-lock stall; fold it into the
        // candidate's predicted per-instruction time so short epochs
        // cannot overshoot the bound through transition overhead.
        double switch_stretch = 1.0;
        if (f != current) {
            switch_stretch +=
                tickToSec(TimingParams::at(f).tRELOCK) / epoch_sec;
        }
        // Feasibility: every core's predicted slowdown must fit its
        // slack-adjusted target.
        bool ok = true;
        for (std::uint32_t c = 0; c < profile.cores.size(); ++c) {
            if (!perf_.active(c))
                continue;
            double tpi_f = perf_.tpi(c, f) * switch_stretch;
            double tpi_max = perf_.tpi(c, nominalFreqIndex);
            if (!slack_.feasible(c, tpi_f, tpi_max, epoch_sec)) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;

        EnergyPrediction pred =
            EnergyModel::predict(perf_, profile, ctx, f);
        double metric =
            opts_.memoryEnergyOnly ? pred.memory : pred.system;
        if (metric < best_energy) {
            best_energy = metric;
            best = f;
        }
    }

    // Observability: capture the decision trail.  Every computation
    // below re-derives values from the (already calibrated) models,
    // so the simulation outcome is untouched whether or not anyone
    // reads the record — the goldens pin this.
    decision_.valid = true;
    decision_.chosen = best;
    double cpi_sum = 0.0;
    std::uint32_t active = 0;
    for (std::uint32_t c = 0; c < profile.cores.size(); ++c) {
        if (!perf_.active(c))
            continue;
        cpi_sum += perf_.cpi(c, best);
        ++active;
    }
    decision_.predictedCpi =
        active ? cpi_sum / static_cast<double>(active) : 0.0;
    EnergyPrediction chosen_pred =
        EnergyModel::predict(perf_, profile, ctx, best);
    decision_.predictedMemJ = chosen_pred.memory;
    decision_.predictedSysJ = chosen_pred.system;
    decision_.ser = EnergyModel::ser(perf_, profile, ctx, best,
                                     opts_.memoryEnergyOnly);
    return best;
}

void
MemScalePolicy::endEpoch(const ProfileData &epoch,
                         const PolicyContext &ctx)
{
    if (!slackReady_) {
        slack_.reset(epoch.cores.size(), ctx.gamma);
        slackReady_ = true;
    }
    // Estimate, from full-epoch counters, what each core's epoch work
    // would have cost at nominal frequency, and bank the difference
    // against the target (Eq. 1 + stage 4 of the epoch loop).
    PerfModel epoch_model(ctx.cpuGHz);
    epoch_model.calibrate(epoch);
    const double actual = tickToSec(epoch.windowLen);
    for (std::uint32_t c = 0; c < epoch.cores.size(); ++c) {
        if (!epoch_model.active(c))
            continue;   // idle/finished cores bank no debt
        double max_sec = epoch_model.coreTime(c, nominalFreqIndex);
        slack_.update(c, max_sec, actual);
    }
    double min_slack = std::numeric_limits<double>::infinity();
    for (std::uint32_t c = 0; c < slack_.size(); ++c)
        min_slack = std::min(min_slack, slack_.slack(c));
    decision_.minSlack =
        slack_.size() ? min_slack : 0.0;
}

void
MemScalePolicy::registerStats(StatRegistry &reg,
                              const std::string &prefix)
{
    reg.addGauge(prefix + ".minSlack",
                 [this] { return decision_.minSlack; });
    reg.addGauge(prefix + ".ser", [this] { return decision_.ser; });
    reg.addGauge(prefix + ".chosenMHz", [this] {
        return static_cast<double>(
            TimingParams::at(decision_.chosen).busMHz);
    });
    reg.addGauge(prefix + ".gamma",
                 [this] { return slack_.gamma(); });
}

} // namespace memscale
