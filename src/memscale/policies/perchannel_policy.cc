#include "memscale/policies/perchannel_policy.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"
#include "power/dram_power.hh"

namespace memscale
{

namespace
{

/** Frequency-invariant per-channel model inputs. */
struct ChannelCal
{
    double xiBank = 1.0;
    double xiBus = 1.0;
    double tDevice = 0.0;
    double share = 0.0;        ///< fraction of system traffic
    double accessRate = 0.0;   ///< accesses/sec over the window
    double actPreRate = 0.0;   ///< act-pre pairs/sec
    double preFrac = 1.0;      ///< all-banks-precharged fraction
};

double
tpiMemChannel(const ChannelCal &cc, FreqIndex f)
{
    const TimingParams &tp = TimingParams::at(f);
    return cc.xiBank * (tickToSec(tp.tMC) + cc.tDevice +
                        cc.xiBus * tickToSec(tp.tBURST));
}

} // namespace

void
PerChannelMemScalePolicy::configure(MemoryController &mc,
                                    const PolicyContext &ctx)
{
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(PowerdownMode::None);
    mc_ = &mc;
    perf_ = PerfModel(ctx.cpuGHz);
    slackReady_ = false;
    choices_.assign(ctx.mem.numChannels, nominalFreqIndex);
    chanPrev_.clear();
}

FreqIndex
PerChannelMemScalePolicy::selectFrequency(const ProfileData &profile,
                                          const PolicyContext &ctx,
                                          FreqIndex current)
{
    (void)current;
    if (mc_ == nullptr)
        panic("PerChannelMemScalePolicy used without configure()");
    if (!slackReady_) {
        slack_.reset(profile.cores.size(), ctx.gamma * 0.90);   // wider band: staler per-channel windows
        slackReady_ = true;
    }
    perf_.calibrate(profile);

    const std::uint32_t channels = ctx.mem.numChannels;
    const double window = tickToSec(profile.windowLen);

    // Per-channel calibration from each channel's own counter block.
    // The policy diffs cumulative counters between its own decision
    // points (approximately one epoch apart).
    std::vector<ChannelCal> cal(channels);
    if (chanPrev_.size() != channels)
        chanPrev_.assign(channels, McCounters{});
    double total_btc = 0.0;
    std::vector<McCounters> deltas(channels);
    for (std::uint32_t c = 0; c < channels; ++c) {
        McCounters cur = mc_->sampleChannelCounters(c);
        deltas[c] = cur - chanPrev_[c];
        chanPrev_[c] = cur;
        total_btc += static_cast<double>(deltas[c].btc);
    }
    const TimingParams &nom = TimingParams::at(nominalFreqIndex);
    for (std::uint32_t c = 0; c < channels; ++c) {
        const McCounters &d = deltas[c];
        ChannelCal &cc = cal[c];
        cc.xiBank = d.xiBank();
        cc.xiBus = d.xiBus();
        double n = static_cast<double>(d.rbhc + d.cbmc + d.obmc);
        if (n > 0.0) {
            cc.tDevice =
                (tickToSec(nom.tCL) * d.rbhc +
                 tickToSec(nom.tRCD + nom.tCL) * d.cbmc +
                 tickToSec(nom.tRP + nom.tRCD + nom.tCL) * d.obmc +
                 tickToSec(nom.tXP) * d.epdc) / n;
        } else {
            cc.tDevice = tickToSec(nom.tRCD + nom.tCL);
        }
        cc.share = total_btc > 0.0
                       ? static_cast<double>(d.btc) / total_btc
                       : 1.0 / channels;
        if (window > 0.0) {
            cc.accessRate =
                static_cast<double>(d.reads + d.writes) / window;
            cc.actPreRate = static_cast<double>(d.pocc) / window;
        }
        cc.preFrac = d.rankTime
                         ? static_cast<double>(d.rankPreTime) /
                               static_cast<double>(d.rankTime)
                         : 1.0;
    }

    // Blended per-core time at a per-channel frequency vector.
    auto tpi_core = [&](std::uint32_t i,
                        const std::vector<FreqIndex> &fv) {
        double mem = 0.0;
        for (std::uint32_t c = 0; c < channels; ++c)
            mem += cal[c].share * tpiMemChannel(cal[c], fv[c]);
        return perf_.tpiCpu(i) + perf_.alpha(i) * mem;
    };
    const std::vector<FreqIndex> all_nominal(channels,
                                             nominalFreqIndex);

    auto feasible = [&](const std::vector<FreqIndex> &fv) {
        const double epoch_sec = tickToSec(ctx.epochLen);
        for (std::uint32_t i = 0; i < profile.cores.size(); ++i) {
            if (!perf_.active(i))
                continue;
            if (!slack_.feasible(i, tpi_core(i, fv),
                                 tpi_core(i, all_nominal),
                                 epoch_sec))
                return false;
        }
        return true;
    };

    // Predicted system power at a frequency vector (per-channel DRAM
    // + register/PLL, MC at the fastest channel, fixed rest).
    const PowerParams &pp = ctx.power;
    const double chips = pp.chipsPerRank;
    const double rpc = ctx.mem.ranksPerChannel();
    const double dimms_per_chan =
        static_cast<double>(ctx.mem.totalDimms()) / channels;
    auto system_power = [&](const std::vector<FreqIndex> &fv) {
        double p = ctx.restWatts;
        std::uint32_t mc_mhz = 0;
        double util_sum = 0.0;
        for (std::uint32_t c = 0; c < channels; ++c) {
            const TimingParams &tp = TimingParams::at(fv[c]);
            mc_mhz = std::max(mc_mhz, tp.busMHz);
            double fs = pp.freqScale(tp.busMHz);
            double bg_cur = cal[c].preFrac * pp.iPreStandby +
                            (1.0 - cal[c].preFrac) * pp.iActStandby;
            p += rpc * chips * pp.vdd * bg_cur * fs;
            // Operation power: act/pre energy rate + burst power.
            double e_actpre = pp.vdd * chips *
                              std::max(0.0, pp.iActPre -
                                                pp.iActStandby) *
                              tickToSec(tp.tRAS + tp.tRP);
            p += cal[c].actPreRate * e_actpre;
            double util = cal[c].accessRate * tickToSec(tp.tBURST);
            util = std::min(util, 1.0);
            p += util * chips * pp.vdd *
                 std::max(0.0, pp.iReadWrite - pp.iActStandby);
            p += dimms_per_chan * (pp.pllPower(tp.busMHz) +
                                   pp.registerPower(tp.busMHz, util));
            util_sum += util;
        }
        p += pp.mcPower(mc_mhz, util_sum / channels);
        return p;
    };
    auto mean_time = [&](const std::vector<FreqIndex> &fv) {
        double sum = 0.0;
        std::uint32_t n = 0;
        for (std::uint32_t i = 0; i < profile.cores.size(); ++i) {
            if (!perf_.active(i))
                continue;
            sum += tpi_core(i, fv);
            ++n;
        }
        return n ? sum / n : 1.0;
    };

    // Phase 1: pick the best feasible *lockstep* assignment.  This
    // seeds the search where plain MemScale would land, so the
    // per-channel refinement can only improve on it (a channel-local
    // move alone cannot unlock the MC's V^2 f savings, which follow
    // the fastest channel).
    std::vector<FreqIndex> fv(channels, nominalFreqIndex);
    {
        double best_metric = std::numeric_limits<double>::infinity();
        FreqIndex best = nominalFreqIndex;
        std::vector<FreqIndex> uniform(channels, nominalFreqIndex);
        for (FreqIndex f = 0; f < numFreqPoints; ++f) {
            std::fill(uniform.begin(), uniform.end(), f);
            if (!feasible(uniform))
                continue;
            double metric = mean_time(uniform) *
                            system_power(uniform);
            if (metric < best_metric) {
                best_metric = metric;
                best = f;
            }
        }
        std::fill(fv.begin(), fv.end(), best);
    }

    // Phase 2: greedy per-channel refinement.
    for (std::uint32_t c = 0; c < channels; ++c) {
        FreqIndex best = nominalFreqIndex;
        double best_metric = std::numeric_limits<double>::infinity();
        for (FreqIndex f = 0; f < numFreqPoints; ++f) {
            fv[c] = f;
            if (!feasible(fv))
                continue;
            double metric = mean_time(fv) * system_power(fv);
            if (metric < best_metric) {
                best_metric = metric;
                best = f;
            }
        }
        fv[c] = best;
    }
    choices_ = fv;
    for (std::uint32_t c = 0; c < channels; ++c)
        mc_->setChannelFrequency(c, fv[c]);
    // The subsystem-level interface reports the MC domain (fastest
    // channel); the epoch controller's setFrequency is then a no-op.
    return mc_->frequency();
}

void
PerChannelMemScalePolicy::endEpoch(const ProfileData &epoch,
                                   const PolicyContext &ctx)
{
    if (!slackReady_) {
        slack_.reset(epoch.cores.size(), ctx.gamma * 0.90);   // wider band: staler per-channel windows
        slackReady_ = true;
    }
    PerfModel epoch_model(ctx.cpuGHz);
    epoch_model.calibrate(epoch);
    const double actual = tickToSec(epoch.windowLen);
    for (std::uint32_t c = 0; c < epoch.cores.size(); ++c) {
        if (!epoch_model.active(c))
            continue;
        double max_sec = epoch_model.coreTime(c, nominalFreqIndex);
        slack_.update(c, max_sec, actual);
    }
}

} // namespace memscale
