#include "memscale/policies/decoupled_policy.hh"

namespace memscale
{

void
DecoupledPolicy::configure(MemoryController &mc, const PolicyContext &)
{
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(PowerdownMode::None);
    mc.setDecoupled(deviceMHz_);
}

} // namespace memscale
