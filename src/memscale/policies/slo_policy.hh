/**
 * @file
 * Tail-target frequency policy for open-loop serving runs.
 *
 * MemScale's CPI-slack bound protects throughput, not latency tails:
 * under an open-loop arrival process, a frequency that costs "only"
 * gamma in CPI can stretch queueing delay enough to blow a p99 target
 * many times over.  This policy closes the loop on the tail itself:
 * at each profiling boundary it reads the serving front end's
 * windowed latency statistics (Policy::attachTailProbe), and picks
 * the lowest bus frequency whose predicted p99 — the measured window
 * p99 scaled by the perf model's mean service-time ratio — still
 * clears the target with a fixed headroom.  The headroom absorbs what
 * the linear scaling misses: queueing delay amplifies service-time
 * stretch nonlinearly as utilisation rises.
 *
 * Degradation is deliberately blunt: a window whose measured p99
 * already exceeds the target, or that shows a standing queue, jumps
 * straight to nominal frequency.  Under overload there is no energy
 * to save — every joule spent below full speed makes the backlog, and
 * therefore every future percentile, worse.
 *
 * Without a probe (closed-loop runs) or without completions in the
 * window, the policy holds the current frequency, which makes it a
 * well-behaved no-op in every non-serving harness path.
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_SLO_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_SLO_POLICY_HH

#include <functional>

#include "memscale/perf_model.hh"
#include "memscale/policies/policy.hh"
#include "memscale/tail_window.hh"

namespace memscale
{

class SloPolicy final : public Policy
{
  public:
    struct Options
    {
        /**
         * Fraction of the p99 target the predicted tail must clear;
         * the margin absorbs queueing amplification beyond the linear
         * service-time model.
         */
        double headroom = 0.85;
    };

    SloPolicy() = default;
    explicit SloPolicy(const Options &opts) : opts_(opts) {}

    std::string name() const override { return "slo"; }
    bool dynamic() const override { return true; }

    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

    void attachTailProbe(std::function<TailWindow()> probe) override
    {
        probe_ = std::move(probe);
    }

    FreqIndex selectFrequency(const ProfileData &profile,
                              const PolicyContext &ctx,
                              FreqIndex current) override;

    PolicyDecision lastDecision() const override { return decision_; }

    void registerStats(StatRegistry &reg,
                       const std::string &prefix) override;

    void saveState(SectionWriter &w) const override;
    void restoreState(SectionReader &r) override;

  private:
    Options opts_;
    std::function<TailWindow()> probe_;
    PerfModel perf_;
    PolicyDecision decision_;

    double lastP99Us_ = 0.0;       ///< most recent window p99
    std::uint64_t overloadEpochs_ = 0;  ///< windows forced to nominal
    std::uint64_t idleEpochs_ = 0;      ///< windows with no completions
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_SLO_POLICY_HH
