#include "memscale/policies/static_policy.hh"

namespace memscale
{

void
BaselinePolicy::configure(MemoryController &mc, const PolicyContext &)
{
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(PowerdownMode::None);
}

void
StaticPolicy::configure(MemoryController &mc, const PolicyContext &)
{
    mc.setFrequency(freqIndexForMHz(mhz_));
    mc.setPowerdownMode(PowerdownMode::None);
}

} // namespace memscale
