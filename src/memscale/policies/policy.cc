#include "memscale/policies/policy.hh"

#include "common/log.hh"
#include "memscale/policies/coscale_policy.hh"
#include "memscale/policies/decoupled_policy.hh"
#include "memscale/policies/fastcap_policy.hh"
#include "memscale/policies/memscale_policy.hh"
#include "memscale/policies/perchannel_policy.hh"
#include "memscale/policies/powerdown_policy.hh"
#include "memscale/policies/slo_policy.hh"
#include "memscale/policies/static_policy.hh"

namespace memscale
{

void
Policy::configure(MemoryController &mc, const PolicyContext &ctx)
{
    (void)ctx;
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(PowerdownMode::None);
}

std::unique_ptr<Policy>
makePolicy(const std::string &name)
{
    if (name == "baseline")
        return std::make_unique<BaselinePolicy>();
    if (name == "static")
        return std::make_unique<StaticPolicy>();
    if (name == "fastpd")
        return std::make_unique<PowerdownPolicy>(
            PowerdownMode::FastExit);
    if (name == "slowpd")
        return std::make_unique<PowerdownPolicy>(
            PowerdownMode::SlowExit);
    if (name == "srpd")
        return std::make_unique<PowerdownPolicy>(
            PowerdownMode::SelfRefresh);
    if (name == "srslowpd")
        return std::make_unique<PowerdownPolicy>(
            PowerdownMode::SelfRefreshSlow);
    if (name == "deeppd")
        return std::make_unique<PowerdownPolicy>(
            PowerdownMode::DeepPowerdown);
    if (name == "ladder")
        return std::make_unique<PowerdownPolicy>(
            PowerdownMode::Ladder);
    if (name == "throttle")
        return std::make_unique<ThrottlePolicy>();
    if (name == "decoupled")
        return std::make_unique<DecoupledPolicy>();
    if (name == "memscale")
        return std::make_unique<MemScalePolicy>();
    if (name == "memscale-memenergy") {
        MemScalePolicy::Options o;
        o.memoryEnergyOnly = true;
        return std::make_unique<MemScalePolicy>(o);
    }
    if (name == "memscale-fastpd") {
        MemScalePolicy::Options o;
        o.withFastPd = true;
        return std::make_unique<MemScalePolicy>(o);
    }
    if (name == "memscale-ladder") {
        MemScalePolicy::Options o;
        o.withLadder = true;
        return std::make_unique<MemScalePolicy>(o);
    }
    if (name == "memscale-perchannel")
        return std::make_unique<PerChannelMemScalePolicy>();
    if (name == "coscale")
        return std::make_unique<CoScalePolicy>();
    if (name == "fastcap")
        return std::make_unique<FastCapPolicy>();
    if (name == "slo")
        return std::make_unique<SloPolicy>();
    fatal("unknown policy '%s'", name.c_str());
}

std::vector<std::string>
policyNames()
{
    return {"baseline", "static", "fastpd", "slowpd", "srpd",
            "srslowpd", "deeppd", "ladder", "throttle", "decoupled",
            "memscale", "memscale-memenergy", "memscale-fastpd",
            "memscale-ladder", "memscale-perchannel", "slo"};
}

} // namespace memscale
