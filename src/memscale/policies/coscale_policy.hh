/**
 * @file
 * Coordinated CPU + memory DVFS (paper Section 6 future work; the
 * idea later published as CoScale, MICRO'12): each epoch the policy
 * searches the cross product of memory grid points and CPU clocks,
 * predicts per-core time as
 *
 *   tpi_i(f_mem, g_cpu) = TPI_cpu_i * (g_nom / g_cpu)
 *                         + alpha_i * TPI_mem(f_mem)
 *
 * and picks the pair minimizing predicted full-system energy
 * (memory model reused from MemScale, plus an explicit V^2 f CPU
 * power model) subject to the same slack-managed per-core bound.
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_COSCALE_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_COSCALE_POLICY_HH

#include <array>

#include "memscale/policies/policy.hh"
#include "memscale/slack.hh"

namespace memscale
{

class CoScalePolicy : public Policy
{
  public:
    /** CPU clock candidates in GHz, fastest first. */
    static constexpr std::array<double, 7> cpuGridGHz = {
        4.0, 3.667, 3.333, 3.0, 2.667, 2.333, 2.0,
    };

    std::string name() const override { return "coscale"; }
    bool dynamic() const override { return true; }

    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

    FreqIndex selectFrequency(const ProfileData &profile,
                              const PolicyContext &ctx,
                              FreqIndex current) override;

    void endEpoch(const ProfileData &epoch,
                  const PolicyContext &ctx) override;

    double selectedCpuGHz() const override { return chosenGHz_; }

    const SlackTracker &slack() const { return slack_; }

    void
    saveState(SectionWriter &w) const override
    {
        slack_.saveState(w);
        w.b(slackReady_);
        w.f64(chosenGHz_);
        w.f64(currentGHz_);
    }

    void
    restoreState(SectionReader &r) override
    {
        slack_.restoreState(r);
        slackReady_ = r.b();
        chosenGHz_ = r.f64();
        currentGHz_ = r.f64();
    }

  private:
    SlackTracker slack_;
    PerfModel perf_;
    bool slackReady_ = false;
    double chosenGHz_ = 0.0;
    double currentGHz_ = 0.0;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_COSCALE_POLICY_HH
