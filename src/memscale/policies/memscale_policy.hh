/**
 * @file
 * The MemScale OS policy (paper Section 3.2): each epoch, profile,
 * predict CPI and system energy at every grid frequency, keep the
 * candidates whose predicted slowdown fits each core's accumulated
 * slack, and pick the one minimizing the (full-system or memory-only)
 * energy.  Optionally combines with Fast-PD (MemScale + Fast-PD).
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_MEMSCALE_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_MEMSCALE_POLICY_HH

#include "memscale/policies/policy.hh"
#include "memscale/slack.hh"

namespace memscale
{

class MemScalePolicy : public Policy
{
  public:
    struct Options
    {
        /** Minimize memory energy only (MemScale(MemEnergy)). */
        bool memoryEnergyOnly = false;
        /** Also enable fast-exit powerdown (MemScale + Fast-PD). */
        bool withFastPd = false;
        /** Also enable the adaptive idle-state demotion ladder
         * (MemScale + Ladder); takes precedence over withFastPd. */
        bool withLadder = false;
    };

    MemScalePolicy() : opts_() {}
    explicit MemScalePolicy(const Options &opts) : opts_(opts) {}

    std::string name() const override;
    bool dynamic() const override { return true; }

    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

    FreqIndex selectFrequency(const ProfileData &profile,
                              const PolicyContext &ctx,
                              FreqIndex current) override;

    void endEpoch(const ProfileData &epoch,
                  const PolicyContext &ctx) override;

    const SlackTracker &slack() const { return slack_; }

    PolicyDecision lastDecision() const override
    {
        return decision_;
    }

    void registerStats(StatRegistry &reg,
                       const std::string &prefix) override;

    void
    saveState(SectionWriter &w) const override
    {
        slack_.saveState(w);
        w.b(slackReady_);
        w.b(decision_.valid);
        w.u32(decision_.chosen);
        w.f64(decision_.predictedCpi);
        w.f64(decision_.predictedMemJ);
        w.f64(decision_.predictedSysJ);
        w.f64(decision_.ser);
        w.f64(decision_.minSlack);
    }

    void
    restoreState(SectionReader &r) override
    {
        slack_.restoreState(r);
        slackReady_ = r.b();
        decision_.valid = r.b();
        decision_.chosen = r.u32();
        decision_.predictedCpi = r.f64();
        decision_.predictedMemJ = r.f64();
        decision_.predictedSysJ = r.f64();
        decision_.ser = r.f64();
        decision_.minSlack = r.f64();
    }

  private:
    Options opts_;
    SlackTracker slack_;
    PerfModel perf_;
    bool slackReady_ = false;
    PolicyDecision decision_;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_MEMSCALE_POLICY_HH
