/**
 * @file
 * Decoupled DIMMs (Zheng et al., ISCA'09), the paper's closest prior
 * work: memory channels stay at 800 MHz while the DRAM devices run at
 * a statically chosen lower frequency (400 MHz in the paper), bridged
 * by a synchronization buffer whose power the paper — and we —
 * optimistically ignore.
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_DECOUPLED_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_DECOUPLED_POLICY_HH

#include "memscale/policies/policy.hh"

namespace memscale
{

class DecoupledPolicy : public Policy
{
  public:
    /** Default device frequency: the paper's 400 MHz. */
    explicit DecoupledPolicy(std::uint32_t device_mhz = 400)
        : deviceMHz_(device_mhz)
    {}

    std::string name() const override { return "decoupled"; }
    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

    std::uint32_t deviceMHz() const { return deviceMHz_; }

  private:
    std::uint32_t deviceMHz_;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_DECOUPLED_POLICY_HH
