/**
 * @file
 * FastCap: coordinated CPU + memory DVFS under a power budget
 * (PAPERS.md, "FastCap: An efficient and fair algorithm for power
 * capping in many-core systems", adapted to the MemScale substrate).
 *
 * Where CoScale minimizes energy subject to a performance bound,
 * FastCap inverts the objective: maximize performance subject to a
 * power bound.  Each epoch the policy searches the memory-grid x
 * CPU-clock cross product, predicts per-pair average power (memory
 * model + V^2 f CPU model + rest-of-system draw) and picks the
 * fastest pair whose predicted power fits the budget
 * (`PolicyContext::powerCapW`, scaled by a safety headroom).  With no
 * budget it runs flat out at the nominal pair; with an impossible one
 * it degrades to the minimum-power pair and counts the epoch as
 * infeasible.
 *
 * The policy also exports the telemetry a fleet coordinator needs to
 * divide a rack budget: predicted uncapped demand, the power floor,
 * and the predicted slowdown at the chosen operating point.  Budgets
 * arrive through the config/context, never through serialized state,
 * so a resumed shard always obeys the coordinator's *current*
 * allocation.
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_FASTCAP_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_FASTCAP_POLICY_HH

#include <array>
#include <cstdint>

#include "memscale/policies/policy.hh"

namespace memscale
{

/** Per-epoch telemetry a power-cap coordinator consumes. */
struct FastCapTelemetry
{
    bool valid = false;
    /** Predicted power of the fastest (nominal) pair, W. */
    Watts demandW = 0.0;
    /** Predicted power of the slowest (min-power) pair, W. */
    Watts minW = 0.0;
    /** Predicted power at the chosen pair, W. */
    Watts chosenW = 0.0;
    /** Predicted time at chosen / predicted time at nominal. */
    double slowdown = 1.0;
    /** Budget in effect during the last decision, W (0 = uncapped). */
    Watts budgetW = 0.0;
    std::uint64_t epochs = 0;
    /** Epochs where even the min-power pair exceeded the budget. */
    std::uint64_t infeasibleEpochs = 0;
    /** Max over epochs of the chosen pair's predicted power, W. */
    Watts maxChosenW = 0.0;
};

class FastCapPolicy : public Policy
{
  public:
    struct Options
    {
        /**
         * Feasibility margin: a pair fits when predicted power <=
         * headroom * budget.  The model is calibrated per profiling
         * window, so the margin absorbs profile-to-epoch drift.
         */
        double headroom = 0.95;
    };

    /** CPU clock candidates in GHz, fastest first (CoScale grid). */
    static constexpr std::array<double, 7> cpuGridGHz = {
        4.0, 3.667, 3.333, 3.0, 2.667, 2.333, 2.0,
    };

    FastCapPolicy() = default;
    explicit FastCapPolicy(const Options &opts) : opts_(opts) {}

    std::string name() const override { return "fastcap"; }
    bool dynamic() const override { return true; }

    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

    FreqIndex selectFrequency(const ProfileData &profile,
                              const PolicyContext &ctx,
                              FreqIndex current) override;

    double selectedCpuGHz() const override { return chosenGHz_; }

    PolicyDecision lastDecision() const override { return decision_; }

    void registerStats(StatRegistry &reg,
                       const std::string &prefix) override;

    const FastCapTelemetry &telemetry() const { return tele_; }
    const Options &options() const { return opts_; }

    void saveState(SectionWriter &w) const override;
    void restoreState(SectionReader &r) override;

  private:
    Options opts_;
    PerfModel perf_;
    double chosenGHz_ = 0.0;
    double currentGHz_ = 0.0;
    FastCapTelemetry tele_;
    PolicyDecision decision_;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_FASTCAP_POLICY_HH
