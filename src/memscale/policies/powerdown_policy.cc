#include "memscale/policies/powerdown_policy.hh"

#include "common/log.hh"

namespace memscale
{

std::string
PowerdownPolicy::name() const
{
    switch (mode_) {
      case PowerdownMode::FastExit:
        return "fastpd";
      case PowerdownMode::SlowExit:
        return "slowpd";
      case PowerdownMode::SelfRefresh:
        return "srpd";
      case PowerdownMode::SelfRefreshSlow:
        return "srslowpd";
      case PowerdownMode::DeepPowerdown:
        return "deeppd";
      case PowerdownMode::Ladder:
        return "ladder";
      default:
        return "nopd";
    }
}

void
PowerdownPolicy::configure(MemoryController &mc, const PolicyContext &)
{
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(mode_);
}

void
ThrottlePolicy::configure(MemoryController &mc, const PolicyContext &)
{
    if (maxUtil_ <= 0.0 || maxUtil_ > 1.0)
        fatal("ThrottlePolicy: utilization cap %g out of (0,1]",
              maxUtil_);
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(PowerdownMode::None);
    mc.setThrottle(maxUtil_);
}

} // namespace memscale
