#include "memscale/policies/fastcap_policy.hh"

#include <limits>

#include "memscale/energy_model.hh"
#include "obs/stat_registry.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

constexpr std::array<double, 7> FastCapPolicy::cpuGridGHz;

void
FastCapPolicy::configure(MemoryController &mc,
                         const PolicyContext &ctx)
{
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(PowerdownMode::None);
    perf_ = PerfModel(ctx.cpuGHz);
    currentGHz_ = ctx.cpuGHz;
    chosenGHz_ = ctx.cpuGHz;
}

FreqIndex
FastCapPolicy::selectFrequency(const ProfileData &profile,
                               const PolicyContext &ctx,
                               FreqIndex current)
{
    perf_.calibrate(profile);
    if (currentGHz_ <= 0.0)
        currentGHz_ = ctx.cpuGHz;

    // The profiling window ran at currentGHz_; a candidate clock g
    // stretches the CPU share by (currentGHz_ / g).  Same performance
    // model as CoScale — only the objective differs.
    const double g_nom = ctx.cpuGHz;
    auto tpi_at = [&](std::uint32_t i, FreqIndex fm, double g) {
        return perf_.tpiCpu(i) * (currentGHz_ / g) +
               perf_.alpha(i) * perf_.tpiMem(fm);
    };

    const double epoch_sec = tickToSec(ctx.epochLen);
    const Watts budget = ctx.powerCapW;

    struct Candidate
    {
        bool valid = false;
        FreqIndex f = nominalFreqIndex;
        double g = 0.0;
        double tMean = 0.0;
        Watts watts = 0.0;
        Joules memJ = 0.0;
        Joules totalJ = 0.0;
    };
    Candidate perf_best;   // fastest pair, ignoring the budget
    Candidate min_power;   // slowest knob: the power floor
    Candidate feasible;    // fastest pair fitting the budget
    Candidate nominal;     // (f_nom, g_nom): the uncapped demand

    for (FreqIndex f = 0; f < numFreqPoints; ++f) {
        double switch_stretch = 1.0;
        if (f != current) {
            switch_stretch +=
                tickToSec(TimingParams::at(f).tRELOCK) / epoch_sec;
        }
        for (double g : cpuGridGHz) {
            double t_sum = 0.0;
            double cpu_energy = 0.0;
            std::uint32_t n_active = 0;
            for (std::uint32_t i = 0; i < profile.cores.size();
                 ++i) {
                if (!perf_.active(i))
                    continue;
                const double tpi_f = tpi_at(i, f, g) * switch_stretch;
                const double t_i =
                    static_cast<double>(perf_.instructions(i)) *
                    tpi_f;
                const double busy =
                    tpi_f > 0.0
                        ? perf_.tpiCpu(i) * (currentGHz_ / g) / tpi_f
                        : 0.0;
                cpu_energy += ctx.power.cpuCorePower(g, busy) * t_i;
                t_sum += t_i;
                ++n_active;
            }
            if (n_active == 0)
                continue;
            const double t_mean =
                t_sum / static_cast<double>(n_active);
            if (!(t_mean > 0.0))
                continue;

            EnergyPrediction mem = EnergyModel::predict(
                perf_, profile, ctx, f, t_mean);
            const double idle_cores = static_cast<double>(
                profile.cores.size() - n_active);
            cpu_energy +=
                idle_cores * ctx.power.cpuCorePower(g, 0.0) * t_mean;
            const double total =
                mem.memory + cpu_energy + ctx.restWatts * t_mean;
            const Watts watts = total / t_mean;

            Candidate c;
            c.valid = true;
            c.f = f;
            c.g = g;
            c.tMean = t_mean;
            c.watts = watts;
            c.memJ = mem.memory;
            c.totalJ = total;

            if (!perf_best.valid || c.tMean < perf_best.tMean ||
                (c.tMean == perf_best.tMean &&
                 c.watts < perf_best.watts))
                perf_best = c;
            if (!min_power.valid || c.watts < min_power.watts ||
                (c.watts == min_power.watts &&
                 c.tMean < min_power.tMean))
                min_power = c;
            if (budget > 0.0 &&
                c.watts <= opts_.headroom * budget &&
                (!feasible.valid || c.tMean < feasible.tMean ||
                 (c.tMean == feasible.tMean &&
                  c.watts < feasible.watts)))
                feasible = c;
            if (f == nominalFreqIndex && g == g_nom)
                nominal = c;
        }
    }

    if (!perf_best.valid) {
        // Wholly idle profile window: nothing to reason about, hold
        // the current operating point.
        return current;
    }

    Candidate chosen;
    bool infeasible = false;
    if (budget <= 0.0) {
        chosen = perf_best;
    } else if (feasible.valid) {
        chosen = feasible;
    } else {
        chosen = min_power;
        infeasible = true;
    }

    chosenGHz_ = chosen.g;
    currentGHz_ = chosen.g;

    const Candidate &demand = nominal.valid ? nominal : perf_best;
    tele_.valid = true;
    tele_.demandW = demand.watts;
    tele_.minW = min_power.watts;
    tele_.chosenW = chosen.watts;
    tele_.slowdown = perf_best.tMean > 0.0
                         ? chosen.tMean / perf_best.tMean
                         : 1.0;
    tele_.budgetW = budget;
    ++tele_.epochs;
    if (infeasible)
        ++tele_.infeasibleEpochs;
    if (chosen.watts > tele_.maxChosenW)
        tele_.maxChosenW = chosen.watts;

    decision_.valid = true;
    decision_.chosen = chosen.f;
    decision_.predictedCpi = 0.0;
    decision_.predictedMemJ = chosen.memJ;
    decision_.predictedSysJ = chosen.totalJ;
    decision_.ser =
        demand.totalJ > 0.0 ? chosen.totalJ / demand.totalJ : 1.0;
    decision_.minSlack = 0.0;

    return chosen.f;
}

void
FastCapPolicy::registerStats(StatRegistry &reg,
                             const std::string &prefix)
{
    reg.addGauge(prefix + ".budgetW",
                 [this] { return tele_.budgetW; });
    reg.addGauge(prefix + ".demandW",
                 [this] { return tele_.demandW; });
    reg.addGauge(prefix + ".chosenW",
                 [this] { return tele_.chosenW; });
    reg.addGauge(prefix + ".slowdown",
                 [this] { return tele_.slowdown; });
    reg.addGauge(prefix + ".infeasibleEpochs", [this] {
        return static_cast<double>(tele_.infeasibleEpochs);
    });
}

void
FastCapPolicy::saveState(SectionWriter &w) const
{
    w.f64(chosenGHz_);
    w.f64(currentGHz_);
    w.b(tele_.valid);
    w.f64(tele_.demandW);
    w.f64(tele_.minW);
    w.f64(tele_.chosenW);
    w.f64(tele_.slowdown);
    w.f64(tele_.budgetW);
    w.u64(tele_.epochs);
    w.u64(tele_.infeasibleEpochs);
    w.f64(tele_.maxChosenW);
    w.b(decision_.valid);
    w.u32(decision_.chosen);
    w.f64(decision_.predictedMemJ);
    w.f64(decision_.predictedSysJ);
    w.f64(decision_.ser);
}

void
FastCapPolicy::restoreState(SectionReader &r)
{
    chosenGHz_ = r.f64();
    currentGHz_ = r.f64();
    tele_.valid = r.b();
    tele_.demandW = r.f64();
    tele_.minW = r.f64();
    tele_.chosenW = r.f64();
    tele_.slowdown = r.f64();
    tele_.budgetW = r.f64();
    tele_.epochs = r.u64();
    tele_.infeasibleEpochs = r.u64();
    tele_.maxChosenW = r.f64();
    decision_.valid = r.b();
    decision_.chosen = r.u32();
    decision_.predictedMemJ = r.f64();
    decision_.predictedSysJ = r.f64();
    decision_.ser = r.f64();
}

} // namespace memscale
