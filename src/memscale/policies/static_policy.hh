/**
 * @file
 * Baseline and Static policies.
 *
 * Baseline keeps the memory subsystem at nominal frequency with no
 * powerdown (the paper's reference).  Static selects a single fixed
 * frequency before the run starts — 467 MHz in the paper, the best
 * average that never violates the performance target.
 */

#ifndef MEMSCALE_MEMSCALE_POLICIES_STATIC_POLICY_HH
#define MEMSCALE_MEMSCALE_POLICIES_STATIC_POLICY_HH

#include "memscale/policies/policy.hh"

namespace memscale
{

class BaselinePolicy : public Policy
{
  public:
    std::string name() const override { return "baseline"; }
    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;
};

class StaticPolicy : public Policy
{
  public:
    /** Default: the paper's 467 MHz grid point. */
    explicit StaticPolicy(std::uint32_t mhz = 467) : mhz_(mhz) {}

    std::string name() const override { return "static"; }
    void configure(MemoryController &mc,
                   const PolicyContext &ctx) override;

    std::uint32_t staticMHz() const { return mhz_; }

  private:
    std::uint32_t mhz_;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_POLICIES_STATIC_POLICY_HH
