#include "memscale/policies/slo_policy.hh"

#include "dram/timing.hh"
#include "mem/controller.hh"
#include "obs/stat_registry.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

void
SloPolicy::configure(MemoryController &mc, const PolicyContext &ctx)
{
    mc.setFrequency(nominalFreqIndex);
    mc.setPowerdownMode(PowerdownMode::None);
    perf_ = PerfModel(ctx.cpuGHz);
    decision_ = PolicyDecision();
    lastP99Us_ = 0.0;
    overloadEpochs_ = 0;
    idleEpochs_ = 0;
}

FreqIndex
SloPolicy::selectFrequency(const ProfileData &profile,
                           const PolicyContext &ctx, FreqIndex current)
{
    // No probe (closed-loop harness paths) or no target: hold.
    if (!probe_ || ctx.sloP99Us <= 0.0)
        return current;

    const TailWindow w = probe_();
    if (w.completions == 0) {
        // Nothing finished this window — either the system is idle or
        // everything in flight is stuck behind a backlog.  A standing
        // queue with zero completions is the worst overload signal
        // there is; plain idleness holds the current point.
        ++idleEpochs_;
        return w.queued > 0 ? nominalFreqIndex : current;
    }
    lastP99Us_ = w.p99Us;

    const double target = ctx.sloP99Us;

    // Overload degradation: the measured tail is already over target,
    // or requests are piling up faster than they drain.  Running any
    // slower only compounds the backlog, so go straight to nominal.
    if (w.p99Us > target || w.queued > w.completions) {
        ++overloadEpochs_;
        decision_.valid = true;
        decision_.chosen = nominalFreqIndex;
        return nominalFreqIndex;
    }

    perf_.calibrate(profile);
    const double t_cur = perf_.meanTime(current);

    // Lowest frequency whose predicted p99 still clears the target
    // with headroom.  The prediction scales the measured window p99
    // by the mean service-time ratio between candidate and current —
    // exact for the service-time component, optimistic for queueing
    // delay, which is what the headroom pays for.
    FreqIndex chosen = nominalFreqIndex;
    if (t_cur > 0.0) {
        for (FreqIndex f = numFreqPoints; f-- > 0;) {
            const double scale = perf_.meanTime(f) / t_cur;
            if (w.p99Us * scale <= target * opts_.headroom) {
                chosen = f;
                break;
            }
        }
    } else {
        chosen = current;
    }

    decision_.valid = true;
    decision_.chosen = chosen;
    if (t_cur > 0.0) {
        decision_.predictedCpi = w.p99Us *
                                 perf_.meanTime(chosen) / t_cur;
        EnergyPrediction pred =
            EnergyModel::predict(perf_, profile, ctx, chosen);
        decision_.predictedMemJ = pred.memory;
        decision_.predictedSysJ = pred.system;
        decision_.ser =
            EnergyModel::ser(perf_, profile, ctx, chosen);
    }
    return chosen;
}

void
SloPolicy::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addGauge(prefix + ".lastP99Us", &lastP99Us_);
    reg.addCounter(prefix + ".overloadEpochs", &overloadEpochs_);
    reg.addCounter(prefix + ".idleEpochs", &idleEpochs_);
    reg.addGauge(prefix + ".chosenMHz", [this] {
        return static_cast<double>(
            TimingParams::at(decision_.chosen).busMHz);
    });
}

void
SloPolicy::saveState(SectionWriter &w) const
{
    w.f64(lastP99Us_);
    w.u64(overloadEpochs_);
    w.u64(idleEpochs_);
    w.u8(decision_.valid ? 1 : 0);
    w.u32(decision_.chosen);
    w.f64(decision_.predictedCpi);
    w.f64(decision_.predictedMemJ);
    w.f64(decision_.predictedSysJ);
    w.f64(decision_.ser);
}

void
SloPolicy::restoreState(SectionReader &r)
{
    lastP99Us_ = r.f64();
    overloadEpochs_ = r.u64();
    idleEpochs_ = r.u64();
    decision_.valid = r.u8() != 0;
    decision_.chosen = static_cast<FreqIndex>(r.u32());
    decision_.predictedCpi = r.f64();
    decision_.predictedMemJ = r.f64();
    decision_.predictedSysJ = r.f64();
    decision_.ser = r.f64();
}

} // namespace memscale
