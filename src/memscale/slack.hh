/**
 * @file
 * Per-core performance-slack accounting (paper Section 3.2, Eq. 1).
 *
 * Slack_i = accumulated (T_target - T_actual) where the target allows
 * each program gamma extra execution time over its predicted
 * maximum-frequency run.  Positive slack lets later epochs run slower;
 * negative slack (a missed target) must be repaid by running faster.
 */

#ifndef MEMSCALE_MEMSCALE_SLACK_HH
#define MEMSCALE_MEMSCALE_SLACK_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

class SlackTracker
{
  public:
    void
    reset(std::size_t num_cores, double gamma)
    {
        slack_.assign(num_cores, 0.0);
        gamma_ = gamma;
    }

    /**
     * End-of-epoch update: the core spent `actual_sec` of wall time
     * retiring work that would have taken `max_freq_sec` at nominal
     * frequency.
     */
    void
    update(std::uint32_t core, double max_freq_sec, double actual_sec)
    {
        slack_[core] += max_freq_sec * (1.0 + gamma_) - actual_sec;
    }

    /**
     * Feasibility of running the next epoch with per-instruction time
     * tpi_f when the nominal-frequency time would be tpi_max: running
     * a whole epoch of length epoch_sec at f is within target iff
     *
     *   tpi_f * (epoch_sec - slack) <= epoch_sec * tpi_max * (1+gamma)
     */
    bool
    feasible(std::uint32_t core, double tpi_f, double tpi_max,
             double epoch_sec) const
    {
        double budget = epoch_sec - slack_[core];
        if (budget <= 0.0)
            return true;   // stored slack already covers the epoch
        return tpi_f * budget <= epoch_sec * tpi_max * (1.0 + gamma_);
    }

    double slack(std::uint32_t core) const { return slack_[core]; }
    double gamma() const { return gamma_; }
    std::size_t size() const { return slack_.size(); }

    /** @name Checkpoint/restore (bit-exact account balances). */
    /// @{
    void
    saveState(SectionWriter &w) const
    {
        w.f64(gamma_);
        w.u32(static_cast<std::uint32_t>(slack_.size()));
        for (double s : slack_)
            w.f64(s);
    }

    void
    restoreState(SectionReader &r)
    {
        gamma_ = r.f64();
        slack_.assign(r.u32(), 0.0);
        for (double &s : slack_)
            s = r.f64();
    }
    /// @}

  private:
    std::vector<double> slack_;
    double gamma_ = 0.10;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_SLACK_HH
