/**
 * @file
 * The MemScale full-system energy model (paper Section 3.3, Eq. 10).
 *
 * For each candidate frequency the model predicts the time to repeat
 * the profiled work and the energy the whole system would consume
 * doing so, reusing the same Micron-style rank-energy formulas as the
 * ground-truth integrator (power/dram_power).  The System Energy
 * Ratio (SER) of a candidate is its predicted energy relative to the
 * nominal frequency; the policy picks the feasible minimum.
 */

#ifndef MEMSCALE_MEMSCALE_ENERGY_MODEL_HH
#define MEMSCALE_MEMSCALE_ENERGY_MODEL_HH

#include "common/types.hh"
#include "dram/timing.hh"
#include "mem/config.hh"
#include "memscale/perf_model.hh"
#include "power/params.hh"

namespace memscale
{

/** Static context a policy needs to reason about energy. */
struct PolicyContext
{
    PowerParams power;
    MemConfig mem;
    Watts restWatts = 0.0;   ///< calibrated non-memory system power
    double gamma = 0.10;     ///< maximum allowed CPI degradation
    double cpuGHz = 4.0;
    Tick epochLen = msToTick(5.0);
    Tick profileLen = usToTick(300.0);
    /**
     * Serving-mode p99 latency target in microseconds (0 = none).
     * Only SLO-aware policies read it; the CPI-slack policies ignore
     * tail latency entirely.
     */
    double sloP99Us = 0.0;

    /**
     * Server power budget in Watts (0 = uncapped).  Only cap-aware
     * policies (fastcap) read it; under a fleet coordinator it is
     * re-assigned every coordination epoch.
     */
    Watts powerCapW = 0.0;
};

/** Prediction for one candidate frequency. */
struct EnergyPrediction
{
    double timeSec = 0.0;       ///< predicted time for profiled work
    Joules memory = 0.0;        ///< memory-subsystem energy
    Joules system = 0.0;        ///< memory + rest-of-system energy
};

class EnergyModel
{
  public:
    /**
     * Predict time/energy at a grid frequency for the work captured
     * in `profile`, with frequency-dependent performance supplied by
     * a calibrated PerfModel.
     *
     * @param time_override when > 0, evaluate the energy over this
     *        wall time instead of the model's own prediction (used by
     *        coordinated CPU+memory scaling, where CPU frequency also
     *        stretches the work).
     */
    static EnergyPrediction predict(const PerfModel &perf,
                                    const ProfileData &profile,
                                    const PolicyContext &ctx,
                                    FreqIndex f,
                                    double time_override = 0.0);

    /** SER relative to the nominal grid point (Eq. 10). */
    static double ser(const PerfModel &perf, const ProfileData &profile,
                      const PolicyContext &ctx, FreqIndex f,
                      bool memory_only = false);
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_ENERGY_MODEL_HH
