#include "memscale/energy_model.hh"

#include <algorithm>

#include "power/dram_power.hh"

namespace memscale
{

EnergyPrediction
EnergyModel::predict(const PerfModel &perf, const ProfileData &profile,
                     const PolicyContext &ctx, FreqIndex f,
                     double time_override)
{
    EnergyPrediction out;
    const TimingParams &tp = TimingParams::at(f);
    const std::uint32_t ranks = ctx.mem.totalRanks();
    const std::uint32_t channels = ctx.mem.numChannels;

    // Predicted wall time to repeat the profiled instruction mix.
    double t = time_override > 0.0 ? time_override : perf.meanTime(f);
    // Idle/fully-stalled profiles predict zero work time; fall back to
    // scaling the window itself.
    if (t <= 0.0)
        t = tickToSec(profile.windowLen);
    out.timeSec = t;
    const Tick tTicks = static_cast<Tick>(t * tickPerSec);

    // Build an aggregate rank-activity window for the predicted
    // interval: operation counts carry over from the profile, burst
    // time is re-derived at the candidate burst width, and background
    // state fractions follow the profiled PTC/PTCKEL/ATCKEL mix.
    const McCounters &mc = profile.mc;
    RankActivity agg;
    agg.totalTime = tTicks * ranks;
    double pre_frac = 1.0;
    double pre_pd_frac = 0.0;
    double act_pd_frac = 0.0;
    if (mc.rankTime > 0) {
        pre_frac = static_cast<double>(mc.rankPreTime) /
                   static_cast<double>(mc.rankTime);
        pre_pd_frac = static_cast<double>(mc.rankPrePdTime) /
                      static_cast<double>(mc.rankTime);
        act_pd_frac = static_cast<double>(mc.rankActPdTime) /
                      static_cast<double>(mc.rankTime);
    }
    auto frac_ticks = [&](double frac) {
        return static_cast<Tick>(frac *
                                 static_cast<double>(agg.totalTime));
    };
    agg.prePowerdownTime = frac_ticks(pre_pd_frac);
    agg.preStandbyTime = frac_ticks(pre_frac - pre_pd_frac);
    agg.actPowerdownTime = frac_ticks(act_pd_frac);
    agg.actStandbyTime = agg.totalTime - agg.preStandbyTime -
                         agg.prePowerdownTime - agg.actPowerdownTime;

    agg.actPreCount = mc.pocc;
    const std::uint64_t accesses = mc.rbhc + mc.obmc + mc.cbmc;
    const std::uint64_t reads = mc.reads;
    const std::uint64_t writes = mc.writes;
    // Burst counts: prefer completed read/write splits; fall back to
    // total accesses.
    std::uint64_t rd = reads ? reads : accesses;
    agg.readBursts = rd;
    agg.writeBursts = writes;
    agg.readBurstTime = rd * tp.tBURST;
    agg.writeBurstTime = writes * tp.tBURST;
    agg.refreshes = static_cast<std::uint64_t>(
        static_cast<double>(ranks) * t /
        tickToSec(tp.tREFI));

    // Termination: every burst terminates on the other ranks of its
    // channel.
    const std::uint32_t rpc = ctx.mem.ranksPerChannel();
    Tick other_burst = (agg.readBurstTime + agg.writeBurstTime) *
                       (rpc > 0 ? rpc - 1 : 0);

    RankEnergy re = rankEnergy(agg, tp, ctx.power, other_burst);
    Joules dram = re.total();

    // Channel utilization at the candidate frequency.
    double util = tickToSec(agg.readBurstTime + agg.writeBurstTime) /
                  (static_cast<double>(channels) * t);
    util = std::clamp(util, 0.0, 1.0);

    Joules pllreg = static_cast<double>(ctx.mem.totalDimms()) *
                    (ctx.power.pllPower(tp.busMHz) +
                     ctx.power.registerPower(tp.busMHz, util)) * t;
    Joules mc_e = ctx.power.mcPower(tp.busMHz, util) * t;

    out.memory = dram + pllreg + mc_e;
    out.system = out.memory + ctx.restWatts * t;
    return out;
}

double
EnergyModel::ser(const PerfModel &perf, const ProfileData &profile,
                 const PolicyContext &ctx, FreqIndex f,
                 bool memory_only)
{
    EnergyPrediction cand = predict(perf, profile, ctx, f);
    EnergyPrediction base =
        predict(perf, profile, ctx, nominalFreqIndex);
    double num = memory_only ? cand.memory : cand.system;
    double den = memory_only ? base.memory : base.system;
    if (den <= 0.0)
        return 1.0;
    return num / den;
}

} // namespace memscale
