/**
 * @file
 * The OS-level epoch loop (paper Section 3.2): profile at the start of
 * each quantum, invoke the policy, re-lock the bus frequency, and
 * settle slack accounts at the end of the quantum.  Also records a
 * per-epoch timeline (frequency, per-core CPI, channel utilization)
 * used by the Fig. 7/8 reproductions.
 */

#ifndef MEMSCALE_MEMSCALE_EPOCH_CONTROLLER_HH
#define MEMSCALE_MEMSCALE_EPOCH_CONTROLLER_HH

#include <vector>

#include "cpu/core.hh"
#include "mem/controller.hh"
#include "memscale/perf_model.hh"
#include "memscale/policies/policy.hh"
#include "sim/event_queue.hh"

namespace memscale
{

class EpochRecorder;
class SectionReader;
class SectionWriter;

/** One epoch of recorded history. */
struct EpochRecord
{
    Tick start = 0;
    Tick end = 0;
    std::uint32_t busMHz = 0;          ///< frequency chosen this epoch
    double cpuGHz = 0.0;               ///< core clock this epoch
    std::vector<double> coreCpi;       ///< measured CPI over the epoch
    double channelUtil = 0.0;          ///< mean data-bus utilization
};

class EpochController
{
  public:
    /**
     * The epoch loop samples cores only through the CpuSampler
     * surface (TIC/TLM counters + clock), so any instruction-retiring
     * agent can sit behind it — trace-replay Cores or open-loop
     * serving workers.
     */
    EpochController(EventQueue &eq, MemoryController &mc,
                    const std::vector<CpuSampler *> &cores,
                    Policy &policy, const PolicyContext &ctx);

    /** Arm the first epoch at the current tick. */
    void start();

    const std::vector<EpochRecord> &history() const { return history_; }

    /** Epochs completed so far. */
    std::size_t epochs() const { return history_.size(); }

    /**
     * Hook fired just before the policy's CPU-clock choice is applied
     * to the cores, so energy accounting can close the interval.
     */
    void
    setBeforeCpuFreqChangeHook(std::function<void()> fn)
    {
        beforeCpuFreqChange_ = std::move(fn);
    }

    /**
     * Attach an observability recorder; every endEpoch() appends one
     * row (epoch envelope + the policy's decision trail + a registry
     * snapshot).  nullptr (the default) keeps recording fully off.
     */
    void setRecorder(EpochRecorder *rec) { recorder_ = rec; }

    /** @name Checkpoint/restore.  A resumed run constructs the
     * controller but does NOT call start(); the saved in-flight
     * Policy event (endProfile or endEpoch) is rebuilt instead. */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    EventCallback rebuildEvent(std::uint32_t kind);
    /// @}

  private:
    struct Snapshot
    {
        McCounters mc;
        std::vector<CoreSample> cores;
        Tick at = 0;
        FreqIndex freq = nominalFreqIndex;
    };

    Snapshot takeSnapshot();
    static ProfileData delta(const Snapshot &s0, const Snapshot &s1);

    void beginEpoch();
    void endProfile();
    void endEpoch();

    EventQueue &eq_;
    MemoryController &mc_;
    std::vector<CpuSampler *> cores_;
    Policy &policy_;
    PolicyContext ctx_;

    Snapshot epochStart_;
    Tick epochStartTick_ = 0;
    std::vector<EpochRecord> history_;
    std::function<void()> beforeCpuFreqChange_;
    EpochRecorder *recorder_ = nullptr;
};

} // namespace memscale

#endif // MEMSCALE_MEMSCALE_EPOCH_CONTROLLER_HH
