#include "workload/address_stream.hh"

#include "common/log.hh"

namespace memscale
{

AddressStream::AddressStream(const AddressStreamParams &params,
                             Addr base, std::uint64_t seed)
    : params_(params), base_(base), rng_(seed)
{
    if (params_.numStreams == 0 || params_.footprintBytes == 0)
        fatal("AddressStream: degenerate parameters");
    cursors_.resize(params_.numStreams);
    for (auto &c : cursors_)
        c = rng_.below(params_.footprintBytes);
}

Addr
AddressStream::next(bool &is_store)
{
    is_store = rng_.chance(params_.storeFrac);
    if (rng_.chance(params_.seqFrac)) {
        std::uint64_t s = rng_.below(cursors_.size());
        cursors_[s] = (cursors_[s] + params_.strideBytes) %
                      params_.footprintBytes;
        return base_ + cursors_[s];
    }
    std::uint64_t hot_bytes = static_cast<std::uint64_t>(
        params_.hotFrac * static_cast<double>(params_.footprintBytes));
    if (hot_bytes >= 64 && rng_.chance(params_.hotProb))
        return base_ + rng_.below(hot_bytes);
    return base_ + rng_.below(params_.footprintBytes);
}

} // namespace memscale
