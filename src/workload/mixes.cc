#include "workload/mixes.hh"

#include <map>

#include "common/log.hh"

namespace memscale
{

namespace
{

constexpr std::uint64_t MB = 1ull << 20;

AppProfile
flat(const char *name, double mpki, double wpki, double cpi,
     double stream, std::uint64_t footprint)
{
    AppProfile p;
    p.name = name;
    p.phases.push_back(AppPhase{mpki, wpki, cpi, stream, 0});
    p.footprintBytes = footprint;
    return p;
}

std::map<std::string, AppProfile>
buildApps()
{
    std::map<std::string, AppProfile> apps;
    auto add = [&](AppProfile p) { apps[p.name] = std::move(p); };

    // ILP-class applications (SPEC int/fp with high ILP, tiny miss
    // rates).  Rates solved from the Table 1 mix averages.
    add(flat("vortex", 0.16, 0.12, 0.90, 0.5, 48 * MB));
    add(flat("gcc", 0.64, 0.08, 1.00, 0.5, 64 * MB));
    add(flat("sixtrack", 0.28, 0.02, 0.80, 0.5, 48 * MB));
    add(flat("mesa", 0.40, 0.02, 0.85, 0.5, 48 * MB));
    add(flat("perlbmk", 0.20, 0.010, 0.90, 0.5, 48 * MB));
    add(flat("crafty", 0.20, 0.010, 0.95, 0.5, 32 * MB));
    add(flat("gzip", 0.15, 0.015, 0.85, 0.6, 32 * MB));
    add(flat("eon", 0.09, 0.005, 0.80, 0.4, 32 * MB));

    // MID-class (balanced) applications.
    add(flat("ammp", 1.80, 0.02, 1.10, 0.5, 96 * MB));
    add(flat("gap", 1.60, 0.02, 1.00, 0.5, 96 * MB));
    add(flat("wupwise", 1.90, 0.02, 1.05, 0.6, 96 * MB));
    add(flat("vpr", 1.58, 0.02, 1.15, 0.4, 96 * MB));
    add(flat("astar", 2.80, 0.10, 1.20, 0.4, 96 * MB));
    add(flat("parser", 2.16, 0.06, 1.10, 0.4, 96 * MB));
    add(flat("twolf", 2.30, 0.10, 1.15, 0.4, 96 * MB));
    add(flat("facerec", 3.18, 0.08, 1.00, 0.6, 96 * MB));
    add(flat("bzip2", 2.04, 0.12, 1.05, 0.5, 96 * MB));

    // apsi has the large mid-run phase transition visible in Fig. 7:
    // quiet for the first ~55% of its 100M-instruction SimPoint, then
    // strongly memory-bound.
    {
        AppProfile apsi;
        apsi.name = "apsi";
        apsi.phases.push_back(AppPhase{0.8, 0.08, 1.00, 0.5,
                                       55'000'000});
        apsi.phases.push_back(AppPhase{9.0, 0.60, 1.60, 0.7, 0});
        apsi.footprintBytes = 128 * MB;
        apps["apsi"] = std::move(apsi);
    }

    // MEM-class applications.
    add(flat("swim", 22.00, 6.00, 0.80, 0.8, 192 * MB));
    add(flat("applu", 16.00, 4.20, 0.85, 0.8, 192 * MB));
    add(flat("art", 16.00, 1.00, 0.70, 0.5, 128 * MB));
    add(flat("lucas", 14.12, 0.60, 0.90, 0.6, 128 * MB));
    add(flat("galgel", 12.00, 0.20, 0.95, 0.6, 128 * MB));
    add(flat("equake", 12.40, 0.20, 0.90, 0.4, 128 * MB));
    add(flat("fma3d", 4.50, 0.30, 1.00, 0.5, 128 * MB));
    add(flat("mgrid", 5.58, 0.30, 0.90, 0.8, 192 * MB));

    return apps;
}

const std::map<std::string, AppProfile> &
apps()
{
    static const std::map<std::string, AppProfile> table = buildApps();
    return table;
}

std::vector<MixSpec>
buildMixes()
{
    return {
        {"ILP1", "ILP", {"vortex", "gcc", "sixtrack", "mesa"},
         0.37, 0.06},
        {"ILP2", "ILP", {"perlbmk", "crafty", "gzip", "eon"},
         0.16, 0.01},
        {"ILP3", "ILP", {"sixtrack", "mesa", "perlbmk", "crafty"},
         0.27, 0.01},
        {"ILP4", "ILP", {"vortex", "mesa", "perlbmk", "crafty"},
         0.24, 0.06},
        {"MID1", "MID", {"ammp", "gap", "wupwise", "vpr"},
         1.72, 0.01},
        {"MID2", "MID", {"astar", "parser", "twolf", "facerec"},
         2.61, 0.09},
        {"MID3", "MID", {"apsi", "bzip2", "ammp", "gap"},
         2.41, 0.16},
        {"MID4", "MID", {"wupwise", "vpr", "astar", "parser"},
         2.11, 0.07},
        {"MEM1", "MEM", {"swim", "applu", "art", "lucas"},
         17.03, 3.03},
        {"MEM2", "MEM", {"fma3d", "mgrid", "galgel", "equake"},
         8.62, 0.25},
        {"MEM3", "MEM", {"swim", "applu", "galgel", "equake"},
         15.6, 3.71},
        {"MEM4", "MEM", {"art", "lucas", "mgrid", "fma3d"},
         8.96, 0.33},
    };
}

} // namespace

const AppProfile &
appByName(const std::string &name)
{
    auto it = apps().find(name);
    if (it == apps().end())
        fatal("unknown application profile '%s'", name.c_str());
    return it->second;
}

const std::vector<MixSpec> &
allMixes()
{
    static const std::vector<MixSpec> mixes = buildMixes();
    return mixes;
}

const MixSpec &
mixByName(const std::string &name)
{
    for (const MixSpec &m : allMixes())
        if (m.name == name)
            return m;
    fatal("unknown workload mix '%s'", name.c_str());
}

const AppProfile &
appForCore(const MixSpec &mix, std::uint32_t core)
{
    return appByName(mix.apps[core % mix.apps.size()]);
}

AppProfile
scaledProfile(const AppProfile &p, double scale)
{
    AppProfile out = p;
    for (AppPhase &ph : out.phases) {
        if (ph.instructions != 0) {
            ph.instructions = static_cast<std::uint64_t>(
                static_cast<double>(ph.instructions) * scale);
            if (ph.instructions == 0)
                ph.instructions = 1;
        }
    }
    return out;
}

} // namespace memscale
