/**
 * @file
 * Set-associative last-level cache model (paper Table 2: 16 MB,
 * 4-way, 64 B lines, shared) and a trace source that derives the LLC
 * miss/writeback stream from a synthetic address stream through it —
 * the validation alternative to SyntheticTraceSource.
 */

#ifndef MEMSCALE_WORKLOAD_LLC_HH
#define MEMSCALE_WORKLOAD_LLC_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "cpu/trace.hh"
#include "snapshot/serializer.hh"
#include "workload/address_stream.hh"

namespace memscale
{

class Llc
{
  public:
    struct AccessResult
    {
        bool hit = false;
        bool writeback = false;   ///< dirty victim evicted
        Addr victimAddr = 0;
    };

    Llc(std::uint64_t size_bytes, std::uint32_t ways,
        std::uint32_t line_bytes);

    /** Access a line; allocates on miss (write-allocate, writeback). */
    AccessResult access(Addr addr, bool is_store);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    double
    missRate() const
    {
        std::uint64_t n = hits_ + misses_;
        return n ? static_cast<double>(misses_) /
                       static_cast<double>(n)
                 : 0.0;
    }

    /** @name Checkpoint/restore (full line array + LRU clock). */
    /// @{
    void
    saveState(SectionWriter &w) const
    {
        w.u64(lines_.size());
        for (const Line &l : lines_) {
            w.u64(l.tag);
            w.b(l.valid);
            w.b(l.dirty);
            w.u64(l.lastUse);
        }
        w.u64(clock_);
        w.u64(hits_);
        w.u64(misses_);
        w.u64(writebacks_);
    }

    void
    restoreState(SectionReader &r)
    {
        std::uint64_t n = r.u64();
        if (n != lines_.size())
            fatal("Llc restore: %llu lines in snapshot, %zu in cache",
                  static_cast<unsigned long long>(n), lines_.size());
        for (Line &l : lines_) {
            l.tag = r.u64();
            l.valid = r.b();
            l.dirty = r.b();
            l.lastUse = r.u64();
        }
        clock_ = r.u64();
        hits_ = r.u64();
        misses_ = r.u64();
        writebacks_ = r.u64();
    }
    /// @}

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t ways_;
    std::uint32_t lineBytes_;
    std::uint64_t numSets_;
    std::vector<Line> lines_;   ///< set-major
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

/**
 * TraceSource producing chunks by filtering an address stream through
 * a (typically private slice of the) LLC.  Miss rates and writebacks
 * emerge from cache behaviour instead of being prescribed.
 */
class CacheTraceSource : public TraceSource
{
  public:
    struct Params
    {
        double accessesPerKiloInstr = 300.0;  ///< LLC lookups per 1k
        double baseCpi = 1.0;
        std::uint64_t llcBytes = 1ull << 20;  ///< this core's share
        std::uint32_t llcWays = 4;
        std::uint32_t lineBytes = 64;
    };

    CacheTraceSource(const Params &params,
                     const AddressStreamParams &stream, Addr base,
                     std::uint64_t seed);

    bool next(TraceChunk &chunk) override;

    const Llc &cache() const { return llc_; }

    /** Observed misses per kilo-instruction so far. */
    double observedMpki() const;

    /** @name Checkpoint/restore (stream + cache + PRNG + counters). */
    /// @{
    void
    saveState(SectionWriter &w) const
    {
        stream_.saveState(w);
        llc_.saveState(w);
        saveRng(w, rng_);
        w.u64(instructions_);
        w.u64(missesEmitted_);
    }

    void
    restoreState(SectionReader &r)
    {
        stream_.restoreState(r);
        llc_.restoreState(r);
        restoreRng(r, rng_);
        instructions_ = r.u64();
        missesEmitted_ = r.u64();
    }
    /// @}

  private:
    Params params_;
    AddressStream stream_;
    Llc llc_;
    Rng rng_;
    std::uint64_t instructions_ = 0;
    std::uint64_t missesEmitted_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_WORKLOAD_LLC_HH
