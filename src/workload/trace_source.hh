/**
 * @file
 * Synthetic LLC miss/writeback trace generator driven by AppProfiles.
 *
 * Inter-miss instruction gaps are exponentially distributed around the
 * phase MPKI; miss addresses are a mixture of sequential streaming
 * through the instance footprint and uniform random lines; writebacks
 * accompany misses with probability WPKI/MPKI and target recently
 * touched lines.
 */

#ifndef MEMSCALE_WORKLOAD_TRACE_SOURCE_HH
#define MEMSCALE_WORKLOAD_TRACE_SOURCE_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "cpu/trace.hh"
#include "snapshot/serializer.hh"
#include "workload/app_profile.hh"

namespace memscale
{

class SyntheticTraceSource : public TraceSource
{
  public:
    /**
     * @param profile    application behaviour description
     * @param base       start of this instance's physical region
     * @param line_bytes cache line size
     * @param seed       deterministic stream seed
     */
    SyntheticTraceSource(const AppProfile &profile, Addr base,
                         std::uint32_t line_bytes, std::uint64_t seed);

    bool next(TraceChunk &chunk) override;

    /** Instructions generated so far. */
    std::uint64_t generated() const { return generated_; }

    /** @name Checkpoint/restore (PRNG position + phase cursor). */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    const AppPhase &currentPhase();
    Addr pickMissAddr(const AppPhase &ph);

    const AppProfile &profile_;
    Rng rng_;
    Addr base_;
    std::uint64_t lineBytes_;
    std::uint64_t footprintLines_;

    std::size_t phaseIdx_ = 0;
    std::uint64_t phaseInstr_ = 0;   ///< instructions into the phase
    std::uint64_t generated_ = 0;
    std::uint64_t streamLine_ = 0;   ///< streaming cursor
    Addr lastMiss_ = 0;
    bool exhausted_ = false;
};

} // namespace memscale

#endif // MEMSCALE_WORKLOAD_TRACE_SOURCE_HH
