/**
 * @file
 * Deterministic open-loop arrival processes for datacenter-style
 * serving workloads.
 *
 * A closed-loop trace core only issues its next miss once the
 * previous one returns, so memory slowdowns self-throttle the load.
 * Datacenter traffic does not wait: requests arrive on their own
 * clock, queues build when service lags, and what a frequency policy
 * trades away is *tail latency*, not CPI.  This module supplies the
 * arrival clock — three seeded processes behind one generator:
 *
 *  - Poisson: i.i.d. exponential gaps at a fixed rate λ.
 *  - Bursty: a 2-state Markov-modulated Poisson process (MMPP-2),
 *    alternating exponential dwells in a low-rate and a high-rate
 *    state.  Parameterized by the long-run burst time fraction f and
 *    the burst/calm rate ratio b; the state rates are solved so the
 *    long-run mean rate is exactly the configured λ.
 *  - Diurnal: a sinusoidal rate curve λ(t) = λ(1 + d·sin(2πt/T)),
 *    sampled exactly by Lewis–Shedler thinning against λ(1 + d).
 *
 * Every generator owns its Rng (seeded from the experiment seed), is
 * bit-reproducible, and checkpoints its full state — the arrival
 * stream after a restore continues exactly where it left off.
 */

#ifndef MEMSCALE_WORKLOAD_OPENLOOP_HH
#define MEMSCALE_WORKLOAD_OPENLOOP_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;

enum class ArrivalKind : std::uint8_t
{
    Poisson = 0,
    Bursty = 1,
    Diurnal = 2,
};

/** Parse "poisson" / "bursty" / "diurnal" (fatal otherwise). */
ArrivalKind parseArrivalKind(const std::string &name);

/** Inverse of parseArrivalKind. */
const char *arrivalKindName(ArrivalKind kind);

struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** Long-run mean arrival rate, requests per second. */
    double ratePerSec = 1.0e6;

    /** Generator seed (an experiment derives it from the run seed). */
    std::uint64_t seed = 1;

    /** @name Bursty (MMPP-2) shape. */
    /// @{
    /** Burst-state rate over calm-state rate (>= 1). */
    double burstFactor = 8.0;
    /** Long-run fraction of time spent bursting, in (0, 1). */
    double burstFraction = 0.1;
    /** Mean dwell in the burst state. */
    Tick meanBurstLen = usToTick(50.0);
    /// @}

    /** @name Diurnal shape. */
    /// @{
    /** One "day" of the compressed rate curve. */
    Tick diurnalPeriod = msToTick(2.0);
    /** Peak-to-mean rate swing, in [0, 1). */
    double diurnalDepth = 0.75;
    /// @}
};

class ArrivalGenerator
{
  public:
    /** Validates the config (fatal on nonsense parameters). */
    explicit ArrivalGenerator(const ArrivalConfig &cfg);

    /**
     * Absolute tick of the next arrival.  Nondecreasing; same-tick
     * arrivals are possible at high rates (sub-tick gaps round to 0).
     */
    Tick next();

    std::uint64_t generated() const { return generated_; }
    const ArrivalConfig &config() const { return cfg_; }

    /** @name Checkpoint/restore (Rng + process state + cursor). */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    Tick gapTicks(double rate_per_sec);
    Tick nextPoisson();
    Tick nextBursty();
    Tick nextDiurnal();

    ArrivalConfig cfg_;
    Rng rng_;
    Tick last_ = 0;                ///< previous arrival tick
    std::uint64_t generated_ = 0;

    /** @name MMPP-2 state (bursty only). */
    /// @{
    bool inBurst_ = false;
    Tick stateEnd_ = 0;            ///< current dwell expires here
    double rateCalm_ = 0.0;
    double rateBurst_ = 0.0;
    double meanCalmSec_ = 0.0;     ///< calm-state dwell mean, seconds
    double meanBurstSec_ = 0.0;
    /// @}
};

} // namespace memscale

#endif // MEMSCALE_WORKLOAD_OPENLOOP_HH
