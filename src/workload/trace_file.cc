#include "workload/trace_file.hh"

#include "common/log.hh"

namespace memscale
{

namespace
{

struct TraceFileHeader
{
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t reserved;
};

} // namespace

TraceRecorder::TraceRecorder(TraceSource &inner,
                             const std::string &path)
    : inner_(inner), file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        fatal("TraceRecorder: cannot open '%s' for writing",
              path.c_str());
    TraceFileHeader hdr{traceFileMagic, traceFileVersion, 0};
    if (std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("TraceRecorder: header write failed for '%s'",
              path.c_str());
}

TraceRecorder::~TraceRecorder()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceRecorder::next(TraceChunk &chunk)
{
    if (!inner_.next(chunk))
        return false;
    TraceFileRecord rec;
    rec.instructions = chunk.instructions;
    rec.missAddr = chunk.missAddr;
    rec.writebackAddr =
        chunk.hasWriteback ? chunk.writebackAddr : ~0ull;
    rec.cpi = chunk.cpi;
    if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1)
        fatal("TraceRecorder: record write failed");
    ++recorded_;
    return true;
}

TraceFileSource::TraceFileSource(const std::string &path, bool loop)
    : file_(std::fopen(path.c_str(), "rb")), loop_(loop)
{
    if (!file_)
        fatal("TraceFileSource: cannot open '%s'", path.c_str());
    TraceFileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1 ||
        hdr.magic != traceFileMagic) {
        fatal("TraceFileSource: '%s' is not a MemScale trace",
              path.c_str());
    }
    if (hdr.version != traceFileVersion)
        fatal("TraceFileSource: '%s' has unsupported version %u",
              path.c_str(), hdr.version);
    dataStart_ = std::ftell(file_);
}

TraceFileSource::~TraceFileSource()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileSource::next(TraceChunk &chunk)
{
    TraceFileRecord rec;
    if (std::fread(&rec, sizeof(rec), 1, file_) != 1) {
        if (!loop_)
            return false;
        if (std::fseek(file_, dataStart_, SEEK_SET) != 0)
            return false;
        if (std::fread(&rec, sizeof(rec), 1, file_) != 1)
            return false;   // empty trace
    }
    chunk.instructions = rec.instructions;
    chunk.cpi = rec.cpi;
    chunk.missAddr = rec.missAddr;
    chunk.hasWriteback = rec.writebackAddr != ~0ull;
    chunk.writebackAddr =
        chunk.hasWriteback ? rec.writebackAddr : 0;
    ++replayed_;
    return true;
}

} // namespace memscale
