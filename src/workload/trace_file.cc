#include "workload/trace_file.hh"

#include "common/log.hh"

namespace memscale
{

namespace
{

struct TraceFileHeader
{
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t reserved;
};

} // namespace

TraceRecorder::TraceRecorder(TraceSource &inner,
                             const std::string &path)
    : inner_(inner), file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        fatal("TraceRecorder: cannot open '%s' for writing",
              path.c_str());
    TraceFileHeader hdr{traceFileMagic, traceFileVersion, 0};
    if (std::fwrite(&hdr, sizeof(hdr), 1, file_) != 1)
        fatal("TraceRecorder: header write failed for '%s'",
              path.c_str());
}

TraceRecorder::~TraceRecorder()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceRecorder::next(TraceChunk &chunk)
{
    if (!inner_.next(chunk))
        return false;
    TraceFileRecord rec;
    rec.instructions = chunk.instructions;
    rec.missAddr = chunk.missAddr;
    rec.writebackAddr =
        chunk.hasWriteback ? chunk.writebackAddr : ~0ull;
    rec.cpi = chunk.cpi;
    if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1)
        fatal("TraceRecorder: record write failed");
    ++recorded_;
    return true;
}

TraceFileSource::TraceFileSource(const std::string &path, bool loop)
    : file_(std::fopen(path.c_str(), "rb")), loop_(loop)
{
    if (!file_)
        fatal("TraceFileSource: cannot open '%s'", path.c_str());
    TraceFileHeader hdr{};
    std::size_t got = std::fread(&hdr, 1, sizeof(hdr), file_);
    if (got < sizeof(hdr)) {
        fatal("TraceFileSource: '%s' is truncated: header is %zu of "
              "%zu bytes",
              path.c_str(), got, sizeof(hdr));
    }
    if (hdr.magic != traceFileMagic)
        fatal("TraceFileSource: '%s' is not a MemScale trace (bad "
              "magic)",
              path.c_str());
    if (hdr.version != traceFileVersion)
        fatal("TraceFileSource: '%s' has unsupported version %u "
              "(expected %u)",
              path.c_str(), hdr.version, traceFileVersion);
    dataStart_ = std::ftell(file_);
    path_ = path;
}

TraceFileSource::~TraceFileSource()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceFileSource::readRecord(TraceFileRecord &rec)
{
    // Byte-granular read so a file cut off mid-record is diagnosed
    // rather than silently treated as a clean end-of-trace.
    std::size_t got = std::fread(&rec, 1, sizeof(rec), file_);
    if (got == sizeof(rec))
        return true;
    if (std::ferror(file_))
        fatal("TraceFileSource: read error in '%s'", path_.c_str());
    if (got != 0) {
        fatal("TraceFileSource: '%s' is truncated mid-record (%zu of "
              "%zu bytes after %llu records)",
              path_.c_str(), got, sizeof(rec),
              static_cast<unsigned long long>(replayed_));
    }
    return false;   // clean EOF on a record boundary
}

bool
TraceFileSource::next(TraceChunk &chunk)
{
    TraceFileRecord rec;
    if (!readRecord(rec)) {
        if (!loop_)
            return false;
        if (std::fseek(file_, dataStart_, SEEK_SET) != 0)
            fatal("TraceFileSource: rewind failed for '%s'",
                  path_.c_str());
        if (!readRecord(rec))
            return false;   // empty trace
    }
    chunk.instructions = rec.instructions;
    chunk.cpi = rec.cpi;
    chunk.missAddr = rec.missAddr;
    chunk.hasWriteback = rec.writebackAddr != ~0ull;
    chunk.writebackAddr =
        chunk.hasWriteback ? rec.writebackAddr : 0;
    ++replayed_;
    return true;
}

} // namespace memscale
