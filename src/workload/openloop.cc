#include "workload/openloop.hh"

#include <cmath>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

ArrivalKind
parseArrivalKind(const std::string &name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "bursty")
        return ArrivalKind::Bursty;
    if (name == "diurnal")
        return ArrivalKind::Diurnal;
    fatal("unknown arrival process '%s' (poisson, bursty, diurnal)",
          name.c_str());
}

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::Diurnal: return "diurnal";
    }
    return "unknown";
}

namespace
{

/** Seconds -> ticks, rounded to nearest (sub-tick gaps become 0). */
Tick
secondsToTicks(double sec)
{
    const double t = sec * static_cast<double>(tickPerSec);
    if (t >= static_cast<double>(MaxTick))
        fatal("ArrivalGenerator: %g s gap overflows the tick clock",
              sec);
    return static_cast<Tick>(std::llround(t));
}

} // namespace

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    if (!(cfg_.ratePerSec > 0.0))
        fatal("ArrivalGenerator: rate %g must be positive",
              cfg_.ratePerSec);
    if (cfg_.kind == ArrivalKind::Bursty) {
        if (!(cfg_.burstFactor >= 1.0))
            fatal("ArrivalGenerator: burst factor %g must be >= 1",
                  cfg_.burstFactor);
        if (!(cfg_.burstFraction > 0.0 && cfg_.burstFraction < 1.0))
            fatal("ArrivalGenerator: burst fraction %g must be in "
                  "(0, 1)",
                  cfg_.burstFraction);
        if (cfg_.meanBurstLen == 0)
            fatal("ArrivalGenerator: zero mean burst length");
        // Solve the state rates so the time-weighted mean is exactly
        // the configured λ:  (1-f)·r_calm + f·b·r_calm = λ.
        const double f = cfg_.burstFraction;
        const double b = cfg_.burstFactor;
        rateCalm_ = cfg_.ratePerSec / ((1.0 - f) + f * b);
        rateBurst_ = b * rateCalm_;
        // Dwell means follow from the stationary split: time in burst
        // over time in calm must equal f / (1-f).
        meanBurstSec_ = tickToSec(cfg_.meanBurstLen);
        meanCalmSec_ = meanBurstSec_ * (1.0 - f) / f;
        // Start calm, with a full exponential dwell ahead.
        inBurst_ = false;
        stateEnd_ = secondsToTicks(rng_.exponential(meanCalmSec_));
    }
    if (cfg_.kind == ArrivalKind::Diurnal) {
        if (!(cfg_.diurnalDepth >= 0.0 && cfg_.diurnalDepth < 1.0))
            fatal("ArrivalGenerator: diurnal depth %g must be in "
                  "[0, 1)",
                  cfg_.diurnalDepth);
        if (cfg_.diurnalPeriod == 0)
            fatal("ArrivalGenerator: zero diurnal period");
    }
}

Tick
ArrivalGenerator::gapTicks(double rate_per_sec)
{
    return secondsToTicks(rng_.exponential(1.0 / rate_per_sec));
}

Tick
ArrivalGenerator::nextPoisson()
{
    return last_ + gapTicks(cfg_.ratePerSec);
}

Tick
ArrivalGenerator::nextBursty()
{
    // Walk a cursor forward; whenever a candidate gap crosses the end
    // of the current dwell, jump to the boundary, flip state, and
    // redraw — exact by the memorylessness of the exponential.
    Tick t = last_;
    for (;;) {
        const double rate = inBurst_ ? rateBurst_ : rateCalm_;
        const Tick gap = gapTicks(rate);
        if (t + gap <= stateEnd_)
            return t + gap;
        t = stateEnd_;
        inBurst_ = !inBurst_;
        const double dwell_mean =
            inBurst_ ? meanBurstSec_ : meanCalmSec_;
        Tick dwell = secondsToTicks(rng_.exponential(dwell_mean));
        if (dwell == 0)
            dwell = 1;
        stateEnd_ = t + dwell;
    }
}

Tick
ArrivalGenerator::nextDiurnal()
{
    // Lewis–Shedler thinning against the peak rate: candidate gaps at
    // λ_max = λ(1 + d), each accepted with probability λ(t)/λ_max.
    const double d = cfg_.diurnalDepth;
    const double rate_max = cfg_.ratePerSec * (1.0 + d);
    const double period_sec = tickToSec(cfg_.diurnalPeriod);
    Tick t = last_;
    for (;;) {
        t += gapTicks(rate_max);
        const double phase =
            2.0 * M_PI * tickToSec(t) / period_sec;
        const double rate_t =
            cfg_.ratePerSec * (1.0 + d * std::sin(phase));
        if (rng_.uniform() * rate_max <= rate_t)
            return t;
    }
}

Tick
ArrivalGenerator::next()
{
    Tick t;
    switch (cfg_.kind) {
      case ArrivalKind::Poisson: t = nextPoisson(); break;
      case ArrivalKind::Bursty: t = nextBursty(); break;
      case ArrivalKind::Diurnal: t = nextDiurnal(); break;
      default:
        fatal("ArrivalGenerator: bad kind %u",
              static_cast<unsigned>(cfg_.kind));
    }
    last_ = t;
    ++generated_;
    return t;
}

void
ArrivalGenerator::saveState(SectionWriter &w) const
{
    saveRng(w, rng_);
    w.u64(last_);
    w.u64(generated_);
    w.b(inBurst_);
    w.u64(stateEnd_);
}

void
ArrivalGenerator::restoreState(SectionReader &r)
{
    restoreRng(r, rng_);
    last_ = r.u64();
    generated_ = r.u64();
    inBurst_ = r.b();
    stateEnd_ = r.u64();
}

} // namespace memscale
