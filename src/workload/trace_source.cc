#include "workload/trace_source.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace memscale
{

SyntheticTraceSource::SyntheticTraceSource(const AppProfile &profile,
                                           Addr base,
                                           std::uint32_t line_bytes,
                                           std::uint64_t seed)
    : profile_(profile), rng_(seed), base_(base),
      lineBytes_(line_bytes),
      footprintLines_(profile.footprintBytes / line_bytes)
{
    if (profile_.phases.empty())
        fatal("SyntheticTraceSource: profile '%s' has no phases",
              profile_.name.c_str());
    if (footprintLines_ == 0)
        fatal("SyntheticTraceSource: zero footprint");
    streamLine_ = rng_.below(footprintLines_);
}

const AppPhase &
SyntheticTraceSource::currentPhase()
{
    const AppPhase *ph = &profile_.phases[phaseIdx_];
    while (ph->instructions != 0 && phaseInstr_ >= ph->instructions) {
        phaseInstr_ -= ph->instructions;
        ++phaseIdx_;
        if (phaseIdx_ == profile_.phases.size()) {
            if (!profile_.loopPhases) {
                exhausted_ = true;
                phaseIdx_ = profile_.phases.size() - 1;
                break;
            }
            phaseIdx_ = 0;
        }
        ph = &profile_.phases[phaseIdx_];
    }
    return *ph;
}

Addr
SyntheticTraceSource::pickMissAddr(const AppPhase &ph)
{
    std::uint64_t line;
    if (rng_.chance(ph.streamFrac)) {
        streamLine_ = (streamLine_ + 1) % footprintLines_;
        line = streamLine_;
    } else {
        line = rng_.below(footprintLines_);
    }
    return base_ + line * lineBytes_;
}

bool
SyntheticTraceSource::next(TraceChunk &chunk)
{
    if (exhausted_)
        return false;
    const AppPhase &ph = currentPhase();
    if (exhausted_)
        return false;

    // Exponential inter-miss gap with mean 1000/MPKI instructions.
    double mean = ph.mpki > 0.0 ? 1000.0 / ph.mpki : 1.0e9;
    auto gap = static_cast<std::uint64_t>(
        std::llround(rng_.exponential(mean)));
    // Cap the gap so phase boundaries are respected reasonably.
    if (ph.instructions != 0) {
        std::uint64_t left = ph.instructions > phaseInstr_
                                 ? ph.instructions - phaseInstr_
                                 : 0;
        gap = std::min(gap, left + 1);
    }

    chunk.instructions = gap;
    chunk.cpi = ph.baseCpi;
    chunk.missAddr = pickMissAddr(ph);
    double wb_prob = ph.mpki > 0.0
                         ? std::min(1.0, ph.wpki / ph.mpki)
                         : 0.0;
    chunk.hasWriteback = rng_.chance(wb_prob);
    if (chunk.hasWriteback) {
        // Victim lines come from the same footprint; bias toward the
        // vicinity of recent activity for mild locality.
        std::uint64_t victim =
            (streamLine_ + rng_.below(1024)) % footprintLines_;
        chunk.writebackAddr = base_ + victim * lineBytes_;
    }
    lastMiss_ = chunk.missAddr;

    phaseInstr_ += gap + 1;
    generated_ += gap + 1;
    return true;
}

void
SyntheticTraceSource::saveState(SectionWriter &w) const
{
    saveRng(w, rng_);
    w.u64(phaseIdx_);
    w.u64(phaseInstr_);
    w.u64(generated_);
    w.u64(streamLine_);
    w.u64(lastMiss_);
    w.b(exhausted_);
}

void
SyntheticTraceSource::restoreState(SectionReader &r)
{
    restoreRng(r, rng_);
    phaseIdx_ = static_cast<std::size_t>(r.u64());
    phaseInstr_ = r.u64();
    generated_ = r.u64();
    streamLine_ = r.u64();
    lastMiss_ = r.u64();
    exhausted_ = r.b();
}

} // namespace memscale
