/**
 * @file
 * The paper's 12 multiprogrammed workloads (Table 1) built from
 * synthetic profiles of the 26 SPEC 2000/2006 applications used in the
 * mixes.  Per-application rates were solved so that each mix's average
 * RPKI/WPKI approximates the Table 1 measurements (the per-app values
 * are not published; only mix averages are).
 */

#ifndef MEMSCALE_WORKLOAD_MIXES_HH
#define MEMSCALE_WORKLOAD_MIXES_HH

#include <array>
#include <string>
#include <vector>

#include "workload/app_profile.hh"

namespace memscale
{

struct MixSpec
{
    std::string name;             ///< e.g. "MID3"
    std::string klass;            ///< "ILP", "MID", or "MEM"
    std::array<std::string, 4> apps;
    double paperRpki;             ///< Table 1 reference value
    double paperWpki;             ///< Table 1 reference value
};

/** Profile registry for all applications used by the mixes. */
const AppProfile &appByName(const std::string &name);

/** All 12 mixes of Table 1. */
const std::vector<MixSpec> &allMixes();

/** Lookup by name; fatal() on unknown mixes. */
const MixSpec &mixByName(const std::string &name);

/** The application run by a given core under a mix (x4 each). */
const AppProfile &appForCore(const MixSpec &mix, std::uint32_t core);

/**
 * Clone a profile with phase lengths scaled by `scale`, so phase
 * schedules calibrated for the paper's 100M-instruction SimPoints
 * land proportionally within shorter simulated budgets.
 */
AppProfile scaledProfile(const AppProfile &p, double scale);

/** Canonical instruction budget the phase schedules assume. */
inline constexpr std::uint64_t canonicalBudget = 100'000'000;

} // namespace memscale

#endif // MEMSCALE_WORKLOAD_MIXES_HH
