/**
 * @file
 * Synthetic load/store address-stream generator for the cache-based
 * trace path (the alternative to direct miss-stream synthesis; see
 * DESIGN.md).  Models a set of sequential streams plus uniform random
 * accesses over a footprint, the classic blend that covers SPEC-like
 * behaviour from mgrid-style streaming to mcf-style pointer chasing.
 */

#ifndef MEMSCALE_WORKLOAD_ADDRESS_STREAM_HH
#define MEMSCALE_WORKLOAD_ADDRESS_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

struct AddressStreamParams
{
    std::uint64_t footprintBytes = 64ull << 20;
    std::uint32_t numStreams = 4;      ///< concurrent sequential walks
    std::uint64_t strideBytes = 64;    ///< stream step
    double seqFrac = 0.7;              ///< P(next access is streaming)
    double storeFrac = 0.3;            ///< P(access is a store)
    /** Hot-set fraction receiving random accesses (temporal reuse). */
    double hotFrac = 0.1;
    double hotProb = 0.6;              ///< P(random access hits hot set)
};

class AddressStream
{
  public:
    AddressStream(const AddressStreamParams &params, Addr base,
                  std::uint64_t seed);

    /** Produce the next access. @param is_store set per storeFrac. */
    Addr next(bool &is_store);

    /** @name Checkpoint/restore (PRNG + stream cursors). */
    /// @{
    void
    saveState(SectionWriter &w) const
    {
        saveRng(w, rng_);
        w.u64(cursors_.size());
        for (std::uint64_t c : cursors_)
            w.u64(c);
    }

    void
    restoreState(SectionReader &r)
    {
        restoreRng(r, rng_);
        cursors_.resize(r.u64());
        for (std::uint64_t &c : cursors_)
            c = r.u64();
    }
    /// @}

  private:
    AddressStreamParams params_;
    Addr base_;
    Rng rng_;
    std::vector<std::uint64_t> cursors_;  ///< per-stream byte offsets
};

} // namespace memscale

#endif // MEMSCALE_WORKLOAD_ADDRESS_STREAM_HH
