/**
 * @file
 * LLC miss-trace recording and replay — the paper's two-step
 * methodology (Section 4.1): a front end collects per-core miss and
 * writeback traces once; the detailed memory simulator replays them
 * under every policy, guaranteeing identical offered work.
 *
 * Format: a small header followed by fixed-size little-endian records
 * per chunk.  One file per core.
 */

#ifndef MEMSCALE_WORKLOAD_TRACE_FILE_HH
#define MEMSCALE_WORKLOAD_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>

#include "cpu/trace.hh"

namespace memscale
{

/** On-disk per-chunk record. */
struct TraceFileRecord
{
    std::uint64_t instructions;
    std::uint64_t missAddr;
    std::uint64_t writebackAddr;   ///< ~0ull when absent
    double cpi;
};

inline constexpr std::uint64_t traceFileMagic = 0x4d53434c54524331ull;
inline constexpr std::uint32_t traceFileVersion = 1;

/**
 * Tee: forwards chunks from an inner source while appending them to a
 * trace file.
 */
class TraceRecorder : public TraceSource
{
  public:
    TraceRecorder(TraceSource &inner, const std::string &path);
    ~TraceRecorder() override;

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    bool next(TraceChunk &chunk) override;

    std::uint64_t recorded() const { return recorded_; }

  private:
    TraceSource &inner_;
    std::FILE *file_;
    std::uint64_t recorded_ = 0;
};

/** Replays a recorded trace file; optionally loops at end-of-file. */
class TraceFileSource : public TraceSource
{
  public:
    explicit TraceFileSource(const std::string &path,
                             bool loop = false);
    ~TraceFileSource() override;

    TraceFileSource(const TraceFileSource &) = delete;
    TraceFileSource &operator=(const TraceFileSource &) = delete;

    bool next(TraceChunk &chunk) override;

    std::uint64_t replayed() const { return replayed_; }

  private:
    /**
     * Read one record; true on success, false on a clean end-of-file
     * at a record boundary.  A short read anywhere else (truncated
     * file, I/O error) is fatal — it must never masquerade as the end
     * of the trace.
     */
    bool readRecord(TraceFileRecord &rec);

    std::FILE *file_;
    long dataStart_ = 0;
    bool loop_;
    std::uint64_t replayed_ = 0;
    std::string path_;
};

} // namespace memscale

#endif // MEMSCALE_WORKLOAD_TRACE_FILE_HH
