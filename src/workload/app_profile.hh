/**
 * @file
 * Synthetic application profiles standing in for the paper's SPEC
 * 2000/2006 SimPoint traces (see DESIGN.md, substitution table).
 *
 * A profile is a sequence of phases; each phase fixes the LLC read
 * miss rate (MPKI), writeback rate (WPKI), non-memory CPI, and the
 * fraction of misses that stream sequentially (which determines
 * row-buffer locality potential).  Phase schedules reproduce
 * program-phase behaviour such as apsi's large mid-run transition
 * (paper Fig. 7).
 */

#ifndef MEMSCALE_WORKLOAD_APP_PROFILE_HH
#define MEMSCALE_WORKLOAD_APP_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace memscale
{

struct AppPhase
{
    double mpki = 1.0;       ///< LLC read misses per kilo-instruction
    double wpki = 0.0;       ///< LLC writebacks per kilo-instruction
    double baseCpi = 1.0;    ///< CPI of non-missing instructions
    double streamFrac = 0.5; ///< fraction of misses that stream
    /** Phase length in instructions; 0 = until the end of the run. */
    std::uint64_t instructions = 0;
};

struct AppProfile
{
    std::string name;
    std::vector<AppPhase> phases;
    /** Per-instance memory footprint. */
    std::uint64_t footprintBytes = 64ull << 20;
    /** Restart the phase schedule when it runs out. */
    bool loopPhases = true;

    /** Run-average MPKI over the first `horizon` instructions. */
    double averageMpki(std::uint64_t horizon) const;
    /** Run-average WPKI over the first `horizon` instructions. */
    double averageWpki(std::uint64_t horizon) const;
};

} // namespace memscale

#endif // MEMSCALE_WORKLOAD_APP_PROFILE_HH
