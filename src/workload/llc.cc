#include "workload/llc.hh"

#include <cmath>

#include "common/log.hh"

namespace memscale
{

Llc::Llc(std::uint64_t size_bytes, std::uint32_t ways,
         std::uint32_t line_bytes)
    : ways_(ways), lineBytes_(line_bytes),
      numSets_(size_bytes / (static_cast<std::uint64_t>(ways) *
                             line_bytes))
{
    if (numSets_ == 0 || ways_ == 0)
        fatal("Llc: degenerate geometry (%llu bytes, %u ways)",
              static_cast<unsigned long long>(size_bytes), ways);
    lines_.resize(numSets_ * ways_);
}

Llc::AccessResult
Llc::access(Addr addr, bool is_store)
{
    AccessResult res;
    Addr line_addr = addr / lineBytes_;
    std::uint64_t set = line_addr % numSets_;
    Addr tag = line_addr / numSets_;
    Line *base = &lines_[set * ways_];
    ++clock_;

    Line *victim = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            ++hits_;
            l.lastUse = clock_;
            if (is_store)
                l.dirty = true;
            res.hit = true;
            return res;
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lastUse < victim->lastUse) {
            victim = &l;
        }
    }

    ++misses_;
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        res.writeback = true;
        res.victimAddr =
            (victim->tag * numSets_ + set) * lineBytes_;
    }
    victim->valid = true;
    victim->dirty = is_store;
    victim->tag = tag;
    victim->lastUse = clock_;
    return res;
}

CacheTraceSource::CacheTraceSource(const Params &params,
                                   const AddressStreamParams &stream,
                                   Addr base, std::uint64_t seed)
    : params_(params), stream_(stream, base, seed),
      llc_(params.llcBytes, params.llcWays, params.lineBytes),
      rng_(seed ^ 0x5bd1e995u)
{
    if (params_.accessesPerKiloInstr <= 0.0)
        fatal("CacheTraceSource: accessesPerKiloInstr must be > 0");
}

bool
CacheTraceSource::next(TraceChunk &chunk)
{
    // Run LLC lookups until one misses; instructions accumulate per
    // lookup at the configured access density.
    const double instr_per_access =
        1000.0 / params_.accessesPerKiloInstr;
    double gap = 0.0;
    for (;;) {
        gap += rng_.exponential(instr_per_access);
        bool is_store = false;
        Addr addr = stream_.next(is_store);
        Llc::AccessResult res = llc_.access(addr, is_store);
        if (res.hit)
            continue;
        chunk.instructions =
            static_cast<std::uint64_t>(std::llround(gap));
        chunk.cpi = params_.baseCpi;
        chunk.missAddr = addr;
        chunk.hasWriteback = res.writeback;
        chunk.writebackAddr = res.victimAddr;
        instructions_ += chunk.instructions + 1;
        ++missesEmitted_;
        return true;
    }
}

double
CacheTraceSource::observedMpki() const
{
    if (instructions_ == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(missesEmitted_) /
           static_cast<double>(instructions_);
}

} // namespace memscale
