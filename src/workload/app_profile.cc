#include "workload/app_profile.hh"

#include "common/log.hh"

namespace memscale
{

namespace
{

double
averageRate(const AppProfile &p, std::uint64_t horizon, bool writes)
{
    if (p.phases.empty() || horizon == 0)
        return 0.0;
    double weighted = 0.0;
    std::uint64_t covered = 0;
    std::size_t i = 0;
    while (covered < horizon) {
        const AppPhase &ph = p.phases[i];
        std::uint64_t len = ph.instructions == 0
                                ? horizon - covered
                                : std::min<std::uint64_t>(
                                      ph.instructions,
                                      horizon - covered);
        weighted += (writes ? ph.wpki : ph.mpki) *
                    static_cast<double>(len);
        covered += len;
        if (ph.instructions == 0)
            break;
        ++i;
        if (i == p.phases.size()) {
            if (!p.loopPhases)
                break;
            i = 0;
        }
    }
    if (covered == 0)
        return 0.0;
    return weighted / static_cast<double>(covered);
}

} // namespace

double
AppProfile::averageMpki(std::uint64_t horizon) const
{
    return averageRate(*this, horizon, false);
}

double
AppProfile::averageWpki(std::uint64_t horizon) const
{
    return averageRate(*this, horizon, true);
}

} // namespace memscale
