#include "obs/trace_writer.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace memscale
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

/** Incremental traceEvents array builder. */
class EventSink
{
  public:
    void
    meta(int pid, int tid, const char *what, const std::string &name)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,", pid,
                      tid);
        add(std::string(buf) + "\"name\":\"" + what +
            "\",\"args\":{\"name\":\"" + jsonEscape(name) + "\"}}");
    }

    void
    duration(int pid, int tid, const std::string &name, double ts_us,
             double dur_us, const std::string &args_json)
    {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,"
                      "\"dur\":%s,",
                      pid, tid, num(ts_us).c_str(),
                      num(dur_us).c_str());
        add("{\"name\":\"" + jsonEscape(name) + "\"," + buf +
            "\"args\":{" + args_json + "}}");
    }

    std::string
    finish() const
    {
        return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" +
               body_ + "\n]}\n";
    }

  private:
    void
    add(std::string ev)
    {
        if (!body_.empty())
            body_ += ",\n";
        body_ += std::move(ev);
    }

    std::string body_;
};

constexpr int PidCores = 1;
constexpr int PidMemory = 2;
constexpr int PidPower = 3;

/** Quarter-CPI buckets define a "phase" for merging purposes. */
double
cpiBucket(double cpi)
{
    return std::round(cpi * 4.0) / 4.0;
}

void
emitCoreTracks(const EpochRecorder &rec, EventSink &sink)
{
    const ObsMeta &meta = rec.meta();
    const std::size_t rows = rec.epochs();
    const std::size_t start_c = rec.columnIndex("start_ms");
    const std::size_t end_c = rec.columnIndex("end_ms");
    for (std::uint32_t core = 0;; ++core) {
        std::size_t col = rec.columnIndex(
            "core" + std::to_string(core) + ".cpi");
        if (col == EpochRecorder::npos)
            break;
        std::string tname = core < meta.coreNames.size()
                                ? meta.coreNames[core] + " (core" +
                                      std::to_string(core) + ")"
                                : "core" + std::to_string(core);
        sink.meta(PidCores, static_cast<int>(core), "thread_name",
                  tname);
        std::size_t r = 0;
        while (r < rows) {
            double bucket = cpiBucket(rec.at(r, col));
            double sum = 0.0;
            std::size_t first = r;
            while (r < rows && cpiBucket(rec.at(r, col)) == bucket)
                sum += rec.at(r++, col);
            double t0 = rec.at(first, start_c) * 1000.0;
            double t1 = rec.at(r - 1, end_c) * 1000.0;
            double mean = sum / static_cast<double>(r - first);
            char name[32];
            std::snprintf(name, sizeof(name), "cpi~%.2f", bucket);
            sink.duration(PidCores, static_cast<int>(core), name, t0,
                          t1 - t0,
                          "\"cpi_mean\":" + num(mean) +
                              ",\"epochs\":" +
                              std::to_string(r - first));
        }
    }
}

void
emitFrequencyTracks(const EpochRecorder &rec, EventSink &sink)
{
    const std::size_t rows = rec.epochs();
    const std::size_t start_c = rec.columnIndex("start_ms");
    const std::size_t end_c = rec.columnIndex("end_ms");

    // Per-channel frequency columns registered by the controller
    // ("mc0.chan3.busMHz"); the controller-domain "bus_mhz" column is
    // the fallback when none were registered.
    struct Track
    {
        std::string name;
        std::size_t col;
    };
    std::vector<Track> tracks;
    for (const std::string &n : rec.columnNames()) {
        auto pos = n.rfind(".busMHz");
        if (pos != std::string::npos &&
            pos + 7 == n.size() &&
            n.find(".chan") != std::string::npos)
            tracks.push_back({n.substr(0, pos), rec.columnIndex(n)});
    }
    if (tracks.empty())
        tracks.push_back({"bus", rec.columnIndex("bus_mhz")});

    for (std::size_t t = 0; t < tracks.size(); ++t) {
        sink.meta(PidMemory, static_cast<int>(t), "thread_name",
                  tracks[t].name + " frequency");
        std::size_t r = 0;
        while (r < rows) {
            double mhz = rec.at(r, tracks[t].col);
            std::size_t first = r;
            while (r < rows && rec.at(r, tracks[t].col) == mhz)
                ++r;
            double t0 = rec.at(first, start_c) * 1000.0;
            double t1 = rec.at(r - 1, end_c) * 1000.0;
            char name[32];
            std::snprintf(name, sizeof(name), "%.0f MHz", mhz);
            sink.duration(PidMemory, static_cast<int>(t), name, t0,
                          t1 - t0, "\"mhz\":" + num(mhz));
        }
    }
}

void
emitResidencyTracks(const EpochRecorder &rec, EventSink &sink)
{
    const std::size_t rows = rec.epochs();
    const std::size_t start_c = rec.columnIndex("start_ms");
    const std::size_t end_c = rec.columnIndex("end_ms");

    // Rank groups are discovered from the cumulative time-in-state
    // columns Rank::registerStats publishes.
    std::vector<std::string> groups;
    for (const std::string &n : rec.columnNames()) {
        auto pos = n.rfind(".preTime");
        if (pos != std::string::npos && pos + 8 == n.size() &&
            n.find(".rank") != std::string::npos)
            groups.push_back(n.substr(0, pos));
    }

    struct StateCol
    {
        const char *suffix;
        const char *label;
    };
    const StateCol states[] = {
        {".actTime", "act-standby"},
        {".actPdTime", "act-powerdown"},
        {".preTime", "pre-standby"},
        {".prePdTime", "pre-powerdown"},
    };

    for (std::size_t g = 0; g < groups.size(); ++g) {
        std::size_t cols[4];
        bool complete = true;
        for (int s = 0; s < 4; ++s) {
            cols[s] = rec.columnIndex(groups[g] + states[s].suffix);
            complete &= cols[s] != EpochRecorder::npos;
        }
        std::size_t total_c =
            rec.columnIndex(groups[g] + ".totalTime");
        std::size_t sr_c = rec.columnIndex(groups[g] + ".srTime");
        if (!complete || total_c == EpochRecorder::npos)
            continue;

        sink.meta(PidPower, static_cast<int>(g), "thread_name",
                  groups[g] + " residency");
        double prev[4] = {0, 0, 0, 0};
        double prev_total = 0.0, prev_sr = 0.0;
        for (std::size_t r = 0; r < rows; ++r) {
            double d[4];
            for (int s = 0; s < 4; ++s) {
                double cur = rec.at(r, cols[s]);
                d[s] = cur - prev[s];
                prev[s] = cur;
            }
            double total = rec.at(r, total_c);
            double dt = total - prev_total;
            prev_total = total;
            double sr = sr_c != EpochRecorder::npos
                            ? rec.at(r, sr_c)
                            : 0.0;
            double dsr = sr - prev_sr;
            prev_sr = sr;
            if (dt <= 0.0)
                continue;
            int dominant = 0;
            for (int s = 1; s < 4; ++s)
                if (d[s] > d[dominant])
                    dominant = s;
            std::string args;
            for (int s = 0; s < 4; ++s) {
                args += std::string("\"") + states[s].label +
                        "\":" + num(d[s] / dt) + ",";
            }
            args += "\"self_refresh\":" + num(dsr / dt);
            double t0 = rec.at(r, start_c) * 1000.0;
            double t1 = rec.at(r, end_c) * 1000.0;
            sink.duration(PidPower, static_cast<int>(g),
                          states[dominant].label, t0, t1 - t0, args);
        }
    }
}

} // namespace

std::string
chromeTraceJson(const EpochRecorder &rec)
{
    EventSink sink;
    std::string label =
        rec.meta().label.empty() ? "memscale" : rec.meta().label;
    sink.meta(PidCores, 0, "process_name", label + " cores");
    sink.meta(PidMemory, 0, "process_name", label + " memory");
    sink.meta(PidPower, 0, "process_name", label + " power");
    if (rec.epochs() > 0 &&
        rec.columnIndex("start_ms") != EpochRecorder::npos) {
        emitCoreTracks(rec, sink);
        emitFrequencyTracks(rec, sink);
        emitResidencyTracks(rec, sink);
    }
    return sink.finish();
}

bool
writeChromeTrace(const EpochRecorder &rec, const std::string &path)
{
    std::string body = chromeTraceJson(rec);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("writeChromeTrace: cannot write '%s'", path.c_str());
        return false;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

} // namespace memscale
