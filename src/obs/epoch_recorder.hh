/**
 * @file
 * Per-epoch time-series capture.
 *
 * At every epoch boundary the EpochRecorder appends one row to a
 * columnar in-memory buffer: the epoch envelope (interval, chosen bus
 * frequency, CPU clock, bus utilization), the policy's decision trail
 * (predicted vs. realized CPI, predicted energy, SER, minimum slack),
 * per-core CPI, and a snapshot of every stat registered in the run's
 * StatRegistry.  The schema is fixed at the first record; the buffer
 * is a flat vector of doubles (row-major), so recording an epoch is
 * one memcpy-sized append and exports are trivial column walks.
 *
 * Recording is entirely passive — it reads counters that the
 * simulation already maintains — so a run with a recorder attached is
 * bit-identical to one without (pinned by test_golden).
 */

#ifndef MEMSCALE_OBS_EPOCH_RECORDER_HH
#define MEMSCALE_OBS_EPOCH_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/stat_registry.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;

/** Trace/track metadata the exporters need about the simulated box. */
struct ObsMeta
{
    std::uint32_t numCores = 0;
    std::uint32_t numChannels = 0;
    std::uint32_t ranksPerChannel = 0;
    std::vector<std::string> coreNames;  ///< app per core (optional)
    std::string label;                   ///< e.g. "MID3/memscale"
};

/** Everything the epoch controller hands over at an epoch boundary. */
struct EpochSample
{
    Tick start = 0;
    Tick end = 0;
    std::uint32_t busMHz = 0;
    double cpuGHz = 0.0;
    double channelUtil = 0.0;
    std::vector<double> coreCpi;

    /// @name Policy decision trail (valid for deciding policies only).
    /// @{
    bool haveDecision = false;
    double predCpi = 0.0;    ///< mean predicted CPI at the chosen f
    double predMemJ = 0.0;   ///< predicted memory energy, joules
    double predSysJ = 0.0;   ///< predicted system energy, joules
    double ser = 1.0;        ///< system energy ratio vs. nominal
    double minSlack = 0.0;   ///< tightest per-core slack, seconds
    /// @}
};

class EpochRecorder
{
  public:
    /**
     * @param reg optional registry snapshotted into every row.  Only
     *            dereferenced inside record(); exporters never touch
     *            it, so it may die once the run is over (detach() for
     *            belt and braces).
     */
    explicit EpochRecorder(const StatRegistry *reg = nullptr)
        : reg_(reg)
    {
    }

    void setMeta(ObsMeta meta) { meta_ = std::move(meta); }
    const ObsMeta &meta() const { return meta_; }

    /** Append one epoch row.  The schema locks in on the first call. */
    void record(const EpochSample &s);

    /** Forget the registry pointer (call when the run tears down). */
    void detach() { reg_ = nullptr; }

    /// @name Columnar access.
    /// @{
    std::size_t epochs() const
    {
        return ncols_ ? data_.size() / ncols_ : 0;
    }
    std::size_t columns() const { return ncols_; }
    const std::vector<std::string> &columnNames() const
    {
        return names_;
    }
    /** Index of a named column, or npos when absent. */
    std::size_t columnIndex(const std::string &name) const;
    static constexpr std::size_t npos = ~std::size_t(0);

    double at(std::size_t row, std::size_t col) const;
    /** Copy of one column; fatal() on unknown names. */
    std::vector<double> column(const std::string &name) const;
    /// @}

    /// @name Exporters.
    /// @{
    /** One header row of column names, then one row per epoch. */
    std::string toCsv() const;
    /** {"label":…, "columns":[…], "rows":[[…],…]} */
    std::string toJson() const;
    bool writeCsv(const std::string &path) const;
    bool writeJson(const std::string &path) const;
    /// @}

    /** @name Checkpoint/restore: schema + recorded rows (meta and
     * registry binding come from the resumed run's configuration). */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

  private:
    const StatRegistry *reg_;
    ObsMeta meta_;
    std::vector<std::string> names_;
    std::vector<double> data_;       ///< row-major, epochs() x ncols_
    std::size_t ncols_ = 0;
    std::vector<double> scratch_;    ///< registry snapshot staging
};

} // namespace memscale

#endif // MEMSCALE_OBS_EPOCH_RECORDER_HH
