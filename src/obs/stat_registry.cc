#include "obs/stat_registry.hh"

#include "common/log.hh"

namespace memscale
{

bool
StatRegistry::addEntry(const std::string &path, Entry e)
{
    if (path.empty()) {
        warn("StatRegistry: refusing to register an empty name");
        return false;
    }
    if (index_.count(path)) {
        warn("StatRegistry: name collision on '%s' (keeping the "
             "first registration)",
             path.c_str());
        return false;
    }
    index_.emplace(path, entries_.size());
    entries_.push_back(std::move(e));
    names_.push_back(path);
    return true;
}

bool
StatRegistry::addCounter(const std::string &path,
                         const std::uint64_t *v)
{
    Entry e;
    e.kind = Entry::Kind::Counter;
    e.ptr = v;
    return addEntry(path, std::move(e));
}

bool
StatRegistry::addGauge(const std::string &path, const double *v)
{
    Entry e;
    e.kind = Entry::Kind::GaugePtr;
    e.ptr = v;
    return addEntry(path, std::move(e));
}

bool
StatRegistry::addGauge(const std::string &path,
                       std::function<double()> fn)
{
    Entry e;
    e.kind = Entry::Kind::GaugeFn;
    e.fn = std::move(fn);
    return addEntry(path, std::move(e));
}

bool
StatRegistry::addAccumulator(const std::string &path,
                             const Accumulator *a)
{
    const char *suffixes[] = {".count", ".mean", ".min", ".max"};
    for (const char *s : suffixes) {
        if (index_.count(path + s)) {
            warn("StatRegistry: name collision on '%s%s'",
                 path.c_str(), s);
            return false;
        }
    }
    addGauge(path + ".count", [a] {
        return static_cast<double>(a->count());
    });
    addGauge(path + ".mean", [a] { return a->mean(); });
    addGauge(path + ".min", [a] { return a->min(); });
    addGauge(path + ".max", [a] { return a->max(); });
    return true;
}

bool
StatRegistry::addHistogram(const std::string &path, const Histogram *h)
{
    const char *suffixes[] = {".count", ".p50", ".p95", ".p99"};
    for (const char *s : suffixes) {
        if (index_.count(path + s)) {
            warn("StatRegistry: name collision on '%s%s'",
                 path.c_str(), s);
            return false;
        }
    }
    addGauge(path + ".count", [h] {
        return static_cast<double>(h->count());
    });
    addGauge(path + ".p50", [h] { return h->percentile(0.50); });
    addGauge(path + ".p95", [h] { return h->percentile(0.95); });
    addGauge(path + ".p99", [h] { return h->percentile(0.99); });
    return true;
}

bool
StatRegistry::has(const std::string &path) const
{
    return index_.count(path) > 0;
}

std::vector<std::string>
StatRegistry::namesWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const std::string &n : names_) {
        // A prefix matches itself or any dot-separated descendant.
        if (n.size() >= prefix.size() &&
            n.compare(0, prefix.size(), prefix) == 0 &&
            (n.size() == prefix.size() || n[prefix.size()] == '.' ||
             prefix.empty()))
            out.push_back(n);
    }
    return out;
}

double
StatRegistry::read(std::size_t idx) const
{
    const Entry &e = entries_.at(idx);
    switch (e.kind) {
      case Entry::Kind::Counter:
        return static_cast<double>(
            *static_cast<const std::uint64_t *>(e.ptr));
      case Entry::Kind::GaugePtr:
        return *static_cast<const double *>(e.ptr);
      case Entry::Kind::GaugeFn:
        return e.fn();
    }
    return 0.0;
}

double
StatRegistry::read(const std::string &path) const
{
    auto it = index_.find(path);
    if (it == index_.end())
        fatal("StatRegistry: unknown stat '%s'", path.c_str());
    return read(it->second);
}

void
StatRegistry::snapshot(std::vector<double> &out) const
{
    out.resize(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i)
        out[i] = read(i);
}

} // namespace memscale
