/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto JSON) export of a
 * recorded epoch timeline.
 *
 * The writer renders three process groups of duration events from an
 * EpochRecorder buffer:
 *
 *  - "cores": one track per core, consecutive epochs with similar CPI
 *    merged into one phase event (so application phase changes show
 *    up as block boundaries);
 *  - "memory": one track per channel with a duration event per
 *    constant-frequency run — a frequency transition is the boundary
 *    between two blocks;
 *  - "power": one track per (channel, rank) with a per-epoch event
 *    named after the dominant power state, residency fractions in the
 *    event args.
 *
 * Channel and rank tracks are discovered from the registry column
 * names the recorder captured ("….chan1.busMHz", "….rank0.preTime"),
 * so anything registered under the standard component paths shows up
 * without writer changes.  Event timestamps are microseconds and
 * strictly monotone per track (pinned by test_obs).
 */

#ifndef MEMSCALE_OBS_TRACE_WRITER_HH
#define MEMSCALE_OBS_TRACE_WRITER_HH

#include <string>

#include "obs/epoch_recorder.hh"

namespace memscale
{

/** Render the whole timeline as one Chrome-trace JSON document. */
std::string chromeTraceJson(const EpochRecorder &rec);

/** chromeTraceJson() to a file; false (with a warning) on I/O error. */
bool writeChromeTrace(const EpochRecorder &rec, const std::string &path);

} // namespace memscale

#endif // MEMSCALE_OBS_TRACE_WRITER_HH
