#include "obs/epoch_recorder.hh"

#include <cstdio>

#include "common/log.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

namespace
{

/**
 * Shortest-round-trip formatting: %.17g preserves every double bit
 * pattern, so exported files are byte-identical across thread counts
 * whenever the underlying runs are (which the sweep engine
 * guarantees).
 */
std::string
fmtVal(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
writeFile(const std::string &path, const std::string &body,
          const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("EpochRecorder: cannot write %s to '%s'", what,
             path.c_str());
        return false;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
}

} // namespace

void
EpochRecorder::record(const EpochSample &s)
{
    if (ncols_ == 0) {
        names_ = {"epoch",     "start_ms",   "end_ms",
                  "bus_mhz",   "cpu_ghz",    "channel_util",
                  "actual_cpi", "pred_cpi",  "pred_mem_j",
                  "pred_sys_j", "ser",       "min_slack"};
        for (std::size_t c = 0; c < s.coreCpi.size(); ++c)
            names_.push_back("core" + std::to_string(c) + ".cpi");
        if (reg_) {
            for (const std::string &n : reg_->names())
                names_.push_back(n);
        }
        ncols_ = names_.size();
    }

    const std::size_t fixed = 12 + s.coreCpi.size() +
                              (reg_ ? reg_->size() : 0);
    if (fixed != ncols_) {
        fatal("EpochRecorder: schema changed mid-run (%zu columns, "
              "expected %zu); register all stats before the first "
              "epoch",
              fixed, ncols_);
    }

    double actual = 0.0;
    for (double c : s.coreCpi)
        actual += c;
    if (!s.coreCpi.empty())
        actual /= static_cast<double>(s.coreCpi.size());

    data_.reserve(data_.size() + ncols_);
    data_.push_back(static_cast<double>(epochs()));
    data_.push_back(tickToMs(s.start));
    data_.push_back(tickToMs(s.end));
    data_.push_back(static_cast<double>(s.busMHz));
    data_.push_back(s.cpuGHz);
    data_.push_back(s.channelUtil);
    data_.push_back(actual);
    data_.push_back(s.haveDecision ? s.predCpi : 0.0);
    data_.push_back(s.haveDecision ? s.predMemJ : 0.0);
    data_.push_back(s.haveDecision ? s.predSysJ : 0.0);
    data_.push_back(s.haveDecision ? s.ser : 1.0);
    data_.push_back(s.haveDecision ? s.minSlack : 0.0);
    for (double c : s.coreCpi)
        data_.push_back(c);
    if (reg_) {
        reg_->snapshot(scratch_);
        data_.insert(data_.end(), scratch_.begin(), scratch_.end());
    }
}

std::size_t
EpochRecorder::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return i;
    return npos;
}

double
EpochRecorder::at(std::size_t row, std::size_t col) const
{
    if (row >= epochs() || col >= ncols_)
        fatal("EpochRecorder: out-of-range access [%zu, %zu] of "
              "%zu x %zu",
              row, col, epochs(), ncols_);
    return data_[row * ncols_ + col];
}

std::vector<double>
EpochRecorder::column(const std::string &name) const
{
    std::size_t col = columnIndex(name);
    if (col == npos)
        fatal("EpochRecorder: unknown column '%s'", name.c_str());
    std::vector<double> out;
    out.reserve(epochs());
    for (std::size_t r = 0; r < epochs(); ++r)
        out.push_back(at(r, col));
    return out;
}

std::string
EpochRecorder::toCsv() const
{
    std::string out;
    for (std::size_t c = 0; c < names_.size(); ++c) {
        if (c)
            out += ',';
        out += names_[c];   // column names never contain , " or \n
    }
    out += '\n';
    for (std::size_t r = 0; r < epochs(); ++r) {
        for (std::size_t c = 0; c < ncols_; ++c) {
            if (c)
                out += ',';
            out += fmtVal(at(r, c));
        }
        out += '\n';
    }
    return out;
}

std::string
EpochRecorder::toJson() const
{
    std::string out = "{\n  \"label\": \"" + meta_.label + "\",\n";
    out += "  \"columns\": [";
    for (std::size_t c = 0; c < names_.size(); ++c) {
        if (c)
            out += ", ";
        out += '"' + names_[c] + '"';
    }
    out += "],\n  \"rows\": [\n";
    for (std::size_t r = 0; r < epochs(); ++r) {
        out += "    [";
        for (std::size_t c = 0; c < ncols_; ++c) {
            if (c)
                out += ", ";
            out += fmtVal(at(r, c));
        }
        out += r + 1 < epochs() ? "],\n" : "]\n";
    }
    out += "  ]\n}\n";
    return out;
}

bool
EpochRecorder::writeCsv(const std::string &path) const
{
    return writeFile(path, toCsv(), "epoch stats CSV");
}

bool
EpochRecorder::writeJson(const std::string &path) const
{
    return writeFile(path, toJson(), "epoch stats JSON");
}

void
EpochRecorder::saveState(SectionWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(names_.size()));
    for (const std::string &n : names_)
        w.str(n);
    w.u64(ncols_);
    w.u64(data_.size());
    for (double v : data_)
        w.f64(v);
}

void
EpochRecorder::restoreState(SectionReader &r)
{
    names_.assign(r.u32(), std::string());
    for (std::string &n : names_)
        n = r.str();
    ncols_ = r.u64();
    data_.assign(r.u64(), 0.0);
    for (double &v : data_)
        v = r.f64();
}

} // namespace memscale
