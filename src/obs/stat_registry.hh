/**
 * @file
 * Hierarchical statistics registry (the observability backbone).
 *
 * Components register named views onto counters and gauges they
 * already maintain — the registry stores *pointers*, never copies, so
 * registration adds zero work to the simulation hot path.  Names are
 * dot-separated component paths ("mc0.chan1.rank0.rowHits"), which
 * gives the registry its hierarchy for free: prefix queries walk the
 * tree without any explicit node structure.
 *
 * Reading happens only at snapshot time (epoch boundaries, end of
 * run), and only when observability is enabled for the run; a run
 * with observability off never constructs a registry at all.
 *
 * Aggregate types (Accumulator, Histogram) expand into derived scalar
 * columns at registration ("lat.mean", "lat.p95", ...), so a snapshot
 * is always one flat vector of doubles — the columnar layout the
 * EpochRecorder stores and the exporters serialize.
 */

#ifndef MEMSCALE_OBS_STAT_REGISTRY_HH
#define MEMSCALE_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"

namespace memscale
{

class StatRegistry
{
  public:
    StatRegistry() = default;

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /// @name Registration.
    ///
    /// All registration returns false (and leaves the registry
    /// untouched, with a warning) on a name collision; the first
    /// registration of a path wins.  The registered object must
    /// outlive every snapshot of the registry.
    /// @{

    /** A monotonically increasing 64-bit counter (or tick total). */
    bool addCounter(const std::string &path, const std::uint64_t *v);

    /** A point-in-time scalar read directly from memory. */
    bool addGauge(const std::string &path, const double *v);

    /** A point-in-time scalar computed on demand. */
    bool addGauge(const std::string &path, std::function<double()> fn);

    /**
     * An Accumulator, expanded into derived columns `<path>.count`,
     * `<path>.mean`, `<path>.min`, `<path>.max`.  Rejected wholesale
     * if any derived name collides.
     */
    bool addAccumulator(const std::string &path, const Accumulator *a);

    /**
     * A Histogram, expanded into `<path>.count`, `<path>.p50`,
     * `<path>.p95`, `<path>.p99`.
     */
    bool addHistogram(const std::string &path, const Histogram *h);
    /// @}

    /// @name Introspection & reading.
    /// @{
    std::size_t size() const { return entries_.size(); }
    bool has(const std::string &path) const;

    /** All column names, in registration order. */
    const std::vector<std::string> &names() const { return names_; }

    /** Names under a hierarchy prefix ("mc0.chan1" matches children). */
    std::vector<std::string>
    namesWithPrefix(const std::string &prefix) const;

    /** Read column `idx` (registration order). */
    double read(std::size_t idx) const;

    /** Read a column by full path; fatal() on unknown names. */
    double read(const std::string &path) const;

    /** Fill `out` with every column's current value, in order. */
    void snapshot(std::vector<double> &out) const;
    /// @}

  private:
    struct Entry
    {
        enum class Kind { Counter, GaugePtr, GaugeFn } kind;
        const void *ptr = nullptr;
        std::function<double()> fn;
    };

    bool addEntry(const std::string &path, Entry e);

    std::vector<Entry> entries_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace memscale

#endif // MEMSCALE_OBS_STAT_REGISTRY_HH
