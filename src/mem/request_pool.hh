/**
 * @file
 * Slab allocator for MemRequests, mirroring the event kernel's pooled
 * slot design (sim/event_queue): requests live in chunked slabs with
 * stable addresses and are recycled through an intrusive free list
 * threaded over MemRequest::next, so the steady-state miss path never
 * touches the heap.  One pool per MemoryController; capacity grows to
 * the high-water mark of outstanding requests and stays there.
 */

#ifndef MEMSCALE_MEM_REQUEST_POOL_HH
#define MEMSCALE_MEM_REQUEST_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/log.hh"
#include "mem/request.hh"

namespace memscale
{

class RequestPool
{
  public:
    /** Requests per slab chunk; chunks are never freed mid-run. */
    static constexpr std::size_t ChunkSize = 64;

    RequestPool() = default;
    RequestPool(const RequestPool &) = delete;
    RequestPool &operator=(const RequestPool &) = delete;

    /** Fetch a zeroed request (grows the slab only when exhausted). */
    MemRequest *
    alloc()
    {
        if (freeHead_ == nullptr)
            grow();
        MemRequest *r = freeHead_;
        freeHead_ = r->next;
        ++inUse_;
        *r = MemRequest{};
        return r;
    }

    /** Return a retired request to the free list. */
    void
    release(MemRequest *r)
    {
        r->client = nullptr;
        r->prev = nullptr;
        r->next = freeHead_;
        freeHead_ = r;
        --inUse_;
    }

    /** Requests currently out of the pool (queued or in flight). */
    std::size_t inUse() const { return inUse_; }

    /** Total slab capacity (high-water mark, rounded to ChunkSize). */
    std::size_t capacity() const { return chunks_.size() * ChunkSize; }

    /**
     * @name Checkpoint support.  A request's slab index is its stable
     * identity across save/restore: queues and pending events
     * serialize indices, and restoreLayout() rebuilds the exact
     * free-list order so post-resume allocations return the same
     * slots as the uninterrupted run.
     */
    /// @{
    std::size_t
    indexOf(const MemRequest *r) const
    {
        for (std::size_t c = 0; c < chunks_.size(); ++c) {
            const MemRequest *base = chunks_[c].get();
            if (r >= base && r < base + ChunkSize) {
                return c * ChunkSize +
                       static_cast<std::size_t>(r - base);
            }
        }
        panic("RequestPool: request not from this pool");
    }

    MemRequest *
    at(std::size_t idx)
    {
        if (idx >= capacity())
            panic("RequestPool: index %zu out of %zu", idx,
                  capacity());
        return &chunks_[idx / ChunkSize][idx % ChunkSize];
    }

    const MemRequest *
    at(std::size_t idx) const
    {
        if (idx >= capacity())
            panic("RequestPool: index %zu out of %zu", idx,
                  capacity());
        return &chunks_[idx / ChunkSize][idx % ChunkSize];
    }

    /** Free-list order, head first. */
    std::vector<std::size_t>
    freeListIndices() const
    {
        std::vector<std::size_t> out;
        for (const MemRequest *r = freeHead_; r != nullptr;
             r = r->next)
            out.push_back(indexOf(r));
        return out;
    }

    /** Grow to `cap` slots and impose the given free-list order. */
    void
    restoreLayout(std::size_t cap,
                  const std::vector<std::size_t> &free_order)
    {
        if (cap % ChunkSize != 0 || free_order.size() > cap)
            panic("RequestPool: bad restore layout (%zu slots, %zu "
                  "free)",
                  cap, free_order.size());
        while (capacity() < cap)
            grow();
        freeHead_ = nullptr;
        for (std::size_t i = free_order.size(); i-- > 0;) {
            MemRequest *r = at(free_order[i]);
            r->next = freeHead_;
            freeHead_ = r;
        }
        inUse_ = cap - free_order.size();
    }
    /// @}

  private:
    void
    grow()
    {
        chunks_.push_back(std::make_unique<MemRequest[]>(ChunkSize));
        MemRequest *chunk = chunks_.back().get();
        for (std::size_t i = ChunkSize; i-- > 0;) {
            chunk[i].next = freeHead_;
            freeHead_ = &chunk[i];
        }
    }

    std::vector<std::unique_ptr<MemRequest[]>> chunks_;
    MemRequest *freeHead_ = nullptr;
    std::size_t inUse_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_MEM_REQUEST_POOL_HH
