/**
 * @file
 * Slab allocator for MemRequests, mirroring the event kernel's pooled
 * slot design (sim/event_queue): requests live in chunked slabs with
 * stable addresses and are recycled through an intrusive free list
 * threaded over MemRequest::next, so the steady-state miss path never
 * touches the heap.  One pool per MemoryController; capacity grows to
 * the high-water mark of outstanding requests and stays there.
 */

#ifndef MEMSCALE_MEM_REQUEST_POOL_HH
#define MEMSCALE_MEM_REQUEST_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "mem/request.hh"

namespace memscale
{

class RequestPool
{
  public:
    /** Requests per slab chunk; chunks are never freed mid-run. */
    static constexpr std::size_t ChunkSize = 64;

    RequestPool() = default;
    RequestPool(const RequestPool &) = delete;
    RequestPool &operator=(const RequestPool &) = delete;

    /** Fetch a zeroed request (grows the slab only when exhausted). */
    MemRequest *
    alloc()
    {
        if (freeHead_ == nullptr)
            grow();
        MemRequest *r = freeHead_;
        freeHead_ = r->next;
        ++inUse_;
        *r = MemRequest{};
        return r;
    }

    /** Return a retired request to the free list. */
    void
    release(MemRequest *r)
    {
        r->client = nullptr;
        r->prev = nullptr;
        r->next = freeHead_;
        freeHead_ = r;
        --inUse_;
    }

    /** Requests currently out of the pool (queued or in flight). */
    std::size_t inUse() const { return inUse_; }

    /** Total slab capacity (high-water mark, rounded to ChunkSize). */
    std::size_t capacity() const { return chunks_.size() * ChunkSize; }

  private:
    void
    grow()
    {
        chunks_.push_back(std::make_unique<MemRequest[]>(ChunkSize));
        MemRequest *chunk = chunks_.back().get();
        for (std::size_t i = ChunkSize; i-- > 0;) {
            chunk[i].next = freeHead_;
            freeHead_ = &chunk[i];
        }
    }

    std::vector<std::unique_ptr<MemRequest[]>> chunks_;
    MemRequest *freeHead_ = nullptr;
    std::size_t inUse_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_MEM_REQUEST_POOL_HH
