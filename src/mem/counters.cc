#include "mem/counters.hh"

#include "snapshot/serializer.hh"

namespace memscale
{

void
McCounters::saveState(SectionWriter &w) const
{
    w.u64(bto);
    w.u64(btc);
    w.f64(cto);
    w.u64(ctc);
    w.u64(rbhc);
    w.u64(obmc);
    w.u64(cbmc);
    w.u64(epdc);
    w.u64(pocc);
    w.u64(rankTime);
    w.u64(rankPreTime);
    w.u64(rankPrePdTime);
    w.u64(rankActPdTime);
    w.u64(rankSrTime);
    w.u64(rankSrSlowTime);
    w.u64(rankDeepPdTime);
    w.u64(pdDemotions);
    w.u64(migrations);
    w.u64(reads);
    w.u64(writes);
    w.u64(busBusyTime);
    w.u64(readLatencyTotal);
    w.u64(freqTransitions);
    w.u64(relockStallTime);
}

void
McCounters::restoreState(SectionReader &r)
{
    bto = r.u64();
    btc = r.u64();
    cto = r.f64();
    ctc = r.u64();
    rbhc = r.u64();
    obmc = r.u64();
    cbmc = r.u64();
    epdc = r.u64();
    pocc = r.u64();
    rankTime = r.u64();
    rankPreTime = r.u64();
    rankPrePdTime = r.u64();
    rankActPdTime = r.u64();
    rankSrTime = r.u64();
    rankSrSlowTime = r.u64();
    rankDeepPdTime = r.u64();
    pdDemotions = r.u64();
    migrations = r.u64();
    reads = r.u64();
    writes = r.u64();
    busBusyTime = r.u64();
    readLatencyTotal = r.u64();
    freqTransitions = r.u64();
    relockStallTime = r.u64();
}

McCounters
McCounters::operator-(const McCounters &o) const
{
    McCounters r;
    r.bto = bto - o.bto;
    r.btc = btc - o.btc;
    r.cto = cto - o.cto;
    r.ctc = ctc - o.ctc;
    r.rbhc = rbhc - o.rbhc;
    r.obmc = obmc - o.obmc;
    r.cbmc = cbmc - o.cbmc;
    r.epdc = epdc - o.epdc;
    r.pocc = pocc - o.pocc;
    r.rankTime = rankTime - o.rankTime;
    r.rankPreTime = rankPreTime - o.rankPreTime;
    r.rankPrePdTime = rankPrePdTime - o.rankPrePdTime;
    r.rankActPdTime = rankActPdTime - o.rankActPdTime;
    r.rankSrTime = rankSrTime - o.rankSrTime;
    r.rankSrSlowTime = rankSrSlowTime - o.rankSrSlowTime;
    r.rankDeepPdTime = rankDeepPdTime - o.rankDeepPdTime;
    r.pdDemotions = pdDemotions - o.pdDemotions;
    r.migrations = migrations - o.migrations;
    r.reads = reads - o.reads;
    r.writes = writes - o.writes;
    r.busBusyTime = busBusyTime - o.busBusyTime;
    r.readLatencyTotal = readLatencyTotal - o.readLatencyTotal;
    r.freqTransitions = freqTransitions - o.freqTransitions;
    r.relockStallTime = relockStallTime - o.relockStallTime;
    return r;
}

double
McCounters::xiBank() const
{
    if (btc == 0)
        return 1.0;
    return 1.0 + static_cast<double>(bto) / static_cast<double>(btc);
}

double
McCounters::xiBus() const
{
    if (ctc == 0)
        return 1.0;
    return 1.0 + cto / static_cast<double>(ctc);
}

double
McCounters::rowHitFraction() const
{
    std::uint64_t serviced = rbhc + obmc + cbmc;
    if (serviced == 0)
        return 0.0;
    return static_cast<double>(rbhc) / static_cast<double>(serviced);
}

} // namespace memscale
