#include "mem/counters.hh"

namespace memscale
{

McCounters
McCounters::operator-(const McCounters &o) const
{
    McCounters r;
    r.bto = bto - o.bto;
    r.btc = btc - o.btc;
    r.cto = cto - o.cto;
    r.ctc = ctc - o.ctc;
    r.rbhc = rbhc - o.rbhc;
    r.obmc = obmc - o.obmc;
    r.cbmc = cbmc - o.cbmc;
    r.epdc = epdc - o.epdc;
    r.pocc = pocc - o.pocc;
    r.rankTime = rankTime - o.rankTime;
    r.rankPreTime = rankPreTime - o.rankPreTime;
    r.rankPrePdTime = rankPrePdTime - o.rankPrePdTime;
    r.rankActPdTime = rankActPdTime - o.rankActPdTime;
    r.reads = reads - o.reads;
    r.writes = writes - o.writes;
    r.busBusyTime = busBusyTime - o.busBusyTime;
    r.readLatencyTotal = readLatencyTotal - o.readLatencyTotal;
    r.freqTransitions = freqTransitions - o.freqTransitions;
    r.relockStallTime = relockStallTime - o.relockStallTime;
    return r;
}

double
McCounters::xiBank() const
{
    if (btc == 0)
        return 1.0;
    return 1.0 + static_cast<double>(bto) / static_cast<double>(btc);
}

double
McCounters::xiBus() const
{
    if (ctc == 0)
        return 1.0;
    return 1.0 + cto / static_cast<double>(ctc);
}

double
McCounters::rowHitFraction() const
{
    std::uint64_t serviced = rbhc + obmc + cbmc;
    if (serviced == 0)
        return 0.0;
    return static_cast<double>(rbhc) / static_cast<double>(serviced);
}

} // namespace memscale
