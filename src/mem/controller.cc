#include "mem/controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/stat_registry.hh"
#include "sim/event_kinds.hh"
#include "sim/weave.hh"
#include "snapshot/serializer.hh"

namespace memscale
{

MemoryController::MemoryController(EventQueue &eq, const MemConfig &cfg,
                                   FreqIndex initial)
    : eq_(eq), cfg_(cfg), map_(cfg),
      chanFreq_(cfg.numChannels, initial)
{
    const TimingParams &t = TimingParams::at(initial);
    channels_.reserve(cfg_.numChannels);
    for (std::uint32_t c = 0; c < cfg_.numChannels; ++c) {
        channels_.push_back(
            std::make_unique<Channel>(eq_, cfg_, pool_, t));
        channels_.back()->setId(c);
    }
    if (cfg_.ladder.migrate)
        migrator_ = std::make_unique<PageMigrator>(cfg_);
}

MemRequest *
MemoryController::makeRequest(Addr addr, CoreId core, bool is_write)
{
    MemRequest *req = pool_.alloc();
    req->addr = addr;
    req->isWrite = is_write;
    req->core = core;
    req->arrival = eq_.now();
    req->seq = nextSeq_++;
    req->loc = map_.decode(addr);
    if (migrator_) {
        migrator_->noteAccess(req->loc);
        req->loc.rank = migrator_->remap(req->loc);
    }
    return req;
}

void
MemoryController::read(Addr addr, CoreId core, MemClient *client)
{
    MemRequest *req = makeRequest(addr, core, false);
    req->client = client;
    channels_[req->loc.channel]->access(req);
}

void
MemoryController::writeback(Addr addr, CoreId core)
{
    MemRequest *req = makeRequest(addr, core, true);
    channels_[req->loc.channel]->access(req);
}

FreqIndex
MemoryController::frequency() const
{
    FreqIndex fastest = numFreqPoints - 1;
    for (FreqIndex f : chanFreq_)
        fastest = std::min(fastest, f);
    return fastest;
}

Tick
MemoryController::setFrequency(FreqIndex idx)
{
    if (idx >= numFreqPoints)
        fatal("MemoryController: bad frequency index %u", idx);
    bool change = false;
    for (FreqIndex f : chanFreq_)
        change |= (f != idx);
    if (!change)
        return eq_.now();
    weaveBarrier();
    if (beforeFreqChange_)
        beforeFreqChange_();
    freqTransitions_ += 1;
    const TimingParams &t = TimingParams::at(idx);
    Tick resume = eq_.now();
    for (std::uint32_t c = 0; c < channels_.size(); ++c) {
        if (chanFreq_[c] == idx)
            continue;
        chanFreq_[c] = idx;
        resume = std::max(resume, channels_[c]->applyFrequency(t));
    }
    return resume;
}

Tick
MemoryController::setChannelFrequency(std::uint32_t channel,
                                      FreqIndex idx)
{
    if (idx >= numFreqPoints)
        fatal("MemoryController: bad frequency index %u", idx);
    if (channel >= channels_.size())
        fatal("MemoryController: bad channel %u", channel);
    if (chanFreq_[channel] == idx)
        return eq_.now();
    weaveBarrier();
    if (beforeFreqChange_)
        beforeFreqChange_();
    freqTransitions_ += 1;
    chanFreq_[channel] = idx;
    return channels_[channel]->applyFrequency(TimingParams::at(idx));
}

void
MemoryController::setPowerdownMode(PowerdownMode mode)
{
    for (auto &ch : channels_)
        ch->setPowerdownMode(mode);
}

void
MemoryController::setDecoupled(std::uint32_t device_mhz)
{
    decoupledMHz_ = device_mhz;
    for (auto &ch : channels_)
        ch->setDecoupled(device_mhz);
}

void
MemoryController::setThrottle(double max_utilization)
{
    for (auto &ch : channels_)
        ch->setThrottle(max_utilization);
}

void
MemoryController::setCommandObserver(CommandObserver *obs)
{
    for (std::uint32_t c = 0; c < channels_.size(); ++c)
        channels_[c]->setCommandObserver(obs, c);
}

void
MemoryController::startRefresh()
{
    for (auto &ch : channels_)
        ch->startRefresh();
}

void
MemoryController::addRankTimes(McCounters &out, Channel &ch)
{
    std::vector<RankActivity> acts;
    ch.sampleRanks(eq_.now(), acts);
    for (const RankActivity &a : acts) {
        out.rankTime += a.totalTime;
        out.rankPreTime += a.preStandbyTime + a.prePowerdownTime;
        out.rankPrePdTime += a.prePowerdownTime;
        out.rankActPdTime += a.actPowerdownTime;
        out.rankSrTime += a.selfRefreshTime;
        out.rankSrSlowTime += a.srSlowClockTime;
        out.rankDeepPdTime += a.deepPowerdownTime;
    }
}

void
MemoryController::startMigration()
{
    if (!migrator_ || migrateArmed_)
        return;
    migrateArmed_ = true;
    armMigrate();
}

void
MemoryController::armMigrate()
{
    eq_.schedule(eq_.now() + cfg_.ladder.migrateInterval,
                 [this] { evMigrate(); }, EventClass::Hardware,
                 {EvMemMigrate, 0, 0});
}

void
MemoryController::evMigrate()
{
    std::vector<MigrationSwap> swaps;
    migrator_->runPass(swaps);
    for (const MigrationSwap &s : swaps) {
        for (std::uint32_t l = 0; l < cfg_.ladder.migrationLines;
             ++l) {
            DecodedAddr from;
            from.channel = s.channel;
            from.rank = s.rankFrom;
            from.bank = s.bank;
            from.row = s.row;
            from.column = l % cfg_.linesPerRow();
            DecodedAddr to = from;
            to.rank = s.rankTo;
            // Swap = read both frames, write both crosswise.
            issueCopy(from, false);
            issueCopy(to, false);
            issueCopy(to, true);
            issueCopy(from, true);
        }
    }
    armMigrate();
}

void
MemoryController::issueCopy(const DecodedAddr &loc, bool is_write)
{
    MemRequest *req = pool_.alloc();
    req->loc = loc;
    req->addr = map_.encode(loc);
    req->isWrite = is_write;
    req->core = 0;
    req->arrival = eq_.now();
    req->seq = nextSeq_++;
    channels_[loc.channel]->access(req);
}

EventCallback
MemoryController::rebuildMigrationEvent()
{
    if (!migrator_)
        fatal("MemoryController: snapshot has a migration event but "
              "consolidation is disabled");
    return [this] { evMigrate(); };
}

void
MemoryController::attachWeave(WeaveHub *hub)
{
    weaveHub_ = hub;
    for (auto &ch : channels_) {
        ch->setWeave(hub != nullptr);
        if (hub) {
            Channel *c = ch.get();
            hub->addTask([c] { c->weaveDrain(); },
                         WeaveScope::Accounting, c->laneId());
        }
    }
}

void
MemoryController::weaveBarrier()
{
    if (weaveHub_)
        weaveHub_->barrier();
}

bool
MemoryController::weaveDrained() const
{
    for (const auto &ch : channels_) {
        if (!ch->weaveEmpty())
            return false;
    }
    return true;
}

McCounters
MemoryController::sampleCounters()
{
    weaveBarrier();
    McCounters out;
    for (auto &ch : channels_) {
        const McCounters &c = ch->counters();
        out.bto += c.bto;
        out.btc += c.btc;
        out.cto += c.cto;
        out.ctc += c.ctc;
        out.rbhc += c.rbhc;
        out.obmc += c.obmc;
        out.cbmc += c.cbmc;
        out.epdc += c.epdc;
        out.pocc += c.pocc;
        out.pdDemotions += c.pdDemotions;
        out.reads += c.reads;
        out.writes += c.writes;
        out.busBusyTime += c.busBusyTime;
        out.readLatencyTotal += c.readLatencyTotal;
        out.relockStallTime += c.relockStallTime;
        addRankTimes(out, *ch);
    }
    out.freqTransitions = freqTransitions_;
    if (migrator_)
        out.migrations = migrator_->swapsPerformed();
    return out;
}

McCounters
MemoryController::sampleChannelCounters(std::uint32_t ch)
{
    if (ch >= channels_.size())
        fatal("MemoryController: bad channel %u", ch);
    weaveBarrier();
    McCounters out = channels_[ch]->counters();
    addRankTimes(out, *channels_[ch]);
    return out;
}

IntervalActivity
MemoryController::sampleActivity()
{
    weaveBarrier();
    IntervalActivity ia;
    ia.busMHz = busMHz();
    ia.deviceBusMHz = decoupledMHz_;
    ia.ranksPerChannel = cfg_.ranksPerChannel();
    ia.numDimms = cfg_.totalDimms();
    const Tick now = eq_.now();
    for (std::uint32_t c = 0; c < channels_.size(); ++c) {
        channels_[c]->sampleRanks(now, ia.ranks);
        ia.channelBurst.push_back(channels_[c]->burstTime());
        ia.channelMHz.push_back(
            TimingParams::at(chanFreq_[c]).busMHz);
    }
    return ia;
}

void
MemoryController::registerStats(StatRegistry &reg,
                                const std::string &prefix) const
{
    reg.addCounter(prefix + ".freqTransitions", &freqTransitions_);
    if (migrator_)
        migrator_->registerStats(reg, prefix + ".migrator");
    reg.addGauge(prefix + ".busMHz", [this] {
        return static_cast<double>(busMHz());
    });
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        const std::string chan =
            prefix + ".chan" + std::to_string(c);
        reg.addGauge(chan + ".busMHz", [this, c] {
            return static_cast<double>(
                TimingParams::at(chanFreq_[c]).busMHz);
        });
        channels_[c]->registerStats(reg, chan);
    }
}

void
MemoryController::saveState(SectionWriter &w) const
{
    // Pool layout first: restore must materialize the slab before
    // queue contents and event tags can resolve indices into it.
    w.u64(pool_.capacity());
    const std::vector<std::size_t> free = pool_.freeListIndices();
    w.u64(free.size());
    for (std::size_t idx : free)
        w.u64(idx);

    std::vector<bool> is_free(pool_.capacity(), false);
    for (std::size_t idx : free)
        is_free[idx] = true;
    for (std::size_t i = 0; i < pool_.capacity(); ++i) {
        if (is_free[i])
            continue;
        const MemRequest *q = pool_.at(i);
        w.u64(q->addr);
        w.b(q->isWrite);
        w.u32(q->core);
        w.u64(q->arrival);
        w.u64(q->seq);
        w.u32(q->loc.channel);
        w.u32(q->loc.rank);
        w.u32(q->loc.bank);
        w.u64(q->loc.row);
        w.u64(q->loc.column);
        w.u64(q->serviceStart);
        w.u64(q->dataReady);
        w.u64(q->burstStart);
        w.u64(q->burstEnd);
        w.u8(static_cast<std::uint8_t>(q->outcome));
        w.b(q->sawPowerdownExit);
        w.u64(q->bankBurstExtra);
        w.b(q->client != nullptr);
    }

    w.u32(static_cast<std::uint32_t>(channels_.size()));
    for (FreqIndex f : chanFreq_)
        w.u32(f);
    w.u64(nextSeq_);
    w.u64(freqTransitions_);
    w.u64(relockStall_);
    w.u32(decoupledMHz_);
    for (const auto &ch : channels_)
        ch->saveState(w);
    // Config-gated: snapshot meta pins the ladder config, so writer
    // and reader agree on whether this trailer exists.
    if (migrator_) {
        w.b(migrateArmed_);
        migrator_->saveState(w);
    }
}

void
MemoryController::restoreState(SectionReader &r,
                               const std::vector<MemClient *> &clients)
{
    const std::size_t cap = r.u64();
    std::vector<std::size_t> free(r.u64());
    for (std::size_t &idx : free)
        idx = r.u64();
    pool_.restoreLayout(cap, free);

    std::vector<bool> is_free(cap, false);
    for (std::size_t idx : free)
        is_free[idx] = true;
    for (std::size_t i = 0; i < cap; ++i) {
        if (is_free[i])
            continue;
        MemRequest *q = pool_.at(i);
        q->addr = r.u64();
        q->isWrite = r.b();
        q->core = r.u32();
        q->arrival = r.u64();
        q->seq = r.u64();
        q->loc.channel = r.u32();
        q->loc.rank = r.u32();
        q->loc.bank = r.u32();
        q->loc.row = r.u64();
        q->loc.column = r.u64();
        q->serviceStart = r.u64();
        q->dataReady = r.u64();
        q->burstStart = r.u64();
        q->burstEnd = r.u64();
        q->outcome = static_cast<RowOutcome>(r.u8());
        q->sawPowerdownExit = r.b();
        q->bankBurstExtra = r.u64();
        const bool has_client = r.b();
        if (has_client) {
            if (q->core >= clients.size() ||
                clients[q->core] == nullptr) {
                fatal("MemoryController: restored request (core %u) "
                      "has no client to rebind",
                      q->core);
            }
            q->client = clients[q->core];
        } else {
            q->client = nullptr;
        }
        q->prev = nullptr;
        q->next = nullptr;
    }

    const std::uint32_t nchan = r.u32();
    if (nchan != channels_.size())
        fatal("MemoryController: snapshot has %u channels, "
              "configuration has %zu",
              nchan, channels_.size());
    for (FreqIndex &f : chanFreq_)
        f = r.u32();
    nextSeq_ = r.u64();
    freqTransitions_ = r.u64();
    relockStall_ = r.u64();
    decoupledMHz_ = r.u32();
    for (auto &ch : channels_)
        ch->restoreState(r);
    if (migrator_) {
        migrateArmed_ = r.b();
        migrator_->restoreState(r);
    }
}

EventCallback
MemoryController::rebuildChannelEvent(std::uint32_t owner,
                                      std::uint32_t kind,
                                      std::uint64_t a, std::uint64_t b)
{
    if (owner >= channels_.size())
        fatal("MemoryController: event owner %u out of %zu channels",
              owner, channels_.size());
    return channels_[owner]->rebuildEvent(kind, a, b);
}

std::size_t
MemoryController::pending() const
{
    std::size_t n = 0;
    for (const auto &ch : channels_)
        n += ch->pending();
    return n;
}

std::uint32_t
MemoryController::ranksPoweredDown() const
{
    std::uint32_t n = 0;
    for (const auto &ch : channels_)
        n += ch->ranksPoweredDown();
    return n;
}

} // namespace memscale
