#include "mem/address_map.hh"

#include "common/log.hh"

namespace memscale
{

AddressMap::AddressMap(const MemConfig &cfg)
    : lineBytes_(cfg.lineBytes),
      channels_(cfg.numChannels),
      colLow_(cfg.colLowLines),
      banks_(cfg.banksPerRank),
      ranks_(cfg.ranksPerChannel()),
      colHigh_(cfg.linesPerRow() / cfg.colLowLines),
      rows_(cfg.rowsPerBank()),
      capacity_(cfg.totalBytes())
{
    if (channels_ == 0 || banks_ == 0 || ranks_ == 0 || rows_ == 0)
        fatal("AddressMap: degenerate memory configuration");
    if (cfg.linesPerRow() % colLow_ != 0)
        fatal("AddressMap: colLowLines must divide lines per row");
}

DecodedAddr
AddressMap::decode(Addr addr) const
{
    std::uint64_t line = (addr % capacity_) / lineBytes_;
    DecodedAddr loc;
    loc.channel = static_cast<std::uint32_t>(line % channels_);
    line /= channels_;
    std::uint64_t col_low = line % colLow_;
    line /= colLow_;
    loc.bank = static_cast<std::uint32_t>(line % banks_);
    line /= banks_;
    loc.rank = static_cast<std::uint32_t>(line % ranks_);
    line /= ranks_;
    std::uint64_t col_high = line % colHigh_;
    line /= colHigh_;
    loc.row = line % rows_;
    loc.column = col_high * colLow_ + col_low;
    return loc;
}

Addr
AddressMap::encode(const DecodedAddr &loc) const
{
    std::uint64_t col_high = loc.column / colLow_;
    std::uint64_t col_low = loc.column % colLow_;
    std::uint64_t line = loc.row;
    line = line * colHigh_ + col_high;
    line = line * ranks_ + loc.rank;
    line = line * banks_ + loc.bank;
    line = line * colLow_ + col_low;
    line = line * channels_ + loc.channel;
    return line * lineBytes_;
}

} // namespace memscale
