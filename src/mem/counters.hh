/**
 * @file
 * The MemScale hardware performance-counter set (paper Section 3.1).
 *
 * All counters are cumulative; the OS policy samples them at profiling
 * and epoch boundaries and works with deltas.  A single system-wide
 * set suffices (the models use averages, not per-bank values), exactly
 * as the paper argues.
 */

#ifndef MEMSCALE_MEM_COUNTERS_HH
#define MEMSCALE_MEM_COUNTERS_HH

#include <cstdint>

#include "common/types.hh"

namespace memscale
{

class SectionReader;
class SectionWriter;

struct McCounters
{
    /// @name Transactions-outstanding accumulators.
    /// @{
    /**
     * Bank Transactions Outstanding: incremented by the number of
     * already-outstanding requests to the same bank on each arrival.
     */
    std::uint64_t bto = 0;
    /** Bank Transaction Counter: one per arriving request. */
    std::uint64_t btc = 0;
    /**
     * Channel (bus) Transactions Outstanding: residual bus work, in
     * burst units, ahead of each request when its data is ready.
     * Fractional because a burst may be mid-flight.
     */
    double cto = 0.0;
    /** Channel Transactions Counter. */
    std::uint64_t ctc = 0;
    /// @}

    /// @name Row-buffer performance.
    /// @{
    std::uint64_t rbhc = 0;   ///< row-buffer hits
    std::uint64_t obmc = 0;   ///< open-row misses (extra precharge)
    std::uint64_t cbmc = 0;   ///< closed-bank misses
    std::uint64_t epdc = 0;   ///< powerdown exits
    /// @}

    /// @name Power-model counters.
    /// @{
    std::uint64_t pocc = 0;        ///< page open/close command pairs
    Tick rankTime = 0;             ///< summed rank integration time
    Tick rankPreTime = 0;          ///< summed all-banks-precharged time
    Tick rankPrePdTime = 0;        ///< ... with CKE low (PTCKEL)
    Tick rankActPdTime = 0;        ///< some bank open, CKE low (ATCKEL)
    /// @}

    /// @name Idle-ladder and consolidation counters.
    /// @{
    Tick rankSrTime = 0;           ///< summed self-refresh residency
    Tick rankSrSlowTime = 0;       ///< ... in slow-clock self-refresh
    Tick rankDeepPdTime = 0;       ///< ... in deep powerdown
    std::uint64_t pdDemotions = 0; ///< ladder walk-down transitions
    std::uint64_t migrations = 0;  ///< page-frame swaps performed
    /// @}

    /// @name Traffic statistics.
    /// @{
    std::uint64_t reads = 0;       ///< completed reads
    std::uint64_t writes = 0;      ///< completed writebacks
    Tick busBusyTime = 0;          ///< summed burst time, all channels
    Tick readLatencyTotal = 0;     ///< sum of read (done - arrival)
    std::uint64_t freqTransitions = 0;
    Tick relockStallTime = 0;
    /// @}

    McCounters operator-(const McCounters &o) const;

    /** @name Checkpoint/restore */
    /// @{
    void saveState(SectionWriter &w) const;
    void restoreState(SectionReader &r);
    /// @}

    /** Average queue work seen at a bank, including self (>= 1). */
    double xiBank() const;
    /** Average bus work seen at the bus stage, including self (>= 1). */
    double xiBus() const;
    /** Row-buffer hit fraction among serviced requests. */
    double rowHitFraction() const;
};

} // namespace memscale

#endif // MEMSCALE_MEM_COUNTERS_HH
