/**
 * @file
 * Memory request descriptor exchanged between cores, the memory
 * controller, and channels.
 *
 * Requests are pooled (mem/request_pool) and threaded through the
 * channel's intrusive queues (mem/req_queue) via the embedded
 * prev/next links, so the steady-state miss path performs no heap
 * allocation.  Completion is delivered through the typed MemClient
 * interface (mem/client) instead of a per-request std::function.
 */

#ifndef MEMSCALE_MEM_REQUEST_HH
#define MEMSCALE_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"

namespace memscale
{

class MemClient;

/** Physical location of a line within the memory system. */
struct DecodedAddr
{
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;     ///< within the channel
    std::uint32_t bank = 0;     ///< within the rank
    std::uint64_t row = 0;
    std::uint64_t column = 0;   ///< line within the row

    bool
    operator==(const DecodedAddr &o) const
    {
        return channel == o.channel && rank == o.rank &&
               bank == o.bank && row == o.row && column == o.column;
    }
};

/** How a request found its bank's row buffer (Eq. 6 categories). */
enum class RowOutcome : std::uint8_t
{
    Hit,        ///< row already open (RBHC)
    OpenMiss,   ///< different row open, extra precharge (OBMC)
    ClosedMiss, ///< bank precharged (CBMC)
};

struct MemRequest
{
    Addr addr = 0;
    bool isWrite = false;
    CoreId core = 0;
    Tick arrival = 0;           ///< tick the MC accepted the request
    std::uint64_t seq = 0;      ///< global arrival order
    DecodedAddr loc;

    /// @name Filled in by the channel scheduler.
    /// @{
    Tick serviceStart = 0;      ///< first DRAM command
    Tick dataReady = 0;         ///< column access complete at device
    Tick burstStart = 0;
    Tick burstEnd = 0;          ///< data fully transferred (completion)
    RowOutcome outcome = RowOutcome::ClosedMiss;
    bool sawPowerdownExit = false;
    /** Extra bank occupancy beyond the channel burst (Decoupled). */
    Tick bankBurstExtra = 0;
    /// @}

    /** Completion sink (reads only); valid until the request retires. */
    MemClient *client = nullptr;

    /// @name Intrusive links: bank/write queue while queued, free list
    /// while pooled.  Owned by ReqQueue / RequestPool; never touch.
    /// @{
    MemRequest *prev = nullptr;
    MemRequest *next = nullptr;
    /// @}
};

} // namespace memscale

#endif // MEMSCALE_MEM_REQUEST_HH
