/**
 * @file
 * Intrusive doubly-linked request queue threaded through
 * MemRequest::prev/next.  Replaces the per-bank and write-queue
 * std::deques: push/pop/unlink are pointer splices with no allocation
 * and no element shifting, which makes the FR-FCFS row-hit promotion
 * and the closed-page keep-open scan O(1) pointer work per touched
 * node.
 *
 * Invariants: a request is on at most one queue at a time; head->prev
 * and tail->next are null; size() is exact at all times.  The queue
 * does not own its requests — the channel releases them to the
 * RequestPool when they retire (or when the channel is destroyed).
 */

#ifndef MEMSCALE_MEM_REQ_QUEUE_HH
#define MEMSCALE_MEM_REQ_QUEUE_HH

#include <cstddef>

#include "common/log.hh"
#include "mem/request.hh"

namespace memscale
{

class ReqQueue
{
  public:
    bool empty() const { return head_ == nullptr; }
    std::size_t size() const { return n_; }
    MemRequest *front() const { return head_; }

    /** First node for `for (r = q.head(); r; r = r->next)` scans. */
    MemRequest *head() const { return head_; }

    void
    push_back(MemRequest *r)
    {
        r->prev = tail_;
        r->next = nullptr;
        if (tail_ != nullptr)
            tail_->next = r;
        else
            head_ = r;
        tail_ = r;
        ++n_;
    }

    void
    push_front(MemRequest *r)
    {
        r->prev = nullptr;
        r->next = head_;
        if (head_ != nullptr)
            head_->prev = r;
        else
            tail_ = r;
        head_ = r;
        ++n_;
    }

    MemRequest *
    pop_front()
    {
        MemRequest *r = head_;
        if (r == nullptr)
            panic("ReqQueue: pop_front on empty queue");
        unlink(r);
        return r;
    }

    /** Splice a node out from anywhere in the queue. */
    void
    unlink(MemRequest *r)
    {
        if (r->prev != nullptr)
            r->prev->next = r->next;
        else
            head_ = r->next;
        if (r->next != nullptr)
            r->next->prev = r->prev;
        else
            tail_ = r->prev;
        r->prev = nullptr;
        r->next = nullptr;
        --n_;
    }

  private:
    MemRequest *head_ = nullptr;
    MemRequest *tail_ = nullptr;
    std::size_t n_ = 0;
};

} // namespace memscale

#endif // MEMSCALE_MEM_REQ_QUEUE_HH
