/**
 * @file
 * Physical address to channel/rank/bank/row/column mapping.
 *
 * The default scheme interleaves consecutive cache lines across
 * channels first (maximizing channel parallelism, the paper's
 * configuration), keeps a small run of lines within a row (so
 * streaming accesses can merge into row hits when they queue up
 * back-to-back), then interleaves across banks and ranks.
 *
 * Mapping uses division/modulo rather than bit slicing so that
 * non-power-of-two channel counts (the 3-channel point of Fig. 13)
 * work unchanged.
 */

#ifndef MEMSCALE_MEM_ADDRESS_MAP_HH
#define MEMSCALE_MEM_ADDRESS_MAP_HH

#include "common/types.hh"
#include "mem/config.hh"
#include "mem/request.hh"

namespace memscale
{

class AddressMap
{
  public:
    explicit AddressMap(const MemConfig &cfg);

    /** Decode a byte address into its physical location. */
    DecodedAddr decode(Addr addr) const;

    /** Inverse of decode (line-aligned); used by tests. */
    Addr encode(const DecodedAddr &loc) const;

    /** Total addressable bytes. */
    std::uint64_t capacity() const { return capacity_; }

  private:
    std::uint64_t lineBytes_;
    std::uint64_t channels_;
    std::uint64_t colLow_;
    std::uint64_t banks_;
    std::uint64_t ranks_;
    std::uint64_t colHigh_;
    std::uint64_t rows_;
    std::uint64_t capacity_;
};

} // namespace memscale

#endif // MEMSCALE_MEM_ADDRESS_MAP_HH
